// Steady-state allocation pins for the two hot engines (E1's event loop and
// the valence explorer's encode path live in their packages; this file pins
// the composed Figure-1 system).  The contract under test: once ring buffers,
// ready-set words, and routing caches have grown to their working size, an
// Apply/NextReady cycle performs no heap allocation at all — under TraceOff,
// under a full TraceRing, and with a metrics-only telemetry sink attached.
// testing.AllocsPerRun is exact here (it runs on one P with GC pinned), so
// the assertions are == 0, not a budget.
package repro

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/telemetry"
)

// e1System builds the E1 benchmark composition: the Figure-1 P-family
// detector over n locations, n×(n-1) reliable channels, and a crash
// automaton, in TraceOff mode.
func e1System(tb testing.TB, n int, plan system.FaultPlan) *ioa.System {
	tb.Helper()
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		tb.Fatal(err)
	}
	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.NewCrash(plan))
	sys := ioa.MustNewSystem(autos...)
	sys.SetTraceMode(ioa.TraceOff, 0)
	return sys
}

// driveReady applies `steps` events through the incremental ready-set — a
// NextReady scan resumed after each ApplyReady, restarting from -1 when the
// scan runs dry.  This is the same loop shape sched.RoundRobin uses, so the
// allocations it measures are the ones every E1-style driver pays.
func driveReady(tb testing.TB, sys *ioa.System, steps int) {
	fired := 0
	for fired < steps {
		idx, ok := sys.NextReady(-1)
		if !ok {
			tb.Fatalf("system quiesced after %d events", fired)
		}
		for ok && fired < steps {
			sys.ApplyReady(idx)
			fired++
			idx, ok = sys.NextReady(idx)
		}
	}
}

// TestE1ApplySteadyStateAllocs pins the tentpole: zero heap allocations per
// Apply+NextReady cycle on the E1 composition once warm.
func TestE1ApplySteadyStateAllocs(t *testing.T) {
	sys := e1System(t, 4, system.NoFaults())
	driveReady(t, sys, 20_000) // grow rings and caches to working size
	if avg := testing.AllocsPerRun(10, func() {
		driveReady(t, sys, 1_000)
	}); avg != 0 {
		t.Fatalf("steady-state Apply/NextReady allocates: %.2f allocs per 1000 events, want 0", avg)
	}
}

// TestE1TraceModesSteadyStateHeap is the bounded-memory regression test for
// the trace modes: a full TraceRing evicts in place (zero allocations per
// event, length pinned at cap) and TraceOff retains nothing.  TraceAll is
// exempt by design — it exists to keep whole traces.
func TestE1TraceModesSteadyStateHeap(t *testing.T) {
	t.Run("ring", func(t *testing.T) {
		const cap = 256
		sys := e1System(t, 4, system.NoFaults())
		sys.SetTraceMode(ioa.TraceRing, cap)
		driveReady(t, sys, 20_000) // far past cap: ring is in eviction mode
		if avg := testing.AllocsPerRun(10, func() {
			driveReady(t, sys, 1_000)
		}); avg != 0 {
			t.Fatalf("full TraceRing allocates: %.2f allocs per 1000 events, want 0", avg)
		}
		if got := len(sys.Trace()); got != cap {
			t.Fatalf("TraceRing retained %d events, want cap %d", got, cap)
		}
	})
	t.Run("off", func(t *testing.T) {
		sys := e1System(t, 4, system.NoFaults())
		driveReady(t, sys, 20_000)
		if got := len(sys.Trace()); got != 0 {
			t.Fatalf("TraceOff retained %d events, want 0", got)
		}
	})
}

// TestE1TelemetryOnAllocs pins the satellite contract of the telemetry hook:
// with a metrics-only Registry attached (tracing plane not enabled), the
// steady-state event loop — including the crash instant, whose rich
// act.String() label is gated on TracingActive — stays at zero allocations.
func TestE1TelemetryOnAllocs(t *testing.T) {
	sys := e1System(t, 4, system.CrashOf(ioa.Loc(1)))
	reg := telemetry.NewRegistry()
	sys.SetTelemetry(reg)
	driveReady(t, sys, 20_000)
	if avg := testing.AllocsPerRun(10, func() {
		driveReady(t, sys, 1_000)
	}); avg != 0 {
		t.Fatalf("metrics-only telemetry allocates: %.2f allocs per 1000 events, want 0", avg)
	}

	// The crash path specifically: re-delivering crash_1 exercises
	// telemetryApply's KindCrash branch, the one that formats a rich
	// act.String() label when — and only when — a trace exporter is
	// attached.  Crash delivery itself allocates by design (it invalidates
	// the detector's payload cache, which the next repoll rebuilds), so the
	// pin is relative: the metrics-only instant must add *zero* allocations
	// over an identical system with no telemetry at all.
	crashApplyAllocs := func(sys *ioa.System) float64 {
		crash := ioa.Crash(ioa.Loc(1))
		sys.Apply(-1, crash) // warm the first-crash state transitions
		return testing.AllocsPerRun(50, func() {
			sys.Apply(-1, crash)
		})
	}
	bare := e1System(t, 4, system.CrashOf(ioa.Loc(1)))
	driveReady(t, bare, 20_000)
	base := crashApplyAllocs(bare)
	before := reg.Value(telemetry.CCrashes)
	if got := crashApplyAllocs(sys); got != base {
		t.Fatalf("crash instant with metrics-only telemetry: %.2f allocs per event, want the bare system's %.2f", got, base)
	}
	if after := reg.Value(telemetry.CCrashes); after <= before {
		t.Fatalf("crash counter did not advance (%d -> %d): the gated path was not exercised", before, after)
	}
}
