// Consensus under crashes: compare how the detector classes of Section 3.3
// ride out a crashing round-1 coordinator.  P suspects immediately and
// accurately; ◇P pays for its inaccurate prefix with extra rounds; Ω moves
// the leader.  The decision value and the specification hold throughout —
// only the cost differs.
package main

import (
	"fmt"
	"log"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/trace"
)

func main() {
	const n = 5
	fmt.Printf("%-8s %-10s %-10s %-10s %-8s\n", "fd", "steps", "messages", "maxRound", "value")
	for _, fam := range []string{afd.FamilyP, afd.FamilyEvP, afd.FamilyEvS, afd.FamilyOmega} {
		d, err := afd.Lookup(fam, n)
		if err != nil {
			log.Fatal(err)
		}
		res, err := consensus.Run(consensus.RunSpec{
			Build: consensus.BuildSpec{
				N:      n,
				Family: fam,
				Det:    d.Automaton(n),
				Crash:  []ioa.Loc{0, 1}, // the first two coordinators die
				Values: []int{0, 0, 1, 1, 1},
			},
			Steps:     200_000,
			Seed:      -1,
			CrashGate: 25,
		})
		if err != nil {
			log.Fatal(err)
		}
		if !res.AllDecided {
			log.Fatalf("%s: no decision (%s)", fam, res.Reason)
		}
		spec := consensus.Spec{N: n, F: 2}
		if err := spec.Check(consensus.ProjectIO(res.Trace), true); err != nil {
			log.Fatalf("%s: %v", fam, err)
		}
		msgs := trace.Count(res.Trace, func(a ioa.Action) bool { return a.Kind == ioa.KindSend })
		fmt.Printf("%-8s %-10d %-10d %-10d %-8s\n", fam, res.Steps, msgs, res.MaxRound, res.Value)
	}
	fmt.Println("\nall four detector classes preserve agreement, validity and termination")
}
