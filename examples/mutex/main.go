// Mutex: the long-lived counterpart to the paper's bounded problems.
// Theorem 21 (Section 7.3) shows bounded problems — consensus, leader
// election — have no representative AFD; the problems that *do* have one
// (Lemma 20's examples) are long-lived, like mutual exclusion under
// eventual weak exclusion.  This example runs the token-circulation ◇-mutex
// algorithm over P and over ◇P and shows the difference the detector class
// makes: P's perpetual accuracy gives zero exclusion violations, while ◇P's
// inaccuracy window admits transient violations before the guaranteed
// exclusive suffix.
package main

import (
	"fmt"
	"log"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/problems"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

func run(family string, crash []ioa.Loc) (enters, violations int, err error) {
	const n = 3
	procs, err := problems.MutexProcs(n, family)
	if err != nil {
		return 0, 0, err
	}
	d, err := afd.Lookup(family, n)
	if err != nil {
		return 0, 0, err
	}
	autos := procs
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, d.Automaton(n))
	autos = append(autos, system.NewCrash(system.CrashOf(crash...)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return 0, 0, err
	}
	sched.RoundRobin(sys, sched.Options{MaxSteps: 6000, Gate: sched.CrashesAfter(60, 60)})

	tr := trace.Project(sys.Trace(), func(a ioa.Action) bool {
		return a.Kind == ioa.KindCrash ||
			(a.Kind == ioa.KindEnvOut && (a.Name == problems.ActNameEnter || a.Name == problems.ActNameExit))
	})
	if err := (problems.MutexSpec{N: n, Window: 2}).Check(tr); err != nil {
		return 0, 0, fmt.Errorf("◇-exclusion violated: %w", err)
	}
	for _, c := range problems.MutexRounds(tr) {
		enters += c
	}
	return enters, problems.MutexExclusionViolations(tr), nil
}

func main() {
	for _, tc := range []struct {
		family string
		crash  []ioa.Loc
		label  string
	}{
		{afd.FamilyP, nil, "P, failure-free"},
		{afd.FamilyP, []ioa.Loc{1}, "P, location 1 crashes"},
		{afd.FamilyEvP, nil, "◇P, failure-free"},
		{afd.FamilyEvP, []ioa.Loc{2}, "◇P, location 2 crashes"},
	} {
		enters, violations, err := run(tc.family, tc.crash)
		if err != nil {
			log.Fatalf("%s: %v", tc.label, err)
		}
		fmt.Printf("%-24s %4d critical sections, %2d transient exclusion violations\n",
			tc.label, enters, violations)
	}
	fmt.Println("\nthe eventual-exclusion suffix exists in every run — the guarantee")
	fmt.Println("class for which ◇P is a *representative* detector (long-lived problems,")
	fmt.Println("in contrast to Theorem 21's bounded problems)")
}
