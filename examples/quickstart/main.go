// Quickstart: compose the full system of Figure 1 — consensus process
// automata, reliable FIFO channels, the consensus environment EC (Algorithm
// 4), the Ω detector (Algorithm 1), and the crash automaton — run it under a
// fair schedule with one crash, and check the trace against the Section-9.1
// consensus specification.
package main

import (
	"fmt"
	"log"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
)

func main() {
	const n = 3
	omega, err := afd.Lookup(afd.FamilyOmega, n)
	if err != nil {
		log.Fatal(err)
	}

	res, err := consensus.Run(consensus.RunSpec{
		Build: consensus.BuildSpec{
			N:      n,
			Family: afd.FamilyOmega,
			Det:    omega.Automaton(n),
			Crash:  []ioa.Loc{2},   // location 2 will crash...
			Values: []int{1, 0, 1}, // ...after proposing 1
		},
		Steps:     50_000,
		Seed:      -1, // fair round-robin schedule
		CrashGate: 40, // release the crash mid-protocol
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("ran %d events (%s)\n", res.Steps, res.Reason)
	fmt.Printf("decisions: %d, agreed value: %q, rounds used: %d\n",
		res.Decisions, res.Value, res.MaxRound)

	for _, a := range consensus.Decisions(res.Trace) {
		fmt.Printf("  %v\n", a)
	}

	spec := consensus.Spec{N: n, F: 1}
	if err := spec.Check(consensus.ProjectIO(res.Trace), res.AllDecided); err != nil {
		log.Fatalf("specification violated: %v", err)
	}
	fmt.Println("trace ∈ TP: environment well-formedness, crash validity, agreement, validity, termination all hold")
}
