// Hooks: build the tagged execution tree RtD of Section 8 for a two-location
// consensus system driven by a fixed Ω sequence, compute node valences, and
// exhibit the hook of Section 9.6.1 — the exact spot where a bivalent
// execution is forced univalent — verifying the Theorem-59 properties.
package main

import (
	"fmt"
	"log"

	"repro/internal/afd"
	"repro/internal/valence"
)

func main() {
	tD := valence.OmegaTD(2, 6, nil)
	if err := (afd.Omega{}).Check(tD, 2, afd.DefaultWindow()); err != nil {
		log.Fatalf("tD ∉ TΩ: %v", err)
	}

	e, err := valence.New(valence.Config{
		N:      2,
		Family: afd.FamilyOmega,
		TD:     tD,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := e.Explore(); err != nil {
		log.Fatal(err)
	}

	st := e.Stats()
	fmt.Printf("quotient of RtD: %d nodes, %d edges\n", st.Nodes, st.Edges)
	fmt.Printf("valences: %d bivalent, %d 0-valent, %d 1-valent\n",
		st.Bivalent, st.ZeroVal, st.OneVal)
	fmt.Printf("root: %v (Proposition 51)\n", e.Valence(e.Root()))

	if err := e.CheckLemma52(); err != nil {
		log.Fatal(err)
	}
	if err := e.CheckProposition50(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("Lemma 52 (valence monotonicity) and Proposition 50 verified on every node")

	hooks := e.FindHooks(3)
	if len(hooks) == 0 {
		log.Fatal("no hooks found — Lemma 55 should guarantee one")
	}
	for _, h := range hooks {
		if err := e.VerifyHook(h); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%v\n", h)
		fmt.Printf("  l-edge action %v and r-edge action %v are non-⊥ (Lemma 56),\n", h.LAct, h.RAct)
		fmt.Printf("  both occur at location %v (Lemma 57), which is live in tD (Lemma 58)\n", h.Critical)
	}
	fmt.Println("\nTheorem 59 verified: the transition from bivalence to univalence")
	fmt.Println("happens at a live location — that is how the AFD's information")
	fmt.Println("circumvents the FLP impossibility")
}
