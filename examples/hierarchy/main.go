// Hierarchy: the ⪰ relation of Section 7 made executable.  One canonical P
// automaton drives a fan of reductions — P→◇P, P→Ω, P→Σ, and the chained
// P→◇P→Ω of Theorem 15 — and every derived stream passes its own detector's
// membership checker: the stronger detector solves everything the weaker
// ones specify.
package main

import (
	"fmt"
	"log"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/transform"
)

func main() {
	const n = 4
	w := afd.DefaultWindow()

	// Pick the reductions out of the catalog.
	byName := make(map[string]transform.Local)
	for _, l := range transform.Catalog() {
		byName[l.Name] = l
	}
	fan := []transform.Local{byName["P→◇P"], byName["P→Ω"], byName["P→Σ"]}

	// One system: the P automaton, all three reductions side by side, a
	// crash automaton killing location 3 mid-run.
	src, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		log.Fatal(err)
	}
	autos := []ioa.Automaton{src.Automaton(n)}
	for _, l := range fan {
		autos = append(autos, l.Procs(n)...)
	}
	autos = append(autos, system.NewCrash(system.CrashOf(3)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		log.Fatal(err)
	}
	sched.RoundRobin(sys, sched.Options{MaxSteps: 2000, Gate: sched.CrashesAfter(400, 0)})
	full := sys.Trace()

	for _, l := range fan {
		tgt, err := afd.Lookup(l.To, n)
		if err != nil {
			log.Fatal(err)
		}
		derived := trace.FD(full, l.To)
		if err := tgt.Check(derived, n, w); err != nil {
			log.Fatalf("%s: derived trace rejected: %v", l.Name, err)
		}
		fmt.Printf("%-6s: %4d derived events ∈ T(%s)\n", l.Name, len(derived), l.To)
	}

	// Theorem 15: compose P→◇P with ◇P→Ω and get a valid Ω.
	chain := transform.Chain{byName["P→◇P"], byName["◇P→Ω"]}
	procs, err := chain.Procs(n)
	if err != nil {
		log.Fatal(err)
	}
	tr, err := transform.Run(src, procs, afd.FamilyOmega, transform.RunSpec{
		N: n, Crash: []ioa.Loc{3}, Seed: -1, Steps: 2000, CrashGate: 400,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := (afd.Omega{}).Check(tr, n, w); err != nil {
		log.Fatalf("chain %s: %v", chain.Names(), err)
	}
	fmt.Printf("%s: %4d derived events ∈ T(%s)  (Theorem 15)\n",
		chain.Names(), len(tr), afd.FamilyOmega)
}
