// Broadcast: the two broadcast problems the paper names — Uniform Reliable
// Broadcast (§1.1) and Terminating Reliable Broadcast (§7.3) — solved and
// checked.  URB runs twice: the detector-free majority-diffusion algorithm
// (f < n/2) and the P-based variant that rides out n−1 crashes.  TRB runs
// with a live and with a crashing sender; the crashing sender yields the
// agreed "sender faulty" verdict.
package main

import (
	"fmt"
	"log"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/problems"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

func main() {
	urb("majority diffusion, no detector, f<n/2", false, 3, []ioa.Loc{2})
	urb("over P, f≤n−1", true, 3, []ioa.Loc{0, 1})
	trb("live sender", nil)
	trb("crashing sender", []ioa.Loc{0})
}

func urb(label string, perfect bool, n int, crash []ioa.Loc) {
	var procs []ioa.Automaton
	var err error
	if perfect {
		procs, err = problems.URBPerfectProcs(n, afd.FamilyP)
	} else {
		procs = problems.URBMajorityProcs(n)
	}
	if err != nil {
		log.Fatal(err)
	}
	autos := procs
	autos = append(autos, system.Channels(n)...)
	for i := 0; i < n; i++ {
		autos = append(autos, problems.NewBroadcasterEnv(ioa.Loc(i), fmt.Sprintf("m%d", i)))
	}
	if perfect {
		d, err := afd.Lookup(afd.FamilyP, n)
		if err != nil {
			log.Fatal(err)
		}
		autos = append(autos, d.Automaton(n))
	}
	autos = append(autos, system.NewCrash(system.CrashOf(crash...)))
	sys := ioa.MustNewSystem(autos...)
	sched.RoundRobin(sys, sched.Options{MaxSteps: 30_000, Gate: sched.CrashesAfter(20, 20)})

	tr := trace.Project(sys.Trace(), func(a ioa.Action) bool {
		return a.Kind == ioa.KindCrash ||
			(a.Kind == ioa.KindEnvIn && a.Name == problems.ActNameBroadcast) ||
			(a.Kind == ioa.KindEnvOut && a.Name == problems.ActNameDeliver)
	})
	if err := (problems.URBSpec{N: n}).Check(tr, true); err != nil {
		log.Fatalf("URB %s: %v", label, err)
	}
	delivers := trace.Count(tr, func(a ioa.Action) bool { return a.Kind == ioa.KindEnvOut })
	fmt.Printf("URB %-38s n=%d crashes=%d: %2d deliveries, uniform agreement holds\n",
		label, n, len(crash), delivers)
}

func trb(label string, crash []ioa.Loc) {
	const n = 3
	procs, err := problems.TRBProcs(n, 0, afd.FamilyP)
	if err != nil {
		log.Fatal(err)
	}
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		log.Fatal(err)
	}
	autos := procs
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, problems.NewTRBSenderEnv(0, "the-value"))
	autos = append(autos, d.Automaton(n))
	autos = append(autos, system.NewCrash(system.CrashOf(crash...)))
	sys := ioa.MustNewSystem(autos...)
	opts := sched.Options{MaxSteps: 60_000}
	if len(crash) > 0 {
		opts.Gate = sched.CrashesAfter(10, 10)
	}
	sched.RoundRobin(sys, opts)

	tr := trace.Project(sys.Trace(), func(a ioa.Action) bool {
		return a.Kind == ioa.KindCrash ||
			(a.Kind == ioa.KindEnvIn && a.Name == problems.ActNameTRBBcast) ||
			(a.Kind == ioa.KindEnvOut && a.Name == problems.ActNameTRBDeliver)
	})
	if err := (problems.TRBSpec{N: n, Sender: 0}).Check(tr, true); err != nil {
		log.Fatalf("TRB %s: %v", label, err)
	}
	verdict := "(none)"
	for _, a := range tr {
		if a.Kind == ioa.KindEnvOut {
			verdict = a.Payload
			break
		}
	}
	fmt.Printf("TRB %-38s n=%d crashes=%d: agreed verdict %q\n", label, n, len(crash), verdict)
}
