// Self-implementability walkthrough (Algorithm 3, Theorem 13): stack the
// Aself queue automata on the canonical P detector, run with a crash, and
// replay the Section-6 proof on the resulting trace — the rEV event mapping
// (Lemma 2), the sampled subsequence tˆ (Lemma 6), the constrained
// reordering (Lemma 9), and the final membership conclusion (Lemma 12).
package main

import (
	"fmt"
	"log"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/selfimpl"
	"repro/internal/system"
	"repro/internal/trace"
)

func main() {
	const n = 3
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		log.Fatal(err)
	}
	ren := selfimpl.Renaming{From: afd.FamilyP, To: afd.FamilyP + "'"}

	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, selfimpl.NewCollection(n, ren)...)
	autos = append(autos, system.NewCrash(system.CrashOf(2)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		log.Fatal(err)
	}
	sched.RoundRobin(sys, sched.Options{MaxSteps: 300, Gate: sched.CrashesAfter(80, 0)})
	full := sys.Trace()

	mixed := trace.Project(full, func(a ioa.Action) bool {
		return a.Kind == ioa.KindCrash ||
			(a.Kind == ioa.KindFD && (a.Name == ren.From || a.Name == ren.To))
	})
	fmt.Printf("trace over Iˆ ∪ OD ∪ OD′: %d events; first 10:\n", len(mixed))
	for i := 0; i < 10 && i < len(mixed); i++ {
		fmt.Printf("  %2d %v\n", i, mixed[i])
	}

	rep, err := selfimpl.VerifyProof(mixed, n, ren)
	if err != nil {
		log.Fatalf("proof pipeline: %v", err)
	}
	fmt.Printf("\nLemma 2: rEV maps %d renamed events to their sources\n", len(rep.REV))
	fmt.Printf("Lemma 6: tˆ retains %d of the source outputs and is a sampling of t|Iˆ∪OD\n", rep.SampledLen)
	fmt.Println("Lemma 9: t|Iˆ∪OD′ is a constrained reordering of rIO(tˆ|Iˆ∪OD)")

	back := ren.InvertTrace(trace.FD(full, ren.To))
	if err := d.Check(back, n, afd.DefaultWindow()); err != nil {
		log.Fatalf("Lemma 12 conclusion failed: %v", err)
	}
	fmt.Println("Lemma 12: t|Iˆ∪OD′ ∈ TD′ — Aself used P to solve a renaming of P (Theorem 13)")
}
