// FLP control experiment: the same consensus algorithm, the same crash of
// the round-1 coordinator, run twice — once with no failure detector (the
// processes wait forever for the dead coordinator: termination fails,
// consistent with the impossibility of [11]) and once with Ω (the leader
// moves off the dead location and the run decides, Section 9).
package main

import (
	"fmt"
	"log"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
)

func run(family string, det ioa.Automaton) *consensus.Result {
	res, err := consensus.Run(consensus.RunSpec{
		Build: consensus.BuildSpec{
			N:      3,
			Family: family,
			Det:    det,
			Crash:  []ioa.Loc{0}, // round-1 coordinator
			Values: []int{0, 1, 1},
		},
		Steps: 100_000,
		Seed:  -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	return res
}

func main() {
	// Without any detector the run stalls: the coordinator is dead, nobody
	// may ever suspect it, and waiting forever is the only safe behavior.
	bare := run("", nil)
	fmt.Printf("no detector: %d decisions after %d steps (%s)\n",
		bare.Decisions, bare.Steps, bare.Reason)
	if bare.Decisions != 0 {
		log.Fatal("expected a stall without failure detection")
	}

	// With Ω, the detector's eventual leadership information is exactly
	// what breaks the symmetry: the run decides.
	omega, err := afd.Lookup(afd.FamilyOmega, 3)
	if err != nil {
		log.Fatal(err)
	}
	with := run(afd.FamilyOmega, omega.Automaton(3))
	fmt.Printf("with Ω:      %d decisions after %d steps (%s), value %q\n",
		with.Decisions, with.Steps, with.Reason, with.Value)
	if !with.AllDecided {
		log.Fatal("expected a decision with Ω")
	}
	fmt.Println("\nthe only difference between the runs is the AFD — its crash")
	fmt.Println("information is what circumvents the FLP impossibility")
}
