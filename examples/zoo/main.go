// Zoo: run every detector of Section 3.3 side by side under the same fault
// pattern, print a tail of each output stream, and verify membership plus
// the two closure properties that make each a genuine AFD.
package main

import (
	"fmt"
	"log"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/trace"
)

func main() {
	const n = 4
	w := afd.DefaultWindow()
	plan := []ioa.Loc{3, 0} // two crashes; locations 1, 2 stay live

	fmt.Printf("%-10s %-34s %-8s %-9s %-9s\n", "family", "final output", "member", "sampling", "reorder")
	for _, fam := range afd.Families(n) {
		d, err := afd.Lookup(fam, n)
		if err != nil {
			log.Fatal(err)
		}
		tr, err := afd.RunCanonical(d, afd.RunSpec{
			N: n, Crash: plan, Steps: 240, Seed: -1, CrashGate: 50,
		})
		if err != nil {
			log.Fatal(err)
		}
		last := "-"
		for i := len(tr) - 1; i >= 0; i-- {
			if tr[i].Kind == ioa.KindFD {
				last = tr[i].String()
				break
			}
		}
		member := verdict(d.Check(tr, n, w))
		samp := verdict(afd.CheckClosureUnderSampling(d, tr, n, w, 10, 1))
		reord := verdict(afd.CheckClosureUnderReordering(d, tr, n, w, 10, 1))
		fmt.Printf("%-10s %-34s %-8s %-9s %-9s\n", fam, last, member, samp, reord)
	}

	// The negative controls of Section 3.4 and footnote 1.
	fmt.Println("\nnegative controls:")
	honest, err := afd.RunAutomaton(afd.MaraboutHonest(n), afd.FamilyMarabout, plan, 240, 50)
	if err != nil {
		log.Fatal(err)
	}
	if err := afd.CheckMarabout(honest, n, w); err != nil {
		fmt.Printf("  Marabout: causal automaton rejected as expected (%v)\n", err)
	} else {
		log.Fatal("Marabout: causal automaton accepted — it should be impossible")
	}

	base := trace.T{
		ioa.FDOutput(afd.FamilyPPlus, 1, "{}"),
		ioa.Crash(0),
		ioa.FDOutput(afd.FamilyPPlus, 1, "{0}"),
	}
	reordered := trace.T{base[1], base[0], base[2]}
	if trace.IsConstrainedReordering(reordered, base) == nil &&
		afd.CheckPPlus(base, 2, w) == nil && afd.CheckPPlus(reordered, 2, w) != nil {
		fmt.Println("  P+: admissible trace has a constrained reordering outside TP+ — P+ is not an AFD")
	} else {
		log.Fatal("P+ closure demonstration failed")
	}
}

func verdict(err error) string {
	if err != nil {
		return "FAIL"
	}
	return "ok"
}
