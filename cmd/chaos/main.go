// Command chaos drives the fault-injection harness of internal/chaos:
// randomized fault plans and adversarial schedules swept against the
// repository's specification checkers, with failing runs shrunk to minimal
// reproducers and written as replayable JSON artifacts.
//
// Subcommands:
//
//	chaos sweep  [-n 3] [-t -1] [-seeds 8] [-steps 0] [-targets LIST]
//	             [-scheds rr,random,lifo] [-workers 0] [-out DIR]
//	    Sweep targets × schedulers × seeds × fault plans; shrink and
//	    report every violation, writing one artifact per failure to -out.
//
//	chaos run    -target detector:FD-Ω [-n 3] [-crash 0,2] [-sched random]
//	             [-seed 1] [-steps 0] [-crash-after 0] [-crash-gap 0]
//	             [-delay-nth 0] [-delay-for 0] [-topo ring] [-drop 100]
//	             [-dup 0] [-reorder 0] [-net-seed 1] [-partition-mask 3]
//	             [-partition-at 0] [-heal-at 0] [-out artifact.json] [-qos]
//	    Execute one fully specified run — optionally over an adversarial
//	    network (restricted topology, lossy links, partition window) —
//	    and print the verdict.
//
//	chaos replay ARTIFACT.json
//	    Re-execute a recorded run and confirm it reproduces the recorded
//	    verdict and trace exactly.
//
//	chaos survey [-n 4] [-seeds 1] [-steps 0] [-workers 4] [-short]
//	    Sweep the property-survival grid: scenarios (topologies, loss
//	    rates, partitions) × message-passing targets, every run under a
//	    stride-1 differential oracle with its artifact replayed
//	    bit-for-bit.  Prints the survival table; exits non-zero unless the
//	    grid is clean and both controls hold.
//
// Examples:
//
//	chaos sweep
//	chaos sweep -targets detector:slanderer -out /tmp/artifacts
//	chaos run -target consensus:FD-Ω -n 5 -crash 1,3 -sched lifo -seed 7
//	chaos run -target gossip:FD-Q>FD-P -n 4 -crash 1 -topo ring
//	chaos replay /tmp/artifacts/fail-0.json
//	chaos survey -short
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/causal"
	"repro/internal/chaos"
	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "chaos:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: chaos sweep|run|replay [flags]")
	}
	switch args[0] {
	case "sweep":
		return runSweep(args[1:])
	case "run":
		return runOne(args[1:])
	case "replay":
		return runReplay(args[1:])
	case "survey":
		return runSurvey(args[1:])
	default:
		return fmt.Errorf("unknown subcommand %q (want sweep, run, replay, or survey)", args[0])
	}
}

func parseTargets(s string) ([]chaos.Target, error) {
	if s == "" {
		return chaos.DefaultTargets(), nil
	}
	var out []chaos.Target
	for _, id := range strings.Split(s, ",") {
		t, err := chaos.ParseTarget(strings.TrimSpace(id))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

func parseLocs(s string) ([]ioa.Loc, error) {
	if s == "" {
		return nil, nil
	}
	var out []ioa.Loc
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad location %q: %v", part, err)
		}
		out = append(out, ioa.Loc(v))
	}
	return out, nil
}

func runSweep(args []string) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 3, "number of locations")
		maxT     = fs.Int("t", -1, "max crashes per plan (-1 = each target's tolerance)")
		seeds    = fs.Int("seeds", 8, "seeds per (target, scheduler, plan)")
		steps    = fs.Int("steps", 0, "step bound per run (0 = default)")
		targets  = fs.String("targets", "", "comma-separated target IDs (default Ω, ◇P, consensus:Ω)")
		scheds   = fs.String("scheds", "", "comma-separated schedulers: rr,random,lifo (default all)")
		workers  = fs.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
		outDir   = fs.String("out", "", "write one artifact per failure to this directory")
		telAddr  = fs.String("telemetry.addr", "", "serve expvar+pprof+metrics on this address")
		traceOut = fs.String("trace.out", "", "write a Chrome trace_event JSON file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tel, flush, err := telemetry.Init(*telAddr, *traceOut)
	if err != nil {
		return err
	}
	defer flush()
	ts, err := parseTargets(*targets)
	if err != nil {
		return err
	}
	var schedList []string
	if *scheds != "" {
		schedList = strings.Split(*scheds, ",")
	}
	rep := chaos.Sweep(chaos.SweepConfig{
		Targets:   ts,
		N:         *n,
		MaxT:      *maxT,
		Seeds:     *seeds,
		Steps:     *steps,
		Scheds:    schedList,
		Workers:   *workers,
		Shrink:    true,
		Telemetry: tel,
	})
	fmt.Println(rep.Summary())
	for _, e := range rep.Errors {
		fmt.Println("  error:", e)
	}
	for i, f := range rep.Failures {
		fmt.Printf("  FAIL %s sched=%s seed=%d steps=%d plan=%v\n       %v\n",
			f.Run.Target.ID(), f.Run.Sched, f.Run.Seed, f.Steps, f.Run.Plan, f.Err)
		if *outDir != "" {
			path := filepath.Join(*outDir, fmt.Sprintf("fail-%d.json", i))
			if err := writeArtifact(path, f.Artifact()); err != nil {
				return err
			}
			fmt.Println("       artifact:", path)
		}
	}
	if len(rep.Failures) > 0 || len(rep.Errors) > 0 {
		return fmt.Errorf("%d violations", len(rep.Failures)+len(rep.Errors))
	}
	return nil
}

func runOne(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	var (
		target     = fs.String("target", "detector:FD-Ω", "target ID, e.g. detector:FD-P or consensus:FD-Ω")
		n          = fs.Int("n", 3, "number of locations")
		crash      = fs.String("crash", "", "comma-separated fault plan, in crash order")
		schedKind  = fs.String("sched", "rr", "scheduler: rr, random, or lifo")
		seed       = fs.Int64("seed", 0, "scheduler seed (random/lifo)")
		steps      = fs.Int("steps", 0, "step bound (0 = default)")
		crashAfter = fs.Int("crash-after", 0, "gate: block crashes until this step")
		crashGap   = fs.Int("crash-gap", 0, "gate: steps between crash releases")
		delayNth   = fs.Int("delay-nth", 0, "gate: delay every nth delivery")
		delayFor   = fs.Int("delay-for", 0, "gate: delivery delay in steps")
		topo       = fs.String("topo", "", "network topology: full, ring, star:H, grid:RxC, cut:L, links:a>b,...")
		drop       = fs.Int("drop", 0, "per-link drop rate in permille")
		dup        = fs.Int("dup", 0, "per-link duplication rate in permille")
		reorder    = fs.Int("reorder", 0, "per-link reorder rate in permille")
		netSeed    = fs.Int64("net-seed", 1, "seed for link loss decisions")
		partMask   = fs.Uint64("partition-mask", 0, "gate: partition side-1 location bitmask (0 = none)")
		partAt     = fs.Int("partition-at", 0, "gate: partition engages at this step")
		healAt     = fs.Int("heal-at", 0, "gate: partition heals at this step (≤ partition-at: never)")
		outFile    = fs.String("out", "", "write the run as an artifact to this file")
		qos        = fs.Bool("qos", false, "print per-detector QoS analytics for the run")
		telAddr    = fs.String("telemetry.addr", "", "serve expvar+pprof+metrics on this address")
		traceOut   = fs.String("trace.out", "", "write a Chrome trace_event JSON file on exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	tel, flush, err := telemetry.Init(*telAddr, *traceOut)
	if err != nil {
		return err
	}
	defer flush()
	t, err := chaos.ParseTarget(*target)
	if err != nil {
		return err
	}
	locs, err := parseLocs(*crash)
	if err != nil {
		return err
	}
	gates := chaos.NoGates()
	gates.CrashAfter, gates.CrashGap = *crashAfter, *crashGap
	gates.DelayNth, gates.DelayFor = *delayNth, *delayFor
	gates.PartitionMask, gates.PartitionAt, gates.HealAt = *partMask, *partAt, *healAt
	topology, err := system.ParseTopology(*n, *topo)
	if err != nil {
		return err
	}
	net := system.NetSpec{Topo: topology, Drop: *drop, Dup: *dup, Reorder: *reorder}
	if net.Lossy() {
		net.Seed = *netSeed
	}
	var instrument func(*chaos.Built) func() error
	if tel != nil {
		instrument = chaos.TelemetryHook(tel)
	}
	v, err := chaos.ExecuteInstrumented(chaos.Run{
		Target: t,
		N:      *n,
		Plan:   system.CrashOf(locs...),
		Gates:  gates,
		Net:    net,
		Sched:  *schedKind,
		Seed:   *seed,
		Steps:  *steps,
	}, instrument)
	if err != nil {
		return err
	}
	fmt.Printf("%s: %d steps (%s), %d trace events\n", t.ID(), v.Steps, v.Reason, len(v.Trace))
	if *qos {
		for _, s := range causal.Compute(v.Trace, nil) {
			fmt.Printf("qos %s: %d observers, %d detections (mean %.1f / max %d steps), propagation %d steps, %d mistakes\n",
				s.Family, s.Observers, len(s.Detections),
				s.DetectionMeanSteps, s.DetectionMaxSteps, s.PropagationSteps, s.MistakeCount)
		}
	}
	if *outFile != "" {
		a := v.Artifact()
		// Cross-link artifact and Chrome trace both ways when both exist.
		if *traceOut != "" {
			a.TraceRef = *traceOut
			if reg, ok := tel.(*telemetry.Registry); ok {
				reg.Trace().SetMeta("artifact", *outFile)
			}
		}
		if err := writeArtifact(*outFile, a); err != nil {
			return err
		}
		fmt.Println("artifact:", *outFile)
	}
	if v.Failed() {
		return fmt.Errorf("specification violated: %w", v.Err)
	}
	fmt.Println("specification satisfied")
	return nil
}

func runReplay(args []string) error {
	fs := flag.NewFlagSet("replay", flag.ContinueOnError)
	var (
		telAddr  = fs.String("telemetry.addr", "", "serve expvar+pprof+metrics on this address")
		traceOut = fs.String("trace.out", "", "re-trace the replayed run to a Chrome trace_event JSON file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: chaos replay [flags] ARTIFACT.json")
	}
	tel, flush, err := telemetry.Init(*telAddr, *traceOut)
	if err != nil {
		return err
	}
	defer flush()
	f, err := os.Open(fs.Arg(0))
	if err != nil {
		return err
	}
	defer f.Close()
	a, err := trace.ReadArtifact(f)
	if err != nil {
		return err
	}
	var instrument func(*chaos.Built) func() error
	if tel != nil {
		instrument = chaos.TelemetryHook(tel)
		if reg, ok := tel.(*telemetry.Registry); ok {
			reg.Trace().SetMeta("artifact", fs.Arg(0))
		}
	}
	v, err := chaos.ReplayInstrumented(a, instrument)
	if err != nil {
		return err
	}
	fmt.Printf("%s: replayed %d steps deterministically\n", a.Target, v.Steps)
	if v.Failed() {
		fmt.Println("reproduced violation:", v.Err)
	} else {
		fmt.Println("run satisfies the specification (as recorded)")
	}
	return nil
}

func runSurvey(args []string) error {
	fs := flag.NewFlagSet("survey", flag.ContinueOnError)
	var (
		n       = fs.Int("n", 4, "number of locations")
		seeds   = fs.Int("seeds", 1, "random-scheduler seeds per cell")
		steps   = fs.Int("steps", 0, "step bound per run (0 = default)")
		workers = fs.Int("workers", 4, "parallel cells")
		short   = fs.Bool("short", false, "CI grid: fewer scenarios and targets")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	cfg := chaos.SurveyConfig{N: *n, Seeds: *seeds, Steps: *steps, Workers: *workers}
	if *short {
		if cfg.Steps <= 0 {
			cfg.Steps = 1200
		}
		cfg.Targets = chaos.SurveyShortTargets()
		cfg.Scenarios = chaos.SurveyShortScenarios(*n, cfg.Steps)
	}
	rep, err := chaos.Survey(cfg)
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	if !rep.Clean() {
		return fmt.Errorf("survey not clean: an oracle or replay disagreed (see INFRA rows)")
	}
	if err := rep.Control(); err != nil {
		return err
	}
	fmt.Println("survey clean: every cell's oracle-instrumented run and artifact replay agree; controls hold")
	return nil
}

func writeArtifact(path string, a *trace.Artifact) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteArtifact(f, a)
}
