// Command benchjson measures the E1 event-throughput experiment (the
// Figure-1 composition of EXPERIMENTS.md driven to a fixed step budget) and
// the E10 valence-exploration throughput (BenchmarkValence* configurations,
// serial and parallel), and writes the results as JSON.  CI runs it on
// every pull request and uploads the file as the BENCH_pr artifact so
// throughput regressions across PRs are a download-and-diff away.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/valence"
)

// sizeResult is the E1 row for one system size.
type sizeResult struct {
	N            int     `json:"n"`
	Events       int     `json:"events"`
	NsBest       int64   `json:"ns_best"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// valenceResult is one E10 exploration-throughput row.
type valenceResult struct {
	Config      string  `json:"config"`
	Workers     int     `json:"workers"` // 0 = GOMAXPROCS
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	NsBest      int64   `json:"ns_best"`
	NodesPerSec float64 `json:"nodes_per_sec"`
}

// report is the BENCH_pr.json schema.
type report struct {
	Experiment string          `json:"experiment"`
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	Steps      int             `json:"steps"`
	Reps       int             `json:"reps"`
	Sizes      []sizeResult    `json:"sizes"`
	Valence    []valenceResult `json:"valence"`
}

func run(n, steps int) (events int, elapsed time.Duration, err error) {
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		return 0, 0, err
	}
	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.NewCrash(system.NoFaults()))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	sched.RoundRobin(sys, sched.Options{MaxSteps: steps})
	return sys.Steps(), time.Since(start), nil
}

func main() {
	out := flag.String("out", "BENCH_pr.json", "output path")
	steps := flag.Int("steps", 100_000, "events per measured run")
	reps := flag.Int("reps", 3, "repetitions per size (best is reported)")
	flag.Parse()

	rep := report{
		Experiment: "E1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Steps:      *steps,
		Reps:       *reps,
	}
	for _, n := range []int{4, 8, 16, 32} {
		best := sizeResult{N: n}
		for r := 0; r < *reps; r++ {
			events, el, err := run(n, *steps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: n=%d: %v\n", n, err)
				os.Exit(1)
			}
			if best.NsBest == 0 || el.Nanoseconds() < best.NsBest {
				best.Events = events
				best.NsBest = el.Nanoseconds()
				best.EventsPerSec = float64(events) / el.Seconds()
			}
		}
		rep.Sizes = append(rep.Sizes, best)
		fmt.Printf("n=%-3d %d events in %v (%.0f events/sec)\n",
			n, best.Events, time.Duration(best.NsBest), best.EventsPerSec)
	}
	valenceConfigs := []struct {
		name string
		cfg  valence.Config
	}{
		{"omega n=2 rounds=6", valence.Config{N: 2, Family: afd.FamilyOmega, TD: valence.OmegaTD(2, 6, nil)}},
		{"perfect s n=2 crash", valence.Config{N: 2, Family: afd.FamilyP, Algo: "s",
			TD: valence.PerfectTD(2, 4, map[ioa.Loc]int{1: 1})}},
	}
	for _, vc := range valenceConfigs {
		for _, workers := range []int{1, 0} {
			best := valenceResult{Config: vc.name, Workers: workers}
			for r := 0; r < *reps; r++ {
				cfg := vc.cfg
				cfg.Workers = workers
				e, err := valence.New(cfg)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", vc.name, err)
					os.Exit(1)
				}
				start := time.Now()
				if err := e.Explore(); err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", vc.name, err)
					os.Exit(1)
				}
				el := time.Since(start)
				if best.NsBest == 0 || el.Nanoseconds() < best.NsBest {
					best.Nodes = e.NumNodes()
					best.Edges = e.NumEdges()
					best.NsBest = el.Nanoseconds()
					best.NodesPerSec = float64(e.NumNodes()) / el.Seconds()
				}
			}
			rep.Valence = append(rep.Valence, best)
			fmt.Printf("valence %-22s workers=%-3d %d nodes in %v (%.0f nodes/sec)\n",
				best.Config, workers, best.Nodes, time.Duration(best.NsBest), best.NodesPerSec)
		}
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
