// Command benchjson measures the E1 event-throughput experiment (the
// Figure-1 composition of EXPERIMENTS.md driven to a fixed step budget) and
// writes the results as JSON, one record per system size.  CI runs it on
// every pull request and uploads the file as the BENCH_pr artifact so
// throughput regressions across PRs are a download-and-diff away.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
)

// sizeResult is the E1 row for one system size.
type sizeResult struct {
	N            int     `json:"n"`
	Events       int     `json:"events"`
	NsBest       int64   `json:"ns_best"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// report is the BENCH_pr.json schema.
type report struct {
	Experiment string       `json:"experiment"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	Steps      int          `json:"steps"`
	Reps       int          `json:"reps"`
	Sizes      []sizeResult `json:"sizes"`
}

func run(n, steps int) (events int, elapsed time.Duration, err error) {
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		return 0, 0, err
	}
	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.NewCrash(system.NoFaults()))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	sched.RoundRobin(sys, sched.Options{MaxSteps: steps})
	return sys.Steps(), time.Since(start), nil
}

func main() {
	out := flag.String("out", "BENCH_pr.json", "output path")
	steps := flag.Int("steps", 100_000, "events per measured run")
	reps := flag.Int("reps", 3, "repetitions per size (best is reported)")
	flag.Parse()

	rep := report{
		Experiment: "E1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Steps:      *steps,
		Reps:       *reps,
	}
	for _, n := range []int{4, 8, 16, 32} {
		best := sizeResult{N: n}
		for r := 0; r < *reps; r++ {
			events, el, err := run(n, *steps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: n=%d: %v\n", n, err)
				os.Exit(1)
			}
			if best.NsBest == 0 || el.Nanoseconds() < best.NsBest {
				best.Events = events
				best.NsBest = el.Nanoseconds()
				best.EventsPerSec = float64(events) / el.Seconds()
			}
		}
		rep.Sizes = append(rep.Sizes, best)
		fmt.Printf("n=%-3d %d events in %v (%.0f events/sec)\n",
			n, best.Events, time.Duration(best.NsBest), best.EventsPerSec)
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
