// Command benchjson measures the E1 event-throughput experiment (the
// Figure-1 composition of EXPERIMENTS.md driven to a fixed step budget) and
// the E10 valence-exploration throughput (BenchmarkValence* configurations,
// serial and parallel), and writes the results as JSON.  CI runs it on
// every pull request and uploads the file as the BENCH_pr artifact so
// throughput regressions across PRs are a download-and-diff away.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/oracle"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/valence"
)

// sizeResult is the E1 row for one system size.
type sizeResult struct {
	N            int     `json:"n"`
	Events       int     `json:"events"`
	NsBest       int64   `json:"ns_best"`
	EventsPerSec float64 `json:"events_per_sec"`
}

// valenceResult is one E10 exploration-throughput row.
type valenceResult struct {
	Config      string  `json:"config"`
	Workers     int     `json:"workers"` // 0 = GOMAXPROCS
	Nodes       int     `json:"nodes"`
	Edges       int     `json:"edges"`
	NsBest      int64   `json:"ns_best"`
	NodesPerSec float64 `json:"nodes_per_sec"`
}

// report is the BENCH_pr.json schema.
type report struct {
	Experiment string          `json:"experiment"`
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	Steps      int             `json:"steps"`
	Reps       int             `json:"reps"`
	Sizes      []sizeResult    `json:"sizes"`
	Valence    []valenceResult `json:"valence"`
	// Telemetry is a metric snapshot from one fully instrumented pass (E1
	// n=8 with an attached differential oracle, plus one telemetered valence
	// exploration) run AFTER the timed reps above, so the timings stay
	// un-instrumented while the report still records events applied, oracle
	// sweep counts and latencies, channel-depth distribution, and the
	// valence frontier peak for cross-PR comparison.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

func run(n, steps int) (events int, elapsed time.Duration, err error) {
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		return 0, 0, err
	}
	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.NewCrash(system.NoFaults()))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return 0, 0, err
	}
	start := time.Now()
	sched.RoundRobin(sys, sched.Options{MaxSteps: steps})
	return sys.Steps(), time.Since(start), nil
}

// telemetrySection performs the single instrumented pass feeding the
// report's telemetry section: the E1 composition at n=8 with every plane
// wired (system, channels, scheduler) and a differential oracle attached,
// then one valence exploration reporting frontier width.
func telemetrySection(reg *telemetry.Registry, steps int) (*telemetry.Snapshot, error) {
	const n = 8
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		return nil, err
	}
	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.NewCrash(system.NoFaults()))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return nil, err
	}
	sys.SetTelemetry(reg)
	system.InstrumentChannels(sys, reg)
	reg.SetTaskLabels(system.TaskLabels(sys))
	o := oracle.Attach(sys, oracle.Options{Telemetry: reg})
	sched.RoundRobin(sys, sched.Options{MaxSteps: steps, Telemetry: reg})
	if err := o.Check(); err != nil {
		return nil, fmt.Errorf("oracle divergence during telemetry pass: %w", err)
	}
	e, err := valence.New(valence.Config{
		N: 2, Family: afd.FamilyOmega, TD: valence.OmegaTD(2, 6, nil), Telemetry: reg,
	})
	if err != nil {
		return nil, err
	}
	if err := e.Explore(); err != nil {
		return nil, err
	}
	snap := reg.Snapshot()
	return &snap, nil
}

func main() {
	out := flag.String("out", "BENCH_pr.json", "output path")
	steps := flag.Int("steps", 100_000, "events per measured run")
	reps := flag.Int("reps", 3, "repetitions per size (best is reported)")
	telAddr := flag.String("telemetry.addr", "", "serve expvar+pprof+metrics on this address")
	traceOut := flag.String("trace.out", "", "write a Chrome trace_event JSON file on exit")
	flag.Parse()

	tel, flush, err := telemetry.Init(*telAddr, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The telemetry section always runs; the flags only add live serving and
	// a trace file on top of the same registry.
	reg, ok := tel.(*telemetry.Registry)
	if !ok {
		reg = telemetry.NewRegistry()
	}

	rep := report{
		Experiment: "E1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Steps:      *steps,
		Reps:       *reps,
	}
	for _, n := range []int{4, 8, 16, 32} {
		best := sizeResult{N: n}
		for r := 0; r < *reps; r++ {
			events, el, err := run(n, *steps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: n=%d: %v\n", n, err)
				os.Exit(1)
			}
			if best.NsBest == 0 || el.Nanoseconds() < best.NsBest {
				best.Events = events
				best.NsBest = el.Nanoseconds()
				best.EventsPerSec = float64(events) / el.Seconds()
			}
		}
		rep.Sizes = append(rep.Sizes, best)
		fmt.Printf("n=%-3d %d events in %v (%.0f events/sec)\n",
			n, best.Events, time.Duration(best.NsBest), best.EventsPerSec)
	}
	valenceConfigs := []struct {
		name string
		cfg  valence.Config
	}{
		{"omega n=2 rounds=6", valence.Config{N: 2, Family: afd.FamilyOmega, TD: valence.OmegaTD(2, 6, nil)}},
		{"perfect s n=2 crash", valence.Config{N: 2, Family: afd.FamilyP, Algo: "s",
			TD: valence.PerfectTD(2, 4, map[ioa.Loc]int{1: 1})}},
	}
	for _, vc := range valenceConfigs {
		for _, workers := range []int{1, 0} {
			best := valenceResult{Config: vc.name, Workers: workers}
			for r := 0; r < *reps; r++ {
				cfg := vc.cfg
				cfg.Workers = workers
				e, err := valence.New(cfg)
				if err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", vc.name, err)
					os.Exit(1)
				}
				start := time.Now()
				if err := e.Explore(); err != nil {
					fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", vc.name, err)
					os.Exit(1)
				}
				el := time.Since(start)
				if best.NsBest == 0 || el.Nanoseconds() < best.NsBest {
					best.Nodes = e.NumNodes()
					best.Edges = e.NumEdges()
					best.NsBest = el.Nanoseconds()
					best.NodesPerSec = float64(e.NumNodes()) / el.Seconds()
				}
			}
			rep.Valence = append(rep.Valence, best)
			fmt.Printf("valence %-22s workers=%-3d %d nodes in %v (%.0f nodes/sec)\n",
				best.Config, workers, best.Nodes, time.Duration(best.NsBest), best.NodesPerSec)
		}
	}
	snap, err := telemetrySection(reg, *steps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: telemetry pass: %v\n", err)
		os.Exit(1)
	}
	rep.Telemetry = snap
	fmt.Printf("telemetry: %d events applied, %d oracle sweeps, frontier peak %d\n",
		snap.Counters["events_applied"], snap.Counters["oracle_sweeps"],
		snap.Gauges["valence_frontier_peak"])

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	flush()
}
