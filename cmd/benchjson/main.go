// Command benchjson measures the E1 event-throughput experiment (the
// Figure-1 composition of EXPERIMENTS.md driven to a fixed step budget) and
// the E10 valence-exploration throughput (BenchmarkValence* configurations,
// serial and parallel), and writes the results as JSON.  CI runs it on
// every pull request and uploads the file as the BENCH_pr artifact so
// throughput regressions across PRs are a download-and-diff away; with
// -baseline it additionally gates on a committed report (exit 1 when any
// matching row regresses by more than -tolerance).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"runtime"
	"time"

	"repro/internal/afd"
	"repro/internal/causal"
	"repro/internal/chaos"
	"repro/internal/ioa"
	"repro/internal/live"
	"repro/internal/oracle"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/valence"
)

// repStats summarizes the per-repetition wall times and allocation counts of
// one benchmark row: the best (minimum) time — the least-noise estimator on a
// shared box — plus mean and sample standard deviation so a reader can judge
// how much the best is luck, and the mean mallocs per unit of work.
type repStats struct {
	NsBest      int64   `json:"ns_best"`
	NsMean      float64 `json:"ns_mean"`
	NsStddev    float64 `json:"ns_stddev"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// summarize folds per-rep (nanoseconds, allocs/op) samples into repStats.
func summarize(ns []int64, allocs []float64) repStats {
	st := repStats{NsBest: ns[0]}
	var sum float64
	for _, v := range ns {
		if v < st.NsBest {
			st.NsBest = v
		}
		sum += float64(v)
	}
	mean := sum / float64(len(ns))
	st.NsMean = mean
	if len(ns) > 1 {
		var ss float64
		for _, v := range ns {
			d := float64(v) - mean
			ss += d * d
		}
		st.NsStddev = math.Sqrt(ss / float64(len(ns)-1))
	}
	for _, a := range allocs {
		st.AllocsPerOp += a
	}
	st.AllocsPerOp /= float64(len(allocs))
	return st
}

// mallocs returns the process-wide cumulative malloc count; successive
// deltas around a run give its allocation cost (GC-independent: Mallocs
// never decreases).
func mallocs() uint64 {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return ms.Mallocs
}

// sizeResult is the E1 row for one system size.
type sizeResult struct {
	N      int `json:"n"`
	Events int `json:"events"`
	repStats
	EventsPerSec float64 `json:"events_per_sec"`
}

// valenceResult is one E10 exploration-throughput row.  Each configuration
// is measured unreduced and with dynamic partial-order reduction; reduced
// rows additionally record how many enabled transitions the ample sets
// pruned and the node-count ratio against the matching unreduced row — the
// reduction's deterministic figure of merit, gated like throughput.
type valenceResult struct {
	Config            string  `json:"config"`
	Workers           int     `json:"workers"` // 0 = GOMAXPROCS
	Reduce            bool    `json:"reduce,omitempty"`
	Nodes             int     `json:"nodes"`
	Edges             int     `json:"edges"`
	PrunedTransitions int     `json:"pruned_transitions,omitempty"`
	ReductionRatio    float64 `json:"reduction_ratio,omitempty"` // full nodes / reduced nodes
	repStats
	NodesPerSec float64 `json:"nodes_per_sec"`
}

// liveResult is one live-runtime row: the gossip ◇Q>◇P stack driven on real
// goroutines over the in-process transport, with one planned crash.  Two
// figures matter: raw event throughput (how fast the step lock serializes a
// real concurrent execution) and the heartbeat-to-suspicion latency — the
// wall-clock gap between the crash event and the first boosted-family output
// suspecting the crashed location, i.e. the physical realization of the
// failure-detector abstraction's detection time.
type liveResult struct {
	N            int     `json:"n"`
	Target       string  `json:"target"`
	Transport    string  `json:"transport"`
	Events       int     `json:"events"`
	NsBest       int64   `json:"ns_best"`
	NsMean       float64 `json:"ns_mean"`
	EventsPerSec float64 `json:"events_per_sec"`
	// Suspicion latencies in wall-clock nanoseconds, best and mean across
	// reps; -1 when no rep realized a suspicion (never observed in practice
	// — the checker would have rejected the run first).
	SuspicionNsBest int64   `json:"suspicion_ns_best"`
	SuspicionNsMean float64 `json:"suspicion_ns_mean"`
}

// qosResult is one detector-QoS analytics row: causal.Compute over every
// repetition's recorded trace, aggregated per family by causal.Summarize.
// Three modes share the schema: "sim" (size sweep under the randomized
// simulator scheduler), "grid" (the E19 chaos cells: drop rate × topology at
// fixed n), and "live" (real goroutines, wall-clock stamped, per transport —
// the only mode with Ns figures).
type qosResult struct {
	Mode      string `json:"mode"`
	N         int    `json:"n"`
	Target    string `json:"target"`
	Sched     string `json:"sched,omitempty"`
	Transport string `json:"transport,omitempty"`
	Topo      string `json:"topo,omitempty"`
	Drop      int    `json:"drop_permille,omitempty"`
	// SpecViolations counts repetitions whose checker verdict failed — under
	// heavy loss plain gossip legitimately loses strong completeness (the
	// E17 survival result), and the QoS of the surviving detections is
	// exactly what the row measures.
	SpecViolations int              `json:"spec_violations,omitempty"`
	Families       []causal.Summary `json:"families"`
}

// report is the BENCH_pr.json schema.
type report struct {
	Experiment string          `json:"experiment"`
	GoVersion  string          `json:"go_version"`
	GOOS       string          `json:"goos"`
	GOARCH     string          `json:"goarch"`
	Steps      int             `json:"steps"`
	Reps       int             `json:"reps"`
	Sizes      []sizeResult    `json:"sizes"`
	Valence    []valenceResult `json:"valence"`
	// Live rows are recorded for cross-PR eyeballing but deliberately NOT
	// gated by checkBaseline: they measure wall-clock behavior of real
	// goroutines and timers, whose variance on shared CI boxes dwarfs any
	// tolerance a useful gate could use.
	Live []liveResult `json:"live,omitempty"`
	// QoS rows are analytics, not timings: detection latency, mistake rate,
	// and propagation spread are properties of the recorded traces, so they
	// are reported for cross-PR comparison but not gated (schedule- and
	// wall-clock-dependent distributions, not deterministic figures).
	QoS []qosResult `json:"qos,omitempty"`
	// Telemetry is a metric snapshot from one fully instrumented pass (E1
	// n=8 with an attached differential oracle, plus one telemetered valence
	// exploration) run AFTER the timed reps above, so the timings stay
	// un-instrumented while the report still records events applied, oracle
	// sweep counts and latencies, channel-depth distribution, and the
	// valence frontier peak for cross-PR comparison.
	Telemetry *telemetry.Snapshot `json:"telemetry,omitempty"`
}

func run(n, steps int) (events int, elapsed time.Duration, allocs uint64, err error) {
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		return 0, 0, 0, err
	}
	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.NewCrash(system.NoFaults()))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return 0, 0, 0, err
	}
	// Throughput, not trace content: leaving the default TraceAll on would
	// append (and allocate) one Action per event, measuring the trace
	// buffer instead of the engine.
	sys.SetTraceMode(ioa.TraceOff, 0)
	m0 := mallocs()
	start := time.Now()
	sched.RoundRobin(sys, sched.Options{MaxSteps: steps})
	return sys.Steps(), time.Since(start), mallocs() - m0, nil
}

// liveSuspicion scans a stamped live trace for the wall-clock nanoseconds
// between the crash event and the first family output whose suspect set
// contains the crashed location, returning -1 when the trace has no such
// pair.
func liveSuspicion(res live.Result, family string) int64 {
	crashAt := int64(-1)
	var crashed ioa.Loc
	for i, a := range res.Trace {
		if a.Kind == ioa.KindCrash {
			crashAt = res.Stamps[i]
			crashed = a.Loc
			continue
		}
		if crashAt < 0 || a.Kind != ioa.KindFD || a.Name != family {
			continue
		}
		set, err := ioa.DecodeLocSet(a.Payload)
		if err == nil && set[crashed] {
			return res.Stamps[i] - crashAt
		}
	}
	return -1
}

// liveRow measures one live-runtime row: reps full live executions of the
// gossip ◇Q>◇P stack at size n on the in-process transport, each crashing
// location n-1 shortly after start, each checker-judged and replay-validated
// (a row from an invalid execution would be meaningless).
func liveRow(n, reps int) (liveResult, error) {
	target, err := chaos.ParseTarget("gossip:" + afd.FamilyEvQ + ">" + afd.FamilyEvP)
	if err != nil {
		return liveResult{}, err
	}
	row := liveResult{N: n, Target: target.ID(), Transport: "chan", SuspicionNsBest: -1}
	var ns, lat []int64
	for r := 0; r < reps; r++ {
		rep, err := live.RunTarget(live.RunSpec{
			Target: target,
			N:      n,
			Plan:   system.CrashOf(ioa.Loc(n - 1)),
			Opts: live.Options{
				Seed:     int64(r + 1),
				MaxSteps: chaos.DefaultSteps(n),
				Duration: 10 * time.Second,
			},
		})
		if err != nil {
			return row, err
		}
		if rep.VerdictErr != nil {
			return row, fmt.Errorf("live n=%d rep %d: checker rejected: %w", n, r, rep.VerdictErr)
		}
		if rep.ReplayErr != nil {
			return row, fmt.Errorf("live n=%d rep %d: replay diverged: %w", n, r, rep.ReplayErr)
		}
		res := rep.Result
		row.Events = res.Steps
		ns = append(ns, res.Elapsed.Nanoseconds())
		if l := liveSuspicion(res, afd.FamilyEvP); l >= 0 {
			lat = append(lat, l)
		}
	}
	row.NsBest = ns[0]
	var sum float64
	for _, v := range ns {
		if v < row.NsBest {
			row.NsBest = v
		}
		sum += float64(v)
	}
	row.NsMean = sum / float64(len(ns))
	row.EventsPerSec = float64(row.Events) / (float64(row.NsBest) / 1e9)
	if len(lat) > 0 {
		row.SuspicionNsBest = lat[0]
		var lsum float64
		for _, v := range lat {
			if v < row.SuspicionNsBest {
				row.SuspicionNsBest = v
			}
			lsum += float64(v)
		}
		row.SuspicionNsMean = lsum / float64(len(lat))
	}
	return row, nil
}

// gossipQoSTarget is the stack every QoS row drives: the gossiping mesh
// running ◇Q boosted to ◇P at each location — the composition whose
// detection and propagation figures EXPERIMENTS.md E19 plots.
func gossipQoSTarget() (chaos.Target, error) {
	return chaos.ParseTarget("gossip:" + afd.FamilyEvQ + ">" + afd.FamilyEvP)
}

// qosSimRow measures one simulated QoS row: reps runs of the gossip stack at
// size n under the randomized scheduler (seeds 1..reps so the aggregate is a
// distribution, not one schedule), each crashing location n-1.
func qosSimRow(n, reps int) (qosResult, error) {
	target, err := gossipQoSTarget()
	if err != nil {
		return qosResult{}, err
	}
	row := qosResult{Mode: "sim", N: n, Target: target.ID(), Sched: chaos.SchedRandom}
	var all []causal.Stats
	for r := 0; r < reps; r++ {
		v, err := chaos.Execute(chaos.Run{
			Target: target,
			N:      n,
			Plan:   system.CrashOf(ioa.Loc(n - 1)),
			Sched:  chaos.SchedRandom,
			Seed:   int64(r + 1),
		})
		if err != nil {
			return row, err
		}
		if v.Failed() {
			row.SpecViolations++
		}
		all = append(all, causal.Compute(v.Trace, nil)...)
	}
	row.Families = causal.Summarize(all)
	return row, nil
}

// qosGridRow measures one E19 chaos cell: reps runs at n=4 over the named
// topology with the given per-link drop rate, varying both scheduler and
// link seeds per rep.
func qosGridRow(topoName string, drop, reps int) (qosResult, error) {
	const n = 4
	target, err := gossipQoSTarget()
	if err != nil {
		return qosResult{}, err
	}
	row := qosResult{Mode: "grid", N: n, Target: target.ID(),
		Sched: chaos.SchedRandom, Topo: topoName, Drop: drop}
	var all []causal.Stats
	for r := 0; r < reps; r++ {
		topo, err := system.ParseTopology(n, topoName)
		if err != nil {
			return row, err
		}
		net := system.NetSpec{Topo: topo, Drop: drop}
		if net.Lossy() {
			net.Seed = int64(r + 1)
		}
		v, err := chaos.Execute(chaos.Run{
			Target: target,
			N:      n,
			Plan:   system.CrashOf(n - 1),
			Net:    net,
			Sched:  chaos.SchedRandom,
			Seed:   int64(r + 1),
		})
		if err != nil {
			return row, err
		}
		if v.Failed() {
			row.SpecViolations++
		}
		all = append(all, causal.Compute(v.Trace, nil)...)
	}
	row.Families = causal.Summarize(all)
	return row, nil
}

// qosLiveRow measures one live QoS row: reps checker-judged, replay-validated
// live executions at n=4 on the named transport, QoS computed from the
// stamped traces so detection and propagation carry wall-clock figures.
func qosLiveRow(transport string, reps int) (qosResult, error) {
	const n = 4
	target, err := gossipQoSTarget()
	if err != nil {
		return qosResult{}, err
	}
	row := qosResult{Mode: "live", N: n, Target: target.ID(), Transport: transport}
	var all []causal.Stats
	for r := 0; r < reps; r++ {
		opts := live.Options{
			Seed:     int64(r + 1),
			MaxSteps: chaos.DefaultSteps(n),
			Duration: 10 * time.Second,
		}
		if transport == "tcp" {
			tr, err := live.NewTCPTransport()
			if err != nil {
				return row, err
			}
			opts.Transport = tr
		}
		rep, err := live.RunTarget(live.RunSpec{
			Target: target,
			N:      n,
			Plan:   system.CrashOf(n - 1),
			Opts:   opts,
		})
		if err != nil {
			return row, err
		}
		if rep.VerdictErr != nil {
			return row, fmt.Errorf("qos live %s rep %d: checker rejected: %w", transport, r, rep.VerdictErr)
		}
		if rep.ReplayErr != nil {
			return row, fmt.Errorf("qos live %s rep %d: replay diverged: %w", transport, r, rep.ReplayErr)
		}
		all = append(all, causal.Compute(rep.Result.Trace, rep.Result.Stamps)...)
	}
	row.Families = causal.Summarize(all)
	return row, nil
}

// qosSection assembles the full QoS table: the size sweep, the E19
// drop-rate × topology grid, and both live transports.
func qosSection(reps int) ([]qosResult, error) {
	var rows []qosResult
	for _, n := range []int{4, 8, 16, 32} {
		row, err := qosSimRow(n, reps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for _, topo := range []string{"full", "ring"} {
		for _, drop := range []int{0, 150, 300} {
			row, err := qosGridRow(topo, drop, reps)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	for _, transport := range []string{"chan", "tcp"} {
		row, err := qosLiveRow(transport, reps)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// boosted returns the row's summary for the boosted family (the detector the
// stack ultimately provides), which the progress line reports.
func boosted(row qosResult) causal.Summary {
	for _, s := range row.Families {
		if s.Family == afd.FamilyEvP {
			return s
		}
	}
	return causal.Summary{}
}

// telemetrySection performs the single instrumented pass feeding the
// report's telemetry section: the E1 composition at n=8 with every plane
// wired (system, channels, scheduler) and a differential oracle attached,
// then one valence exploration reporting frontier width.
func telemetrySection(reg *telemetry.Registry, steps int) (*telemetry.Snapshot, error) {
	const n = 8
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		return nil, err
	}
	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.NewCrash(system.NoFaults()))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return nil, err
	}
	sys.SetTelemetry(reg)
	system.InstrumentChannels(sys, reg)
	reg.SetTaskLabels(system.TaskLabels(sys))
	o := oracle.Attach(sys, oracle.Options{Telemetry: reg})
	sched.RoundRobin(sys, sched.Options{MaxSteps: steps, Telemetry: reg})
	if err := o.Check(); err != nil {
		return nil, fmt.Errorf("oracle divergence during telemetry pass: %w", err)
	}
	e, err := valence.New(valence.Config{
		N: 2, Family: afd.FamilyOmega, TD: valence.OmegaTD(2, 6, nil), Telemetry: reg,
	})
	if err != nil {
		return nil, err
	}
	if err := e.Explore(); err != nil {
		return nil, err
	}
	snap := reg.Snapshot()
	return &snap, nil
}

// checkBaseline compares the fresh report against a committed one, row by
// row on the primary throughput metric, and returns the regressions worse
// than tol (0.10 = fail when a row runs >10% slower than the baseline).
// Rows the baseline lacks are new and pass trivially; rows the baseline has
// but the report lacks fail, so a config cannot vanish unnoticed.
func checkBaseline(rep report, path string, tol float64) []string {
	data, err := os.ReadFile(path)
	if err != nil {
		return []string{err.Error()}
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return []string{fmt.Sprintf("%s: %v", path, err)}
	}
	var bad []string
	floor := 1 - tol
	for _, b := range base.Sizes {
		found := false
		for _, s := range rep.Sizes {
			if s.N != b.N {
				continue
			}
			found = true
			if s.EventsPerSec < b.EventsPerSec*floor {
				bad = append(bad, fmt.Sprintf("E1 n=%d: %.0f events/sec, baseline %.0f (-%.1f%%)",
					b.N, s.EventsPerSec, b.EventsPerSec, 100*(1-s.EventsPerSec/b.EventsPerSec)))
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("E1 n=%d: missing from report", b.N))
		}
	}
	for _, b := range base.Valence {
		found := false
		for _, v := range rep.Valence {
			if v.Config != b.Config || v.Workers != b.Workers || v.Reduce != b.Reduce {
				continue
			}
			found = true
			if v.NodesPerSec < b.NodesPerSec*floor {
				bad = append(bad, fmt.Sprintf("valence %s workers=%d reduce=%t: %.0f nodes/sec, baseline %.0f (-%.1f%%)",
					b.Config, b.Workers, b.Reduce, v.NodesPerSec, b.NodesPerSec, 100*(1-v.NodesPerSec/b.NodesPerSec)))
			}
			// The reduction ratio is deterministic; any slip below the
			// committed value means ample selection got weaker, which a pure
			// throughput gate would miss.
			if b.ReductionRatio > 0 && v.ReductionRatio < b.ReductionRatio*floor {
				bad = append(bad, fmt.Sprintf("valence %s workers=%d: reduction ratio %.2fx, baseline %.2fx",
					b.Config, b.Workers, v.ReductionRatio, b.ReductionRatio))
			}
		}
		if !found {
			bad = append(bad, fmt.Sprintf("valence %s workers=%d reduce=%t: missing from report", b.Config, b.Workers, b.Reduce))
		}
	}
	return bad
}

func main() {
	out := flag.String("out", "BENCH_pr.json", "output path")
	steps := flag.Int("steps", 100_000, "events per measured run")
	reps := flag.Int("reps", 3, "repetitions per size (best is reported)")
	baseline := flag.String("baseline", "", "committed report to gate against (empty: no gate)")
	tolerance := flag.Float64("tolerance", 0.10, "allowed fractional regression vs -baseline")
	telAddr := flag.String("telemetry.addr", "", "serve expvar+pprof+metrics on this address")
	traceOut := flag.String("trace.out", "", "write a Chrome trace_event JSON file on exit")
	flag.Parse()

	tel, flush, err := telemetry.Init(*telAddr, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The telemetry section always runs; the flags only add live serving and
	// a trace file on top of the same registry.
	reg, ok := tel.(*telemetry.Registry)
	if !ok {
		reg = telemetry.NewRegistry()
	}

	rep := report{
		Experiment: "E1",
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Steps:      *steps,
		Reps:       *reps,
	}
	for _, n := range []int{4, 8, 16, 32} {
		row := sizeResult{N: n}
		var ns []int64
		var allocs []float64
		for r := 0; r < *reps; r++ {
			events, el, mall, err := run(n, *steps)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchjson: n=%d: %v\n", n, err)
				os.Exit(1)
			}
			row.Events = events
			ns = append(ns, el.Nanoseconds())
			allocs = append(allocs, float64(mall)/float64(events))
		}
		row.repStats = summarize(ns, allocs)
		row.EventsPerSec = float64(row.Events) / (float64(row.NsBest) / 1e9)
		rep.Sizes = append(rep.Sizes, row)
		fmt.Printf("n=%-3d %d events in %v ±%v (%.0f events/sec, %.3f allocs/op)\n",
			n, row.Events, time.Duration(row.NsBest), time.Duration(int64(row.NsStddev)),
			row.EventsPerSec, row.AllocsPerOp)
	}
	valenceConfigs := []struct {
		name    string
		workers []int
		cfg     valence.Config
	}{
		{"omega n=2 rounds=6", []int{1, 0}, valence.Config{N: 2, Family: afd.FamilyOmega, TD: valence.OmegaTD(2, 6, nil)}},
		{"perfect s n=2 crash", []int{1, 0}, valence.Config{N: 2, Family: afd.FamilyP, Algo: "s",
			TD: valence.PerfectTD(2, 4, map[ioa.Loc]int{1: 1})}},
		// The E11 acceptance config: the ~830k-edge n=3 golden graph, at
		// the serial reference (workers=1) and the delta-encoding pool
		// (workers=4) — the pair whose ratio the ≥2.5x parallel-speedup
		// budget is judged on.
		{"perfect s n=3 crash", []int{1, 4}, valence.Config{N: 3, Family: afd.FamilyP, Algo: "s",
			TD:     valence.PerfectTD(3, 2, map[ioa.Loc]int{2: 1}),
			Values: []int{-1, 1, 1}, MaxNodes: 1_500_000}},
	}
	for _, vc := range valenceConfigs {
		// Unreduced rows run first so the reduced pass of the same config can
		// compute its node-count ratio against them.
		for _, reduce := range []bool{false, true} {
			for _, workers := range vc.workers {
				row := valenceResult{Config: vc.name, Workers: workers, Reduce: reduce}
				var ns []int64
				var allocs []float64
				for r := 0; r < *reps; r++ {
					cfg := vc.cfg
					cfg.Workers = workers
					cfg.Reduce = reduce
					e, err := valence.New(cfg)
					if err != nil {
						fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", vc.name, err)
						os.Exit(1)
					}
					m0 := mallocs()
					start := time.Now()
					if err := e.Explore(); err != nil {
						fmt.Fprintf(os.Stderr, "benchjson: %s: %v\n", vc.name, err)
						os.Exit(1)
					}
					el := time.Since(start)
					row.Nodes = e.NumNodes()
					row.Edges = e.NumEdges()
					row.PrunedTransitions = e.Stats().PrunedSteps
					ns = append(ns, el.Nanoseconds())
					allocs = append(allocs, float64(mallocs()-m0)/float64(e.NumNodes()))
				}
				row.repStats = summarize(ns, allocs)
				row.NodesPerSec = float64(row.Nodes) / (float64(row.NsBest) / 1e9)
				if reduce {
					for _, full := range rep.Valence {
						if full.Config == row.Config && !full.Reduce {
							row.ReductionRatio = float64(full.Nodes) / float64(row.Nodes)
							break
						}
					}
				}
				rep.Valence = append(rep.Valence, row)
				extra := ""
				if reduce {
					extra = fmt.Sprintf(", %d pruned, %.2fx reduction", row.PrunedTransitions, row.ReductionRatio)
				}
				fmt.Printf("valence %-22s workers=%-3d reduce=%-5t %d nodes in %v ±%v (%.0f nodes/sec, %.1f allocs/node%s)\n",
					row.Config, workers, reduce, row.Nodes, time.Duration(row.NsBest),
					time.Duration(int64(row.NsStddev)), row.NodesPerSec, row.AllocsPerOp, extra)
			}
		}
	}
	for _, n := range []int{4, 8, 16, 32} {
		row, err := liveRow(n, *reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: live n=%d: %v\n", n, err)
			os.Exit(1)
		}
		rep.Live = append(rep.Live, row)
		fmt.Printf("live n=%-3d %d events in %v (%.0f events/sec, suspicion %.2fms best / %.2fms mean)\n",
			n, row.Events, time.Duration(row.NsBest), row.EventsPerSec,
			float64(row.SuspicionNsBest)/1e6, row.SuspicionNsMean/1e6)
	}
	qosRows, err := qosSection(*reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: qos: %v\n", err)
		os.Exit(1)
	}
	rep.QoS = qosRows
	for _, row := range qosRows {
		b := boosted(row)
		where := row.Sched
		if row.Mode == "grid" {
			where = fmt.Sprintf("%s drop=%d", row.Topo, row.Drop)
		} else if row.Mode == "live" {
			where = row.Transport
		}
		line := fmt.Sprintf("qos %-4s n=%-3d %-14s %s: %d detections (mean %.1f / max %d steps), propagation mean %.1f steps, %.1f mistakes/run",
			row.Mode, row.N, where, b.Family, b.Detections,
			b.DetectionMeanSteps, b.DetectionMaxSteps, b.PropagationMeanSteps, b.MistakesPerRun)
		if row.SpecViolations > 0 {
			line += fmt.Sprintf(", %d spec violations", row.SpecViolations)
		}
		if b.DetectionMeanNs > 0 {
			line += fmt.Sprintf(", detection %.2fms mean wall-clock", b.DetectionMeanNs/1e6)
		}
		fmt.Println(line)
	}
	snap, err := telemetrySection(reg, *steps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: telemetry pass: %v\n", err)
		os.Exit(1)
	}
	rep.Telemetry = snap
	fmt.Printf("telemetry: %d events applied, %d oracle sweeps, frontier peak %d\n",
		snap.Counters["events_applied"], snap.Counters["oracle_sweeps"],
		snap.Gauges["valence_frontier_peak"])

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	flush()

	if *baseline != "" {
		if bad := checkBaseline(rep, *baseline, *tolerance); len(bad) > 0 {
			fmt.Fprintf(os.Stderr, "benchjson: regression vs %s (tolerance %.0f%%):\n", *baseline, 100**tolerance)
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "  %s\n", b)
			}
			os.Exit(1)
		}
		fmt.Printf("baseline %s: all rows within %.0f%%\n", *baseline, 100**tolerance)
	}
}
