package main

import (
	"fmt"
	"os"
	"time"

	"repro/internal/chaos"
	"repro/internal/ioa"
	"repro/internal/live"
	"repro/internal/system"
	"repro/internal/trace"
)

// runLive drives a chaos target on the live runtime: real goroutines per
// automaton, wall-clock heartbeats, a pluggable transport — then validates
// the execution with the target's own checker and the cross-engine replay.
func runLive(targetID string, n int, plan []ioa.Loc, transport string, interval, duration time.Duration,
	steps int, seed int64, artifactOut string, verbose bool) error {
	target, err := chaos.ParseTarget(targetID)
	if err != nil {
		return err
	}
	opts := live.Options{
		Seed:     seed,
		Interval: interval,
		Duration: duration,
		MaxSteps: steps,
	}
	switch transport {
	case "", "chan":
		// default in-process transport
	case "tcp":
		tcp, err := live.NewTCPTransport()
		if err != nil {
			return err
		}
		opts.Transport = tcp
		fmt.Printf("live: tcp transport on %s\n", tcp.Addr())
	default:
		return fmt.Errorf("unknown transport %q (chan | tcp)", transport)
	}
	if tel != nil {
		opts.Telemetry = tel
	}
	rep, err := live.RunTarget(live.RunSpec{
		Target: target,
		N:      n,
		Plan:   system.CrashOf(plan...),
		Opts:   opts,
	})
	if err != nil {
		return err
	}
	res := rep.Result
	evPerSec := float64(0)
	if res.Elapsed > 0 {
		evPerSec = float64(res.Steps) / res.Elapsed.Seconds()
	}
	fmt.Printf("live %s n=%d crash=%v: %d steps in %v (%s, %.0f events/sec), %d trace events\n",
		targetID, n, plan, res.Steps, res.Elapsed.Round(time.Millisecond), res.Reason, evPerSec,
		len(res.Trace))
	if rep.VerdictErr != nil {
		fmt.Printf("checker: REJECTED: %v\n", rep.VerdictErr)
	} else {
		fmt.Printf("checker: live trace ∈ T(%s)%s\n", targetID, fairNote(rep.Fair))
	}
	if rep.ReplayErr != nil {
		fmt.Printf("replay: DIVERGED: %v\n", rep.ReplayErr)
	} else {
		fmt.Println("replay: live trace re-driven byte-identical through the simulated engine")
	}
	if artifactOut != "" {
		f, err := os.Create(artifactOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteArtifact(f, rep.Artifact); err != nil {
			return err
		}
		fmt.Printf("artifact written to %s\n", artifactOut)
	}
	if verbose {
		for i, a := range res.Trace {
			fmt.Printf("%4d %8.3fms %v\n", i, float64(res.Stamps[i])/1e6, a)
		}
	}
	if rep.VerdictErr != nil || rep.ReplayErr != nil {
		return fmt.Errorf("live run failed validation")
	}
	return nil
}

func fairNote(fair bool) string {
	if fair {
		return ""
	}
	return " (safety clauses only: partition never healed)"
}
