// Command afdsim runs a configurable simulation of the paper's systems:
// a failure detector on its own, a detector stacked with the Algorithm-3
// self-implementation, or the full Section-9.3 consensus system, under a
// chosen fault pattern and schedule, printing the trace and checker
// verdicts.
//
// Examples:
//
//	afdsim -mode detector -fd FD-Ω -n 4 -crash 3 -steps 200
//	afdsim -mode consensus -fd FD-◇P -n 5 -crash 0,1 -values 1,0,1,0,1
//	afdsim -mode selfimpl -fd FD-P -n 3 -crash 2 -json out.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/problems"
	"repro/internal/sched"
	"repro/internal/selfimpl"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// tel is the process-wide telemetry sink; nil unless -telemetry.addr or
// -trace.out is given.  Modes that build their ioa.System directly
// (selfimpl, kset, nbac) thread it through every plane; detector and
// consensus delegate system construction to internal helpers, so for those
// the flags still provide live expvar+pprof but no per-plane metrics.
var tel telemetry.Sink

// instrument wires the sink through a freshly built system: automaton and
// channel instrumentation, scheduler step counters, and task labels for the
// per-task fire counts.
func instrument(sys *ioa.System, opts *sched.Options) {
	if tel == nil {
		return
	}
	sys.SetTelemetry(tel)
	system.InstrumentChannels(sys, tel)
	opts.Telemetry = tel
	if reg, ok := tel.(*telemetry.Registry); ok {
		reg.SetTaskLabels(system.TaskLabels(sys))
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "afdsim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		mode     = flag.String("mode", "consensus", "detector | selfimpl | consensus | kset | nbac | live")
		family   = flag.String("fd", afd.FamilyOmega, "failure-detector family (see afdcheck -list)")
		n        = flag.Int("n", 3, "number of locations")
		crash    = flag.String("crash", "", "comma-separated locations to crash")
		gate     = flag.Int("gate", 30, "events before the first crash releases")
		steps    = flag.Int("steps", 20000, "step bound")
		seed     = flag.Int64("seed", -1, "random-schedule seed; -1 = fair round-robin")
		values   = flag.String("values", "", "comma-separated proposals/votes (consensus, kset, nbac); empty = free/yes")
		jsonOut  = flag.String("json", "", "write the trace as JSON to this file")
		verbose  = flag.Bool("v", false, "print every trace event")
		telAddr  = flag.String("telemetry.addr", "", "serve expvar+pprof+metrics on this address")
		traceOut = flag.String("trace.out", "", "write a Chrome trace_event JSON file on exit")

		liveMode     = flag.Bool("live", false, "run on the live runtime (real goroutines + transport); same as -mode live")
		liveTarget   = flag.String("target", "gossip:FD-◇Q>FD-◇P>FD-Ω", "live mode: chaos target ID")
		transport    = flag.String("transport", "chan", "live mode: chan | tcp")
		liveInterval = flag.Duration("live.interval", 100*time.Microsecond, "live mode: heartbeat interval")
		liveDuration = flag.Duration("live.duration", 30*time.Second, "live mode: wall-clock budget")
		artifactOut  = flag.String("artifact", "", "live mode: write the replayable trace.Artifact here")
	)
	flag.Parse()

	var flush func()
	var err error
	tel, flush, err = telemetry.Init(*telAddr, *traceOut)
	if err != nil {
		return err
	}
	defer flush()

	plan, err := parseLocs(*crash)
	if err != nil {
		return err
	}
	if *liveMode || *mode == "live" {
		// -steps 20000 is the simulated default; live mode sizes its step
		// bound from the target (chaos.DefaultSteps) unless overridden.
		liveSteps := 0
		if *steps != 20000 {
			liveSteps = *steps
		}
		liveSeed := *seed
		if liveSeed < 0 {
			liveSeed = 0
		}
		return runLive(*liveTarget, *n, plan, *transport, *liveInterval, *liveDuration,
			liveSteps, liveSeed, *artifactOut, *verbose)
	}
	switch *mode {
	case "detector":
		return runDetector(*family, *n, plan, *gate, *steps, *seed, *jsonOut, *verbose)
	case "selfimpl":
		return runSelfImpl(*family, *n, plan, *gate, *steps, *seed, *jsonOut, *verbose)
	case "consensus":
		return runConsensus(*family, *n, plan, *gate, *steps, *seed, *values, *jsonOut, *verbose)
	case "kset":
		return runKSet(*n, plan, *gate, *steps, *seed, *values, *jsonOut, *verbose)
	case "nbac":
		return runNBAC(*family, *n, plan, *gate, *steps, *seed, *values, *jsonOut, *verbose)
	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
}

func parseLocs(s string) ([]ioa.Loc, error) {
	if s == "" {
		return nil, nil
	}
	var out []ioa.Loc
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad location %q: %v", part, err)
		}
		out = append(out, ioa.Loc(v))
	}
	return out, nil
}

func parseVals(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %v", part, err)
		}
		out = append(out, v)
	}
	return out, nil
}

func emit(tr trace.T, jsonOut string, verbose bool) error {
	if verbose {
		for i, a := range tr {
			fmt.Printf("%4d %v\n", i, a)
		}
	}
	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := trace.WriteJSON(f, tr); err != nil {
			return err
		}
		fmt.Printf("trace written to %s (%d events)\n", jsonOut, len(tr))
	}
	return nil
}

func runDetector(family string, n int, plan []ioa.Loc, gate, steps int, seed int64, jsonOut string, verbose bool) error {
	d, err := afd.Lookup(family, n)
	if err != nil {
		return err
	}
	tr, err := afd.RunCanonical(d, afd.RunSpec{N: n, Crash: plan, Steps: steps, Seed: seed, CrashGate: gate})
	if err != nil {
		return err
	}
	fmt.Printf("detector %s: %d events, %d crashes\n", family, len(tr),
		trace.Count(tr, func(a ioa.Action) bool { return a.Kind == ioa.KindCrash }))
	if err := d.Check(tr, n, afd.DefaultWindow()); err != nil {
		fmt.Printf("checker: REJECTED: %v\n", err)
	} else {
		fmt.Printf("checker: trace ∈ T(%s)\n", family)
	}
	return emit(tr, jsonOut, verbose)
}

func runSelfImpl(family string, n int, plan []ioa.Loc, gate, steps int, seed int64, jsonOut string, verbose bool) error {
	d, err := afd.Lookup(family, n)
	if err != nil {
		return err
	}
	ren := selfimpl.Renaming{From: family, To: family + "'"}
	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, selfimpl.NewCollection(n, ren)...)
	autos = append(autos, system.NewCrash(system.CrashOf(plan...)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return err
	}
	opts := sched.Options{MaxSteps: steps}
	if gate > 0 {
		opts.Gate = sched.CrashesAfter(gate, gate)
	}
	instrument(sys, &opts)
	if seed >= 0 {
		sched.Random(sys, seed, opts)
	} else {
		sched.RoundRobin(sys, opts)
	}
	full := sys.Trace()
	mixed := trace.Project(full, func(a ioa.Action) bool {
		return a.Kind == ioa.KindCrash ||
			(a.Kind == ioa.KindFD && (a.Name == ren.From || a.Name == ren.To))
	})
	rep, err := selfimpl.VerifyProof(mixed, n, ren)
	if err != nil {
		return fmt.Errorf("Section-6 proof pipeline failed: %w", err)
	}
	fmt.Printf("selfimpl %s→%s: %d source events relayed (Lemmas 2, 6, 9 verified)\n",
		ren.From, ren.To, len(rep.REV))
	back := ren.InvertTrace(trace.FD(full, ren.To))
	if err := d.Check(back, n, afd.DefaultWindow()); err != nil {
		fmt.Printf("checker: renamed trace REJECTED: %v\n", err)
	} else {
		fmt.Printf("checker: renamed trace ∈ T(%s) — Theorem 13 holds on this run\n", family)
	}
	return emit(mixed, jsonOut, verbose)
}

func runConsensus(family string, n int, plan []ioa.Loc, gate, steps int, seed int64, values, jsonOut string, verbose bool) error {
	vals, err := parseVals(values)
	if err != nil {
		return err
	}
	var det ioa.Automaton
	if family != "" {
		d, err := afd.Lookup(family, n)
		if err != nil {
			return err
		}
		det = d.Automaton(n)
	}
	res, err := consensus.Run(consensus.RunSpec{
		Build:     consensus.BuildSpec{N: n, Family: family, Det: det, Crash: plan, Values: vals},
		Steps:     steps,
		Seed:      seed,
		CrashGate: gate,
	})
	if err != nil {
		return err
	}
	fmt.Printf("consensus n=%d fd=%s crash=%v: %d steps (%s), %d decisions, value=%q, max round %d\n",
		n, family, plan, res.Steps, res.Reason, res.Decisions, res.Value, res.MaxRound)
	spec := consensus.Spec{N: n, F: (n - 1) / 2}
	io := consensus.ProjectIO(res.Trace)
	if err := spec.Check(io, res.AllDecided); err != nil {
		fmt.Printf("checker: REJECTED: %v\n", err)
	} else {
		fmt.Printf("checker: trace ∈ TP (Section 9.1)\n")
	}
	return emit(res.Trace, jsonOut, verbose)
}

func runKSet(n int, plan []ioa.Loc, gate, steps int, seed int64, values, jsonOut string, verbose bool) error {
	vals, err := parseVals(values)
	if err != nil {
		return err
	}
	if vals == nil {
		vals = make([]int, n)
		for i := range vals {
			vals[i] = i % 2
		}
	}
	if len(vals) != n {
		return fmt.Errorf("%d values for %d locations", len(vals), n)
	}
	f := len(plan)
	autos := problems.KSetProcs(n, f)
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.ConsensusEnvsFixed(vals)...)
	autos = append(autos, system.NewCrash(system.CrashOf(plan...)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return err
	}
	opts := sched.Options{MaxSteps: steps}
	if gate > 0 {
		opts.Gate = sched.CrashesAfter(gate, gate)
	}
	instrument(sys, &opts)
	if seed >= 0 {
		sched.Random(sys, seed, opts)
	} else {
		sched.RoundRobin(sys, opts)
	}
	decs := consensus.Decisions(sys.Trace())
	distinct := make(map[string]bool)
	for _, d := range decs {
		distinct[d.Payload] = true
	}
	fmt.Printf("kset n=%d f=%d: %d decisions, %d distinct values (bound %d)\n",
		n, f, len(decs), len(distinct), f+1)
	spec := problems.KSetAgreement{N: n, K: f + 1}
	if err := spec.Check(consensus.ProjectIO(sys.Trace()), false); err != nil {
		fmt.Printf("checker: REJECTED: %v\n", err)
	} else {
		fmt.Println("checker: trace ∈ T(k-set agreement)")
	}
	return emit(sys.Trace(), jsonOut, verbose)
}

func runNBAC(family string, n int, plan []ioa.Loc, gate, steps int, seed int64, values, jsonOut string, verbose bool) error {
	if family == "" || family == "FD-Ω" {
		family = "FD-P"
	}
	votes := make([]string, n)
	for i := range votes {
		votes[i] = problems.VoteYes
	}
	if values != "" {
		vals, err := parseVals(values)
		if err != nil {
			return err
		}
		if len(vals) != n {
			return fmt.Errorf("%d votes for %d locations", len(vals), n)
		}
		for i, v := range vals {
			if v == 0 {
				votes[i] = problems.VoteNo
			}
		}
	}
	procs, err := problems.NBACProcs(n, family)
	if err != nil {
		return err
	}
	d, err := afd.Lookup(family, n)
	if err != nil {
		return err
	}
	autos := procs
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, problems.VoterEnvs(votes)...)
	autos = append(autos, d.Automaton(n))
	autos = append(autos, system.NewCrash(system.CrashOf(plan...)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return err
	}
	opts := sched.Options{MaxSteps: steps}
	if gate > 0 {
		opts.Gate = sched.CrashesAfter(gate, gate)
	}
	outcomes := 0
	opts.Stop = func(_ *ioa.System, last ioa.Action) bool {
		if last.Kind == ioa.KindEnvOut && last.Name == problems.ActNameOutcome {
			outcomes++
		}
		return outcomes >= n-len(plan)
	}
	instrument(sys, &opts)
	if seed >= 0 {
		sched.Random(sys, seed, opts)
	} else {
		sched.RoundRobin(sys, opts)
	}
	var outcome string
	for _, a := range sys.Trace() {
		if a.Kind == ioa.KindEnvOut && a.Name == problems.ActNameOutcome {
			outcome = a.Payload
			break
		}
	}
	fmt.Printf("nbac n=%d fd=%s votes=%v crash=%v: %d outcomes, result=%q\n",
		n, family, votes, plan, outcomes, outcome)
	return emit(sys.Trace(), jsonOut, verbose)
}
