// Command explain answers "why does i suspect j?" for any recorded run.
//
// It reads a replayable artifact (simulated, chaos, or live), rebuilds the
// happens-before DAG by re-executing the trace under the differential
// oracle — every send→deliver edge cross-checked against the channel
// shadows and the artifact's NetLog — and prints the minimal causal chain
// from the suspicion's origin (the subject's crash, when it is in the
// causal cone) to the FD-output transition that changed the suspect set.
//
// Usage:
//
//	explain -artifact run.json -why 0:3 [-at 412] [-removed] [-json]
//	        [-trace flows.json] [-qos]
//
//	-why i:j     explain observer i's suspicion of subject j
//	-at STEP     pick the transition at/nearest-before STEP (default: the
//	             latest transition of i that adds — or with -removed,
//	             removes — j)
//	-removed     explain j leaving i's suspect set instead of entering it
//	-json        emit the full machine-readable record (verification,
//	             explanation, QoS stats) instead of text
//	-trace FILE  also write a Chrome-trace JSON with the chain overlaid as
//	             flow arrows (open in Perfetto)
//	-qos         append per-family QoS analytics to the text output
//
// The exit status is non-zero if the artifact cannot be rebuilt, any
// cross-check disagrees (tampered or corrupt record), or the requested
// transition does not exist.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/causal"
	"repro/internal/ioa"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "explain:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("explain", flag.ContinueOnError)
	artifact := fs.String("artifact", "", "replayable artifact JSON (required)")
	why := fs.String("why", "", "observer:subject pair, e.g. 0:3 (required)")
	at := fs.Int("at", -1, "explain the transition at or nearest before this trace step (default: latest)")
	removed := fs.Bool("removed", false, "explain the suspicion's removal rather than its addition")
	asJSON := fs.Bool("json", false, "emit machine-readable JSON")
	traceOut := fs.String("trace", "", "write a Chrome trace with the chain as flow arrows")
	qos := fs.Bool("qos", false, "append QoS analytics to the text output")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *artifact == "" || *why == "" {
		fs.Usage()
		return fmt.Errorf("-artifact and -why are required")
	}
	observer, subject, err := parseWhy(*why)
	if err != nil {
		return err
	}

	f, err := os.Open(*artifact)
	if err != nil {
		return err
	}
	a, err := trace.ReadArtifact(f)
	f.Close()
	if err != nil {
		return err
	}

	d, err := causal.Build(a)
	if err != nil {
		return fmt.Errorf("rebuilding %s: %w", *artifact, err)
	}

	tr, err := pickTransition(d, observer, subject, *at, *removed)
	if err != nil {
		return err
	}
	ex, err := d.Explain(*tr, subject)
	if err != nil {
		return err
	}

	if *traceOut != "" {
		if err := writeFlows(*traceOut, d, ex); err != nil {
			return err
		}
	}

	if *asJSON {
		rec := struct {
			Artifact     string              `json:"artifact"`
			Target       string              `json:"target"`
			N            int                 `json:"n"`
			Sched        string              `json:"sched"`
			Verification causal.Verification `json:"verification"`
			Explanation  *causal.Explanation `json:"explanation"`
			QoS          []causal.Stats      `json:"qos"`
		}{*artifact, a.Target, a.N, a.Sched, d.Verification, ex,
			causal.Compute(d.Events, d.Stamps)}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rec); err != nil {
			return err
		}
	} else {
		printText(a, d, ex)
		if *qos {
			printQoS(d)
		}
	}

	if !d.Verification.Ok() {
		return fmt.Errorf("verification failed: %d/%d message edges confirmed, %d diffs",
			d.Verification.VerifiedEdges, d.Verification.MessageEdges,
			len(d.Verification.Diffs))
	}
	return nil
}

func parseWhy(s string) (observer, subject ioa.Loc, err error) {
	i, j, ok := strings.Cut(s, ":")
	if !ok {
		return 0, 0, fmt.Errorf("-why wants observer:subject, got %q", s)
	}
	oi, err1 := strconv.Atoi(i)
	sj, err2 := strconv.Atoi(j)
	if err1 != nil || err2 != nil || oi < 0 || sj < 0 {
		return 0, 0, fmt.Errorf("-why wants two non-negative integers, got %q", s)
	}
	return ioa.Loc(oi), ioa.Loc(sj), nil
}

// pickTransition selects the transition to explain: the latest FD output of
// observer that adds (or, with removed, removes) subject at or before step
// at; at < 0 means anywhere in the trace.
func pickTransition(d *causal.DAG, observer, subject ioa.Loc, at int, removed bool) (*causal.Transition, error) {
	trs := d.Transitions()
	var pick *causal.Transition
	for i := range trs {
		tr := &trs[i]
		if tr.Observer != observer {
			continue
		}
		if at >= 0 && tr.Event > at {
			break
		}
		set := tr.Added
		if removed {
			set = tr.Removed
		}
		for _, l := range set {
			if l == subject {
				pick = tr
			}
		}
	}
	if pick == nil {
		verb := "added"
		if removed {
			verb = "removed"
		}
		window := ""
		if at >= 0 {
			window = fmt.Sprintf(" by step %d", at)
		}
		return nil, fmt.Errorf("observer %d never %s suspicion of %d%s",
			observer, verb, subject, window)
	}
	return pick, nil
}

func printText(a *trace.Artifact, d *causal.DAG, ex *causal.Explanation) {
	verb := "started suspecting"
	if !ex.Added {
		verb = "stopped suspecting"
	}
	fmt.Printf("%s (n=%d, sched=%s): observer %d %s %d at step %d [%s]\n",
		a.Target, a.N, a.Sched, ex.Transition.Observer, verb, ex.Subject,
		ex.Transition.Event, ex.Transition.Family)
	if ex.OriginIsCrash {
		fmt.Printf("rooted in the subject's crash (event %d); causal cone: %d events\n",
			ex.Origin, ex.ConeSize)
	} else {
		fmt.Printf("NOT rooted in a crash of %d (a timing mistake or refutation); causal cone: %d events\n",
			ex.Subject, ex.ConeSize)
	}
	fmt.Printf("minimal chain (%d links):\n", len(ex.Chain))
	for _, link := range ex.Chain {
		stamp := ""
		if link.StampNs >= 0 {
			stamp = fmt.Sprintf("  @%.3fms", float64(link.StampNs)/1e6)
		}
		fmt.Printf("  [%5d] loc %-3d %s%s\n", link.Event, link.Loc, link.Action, stamp)
		if link.EdgeToNext != "" {
			mark := "✓"
			if !link.EdgeVerified {
				mark = "✗ UNVERIFIED"
			}
			fmt.Printf("          └─%s─▶ %s\n", link.EdgeToNext, mark)
		}
	}
	v := d.Verification
	status := "OK"
	if !v.Ok() {
		status = "FAILED"
	}
	fmt.Printf("verification %s: %d/%d message edges oracle-confirmed, %d oracle events, %d diffs\n",
		status, v.VerifiedEdges, v.MessageEdges, v.OracleEvents, len(v.Diffs))
	for _, diff := range v.Diffs {
		fmt.Printf("  diff: %s\n", diff)
	}
}

func printQoS(d *causal.DAG) {
	stats := causal.Compute(d.Events, d.Stamps)
	if len(stats) == 0 {
		fmt.Println("qos: no FD outputs in the trace")
		return
	}
	for _, s := range stats {
		fmt.Printf("qos %s: %d observers, %d detections (mean %.1f / max %d steps), propagation %d steps, %d mistakes",
			s.Family, s.Observers, len(s.Detections),
			s.DetectionMeanSteps, s.DetectionMaxSteps, s.PropagationSteps, s.MistakeCount)
		if s.MistakeCount > 0 {
			fmt.Printf(" (mean %.1f / max %d steps)", s.MistakeMeanSteps, s.MistakeMaxSteps)
		}
		if s.DetectionMaxNs > 0 {
			fmt.Printf("; wall-clock detection mean %.3fms max %.3fms",
				s.DetectionMeanNs/1e6, float64(s.DetectionMaxNs)/1e6)
		}
		fmt.Println()
	}
}

// writeFlows renders the chain into a Chrome-trace JSON: instants on each
// involved location's track plus flow arrows across every message edge.
func writeFlows(path string, d *causal.DAG, ex *causal.Explanation) error {
	reg := telemetry.NewRegistry()
	causal.EmitFlows(reg, d, ex)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.Trace().WriteChromeTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
