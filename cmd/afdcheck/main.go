// Command afdcheck checks a JSON trace (as written by afdsim -json) against
// a named specification: any AFD of the Section-3.3 zoo, or the consensus
// problem of Section 9.1.
//
// Examples:
//
//	afdcheck -list
//	afdcheck -fd FD-Ω -n 4 trace.json
//	afdcheck -problem consensus -n 3 -f 1 trace.json
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "afdcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family   = flag.String("fd", "", "failure-detector family to check against")
		problem  = flag.String("problem", "", "problem to check against: consensus")
		n        = flag.Int("n", 3, "number of locations")
		f        = flag.Int("f", 1, "crash bound for -problem consensus")
		window   = flag.Int("window", 1, "stable-suffix window (outputs per live location)")
		prefix   = flag.Bool("prefix", false, "prefix mode: enforce only safety clauses (refutable on a prefix)")
		complete = flag.Bool("complete", true, "treat the trace as a complete run (termination enforced)")
		list     = flag.Bool("list", false, "list known detector families and exit")
		telAddr  = flag.String("telemetry.addr", "", "serve expvar+pprof while checking (profiling long checks)")
		traceOut = flag.String("trace.out", "", "write a Chrome trace_event JSON file on exit")
	)
	flag.Parse()

	// Checking is an offline pass over a recorded trace — no simulation
	// planes to meter — so the flags here buy live pprof on big inputs and a
	// (mostly empty) trace file, keeping the flag surface uniform across the
	// cmd/* binaries.
	_, flush, err := telemetry.Init(*telAddr, *traceOut)
	if err != nil {
		return err
	}
	defer flush()

	if *list {
		for _, fam := range afd.Families(*n) {
			fmt.Println(fam)
		}
		return nil
	}
	if flag.NArg() != 1 {
		return fmt.Errorf("usage: afdcheck [-fd FAMILY | -problem consensus] FILE.json")
	}
	file, err := os.Open(flag.Arg(0))
	if err != nil {
		return err
	}
	defer file.Close()
	tr, err := trace.ReadJSON(file)
	if err != nil {
		return err
	}
	fmt.Printf("%d events read\n", len(tr))

	switch {
	case *family != "":
		d, err := afd.Lookup(*family, *n)
		if err != nil {
			return err
		}
		w := afd.Window{MinOutputsPerLive: *window, MinStableOutputs: *window, Prefix: *prefix}
		if err := d.Check(trace.FD(tr, *family), *n, w); err != nil {
			return fmt.Errorf("trace ∉ T(%s): %w", *family, err)
		}
		fmt.Printf("trace ∈ T(%s)\n", *family)
		return nil
	case *problem == "consensus":
		spec := consensus.Spec{N: *n, F: *f}
		if err := spec.Check(consensus.ProjectIO(tr), *complete); err != nil {
			return fmt.Errorf("trace ∉ TP: %w", err)
		}
		fmt.Println("trace ∈ TP (f-crash-tolerant binary consensus)")
		return nil
	default:
		return fmt.Errorf("one of -fd or -problem is required (or -list)")
	}
}
