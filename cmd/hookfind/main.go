// Command hookfind builds the tagged execution tree RtD of Section 8 for
// the Section-9.3 consensus system, computes node valences, searches for
// hooks (Section 9.6.1), and verifies the Theorem-59 properties of every
// hook found.
//
// Exploration runs on the parallel engine (see -workers) and reports
// progress — nodes, edges, nodes/sec — every -progress nodes and on SIGINT;
// a second SIGINT aborts the exploration cleanly via the Progress hook.
//
// Example:
//
//	hookfind -n 3 -rounds 3 -crash 2:1 -values -1,0,1
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/valence"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "hookfind:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 2, "number of locations")
		algo     = flag.String("algo", "ct", "hosted consensus algorithm: ct (Ω, rotating coordinator) or s (P, flooding)")
		rounds   = flag.Int("rounds", 6, "detector output sweeps in tD")
		crash    = flag.String("crash", "", "crashes inside tD as loc:round pairs, comma separated")
		values   = flag.String("values", "", "environment proposals per location (-1 = free); empty = all free")
		maxNodes = flag.Int("maxnodes", 2_000_000, "node cap (exploration fails past it)")
		maxHooks = flag.Int("maxhooks", 10, "hooks to print and verify (0 = all found)")
		workers  = flag.Int("workers", 0, "exploration workers (0 = GOMAXPROCS)")
		por      = flag.Bool("por", false, "dynamic partial-order reduction: prune provably equivalent interleavings (verdicts and hooks are preserved)")
		progress = flag.Int("progress", 100_000, "print a progress line every this many nodes (0 = only on SIGINT)")
		dot      = flag.String("dot", "", "write the explored graph as Graphviz DOT to this file")
		telAddr  = flag.String("telemetry.addr", "", "serve expvar+pprof+metrics on this address")
		traceOut = flag.String("trace.out", "", "write a Chrome trace_event JSON file on exit")
	)
	flag.Parse()

	tel, flush, err := telemetry.Init(*telAddr, *traceOut)
	if err != nil {
		return err
	}
	defer flush()

	crashAt := make(map[ioa.Loc]int)
	if *crash != "" {
		for _, part := range strings.Split(*crash, ",") {
			lr := strings.SplitN(part, ":", 2)
			if len(lr) != 2 {
				return fmt.Errorf("bad crash spec %q (want loc:round)", part)
			}
			l, err1 := strconv.Atoi(lr[0])
			r, err2 := strconv.Atoi(lr[1])
			if err1 != nil || err2 != nil {
				return fmt.Errorf("bad crash spec %q", part)
			}
			crashAt[ioa.Loc(l)] = r
		}
	}
	var vals []int
	if *values != "" {
		for _, part := range strings.Split(*values, ",") {
			v, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return fmt.Errorf("bad value %q", part)
			}
			vals = append(vals, v)
		}
		if len(vals) != *n {
			return fmt.Errorf("%d values for %d locations", len(vals), *n)
		}
	}

	var tD trace.T
	var family string
	switch *algo {
	case "ct":
		family = afd.FamilyOmega
		tD = valence.OmegaTD(*n, *rounds, crashAt)
		if err := (afd.Omega{}).Check(tD, *n, afd.DefaultWindow()); err != nil {
			return fmt.Errorf("constructed tD ∉ TΩ: %w", err)
		}
	case "s":
		family = afd.FamilyP
		tD = valence.PerfectTD(*n, *rounds, crashAt)
		if err := (afd.Perfect{}).Check(tD, *n, afd.DefaultWindow()); err != nil {
			return fmt.Errorf("constructed tD ∉ TP: %w", err)
		}
	default:
		return fmt.Errorf("unknown algo %q", *algo)
	}
	fmt.Printf("tD: %d events (%d crashes)\n", len(tD), len(crashAt))

	// SIGINT once = print progress at the next hook call; twice = abort.
	var sigints atomic.Int64
	sigCh := make(chan os.Signal, 4)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	go func() {
		for range sigCh {
			if sigints.Add(1) >= 2 {
				fmt.Fprintln(os.Stderr, "hookfind: aborting at next progress checkpoint")
			}
		}
	}()
	defer signal.Stop(sigCh)

	every := *progress
	if every <= 0 {
		// Progress only on SIGINT: still poll at a fine grain so the signal
		// is noticed promptly, but stay quiet otherwise.
		every = 10_000
	}
	start := time.Now()
	var lastPrinted int64
	e, err := valence.New(valence.Config{
		N: *n, Family: family, Algo: *algo, TD: tD, Values: vals,
		MaxNodes: *maxNodes, Workers: *workers, ProgressEvery: every,
		Reduce: *por, Telemetry: tel,
		Progress: func(p valence.Progress) bool {
			sig := sigints.Load()
			if *progress > 0 || sig > 0 || p.Done {
				el := time.Since(start)
				fmt.Fprintf(os.Stderr, "progress: %d nodes, %d edges, %.0f nodes/sec\n",
					p.Nodes, p.Edges, float64(p.Nodes)/el.Seconds())
				lastPrinted = p.Nodes
			}
			return sig < 2
		},
	})
	if err != nil {
		return err
	}
	if err := e.Explore(); err != nil {
		var cap *valence.ErrStateSpaceCap
		switch {
		case errors.Is(err, valence.ErrCanceled):
			return fmt.Errorf("exploration aborted by SIGINT after %d nodes", lastPrinted)
		case errors.As(err, &cap):
			return fmt.Errorf("state space exceeds -maxnodes %d (%d nodes created); re-run with a larger cap",
				cap.Cap, cap.Nodes)
		}
		return err
	}
	st := e.Stats()
	fmt.Printf("graph: %d nodes, %d edges (%d FD, %d decide) in %v\n",
		st.Nodes, st.Edges, st.FDEdges, st.DecideCut, time.Since(start).Round(time.Millisecond))
	fmt.Printf("valences: %d bivalent, %d 0-valent, %d 1-valent, %d unknown\n",
		st.Bivalent, st.ZeroVal, st.OneVal, st.Unknown)
	if *por {
		fmt.Printf("reduction: %d reduced nodes, %d pruned steps, %d sleep hits, %d rounds, %d forced full, %d poisoned\n",
			st.ReducedNodes, st.PrunedSteps, st.SleepHits, st.ReduceRounds,
			st.ForcedCycle+st.ForcedBivalent, st.Poisoned)
	}
	fmt.Printf("root: %v\n", e.Valence(e.Root()))

	if err := e.CheckLemma52(); err != nil {
		return err
	}
	if err := e.CheckProposition50(); err != nil {
		return err
	}
	fmt.Println("Lemma 52 and Proposition 50 verified on every node")

	found := e.FindHooks(*maxHooks)
	if len(found) == 0 {
		fmt.Println("no hooks found")
		return nil
	}
	for _, h := range found {
		if err := e.VerifyHook(h); err != nil {
			return err
		}
		fmt.Printf("VERIFIED %v\n", h)
	}
	fmt.Printf("%d hooks verified: action tags non-⊥, single critical location, critical location live (Theorem 59)\n", len(found))
	hs := e.HookStats(found)
	fmt.Printf("hook edges by kind: %v; FD edge involved in %d hooks; critical locations: %v\n",
		hs.ByLabelKind, hs.FDInvolved, hs.ByCritical)

	length, cyclic := e.BivalencePath()
	fmt.Printf("bivalence-preserving adversary path: %d steps, cyclic=%t\n", length, cyclic)

	if *dot != "" {
		f, err := os.Create(*dot)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := e.WriteDOT(f, 0); err != nil {
			return err
		}
		fmt.Printf("graph written to %s\n", *dot)
	}
	return nil
}
