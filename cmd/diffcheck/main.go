// Command diffcheck is the differential-oracle sweep: it executes chaos
// fault-plan × scheduler × seed grids with the internal/oracle invariant
// layer attached — enabled-set and delivery-set re-derived from first
// principles every event, every channel mirrored by a naive shadow queue —
// and runs the serial and parallel valence explorers on shared configs,
// diffing their tables node-by-node.  Any failure is shrunk to a minimal
// reproducer that still exhibits the same divergence clause (the oracle is
// re-attached to every shrink candidate) and written as a replayable
// trace.Artifact.
//
// A clean exit means the optimized engines — routing index, incremental
// ready-set, ring-buffer channels, parallel frontier exploration — agreed
// with their references at every observed step of every run in the grid.
//
// Usage:
//
//	diffcheck [-n 3] [-t -1] [-seeds 8] [-plans 0] [-steps 0] [-stride 1]
//	          [-scheds rr,random,lifo] [-targets LIST] [-workers 0]
//	          [-valence] [-short] [-out DIR]
//
// -short shrinks the grid to CI size (2 seeds, 3 plans, shorter runs).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync"

	"repro/internal/chaos"
	"repro/internal/ioa"
	"repro/internal/oracle"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/valence"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "diffcheck:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		n        = flag.Int("n", 3, "number of locations")
		maxT     = flag.Int("t", -1, "max crashes per plan (-1 = each target's tolerance)")
		seeds    = flag.Int("seeds", 8, "seeds per (target, scheduler, plan)")
		plans    = flag.Int("plans", 0, "cap on fault plans per target (0 = all subsets)")
		steps    = flag.Int("steps", 0, "step bound per run (0 = default)")
		stride   = flag.Int("stride", 1, "events between full oracle sweeps (1 = every event)")
		scheds   = flag.String("scheds", "", "comma-separated schedulers: rr,random,lifo (default all)")
		targets  = flag.String("targets", "", "comma-separated target IDs (default Ω, ◇P, consensus:Ω)")
		workers  = flag.Int("workers", 0, "parallel runner workers (0 = GOMAXPROCS)")
		valDiff  = flag.Bool("valence", true, "also diff serial vs parallel valence explorers")
		short    = flag.Bool("short", false, "CI-sized grid: 2 seeds, 3 plans, shorter runs")
		outDir   = flag.String("out", "", "write one artifact per failure to this directory")
		telAddr  = flag.String("telemetry.addr", "", "serve expvar+pprof+metrics on this address")
		traceOut = flag.String("trace.out", "", "write a Chrome trace_event JSON file on exit")
	)
	flag.Parse()

	tel, flush, err := telemetry.Init(*telAddr, *traceOut)
	if err != nil {
		return err
	}
	defer flush()

	if *short {
		*seeds = 2
		if *plans == 0 {
			*plans = 3
		}
		if *steps == 0 {
			*steps = 400 * *n
		}
	}

	ts := chaos.DefaultTargets()
	if *targets != "" {
		ts = ts[:0]
		for _, id := range strings.Split(*targets, ",") {
			t, err := chaos.ParseTarget(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			ts = append(ts, t)
		}
	}
	schedList := chaos.Schedulers()
	if *scheds != "" {
		schedList = strings.Split(*scheds, ",")
	}

	runs := buildGrid(ts, *n, *maxT, *seeds, *plans, *steps, schedList)
	fmt.Printf("diffcheck: %d runs (%d targets × %d schedulers × %d seeds × ≤%d plans), oracle stride %d\n",
		len(runs), len(ts), len(schedList), *seeds, planCap(*n, *maxT, *plans, ts), *stride)

	inst := instrument(*stride, tel)
	exec := func(r chaos.Run) (chaos.Verdict, error) {
		return chaos.ExecuteInstrumented(r, inst)
	}
	if tel != nil {
		// Coarse per-run telemetry only (runs/failures/spans): sweep runs
		// execute concurrently, so deep system-level metrics would interleave.
		// Oracle sweep counters and latency histograms are atomic and stay
		// meaningful across interleaved runs, so those ARE wired (see
		// instrument below).
		base := exec
		exec = func(r chaos.Run) (chaos.Verdict, error) {
			t0 := tel.Now()
			v, err := base(r)
			tel.Count(telemetry.CChaosRuns, 1)
			tel.Span(telemetry.CatChaos, r.Target.ID(), t0, 0, int64(v.Steps))
			if err == nil && v.Failed() {
				tel.Count(telemetry.CChaosFailures, 1)
			}
			return v, err
		}
	}

	failures, errs := sweep(runs, exec, *workers)
	divergences := 0
	for i, f := range failures {
		min, tries := chaos.ShrinkWith(f, exec)
		kind := "SPEC"
		if strings.Contains(min.Err.Error(), "(oracle-") {
			kind = "DIVERGENCE"
			divergences++
		}
		fmt.Printf("  %s %s sched=%s seed=%d plan=%v steps=%d (shrunk in %d tries)\n    %v\n",
			kind, min.Run.Target.ID(), min.Run.Sched, min.Run.Seed, min.Run.Plan, min.Steps, tries, min.Err)
		if *outDir != "" {
			path := filepath.Join(*outDir, fmt.Sprintf("diff-%d.json", i))
			if err := writeArtifact(path, min.Artifact()); err != nil {
				return err
			}
			fmt.Println("    artifact:", path)
		}
	}
	for _, e := range errs {
		fmt.Println("  error:", e)
	}

	valFailures := 0
	if *valDiff {
		valFailures = diffValence(*short, tel)
	}

	fmt.Printf("diffcheck: %d runs, %d divergences, %d spec failures, %d valence diff failures\n",
		len(runs), divergences, len(failures)-divergences, valFailures)
	if len(failures) > 0 || len(errs) > 0 || valFailures > 0 {
		return fmt.Errorf("%d failures", len(failures)+len(errs)+valFailures)
	}
	return nil
}

// instrument attaches a fresh oracle (full sweeps every stride events plus
// per-event channel shadows) to each built system; the returned check runs
// the end-of-run sweep and yields the first divergence.  The telemetry sink
// (nil when off) meters sweep counts and latencies across all runs.
func instrument(stride int, tel telemetry.Sink) func(*chaos.Built) func() error {
	return func(b *chaos.Built) func() error {
		o := oracle.Attach(b.Sys, oracle.Options{Stride: stride, Shadow: true, Telemetry: tel})
		return o.Check
	}
}

// buildGrid mirrors chaos.Sweep's cartesian product (same gate-sampling
// PRNG keying, so a diffcheck failure replays under plain chaos tooling),
// with an optional cap on plans per target.
func buildGrid(ts []chaos.Target, n, maxT, seeds, planCap, steps int, schedList []string) []chaos.Run {
	var runs []chaos.Run
	for _, target := range ts {
		mt := target.MaxT(n)
		if maxT >= 0 && maxT < mt {
			mt = maxT
		}
		plans := system.PlanSubsets(n, mt)
		if planCap > 0 && len(plans) > planCap {
			plans = plans[:planCap]
		}
		for _, schedKind := range schedList {
			for seed := 0; seed < seeds; seed++ {
				for pi, plan := range plans {
					grng := sched.NewPRNG(int64(seed)<<20 | int64(pi)<<1 | boolBit(schedKind == chaos.SchedLIFO))
					sb := steps
					if sb <= 0 {
						sb = chaos.DefaultSteps(n)
					}
					runs = append(runs, chaos.Run{
						Target: target,
						N:      n,
						Plan:   plan,
						Gates:  chaos.SampleGates(grng, n, sb),
						Sched:  schedKind,
						Seed:   int64(seed),
						Steps:  steps,
					})
				}
			}
		}
	}
	return runs
}

func planCap(n, maxT, cap int, ts []chaos.Target) int {
	most := 0
	for _, t := range ts {
		mt := t.MaxT(n)
		if maxT >= 0 && maxT < mt {
			mt = maxT
		}
		if p := len(system.PlanSubsets(n, mt)); p > most {
			most = p
		}
	}
	if cap > 0 && cap < most {
		return cap
	}
	return most
}

// sweep executes the grid in parallel, collecting failing verdicts in a
// stable order.
func sweep(runs []chaos.Run, exec func(chaos.Run) (chaos.Verdict, error), workers int) ([]chaos.Verdict, []error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var (
		mu       sync.Mutex
		failures []chaos.Verdict
		errs     []error
		wg       sync.WaitGroup
	)
	jobs := make(chan chaos.Run)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range jobs {
				v, err := exec(r)
				switch {
				case err != nil:
					mu.Lock()
					errs = append(errs, err)
					mu.Unlock()
				case v.Failed():
					mu.Lock()
					failures = append(failures, v)
					mu.Unlock()
				}
			}
		}()
	}
	for _, r := range runs {
		jobs <- r
	}
	close(jobs)
	wg.Wait()
	sort.Slice(failures, func(i, j int) bool {
		a, b := failures[i].Run, failures[j].Run
		if a.Target.ID() != b.Target.ID() {
			return a.Target.ID() < b.Target.ID()
		}
		if a.Sched != b.Sched {
			return a.Sched < b.Sched
		}
		return a.Seed < b.Seed
	})
	return failures, errs
}

// diffValence runs the serial-vs-parallel explorer diff over a small config
// grid; returns the number of failures.  The sink (nil when off) meters both
// explorers of each diff — node/edge counters double-count by design, since
// the diff runs every config twice.
func diffValence(short bool, tel telemetry.Sink) int {
	type vc struct {
		name string
		cfg  valence.Config
	}
	cases := []vc{
		{"omega-n2-r2", valence.Config{N: 2, Family: "FD-Ω", Algo: "ct", TD: valence.OmegaTD(2, 2, nil)}},
		{"omega-n2-r3-crash1", valence.Config{N: 2, Family: "FD-Ω", Algo: "ct",
			TD: valence.OmegaTD(2, 3, map[ioa.Loc]int{1: 1})}},
		{"perfect-n2-s-r2", valence.Config{N: 2, Family: "FD-P", Algo: "s", TD: valence.PerfectTD(2, 2, nil)}},
	}
	if !short {
		cases = append(cases,
			vc{"omega-n2-r4-crash0", valence.Config{N: 2, Family: "FD-Ω", Algo: "ct",
				TD: valence.OmegaTD(2, 4, map[ioa.Loc]int{0: 2})}},
			vc{"perfect-n3-s-r2", valence.Config{N: 3, Family: "FD-P", Algo: "s",
				TD: valence.PerfectTD(3, 2, map[ioa.Loc]int{2: 1}), MaxNodes: 2_000_000}},
		)
	}
	failures := 0
	for _, c := range cases {
		c.cfg.Telemetry = tel
		if err := oracle.DiffExplorers(c.cfg, oracle.DiffOptions{}); err != nil {
			fmt.Printf("  VALENCE-DIVERGENCE %s\n    %v\n", c.name, err)
			failures++
			continue
		}
		fmt.Printf("  valence %s: serial == parallel (node-by-node)\n", c.name)
	}
	return failures
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func writeArtifact(path string, a *trace.Artifact) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return trace.WriteArtifact(f, a)
}
