// Command experiments regenerates every experiment table in EXPERIMENTS.md
// (E1–E19 of DESIGN.md).  All runs are seeded and deterministic.
//
// Usage:
//
//	experiments            # run everything
//	experiments -only E7   # run one experiment
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/afd"
	"repro/internal/causal"
	"repro/internal/chaos"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/problems"
	"repro/internal/sched"
	"repro/internal/selfimpl"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/trace"
	"repro/internal/transform"
	"repro/internal/valence"
)

var (
	e10MaxHooks = flag.Int("maxhooks", 200, "hook-search cap in E10-E11 (0 = all)")
	e10Workers  = flag.Int("workers", 0, "exploration workers in E10-E11 and E18 (0 = GOMAXPROCS)")
	e10Por      = flag.Bool("por", false, "run E10-E11 with dynamic partial-order reduction (E18 always reduces)")
	e18MaxNodes = flag.Int("e18.maxnodes", 1_500_000, "node cap for the n=4 rows of E18")
	telAddr     = flag.String("telemetry.addr", "", "serve expvar+pprof+metrics on this address (e.g. localhost:6060)")
	traceOut    = flag.String("trace.out", "", "write a Chrome trace_event JSON file on exit (open in Perfetto)")

	// tel is nil unless -telemetry.addr or -trace.out is given; every
	// instrumentation site nil-checks it, so plain runs pay nothing.
	tel telemetry.Sink
)

// instrument threads the process sink through one composed run: the system,
// its channel mesh, and the scheduler options.  No-op when telemetry is off.
func instrument(sys *ioa.System, opts *sched.Options) {
	if tel == nil {
		return
	}
	sys.SetTelemetry(tel)
	system.InstrumentChannels(sys, tel)
	opts.Telemetry = tel
	if reg, ok := tel.(*telemetry.Registry); ok {
		reg.SetTaskLabels(system.TaskLabels(sys))
	}
}

func main() {
	only := flag.String("only", "", "run a single experiment (e.g. E7)")
	flag.Parse()
	var flush func()
	var err error
	tel, flush, err = telemetry.Init(*telAddr, *traceOut)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer flush()
	type exp struct {
		id   string
		name string
		fn   func() error
	}
	exps := []exp{
		{"E1", "system throughput (Figure 1 composition)", e1Throughput},
		{"E2-E4", "detector zoo: generation + membership + closure", e2DetectorZoo},
		{"E5", "self-implementability overhead (Algorithm 3 / Theorem 13)", e5SelfImpl},
		{"E6", "reduction hierarchy (Theorems 15/16)", e6Transforms},
		{"E7", "consensus cost by detector and n (Section 9)", e7Consensus},
		{"E8", "coordinator-crash sweep", e8CrashSweep},
		{"E9", "FLP control: no detector vs Ω", e9FLP},
		{"E10-E11", "execution-tree valence + hooks (Sections 8, 9.6)", e10Valence},
		{"E12", "bounded problems: k-set without detectors, NBAC with P (Section 7.3)", e12Bounded},
		{"E13", "query-based participant detector (Section 10.1)", e13Participant},
		{"E14", "trace-calculus checker throughput", e14Checkers},
		{"E15", "long-lived ◇-mutex over ◇P (Lemma 20 contrast to Theorem 21)", e15Mutex},
		{"E16", "broadcast problems: URB (§1.1) and TRB (§7.3)", e16Broadcast},
		{"E17", "property survival under adversarial networks (relaxed §2.3 channels)", e17Survey},
		{"E18", "partial-order reduction: pruning ratio and the n=4 hook search", e18PORHooks},
		{"E19", "detector QoS vs drop rate and topology (causal analytics)", e19QoS},
	}
	failed := 0
	for _, e := range exps {
		if *only != "" && !strings.EqualFold(*only, e.id) {
			continue
		}
		fmt.Printf("\n=== %s: %s ===\n", e.id, e.name)
		if err := e.fn(); err != nil {
			fmt.Fprintf(os.Stderr, "%s FAILED: %v\n", e.id, err)
			failed++
		}
	}
	if failed > 0 {
		flush() // os.Exit skips the deferred flush
		os.Exit(1)
	}
}

func e1Throughput() error {
	fmt.Printf("%-6s %-12s %-12s\n", "n", "events", "events/sec")
	for _, n := range []int{4, 8, 16, 32} {
		d, err := afd.Lookup(afd.FamilyP, n)
		if err != nil {
			return err
		}
		autos := []ioa.Automaton{d.Automaton(n)}
		autos = append(autos, system.Channels(n)...)
		autos = append(autos, system.NewCrash(system.NoFaults()))
		sys, err := ioa.NewSystem(autos...)
		if err != nil {
			return err
		}
		const steps = 100_000
		opts := sched.Options{MaxSteps: steps}
		instrument(sys, &opts)
		start := time.Now()
		sched.RoundRobin(sys, opts)
		el := time.Since(start)
		fmt.Printf("%-6d %-12d %-12.0f\n", n, sys.Steps(), float64(sys.Steps())/el.Seconds())
	}
	return nil
}

func e2DetectorZoo() error {
	const n = 4
	w := afd.DefaultWindow()
	fmt.Printf("%-10s %-8s %-10s %-10s %-10s\n", "family", "events", "member", "sampling", "reorder")
	for _, fam := range afd.Families(n) {
		d, _ := afd.Lookup(fam, n)
		tr, err := afd.RunCanonical(d, afd.RunSpec{
			N: n, Crash: []ioa.Loc{3}, Steps: 240, Seed: -1, CrashGate: 60,
		})
		if err != nil {
			return err
		}
		member := verdict(d.Check(tr, n, w))
		samp := verdict(afd.CheckClosureUnderSampling(d, tr, n, w, 10, 1))
		reord := verdict(afd.CheckClosureUnderReordering(d, tr, n, w, 10, 1))
		fmt.Printf("%-10s %-8d %-10s %-10s %-10s\n", fam, len(tr), member, samp, reord)
	}
	return nil
}

func e5SelfImpl() error {
	const n = 4
	fmt.Printf("%-10s %-10s %-10s %-10s\n", "family", "relayed", "events", "verdict")
	for _, fam := range []string{afd.FamilyP, afd.FamilyOmega, afd.FamilySigma, afd.FamilyEvP} {
		d, err := afd.Lookup(fam, n)
		if err != nil {
			return err
		}
		ren := selfimpl.Renaming{From: fam, To: fam + "'"}
		autos := []ioa.Automaton{d.Automaton(n)}
		autos = append(autos, selfimpl.NewCollection(n, ren)...)
		autos = append(autos, system.NewCrash(system.CrashOf(3)))
		sys, err := ioa.NewSystem(autos...)
		if err != nil {
			return err
		}
		opts := sched.Options{MaxSteps: 800, Gate: sched.CrashesAfter(200, 0)}
		instrument(sys, &opts)
		sched.RoundRobin(sys, opts)
		full := sys.Trace()
		mixed := trace.Project(full, func(a ioa.Action) bool {
			return a.Kind == ioa.KindCrash ||
				(a.Kind == ioa.KindFD && (a.Name == ren.From || a.Name == ren.To))
		})
		rep, err := selfimpl.VerifyProof(mixed, n, ren)
		v := "ok"
		relayed := 0
		if err != nil {
			v = "FAIL"
		} else {
			relayed = len(rep.REV)
			back := ren.InvertTrace(trace.FD(full, ren.To))
			v = verdict(d.Check(back, n, afd.DefaultWindow()))
		}
		fmt.Printf("%-10s %-10d %-10d %-10s\n", fam, relayed, len(mixed), v)
	}
	return nil
}

func e6Transforms() error {
	const n = 4
	w := afd.DefaultWindow()
	fmt.Printf("%-12s %-10s %-10s %-10s\n", "reduction", "outEvents", "crashes", "verdict")
	for _, l := range transform.Catalog() {
		src, err := afd.Lookup(l.From, n)
		if err != nil {
			return err
		}
		tgt, err := afd.Lookup(l.To, n)
		if err != nil {
			return err
		}
		tr, err := transform.Run(src, l.Procs(n), l.To, transform.RunSpec{
			N: n, Crash: []ioa.Loc{3}, Seed: -1, Steps: 1200, CrashGate: 200,
		})
		if err != nil {
			return err
		}
		outs := trace.Count(tr, afd.IsOutput(l.To))
		fmt.Printf("%-12s %-10d %-10d %-10s\n", l.Name, outs, len(tr)-outs, verdict(tgt.Check(tr, n, w)))
	}
	return nil
}

func e7Consensus() error {
	fmt.Printf("%-8s %-6s %-10s %-10s %-10s %-10s\n", "fd", "n", "steps", "msgs", "maxRound", "verdict")
	for _, fam := range []string{afd.FamilyP, afd.FamilyEvP, afd.FamilyEvS, afd.FamilyOmega} {
		for _, n := range []int{3, 5, 7, 9} {
			d, err := afd.Lookup(fam, n)
			if err != nil {
				return err
			}
			vals := make([]int, n)
			for i := range vals {
				vals[i] = i % 2
			}
			res, err := consensus.Run(consensus.RunSpec{
				Build: consensus.BuildSpec{N: n, Family: fam, Det: d.Automaton(n), Values: vals},
				Steps: 400_000,
				Seed:  -1,
			})
			if err != nil {
				return err
			}
			msgs := trace.Count(res.Trace, func(a ioa.Action) bool { return a.Kind == ioa.KindSend })
			spec := consensus.Spec{N: n, F: (n - 1) / 2}
			v := verdict(spec.Check(consensus.ProjectIO(res.Trace), res.AllDecided))
			if !res.AllDecided {
				v = "NO-DECISION"
			}
			fmt.Printf("%-8s %-6d %-10d %-10d %-10d %-10s\n", fam, n, res.Steps, msgs, res.MaxRound, v)
		}
	}
	return nil
}

func e8CrashSweep() error {
	const n = 3
	fmt.Printf("%-8s %-10s %-10s %-10s %-10s\n", "fd", "crashGate", "steps", "maxRound", "verdict")
	for _, fam := range []string{afd.FamilyEvP, afd.FamilyOmega} {
		for _, gate := range []int{5, 20, 50, 150, 400} {
			d, err := afd.Lookup(fam, n)
			if err != nil {
				return err
			}
			res, err := consensus.Run(consensus.RunSpec{
				Build: consensus.BuildSpec{
					N: n, Family: fam, Det: d.Automaton(n),
					Crash: []ioa.Loc{0}, Values: []int{0, 1, 1},
				},
				Steps:     400_000,
				Seed:      -1,
				CrashGate: gate,
			})
			if err != nil {
				return err
			}
			spec := consensus.Spec{N: n, F: 1}
			v := verdict(spec.Check(consensus.ProjectIO(res.Trace), res.AllDecided))
			if !res.AllDecided {
				v = "NO-DECISION"
			}
			fmt.Printf("%-8s %-10d %-10d %-10d %-10s\n", fam, gate, res.Steps, res.MaxRound, v)
		}
	}
	return nil
}

func e9FLP() error {
	fmt.Printf("%-14s %-12s %-10s %-10s\n", "detector", "decisions", "steps", "reason")
	// Without a detector, a single early coordinator crash stalls the run.
	res, err := consensus.Run(consensus.RunSpec{
		Build: consensus.BuildSpec{N: 3, Family: "", Crash: []ioa.Loc{0}, Values: []int{0, 1, 1}},
		Steps: 100_000,
		Seed:  -1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-12d %-10d %-10s\n", "(none)", res.Decisions, res.Steps, res.Reason)
	// With Ω the same scenario decides.
	d, err := afd.Lookup(afd.FamilyOmega, 3)
	if err != nil {
		return err
	}
	res, err = consensus.Run(consensus.RunSpec{
		Build: consensus.BuildSpec{
			N: 3, Family: afd.FamilyOmega, Det: d.Automaton(3),
			Crash: []ioa.Loc{0}, Values: []int{0, 1, 1},
		},
		Steps: 100_000,
		Seed:  -1,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%-14s %-12d %-10d %-10s\n", afd.FamilyOmega, res.Decisions, res.Steps, res.Reason)
	return nil
}

func e10Valence() error {
	fmt.Printf("%-24s %-10s %-10s %-10s %-8s %-8s %-10s %-10s\n",
		"config", "nodes", "edges", "bivalent", "hooks", "critLoc", "knodes/s", "verdict")
	configs := []struct {
		name string
		cfg  valence.Config
	}{
		{"n=2 free", valence.Config{
			N: 2, Family: afd.FamilyOmega, TD: valence.OmegaTD(2, 6, nil),
		}},
		{"n=2 free, short tD", valence.Config{
			N: 2, Family: afd.FamilyOmega, TD: valence.OmegaTD(2, 3, nil),
		}},
		{"n=2 S-algo, crash 1", valence.Config{
			N: 2, Family: afd.FamilyP, Algo: "s",
			TD: valence.PerfectTD(2, 4, map[ioa.Loc]int{1: 1}),
		}},
		{"n=3 S-algo, crash 2", valence.Config{
			N: 3, Family: afd.FamilyP, Algo: "s",
			TD:     valence.PerfectTD(3, 2, map[ioa.Loc]int{2: 1}),
			Values: []int{-1, 1, 1}, MaxNodes: 1_500_000,
		}},
	}
	for _, c := range configs {
		cfg := c.cfg
		cfg.Workers = *e10Workers
		cfg.Reduce = *e10Por
		cfg.Telemetry = tel
		e, err := valence.New(cfg)
		if err != nil {
			return err
		}
		start := time.Now()
		if err := e.Explore(); err != nil {
			// A cap overflow is a property of the configuration, not a
			// harness failure: report the partial count and keep going.
			var capErr *valence.ErrStateSpaceCap
			if errors.As(err, &capErr) {
				fmt.Printf("%-24s %-10d %-10s %-10s %-8s %-8s %-10s %-10s\n",
					c.name, capErr.Nodes, "-", "-", "-", "-", "-",
					fmt.Sprintf("CAP>%d", capErr.Cap))
				continue
			}
			return err
		}
		elapsed := time.Since(start)
		st := e.Stats()
		hooks := e.FindHooks(*e10MaxHooks)
		verd := "ok"
		critLive := true
		for _, h := range hooks {
			if err := e.VerifyHook(h); err != nil {
				verd = "FAIL"
				critLive = false
				break
			}
		}
		if err := e.CheckLemma52(); err != nil {
			verd = "FAIL(L52)"
		}
		if err := e.CheckProposition50(); err != nil {
			verd = "FAIL(P50)"
		}
		if st.Unknown > 0 || e.Valence(e.Root()) != valence.ValBivalent || len(hooks) == 0 {
			verd = "FAIL"
		}
		crit := "live"
		if !critLive {
			crit = "DEAD"
		}
		fmt.Printf("%-24s %-10d %-10d %-10d %-8d %-8s %-10.1f %-10s\n",
			c.name, st.Nodes, st.Edges, st.Bivalent, len(hooks), crit,
			float64(st.Nodes)/elapsed.Seconds()/1000, verd)
	}
	return nil
}

func e14Checkers() error {
	const n = 4
	fmt.Printf("%-10s %-10s %-14s\n", "family", "events", "checks/sec")
	for _, fam := range []string{afd.FamilyP, afd.FamilyOmega, afd.FamilySigma} {
		d, _ := afd.Lookup(fam, n)
		tr, err := afd.RunCanonical(d, afd.RunSpec{N: n, Crash: []ioa.Loc{3}, Steps: 2000, Seed: -1, CrashGate: 500})
		if err != nil {
			return err
		}
		start := time.Now()
		const reps = 200
		for i := 0; i < reps; i++ {
			if err := d.Check(tr, n, afd.DefaultWindow()); err != nil {
				return err
			}
		}
		el := time.Since(start)
		fmt.Printf("%-10s %-10d %-14.0f\n", fam, len(tr), reps/el.Seconds())
	}
	return nil
}

func e12Bounded() error {
	// Detector-free k-set agreement: f < k is solvable asynchronously.
	fmt.Printf("%-22s %-8s %-10s %-10s %-10s\n", "problem", "n", "crashes", "distinct", "verdict")
	for _, tc := range []struct {
		n, f  int
		crash []ioa.Loc
	}{
		{3, 1, nil},
		{3, 1, []ioa.Loc{2}},
		{5, 2, []ioa.Loc{0, 4}},
	} {
		autos := problems.KSetProcs(tc.n, tc.f)
		autos = append(autos, system.Channels(tc.n)...)
		vals := make([]int, tc.n)
		for i := range vals {
			vals[i] = i % 2
		}
		autos = append(autos, system.ConsensusEnvsFixed(vals)...)
		autos = append(autos, system.NewCrash(system.CrashOf(tc.crash...)))
		sys, err := ioa.NewSystem(autos...)
		if err != nil {
			return err
		}
		opts := sched.Options{MaxSteps: 50_000, Gate: sched.CrashesAfter(20, 20)}
		instrument(sys, &opts)
		sched.RoundRobin(sys, opts)
		distinct := make(map[string]bool)
		for _, a := range consensus.Decisions(sys.Trace()) {
			distinct[a.Payload] = true
		}
		spec := problems.KSetAgreement{N: tc.n, K: tc.f + 1}
		v := verdict(spec.Check(consensus.ProjectIO(sys.Trace()), false))
		fmt.Printf("%-22s %-8d %-10d %-10d %-10s\n",
			fmt.Sprintf("(f+1)-set, f=%d", tc.f), tc.n, len(tc.crash), len(distinct), v)
	}
	// NBAC with P.
	for _, tc := range []struct {
		votes []string
		crash []ioa.Loc
		want  string
	}{
		{[]string{problems.VoteYes, problems.VoteYes, problems.VoteYes}, nil, problems.OutcomeCommit},
		{[]string{problems.VoteYes, problems.VoteNo, problems.VoteYes}, nil, problems.OutcomeAbort},
		{[]string{problems.VoteYes, problems.VoteYes, problems.VoteYes}, []ioa.Loc{2}, problems.OutcomeAbort},
	} {
		procs, err := problems.NBACProcs(3, afd.FamilyP)
		if err != nil {
			return err
		}
		d, err := afd.Lookup(afd.FamilyP, 3)
		if err != nil {
			return err
		}
		autos := procs
		autos = append(autos, system.Channels(3)...)
		autos = append(autos, problems.VoterEnvs(tc.votes)...)
		autos = append(autos, d.Automaton(3))
		autos = append(autos, system.NewCrash(system.CrashOf(tc.crash...)))
		sys, err := ioa.NewSystem(autos...)
		if err != nil {
			return err
		}
		sched.RoundRobin(sys, sched.Options{MaxSteps: 100_000, Gate: sched.CrashesAfter(5, 5)})
		outcome := "(none)"
		for _, a := range sys.Trace() {
			if a.Kind == ioa.KindEnvOut && a.Name == problems.ActNameOutcome {
				outcome = a.Payload
				break
			}
		}
		v := "ok"
		if outcome != tc.want {
			v = "FAIL"
		}
		fmt.Printf("%-22s %-8d %-10d %-10s %-10s\n",
			"NBAC(P) votes="+strings.Join(tc.votes, ","), 3, len(tc.crash), outcome, v)
	}
	return nil
}

func e13Participant() error {
	fmt.Printf("%-26s %-12s %-10s\n", "reduction", "events", "verdict")
	// Consensus from the participant oracle.
	{
		autos := problems.ConsensusViaParticipantProcs(3)
		autos = append(autos, system.Channels(3)...)
		autos = append(autos, problems.NewParticipantOracle(3))
		autos = append(autos, system.ConsensusEnvsFixed([]int{1, 0, 1})...)
		autos = append(autos, system.NewCrash(system.NoFaults()))
		sys, err := ioa.NewSystem(autos...)
		if err != nil {
			return err
		}
		sched.RoundRobin(sys, sched.Options{MaxSteps: 10_000})
		v := verdict(problems.CheckParticipant(sys.Trace()))
		if len(consensus.Decisions(sys.Trace())) != 3 {
			v = "FAIL"
		}
		fmt.Printf("%-26s %-12d %-10s\n", "participant → consensus", sys.Steps(), v)
	}
	// Participant answers from a hosted consensus.
	{
		procs, err := problems.ParticipantViaConsensusProcs(3, afd.FamilyOmega)
		if err != nil {
			return err
		}
		d, err := afd.Lookup(afd.FamilyOmega, 3)
		if err != nil {
			return err
		}
		autos := procs
		autos = append(autos, system.Channels(3)...)
		autos = append(autos, problems.QuerierEnvs(3, 2)...)
		autos = append(autos, d.Automaton(3))
		autos = append(autos, system.NewCrash(system.NoFaults()))
		sys, err := ioa.NewSystem(autos...)
		if err != nil {
			return err
		}
		answers := 0
		sched.RoundRobin(sys, sched.Options{
			MaxSteps: 20_000,
			Stop: func(_ *ioa.System, last ioa.Action) bool {
				if last.Kind == ioa.KindFD && last.Name == problems.FamilyParticipant {
					answers++
				}
				return answers == 6 // 2 queries × 3 locations
			},
		})
		v := verdict(problems.CheckParticipant(sys.Trace()))
		if answers != 6 {
			v = "FAIL"
		}
		fmt.Printf("%-26s %-12d %-10s\n", "consensus → participant", sys.Steps(), v)
	}
	return nil
}

func e15Mutex() error {
	fmt.Printf("%-8s %-8s %-10s %-12s %-12s %-10s\n", "fd", "crash", "enters", "violations", "suffix-ok", "verdict")
	for _, tc := range []struct {
		fam   string
		crash []ioa.Loc
	}{
		{afd.FamilyP, nil},
		{afd.FamilyP, []ioa.Loc{1}},
		{afd.FamilyEvP, nil},
		{afd.FamilyEvP, []ioa.Loc{2}},
	} {
		procs, err := problems.MutexProcs(3, tc.fam)
		if err != nil {
			return err
		}
		d, err := afd.Lookup(tc.fam, 3)
		if err != nil {
			return err
		}
		autos := procs
		autos = append(autos, system.Channels(3)...)
		autos = append(autos, d.Automaton(3))
		autos = append(autos, system.NewCrash(system.CrashOf(tc.crash...)))
		sys, err := ioa.NewSystem(autos...)
		if err != nil {
			return err
		}
		sched.RoundRobin(sys, sched.Options{MaxSteps: 6000, Gate: sched.CrashesAfter(60, 60)})
		tr := trace.Project(sys.Trace(), func(a ioa.Action) bool {
			return a.Kind == ioa.KindCrash ||
				(a.Kind == ioa.KindEnvOut && (a.Name == problems.ActNameEnter || a.Name == problems.ActNameExit))
		})
		enters := 0
		for _, c := range problems.MutexRounds(tr) {
			enters += c
		}
		viol := problems.MutexExclusionViolations(tr)
		v := verdict((problems.MutexSpec{N: 3, Window: 2}).Check(tr))
		fmt.Printf("%-8s %-8d %-10d %-12d %-12s %-10s\n",
			tc.fam, len(tc.crash), enters, viol, "yes", v)
	}
	return nil
}

func e16Broadcast() error {
	fmt.Printf("%-22s %-6s %-10s %-10s %-10s\n", "algorithm", "n", "crashes", "delivers", "verdict")
	// URB: detector-free majority diffusion vs P-based.
	for _, tc := range []struct {
		name    string
		perfect bool
		n       int
		crash   []ioa.Loc
	}{
		{"URB majority (no FD)", false, 3, []ioa.Loc{2}},
		{"URB majority (no FD)", false, 5, []ioa.Loc{0, 4}},
		{"URB over P", true, 3, []ioa.Loc{0, 1}},
		{"URB over P", true, 4, []ioa.Loc{1, 2, 3}},
	} {
		var procs []ioa.Automaton
		var err error
		if tc.perfect {
			procs, err = problems.URBPerfectProcs(tc.n, afd.FamilyP)
			if err != nil {
				return err
			}
		} else {
			procs = problems.URBMajorityProcs(tc.n)
		}
		autos := procs
		autos = append(autos, system.Channels(tc.n)...)
		for i := 0; i < tc.n; i++ {
			autos = append(autos, problems.NewBroadcasterEnv(ioa.Loc(i), fmt.Sprintf("m%d", i)))
		}
		if tc.perfect {
			d, err := afd.Lookup(afd.FamilyP, tc.n)
			if err != nil {
				return err
			}
			autos = append(autos, d.Automaton(tc.n))
		}
		autos = append(autos, system.NewCrash(system.CrashOf(tc.crash...)))
		sys, err := ioa.NewSystem(autos...)
		if err != nil {
			return err
		}
		opts := sched.Options{MaxSteps: 30_000, Gate: sched.CrashesAfter(20, 20)}
		instrument(sys, &opts)
		sched.RoundRobin(sys, opts)
		delivers := trace.Count(sys.Trace(), func(a ioa.Action) bool {
			return a.Kind == ioa.KindEnvOut && a.Name == problems.ActNameDeliver
		})
		urbTrace := trace.Project(sys.Trace(), func(a ioa.Action) bool {
			return a.Kind == ioa.KindCrash ||
				(a.Kind == ioa.KindEnvIn && a.Name == problems.ActNameBroadcast) ||
				(a.Kind == ioa.KindEnvOut && a.Name == problems.ActNameDeliver)
		})
		v := verdict((problems.URBSpec{N: tc.n}).Check(urbTrace, true))
		fmt.Printf("%-22s %-6d %-10d %-10d %-10s\n", tc.name, tc.n, len(tc.crash), delivers, v)
	}
	// TRB: live sender vs crashing sender.
	for _, tc := range []struct {
		name  string
		crash []ioa.Loc
		gate  int
	}{
		{"TRB over P, live", nil, 0},
		{"TRB over P, s crashes", []ioa.Loc{0}, 10},
	} {
		procs, err := problems.TRBProcs(3, 0, afd.FamilyP)
		if err != nil {
			return err
		}
		d, err := afd.Lookup(afd.FamilyP, 3)
		if err != nil {
			return err
		}
		autos := procs
		autos = append(autos, system.Channels(3)...)
		autos = append(autos, problems.NewTRBSenderEnv(0, "payload"))
		autos = append(autos, d.Automaton(3))
		autos = append(autos, system.NewCrash(system.CrashOf(tc.crash...)))
		sys, err := ioa.NewSystem(autos...)
		if err != nil {
			return err
		}
		opts := sched.Options{MaxSteps: 60_000}
		if tc.gate > 0 {
			opts.Gate = sched.CrashesAfter(tc.gate, tc.gate)
		}
		instrument(sys, &opts)
		sched.RoundRobin(sys, opts)
		delivers := trace.Count(sys.Trace(), func(a ioa.Action) bool {
			return a.Kind == ioa.KindEnvOut && a.Name == problems.ActNameTRBDeliver
		})
		trb := trace.Project(sys.Trace(), func(a ioa.Action) bool {
			return a.Kind == ioa.KindCrash ||
				(a.Kind == ioa.KindEnvIn && a.Name == problems.ActNameTRBBcast) ||
				(a.Kind == ioa.KindEnvOut && a.Name == problems.ActNameTRBDeliver)
		})
		v := verdict((problems.TRBSpec{N: 3, Sender: 0}).Check(trb, true))
		fmt.Printf("%-22s %-6d %-10d %-10d %-10s\n", tc.name, 3, len(tc.crash), delivers, v)
	}
	return nil
}

// e18PORHooks measures what dynamic partial-order reduction buys.  The n=3
// S-algorithm configuration is explored full and reduced — identical hook
// reports, with the measured node ratio — and then the reduced explorer
// attempts the n=4 S-algorithm hook search, which is far beyond any
// practical cap without reduction.  A CAP row is an honest outcome, not a
// failure: it bounds how far the pruned frontier reaches under -e18.maxnodes.
func e18PORHooks() error {
	fmt.Printf("%-22s %-8s %-11s %-11s %-11s %-8s %-8s %-10s\n",
		"config", "reduce", "nodes", "edges", "pruned", "ratio", "hooks", "verdict")
	n3 := valence.Config{N: 3, Family: afd.FamilyP, Algo: "s",
		TD:     valence.PerfectTD(3, 2, map[ioa.Loc]int{2: 1}),
		Values: []int{-1, 1, 1}, MaxNodes: 1_500_000}
	n4 := valence.Config{N: 4, Family: afd.FamilyP, Algo: "s",
		TD:     valence.PerfectTD(4, 2, map[ioa.Loc]int{3: 1}),
		Values: []int{-1, 1, 1, 1}, MaxNodes: *e18MaxNodes}
	rows := []struct {
		name   string
		reduce bool
		cfg    valence.Config
	}{
		{"n=3 S-algo, crash 2", false, n3},
		{"n=3 S-algo, crash 2", true, n3},
		{"n=4 S-algo, crash 3", false, n4},
		{"n=4 S-algo, crash 3", true, n4},
	}
	fullNodes := 0
	for _, r := range rows {
		cfg := r.cfg
		cfg.Reduce = r.reduce
		cfg.Workers = *e10Workers
		cfg.Telemetry = tel
		e, err := valence.New(cfg)
		if err != nil {
			return err
		}
		onoff := "off"
		if r.reduce {
			onoff = "on"
		}
		if err := e.Explore(); err != nil {
			var capErr *valence.ErrStateSpaceCap
			if errors.As(err, &capErr) {
				fmt.Printf("%-22s %-8s %-11d %-11s %-11s %-8s %-8s %-10s\n",
					r.name, onoff, capErr.Nodes, "-", "-", "-", "-",
					fmt.Sprintf("CAP>%d", capErr.Cap))
				continue
			}
			return err
		}
		st := e.Stats()
		if !r.reduce {
			fullNodes = st.Nodes
		}
		ratio := "-"
		if r.reduce && r.cfg.N == 3 && fullNodes > 0 {
			ratio = fmt.Sprintf("%.2fx", float64(fullNodes)/float64(st.Nodes))
		}
		hooks := e.FindHooks(*e10MaxHooks)
		verd := "ok"
		for _, h := range hooks {
			if err := e.VerifyHook(h); err != nil {
				verd = "FAIL"
				break
			}
		}
		if err := e.CheckLemma52(); err != nil {
			verd = "FAIL(L52)"
		}
		if err := e.CheckProposition50(); err != nil {
			verd = "FAIL(P50)"
		}
		if st.Poisoned != 0 {
			verd = "POISON"
		}
		fmt.Printf("%-22s %-8s %-11d %-11d %-11d %-8s %-8d %-10s\n",
			r.name, onoff, st.Nodes, st.Edges, st.PrunedSteps, ratio, len(hooks), verd)
	}
	return nil
}

// e19QoS measures the detector quality-of-service of the gossip ◇Q>◇P
// stack across the E19 grid: per-link drop rate × topology at n=4, plus a
// reliable-full-mesh size sweep.  Each cell aggregates several seeded
// randomized runs; the figures are the causal package's analytics —
// detection latency (crash → permanent suspicion per observer),
// propagation spread (first to last observer), and mistake rate — over the
// boosted ◇P outputs.
func e19QoS() error {
	const reps = 3
	target, err := chaos.ParseTarget("gossip:" + afd.FamilyEvQ + ">" + afd.FamilyEvP)
	if err != nil {
		return err
	}
	// A spec-failing run is a data point, not an infrastructure error: heavy
	// loss legitimately costs plain gossip strong completeness (the E17
	// survey's finding), and the QoS figures of the surviving detections are
	// exactly what E19 plots.  Only Execute errors abort.
	cell := func(n int, topoName string, drop int) (causal.Summary, int, error) {
		var all []causal.Stats
		violations := 0
		for r := 0; r < reps; r++ {
			topo, err := system.ParseTopology(n, topoName)
			if err != nil {
				return causal.Summary{}, 0, err
			}
			net := system.NetSpec{Topo: topo, Drop: drop}
			if net.Lossy() {
				net.Seed = int64(r + 1)
			}
			v, err := chaos.Execute(chaos.Run{
				Target: target, N: n,
				Plan:  system.CrashOf(ioa.Loc(n - 1)),
				Net:   net,
				Sched: chaos.SchedRandom, Seed: int64(r + 1),
			})
			if err != nil {
				return causal.Summary{}, 0, err
			}
			if v.Failed() {
				violations++
			}
			all = append(all, causal.Compute(v.Trace, nil)...)
		}
		for _, s := range causal.Summarize(all) {
			if s.Family == afd.FamilyEvP {
				return s, violations, nil
			}
		}
		return causal.Summary{}, violations, fmt.Errorf("n=%d %s drop=%d: no %s outputs", n, topoName, drop, afd.FamilyEvP)
	}
	fmt.Printf("%-6s %-6s %-6s %-10s %-12s %-12s %-12s %-10s %-10s\n",
		"n", "topo", "drop", "detects", "det-mean", "det-max", "prop-mean", "mist/run", "spec")
	row := func(n int, topoName string, drop int) error {
		s, violations, err := cell(n, topoName, drop)
		if err != nil {
			return err
		}
		spec := "ok"
		if violations > 0 {
			spec = fmt.Sprintf("%d/%d FAIL", violations, reps)
		}
		fmt.Printf("%-6d %-6s %-6d %-10d %-12.1f %-12d %-12.1f %-10.2f %-10s\n",
			n, topoName, drop, s.Detections, s.DetectionMeanSteps,
			s.DetectionMaxSteps, s.PropagationMeanSteps, s.MistakesPerRun, spec)
		return nil
	}
	for _, topoName := range []string{"full", "ring"} {
		for _, drop := range []int{0, 150, 300} {
			if err := row(4, topoName, drop); err != nil {
				return err
			}
		}
	}
	for _, n := range []int{8, 16} {
		if err := row(n, "full", 0); err != nil {
			return err
		}
	}
	return nil
}

func verdict(err error) string {
	if err != nil {
		return "FAIL"
	}
	return "ok"
}

// e17Survey measures which detector classes and problems survive a degraded
// network: the short survey grid (scenarios × message-passing targets), every
// run under a stride-1 differential oracle with its artifact replayed through
// both engines.  The paper's reliable-channel assumption (§2.3) is the
// baseline row; every other row relaxes it.
func e17Survey() error {
	const steps = 1200
	rep, err := chaos.Survey(chaos.SurveyConfig{
		Steps:     steps,
		Targets:   chaos.SurveyShortTargets(),
		Scenarios: chaos.SurveyShortScenarios(4, steps),
	})
	if err != nil {
		return err
	}
	fmt.Print(rep.Table())
	if !rep.Clean() {
		return errors.New("survey not clean: oracle or replay disagreement")
	}
	if err := rep.Control(); err != nil {
		return err
	}
	fmt.Println("controls hold: baseline survives; heavy loss costs plain gossip strong completeness")
	return nil
}
