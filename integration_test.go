package repro

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/selfimpl"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/transform"
)

// TestTheorem16EndToEnd composes, in a single system, the canonical P
// automaton, the P→Ω reduction, and the Ω-driven consensus algorithm — the
// construction of Lemma 16: since P ⪰ Ω, P solves every problem Ω solves,
// by stacking the reduction under the Ω-based algorithm.  The consensus
// specification must hold on the composite trace.
func TestTheorem16EndToEnd(t *testing.T) {
	const n = 3
	var pToOmega transform.Local
	for _, l := range transform.Catalog() {
		if l.Name == "P→Ω" {
			pToOmega = l
		}
	}

	src, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{-1, 1, 2} {
		// Automata are mutable: every run needs fresh instances.
		consProcs, err := consensus.Procs(n, afd.FamilyOmega)
		if err != nil {
			t.Fatal(err)
		}
		autos := []ioa.Automaton{src.Automaton(n)}
		autos = append(autos, pToOmega.Procs(n)...)
		autos = append(autos, consProcs...)
		autos = append(autos, system.Channels(n)...)
		autos = append(autos, system.ConsensusEnvsFixed([]int{1, 0, 1})...)
		autos = append(autos, system.NewCrash(system.CrashOf(0)))
		sys, err := ioa.NewSystem(autos...)
		if err != nil {
			t.Fatal(err)
		}
		// Hide the intermediate P outputs: the composite's external
		// detector interface is the derived Ω (Section 2.3 hiding).
		sys.Hide(func(a ioa.Action) bool { return a.Kind == ioa.KindFD && a.Name == afd.FamilyP })

		decided := make(map[ioa.Loc]bool)
		crashed := make(map[ioa.Loc]bool)
		opts := sched.Options{
			MaxSteps: 200_000,
			Gate:     sched.CrashesAfter(40, 0),
			Stop: func(_ *ioa.System, last ioa.Action) bool {
				switch {
				case last.Kind == ioa.KindCrash:
					crashed[last.Loc] = true
				case last.Kind == ioa.KindEnvOut && last.Name == system.ActNameDecide:
					decided[last.Loc] = true
				}
				for i := 0; i < n; i++ {
					if !crashed[ioa.Loc(i)] && !decided[ioa.Loc(i)] {
						return false
					}
				}
				return true
			},
		}
		var res sched.Result
		if seed >= 0 {
			res = sched.Random(sys, seed, opts)
		} else {
			res = sched.RoundRobin(sys, opts)
		}
		if res.Reason != sched.StopCondition {
			t.Fatalf("seed %d: run ended %s without full decision", seed, res.Reason)
		}
		spec := consensus.Spec{N: n, F: 1}
		if err := spec.Check(consensus.ProjectIO(sys.Trace()), true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		// The hidden P events must not leak into the external trace.
		for _, a := range sys.Trace() {
			if a.Kind == ioa.KindFD && a.Name == afd.FamilyP {
				t.Fatalf("seed %d: hidden P event leaked: %v", seed, a)
			}
		}
	}
}

// TestSelfImplementationUnderConsensus stacks Algorithm 3 *between* the
// detector and the algorithm: consensus consumes the renamed detector
// family, exercising self-implementability as a transparent shim — the
// practical content of Theorem 13.
func TestSelfImplementationUnderConsensus(t *testing.T) {
	const n = 3
	renamed := afd.FamilyOmega + "'"
	src, err := afd.Lookup(afd.FamilyOmega, n)
	if err != nil {
		t.Fatal(err)
	}
	ren := selfimpl.Renaming{From: afd.FamilyOmega, To: renamed}

	// Consensus processes subscribed to the *renamed* family, with leader
	// suspectors (the adapter only reads payloads, which renaming keeps).
	procs := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		m := consensus.NewCTMachine(n, ioa.Loc(i), consensus.NewLeaderSuspector())
		procs[i] = system.NewProc("ct", ioa.Loc(i), n, m, []string{renamed}, []string{system.ActNamePropose})
	}

	autos := []ioa.Automaton{src.Automaton(n)}
	autos = append(autos, selfimpl.NewCollection(n, ren)...)
	autos = append(autos, procs...)
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.ConsensusEnvsFixed([]int{0, 1, 0})...)
	autos = append(autos, system.NewCrash(system.CrashOf(2)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		t.Fatal(err)
	}

	decisions := 0
	res := sched.RoundRobin(sys, sched.Options{
		MaxSteps: 200_000,
		Gate:     sched.CrashesAfter(60, 0),
		Stop: func(_ *ioa.System, last ioa.Action) bool {
			if last.Kind == ioa.KindEnvOut && last.Name == system.ActNameDecide {
				decisions++
			}
			return decisions == 2 // locations 0 and 1 (2 crashes)
		},
	})
	if res.Reason != sched.StopCondition {
		t.Fatalf("run ended %s with %d decisions", res.Reason, decisions)
	}
	if err := (consensus.Spec{N: n, F: 1}).Check(consensus.ProjectIO(sys.Trace()), true); err != nil {
		t.Fatal(err)
	}
	// The renamed stream itself is an admissible Ω trace (Theorem 13).
	back := ren.InvertTrace(trace.FD(sys.Trace(), renamed))
	if err := src.Check(back, n, afd.DefaultWindow()); err != nil {
		t.Fatalf("renamed detector stream not admissible: %v", err)
	}
}
