// Golden-trace regression suite for the simulation-core fast path: every
// scheduler must produce byte-identical executions (trace and final state
// encoding) for fixed seeds before and after the action-routing index and
// incremental ready-set.  The golden hashes below were captured on the
// pre-fast-path tree; any schedule drift — a different delivery order, a
// different candidate set, a different PRNG consumption pattern — changes
// the hash and fails the test.
//
// To re-pin after an *intentional* schedule change (e.g. a scheduler PRNG
// swap), run with GOLDEN_PRINT=1 and paste the printed table:
//
//	GOLDEN_PRINT=1 go test -run TestGoldenTraces -v
package repro

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"testing"

	"repro/internal/afd"
	"repro/internal/chaos"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/telemetry"
)

// goldenHash digests an executed system: every external event in order, a
// separator, then the canonical encoding of the final composed state.
func goldenHash(sys *ioa.System) string {
	h := sha256.New()
	for _, a := range sys.Trace() {
		h.Write([]byte(a.String()))
		h.Write([]byte{'\n'})
	}
	h.Write([]byte{0})
	h.Write([]byte(sys.Encode()))
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// detectorSystem is the Figure-1 composition the E1 benchmark uses: the P
// detector, the full channel mesh, and a crash automaton.
func detectorSystem(t testing.TB, n int, plan system.FaultPlan) *ioa.System {
	t.Helper()
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		t.Fatal(err)
	}
	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.NewCrash(plan))
	return ioa.MustNewSystem(autos...)
}

// trackedSystem swaps the mesh for send-stamping channels so the
// deliver-last-sent-first priority has stamps to rank by.
func trackedSystem(t testing.TB, n int, plan system.FaultPlan) *ioa.System {
	t.Helper()
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		t.Fatal(err)
	}
	clock := system.NewSendClock()
	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, system.TrackedChannels(n, clock)...)
	autos = append(autos, system.NewCrash(plan))
	return ioa.MustNewSystem(autos...)
}

// consensusSystem is the Section-9.3 system S under Ω with a fixed fault
// plan and mixed proposals.
func consensusSystem(t testing.TB, n int, plan system.FaultPlan) *ioa.System {
	t.Helper()
	d, err := afd.Lookup(afd.FamilyOmega, n)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i % 2
	}
	sys, err := consensus.Build(consensus.BuildSpec{
		N: n, Family: afd.FamilyOmega, Det: d.Automaton(n),
		Crash: plan.Crash, Values: vals,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// lifoPrio ranks channel deliveries by send stamp (newest first), matching
// the chaos SchedLIFO adversary.
func lifoPrio(sys *ioa.System) sched.Priority {
	return func(tr ioa.TaskRef, act ioa.Action) int {
		if tc, ok := sys.Automata()[tr.Auto].(*system.TrackedChannel); ok {
			if s, ok := tc.HeadStamp(); ok {
				return int(s)
			}
		}
		return 0
	}
}

// goldenCases enumerates every (composition, scheduler, seed) pinned by the
// suite.  Each case returns the executed system.
var goldenCases = []struct {
	name string
	want string
	run  func(t testing.TB) *ioa.System
}{
	{"rr/detector/n4/crash1", "GOLDEN_RR_DET", func(t testing.TB) *ioa.System {
		sys := detectorSystem(t, 4, system.CrashOf(1))
		sched.RoundRobin(sys, sched.Options{MaxSteps: 600, Gate: sched.CrashesAfter(40, 20)})
		return sys
	}},
	{"rr/consensus/n3/crash0", "GOLDEN_RR_CONS", func(t testing.TB) *ioa.System {
		sys := consensusSystem(t, 3, system.CrashOf(0))
		sched.RoundRobin(sys, sched.Options{MaxSteps: 2000, Gate: sched.CrashesAfter(50, 0)})
		return sys
	}},
	{"random/detector/n4/seed1", "GOLDEN_RAND_1", func(t testing.TB) *ioa.System {
		sys := detectorSystem(t, 4, system.CrashOf(1))
		sched.Random(sys, 1, sched.Options{MaxSteps: 600, Gate: sched.CrashesAfter(40, 20)})
		return sys
	}},
	{"random/detector/n4/seed2", "GOLDEN_RAND_2", func(t testing.TB) *ioa.System {
		sys := detectorSystem(t, 4, system.CrashOf(1))
		sched.Random(sys, 2, sched.Options{MaxSteps: 600, Gate: sched.CrashesAfter(40, 20)})
		return sys
	}},
	{"random/consensus/n3/seed7", "GOLDEN_RAND_CONS", func(t testing.TB) *ioa.System {
		sys := consensusSystem(t, 3, system.CrashOf(0))
		sched.Random(sys, 7, sched.Options{MaxSteps: 2000, Gate: sched.CrashesAfter(50, 0)})
		return sys
	}},
	{"randprio/tracked/n4/seed9", "GOLDEN_PRIO_9", func(t testing.TB) *ioa.System {
		sys := trackedSystem(t, 4, system.CrashOf(2))
		sched.RandomPriority(sys, sched.NewPRNG(9), lifoPrio(sys),
			sched.Options{MaxSteps: 600, Gate: sched.CrashesAfter(40, 20)})
		return sys
	}},
	{"randprio/flat/n4/seed3", "GOLDEN_PRIO_3", func(t testing.TB) *ioa.System {
		sys := detectorSystem(t, 4, system.NoFaults())
		sched.RandomPriority(sys, sched.NewPRNG(3),
			func(ioa.TaskRef, ioa.Action) int { return 0 },
			sched.Options{MaxSteps: 400})
		return sys
	}},
	{"drive/detector/n4", "GOLDEN_DRIVE", func(t testing.TB) *ioa.System {
		sys := detectorSystem(t, 4, system.CrashOf(3))
		sched.Drive(sys, sched.StrategyFunc(func(s *ioa.System, enabled []ioa.TaskRef, _ []ioa.Action) int {
			return (s.Steps() * 7) % len(enabled)
		}), sched.Options{MaxSteps: 500})
		return sys
	}},
}

// goldenChaosCases pin the chaos runner end to end: Execute is a pure
// function of Run, so its trace hash is pinned per scheduler kind.
var goldenChaosCases = []struct {
	name string
	want string
	run  chaos.Run
}{
	{"chaos/rr/omega", "GOLDEN_CHAOS_RR", chaos.Run{
		Target: chaos.DetectorTarget{Family: "FD-Ω"}, N: 3,
		Plan:  system.CrashOf(1),
		Gates: chaos.GateSpec{CrashAfter: 30, CrashGap: 10, StarveFrom: -1, StarveTo: -1},
		Sched: chaos.SchedRoundRobin, Seed: 0, Steps: 500,
	}},
	{"chaos/random/omega", "GOLDEN_CHAOS_RAND", chaos.Run{
		Target: chaos.DetectorTarget{Family: "FD-Ω"}, N: 3,
		Plan:  system.CrashOf(1),
		Gates: chaos.GateSpec{CrashAfter: 30, CrashGap: 10, StarveFrom: -1, StarveTo: -1},
		Sched: chaos.SchedRandom, Seed: 5, Steps: 500,
	}},
	{"chaos/lifo/consensus", "GOLDEN_CHAOS_LIFO", chaos.Run{
		Target: chaos.ConsensusTarget{Family: "FD-Ω"}, N: 3,
		Plan:  system.CrashOf(0),
		Gates: chaos.GateSpec{CrashAfter: 40, StarveFrom: -1, StarveTo: -1},
		Sched: chaos.SchedLIFO, Seed: 11, Steps: 2500,
	}},
}

// golden maps case name → pinned hash.  Captured with GOLDEN_PRINT=1 on the
// tree before the fast path landed.  Two intentional PR-2 schedule changes
// re-pinned entries: the math/rand → SplitMix64 port of sched.Random (every
// random/* and chaos/random entry), and the CrashesAfter release-ratchet fix
// (entries whose gated run had admitted a crash candidate without drawing
// it: random/detector seeds 1–2 and randprio/tracked; note the others are
// unchanged, confirming the fix moves only crash timing).
var golden = map[string]string{
	"rr/detector/n4/crash1":     "dd63a91c08d3bedc",
	"rr/consensus/n3/crash0":    "a6092a52e4f8b90e",
	"random/detector/n4/seed1":  "db5cafe89762a9ee",
	"random/detector/n4/seed2":  "1cff674df96c79d2",
	"random/consensus/n3/seed7": "865ff1a453765fa3",
	"randprio/tracked/n4/seed9": "f9eaca36fc462e2d",
	"randprio/flat/n4/seed3":    "acb29b708fcdfeed",
	"drive/detector/n4":         "6953d8cefc141409",
	"chaos/rr/omega":            "0d88dc593e3e362a",
	"chaos/random/omega":        "78a5887bd9405e3a",
	"chaos/lifo/consensus":      "8a8efa313f26d148",
}

// TestGoldenCrossEngineReplay closes the loop on artifact replay: each
// pinned chaos run is executed, converted to its wire artifact, and replayed
// through BOTH engines — the scheduler re-execution (same kind, seed, gates)
// and the event-by-event ioa.ReplayTrace pass over a freshly built fast-path
// system, which requires every recorded event to be enabled by some task of
// the incremental ready-set and the fresh system's trace to be
// byte-identical to the record.  Replay used to stop at the verdict
// comparison, so an artifact whose trace no current system could perform
// still "replayed" — the cross-engine pass is the fix under test.
func TestGoldenCrossEngineReplay(t *testing.T) {
	for _, tc := range goldenChaosCases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := chaos.Execute(tc.run)
			if err != nil {
				t.Fatal(err)
			}
			a := v.Artifact()
			if _, err := chaos.Replay(a); err != nil {
				t.Fatalf("replay diverged: %v", err)
			}
			// The cross-engine half in isolation, so a scheduler-replay
			// failure can't mask it.
			if err := chaos.ReplayThroughSystem(a); err != nil {
				t.Fatalf("cross-engine replay: %v", err)
			}
			// Tamper control: corrupting one recorded event must be caught
			// by the fresh system, not silently re-traced.
			bad := *a
			bad.Trace = append([]ioa.Action(nil), a.Trace...)
			bad.Trace[len(bad.Trace)/2].Payload += "-tampered"
			if err := chaos.ReplayThroughSystem(&bad); err == nil {
				t.Fatal("tampered trace replayed cleanly through a fresh system")
			}
		})
	}
}

// TestGoldenTracesTelemetryOn re-runs representative pinned cases with the
// full telemetry plane attached — system sink, channel instrumentation,
// scheduler counters, and the suspicion-observer gate — and requires the
// SAME golden hashes as the metered-off runs.  This is the "attaching
// telemetry never perturbs scheduling" guarantee: instrumentation is
// strictly read-only (the observer gate always admits), so the trace and
// final state must stay byte-identical.
func TestGoldenTracesTelemetryOn(t *testing.T) {
	cases := []struct {
		name string
		// wantSusp: the composition emits suspect-set outputs, so the observer
		// gate must count additions (Ω emits leader picks, which it skips).
		wantSusp bool
		run      func(t testing.TB, reg *telemetry.Registry) *ioa.System
	}{
		{"rr/detector/n4/crash1", true, func(t testing.TB, reg *telemetry.Registry) *ioa.System {
			sys := detectorSystem(t, 4, system.CrashOf(1))
			sys.SetTelemetry(reg)
			system.InstrumentChannels(sys, reg)
			sched.RoundRobin(sys, sched.Options{
				MaxSteps:  600,
				Gate:      sched.Gates(sched.CrashesAfter(40, 20), chaos.SuspicionGate(reg)),
				Telemetry: reg,
			})
			return sys
		}},
		{"random/detector/n4/seed1", true, func(t testing.TB, reg *telemetry.Registry) *ioa.System {
			sys := detectorSystem(t, 4, system.CrashOf(1))
			sys.SetTelemetry(reg)
			system.InstrumentChannels(sys, reg)
			sched.Random(sys, 1, sched.Options{
				MaxSteps:  600,
				Gate:      sched.Gates(sched.CrashesAfter(40, 20), chaos.SuspicionGate(reg)),
				Telemetry: reg,
			})
			return sys
		}},
		{"random/consensus/n3/seed7", false, func(t testing.TB, reg *telemetry.Registry) *ioa.System {
			sys := consensusSystem(t, 3, system.CrashOf(0))
			sys.SetTelemetry(reg)
			system.InstrumentChannels(sys, reg)
			sched.Random(sys, 7, sched.Options{
				MaxSteps:  2000,
				Gate:      sched.Gates(sched.CrashesAfter(50, 0), chaos.SuspicionGate(reg)),
				Telemetry: reg,
			})
			return sys
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			sys := tc.run(t, reg)
			if got, want := goldenHash(sys), golden[tc.name]; got != want {
				t.Errorf("telemetry perturbed the schedule: hash = %s, pinned %s", got, want)
			}
			if reg.Value(telemetry.CEventsApplied) != int64(sys.Steps()) {
				t.Errorf("events_applied = %d, want %d (telemetry attached but not counting)",
					reg.Value(telemetry.CEventsApplied), sys.Steps())
			}
			// Suspect-set cases crash a location under a complete detector,
			// so the observer gate must have seen suspicions appear; detection
			// latency is recorded once per (observer, crashed) pair.
			if tc.wantSusp && reg.Value(telemetry.CSuspicionAdded) == 0 {
				t.Error("suspicion observer attached but counted no additions")
			}
			if tc.wantSusp && (reg.Hist(telemetry.HDetectionLatency) == nil ||
				reg.Hist(telemetry.HDetectionLatency).Count() == 0) {
				t.Error("no detection latencies observed in a crashing run")
			}
		})
	}
}

func TestGoldenTraces(t *testing.T) {
	print := os.Getenv("GOLDEN_PRINT") != ""
	for _, tc := range goldenCases {
		t.Run(tc.name, func(t *testing.T) {
			got := goldenHash(tc.run(t))
			if print {
				fmt.Printf("GOLDEN\t%q: %q,\n", tc.name, got)
				return
			}
			if want := golden[tc.name]; got != want {
				t.Errorf("schedule drift: hash = %s, pinned %s", got, want)
			}
		})
	}
	for _, tc := range goldenChaosCases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := chaos.Execute(tc.run)
			if err != nil {
				t.Fatal(err)
			}
			h := sha256.New()
			for _, a := range v.Trace {
				h.Write([]byte(a.String()))
				h.Write([]byte{'\n'})
			}
			got := hex.EncodeToString(h.Sum(nil))[:16]
			if print {
				fmt.Printf("GOLDEN\t%q: %q,\n", tc.name, got)
				return
			}
			if want := golden[tc.name]; got != want {
				t.Errorf("schedule drift: hash = %s, pinned %s", got, want)
			}
			if v.Err != nil {
				t.Errorf("specification violated: %v", v.Err)
			}
		})
	}
}

// goldenLossyCases pin the adversarial network layer end to end: runs over
// lossy links and partitions must be bit-for-bit replayable from the spec
// alone (every drop/dup/reorder decision is a pure function of the net
// seed and the per-link send index — no decision log is consulted).
var goldenLossyCases = []struct {
	name string
	run  chaos.Run
}{
	{"lossy/gossip/random", chaos.Run{
		Target: chaos.GossipTarget{Source: afd.FamilyQ, Out: afd.FamilyP}, N: 4,
		Plan: system.CrashOf(1),
		Gates: chaos.GateSpec{StarveFrom: -1, StarveTo: -1,
			PartitionMask: 0b0011, PartitionAt: 60, HealAt: 200},
		Net:   system.NetSpec{Seed: 42, Drop: 150, Dup: 120, Reorder: 120},
		Sched: chaos.SchedRandom, Seed: 9, Steps: 900,
	}},
	{"lossy/relay/lifo", chaos.Run{
		Target: chaos.GossipTarget{Source: afd.FamilyQ, Out: afd.FamilyP, Forward: true}, N: 3,
		Plan:  system.CrashOf(2),
		Gates: chaos.GateSpec{CrashAfter: 25, StarveFrom: -1, StarveTo: -1},
		Net:   system.NetSpec{Seed: 5, Drop: 100, Dup: 100},
		Sched: chaos.SchedLIFO, Seed: 3, Steps: 800,
	}},
}

// goldenLossy maps lossy case name → pinned trace hash (GOLDEN_PRINT=1 to
// re-pin after an intentional change).
var goldenLossy = map[string]string{
	"lossy/gossip/random": "f0f68fb5b594a89f",
	"lossy/relay/lifo":    "ef182b4ed3da68ce",
}

func lossyHash(v chaos.Verdict) string {
	h := sha256.New()
	for _, a := range v.Trace {
		h.Write([]byte(a.String()))
		h.Write([]byte{'\n'})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// TestGoldenLossyReplay pins lossy executions and closes the replay loop:
// the artifact (which records only the net spec, not the decisions) must
// replay bit-for-bit through the scheduler re-execution AND the cross-engine
// event-by-event pass, the recorded NetLog must be non-empty, and both a
// tampered trace and a tampered net seed must be rejected.
func TestGoldenLossyReplay(t *testing.T) {
	print := os.Getenv("GOLDEN_PRINT") != ""
	for _, tc := range goldenLossyCases {
		t.Run(tc.name, func(t *testing.T) {
			v, err := chaos.Execute(tc.run)
			if err != nil {
				t.Fatal(err)
			}
			got := lossyHash(v)
			if print {
				fmt.Printf("GOLDEN\t%q: %q,\n", tc.name, got)
			} else if want := goldenLossy[tc.name]; got != want {
				t.Errorf("lossy schedule drift: hash = %s, pinned %s", got, want)
			}
			if len(v.NetLog) == 0 {
				t.Error("lossy run recorded no link events")
			}
			a := v.Artifact()
			if a.Net == nil {
				t.Fatal("artifact of a lossy run has no net spec")
			}
			if _, err := chaos.Replay(a); err != nil {
				t.Fatalf("replay diverged: %v", err)
			}
			if err := chaos.ReplayThroughSystem(a); err != nil {
				t.Fatalf("cross-engine replay: %v", err)
			}
			// Tamper control 1: corrupting one recorded event is caught.
			bad := *a
			bad.Trace = append([]ioa.Action(nil), a.Trace...)
			bad.Trace[len(bad.Trace)/2].Payload += "-tampered"
			if err := chaos.ReplayThroughSystem(&bad); err == nil {
				t.Error("tampered trace replayed cleanly through a fresh system")
			}
			// Tamper control 2: a different net seed draws different link
			// decisions, so the recorded trace no longer matches.
			seed := *a
			net := *a.Net
			net.Seed++
			seed.Net = &net
			if _, err := chaos.Replay(&seed); err == nil {
				t.Error("replay accepted an artifact with a tampered net seed")
			}
		})
	}
}

// TestGoldenLossyTelemetryOn re-executes the lossy pinned cases with the
// full telemetry plane attached and requires the same trace hash: loss
// accounting (msgs_dropped, msgs_duplicated, msgs_reordered, the partition
// life cycle) is strictly read-only and never perturbs the schedule.
func TestGoldenLossyTelemetryOn(t *testing.T) {
	if os.Getenv("GOLDEN_PRINT") != "" {
		t.Skip("pinning pass")
	}
	for _, tc := range goldenLossyCases {
		t.Run(tc.name, func(t *testing.T) {
			reg := telemetry.NewRegistry()
			v, err := chaos.ExecuteInstrumented(tc.run, chaos.TelemetryHook(reg))
			if err != nil {
				t.Fatal(err)
			}
			if got, want := lossyHash(v), goldenLossy[tc.name]; got != want {
				t.Errorf("telemetry perturbed the lossy schedule: hash = %s, pinned %s", got, want)
			}
			if reg.Value(telemetry.CMsgDropped) == 0 {
				t.Error("msgs_dropped = 0 on a lossy run with telemetry attached")
			}
			if reg.Value(telemetry.CMsgDuplicated) == 0 {
				t.Error("msgs_duplicated = 0 on a dup-configured run")
			}
		})
	}
}
