package consensus

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
)

// TestComposedSystemDeterminism validates the Section-2.5 task-determinism
// and Clone/Encode contracts of every automaton in the full composed system
// (processes, channels, environments, detector, crash automaton) by
// replaying fair schedules — the property the execution-tree machinery of
// Section 8 depends on.
func TestComposedSystemDeterminism(t *testing.T) {
	for _, algo := range []string{"ct", "s"} {
		family := afd.FamilyOmega
		if algo == "s" {
			family = afd.FamilyP
		}
		d, err := afd.Lookup(family, 3)
		if err != nil {
			t.Fatal(err)
		}
		sys, err := Build(BuildSpec{
			N:      3,
			Family: family,
			Algo:   algo,
			Det:    d.Automaton(3),
			Crash:  []ioa.Loc{2},
			Values: []int{0, 1, 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		sched := ioa.RoundRobinSchedule(sys, 25)
		if err := ioa.CheckDeterminism(sys, sched); err != nil {
			t.Errorf("algo %s: %v", algo, err)
		}
	}
}
