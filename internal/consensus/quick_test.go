package consensus

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/afd"
	"repro/internal/ioa"
)

// TestQuickCTConsensus (testing/quick): the rotating-coordinator algorithm
// satisfies the §9.1 specification for random detector choices, minority
// crash subsets, crash timings, proposal vectors, and schedule seeds.
func TestQuickCTConsensus(t *testing.T) {
	fams := []string{afd.FamilyP, afd.FamilyEvP, afd.FamilyEvS, afd.FamilyOmega}
	prop := func(famIdx, crashPick, gatePick uint8, valBits uint8, seed int64) bool {
		const n = 3
		fam := fams[int(famIdx)%len(fams)]
		d, err := afd.Lookup(fam, n)
		if err != nil {
			return false
		}
		// At most one crash (f = 1 for n = 3); crashPick may select none.
		var crash []ioa.Loc
		if crashPick%4 < 3 {
			crash = []ioa.Loc{ioa.Loc(crashPick % 3)}
		}
		vals := make([]int, n)
		for i := range vals {
			vals[i] = int(valBits>>i) & 1
		}
		if seed < 0 {
			seed = -seed
		}
		res, err := Run(RunSpec{
			Build:     BuildSpec{N: n, Family: fam, Det: d.Automaton(n), Crash: crash, Values: vals},
			Steps:     200_000,
			Seed:      seed % 1000,
			CrashGate: 5 + int(gatePick)%60,
		})
		if err != nil {
			return false
		}
		spec := Spec{N: n, F: 1}
		io := ProjectIO(res.Trace)
		if err := spec.CheckAssumptions(io); err != nil {
			t.Logf("assumptions: %v", err)
			return false
		}
		if err := spec.CheckGuarantees(io, res.AllDecided); err != nil {
			t.Logf("fd=%s crash=%v vals=%v seed=%d gate=%d: %v",
				fam, crash, vals, seed%1000, 5+int(gatePick)%60, err)
			return false
		}
		return res.AllDecided
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(21))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickSConsensus (testing/quick): the S-based flooding algorithm
// satisfies the specification up to f = n−1 crashes under random
// configurations.
func TestQuickSConsensus(t *testing.T) {
	prop := func(crashBits, gatePick, valBits uint8, seed int64) bool {
		const n = 4
		d, err := afd.Lookup(afd.FamilyP, n)
		if err != nil {
			return false
		}
		var crash []ioa.Loc
		for i := 0; i < n-1; i++ { // keep location n−1 live
			if crashBits&(1<<i) != 0 {
				crash = append(crash, ioa.Loc(i))
			}
		}
		vals := make([]int, n)
		for i := range vals {
			vals[i] = int(valBits>>i) & 1
		}
		if seed < 0 {
			seed = -seed
		}
		res, err := Run(RunSpec{
			Build: BuildSpec{
				N: n, Family: afd.FamilyP, Algo: "s",
				Det: d.Automaton(n), Crash: crash, Values: vals,
			},
			Steps:     200_000,
			Seed:      seed % 1000,
			CrashGate: 5 + int(gatePick)%50,
		})
		if err != nil {
			return false
		}
		spec := Spec{N: n, F: n - 1}
		io := ProjectIO(res.Trace)
		if err := spec.CheckAssumptions(io); err != nil {
			return false
		}
		if err := spec.CheckGuarantees(io, res.AllDecided); err != nil {
			t.Logf("crash=%v vals=%v seed=%d: %v", crash, vals, seed%1000, err)
			return false
		}
		return res.AllDecided
	}
	cfg := &quick.Config{MaxCount: 80, Rand: rand.New(rand.NewSource(22))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
