package consensus

import (
	"fmt"
	"math/bits"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ioa"
	"repro/internal/system"
)

// smRound is the per-round state of one phase-1 round: the senders heard
// (gotMask) and the early messages not yet absorbed (pendMask + dense value
// sets).  Like ctRound it replaces nested maps with flat records so the
// explorer's per-node Clone is a couple of slice copies.  gotSeen tracks
// that advance() touched the round — the old representation kept an empty
// senders map in that case, and the encoding renders it as "[r:{}]".
type smRound struct {
	r        int
	gotSeen  bool
	gotMask  uint64
	pendMask uint64
	pend     []string // dense n slots; pendMask says which are live
}

// SMachine is the Chandra-Toueg algorithm that solves consensus using any
// detector with perpetual weak accuracy and strong completeness (the class
// S; P ⊆ S), tolerating f ≤ n−1 crashes — the second consensus algorithm of
// [5], recast as a reactive process automaton:
//
//	Phase 1: asynchronous rounds r = 1..n−1; in round r broadcast the
//	         current value set and wait, for every other location q, for
//	         q's round-r message or q ∈ suspected;
//	Phase 2: broadcast the final value set; wait for each q's phase-2 set
//	         or suspicion; replace the value set by the intersection of
//	         all phase-2 sets received (including one's own);
//	Phase 3: decide min of the remaining values.
//
// Unlike the rotating-coordinator CTMachine it has no round churn: every
// location performs exactly n broadcasts, which keeps the reachable state
// space finite under a fixed failure-detector sequence — the property the
// Section-8 execution-tree experiments need.
//
// Correctness requires perpetual weak accuracy: a ◇-class suspector may
// suspect a live location whose messages are still needed.  Use it with P
// or S only.
type SMachine struct {
	system.NopMachine
	n    int
	self ioa.Loc
	susp Suspector

	proposed bool
	vals     []string // V_p, sorted distinct values
	round    int      // current phase-1 round; n..: phase 2; 0: idle
	phase2   bool

	rounds []smRound // ascending by round number; never pruned
	p2Mask uint64    // phase-2 senders heard
	p2     []string  // dense n slots; p2Mask says which are live
	p2Sent bool

	decided    bool
	decidedVal string
}

var _ system.Machine = (*SMachine)(nil)
var _ ioa.AppendEncoder = (*SMachine)(nil)

// NewSMachine returns the S-based consensus machine for location self of n.
// Location sets are bitmasks, so n is capped at 64 (the repository's
// experiments use n ≤ 32).
func NewSMachine(n int, self ioa.Loc, susp Suspector) *SMachine {
	if n > 64 {
		panic("consensus: SMachine supports at most 64 locations")
	}
	return &SMachine{n: n, self: self, susp: susp}
}

// Decided reports the decision, if any.
func (m *SMachine) Decided() (string, bool) { return m.decidedVal, m.decided }

// CanSend implements ioa.SendProspector: every Broadcast call site is
// reachable only before the phase-2 set goes out (OnEnvInput requires
// !proposed, advance's phase-1 arm requires !phase2, and enterPhase2 runs
// once), so after p2Sent no input sequence can make the machine emit another
// send.  deciding only outputs.
func (m *SMachine) CanSend() bool { return !m.p2Sent }

// Round returns the current phase-1 round (n−1+1 once in phase 2).
func (m *SMachine) Round() int { return m.round }

// findRound returns the record for round r, or nil.
func (m *SMachine) findRound(r int) *smRound {
	for i := len(m.rounds) - 1; i >= 0; i-- {
		if m.rounds[i].r == r {
			return &m.rounds[i]
		}
		if m.rounds[i].r < r {
			break
		}
	}
	return nil
}

// roundAt returns the record for round r, inserting an empty one in
// ascending position if absent.
func (m *SMachine) roundAt(r int) *smRound {
	i := len(m.rounds)
	for i > 0 && m.rounds[i-1].r > r {
		i--
	}
	if i > 0 && m.rounds[i-1].r == r {
		return &m.rounds[i-1]
	}
	m.rounds = append(m.rounds, smRound{})
	copy(m.rounds[i+1:], m.rounds[i:])
	m.rounds[i] = smRound{r: r}
	return &m.rounds[i]
}

// addVal inserts v into the sorted distinct value set.
func (m *SMachine) addVal(v string) {
	i := sort.SearchStrings(m.vals, v)
	if i < len(m.vals) && m.vals[i] == v {
		return
	}
	m.vals = append(m.vals, "")
	copy(m.vals[i+1:], m.vals[i:])
	m.vals[i] = v
}

// OnEnvInput implements system.Machine.
func (m *SMachine) OnEnvInput(name, payload string, e *system.Effects) {
	if name != system.ActNamePropose || m.proposed || m.decided {
		return
	}
	m.proposed = true
	m.addVal(payload)
	m.round = 1
	if m.n == 1 {
		m.enterPhase2(e)
		return
	}
	e.Broadcast(m.n, m.roundMsg(1))
	m.advance(e)
}

// OnFD implements system.Machine.
func (m *SMachine) OnFD(a ioa.Action, e *system.Effects) {
	m.susp.Update(a)
	if m.proposed && !m.decided {
		m.advance(e)
	}
}

// OnReceive implements system.Machine.
func (m *SMachine) OnReceive(from ioa.Loc, msg string, e *system.Effects) {
	if m.decided {
		return
	}
	parts := strings.SplitN(msg, "|", 3)
	switch parts[0] {
	case "R":
		if len(parts) != 3 {
			return
		}
		r, err := strconv.Atoi(parts[1])
		if err != nil {
			return
		}
		rd := m.roundAt(r)
		if rd.pend == nil {
			rd.pend = make([]string, m.n)
		}
		rd.pend[from] = parts[2]
		rd.pendMask |= 1 << uint(from)
	case "S2":
		if len(parts) != 2 {
			return
		}
		if m.p2 == nil {
			m.p2 = make([]string, m.n)
		}
		m.p2[from] = parts[1]
		m.p2Mask |= 1 << uint(from)
	default:
		return
	}
	if m.proposed {
		m.advance(e)
	}
}

// advance absorbs pending messages for the current round and moves through
// the phases as far as the wait conditions allow.
func (m *SMachine) advance(e *system.Effects) {
	for !m.decided {
		if m.phase2 {
			if !m.phase2Satisfied() {
				return
			}
			m.finish(e)
			return
		}
		// Phase 1, round m.round: absorb that round's messages.
		r := m.round
		rd := m.roundAt(r)
		rd.gotSeen = true
		if rd.pendMask != 0 {
			for mask := rd.pendMask; mask != 0; mask &= mask - 1 {
				l := bits.TrailingZeros64(mask)
				m.mergeVals(rd.pend[l])
				rd.gotMask |= 1 << uint(l)
			}
			rd.pendMask = 0
			rd.pend = nil
		}
		if !m.roundSatisfied(rd) {
			return
		}
		if r < m.n-1 {
			m.round = r + 1
			e.Broadcast(m.n, m.roundMsg(m.round))
			continue
		}
		m.enterPhase2(e)
	}
}

func (m *SMachine) roundSatisfied(rd *smRound) bool {
	for q := 0; q < m.n; q++ {
		l := ioa.Loc(q)
		if l == m.self {
			continue
		}
		if rd.gotMask&(1<<uint(q)) == 0 && !m.susp.Suspects(l) {
			return false
		}
	}
	return true
}

func (m *SMachine) phase2Satisfied() bool {
	for q := 0; q < m.n; q++ {
		l := ioa.Loc(q)
		if l == m.self {
			continue
		}
		if m.p2Mask&(1<<uint(q)) == 0 && !m.susp.Suspects(l) {
			return false
		}
	}
	return true
}

func (m *SMachine) enterPhase2(e *system.Effects) {
	m.phase2 = true
	m.round = m.n
	m.p2Sent = true
	if m.n > 1 {
		e.Broadcast(m.n, "S2|"+m.encodeVals())
	}
	if m.phase2Satisfied() {
		m.finish(e)
	}
}

// finish intersects the phase-2 sets and decides the minimum value.
func (m *SMachine) finish(e *system.Effects) {
	inter := make(map[string]bool, len(m.vals))
	for _, v := range m.vals {
		inter[v] = true
	}
	for mask := m.p2Mask; mask != 0; mask &= mask - 1 {
		set := decodeVals(m.p2[bits.TrailingZeros64(mask)])
		next := make(map[string]bool)
		for v := range inter {
			if set[v] {
				next[v] = true
			}
		}
		inter = next
	}
	// The intersection always contains the never-suspected location's
	// values (weak accuracy), hence is non-empty; guard anyway so a spec
	// violation surfaces as a missing decision, not a panic.
	if len(inter) == 0 {
		return
	}
	min := ""
	for v := range inter {
		if min == "" || v < min {
			min = v
		}
	}
	m.decided = true
	m.decidedVal = min
	e.Output(system.ActNameDecide, min)
}

func (m *SMachine) mergeVals(enc string) {
	if enc == "" {
		return
	}
	for {
		i := strings.IndexByte(enc, ',')
		if i < 0 {
			m.addVal(enc)
			return
		}
		m.addVal(enc[:i])
		enc = enc[i+1:]
	}
}

func (m *SMachine) roundMsg(r int) string {
	return fmt.Sprintf("R|%d|%s", r, m.encodeVals())
}

func (m *SMachine) encodeVals() string { return strings.Join(m.vals, ",") }

func decodeVals(enc string) map[string]bool {
	out := make(map[string]bool)
	if enc == "" {
		return out
	}
	for _, v := range strings.Split(enc, ",") {
		out[v] = true
	}
	return out
}

// Clone implements system.Machine.
func (m *SMachine) Clone() system.Machine {
	c := &SMachine{
		n: m.n, self: m.self, susp: m.susp.Clone(),
		proposed: m.proposed, round: m.round, phase2: m.phase2,
		p2Mask: m.p2Mask, p2Sent: m.p2Sent,
		decided: m.decided, decidedVal: m.decidedVal,
	}
	if len(m.vals) > 0 {
		c.vals = append([]string(nil), m.vals...)
	}
	if len(m.rounds) > 0 {
		c.rounds = make([]smRound, len(m.rounds))
		copy(c.rounds, m.rounds)
		for i := range c.rounds {
			if c.rounds[i].pend != nil {
				c.rounds[i].pend = append([]string(nil), c.rounds[i].pend...)
			}
		}
	}
	if m.p2 != nil {
		c.p2 = append([]string(nil), m.p2...)
	}
	return c
}

// Encode implements system.Machine.
func (m *SMachine) Encode() string { return string(m.AppendEncode(nil)) }

// AppendEncode implements ioa.AppendEncoder: exactly Encode()'s bytes.
func (m *SMachine) AppendEncode(dst []byte) []byte {
	dst = append(dst, "SM"...)
	dst = appendLoc(dst, m.self)
	dst = append(dst, "|p"...)
	dst = strconv.AppendBool(dst, m.proposed)
	dst = append(dst, "|r"...)
	dst = strconv.AppendInt(dst, int64(m.round), 10)
	dst = append(dst, "|p2"...)
	dst = strconv.AppendBool(dst, m.phase2)
	dst = append(dst, ':')
	dst = strconv.AppendBool(dst, m.p2Sent)
	dst = append(dst, "|d"...)
	dst = strconv.AppendBool(dst, m.decided)
	dst = append(dst, ':')
	dst = append(dst, m.decidedVal...)
	dst = append(dst, "|V"...)
	for i, v := range m.vals {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = append(dst, v...)
	}
	dst = append(dst, '|')
	dst = appendSusp(dst, m.susp)
	dst = append(dst, "|G"...)
	for i := range m.rounds {
		rd := &m.rounds[i]
		if !rd.gotSeen {
			continue
		}
		dst = append(dst, '[')
		dst = strconv.AppendInt(dst, int64(rd.r), 10)
		dst = append(dst, ':')
		dst = appendMaskSet(dst, rd.gotMask)
		dst = append(dst, ']')
	}
	dst = append(dst, "|P"...)
	for i := range m.rounds {
		rd := &m.rounds[i]
		if rd.pendMask == 0 {
			continue
		}
		dst = append(dst, '[')
		dst = strconv.AppendInt(dst, int64(rd.r), 10)
		dst = append(dst, ':')
		for mask := rd.pendMask; mask != 0; mask &= mask - 1 {
			l := bits.TrailingZeros64(mask)
			dst = strconv.AppendInt(dst, int64(l), 10)
			dst = append(dst, '=')
			dst = append(dst, rd.pend[l]...)
			dst = append(dst, ';')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, "|2"...)
	for mask := m.p2Mask; mask != 0; mask &= mask - 1 {
		l := bits.TrailingZeros64(mask)
		dst = append(dst, '[')
		dst = strconv.AppendInt(dst, int64(l), 10)
		dst = append(dst, '=')
		dst = append(dst, m.p2[l]...)
		dst = append(dst, ']')
	}
	return dst
}

// SProcs returns the S-algorithm distributed consensus: one process per
// location, subscribed to the given suspicion-set detector family (P or S).
func SProcs(n int, family string) ([]ioa.Automaton, error) {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		susp, err := SuspectorFor(family)
		if err != nil {
			return nil, err
		}
		if _, ok := susp.(*SetSuspector); !ok {
			return nil, fmt.Errorf("consensus: S algorithm needs a suspicion-set detector, got %q", family)
		}
		m := NewSMachine(n, ioa.Loc(i), susp)
		out[i] = system.NewProc("sct", ioa.Loc(i), n, m, []string{family}, []string{system.ActNamePropose})
	}
	return out, nil
}
