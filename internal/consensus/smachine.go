package consensus

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ioa"
	"repro/internal/system"
)

// SMachine is the Chandra-Toueg algorithm that solves consensus using any
// detector with perpetual weak accuracy and strong completeness (the class
// S; P ⊆ S), tolerating f ≤ n−1 crashes — the second consensus algorithm of
// [5], recast as a reactive process automaton:
//
//	Phase 1: asynchronous rounds r = 1..n−1; in round r broadcast the
//	         current value set and wait, for every other location q, for
//	         q's round-r message or q ∈ suspected;
//	Phase 2: broadcast the final value set; wait for each q's phase-2 set
//	         or suspicion; replace the value set by the intersection of
//	         all phase-2 sets received (including one's own);
//	Phase 3: decide min of the remaining values.
//
// Unlike the rotating-coordinator CTMachine it has no round churn: every
// location performs exactly n broadcasts, which keeps the reachable state
// space finite under a fixed failure-detector sequence — the property the
// Section-8 execution-tree experiments need.
//
// Correctness requires perpetual weak accuracy: a ◇-class suspector may
// suspect a live location whose messages are still needed.  Use it with P
// or S only.
type SMachine struct {
	system.NopMachine
	n    int
	self ioa.Loc
	susp Suspector

	proposed bool
	vals     map[string]bool // V_p
	round    int             // current phase-1 round; n..: phase 2; 0: idle
	phase2   bool

	gotRound map[int]map[ioa.Loc]bool   // round → senders heard
	pending  map[int]map[ioa.Loc]string // early round messages (value sets)
	gotP2    map[ioa.Loc]string         // phase-2 sets received
	p2Sent   bool

	decided    bool
	decidedVal string
}

var _ system.Machine = (*SMachine)(nil)

// NewSMachine returns the S-based consensus machine for location self of n.
func NewSMachine(n int, self ioa.Loc, susp Suspector) *SMachine {
	return &SMachine{
		n: n, self: self, susp: susp,
		vals:     make(map[string]bool),
		gotRound: make(map[int]map[ioa.Loc]bool),
		pending:  make(map[int]map[ioa.Loc]string),
		gotP2:    make(map[ioa.Loc]string),
	}
}

// Decided reports the decision, if any.
func (m *SMachine) Decided() (string, bool) { return m.decidedVal, m.decided }

// Round returns the current phase-1 round (n−1+1 once in phase 2).
func (m *SMachine) Round() int { return m.round }

// OnEnvInput implements system.Machine.
func (m *SMachine) OnEnvInput(name, payload string, e *system.Effects) {
	if name != system.ActNamePropose || m.proposed || m.decided {
		return
	}
	m.proposed = true
	m.vals[payload] = true
	m.round = 1
	if m.n == 1 {
		m.enterPhase2(e)
		return
	}
	e.Broadcast(m.n, m.roundMsg(1))
	m.advance(e)
}

// OnFD implements system.Machine.
func (m *SMachine) OnFD(a ioa.Action, e *system.Effects) {
	m.susp.Update(a)
	if m.proposed && !m.decided {
		m.advance(e)
	}
}

// OnReceive implements system.Machine.
func (m *SMachine) OnReceive(from ioa.Loc, msg string, e *system.Effects) {
	if m.decided {
		return
	}
	parts := strings.SplitN(msg, "|", 3)
	switch parts[0] {
	case "R":
		if len(parts) != 3 {
			return
		}
		r, err := strconv.Atoi(parts[1])
		if err != nil {
			return
		}
		if m.pending[r] == nil {
			m.pending[r] = make(map[ioa.Loc]string)
		}
		m.pending[r][from] = parts[2]
	case "S2":
		if len(parts) != 2 {
			return
		}
		m.gotP2[from] = parts[1]
	default:
		return
	}
	if m.proposed {
		m.advance(e)
	}
}

// advance absorbs pending messages for the current round and moves through
// the phases as far as the wait conditions allow.
func (m *SMachine) advance(e *system.Effects) {
	for !m.decided {
		if m.phase2 {
			if !m.phase2Satisfied() {
				return
			}
			m.finish(e)
			return
		}
		// Phase 1, round m.round: absorb that round's messages.
		r := m.round
		if m.gotRound[r] == nil {
			m.gotRound[r] = make(map[ioa.Loc]bool)
		}
		for from, set := range m.pending[r] {
			m.mergeVals(set)
			m.gotRound[r][from] = true
		}
		delete(m.pending, r)
		if !m.roundSatisfied(r) {
			return
		}
		if r < m.n-1 {
			m.round = r + 1
			e.Broadcast(m.n, m.roundMsg(m.round))
			continue
		}
		m.enterPhase2(e)
	}
}

func (m *SMachine) roundSatisfied(r int) bool {
	for q := 0; q < m.n; q++ {
		l := ioa.Loc(q)
		if l == m.self {
			continue
		}
		if !m.gotRound[r][l] && !m.susp.Suspects(l) {
			return false
		}
	}
	return true
}

func (m *SMachine) phase2Satisfied() bool {
	for q := 0; q < m.n; q++ {
		l := ioa.Loc(q)
		if l == m.self {
			continue
		}
		if _, ok := m.gotP2[l]; !ok && !m.susp.Suspects(l) {
			return false
		}
	}
	return true
}

func (m *SMachine) enterPhase2(e *system.Effects) {
	m.phase2 = true
	m.round = m.n
	m.p2Sent = true
	if m.n > 1 {
		e.Broadcast(m.n, "S2|"+m.encodeVals())
	}
	if m.phase2Satisfied() {
		m.finish(e)
	}
}

// finish intersects the phase-2 sets and decides the minimum value.
func (m *SMachine) finish(e *system.Effects) {
	inter := m.vals
	for _, enc := range m.gotP2 {
		set := decodeVals(enc)
		next := make(map[string]bool)
		for v := range inter {
			if set[v] {
				next[v] = true
			}
		}
		inter = next
	}
	// The intersection always contains the never-suspected location's
	// values (weak accuracy), hence is non-empty; guard anyway so a spec
	// violation surfaces as a missing decision, not a panic.
	if len(inter) == 0 {
		return
	}
	min := ""
	for v := range inter {
		if min == "" || v < min {
			min = v
		}
	}
	m.decided = true
	m.decidedVal = min
	e.Output(system.ActNameDecide, min)
}

func (m *SMachine) mergeVals(enc string) {
	for v := range decodeVals(enc) {
		m.vals[v] = true
	}
}

func (m *SMachine) roundMsg(r int) string {
	return fmt.Sprintf("R|%d|%s", r, m.encodeVals())
}

func (m *SMachine) encodeVals() string {
	vs := make([]string, 0, len(m.vals))
	for v := range m.vals {
		vs = append(vs, v)
	}
	sort.Strings(vs)
	return strings.Join(vs, ",")
}

func decodeVals(enc string) map[string]bool {
	out := make(map[string]bool)
	if enc == "" {
		return out
	}
	for _, v := range strings.Split(enc, ",") {
		out[v] = true
	}
	return out
}

// Clone implements system.Machine.
func (m *SMachine) Clone() system.Machine {
	c := &SMachine{
		n: m.n, self: m.self, susp: m.susp.Clone(),
		proposed: m.proposed, round: m.round, phase2: m.phase2,
		p2Sent: m.p2Sent, decided: m.decided, decidedVal: m.decidedVal,
		vals:     make(map[string]bool, len(m.vals)),
		gotRound: make(map[int]map[ioa.Loc]bool, len(m.gotRound)),
		pending:  make(map[int]map[ioa.Loc]string, len(m.pending)),
		gotP2:    make(map[ioa.Loc]string, len(m.gotP2)),
	}
	for v := range m.vals {
		c.vals[v] = true
	}
	for r, mm := range m.gotRound {
		inner := make(map[ioa.Loc]bool, len(mm))
		for l, b := range mm {
			inner[l] = b
		}
		c.gotRound[r] = inner
	}
	for r, mm := range m.pending {
		inner := make(map[ioa.Loc]string, len(mm))
		for l, s := range mm {
			inner[l] = s
		}
		c.pending[r] = inner
	}
	for l, s := range m.gotP2 {
		c.gotP2[l] = s
	}
	return c
}

// Encode implements system.Machine.
func (m *SMachine) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "SM%v|p%t|r%d|p2%t:%t|d%t:%s|V%s|%s",
		m.self, m.proposed, m.round, m.phase2, m.p2Sent,
		m.decided, m.decidedVal, m.encodeVals(), m.susp.Encode())
	b.WriteString("|G")
	for _, r := range sortedRounds(m.gotRound) {
		fmt.Fprintf(&b, "[%d:%s]", r, ioa.EncodeLocSet(m.gotRound[r]))
	}
	b.WriteString("|P")
	for _, r := range sortedRounds(m.pending) {
		fmt.Fprintf(&b, "[%d:", r)
		locs := make([]int, 0, len(m.pending[r]))
		for l := range m.pending[r] {
			locs = append(locs, int(l))
		}
		sort.Ints(locs)
		for _, l := range locs {
			fmt.Fprintf(&b, "%d=%s;", l, m.pending[r][ioa.Loc(l)])
		}
		b.WriteByte(']')
	}
	b.WriteString("|2")
	locs := make([]int, 0, len(m.gotP2))
	for l := range m.gotP2 {
		locs = append(locs, int(l))
	}
	sort.Ints(locs)
	for _, l := range locs {
		fmt.Fprintf(&b, "[%d=%s]", l, m.gotP2[ioa.Loc(l)])
	}
	return b.String()
}

// SProcs returns the S-algorithm distributed consensus: one process per
// location, subscribed to the given suspicion-set detector family (P or S).
func SProcs(n int, family string) ([]ioa.Automaton, error) {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		susp, err := SuspectorFor(family)
		if err != nil {
			return nil, err
		}
		if _, ok := susp.(*SetSuspector); !ok {
			return nil, fmt.Errorf("consensus: S algorithm needs a suspicion-set detector, got %q", family)
		}
		m := NewSMachine(n, ioa.Loc(i), susp)
		out[i] = system.NewProc("sct", ioa.Loc(i), n, m, []string{family}, []string{system.ActNamePropose})
	}
	return out, nil
}
