package consensus

import (
	"fmt"

	"repro/internal/ioa"
)

// Suspector adapts a failure detector's output stream into the suspicion
// queries the rotating-coordinator algorithm asks: "should I stop waiting
// for location c?".  Adapters exist for the suspicion-set detectors (P, ◇P,
// S, ◇S: suspect exactly the payload set) and for Ω (suspect everyone except
// the current leader).  A process trusts everyone until the first detector
// output arrives.
type Suspector interface {
	// Update consumes a failure-detector output event at this location.
	Update(a ioa.Action)
	// Suspects reports whether c is currently suspected.
	Suspects(c ioa.Loc) bool
	// Clone returns an independent deep copy.
	Clone() Suspector
	// Encode returns a canonical encoding of the suspector state.
	Encode() string
}

// SetSuspector suspects exactly the locations in the last suspicion-set
// payload received.
type SetSuspector struct {
	set map[ioa.Loc]bool
}

var _ Suspector = (*SetSuspector)(nil)

// NewSetSuspector returns a suspector for suspicion-set detectors.
func NewSetSuspector() *SetSuspector { return &SetSuspector{} }

// Update implements Suspector.
func (s *SetSuspector) Update(a ioa.Action) {
	set, err := ioa.DecodeLocSet(a.Payload)
	if err != nil {
		return // malformed payloads leave the suspicion state unchanged
	}
	s.set = set
}

// Suspects implements Suspector.
func (s *SetSuspector) Suspects(c ioa.Loc) bool { return s.set[c] }

// Clone implements Suspector.
func (s *SetSuspector) Clone() Suspector {
	c := &SetSuspector{}
	if s.set != nil {
		c.set = make(map[ioa.Loc]bool, len(s.set))
		for l, v := range s.set {
			c.set[l] = v
		}
	}
	return c
}

// Encode implements Suspector.
func (s *SetSuspector) Encode() string {
	if s.set == nil {
		return "S:-"
	}
	return "S:" + ioa.EncodeLocSet(s.set)
}

// LeaderSuspector suspects every location other than the last Ω output.
// Before the first output it suspects no one.
type LeaderSuspector struct {
	leader ioa.Loc
	seen   bool
}

var _ Suspector = (*LeaderSuspector)(nil)

// NewLeaderSuspector returns a suspector for leader-election detectors.
func NewLeaderSuspector() *LeaderSuspector { return &LeaderSuspector{leader: ioa.NoLoc} }

// Update implements Suspector.
func (s *LeaderSuspector) Update(a ioa.Action) {
	l, err := ioa.DecodeLoc(a.Payload)
	if err != nil {
		return
	}
	s.leader = l
	s.seen = true
}

// Suspects implements Suspector.
func (s *LeaderSuspector) Suspects(c ioa.Loc) bool { return s.seen && c != s.leader }

// Leader returns the current leader view (NoLoc before the first output).
func (s *LeaderSuspector) Leader() ioa.Loc {
	if !s.seen {
		return ioa.NoLoc
	}
	return s.leader
}

// Clone implements Suspector.
func (s *LeaderSuspector) Clone() Suspector {
	c := *s
	return &c
}

// Encode implements Suspector.
func (s *LeaderSuspector) Encode() string { return fmt.Sprintf("L:%v:%t", s.leader, s.seen) }

// NeverSuspector never suspects anyone — the "no failure detector"
// degenerate adapter used by the FLP demonstrations: with it, the algorithm
// blocks forever on a crashed coordinator.
type NeverSuspector struct{}

var _ Suspector = NeverSuspector{}

// Update implements Suspector.
func (NeverSuspector) Update(ioa.Action) {}

// Suspects implements Suspector.
func (NeverSuspector) Suspects(ioa.Loc) bool { return false }

// Clone implements Suspector.
func (NeverSuspector) Clone() Suspector { return NeverSuspector{} }

// Encode implements Suspector.
func (NeverSuspector) Encode() string { return "N" }
