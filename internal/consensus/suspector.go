package consensus

import (
	"math/bits"
	"strconv"

	"repro/internal/ioa"
)

// Suspector adapts a failure detector's output stream into the suspicion
// queries the rotating-coordinator algorithm asks: "should I stop waiting
// for location c?".  Adapters exist for the suspicion-set detectors (P, ◇P,
// S, ◇S: suspect exactly the payload set) and for Ω (suspect everyone except
// the current leader).  A process trusts everyone until the first detector
// output arrives.
type Suspector interface {
	// Update consumes a failure-detector output event at this location.
	Update(a ioa.Action)
	// Suspects reports whether c is currently suspected.
	Suspects(c ioa.Loc) bool
	// Clone returns an independent deep copy.
	Clone() Suspector
	// Encode returns a canonical encoding of the suspector state.
	Encode() string
}

// SetSuspector suspects exactly the locations in the last suspicion-set
// payload received.
//
// The set is a 64-bit mask, not a map: consensus machines are cloned once
// per node by the execution-tree explorer, and the suspicion set was one of
// the per-clone map allocations that dominated its profile.  Payloads
// naming a location outside [0, 64) — impossible for the repository's
// detectors, whose locations are 0..n-1 with n ≤ 64, but expressible in a
// handcrafted trace — fall back to a spill map so behavior is unchanged.
type SetSuspector struct {
	mask uint64
	seen bool             // a payload has been received (distinguishes ∅ from never-updated)
	big  map[ioa.Loc]bool // non-nil only when a payload named a location outside [0, 64)
}

var _ Suspector = (*SetSuspector)(nil)

// NewSetSuspector returns a suspector for suspicion-set detectors.
func NewSetSuspector() *SetSuspector { return &SetSuspector{} }

// Update implements Suspector.
func (s *SetSuspector) Update(a ioa.Action) {
	set, err := ioa.DecodeLocSet(a.Payload)
	if err != nil {
		return // malformed payloads leave the suspicion state unchanged
	}
	s.seen = true
	s.mask = 0
	s.big = nil
	for l, in := range set {
		if !in {
			continue
		}
		if l < 0 || l >= 64 {
			s.big = set
			s.mask = 0
			return
		}
		s.mask |= 1 << uint(l)
	}
}

// Suspects implements Suspector.
func (s *SetSuspector) Suspects(c ioa.Loc) bool {
	if s.big != nil {
		return s.big[c]
	}
	return c >= 0 && c < 64 && s.mask&(1<<uint(c)) != 0
}

// Clone implements Suspector.
func (s *SetSuspector) Clone() Suspector {
	c := &SetSuspector{mask: s.mask, seen: s.seen}
	if s.big != nil {
		c.big = make(map[ioa.Loc]bool, len(s.big))
		for l, v := range s.big {
			c.big[l] = v
		}
	}
	return c
}

// Encode implements Suspector.
func (s *SetSuspector) Encode() string { return string(s.AppendEncode(nil)) }

// AppendEncode appends exactly Encode()'s bytes (ioa.AppendEncoder).
func (s *SetSuspector) AppendEncode(dst []byte) []byte {
	if !s.seen {
		return append(dst, "S:-"...)
	}
	dst = append(dst, "S:"...)
	if s.big != nil {
		return append(dst, ioa.EncodeLocSet(s.big)...)
	}
	return appendMaskSet(dst, s.mask)
}

// appendMaskSet appends the ioa.EncodeLocSet rendering of a bitmask set,
// e.g. bits {0,2} → "{0,2}".
func appendMaskSet(dst []byte, mask uint64) []byte {
	dst = append(dst, '{')
	first := true
	for m := mask; m != 0; m &= m - 1 {
		if !first {
			dst = append(dst, ',')
		}
		first = false
		dst = strconv.AppendInt(dst, int64(bits.TrailingZeros64(m)), 10)
	}
	return append(dst, '}')
}

// LeaderSuspector suspects every location other than the last Ω output.
// Before the first output it suspects no one.
type LeaderSuspector struct {
	leader ioa.Loc
	seen   bool
}

var _ Suspector = (*LeaderSuspector)(nil)

// NewLeaderSuspector returns a suspector for leader-election detectors.
func NewLeaderSuspector() *LeaderSuspector { return &LeaderSuspector{leader: ioa.NoLoc} }

// Update implements Suspector.
func (s *LeaderSuspector) Update(a ioa.Action) {
	l, err := ioa.DecodeLoc(a.Payload)
	if err != nil {
		return
	}
	s.leader = l
	s.seen = true
}

// Suspects implements Suspector.
func (s *LeaderSuspector) Suspects(c ioa.Loc) bool { return s.seen && c != s.leader }

// Leader returns the current leader view (NoLoc before the first output).
func (s *LeaderSuspector) Leader() ioa.Loc {
	if !s.seen {
		return ioa.NoLoc
	}
	return s.leader
}

// Clone implements Suspector.
func (s *LeaderSuspector) Clone() Suspector {
	c := *s
	return &c
}

// Encode implements Suspector.
func (s *LeaderSuspector) Encode() string { return string(s.AppendEncode(nil)) }

// AppendEncode appends exactly Encode()'s bytes (ioa.AppendEncoder).
func (s *LeaderSuspector) AppendEncode(dst []byte) []byte {
	dst = append(dst, "L:"...)
	dst = appendLoc(dst, s.leader)
	dst = append(dst, ':')
	return strconv.AppendBool(dst, s.seen)
}

// NeverSuspector never suspects anyone — the "no failure detector"
// degenerate adapter used by the FLP demonstrations: with it, the algorithm
// blocks forever on a crashed coordinator.
type NeverSuspector struct{}

var _ Suspector = NeverSuspector{}

// Update implements Suspector.
func (NeverSuspector) Update(ioa.Action) {}

// Suspects implements Suspector.
func (NeverSuspector) Suspects(ioa.Loc) bool { return false }

// Clone implements Suspector.
func (NeverSuspector) Clone() Suspector { return NeverSuspector{} }

// Encode implements Suspector.
func (NeverSuspector) Encode() string { return "N" }

// AppendEncode appends exactly Encode()'s bytes (ioa.AppendEncoder).
func (NeverSuspector) AppendEncode(dst []byte) []byte { return append(dst, 'N') }

// appendSusp appends a suspector's encoding, using its append path when it
// has one.
func appendSusp(dst []byte, s Suspector) []byte {
	if ae, ok := s.(ioa.AppendEncoder); ok {
		return ae.AppendEncode(dst)
	}
	return append(dst, s.Encode()...)
}

// appendLoc appends l.String() ("⊥" for NoLoc, decimal otherwise).
func appendLoc(dst []byte, l ioa.Loc) []byte {
	if l == ioa.NoLoc {
		return append(dst, "⊥"...)
	}
	return strconv.AppendInt(dst, int64(l), 10)
}
