package consensus

import (
	"fmt"
	"math/bits"
	"strconv"
	"strings"

	"repro/internal/ioa"
	"repro/internal/system"
)

// Message tags of the rotating-coordinator protocol.  Payload grammar:
//
//	E|r|est|ts  – phase 1: estimate (est, ts) sent to round r's coordinator
//	C|r|est     – phase 2: coordinator's proposal for round r
//	A|r         – phase 3: ack to round r's coordinator
//	N|r         – phase 3: nack (coordinator suspected)
//	D|est       – decision broadcast (reliable-broadcast by re-send)
const (
	tagEstimate = "E"
	tagCoord    = "C"
	tagAck      = "A"
	tagNack     = "N"
	tagDecide   = "D"
)

type estTS struct {
	est string
	ts  int
}

// ctRound is the per-round state of one round r ≥ CTMachine.round.  What the
// machine previously kept as four independent map[int]map[ioa.Loc]T maps is
// one flat record: location sets are 64-bit masks and the estimates a dense
// n-slot array, so cloning a machine — which the execution-tree explorer does
// once per node — copies a short slice instead of rebuilding nested maps.
// Per category, presence in the old encoding (an inner map existed for r)
// coincides with the category being non-empty, which the masks and hasC
// preserve exactly.
type ctRound struct {
	r        int
	estMask  uint64  // locations whose phase-1 estimate arrived
	ackMask  uint64  // locations that acked
	nackMask uint64  // locations that nacked
	hasC     bool    // coordinator proposal received
	gotC     string  // the proposal, when hasC
	ests     []estTS // dense n slots, allocated on the first estimate; estMask says which are live
}

// CTMachine is the Chandra-Toueg-style rotating-coordinator consensus
// machine hosted by a process automaton.  Round r's coordinator is location
// (r−1) mod n.  The machine requires a majority of live locations
// (f < ⌈n/2⌉) and a Suspector whose suspicions are eventually accurate and
// complete enough for the detector class used (◇S suffices; P, ◇P and Ω
// adapters all satisfy it).
//
// The machine is purely reactive: every transition is triggered by a
// propose input, a message receipt, or a failure-detector input, and queues
// its sends and decide output through Effects, matching the deterministic
// single-task process automaton of Section 4.2.
type CTMachine struct {
	system.NopMachine
	n    int
	self ioa.Loc
	susp Suspector

	proposed bool
	est      string
	ts       int
	round    int  // current round; 0 before propose
	replied  bool // sent A/N (or self-adopted as coordinator) for round
	sentC    bool // coordinator has sent C for the current round

	// Per-round state for rounds ≥ round (earlier rounds are pruned),
	// ascending by round number.
	rounds []ctRound

	decided    bool
	decidedVal string
}

var _ system.Machine = (*CTMachine)(nil)
var _ ioa.AppendEncoder = (*CTMachine)(nil)

// NewCTMachine returns the consensus machine for location self of n.
// Location sets are bitmasks, so n is capped at 64 (the repository's
// experiments use n ≤ 32).
func NewCTMachine(n int, self ioa.Loc, susp Suspector) *CTMachine {
	if n > 64 {
		panic("consensus: CTMachine supports at most 64 locations")
	}
	return &CTMachine{n: n, self: self, susp: susp}
}

// Round returns the current round (a progress metric for experiments).
func (m *CTMachine) Round() int { return m.round }

// Decided reports whether this location has decided, and on what.
func (m *CTMachine) Decided() (string, bool) { return m.decidedVal, m.decided }

func (m *CTMachine) coord(r int) ioa.Loc { return ioa.Loc((r - 1) % m.n) }

func (m *CTMachine) majority() int { return m.n/2 + 1 }

// findRound returns the record for round r, or nil.
func (m *CTMachine) findRound(r int) *ctRound {
	for i := len(m.rounds) - 1; i >= 0; i-- {
		if m.rounds[i].r == r {
			return &m.rounds[i]
		}
		if m.rounds[i].r < r {
			break
		}
	}
	return nil
}

// roundAt returns the record for round r, inserting an empty one in
// ascending position if absent.  Rounds mostly arrive in order, so the scan
// from the tail is O(1) in steady state.
func (m *CTMachine) roundAt(r int) *ctRound {
	i := len(m.rounds)
	for i > 0 && m.rounds[i-1].r > r {
		i--
	}
	if i > 0 && m.rounds[i-1].r == r {
		return &m.rounds[i-1]
	}
	m.rounds = append(m.rounds, ctRound{})
	copy(m.rounds[i+1:], m.rounds[i:])
	m.rounds[i] = ctRound{r: r}
	return &m.rounds[i]
}

// estsOf returns round rd's dense estimate array, allocating it on first use.
func (m *CTMachine) estsOf(rd *ctRound) []estTS {
	if rd.ests == nil {
		rd.ests = make([]estTS, m.n)
	}
	return rd.ests
}

// OnStart implements system.Machine: nothing happens before propose.
func (m *CTMachine) OnStart(*system.Effects) {}

// OnEnvInput implements system.Machine: propose starts round 1.
func (m *CTMachine) OnEnvInput(name, payload string, e *system.Effects) {
	if name != system.ActNamePropose || m.proposed || m.decided {
		return
	}
	m.proposed = true
	m.est = payload
	m.ts = 0
	m.startRound(1, e)
}

// OnFD implements system.Machine: refresh suspicions, which may unblock the
// phase-3 wait on the current coordinator.
func (m *CTMachine) OnFD(a ioa.Action, e *system.Effects) {
	m.susp.Update(a)
	if m.decided || !m.proposed {
		return
	}
	m.maybeParticipant(e)
}

// OnReceive implements system.Machine.
func (m *CTMachine) OnReceive(from ioa.Loc, msg string, e *system.Effects) {
	if m.decided {
		return
	}
	parts := strings.Split(msg, "|")
	switch parts[0] {
	case tagDecide:
		if len(parts) == 2 {
			m.decide(parts[1], e)
		}
	case tagEstimate:
		if len(parts) != 4 {
			return
		}
		r, err1 := strconv.Atoi(parts[1])
		ts, err2 := strconv.Atoi(parts[3])
		if err1 != nil || err2 != nil || r < m.round {
			return
		}
		rd := m.roundAt(r)
		m.estsOf(rd)[from] = estTS{est: parts[2], ts: ts}
		rd.estMask |= 1 << uint(from)
		m.maybeCoord(e)
	case tagCoord:
		if len(parts) != 3 {
			return
		}
		r, err := strconv.Atoi(parts[1])
		if err != nil || r < m.round {
			return
		}
		rd := m.roundAt(r)
		rd.gotC = parts[2]
		rd.hasC = true
		m.maybeParticipant(e)
	case tagAck, tagNack:
		if len(parts) != 2 {
			return
		}
		r, err := strconv.Atoi(parts[1])
		if err != nil || r < m.round {
			return
		}
		rd := m.roundAt(r)
		if parts[0] == tagNack {
			rd.nackMask |= 1 << uint(from)
		} else {
			rd.ackMask |= 1 << uint(from)
		}
		m.maybeCoord(e)
	}
}

// startRound enters round r: prune stale per-round state, contribute the
// phase-1 estimate, and run both roles' triggers.
func (m *CTMachine) startRound(r int, e *system.Effects) {
	m.round = r
	m.replied = false
	m.sentC = false
	// Prune rounds < r (ascending order makes this a front trim).
	i := 0
	for i < len(m.rounds) && m.rounds[i].r < r {
		i++
	}
	if i > 0 {
		m.rounds = append(m.rounds[:0], m.rounds[i:]...)
	}
	c := m.coord(r)
	if c == m.self {
		rd := m.roundAt(r)
		m.estsOf(rd)[m.self] = estTS{est: m.est, ts: m.ts}
		rd.estMask |= 1 << uint(m.self)
		m.maybeCoord(e)
	} else {
		e.Send(c, fmt.Sprintf("%s|%d|%s|%d", tagEstimate, r, m.est, m.ts))
		m.maybeParticipant(e)
	}
}

// maybeParticipant runs the phase-3 wait of a non-coordinator: adopt the
// coordinator's proposal and ack, or nack on suspicion; either way advance
// to the next round.
func (m *CTMachine) maybeParticipant(e *system.Effects) {
	if m.decided || !m.proposed || m.replied {
		return
	}
	r := m.round
	c := m.coord(r)
	if c == m.self {
		return // coordinator duties live in maybeCoord
	}
	if rd := m.findRound(r); rd != nil && rd.hasC {
		m.est = rd.gotC
		m.ts = r
		m.replied = true
		e.Send(c, fmt.Sprintf("%s|%d", tagAck, r))
		m.startRound(r+1, e)
		return
	}
	if m.susp.Suspects(c) {
		m.replied = true
		e.Send(c, fmt.Sprintf("%s|%d", tagNack, r))
		m.startRound(r+1, e)
	}
}

// maybeCoord runs the coordinator's phases 2 and 4 for the current round.
func (m *CTMachine) maybeCoord(e *system.Effects) {
	if m.decided || !m.proposed {
		return
	}
	r := m.round
	if m.coord(r) != m.self {
		return
	}
	maj := m.majority()
	rd := m.findRound(r)
	if rd == nil {
		return
	}
	if !m.sentC && bits.OnesCount64(rd.estMask) >= maj {
		// Phase 2: adopt the estimate with the largest timestamp.
		// Deterministic tie-break: among equal timestamps prefer the
		// estimate of the smallest location (ascending mask iteration).
		best := estTS{ts: -1}
		for mask := rd.estMask; mask != 0; mask &= mask - 1 {
			et := rd.ests[bits.TrailingZeros64(mask)]
			if et.ts > best.ts {
				best = et
			}
		}
		m.sentC = true
		m.est = best.est
		m.ts = r
		e.Broadcast(m.n, fmt.Sprintf("%s|%d|%s", tagCoord, r, best.est))
		// The coordinator is its own first participant: adopt and ack.
		m.replied = true
		rd.ackMask |= 1 << uint(m.self)
	}
	if !m.sentC {
		return
	}
	// Phase 4.
	if bits.OnesCount64(rd.ackMask) >= maj {
		m.decide(m.est, e)
		return
	}
	if bits.OnesCount64(rd.ackMask)+bits.OnesCount64(rd.nackMask) >= maj {
		m.startRound(r+1, e)
	}
}

// decide performs the reliable decision broadcast: re-broadcast D before
// emitting the decide output, so any live receiver propagates the decision
// even if this location crashes mid-broadcast.
func (m *CTMachine) decide(v string, e *system.Effects) {
	if m.decided {
		return
	}
	m.decided = true
	m.decidedVal = v
	m.est = v
	e.Broadcast(m.n, fmt.Sprintf("%s|%s", tagDecide, v))
	e.Output(system.ActNameDecide, v)
}

// Clone implements system.Machine.
func (m *CTMachine) Clone() system.Machine {
	c := &CTMachine{
		n: m.n, self: m.self, susp: m.susp.Clone(),
		proposed: m.proposed, est: m.est, ts: m.ts,
		round: m.round, replied: m.replied, sentC: m.sentC,
		decided: m.decided, decidedVal: m.decidedVal,
	}
	if len(m.rounds) > 0 {
		c.rounds = make([]ctRound, len(m.rounds))
		copy(c.rounds, m.rounds)
		for i := range c.rounds {
			if c.rounds[i].ests != nil {
				c.rounds[i].ests = append([]estTS(nil), c.rounds[i].ests...)
			}
		}
	}
	return c
}

// Encode implements system.Machine.
func (m *CTMachine) Encode() string { return string(m.AppendEncode(nil)) }

// AppendEncode implements ioa.AppendEncoder: exactly Encode()'s bytes,
// appended without the fmt round-trips — the execution-tree explorer encodes
// every cloned machine once per node, so this is a fingerprinting hot path.
func (m *CTMachine) AppendEncode(dst []byte) []byte {
	dst = append(dst, "CT"...)
	dst = appendLoc(dst, m.self)
	dst = append(dst, "|p"...)
	dst = strconv.AppendBool(dst, m.proposed)
	dst = append(dst, "|e"...)
	dst = append(dst, m.est...)
	dst = append(dst, "|t"...)
	dst = strconv.AppendInt(dst, int64(m.ts), 10)
	dst = append(dst, "|r"...)
	dst = strconv.AppendInt(dst, int64(m.round), 10)
	dst = append(dst, "|rp"...)
	dst = strconv.AppendBool(dst, m.replied)
	dst = append(dst, "|sc"...)
	dst = strconv.AppendBool(dst, m.sentC)
	dst = append(dst, "|d"...)
	dst = strconv.AppendBool(dst, m.decided)
	dst = append(dst, ':')
	dst = append(dst, m.decidedVal...)
	dst = append(dst, '|')
	dst = appendSusp(dst, m.susp)
	dst = append(dst, "|E"...)
	for i := range m.rounds {
		rd := &m.rounds[i]
		if rd.estMask == 0 {
			continue
		}
		dst = append(dst, '[')
		dst = strconv.AppendInt(dst, int64(rd.r), 10)
		dst = append(dst, ':')
		for mask := rd.estMask; mask != 0; mask &= mask - 1 {
			l := bits.TrailingZeros64(mask)
			et := &rd.ests[l]
			dst = strconv.AppendInt(dst, int64(l), 10)
			dst = append(dst, '=')
			dst = append(dst, et.est...)
			dst = append(dst, '/')
			dst = strconv.AppendInt(dst, int64(et.ts), 10)
			dst = append(dst, ';')
		}
		dst = append(dst, ']')
	}
	dst = append(dst, "|A"...)
	dst = m.appendMaskRounds(dst, func(rd *ctRound) uint64 { return rd.ackMask })
	dst = append(dst, "|N"...)
	dst = m.appendMaskRounds(dst, func(rd *ctRound) uint64 { return rd.nackMask })
	dst = append(dst, "|C"...)
	for i := range m.rounds {
		rd := &m.rounds[i]
		if !rd.hasC {
			continue
		}
		dst = append(dst, '[')
		dst = strconv.AppendInt(dst, int64(rd.r), 10)
		dst = append(dst, ':')
		dst = append(dst, rd.gotC...)
		dst = append(dst, ']')
	}
	return dst
}

// appendMaskRounds appends "[r:{...}]" for every round whose selected mask
// is non-empty, in ascending round order.
func (m *CTMachine) appendMaskRounds(dst []byte, sel func(*ctRound) uint64) []byte {
	for i := range m.rounds {
		rd := &m.rounds[i]
		mask := sel(rd)
		if mask == 0 {
			continue
		}
		dst = append(dst, '[')
		dst = strconv.AppendInt(dst, int64(rd.r), 10)
		dst = append(dst, ':')
		dst = appendMaskSet(dst, mask)
		dst = append(dst, ']')
	}
	return dst
}
