package consensus

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"repro/internal/ioa"
	"repro/internal/system"
)

// Message tags of the rotating-coordinator protocol.  Payload grammar:
//
//	E|r|est|ts  – phase 1: estimate (est, ts) sent to round r's coordinator
//	C|r|est     – phase 2: coordinator's proposal for round r
//	A|r         – phase 3: ack to round r's coordinator
//	N|r         – phase 3: nack (coordinator suspected)
//	D|est       – decision broadcast (reliable-broadcast by re-send)
const (
	tagEstimate = "E"
	tagCoord    = "C"
	tagAck      = "A"
	tagNack     = "N"
	tagDecide   = "D"
)

type estTS struct {
	est string
	ts  int
}

// CTMachine is the Chandra-Toueg-style rotating-coordinator consensus
// machine hosted by a process automaton.  Round r's coordinator is location
// (r−1) mod n.  The machine requires a majority of live locations
// (f < ⌈n/2⌉) and a Suspector whose suspicions are eventually accurate and
// complete enough for the detector class used (◇S suffices; P, ◇P and Ω
// adapters all satisfy it).
//
// The machine is purely reactive: every transition is triggered by a
// propose input, a message receipt, or a failure-detector input, and queues
// its sends and decide output through Effects, matching the deterministic
// single-task process automaton of Section 4.2.
type CTMachine struct {
	system.NopMachine
	n    int
	self ioa.Loc
	susp Suspector

	proposed bool
	est      string
	ts       int
	round    int  // current round; 0 before propose
	replied  bool // sent A/N (or self-adopted as coordinator) for round
	sentC    bool // coordinator has sent C for the current round

	// Per-round state for rounds ≥ round (earlier rounds are pruned).
	ests  map[int]map[ioa.Loc]estTS
	acks  map[int]map[ioa.Loc]bool
	nacks map[int]map[ioa.Loc]bool
	gotC  map[int]string

	decided    bool
	decidedVal string
}

var _ system.Machine = (*CTMachine)(nil)

// NewCTMachine returns the consensus machine for location self of n.
func NewCTMachine(n int, self ioa.Loc, susp Suspector) *CTMachine {
	return &CTMachine{
		n:     n,
		self:  self,
		susp:  susp,
		ests:  make(map[int]map[ioa.Loc]estTS),
		acks:  make(map[int]map[ioa.Loc]bool),
		nacks: make(map[int]map[ioa.Loc]bool),
		gotC:  make(map[int]string),
	}
}

// Round returns the current round (a progress metric for experiments).
func (m *CTMachine) Round() int { return m.round }

// Decided reports whether this location has decided, and on what.
func (m *CTMachine) Decided() (string, bool) { return m.decidedVal, m.decided }

func (m *CTMachine) coord(r int) ioa.Loc { return ioa.Loc((r - 1) % m.n) }

func (m *CTMachine) majority() int { return m.n/2 + 1 }

// OnStart implements system.Machine: nothing happens before propose.
func (m *CTMachine) OnStart(*system.Effects) {}

// OnEnvInput implements system.Machine: propose starts round 1.
func (m *CTMachine) OnEnvInput(name, payload string, e *system.Effects) {
	if name != system.ActNamePropose || m.proposed || m.decided {
		return
	}
	m.proposed = true
	m.est = payload
	m.ts = 0
	m.startRound(1, e)
}

// OnFD implements system.Machine: refresh suspicions, which may unblock the
// phase-3 wait on the current coordinator.
func (m *CTMachine) OnFD(a ioa.Action, e *system.Effects) {
	m.susp.Update(a)
	if m.decided || !m.proposed {
		return
	}
	m.maybeParticipant(e)
}

// OnReceive implements system.Machine.
func (m *CTMachine) OnReceive(from ioa.Loc, msg string, e *system.Effects) {
	if m.decided {
		return
	}
	parts := strings.Split(msg, "|")
	switch parts[0] {
	case tagDecide:
		if len(parts) == 2 {
			m.decide(parts[1], e)
		}
	case tagEstimate:
		if len(parts) != 4 {
			return
		}
		r, err1 := strconv.Atoi(parts[1])
		ts, err2 := strconv.Atoi(parts[3])
		if err1 != nil || err2 != nil || r < m.round {
			return
		}
		if m.ests[r] == nil {
			m.ests[r] = make(map[ioa.Loc]estTS)
		}
		m.ests[r][from] = estTS{est: parts[2], ts: ts}
		m.maybeCoord(e)
	case tagCoord:
		if len(parts) != 3 {
			return
		}
		r, err := strconv.Atoi(parts[1])
		if err != nil || r < m.round {
			return
		}
		m.gotC[r] = parts[2]
		m.maybeParticipant(e)
	case tagAck, tagNack:
		if len(parts) != 2 {
			return
		}
		r, err := strconv.Atoi(parts[1])
		if err != nil || r < m.round {
			return
		}
		bucket := m.acks
		if parts[0] == tagNack {
			bucket = m.nacks
		}
		if bucket[r] == nil {
			bucket[r] = make(map[ioa.Loc]bool)
		}
		bucket[r][from] = true
		m.maybeCoord(e)
	}
}

// startRound enters round r: prune stale per-round state, contribute the
// phase-1 estimate, and run both roles' triggers.
func (m *CTMachine) startRound(r int, e *system.Effects) {
	m.round = r
	m.replied = false
	m.sentC = false
	for _, prune := range []func(){
		func() { pruneEst(m.ests, r) },
		func() { pruneSet(m.acks, r) },
		func() { pruneSet(m.nacks, r) },
		func() { pruneStr(m.gotC, r) },
	} {
		prune()
	}
	c := m.coord(r)
	if c == m.self {
		if m.ests[r] == nil {
			m.ests[r] = make(map[ioa.Loc]estTS)
		}
		m.ests[r][m.self] = estTS{est: m.est, ts: m.ts}
		m.maybeCoord(e)
	} else {
		e.Send(c, fmt.Sprintf("%s|%d|%s|%d", tagEstimate, r, m.est, m.ts))
		m.maybeParticipant(e)
	}
}

// maybeParticipant runs the phase-3 wait of a non-coordinator: adopt the
// coordinator's proposal and ack, or nack on suspicion; either way advance
// to the next round.
func (m *CTMachine) maybeParticipant(e *system.Effects) {
	if m.decided || !m.proposed || m.replied {
		return
	}
	r := m.round
	c := m.coord(r)
	if c == m.self {
		return // coordinator duties live in maybeCoord
	}
	if v, ok := m.gotC[r]; ok {
		m.est = v
		m.ts = r
		m.replied = true
		e.Send(c, fmt.Sprintf("%s|%d", tagAck, r))
		m.startRound(r+1, e)
		return
	}
	if m.susp.Suspects(c) {
		m.replied = true
		e.Send(c, fmt.Sprintf("%s|%d", tagNack, r))
		m.startRound(r+1, e)
	}
}

// maybeCoord runs the coordinator's phases 2 and 4 for the current round.
func (m *CTMachine) maybeCoord(e *system.Effects) {
	if m.decided || !m.proposed {
		return
	}
	r := m.round
	if m.coord(r) != m.self {
		return
	}
	maj := m.majority()
	if !m.sentC && len(m.ests[r]) >= maj {
		// Phase 2: adopt the estimate with the largest timestamp.
		best := estTS{ts: -1}
		// Deterministic tie-break: among equal timestamps prefer the
		// estimate of the smallest location.
		locs := make([]int, 0, len(m.ests[r]))
		for l := range m.ests[r] {
			locs = append(locs, int(l))
		}
		sort.Ints(locs)
		for _, l := range locs {
			et := m.ests[r][ioa.Loc(l)]
			if et.ts > best.ts {
				best = et
			}
		}
		m.sentC = true
		m.est = best.est
		m.ts = r
		e.Broadcast(m.n, fmt.Sprintf("%s|%d|%s", tagCoord, r, best.est))
		// The coordinator is its own first participant: adopt and ack.
		m.replied = true
		if m.acks[r] == nil {
			m.acks[r] = make(map[ioa.Loc]bool)
		}
		m.acks[r][m.self] = true
	}
	if !m.sentC {
		return
	}
	// Phase 4.
	if len(m.acks[r]) >= maj {
		m.decide(m.est, e)
		return
	}
	if len(m.acks[r])+len(m.nacks[r]) >= maj {
		m.startRound(r+1, e)
	}
}

// decide performs the reliable decision broadcast: re-broadcast D before
// emitting the decide output, so any live receiver propagates the decision
// even if this location crashes mid-broadcast.
func (m *CTMachine) decide(v string, e *system.Effects) {
	if m.decided {
		return
	}
	m.decided = true
	m.decidedVal = v
	m.est = v
	e.Broadcast(m.n, fmt.Sprintf("%s|%s", tagDecide, v))
	e.Output(system.ActNameDecide, v)
}

// Clone implements system.Machine.
func (m *CTMachine) Clone() system.Machine {
	c := &CTMachine{
		n: m.n, self: m.self, susp: m.susp.Clone(),
		proposed: m.proposed, est: m.est, ts: m.ts,
		round: m.round, replied: m.replied, sentC: m.sentC,
		decided: m.decided, decidedVal: m.decidedVal,
		ests:  make(map[int]map[ioa.Loc]estTS, len(m.ests)),
		acks:  make(map[int]map[ioa.Loc]bool, len(m.acks)),
		nacks: make(map[int]map[ioa.Loc]bool, len(m.nacks)),
		gotC:  make(map[int]string, len(m.gotC)),
	}
	for r, mm := range m.ests {
		inner := make(map[ioa.Loc]estTS, len(mm))
		for l, v := range mm {
			inner[l] = v
		}
		c.ests[r] = inner
	}
	for r, mm := range m.acks {
		c.acks[r] = cloneLocSet(mm)
	}
	for r, mm := range m.nacks {
		c.nacks[r] = cloneLocSet(mm)
	}
	for r, v := range m.gotC {
		c.gotC[r] = v
	}
	return c
}

// Encode implements system.Machine.
func (m *CTMachine) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CT%v|p%t|e%s|t%d|r%d|rp%t|sc%t|d%t:%s|%s",
		m.self, m.proposed, m.est, m.ts, m.round, m.replied, m.sentC,
		m.decided, m.decidedVal, m.susp.Encode())
	b.WriteString("|E")
	encodeRoundEsts(&b, m.ests)
	b.WriteString("|A")
	encodeRoundSets(&b, m.acks)
	b.WriteString("|N")
	encodeRoundSets(&b, m.nacks)
	b.WriteString("|C")
	encodeRoundStrs(&b, m.gotC)
	return b.String()
}

func pruneEst(m map[int]map[ioa.Loc]estTS, min int) {
	for r := range m {
		if r < min {
			delete(m, r)
		}
	}
}

func pruneSet(m map[int]map[ioa.Loc]bool, min int) {
	for r := range m {
		if r < min {
			delete(m, r)
		}
	}
}

func pruneStr(m map[int]string, min int) {
	for r := range m {
		if r < min {
			delete(m, r)
		}
	}
}

func cloneLocSet(m map[ioa.Loc]bool) map[ioa.Loc]bool {
	c := make(map[ioa.Loc]bool, len(m))
	for l, v := range m {
		c[l] = v
	}
	return c
}

func sortedRounds[T any](m map[int]T) []int {
	rs := make([]int, 0, len(m))
	for r := range m {
		rs = append(rs, r)
	}
	sort.Ints(rs)
	return rs
}

func encodeRoundEsts(b *strings.Builder, m map[int]map[ioa.Loc]estTS) {
	for _, r := range sortedRounds(m) {
		fmt.Fprintf(b, "[%d:", r)
		inner := m[r]
		locs := make([]int, 0, len(inner))
		for l := range inner {
			locs = append(locs, int(l))
		}
		sort.Ints(locs)
		for _, l := range locs {
			et := inner[ioa.Loc(l)]
			fmt.Fprintf(b, "%d=%s/%d;", l, et.est, et.ts)
		}
		b.WriteByte(']')
	}
}

func encodeRoundSets(b *strings.Builder, m map[int]map[ioa.Loc]bool) {
	for _, r := range sortedRounds(m) {
		fmt.Fprintf(b, "[%d:%s]", r, ioa.EncodeLocSet(m[r]))
	}
}

func encodeRoundStrs(b *strings.Builder, m map[int]string) {
	for _, r := range sortedRounds(m) {
		fmt.Fprintf(b, "[%d:%s]", r, m[r])
	}
}
