package consensus_test

import (
	"fmt"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
)

// Solving 1-crash-tolerant binary consensus with Ω: the round-1 coordinator
// crashes mid-protocol and the leader moves.
func ExampleRun() {
	omega, _ := afd.Lookup(afd.FamilyOmega, 3)
	res, err := consensus.Run(consensus.RunSpec{
		Build: consensus.BuildSpec{
			N:      3,
			Family: afd.FamilyOmega,
			Det:    omega.Automaton(3),
			Crash:  []ioa.Loc{0},
			Values: []int{0, 1, 1},
		},
		Steps:     50_000,
		Seed:      -1,
		CrashGate: 30,
	})
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	spec := consensus.Spec{N: 3, F: 1}
	err = spec.Check(consensus.ProjectIO(res.Trace), res.AllDecided)
	fmt.Println("decisions:", res.Decisions, "value:", res.Value, "spec:", err == nil)
	// Output:
	// decisions: 2 value: 0 spec: true
}
