package consensus

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

// detFamilies are the detector classes the CT algorithm is exercised with.
func detFamilies() []string {
	return []string{afd.FamilyP, afd.FamilyEvP, afd.FamilyEvS, afd.FamilyOmega}
}

func detectorFor(t *testing.T, family string, n int) ioa.Automaton {
	t.Helper()
	d, err := afd.Lookup(family, n)
	if err != nil {
		t.Fatal(err)
	}
	return d.Automaton(n)
}

// runCase runs one consensus configuration and validates it against the
// Section-9.1 specification.
func runCase(t *testing.T, n int, family string, crash []ioa.Loc, values []int, seed int64, steps int) *Result {
	t.Helper()
	res, err := Run(RunSpec{
		Build: BuildSpec{
			N:      n,
			Family: family,
			Det:    detectorFor(t, family, n),
			Crash:  crash,
			Values: values,
		},
		Steps:     steps,
		Seed:      seed,
		CrashGate: 30, // crash while the protocol is mid-flight
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{N: n, F: (n - 1) / 2}
	io := ProjectIO(res.Trace)
	if err := spec.CheckAssumptions(io); err != nil {
		t.Fatalf("assumptions violated (harness bug): %v", err)
	}
	if err := spec.CheckGuarantees(io, res.AllDecided); err != nil {
		t.Fatalf("n=%d fd=%s crash=%v seed=%d: %v\ntrace tail: %v",
			n, family, crash, seed, err, tail(io, 12))
	}
	return res
}

func tail(t trace.T, k int) trace.T {
	if len(t) <= k {
		return t
	}
	return t[len(t)-k:]
}

// TestConsensusDecidesFailureFree is E7's base case: all detector classes
// decide with no crashes, for odd n up to 7, under fair and random
// schedules.
func TestConsensusDecidesFailureFree(t *testing.T) {
	for _, n := range []int{1, 3, 5, 7} {
		for _, fam := range detFamilies() {
			for _, seed := range []int64{-1, 1} {
				vals := make([]int, n)
				for i := range vals {
					vals[i] = i % 2
				}
				res := runCase(t, n, fam, nil, vals, seed, 60_000)
				if !res.AllDecided {
					t.Errorf("n=%d fd=%s seed=%d: not all decided (reason %s, steps %d, round %d)",
						n, fam, seed, res.Reason, res.Steps, res.MaxRound)
				}
			}
		}
	}
}

// TestConsensusToleratesCrashes is E7/E8: up to f = ⌊(n−1)/2⌋ crashes,
// including the round-1 coordinator, still decide.
func TestConsensusToleratesCrashes(t *testing.T) {
	cases := []struct {
		n     int
		crash []ioa.Loc
	}{
		{3, []ioa.Loc{0}}, // round-1 coordinator
		{3, []ioa.Loc{2}},
		{5, []ioa.Loc{0, 1}}, // first two coordinators
		{5, []ioa.Loc{3, 4}},
		{7, []ioa.Loc{0, 2, 4}},
	}
	for _, tc := range cases {
		for _, fam := range detFamilies() {
			for _, seed := range []int64{-1, 2} {
				vals := make([]int, tc.n)
				for i := range vals {
					vals[i] = (i + 1) % 2
				}
				res := runCase(t, tc.n, fam, tc.crash, vals, seed, 120_000)
				if !res.AllDecided {
					t.Errorf("n=%d fd=%s crash=%v seed=%d: not all decided (reason %s, round %d)",
						tc.n, fam, tc.crash, seed, res.Reason, res.MaxRound)
				}
			}
		}
	}
}

// TestConsensusValidityUnanimous: if everyone proposes v, the decision is v.
func TestConsensusValidityUnanimous(t *testing.T) {
	for _, v := range []int{0, 1} {
		vals := []int{v, v, v}
		res := runCase(t, 3, afd.FamilyOmega, nil, vals, -1, 20_000)
		want := map[int]string{0: "0", 1: "1"}[v]
		if res.Value != want {
			t.Errorf("unanimous %d decided %q", v, res.Value)
		}
	}
}

// TestConsensusManySeeds is schedule-diversity fuzzing: the spec holds for
// 30 random schedules with a crashing coordinator.
func TestConsensusManySeeds(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		runCase(t, 3, afd.FamilyEvP, []ioa.Loc{0}, []int{1, 0, 1}, seed, 120_000)
	}
}

// TestConsensusFreeEnvironment uses the unconstrained Algorithm-4
// environment (scheduler picks the proposals).
func TestConsensusFreeEnvironment(t *testing.T) {
	res := runCase(t, 3, afd.FamilyOmega, nil, nil, 7, 30_000)
	if !res.AllDecided {
		t.Errorf("free environment run did not decide: %+v", res.Reason)
	}
}

// TestNoDetectorBlocksOnCoordinatorCrash is the FLP-flavored negative
// control (E9): without failure-detector information the algorithm cannot
// tolerate even one crash — the run stalls with no decision, violating
// termination.
func TestNoDetectorBlocksOnCoordinatorCrash(t *testing.T) {
	res, err := Run(RunSpec{
		Build: BuildSpec{
			N:      3,
			Family: "", // no detector
			Crash:  []ioa.Loc{0},
			Values: []int{0, 1, 1},
		},
		Steps: 30_000,
		Seed:  -1, // no gate: the crash fires before any protocol message
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decisions != 0 {
		t.Fatalf("decided %d times without a detector despite coordinator crash", res.Decisions)
	}
	if res.Reason != sched.StopQuiescent {
		t.Fatalf("expected a stall (quiescent), got %s after %d steps", res.Reason, res.Steps)
	}
}

// TestNoDetectorDecidesFailureFree: the detector-free run decides when
// nothing crashes (the blocking above is due to the crash, not the harness).
func TestNoDetectorDecidesFailureFree(t *testing.T) {
	res, err := Run(RunSpec{
		Build: BuildSpec{N: 3, Family: "", Crash: nil, Values: []int{1, 1, 0}},
		Steps: 30_000,
		Seed:  -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllDecided {
		t.Fatalf("failure-free detector-free run did not decide: %s", res.Reason)
	}
}

func TestSpecCheckerRejectsViolations(t *testing.T) {
	spec := Spec{N: 2, F: 1}
	prop := func(i ioa.Loc, v string) ioa.Action { return ioa.EnvInput(system.ActNamePropose, i, v) }
	dec := func(i ioa.Loc, v string) ioa.Action { return ioa.EnvOutput(system.ActNameDecide, i, v) }

	tests := []struct {
		name string
		t    trace.T
		want string
	}{
		{"agreement", trace.T{prop(0, "0"), prop(1, "1"), dec(0, "0"), dec(1, "1")}, "agreement"},
		{"validity", trace.T{prop(0, "0"), prop(1, "0"), dec(0, "1")}, "validity"},
		{"twice", trace.T{prop(0, "0"), prop(1, "0"), dec(0, "0"), dec(0, "0")}, "termination"},
		{"crash validity", trace.T{prop(0, "0"), prop(1, "0"), ioa.Crash(1), dec(1, "0")}, "crash validity"},
		{"termination", trace.T{prop(0, "0"), prop(1, "0"), dec(0, "0")}, "termination"},
	}
	for _, tc := range tests {
		err := spec.CheckGuarantees(tc.t, true)
		if err == nil {
			t.Errorf("%s: violation accepted", tc.name)
		}
	}
}

func TestSpecAssumptions(t *testing.T) {
	spec := Spec{N: 2, F: 0}
	prop := func(i ioa.Loc, v string) ioa.Action { return ioa.EnvInput(system.ActNamePropose, i, v) }

	if err := spec.CheckAssumptions(trace.T{prop(0, "0"), prop(0, "1"), prop(1, "0")}); err == nil {
		t.Error("double proposal accepted")
	}
	if err := spec.CheckAssumptions(trace.T{prop(0, "0")}); err == nil {
		t.Error("silent live location accepted")
	}
	if err := spec.CheckAssumptions(trace.T{prop(0, "0"), prop(1, "0"), ioa.Crash(1)}); err == nil {
		t.Error("crash beyond f accepted")
	}
	if err := spec.CheckAssumptions(trace.T{ioa.Crash(0), prop(0, "0"), prop(1, "0")}); err == nil {
		t.Error("propose after crash accepted")
	}
	// Vacuous membership: assumption violation makes Check pass.
	if err := spec.Check(trace.T{prop(0, "0")}, true); err != nil {
		t.Errorf("vacuous membership should pass: %v", err)
	}
}

func TestSuspectorAdapters(t *testing.T) {
	s := NewSetSuspector()
	if s.Suspects(0) {
		t.Error("fresh set suspector must trust everyone")
	}
	s.Update(ioa.FDOutput(afd.FamilyP, 0, "{1,2}"))
	if !s.Suspects(1) || !s.Suspects(2) || s.Suspects(0) {
		t.Error("set suspector wrong after update")
	}
	s.Update(ioa.FDOutput(afd.FamilyP, 0, "bogus"))
	if !s.Suspects(1) {
		t.Error("malformed payload must not clear suspicions")
	}
	c := s.Clone()
	s.Update(ioa.FDOutput(afd.FamilyP, 0, "{}"))
	if !c.Suspects(1) || s.Suspects(1) {
		t.Error("clone entangled with original")
	}

	l := NewLeaderSuspector()
	if l.Suspects(2) {
		t.Error("fresh leader suspector must trust everyone")
	}
	if l.Leader() != ioa.NoLoc {
		t.Error("fresh leader must be NoLoc")
	}
	l.Update(ioa.FDOutput(afd.FamilyOmega, 0, "1"))
	if l.Suspects(1) || !l.Suspects(0) || !l.Suspects(2) {
		t.Error("leader suspector wrong after update")
	}
	if l.Leader() != 1 {
		t.Errorf("Leader = %v", l.Leader())
	}

	var nv NeverSuspector
	nv.Update(ioa.FDOutput(afd.FamilyOmega, 0, "1"))
	if nv.Suspects(0) {
		t.Error("never suspector suspected someone")
	}
	if nv.Clone().Encode() != "N" {
		t.Error("never suspector encoding")
	}
}

func TestCTMachineCloneAndEncode(t *testing.T) {
	m := NewCTMachine(3, 0, NewSetSuspector())
	e := system.NewEffects(0)
	m.OnEnvInput(system.ActNamePropose, "1", e)
	c := m.Clone().(*CTMachine)
	if c.Encode() != m.Encode() {
		t.Fatal("clone must encode equal")
	}
	e2 := system.NewEffects(0)
	m.OnReceive(1, "E|1|0|0", e2)
	if c.Encode() == m.Encode() {
		t.Fatal("clone entangled with original")
	}
}

func TestCTCoordinatorDecidesAloneN1(t *testing.T) {
	res := runCase(t, 1, afd.FamilyOmega, nil, []int{1}, -1, 1_000)
	if !res.AllDecided || res.Value != "1" {
		t.Fatalf("n=1 should decide its own value: %+v", res)
	}
}

func TestSuspectorForUnknownFamily(t *testing.T) {
	if _, err := SuspectorFor("FD-Σ"); err == nil {
		t.Fatal("Σ has no suspector adapter; must error")
	}
	if _, err := Procs(3, "FD-Σ"); err == nil {
		t.Fatal("Procs must propagate adapter errors")
	}
}

func TestBuildRejectsBadValues(t *testing.T) {
	_, err := Build(BuildSpec{N: 3, Family: afd.FamilyOmega, Values: []int{1}})
	if err == nil {
		t.Fatal("mismatched Values length must fail")
	}
}
