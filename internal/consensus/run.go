package consensus

import (
	"fmt"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

// SuspectorFor returns the suspector adapter matching a detector family:
// leader adapters for Ω, set adapters for the suspicion-set detectors.
func SuspectorFor(family string) (Suspector, error) {
	switch family {
	case afd.FamilyOmega:
		return NewLeaderSuspector(), nil
	case afd.FamilyP, afd.FamilyEvP, afd.FamilyS, afd.FamilyEvS, afd.FamilyQ, afd.FamilyEvQ, afd.FamilyW, afd.FamilyEvW:
		return NewSetSuspector(), nil
	case "":
		return NeverSuspector{}, nil
	default:
		return nil, fmt.Errorf("consensus: no suspector adapter for family %q", family)
	}
}

// Procs returns the distributed consensus algorithm: one CT process
// automaton per location, subscribed to the given detector family ("" runs
// detector-free with a never-suspecting adapter, for the FLP demos).
func Procs(n int, family string) ([]ioa.Automaton, error) {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		susp, err := SuspectorFor(family)
		if err != nil {
			return nil, err
		}
		m := NewCTMachine(n, ioa.Loc(i), susp)
		var fds []string
		if family != "" {
			fds = []string{family}
		}
		out[i] = system.NewProc("ct", ioa.Loc(i), n, m, fds, []string{system.ActNamePropose})
	}
	return out, nil
}

// BuildSpec assembles the full Section-9.3 system S: the consensus
// algorithm, the channel mesh, the environment EC, the detector automaton,
// and the crash automaton.
type BuildSpec struct {
	N      int
	Family string        // detector family; "" = no detector
	Det    ioa.Automaton // detector automaton; nil = none
	Algo   string        // "ct" (default) or "s" (the CT96 S algorithm)
	Crash  []ioa.Loc
	// Values fixes the environment proposals per location; nil uses the
	// free Algorithm-4 environment (both values enabled).
	Values []int
	// Clock, when non-nil, swaps the channel mesh for send-stamping
	// TrackedChannels sharing this clock, enabling recency-based
	// adversarial schedulers (sched.RandomPriority with a newest-first
	// priority).  Delivery semantics are unchanged.
	Clock *system.SendClock
	// Net, when non-nil, restricts the mesh to its topology and applies
	// its per-link loss decisions (system.NetChannels); nil keeps the
	// paper's reliable full mesh.
	Net *system.Net
}

// Build composes the system.
func Build(spec BuildSpec) (*ioa.System, error) {
	var procs []ioa.Automaton
	var err error
	switch spec.Algo {
	case "", "ct":
		procs, err = Procs(spec.N, spec.Family)
	case "s":
		procs, err = SProcs(spec.N, spec.Family)
	default:
		return nil, fmt.Errorf("consensus: unknown algorithm %q", spec.Algo)
	}
	if err != nil {
		return nil, err
	}
	autos := procs
	if spec.Clock != nil {
		autos = append(autos, system.NetTrackedChannels(spec.N, spec.Clock, spec.Net)...)
	} else {
		autos = append(autos, system.NetChannels(spec.N, spec.Net)...)
	}
	if spec.Values != nil {
		if len(spec.Values) != spec.N {
			return nil, fmt.Errorf("consensus: %d values for %d locations", len(spec.Values), spec.N)
		}
		autos = append(autos, system.ConsensusEnvsFixed(spec.Values)...)
	} else {
		autos = append(autos, system.ConsensusEnvs(spec.N)...)
	}
	if spec.Det != nil {
		autos = append(autos, spec.Det)
	}
	autos = append(autos, system.NewCrash(system.CrashOf(spec.Crash...)))
	return ioa.NewSystem(autos...)
}

// Result summarizes a consensus run for the experiment harness.
type Result struct {
	Steps      int
	Reason     sched.StopReason
	Decisions  int     // number of decide events
	Value      string  // the agreed value ("" if none)
	MaxRound   int     // highest round reached by any process
	AllDecided bool    // every live location decided
	Trace      trace.T // full external trace
}

// RunSpec configures a consensus run.
type RunSpec struct {
	Build     BuildSpec
	Steps     int
	Seed      int64 // <0: round-robin
	CrashGate int   // 0 = crashes release immediately
}

// Run executes the composed system until every live location has decided (or
// the bound), and gathers metrics.
func Run(spec RunSpec) (*Result, error) {
	sys, err := Build(spec.Build)
	if err != nil {
		return nil, err
	}
	n := spec.Build.N
	// A location counts as faulty only once its crash event actually fires:
	// a planned crash the gate never releases leaves the location live, and
	// termination then requires its decision too.
	faulty := make(map[ioa.Loc]bool)
	decided := make(map[ioa.Loc]bool)
	allDecided := func() bool {
		for i := 0; i < n; i++ {
			if !faulty[ioa.Loc(i)] && !decided[ioa.Loc(i)] {
				return false
			}
		}
		return true
	}
	opts := sched.Options{
		MaxSteps: spec.Steps,
		Stop: func(_ *ioa.System, last ioa.Action) bool {
			switch {
			case last.Kind == ioa.KindCrash:
				faulty[last.Loc] = true
				return allDecided()
			case last.Kind == ioa.KindEnvOut && last.Name == system.ActNameDecide:
				decided[last.Loc] = true
				return allDecided()
			}
			return false
		},
	}
	if spec.CrashGate > 0 {
		opts.Gate = sched.CrashesAfter(spec.CrashGate, spec.CrashGate)
	}
	var res sched.Result
	if spec.Seed >= 0 {
		res = sched.Random(sys, spec.Seed, opts)
	} else {
		res = sched.RoundRobin(sys, opts)
	}

	out := &Result{Steps: res.Steps, Reason: res.Reason, Trace: sys.Trace()}
	decs := Decisions(sys.Trace())
	out.Decisions = len(decs)
	if len(decs) > 0 {
		out.Value = decs[0].Payload
	}
	for _, a := range sys.Automata() {
		p, ok := a.(*system.Proc)
		if !ok {
			continue
		}
		switch m := p.MachineState().(type) {
		case *CTMachine:
			if m.Round() > out.MaxRound {
				out.MaxRound = m.Round()
			}
		case *SMachine:
			if m.Round() > out.MaxRound {
				out.MaxRound = m.Round()
			}
		}
	}
	out.AllDecided = allDecided()
	return out, nil
}
