package consensus

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/system"
)

// runSCase runs the S-algorithm under one configuration and validates it
// against the Section-9.1 specification with the liberal crash bound the
// algorithm supports (f ≤ n−1).
func runSCase(t *testing.T, n int, family string, crash []ioa.Loc, values []int, seed int64, gate int) *Result {
	t.Helper()
	res, err := Run(RunSpec{
		Build: BuildSpec{
			N:      n,
			Family: family,
			Algo:   "s",
			Det:    detectorFor(t, family, n),
			Crash:  crash,
			Values: values,
		},
		Steps:     200_000,
		Seed:      seed,
		CrashGate: gate,
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{N: n, F: n - 1}
	io := ProjectIO(res.Trace)
	if err := spec.CheckAssumptions(io); err != nil {
		t.Fatalf("assumptions violated: %v", err)
	}
	if err := spec.CheckGuarantees(io, res.AllDecided); err != nil {
		t.Fatalf("n=%d fd=%s crash=%v seed=%d: %v\ntail: %v", n, family, crash, seed, err, tail(io, 12))
	}
	return res
}

// TestSAlgorithmFailureFree: P and S drive the flooding algorithm to a
// decision with no crashes.
func TestSAlgorithmFailureFree(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5} {
		for _, fam := range []string{afd.FamilyP, afd.FamilyS} {
			for _, seed := range []int64{-1, 1} {
				vals := make([]int, n)
				for i := range vals {
					vals[i] = (i + 1) % 2
				}
				res := runSCase(t, n, fam, nil, vals, seed, 0)
				if !res.AllDecided {
					t.Errorf("n=%d fd=%s seed=%d: no decision (%s)", n, fam, seed, res.Reason)
				}
			}
		}
	}
}

// TestSAlgorithmToleratesManyCrashes: unlike the majority-based CTMachine,
// the S algorithm rides out f = n−1 crashes.
func TestSAlgorithmToleratesManyCrashes(t *testing.T) {
	cases := []struct {
		n     int
		crash []ioa.Loc
	}{
		{2, []ioa.Loc{1}},
		{3, []ioa.Loc{0, 1}},       // only location 2 survives
		{4, []ioa.Loc{0, 2, 3}},    // only location 1 survives
		{5, []ioa.Loc{4, 3, 2, 1}}, // only location 0 survives
	}
	for _, tc := range cases {
		for _, seed := range []int64{-1, 2, 5} {
			vals := make([]int, tc.n)
			for i := range vals {
				vals[i] = i % 2
			}
			res := runSCase(t, tc.n, afd.FamilyP, tc.crash, vals, seed, 15)
			if !res.AllDecided {
				t.Errorf("n=%d crash=%v seed=%d: no decision (%s)", tc.n, tc.crash, seed, res.Reason)
			}
		}
	}
}

// TestSAlgorithmManySeeds fuzzes schedules and crash timing.
func TestSAlgorithmManySeeds(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		gate := int(seed%8) * 7
		runSCase(t, 3, afd.FamilyP, []ioa.Loc{1}, []int{1, 0, 1}, seed, gate)
	}
}

// TestSAlgorithmUnanimity: unanimous proposals decide that value.
func TestSAlgorithmUnanimity(t *testing.T) {
	for _, v := range []int{0, 1} {
		res := runSCase(t, 3, afd.FamilyP, nil, []int{v, v, v}, -1, 0)
		want := map[int]string{0: "0", 1: "1"}[v]
		if res.Value != want {
			t.Errorf("unanimous %d decided %q", v, res.Value)
		}
	}
}

func TestSProcsRejectsLeaderDetectors(t *testing.T) {
	if _, err := SProcs(3, afd.FamilyOmega); err == nil {
		t.Fatal("Ω has no suspicion sets; SProcs must refuse it")
	}
	if _, err := SProcs(3, ""); err == nil {
		t.Fatal("the S algorithm cannot run detector-free")
	}
}

func TestSMachineCloneEncode(t *testing.T) {
	m := NewSMachine(3, 0, NewSetSuspector())
	e := system.NewEffects(0)
	m.OnEnvInput(system.ActNamePropose, "1", e)
	c := m.Clone().(*SMachine)
	if c.Encode() != m.Encode() {
		t.Fatal("clone must encode equal")
	}
	e2 := system.NewEffects(0)
	m.OnReceive(1, "R|1|0", e2)
	if c.Encode() == m.Encode() {
		t.Fatal("clone entangled")
	}
}

func TestSMachineSingleLocation(t *testing.T) {
	res := runSCase(t, 1, afd.FamilyP, nil, []int{1}, -1, 0)
	if !res.AllDecided || res.Value != "1" {
		t.Fatalf("n=1 must decide its own value: %+v", res)
	}
}
