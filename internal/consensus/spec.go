// Package consensus implements Section 9 of "Asynchronous Failure
// Detectors": the f-crash-tolerant binary consensus problem (Section 9.1) as
// a checkable crash-problem specification, and a Chandra-Toueg-style
// rotating-coordinator algorithm that solves it using an AFD (the premise of
// the Section 9.3 system S).
package consensus

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/trace"
)

// Spec is the f-crash-tolerant binary consensus problem P ≡ (IP, OP, TP) of
// Section 9.1 for n locations: IP = {propose(v)i} ∪ Iˆ, OP = {decide(v)i},
// and TP is the set of sequences that, *if* they satisfy environment
// well-formedness and f-crash limitation, satisfy crash validity, agreement,
// validity, and termination.
type Spec struct {
	N int
	F int
}

// CheckAssumptions verifies the two antecedent properties on a trace over
// IP ∪ OP: environment well-formedness and f-crash limitation.  A non-nil
// error means the trace is outside the assumption set, in which case TP
// imposes no guarantees (membership is vacuous).
func (s Spec) CheckAssumptions(t trace.T) error {
	// Environment well-formedness.
	proposed := make(map[ioa.Loc]int)
	crashed := make(map[ioa.Loc]bool)
	for _, a := range t {
		switch {
		case a.Kind == ioa.KindCrash:
			crashed[a.Loc] = true
		case a.Kind == ioa.KindEnvIn && a.Name == system.ActNamePropose:
			if crashed[a.Loc] {
				return fmt.Errorf("consensus: propose at %v after crash (well-formedness 2)", a.Loc)
			}
			proposed[a.Loc]++
			if proposed[a.Loc] > 1 {
				return fmt.Errorf("consensus: multiple proposals at %v (well-formedness 1)", a.Loc)
			}
		}
	}
	for i := 0; i < s.N; i++ {
		l := ioa.Loc(i)
		if !crashed[l] && proposed[l] != 1 {
			return fmt.Errorf("consensus: live location %v has %d proposals, want 1 (well-formedness 3)", l, proposed[l])
		}
	}
	// f-crash limitation.
	if len(crashed) > s.F {
		return fmt.Errorf("consensus: %d crashes exceed f = %d", len(crashed), s.F)
	}
	return nil
}

// CheckGuarantees verifies the four consequent properties on a trace over
// IP ∪ OP.  complete states that the trace is a complete finite prefix of a
// fair execution (the run ended in quiescence or after every live location
// decided); only then is the "exactly once" half of termination enforced.
func (s Spec) CheckGuarantees(t trace.T, complete bool) error {
	decided := make(map[ioa.Loc][]string)
	crashedBefore := make(map[ioa.Loc]bool)
	var decisionValue string
	haveDecision := false
	proposedVals := make(map[string]bool)

	for _, a := range t {
		switch {
		case a.Kind == ioa.KindCrash:
			crashedBefore[a.Loc] = true
		case a.Kind == ioa.KindEnvIn && a.Name == system.ActNamePropose:
			proposedVals[a.Payload] = true
		case a.Kind == ioa.KindEnvOut && a.Name == system.ActNameDecide:
			// Crash validity: no location decides after crashing.
			if crashedBefore[a.Loc] {
				return fmt.Errorf("consensus: decide at %v after crash (crash validity)", a.Loc)
			}
			// Agreement: all decisions equal.
			if haveDecision && a.Payload != decisionValue {
				return fmt.Errorf("consensus: decisions %s and %s differ (agreement)", decisionValue, a.Payload)
			}
			decisionValue = a.Payload
			haveDecision = true
			decided[a.Loc] = append(decided[a.Loc], a.Payload)
			// Termination (at-most-once half).
			if len(decided[a.Loc]) > 1 {
				return fmt.Errorf("consensus: location %v decided twice (termination)", a.Loc)
			}
		}
	}

	// Validity: every decision value was proposed.
	if haveDecision && !proposedVals[decisionValue] {
		return fmt.Errorf("consensus: decision %s was never proposed (validity)", decisionValue)
	}

	// Termination (exactly-once half), only meaningful on complete runs.
	if complete {
		faulty := trace.Faulty(t)
		for i := 0; i < s.N; i++ {
			l := ioa.Loc(i)
			if !faulty[l] && len(decided[l]) != 1 {
				return fmt.Errorf("consensus: live location %v decided %d times, want 1 (termination)", l, len(decided[l]))
			}
		}
	}
	return nil
}

// Check decides membership of t in TP under the finite-prefix semantics: if
// the assumptions hold, the guarantees must hold.
func (s Spec) Check(t trace.T, complete bool) error {
	if err := s.CheckAssumptions(t); err != nil {
		// Outside the assumption set TP imposes nothing.
		return nil
	}
	return s.CheckGuarantees(t, complete)
}

// Checker adapts the consensus specification to the uniform run-verdict
// signature func(trace.T) error consumed by the chaos harness: given a full
// system trace, project it onto IP ∪ OP and decide membership in TP.
func (s Spec) Checker(complete bool) func(trace.T) error {
	return func(t trace.T) error {
		return s.Check(ProjectIO(t), complete)
	}
}

// ProjectIO projects a full system trace onto IP ∪ OP.
func ProjectIO(t trace.T) trace.T {
	return trace.Project(t, func(a ioa.Action) bool {
		switch {
		case a.Kind == ioa.KindCrash:
			return true
		case a.Kind == ioa.KindEnvIn && a.Name == system.ActNamePropose:
			return true
		case a.Kind == ioa.KindEnvOut && a.Name == system.ActNameDecide:
			return true
		default:
			return false
		}
	})
}

// Decisions returns the decide events of a trace in order.
func Decisions(t trace.T) []ioa.Action {
	return trace.Project(t, func(a ioa.Action) bool {
		return a.Kind == ioa.KindEnvOut && a.Name == system.ActNameDecide
	})
}
