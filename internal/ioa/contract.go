package ioa

import "fmt"

// CheckAutomatonContract exercises the structural obligations every
// Automaton implementation carries, independent of its behavior:
//
//	– Name is non-empty;
//	– every task has a non-empty label;
//	– Enabled is within task range and stable across repeated queries;
//	– Clone returns a distinct value in an Encode-equal state;
//	– Encode is stable across calls.
//
// It is a test helper shared by every package that defines automata.
func CheckAutomatonContract(a Automaton) error {
	if a.Name() == "" {
		return fmt.Errorf("ioa: automaton has empty name")
	}
	for t := 0; t < a.NumTasks(); t++ {
		if a.TaskLabel(t) == "" {
			return fmt.Errorf("ioa: %s task %d has empty label", a.Name(), t)
		}
		a1, ok1 := a.Enabled(t)
		a2, ok2 := a.Enabled(t)
		if ok1 != ok2 || a1 != a2 {
			return fmt.Errorf("ioa: %s task %d Enabled unstable", a.Name(), t)
		}
	}
	if a.Encode() != a.Encode() {
		return fmt.Errorf("ioa: %s Encode unstable", a.Name())
	}
	c := a.Clone()
	if c == nil {
		return fmt.Errorf("ioa: %s Clone returned nil", a.Name())
	}
	if fmt.Sprintf("%p", c) == fmt.Sprintf("%p", a) {
		return fmt.Errorf("ioa: %s Clone returned the receiver", a.Name())
	}
	if c.Encode() != a.Encode() {
		return fmt.Errorf("ioa: %s clone encodes differently:\n %q\n %q", a.Name(), c.Encode(), a.Encode())
	}
	if c.Name() != a.Name() {
		return fmt.Errorf("ioa: %s clone renamed itself to %s", a.Name(), c.Name())
	}
	return nil
}
