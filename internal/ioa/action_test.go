package ioa

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLocString(t *testing.T) {
	if got := NoLoc.String(); got != "⊥" {
		t.Errorf("NoLoc.String() = %q, want ⊥", got)
	}
	if got := Loc(3).String(); got != "3" {
		t.Errorf("Loc(3).String() = %q, want 3", got)
	}
}

func TestActionZero(t *testing.T) {
	var a Action
	if !a.IsZero() {
		t.Error("zero Action should be ⊥")
	}
	if a.String() != "⊥" {
		t.Errorf("zero Action renders %q, want ⊥", a.String())
	}
	if Crash(0).IsZero() {
		t.Error("crash action must not be ⊥")
	}
}

func TestActionConstructors(t *testing.T) {
	tests := []struct {
		a    Action
		kind Kind
		loc  Loc
		str  string
	}{
		{Crash(1), KindCrash, 1, "crash_1"},
		{Send(0, 2, "m"), KindSend, 0, "send(m,2)_0"},
		{Receive(2, 0, "m"), KindReceive, 2, "receive(m,0)_2"},
		{FDOutput("FD-Ω", 1, "0"), KindFD, 1, "FD-Ω(0)_1"},
		{EnvInput("propose", 0, "1"), KindEnvIn, 0, "propose(1)_0"},
		{EnvOutput("decide", 2, "0"), KindEnvOut, 2, "decide(0)_2"},
		{Internal("tick", 1, ""), KindInternal, 1, "tick_1"},
	}
	for _, tc := range tests {
		if tc.a.Kind != tc.kind {
			t.Errorf("%v: kind = %v, want %v", tc.a, tc.a.Kind, tc.kind)
		}
		if tc.a.Loc != tc.loc {
			t.Errorf("%v: loc = %v, want %v", tc.a, tc.a.Loc, tc.loc)
		}
		if tc.a.String() != tc.str {
			t.Errorf("String() = %q, want %q", tc.a.String(), tc.str)
		}
	}
}

func TestActionComparable(t *testing.T) {
	a := Send(0, 1, "x")
	b := Send(0, 1, "x")
	if a != b {
		t.Error("identical sends must compare equal")
	}
	m := map[Action]int{a: 1}
	if m[b] != 1 {
		t.Error("actions must be usable as map keys")
	}
	if Send(0, 1, "x") == Send(0, 1, "y") {
		t.Error("different payloads must differ")
	}
	if Send(0, 1, "x") == Receive(0, 1, "x") {
		t.Error("different kinds must differ")
	}
}

func TestKindString(t *testing.T) {
	kinds := map[Kind]string{
		KindCrash: "crash", KindSend: "send", KindReceive: "receive",
		KindFD: "fd", KindEnvIn: "envin", KindEnvOut: "envout",
		KindInternal: "internal", Kind(0): "invalid",
	}
	for k, want := range kinds {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestLocSetRoundTrip(t *testing.T) {
	tests := []map[Loc]bool{
		nil,
		{},
		{0: true},
		{2: true, 0: true, 5: true},
		{1: true, 3: false}, // false entries are excluded
	}
	for _, set := range tests {
		enc := EncodeLocSet(set)
		dec, err := DecodeLocSet(enc)
		if err != nil {
			t.Fatalf("DecodeLocSet(%q): %v", enc, err)
		}
		for l, in := range set {
			if in != dec[l] {
				t.Errorf("round-trip of %v via %q lost %v", set, enc, l)
			}
		}
		for l := range dec {
			if !set[l] {
				t.Errorf("round-trip of %v via %q invented %v", set, enc, l)
			}
		}
	}
}

func TestEncodeLocSetCanonical(t *testing.T) {
	a := EncodeLocSet(map[Loc]bool{3: true, 1: true, 2: true})
	b := EncodeLocSet(map[Loc]bool{2: true, 3: true, 1: true})
	if a != b {
		t.Errorf("set encoding not canonical: %q vs %q", a, b)
	}
	if a != "{1,2,3}" {
		t.Errorf("encoding = %q, want {1,2,3}", a)
	}
}

func TestDecodeLocSetErrors(t *testing.T) {
	for _, bad := range []string{"", "{", "1,2", "{a}", "{1,}"} {
		if _, err := DecodeLocSet(bad); err == nil {
			t.Errorf("DecodeLocSet(%q) succeeded, want error", bad)
		}
	}
}

func TestLocRoundTrip(t *testing.T) {
	for _, l := range []Loc{0, 1, 7, NoLoc} {
		got, err := DecodeLoc(EncodeLoc(l))
		if err != nil {
			t.Fatalf("DecodeLoc: %v", err)
		}
		if got != l {
			t.Errorf("round trip %v -> %v", l, got)
		}
	}
	if _, err := DecodeLoc("zz"); err == nil {
		t.Error("DecodeLoc(zz) succeeded, want error")
	}
}

// Property: EncodeLocSet/DecodeLocSet is a bijection on random sets.
func TestQuickLocSetRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := func(raw []uint8) bool {
		set := make(map[Loc]bool)
		for _, v := range raw {
			set[Loc(v%64)] = true
		}
		dec, err := DecodeLocSet(EncodeLocSet(set))
		if err != nil {
			return false
		}
		if len(dec) != len(set) {
			return false
		}
		for l := range set {
			if !dec[l] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}
