package ioa

import "fmt"

// ReplayTrace checks that t is a trace of the composition by replaying it
// against sys (which must be in its start state).  isExternal declares
// which actions arrive from outside the composition (input actions are
// enabled in every state, Section 2.1, so they are always accepted); every
// other event must be the currently enabled action of some task and is
// performed by its owner.
//
// ReplayTrace advances sys in place.  On failure it reports the index of
// the offending event; on success it returns -1, nil.
//
// This is the executable form of "t is a trace of A" used by the Section
// 7.3 crash-independence arguments: a sequence obtained by surgery on a
// real trace (e.g. deleting its crash events, Lemma 24) is certified by
// replaying it.
func ReplayTrace(sys *System, t []Action, isExternal func(Action) bool) (int, error) {
	return ReplayTraceObserved(sys, t, isExternal, nil)
}

// ReplayTraceObserved is ReplayTrace with a pre-Apply observation hook:
// observe (when non-nil) is called for each event with its index and the
// owning automaton's index (-1 for external events) BEFORE the event is
// applied, so the observer sees the pre-state — the point where per-event
// metadata that depends on the not-yet-mutated composition (action
// footprints, channel contents, enabled sets) must be sampled.  The causal
// provenance engine builds its happens-before DAG through this hook.
func ReplayTraceObserved(sys *System, t []Action, isExternal func(Action) bool,
	observe func(idx, owner int, act Action)) (int, error) {
	for idx, act := range t {
		if isExternal != nil && isExternal(act) {
			accepted := false
			for _, a := range sys.Automata() {
				if a.Accepts(act) {
					accepted = true
					break
				}
			}
			if !accepted {
				return idx, fmt.Errorf("ioa: external event %d (%v) accepted by no automaton", idx, act)
			}
			if observe != nil {
				observe(idx, -1, act)
			}
			sys.Apply(-1, act)
			continue
		}
		owner := -1
		for _, tr := range sys.Tasks() {
			if a, ok := sys.Enabled(tr); ok && a == act {
				owner = tr.Auto
				break
			}
		}
		if owner < 0 {
			return idx, fmt.Errorf("ioa: event %d (%v) not enabled by any task", idx, act)
		}
		if observe != nil {
			observe(idx, owner, act)
		}
		sys.Apply(owner, act)
	}
	return -1, nil
}
