package ioa

import "strconv"

// AppendEncoder is an optional Automaton extension: AppendEncode appends the
// automaton's canonical state encoding — byte-identical to Encode() — to dst
// and returns the extended slice, so hot paths that fingerprint states (the
// execution-tree explorer memoizes every reachable composed state) can reuse
// one buffer instead of materializing a string per component per state.
//
// Contract: AppendEncode(dst) must append exactly the bytes of Encode(), and
// like Encode must not mutate the automaton.
type AppendEncoder interface {
	AppendEncode(dst []byte) []byte
}

// sysEncSep separates component encodings inside a System encoding.
const sysEncSep = '\x1e'

// PostFireEncoder is an optional Automaton extension for delta encoders:
// AppendEncodePostFire appends the encoding the automaton WOULD have after
// Fire(a) — without mutating it — and reports whether it could.  A false
// return means the caller must fall back to Clone+Fire+Encode.  Useful for
// automata whose Fire only dequeues (process outboxes, channel queues): the
// successor encoding is rendered directly, skipping a deep clone.
//
// Contract: when ok, the appended bytes must equal Clone()+Fire(a)+Encode()
// exactly, and the receiver must be unchanged.
type PostFireEncoder interface {
	AppendEncodePostFire(a Action, dst []byte) (res []byte, ok bool)
}

// PostInputEncoder is the input-side analogue of PostFireEncoder:
// AppendEncodePostInput appends the encoding the automaton would have after
// Input(a), without mutating it, when it can do so cheaply.
//
// Contract: when ok, the appended bytes must equal Clone()+Input(a)+Encode()
// exactly, and the receiver must be unchanged.
type PostInputEncoder interface {
	AppendEncodePostInput(a Action, dst []byte) (res []byte, ok bool)
}

// EncSep is the byte separating component encodings inside a System
// encoding (one automaton encoding per segment, in composition order).
// Exposed for drivers that delta-encode a successor state by splicing
// changed component segments into the parent's encoding; component
// encodings normally never contain it, and splicers must verify that (a
// clean encoding of a k-automaton system contains exactly k−1 EncSep
// bytes) before trusting segment boundaries.
const EncSep = sysEncSep

// AppendEncode appends the canonical encoding of the composed state — the
// same bytes Encode returns — to dst and returns the extended slice.
// Components implementing AppendEncoder encode in place; the rest fall back
// to Encode().
func (s *System) AppendEncode(dst []byte) []byte {
	for i, a := range s.autos {
		if i > 0 {
			dst = append(dst, sysEncSep)
		}
		if ae, ok := a.(AppendEncoder); ok {
			dst = ae.AppendEncode(dst)
		} else {
			dst = append(dst, a.Encode()...)
		}
	}
	return dst
}

// EncodeHash returns a 64-bit FNV-1a hash of the canonical state encoding:
// equal states hash equal (it hashes exactly the bytes of Encode).  It is a
// fingerprint, not an identity — callers that key state on it must confirm
// collisions against the full encoding.
func (s *System) EncodeHash() uint64 {
	h := uint64(fnvOffset)
	var buf [256]byte
	scratch := buf[:0]
	for i, a := range s.autos {
		if i > 0 {
			h = (h ^ uint64(sysEncSep)) * fnvPrime
		}
		scratch = scratch[:0]
		if ae, ok := a.(AppendEncoder); ok {
			scratch = ae.AppendEncode(scratch)
		} else {
			scratch = append(scratch, a.Encode()...)
		}
		h = HashBytes(h, scratch)
	}
	return h
}

// FNV-1a 64-bit parameters.
const (
	fnvOffset = 0xcbf29ce484222325
	fnvPrime  = 0x100000001b3
)

// HashSeed is the initial value for HashBytes chains.
const HashSeed = uint64(fnvOffset)

// HashBytes folds b into the running FNV-1a hash h.
func HashBytes(h uint64, b []byte) uint64 {
	for _, c := range b {
		h = (h ^ uint64(c)) * fnvPrime
	}
	return h
}

// AppendTo appends the Action's String() rendering to dst without the
// fmt-driven allocations, for encoders that embed actions in state strings.
func (a Action) AppendTo(dst []byte) []byte {
	switch a.Kind {
	case 0:
		return append(dst, "⊥"...)
	case KindCrash:
		dst = append(dst, "crash_"...)
		return appendLoc(dst, a.Loc)
	case KindSend:
		dst = append(dst, "send("...)
		dst = append(dst, a.Payload...)
		dst = append(dst, ',')
		dst = appendLoc(dst, a.Peer)
		dst = append(dst, ")_"...)
		return appendLoc(dst, a.Loc)
	case KindReceive:
		dst = append(dst, "receive("...)
		dst = append(dst, a.Payload...)
		dst = append(dst, ',')
		dst = appendLoc(dst, a.Peer)
		dst = append(dst, ")_"...)
		return appendLoc(dst, a.Loc)
	default:
		dst = append(dst, a.Name...)
		if a.Payload != "" {
			dst = append(dst, '(')
			dst = append(dst, a.Payload...)
			dst = append(dst, ')')
		}
		dst = append(dst, '_')
		return appendLoc(dst, a.Loc)
	}
}

func appendLoc(dst []byte, l Loc) []byte {
	if l == NoLoc {
		return append(dst, "⊥"...)
	}
	return strconv.AppendInt(dst, int64(l), 10)
}
