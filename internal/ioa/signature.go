package ioa

// SigKey is the routing key of an action: every field that automata may
// condition acceptance on, except the payload.  Two actions with equal keys
// are delivered to the same set of automata, which is what lets a System
// precompute an action→acceptors index at composition time instead of
// querying every automaton's Accepts on every event.
//
// Payload is deliberately excluded: an automaton whose Accepts inspects the
// payload still works (the index routes by key and re-checks Accepts on the
// candidates), it just cannot narrow its routing below the key granularity.
type SigKey struct {
	Kind Kind
	Name string
	Loc  Loc
	Peer Loc
}

// KeyOf returns the routing key of a.
func KeyOf(a Action) SigKey {
	return SigKey{Kind: a.Kind, Name: a.Name, Loc: a.Loc, Peer: a.Peer}
}

// Signatured is the optional fast-path interface: an automaton that knows
// its input signature declares it as routing keys, and the System delivers
// only actions with a declared key to it (still filtered through Accepts, so
// declaring a superset is safe).
//
// Contract: SignatureKeys must return a key set covering every action the
// automaton's Accepts can ever return true for — if Accepts(a) holds then
// KeyOf(a) must be in the returned set.  An automaton violating this silently
// stops receiving the undeclared inputs.  Returning an empty (or nil) slice
// declares "no inputs at all" (e.g. the crash automaton).
//
// Automata that do not implement Signatured are consulted on every action,
// exactly as before the routing index existed.
type Signatured interface {
	Automaton
	// SignatureKeys returns the routing keys of the automaton's input
	// signature.  It is called once, at composition time; the result must
	// not depend on mutable state (Accepts is a pure function of the
	// action, Section 2.1, so the signature is fixed).
	SignatureKeys() []SigKey
}

// KeysOf is a convenience for building signature key lists from sample
// actions (payloads are ignored).
func KeysOf(acts ...Action) []SigKey {
	keys := make([]SigKey, len(acts))
	for i, a := range acts {
		keys[i] = KeyOf(a)
	}
	return keys
}

// FireLocalized is the optional fast-path interface for multi-task automata
// whose Fire effect is task-local.  After such an automaton fires, the
// System re-polls only the touched task instead of all of the automaton's
// tasks, making the per-event ready-set maintenance O(1) in the automaton's
// task count (the difference between O(n) and O(1) per event for the n-task
// detector generators).
//
// Contract: when FireTouches(a) returns t ≥ 0, Fire(a) must leave the
// enabledness AND the enabled action of every task other than t unchanged.
// Return -1 when the effect is not task-local (the System falls back to
// re-polling every task).  Inputs are unaffected: a consumed input always
// re-polls the whole accepting automaton, so state shared across tasks (e.g.
// a crash set that changes every task's output payload) stays exact as long
// as it only changes on Input.
type FireLocalized interface {
	Automaton
	// FireTouches returns the single task whose enabled action may differ
	// after Fire(a), or -1 if firing a may affect several tasks.
	FireTouches(a Action) int
}
