package ioa

import "fmt"

// CheckDeterminism replays a schedule and verifies the task-determinism
// contract of Section 2.5 plus the Clone contract:
//
//	(1) Enabled is stable: two consecutive queries in the same state return
//	    the same action;
//	(2) Clone isolates state: advancing the system leaves a prior clone's
//	    encoding untouched;
//	(3) transitions are deterministic: replaying the recorded actions from
//	    the cloned start state reproduces the final encoding exactly.
//
// The schedule is a sequence of task references; disabled tasks are skipped
// (that is the schedulers' behavior, not an error).  The system is advanced
// in place; pass a Clone to keep the original.
func CheckDeterminism(sys *System, schedule []TaskRef) error {
	snap := sys.CloneBare()
	snapEnc := snap.Encode()

	type firing struct {
		tr  TaskRef
		act Action
	}
	var fired []firing
	for step, tr := range schedule {
		if tr.Auto < 0 || tr.Auto >= len(sys.autos) {
			return fmt.Errorf("ioa: schedule step %d references automaton %d of %d", step, tr.Auto, len(sys.autos))
		}
		a1, ok1 := sys.Enabled(tr)
		a2, ok2 := sys.Enabled(tr)
		if ok1 != ok2 || a1 != a2 {
			return fmt.Errorf("ioa: step %d task %v: Enabled unstable (%v,%t vs %v,%t)",
				step, tr, a1, ok1, a2, ok2)
		}
		if !ok1 {
			continue
		}
		sys.Apply(tr.Auto, a1)
		fired = append(fired, firing{tr: tr, act: a1})
	}

	if snap.Encode() != snapEnc {
		return fmt.Errorf("ioa: advancing the system mutated a prior clone (Clone shares state)")
	}

	// Replay on the snapshot: same enabled actions, same final state.
	for i, f := range fired {
		act, ok := snap.Enabled(f.tr)
		if !ok || act != f.act {
			return fmt.Errorf("ioa: replay step %d task %v: enabled (%v,%t), recorded %v (nondeterministic)",
				i, f.tr, act, ok, f.act)
		}
		snap.Apply(f.tr.Auto, act)
	}
	if snap.Encode() != sys.Encode() {
		return fmt.Errorf("ioa: replay diverged from original run (nondeterministic transition or lossy Encode)")
	}
	return nil
}

// RoundRobinSchedule returns k cycles of the system's task list, the
// canonical fair schedule used with CheckDeterminism.
func RoundRobinSchedule(sys *System, cycles int) []TaskRef {
	tasks := sys.Tasks()
	out := make([]TaskRef, 0, len(tasks)*cycles)
	for c := 0; c < cycles; c++ {
		out = append(out, tasks...)
	}
	return out
}
