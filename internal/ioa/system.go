package ioa

import (
	"fmt"
	"strings"
)

// System is a composition of I/O automata (paper Section 2.3).  When a
// locally controlled action of one automaton fires, every other automaton
// that accepts the same Action value receives it as an input in the same
// step, exactly as same-named actions are performed together under
// composition.
//
// The System records the trace of external events as they occur.  Internal
// actions (KindInternal) are performed but not traced, which implements the
// paper's hiding operator for actions the owner declares internal.
type System struct {
	autos  []Automaton
	tasks  []TaskRef         // flattened task list, fixed at construction
	trace  []Action          // external events in order of occurrence
	steps  int               // total events fired (including internal)
	hidden func(Action) bool // reclassified-as-internal predicate, may be nil
}

// NewSystem composes the given automata.  It returns an error if two automata
// share a name (composition requires uniquely named components).
func NewSystem(autos ...Automaton) (*System, error) {
	seen := make(map[string]bool, len(autos))
	for _, a := range autos {
		if seen[a.Name()] {
			return nil, fmt.Errorf("ioa: duplicate automaton name %q in composition", a.Name())
		}
		seen[a.Name()] = true
	}
	s := &System{autos: autos}
	for ai, a := range autos {
		for t := 0; t < a.NumTasks(); t++ {
			s.tasks = append(s.tasks, TaskRef{Auto: ai, Task: t})
		}
	}
	return s, nil
}

// MustNewSystem is NewSystem for statically correct compositions; it panics
// on the construction errors NewSystem reports (programmer error).
func MustNewSystem(autos ...Automaton) *System {
	s, err := NewSystem(autos...)
	if err != nil {
		panic(err)
	}
	return s
}

// Automata returns the composed automata in order.
func (s *System) Automata() []Automaton { return s.autos }

// Automaton returns the component with the given name, or nil.
func (s *System) Automaton(name string) Automaton {
	for _, a := range s.autos {
		if a.Name() == name {
			return a
		}
	}
	return nil
}

// Tasks returns the flattened task list of the composition.  The returned
// slice is owned by the System and must not be modified.
func (s *System) Tasks() []TaskRef { return s.tasks }

// TaskLabel renders tr as "automaton/task-label".
func (s *System) TaskLabel(tr TaskRef) string {
	a := s.autos[tr.Auto]
	return a.Name() + "/" + a.TaskLabel(tr.Task)
}

// Enabled returns the action enabled in task tr, if any.
func (s *System) Enabled(tr TaskRef) (Action, bool) {
	return s.autos[tr.Auto].Enabled(tr.Task)
}

// Step fires the action enabled in task tr, if any, delivering it to every
// accepting automaton.  It returns the fired action and whether the task was
// enabled.  The action is appended to the trace unless it is internal.
func (s *System) Step(tr TaskRef) (Action, bool) {
	owner := s.autos[tr.Auto]
	act, ok := owner.Enabled(tr.Task)
	if !ok {
		return Action{}, false
	}
	s.Apply(tr.Auto, act)
	return act, true
}

// Apply performs action act owned by automaton index owner: the owner's Fire
// effect, then delivery to every other accepting automaton, then trace
// recording.  It is exposed for drivers (such as the execution tree of
// Section 8) that feed externally sourced events — e.g. failure-detector
// outputs taken from a fixed trace tD — by passing owner = -1, in which case
// no Fire is applied and the action is delivered to acceptors only.
func (s *System) Apply(owner int, act Action) {
	if owner >= 0 {
		s.autos[owner].Fire(act)
	}
	for i, a := range s.autos {
		if i == owner {
			continue
		}
		if a.Accepts(act) {
			a.Input(act)
		}
	}
	s.steps++
	if act.Kind != KindInternal && (s.hidden == nil || !s.hidden(act)) {
		s.trace = append(s.trace, act)
	}
}

// Hide reclassifies matching actions as internal to the composition (the
// hiding operator of Section 2.3): they still synchronize all component
// automata but no longer appear in the trace.  Hiding composes: multiple
// calls hide the union.
func (s *System) Hide(pred func(Action) bool) {
	prev := s.hidden
	if prev == nil {
		s.hidden = pred
		return
	}
	s.hidden = func(a Action) bool { return prev(a) || pred(a) }
}

// Trace returns the external events recorded so far.  The returned slice is
// owned by the System; callers must copy before mutating.
func (s *System) Trace() []Action { return s.trace }

// Steps returns the total number of events performed, including internal.
func (s *System) Steps() int { return s.steps }

// Quiescent reports whether no task of the composition is enabled.
func (s *System) Quiescent() bool {
	for _, tr := range s.tasks {
		if _, ok := s.Enabled(tr); ok {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the system, including its automata and trace.
func (s *System) Clone() *System {
	autos := make([]Automaton, len(s.autos))
	for i, a := range s.autos {
		autos[i] = a.Clone()
	}
	c := &System{
		autos:  autos,
		tasks:  s.tasks, // immutable after construction
		steps:  s.steps,
		hidden: s.hidden,
	}
	c.trace = append([]Action(nil), s.trace...)
	return c
}

// CloneBare returns a deep copy of the system with an empty trace.  Drivers
// that maintain their own event bookkeeping (the execution tree) use this to
// avoid O(trace) copies per node.
func (s *System) CloneBare() *System {
	autos := make([]Automaton, len(s.autos))
	for i, a := range s.autos {
		autos[i] = a.Clone()
	}
	return &System{autos: autos, tasks: s.tasks, steps: s.steps, hidden: s.hidden}
}

// Encode returns a canonical encoding of the composed state: the automaton
// encodings joined in composition order.  Two systems with equal Encode are
// in identical states (the paper's config tags, Section 8.2).
func (s *System) Encode() string {
	var b strings.Builder
	for i, a := range s.autos {
		if i > 0 {
			b.WriteByte('\x1e')
		}
		b.WriteString(a.Encode())
	}
	return b.String()
}
