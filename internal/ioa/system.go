package ioa

import (
	"fmt"
	"math/bits"
	"strings"

	"repro/internal/telemetry"
)

// System is a composition of I/O automata (paper Section 2.3).  When a
// locally controlled action of one automaton fires, every other automaton
// that accepts the same Action value receives it as an input in the same
// step, exactly as same-named actions are performed together under
// composition.
//
// The System records the trace of external events as they occur.  Internal
// actions (KindInternal) are performed but not traced, which implements the
// paper's hiding operator for actions the owner declares internal.
//
// Two structures make stepping O(affected) instead of O(composition):
//
//   - an action-routing index, built at composition time: automata that
//     implement Signatured are delivered only actions whose SigKey they
//     declared; the rest land on a wildcard list consulted for every action.
//     Candidates are still filtered through Accepts, so routing never
//     changes which automata receive an action — only how they are found.
//   - an incremental ready-set: a bitset over the flattened task list with
//     the enabled action cached per task.  An event can only change the
//     enabledness of the firing automaton and the acceptors it was delivered
//     to (Enabled is a function of the automaton's own state, see the
//     Automaton contract), so Apply re-polls exactly those automata's tasks.
//     Schedulers iterate ready tasks via NextReady instead of rescanning
//     Tasks(); iteration order is ascending task index, which matches the
//     pre-index full-scan order, so schedules are unchanged.
type System struct {
	autos    []Automaton
	tasks    []TaskRef        // flattened task list, fixed at construction
	taskBase []int            // automaton index -> first flattened task index; len(autos)+1 entries
	routes   map[SigKey][]int // routing index: key -> ascending automaton indices
	wildcard []int            // ascending indices of automata without SignatureKeys
	fireLoc  []FireLocalized  // cached FireLocalized view per automaton, nil entries otherwise
	ready    []uint64         // bitset over flattened task indices
	readyAct []Action         // cached enabled action per ready task
	// Per-task routing cache for the scheduler fast path (ApplyReady): the
	// merged delivery-candidate list of readyAct's signature key, refreshed
	// by repollOne only when the key changes.  A task's key is stable in
	// steady state (a generator task always emits the same output key, a
	// channel task the same receive key), so the per-event SigKey hash +
	// routes lookup amortizes to zero.  nil on clones — execution-tree
	// drivers apply via Apply and would pay O(tasks) to copy the cache.
	readyKey   []SigKey
	readyCands [][]int
	dirty      []int             // scratch: automata touched by the current Apply
	cands      []int             // scratch: merged delivery candidates of the current Apply
	trace      []Action          // external events, per traceMode
	traceMode  TraceMode         // how Apply records visible events
	traceCap   int               // ring capacity when traceMode == TraceRing
	traceStart int               // ring: index of the oldest retained event
	steps      int               // total events fired (including internal)
	hidden     func(Action) bool // reclassified-as-internal predicate, may be nil
	observer   Observer          // post-Apply hook, nil when no oracle attached
	tel        telemetry.Sink    // metric/trace sink, nil when telemetry is off
	telTrace   bool              // sink's tracing plane active: format rich trace labels
}

// TraceMode selects how Apply records visible (external, un-hidden) events.
// Routing, delivery, the ready-set, Steps, telemetry, and observers are
// identical under every mode — only what Trace() retains differs, so a run's
// schedule is byte-for-byte independent of its trace mode.
type TraceMode uint8

const (
	// TraceAll retains every visible event forever (the default, and the
	// only correct mode for checkers, golden traces, and chaos artifacts,
	// which consume complete traces).
	TraceAll TraceMode = iota
	// TraceOff retains nothing.  For throughput benchmarks and drivers
	// that maintain their own event bookkeeping: a 100k-step run no longer
	// accumulates 100k Actions of garbage-collected history.
	TraceOff
	// TraceRing retains the most recent cap events in a ring, bounding
	// steady-state heap for long-running drivers that only inspect a
	// suffix.
	TraceRing
)

// SetTraceMode switches the trace retention policy.  cap is the ring
// capacity for TraceRing (values < 1 fall back to TraceAll) and ignored
// otherwise.  Switching modes mid-run keeps the events already retained;
// switching to TraceRing trims to the newest cap.  Clones inherit the mode.
func (s *System) SetTraceMode(m TraceMode, cap int) {
	if m == TraceRing && cap < 1 {
		m = TraceAll
	}
	// Normalize the retained prefix so the new mode starts from a flat,
	// in-order slice.
	s.trace = s.Trace()
	s.traceStart = 0
	s.traceMode, s.traceCap = m, cap
	if m == TraceRing && len(s.trace) > cap {
		s.trace = append(s.trace[:0], s.trace[len(s.trace)-cap:]...)
	}
}

// Observer is notified after every Apply, once the event's effects (owner
// Fire, deliveries, trace recording, ready-set maintenance) are complete.
// owner is the firing automaton's index, or -1 for externally injected
// events.  Observers exist for invariant layers (package oracle) that
// cross-check the fast-path structures after each event; they must not
// mutate the system.  A nil observer costs one predictable branch per Apply.
type Observer func(owner int, act Action)

// SetObserver installs (or, with nil, removes) the post-Apply observer.
// Clones never inherit the observer: an observer typically closes over its
// system, and execution-tree drivers clone thousands of systems per run.
func (s *System) SetObserver(o Observer) { s.observer = o }

// SetTelemetry installs (or, with nil, removes) the system's telemetry sink.
// Like the observer, clones never inherit it: execution-tree drivers clone
// thousands of systems per run, and their steps would drown the trace.  The
// disabled path is one predictable branch per Apply; instrumentation is
// strictly read-only, so golden traces are byte-identical with a sink on.
//
// Whether the sink's tracing plane is active (telemetry.TraceSensing) is
// sampled here, once: rich per-event trace labels are only formatted when
// someone will actually export the trace ring, keeping the metrics-only
// steady state allocation-free.
func (s *System) SetTelemetry(tel telemetry.Sink) {
	s.tel = tel
	s.telTrace = false
	if ts, ok := tel.(telemetry.TraceSensing); ok && ts.TracingActive() {
		s.telTrace = true
	}
}

// NewSystem composes the given automata.  It returns an error if two automata
// share a name (composition requires uniquely named components).
func NewSystem(autos ...Automaton) (*System, error) {
	seen := make(map[string]bool, len(autos))
	for _, a := range autos {
		if seen[a.Name()] {
			return nil, fmt.Errorf("ioa: duplicate automaton name %q in composition", a.Name())
		}
		seen[a.Name()] = true
	}
	s := &System{autos: autos, routes: make(map[SigKey][]int)}
	s.taskBase = make([]int, len(autos)+1)
	s.fireLoc = make([]FireLocalized, len(autos))
	for ai, a := range autos {
		s.taskBase[ai] = len(s.tasks)
		for t := 0; t < a.NumTasks(); t++ {
			s.tasks = append(s.tasks, TaskRef{Auto: ai, Task: t})
		}
		if sig, ok := a.(Signatured); ok {
			for _, k := range sig.SignatureKeys() {
				s.routes[k] = append(s.routes[k], ai)
			}
		} else {
			s.wildcard = append(s.wildcard, ai)
		}
		if fl, ok := a.(FireLocalized); ok {
			s.fireLoc[ai] = fl
		}
	}
	s.taskBase[len(autos)] = len(s.tasks)
	s.ready = make([]uint64, (len(s.tasks)+63)/64)
	s.readyAct = make([]Action, len(s.tasks))
	s.readyKey = make([]SigKey, len(s.tasks))
	s.readyCands = make([][]int, len(s.tasks))
	for ai := range autos {
		s.repoll(ai)
	}
	return s, nil
}

// MustNewSystem is NewSystem for statically correct compositions; it panics
// on the construction errors NewSystem reports (programmer error).
func MustNewSystem(autos ...Automaton) *System {
	s, err := NewSystem(autos...)
	if err != nil {
		panic(err)
	}
	return s
}

// Automata returns the composed automata in order.
func (s *System) Automata() []Automaton { return s.autos }

// Automaton returns the component with the given name, or nil.
func (s *System) Automaton(name string) Automaton {
	for _, a := range s.autos {
		if a.Name() == name {
			return a
		}
	}
	return nil
}

// Tasks returns the flattened task list of the composition.  The returned
// slice is owned by the System and must not be modified.
func (s *System) Tasks() []TaskRef { return s.tasks }

// TaskAt returns the task with the given flattened index (the index NextReady
// iterates over; tasks of one automaton are contiguous).
func (s *System) TaskAt(idx int) TaskRef { return s.tasks[idx] }

// TaskLabel renders tr as "automaton/task-label".
func (s *System) TaskLabel(tr TaskRef) string {
	a := s.autos[tr.Auto]
	return a.Name() + "/" + a.TaskLabel(tr.Task)
}

// Enabled returns the action enabled in task tr, if any.
func (s *System) Enabled(tr TaskRef) (Action, bool) {
	return s.autos[tr.Auto].Enabled(tr.Task)
}

// repoll refreshes the ready-set entries of every task of automaton ai.
func (s *System) repoll(ai int) {
	a := s.autos[ai]
	for idx := s.taskBase[ai]; idx < s.taskBase[ai+1]; idx++ {
		s.repollOne(a, ai, idx)
	}
}

// repollOne refreshes the ready-set entry of the single flattened task idx,
// which must belong to automaton ai.
func (s *System) repollOne(a Automaton, ai, idx int) {
	if act, ok := a.Enabled(idx - s.taskBase[ai]); ok {
		s.ready[idx>>6] |= 1 << (uint(idx) & 63)
		s.readyAct[idx] = act
		if s.readyCands != nil {
			// Refresh the routing cache only on key change (a real key's
			// Kind is non-zero, so the zero value never false-hits).
			if k := KeyOf(act); k != s.readyKey[idx] {
				s.readyKey[idx] = k
				s.readyCands[idx] = s.appendCandidates(act, s.readyCands[idx][:0])
			}
		}
	} else {
		s.ready[idx>>6] &^= 1 << (uint(idx) & 63)
		s.readyAct[idx] = Action{}
	}
}

// NextReady returns the smallest ready (enabled) task index greater than
// after, or ok=false when none remains.  Pass -1 to start a scan.  The
// ready-set is maintained incrementally by Apply, so iterating with
// NextReady while firing is equivalent to polling every task of Tasks() in
// order against the current state.
func (s *System) NextReady(after int) (int, bool) {
	idx := after + 1
	if idx < 0 {
		idx = 0
	}
	for w := idx >> 6; w < len(s.ready); w++ {
		word := s.ready[w]
		if w == idx>>6 {
			word &= ^uint64(0) << (uint(idx) & 63)
		}
		if word != 0 {
			return w<<6 + bits.TrailingZeros64(word), true
		}
	}
	return 0, false
}

// TaskReady reports whether the task with flattened index idx is enabled.
func (s *System) TaskReady(idx int) bool {
	return s.ready[idx>>6]&(1<<(uint(idx)&63)) != 0
}

// ReadyAction returns the cached enabled action of ready task idx.  It is
// only meaningful while TaskReady(idx) holds (callers obtain idx from
// NextReady and must not hold it across an Apply).
func (s *System) ReadyAction(idx int) Action { return s.readyAct[idx] }

// NumReady returns the number of currently enabled tasks.
func (s *System) NumReady() int {
	n := 0
	for _, w := range s.ready {
		n += bits.OnesCount64(w)
	}
	return n
}

// Step fires the action enabled in task tr, if any, delivering it to every
// accepting automaton.  It returns the fired action and whether the task was
// enabled.  The action is appended to the trace unless it is internal.
func (s *System) Step(tr TaskRef) (Action, bool) {
	owner := s.autos[tr.Auto]
	act, ok := owner.Enabled(tr.Task)
	if !ok {
		return Action{}, false
	}
	s.Apply(tr.Auto, act)
	return act, true
}

// Apply performs action act owned by automaton index owner: the owner's Fire
// effect, then delivery to every other accepting automaton, then trace
// recording.  It is exposed for drivers (such as the execution tree of
// Section 8) that feed externally sourced events — e.g. failure-detector
// outputs taken from a fixed trace tD — by passing owner = -1, in which case
// no Fire is applied and the action is delivered to acceptors only.
//
// Delivery candidates come from the routing index (declared-key automata for
// KeyOf(act), merged with the wildcard list in ascending automaton order —
// the same visit order as the pre-index scan over all automata) and are
// filtered through Accepts, so the delivered-to set is exactly the set the
// full scan would find.
func (s *System) Apply(owner int, act Action) {
	s.cands = s.appendCandidates(act, s.cands[:0])
	s.applyWith(owner, act, s.cands)
}

// ApplyReady fires the cached ready action of flattened task idx — the
// (task, action) pair a scheduler just obtained from NextReady/ReadyAction —
// through the task's cached routing candidates, skipping the per-event
// SigKey hash and routes lookup.  Returns the fired action.  It is exactly
// Apply(TaskAt(idx).Auto, ReadyAction(idx)); on systems without the routing
// cache (clones) it falls back to Apply.  Only meaningful while
// TaskReady(idx) holds.
func (s *System) ApplyReady(idx int) Action {
	act := s.readyAct[idx]
	owner := s.tasks[idx].Auto
	if s.readyCands == nil {
		s.Apply(owner, act)
		return act
	}
	// Copy out of the cache before firing: the owner's Fire re-poll may
	// refresh this very task's cached candidate list in place.
	s.cands = append(s.cands[:0], s.readyCands[idx]...)
	s.applyWith(owner, act, s.cands)
	return act
}

// applyWith is the shared Apply core; cands must be the merged delivery
// candidates for act (appendCandidates order) and must not alias any
// per-task cache entry.
func (s *System) applyWith(owner int, act Action, cands []int) {
	s.dirty = s.dirty[:0]
	if owner >= 0 {
		s.autos[owner].Fire(act)
		if fl := s.fireLoc[owner]; fl != nil {
			// Task-local fire: re-poll just the touched task now (the
			// acceptors' inputs cannot change the owner's state).
			if t := fl.FireTouches(act); t >= 0 {
				s.repollOne(s.autos[owner], owner, s.taskBase[owner]+t)
			} else {
				s.dirty = append(s.dirty, owner)
			}
		} else {
			s.dirty = append(s.dirty, owner)
		}
	}
	// Each delivery appends its acceptor to s.dirty, so the delivery count
	// falls out of the slice growth.  The candidate merge landed in a
	// scratch slice (not a closure) so the steady-state apply performs no
	// allocation at all.
	dirtyBase := len(s.dirty)
	for _, ai := range cands {
		if ai == owner {
			continue
		}
		if a := s.autos[ai]; a.Accepts(act) {
			a.Input(act)
			s.dirty = append(s.dirty, ai)
		}
	}
	ndeliv := len(s.dirty) - dirtyBase
	s.steps++
	if act.Kind != KindInternal && (s.hidden == nil || !s.hidden(act)) {
		switch s.traceMode {
		case TraceAll:
			s.trace = append(s.trace, act)
		case TraceRing:
			if len(s.trace) < s.traceCap {
				s.trace = append(s.trace, act)
			} else {
				s.trace[s.traceStart] = act
				if s.traceStart++; s.traceStart == s.traceCap {
					s.traceStart = 0
				}
			}
		}
	}
	// Only the owner and the automata that consumed the input can have
	// changed state, hence enabledness (Automaton contract: Enabled depends
	// on the receiver's own state only).
	for _, ai := range s.dirty {
		s.repoll(ai)
	}
	if s.tel != nil {
		s.telemetryApply(owner, act, ndeliv)
	}
	if s.observer != nil {
		s.observer(owner, act)
	}
}

// telemetryApply records the completed event in the attached sink.  Only
// called when s.tel != nil; kept out of Apply's body so the disabled path
// stays a single branch.
func (s *System) telemetryApply(owner int, act Action, ndeliv int) {
	s.tel.Count(telemetry.CEventsApplied, 1)
	if ndeliv > 0 {
		s.tel.Count(telemetry.CDeliveries, int64(ndeliv))
	}
	if act.Kind == KindCrash {
		s.tel.Count(telemetry.CCrashes, 1)
		// act.String() allocates; only pay for the rich label when the
		// sink's tracing plane will actually export it.
		name := act.Name
		if s.telTrace {
			name = act.String()
		}
		s.tel.Instant(telemetry.CatCrash, name, int32(owner), int64(ndeliv))
	} else {
		s.tel.Instant(telemetry.CatIOA, act.Name, int32(owner), int64(ndeliv))
	}
}

// appendCandidates appends the routing index's delivery candidates for act
// to out — the declared-key automata for KeyOf(act) merged with the wildcard
// list in ascending automaton order (the same visit order as the pre-index
// full scan).  Candidates still need Accepts filtering; both Apply and the
// oracle's delivery-set check go through this one merge so the checked set
// and the executed set cannot silently diverge.
func (s *System) appendCandidates(act Action, out []int) []int {
	keyed := s.routes[KeyOf(act)]
	i, j := 0, 0
	for i < len(keyed) || j < len(s.wildcard) {
		var ai int
		switch {
		case i >= len(keyed):
			ai = s.wildcard[j]
			j++
		case j >= len(s.wildcard) || keyed[i] < s.wildcard[j]:
			ai = keyed[i]
			i++
		default:
			ai = s.wildcard[j]
			j++
		}
		out = append(out, ai)
	}
	return out
}

// DeliveryCandidates appends the ascending automaton indices the routing
// index would consider for act — before Accepts filtering — to buf[:0] and
// returns it, so a sweeping caller can reuse one buffer across sweeps
// instead of allocating per call.  Exposed for the oracle layer, which diffs
// this set against a first-principles scan of all automata.
func (s *System) DeliveryCandidates(act Action, buf []int) []int {
	return s.appendCandidates(act, buf[:0])
}

// Hide reclassifies matching actions as internal to the composition (the
// hiding operator of Section 2.3): they still synchronize all component
// automata but no longer appear in the trace.  Hiding composes: multiple
// calls hide the union.  Hiding never affects routing or the ready-set —
// hidden actions are delivered exactly like visible ones.
func (s *System) Hide(pred func(Action) bool) {
	prev := s.hidden
	if prev == nil {
		s.hidden = pred
		return
	}
	s.hidden = func(a Action) bool { return prev(a) || pred(a) }
}

// Trace returns the retained external events in order of occurrence: all of
// them under TraceAll, the newest traceCap under TraceRing, none under
// TraceOff.  The returned slice is owned by the System except when a wrapped
// ring must be unrotated; callers must copy before mutating either way.
func (s *System) Trace() []Action {
	if s.traceMode == TraceRing && s.traceStart > 0 {
		out := make([]Action, 0, len(s.trace))
		out = append(out, s.trace[s.traceStart:]...)
		return append(out, s.trace[:s.traceStart]...)
	}
	return s.trace
}

// Steps returns the total number of events performed, including internal.
func (s *System) Steps() int { return s.steps }

// Quiescent reports whether no task of the composition is enabled.
func (s *System) Quiescent() bool {
	for _, w := range s.ready {
		if w != 0 {
			return false
		}
	}
	return true
}

// cloneInto copies the per-execution state into a System sharing the
// immutable composition structure (tasks, taskBase, routes, wildcard).
func (s *System) cloneInto() *System {
	autos := make([]Automaton, len(s.autos))
	for i, a := range s.autos {
		autos[i] = a.Clone()
	}
	return s.cloneWith(autos)
}

// cloneWith wraps an already-built automaton list in a copy of s's
// per-execution state.
func (s *System) cloneWith(autos []Automaton) *System {
	c := &System{
		autos:     autos,
		tasks:     s.tasks,
		taskBase:  s.taskBase,
		routes:    s.routes,
		wildcard:  s.wildcard,
		steps:     s.steps,
		hidden:    s.hidden,
		traceMode: s.traceMode,
		traceCap:  s.traceCap,
	}
	c.fireLoc = make([]FireLocalized, len(autos))
	for i, a := range autos {
		if fl, ok := a.(FireLocalized); ok {
			c.fireLoc[i] = fl
		}
	}
	c.ready = append([]uint64(nil), s.ready...)
	c.readyAct = append([]Action(nil), s.readyAct...)
	return c
}

// Clone returns a deep copy of the system, including its automata and trace.
func (s *System) Clone() *System {
	c := s.cloneInto()
	c.trace = append([]Action(nil), s.trace...)
	c.traceStart = s.traceStart
	return c
}

// CloneBare returns a deep copy of the system with an empty trace.  Drivers
// that maintain their own event bookkeeping (the execution tree) use this to
// avoid O(trace) copies per node.
func (s *System) CloneBare() *System { return s.cloneInto() }

// CloneForApply returns a copy prepared for exactly one Apply(owner, act):
// the automata that apply will mutate — the owner and every accepting
// delivery candidate — are deep-cloned; all others are SHARED with s.
// cands must be DeliveryCandidates(act, ...) (any superset of the accepting
// set is safe).  The trace is empty, like CloneBare.
//
// Sharing is only sound when s itself will never fire another action: the
// execution-tree explorer derives each child state from a parent system
// that is frozen after its own derivation, so untouched automata — the
// vast majority per event — need no copy.  Callers that cannot guarantee
// the parent is frozen must use CloneBare.
func (s *System) CloneForApply(owner int, act Action, cands []int) *System {
	autos := make([]Automaton, len(s.autos))
	copy(autos, s.autos)
	if owner >= 0 {
		autos[owner] = s.autos[owner].Clone()
	}
	for _, ai := range cands {
		if ai == owner {
			continue
		}
		if a := s.autos[ai]; a.Accepts(act) {
			autos[ai] = a.Clone()
		}
	}
	return s.cloneWith(autos)
}

// Encode returns a canonical encoding of the composed state: the automaton
// encodings joined in composition order.  Two systems with equal Encode are
// in identical states (the paper's config tags, Section 8.2).
func (s *System) Encode() string {
	var b strings.Builder
	for i, a := range s.autos {
		if i > 0 {
			b.WriteByte('\x1e')
		}
		b.WriteString(a.Encode())
	}
	return b.String()
}
