package ioa

import "sort"

// Per-action footprint and per-automaton site metadata, derived entirely
// from the routing index (SigKey ownership).  The partial-order reduction
// in package valence builds its independence relation on these: two steps
// whose footprints are disjoint commute, and footprints can be clustered by
// location because every delivery of an action lands on automata that
// declared a key with that action's Loc.
//
// Site derivation rests on two structural facts of Signatured compositions:
//
//   - An automaton's declared keys name the only locations whose actions
//     can ever be delivered to it (the routing index delivers act only to
//     automata that declared KeyOf(act), and Accepts is a pure function of
//     the action).  So the unique Loc over an automaton's keys — its input
//     site — is the only location whose steps can change its state from
//     outside.
//
//   - Automata either fire where they listen (processes, environments:
//     every locally controlled action occurs at the key location), or are
//     unidirectional FIFO channels that accept send(m, to)_from and fire
//     receive(m, from)_to — recognizable as the only automata declaring
//     KindSend keys, firing at the key's Peer.
//
// The derived fire site is a *claim*, not a proof: the valence engine
// re-checks it against every enabled action it sees (an action enabled on a
// task of automaton A must occur at Site(A).Fire) and falls back to full,
// unreduced expansion for any node where the claim fails, so a composition
// violating the convention loses reduction, never soundness.

// QuiescentReporter is an optional automaton capability: Quiescent reports
// that the automaton's state is final — it will never fire again and every
// input leaves its state (and encoding) byte-identical.  A crashed process
// is the canonical case.  The valence reduction uses it to prove that
// future deliveries into a location touch only their own channel.
type QuiescentReporter interface {
	Quiescent() bool
}

// SendProspector is an optional automaton capability: CanSend reports
// whether any future input sequence could lead the automaton to fire a
// KindSend action beyond those PendingProspects already enumerates — fresh
// sends, not the queued ones.  Automata that never send (consensus
// environments), or whose protocol structure bounds their sends (a machine
// past its last broadcast), return false and let the valence reduction
// prove that a drained channel out of their location can never refill.
// Implementations must over-approximate: returning false when some input
// sequence could still produce a fresh send is unsound.
type SendProspector interface {
	CanSend() bool
}

// PendingProspect is an optional automaton capability: PendingProspects
// calls yield for every locally controlled action the automaton might fire
// assuming it receives no further inputs (yield returning false stops the
// enumeration).  For a process this is its queued outbox; for an
// environment, its still-enabled outputs.  Implementations must
// over-approximate the reachable-without-input set; omitting a fireable
// action is unsound, listing extra ones merely costs reduction.
type PendingProspect interface {
	PendingProspects(yield func(Action) bool)
}

// SiteInfo is the location metadata of one automaton of a composition.
type SiteInfo struct {
	// Input is the unique location of the automaton's declared input keys:
	// the only location whose steps can write this automaton's state.
	Input Loc
	// Fire is the location at which the automaton's locally controlled
	// actions occur (for KindSend-keyed automata, the key's Peer — the
	// channel convention; otherwise equal to Input).
	Fire Loc
}

// Sites derives per-automaton site metadata from the routing index.  It
// reports ok=false — and the caller must not reduce — when any automaton is
// unsited: not Signatured (wildcard routing defeats location clustering),
// declaring no keys at all, or declaring keys at several locations.
func (s *System) Sites() ([]SiteInfo, bool) {
	if len(s.wildcard) > 0 {
		return nil, false
	}
	sites := make([]SiteInfo, len(s.autos))
	for i := range sites {
		sites[i] = SiteInfo{Input: NoLoc, Fire: NoLoc}
	}
	for key, autos := range s.routes {
		for _, ai := range autos {
			st := &sites[ai]
			if st.Input == NoLoc {
				st.Input = key.Loc
			} else if st.Input != key.Loc {
				return nil, false // keys at several locations
			}
			if key.Kind == KindSend {
				if st.Fire == NoLoc {
					st.Fire = key.Peer
				} else if st.Fire != key.Peer {
					return nil, false // sends toward several peers
				}
			}
		}
	}
	for i := range sites {
		if sites[i].Input == NoLoc || sites[i].Input < 0 {
			return nil, false // no keys, or keys at ⊥
		}
		if sites[i].Fire == NoLoc {
			sites[i].Fire = sites[i].Input
		}
		if sites[i].Fire < 0 {
			return nil, false
		}
	}
	return sites, true
}

// ReceiveAcceptors returns, per location 0..n-1, the ascending indices of
// the automata declaring a KindReceive key at that location — the automata
// a cross-location channel delivery can write besides the channel itself.
func (s *System) ReceiveAcceptors(n int) [][]int {
	out := make([][]int, n)
	for key, autos := range s.routes {
		if key.Kind != KindReceive || int(key.Loc) < 0 || int(key.Loc) >= n {
			continue
		}
		for _, ai := range autos {
			seen := false
			for _, have := range out[key.Loc] {
				if have == ai {
					seen = true
					break
				}
			}
			if !seen {
				out[key.Loc] = append(out[key.Loc], ai)
			}
		}
	}
	for m := range out {
		sort.Ints(out[m])
	}
	return out
}

// ActionFootprint appends to buf the ascending indices of every automaton
// whose state may change when act fires with the given owner: the owner
// itself (owner ≥ 0) merged with the Accepts-filtered delivery candidates.
// This is exactly the set applyWith mutates, so two actions with disjoint
// footprints commute byte-for-byte.  The result depends only on the
// composition's routing index and the automata's (pure) Accepts predicates,
// never on mutable state, so any System of the composition answers alike.
func (s *System) ActionFootprint(owner int, act Action, buf []int) []int {
	buf = s.appendCandidates(act, buf[:0])
	w := 0
	for _, ai := range buf {
		if s.autos[ai].Accepts(act) {
			buf[w] = ai
			w++
		}
	}
	buf = buf[:w]
	if owner >= 0 {
		pos := 0
		for pos < len(buf) && buf[pos] < owner {
			pos++
		}
		if pos == len(buf) || buf[pos] != owner {
			buf = append(buf, 0)
			copy(buf[pos+1:], buf[pos:])
			buf[pos] = owner
		}
	}
	return buf
}
