// Package ioa implements the I/O automata framework of Lynch (Distributed
// Algorithms, ch. 8) as used by Cornejo, Lynch, and Sastry in "Asynchronous
// Failure Detectors" (Section 2 of the paper).
//
// An automaton is a (task-deterministic) state machine that interacts with
// other automata through named external actions.  A collection of automata is
// composed into a System; output actions of one automaton are matched with
// same-valued input actions of others and performed together.  Executions are
// produced by schedulers (package sched) that repeatedly pick an enabled task.
//
// Compared to the mathematical framework, automata here are mutable Go values
// that additionally support Clone (deep state copy, used by the execution-tree
// machinery of the paper's Section 8) and Encode (a canonical state string,
// used to collapse the infinite execution tree into a finite reachable graph).
package ioa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Loc identifies a location (the paper's set Π of n location IDs).  Locations
// are numbered 0..n-1.  NoLoc is the paper's ⊥ placeholder: the location of an
// action that occurs at no location.
type Loc int

// NoLoc is the ⊥ location.
const NoLoc Loc = -1

// String returns "⊥" for NoLoc and the decimal index otherwise.
func (l Loc) String() string {
	if l == NoLoc {
		return "⊥"
	}
	return strconv.Itoa(int(l))
}

// Kind classifies actions by their role in the Figure-1 system model.  The
// classification into input/output/internal is per automaton (an output of the
// channel automaton is an input of a process automaton); Kind instead records
// what the action *is*, which is what specifications quantify over.
type Kind uint8

// Action kinds.  Enums start at one so the zero Action is invalid and easy to
// detect (the zero value doubles as the paper's ⊥ action).
const (
	// KindCrash is a crashi event (an element of the paper's set Iˆ).
	KindCrash Kind = iota + 1
	// KindSend is send(m, j)i: process i sends message m to process j.
	KindSend
	// KindReceive is receive(m, i)j: process j receives message m from i.
	KindReceive
	// KindFD is a failure-detector output event at a location (an element
	// of OD for some AFD D).
	KindFD
	// KindEnvIn is an input from the environment to a process automaton
	// (e.g. propose(v)i in the consensus environment of Algorithm 4).
	KindEnvIn
	// KindEnvOut is an output from a process automaton to the environment
	// (e.g. decide(v)i).
	KindEnvOut
	// KindInternal is an internal action of some automaton.
	KindInternal
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case KindCrash:
		return "crash"
	case KindSend:
		return "send"
	case KindReceive:
		return "receive"
	case KindFD:
		return "fd"
	case KindEnvIn:
		return "envin"
	case KindEnvOut:
		return "envout"
	case KindInternal:
		return "internal"
	default:
		return "invalid"
	}
}

// Action is a named action occurrence template.  Actions are pure values and
// are comparable: two automata interact on an action exactly when they name
// the same Action value, mirroring the paper's matching of same-named actions
// under composition (Section 2.3).
//
// The fields are:
//
//	Kind    – the role of the action in the system model;
//	Name    – the action family, e.g. "FD-Ω", "propose", "decide", or a
//	          message tag for send/receive;
//	Loc     – the location at which the action occurs (loc(a) in the paper);
//	Peer    – the other location for send/receive (the j in send(m, j)i and
//	          the i in receive(m, i)j); NoLoc otherwise;
//	Payload – a canonical string encoding of the action's parameter (the
//	          message m, the FD output value, the proposed value, ...).
//
// The zero Action is not a valid action and stands in for the paper's ⊥.
type Action struct {
	Kind    Kind
	Name    string
	Loc     Loc
	Peer    Loc
	Payload string
}

// IsZero reports whether a is the ⊥ (absent) action.
func (a Action) IsZero() bool { return a.Kind == 0 }

// String renders the action in the paper's notation, e.g. "crash_1",
// "send(m,2)_0", "FD-Ω(1)_2".
func (a Action) String() string {
	switch a.Kind {
	case 0:
		return "⊥"
	case KindCrash:
		return fmt.Sprintf("crash_%v", a.Loc)
	case KindSend:
		return fmt.Sprintf("send(%s,%v)_%v", a.Payload, a.Peer, a.Loc)
	case KindReceive:
		return fmt.Sprintf("receive(%s,%v)_%v", a.Payload, a.Peer, a.Loc)
	default:
		if a.Payload == "" {
			return fmt.Sprintf("%s_%v", a.Name, a.Loc)
		}
		return fmt.Sprintf("%s(%s)_%v", a.Name, a.Payload, a.Loc)
	}
}

// Canonical action-family names used by the Crash/Send/Receive constructors.
// Automata that route by SigKey match on these, so actions of those kinds
// must be built through the constructors (every decoder and generator in the
// repository does).
const (
	NameCrash   = "crash"
	NameSend    = "send"
	NameReceive = "receive"
)

// Crash returns the crashi action for location i.
func Crash(i Loc) Action {
	return Action{Kind: KindCrash, Name: NameCrash, Loc: i, Peer: NoLoc}
}

// Send returns the action send(m, to)from.
func Send(from, to Loc, m string) Action {
	return Action{Kind: KindSend, Name: NameSend, Loc: from, Peer: to, Payload: m}
}

// Receive returns the action receive(m, from)to.
func Receive(to, from Loc, m string) Action {
	return Action{Kind: KindReceive, Name: NameReceive, Loc: to, Peer: from, Payload: m}
}

// FDOutput returns a failure-detector output event of family name at location
// i carrying payload.  The family name distinguishes detectors (and renamings
// of detectors, Section 5.3): FD-Ω outputs never match FD-P inputs.
func FDOutput(name string, i Loc, payload string) Action {
	return Action{Kind: KindFD, Name: name, Loc: i, Peer: NoLoc, Payload: payload}
}

// EnvInput returns an environment→process action (e.g. propose).
func EnvInput(name string, i Loc, payload string) Action {
	return Action{Kind: KindEnvIn, Name: name, Loc: i, Peer: NoLoc, Payload: payload}
}

// EnvOutput returns a process→environment action (e.g. decide).
func EnvOutput(name string, i Loc, payload string) Action {
	return Action{Kind: KindEnvOut, Name: name, Loc: i, Peer: NoLoc, Payload: payload}
}

// Internal returns an internal action of the automaton owning it.
func Internal(name string, i Loc, payload string) Action {
	return Action{Kind: KindInternal, Name: name, Loc: i, Peer: NoLoc, Payload: payload}
}

// EncodeLocSet canonically encodes a set of locations as a payload string,
// e.g. {2,0,1} → "{0,1,2}".  The encoding is order-independent, so two equal
// sets always produce equal Action values.
func EncodeLocSet(set map[Loc]bool) string {
	locs := make([]int, 0, len(set))
	for l, in := range set {
		if in {
			locs = append(locs, int(l))
		}
	}
	sort.Ints(locs)
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range locs {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(l))
	}
	b.WriteByte('}')
	return b.String()
}

// DecodeLocSet parses a payload produced by EncodeLocSet.
func DecodeLocSet(s string) (map[Loc]bool, error) {
	if len(s) < 2 || s[0] != '{' || s[len(s)-1] != '}' {
		return nil, fmt.Errorf("ioa: malformed location set %q", s)
	}
	set := make(map[Loc]bool)
	body := s[1 : len(s)-1]
	if body == "" {
		return set, nil
	}
	for _, part := range strings.Split(body, ",") {
		v, err := strconv.Atoi(part)
		if err != nil {
			return nil, fmt.Errorf("ioa: malformed location set %q: %v", s, err)
		}
		set[Loc(v)] = true
	}
	return set, nil
}

// EncodeLoc canonically encodes a single location payload.
func EncodeLoc(l Loc) string { return strconv.Itoa(int(l)) }

// DecodeLoc parses a payload produced by EncodeLoc.
func DecodeLoc(s string) (Loc, error) {
	v, err := strconv.Atoi(s)
	if err != nil {
		return NoLoc, fmt.Errorf("ioa: malformed location %q: %v", s, err)
	}
	return Loc(v), nil
}
