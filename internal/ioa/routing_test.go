package ioa

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// recorder is a sink automaton for routing tests: it accepts the env-input
// names in its set at its location and logs every delivery.  With sig=true it
// declares its signature (exercising the routing index); with sig=false it is
// a wildcard automaton consulted on every action.  It has no tasks.
type recorder struct {
	name    string
	loc     Loc
	accepts map[string]bool
	sig     bool
	got     []Action
}

func (r *recorder) Name() string               { return r.name }
func (r *recorder) NumTasks() int              { return 0 }
func (r *recorder) TaskLabel(int) string       { return "" }
func (r *recorder) Enabled(int) (Action, bool) { return Action{}, false }
func (r *recorder) Fire(Action)                {}
func (r *recorder) Accepts(a Action) bool {
	return a.Kind == KindEnvIn && a.Loc == r.loc && r.accepts[a.Name]
}
func (r *recorder) Input(a Action) { r.got = append(r.got, a) }
func (r *recorder) Clone() Automaton {
	c := *r
	c.got = append([]Action(nil), r.got...)
	return &c
}
func (r *recorder) Encode() string { return fmt.Sprintf("%s:%d", r.name, len(r.got)) }

// sigRecorder wraps recorder with a SignatureKeys declaration.
type sigRecorder struct{ recorder }

var _ Signatured = (*sigRecorder)(nil)

func (r *sigRecorder) SignatureKeys() []SigKey {
	var keys []SigKey
	for n := range r.accepts {
		keys = append(keys, KeyOf(EnvInput(n, r.loc, "")))
	}
	return keys
}

// emitter owns a scripted sequence of actions, one task.
type emitter struct {
	script []Action
	at     int
}

func (e *emitter) Name() string         { return "emitter" }
func (e *emitter) Accepts(Action) bool  { return false }
func (e *emitter) Input(Action)         {}
func (e *emitter) NumTasks() int        { return 1 }
func (e *emitter) TaskLabel(int) string { return "emit" }
func (e *emitter) Fire(Action)          { e.at++ }
func (e *emitter) Clone() Automaton     { c := *e; return &c }
func (e *emitter) Encode() string       { return fmt.Sprintf("em:%d", e.at) }
func (e *emitter) Enabled(int) (Action, bool) {
	if e.at >= len(e.script) {
		return Action{}, false
	}
	return e.script[e.at], true
}

// TestRoutingDeliversExactlyAcceptsScanSet (PR 2 satellite): for random
// mixes of signatured and wildcard acceptors and random action scripts —
// including names and locations nobody accepts — Apply must deliver exactly
// the set of automata a full Accepts scan over the composition would find,
// in the same (composition) order.  Hiding must not change delivery, only
// the trace.
func TestRoutingDeliversExactlyAcceptsScanSet(t *testing.T) {
	rng := rand.New(rand.NewSource(20120716)) // PODC'12 venue date
	names := []string{"a", "b", "c", "d"}
	for trial := 0; trial < 200; trial++ {
		nRec := 1 + rng.Intn(6)
		autos := make([]Automaton, 0, nRec+1)
		recs := make([]*recorder, 0, nRec)
		for i := 0; i < nRec; i++ {
			base := recorder{
				name:    fmt.Sprintf("rec%d", i),
				loc:     Loc(rng.Intn(3)),
				accepts: map[string]bool{},
			}
			for _, n := range names {
				if rng.Intn(2) == 0 {
					base.accepts[n] = true
				}
			}
			if rng.Intn(2) == 0 {
				base.sig = true
				sr := &sigRecorder{base}
				recs = append(recs, &sr.recorder)
				autos = append(autos, sr)
			} else {
				r := new(recorder)
				*r = base
				recs = append(recs, r)
				autos = append(autos, r)
			}
		}
		em := &emitter{}
		for k := 0; k < 20; k++ {
			em.script = append(em.script,
				EnvInput(names[rng.Intn(len(names))], Loc(rng.Intn(4)), fmt.Sprintf("p%d", k)))
		}
		autos = append(autos, em)
		sys := MustNewSystem(autos...)
		if trial%3 == 0 {
			// Hiding is trace-only: it must not perturb routing.
			sys.Hide(func(a Action) bool { return a.Name == "a" })
		}

		// Reference model: the pre-index full Accepts scan.
		want := make([][]Action, nRec)
		for _, act := range em.script {
			for i, r := range recs {
				if r.Accepts(act) {
					want[i] = append(want[i], act)
				}
			}
		}
		for range em.script {
			if _, ok := sys.Step(TaskRef{Auto: nRec, Task: 0}); !ok {
				t.Fatal("emitter not enabled")
			}
		}
		for i, r := range recs {
			if !reflect.DeepEqual(r.got, want[i]) {
				t.Fatalf("trial %d: %s (sig=%t, loc=%v, accepts=%v):\ngot  %v\nwant %v",
					trial, r.name, r.sig, r.loc, r.accepts, r.got, want[i])
			}
		}
	}
}

// TestRoutingExternalApplyMatchesScan: owner = -1 (externally sourced
// events, the execution-tree driver) goes through the same routing index.
func TestRoutingExternalApplyMatchesScan(t *testing.T) {
	sr := &sigRecorder{recorder{name: "s", loc: 1, accepts: map[string]bool{"a": true}, sig: true}}
	wr := &recorder{name: "w", loc: 1, accepts: map[string]bool{"a": true, "b": true}}
	sys := MustNewSystem(sr, wr)
	for _, act := range []Action{
		EnvInput("a", 1, "x"), // both
		EnvInput("b", 1, "y"), // wildcard only
		EnvInput("a", 2, "z"), // neither (wrong loc)
	} {
		sys.Apply(-1, act)
	}
	if len(sr.got) != 1 || sr.got[0].Payload != "x" {
		t.Fatalf("signatured recorder got %v", sr.got)
	}
	if len(wr.got) != 2 || wr.got[1].Payload != "y" {
		t.Fatalf("wildcard recorder got %v", wr.got)
	}
}

// readyReference recomputes the ready-set by polling every task, the way the
// pre-fast-path schedulers did each step.
func readyReference(s *System) map[int]Action {
	ref := make(map[int]Action)
	for idx, tr := range s.Tasks() {
		if act, ok := s.autos[tr.Auto].Enabled(tr.Task); ok {
			ref[idx] = act
		}
	}
	return ref
}

// readyObserved walks NextReady and collects the cached actions.
func readyObserved(s *System) map[int]Action {
	got := make(map[int]Action)
	for idx, ok := s.NextReady(-1); ok; idx, ok = s.NextReady(idx) {
		got[idx] = s.ReadyAction(idx)
	}
	return got
}

// TestReadySetTracksPeerInput (PR 2 satellite): an input delivered to a
// *peer* automaton changes that peer's enabledness, and the incremental
// ready-set must reflect it immediately — both enabling (poke raises the
// counter's bound) and draining back to disabled.
func TestReadySetTracksPeerInput(t *testing.T) {
	c := &counter{name: "c", bound: 0} // disabled until poked
	p := &poker{}
	sys := MustNewSystem(c, p)

	if sys.TaskReady(0) {
		t.Fatal("counter ready before poke")
	}
	if !sys.TaskReady(1) {
		t.Fatal("poker not ready")
	}
	if _, ok := sys.Step(TaskRef{Auto: 1, Task: 0}); !ok {
		t.Fatal("poke did not fire")
	}
	// The poke enabled the counter (peer) and disabled the poker (owner).
	if !sys.TaskReady(0) {
		t.Fatal("ready-set missed the peer's enabling input")
	}
	if sys.TaskReady(1) {
		t.Fatal("ready-set kept the drained poker")
	}
	if act := sys.ReadyAction(0); act.Name != "tick" {
		t.Fatalf("cached action = %v, want the counter's tick", act)
	}
	if _, ok := sys.Step(TaskRef{Auto: 0, Task: 0}); !ok {
		t.Fatal("tick did not fire")
	}
	if !sys.Quiescent() || sys.NumReady() != 0 {
		t.Fatal("system not quiescent after draining both tasks")
	}
}

// TestReadySetMatchesReferenceScanUnderRandomDrive: drive a random-script
// composition for many steps, checking after every event that the
// incremental ready-set (indices *and* cached actions) equals a full
// enabledness poll.
func TestReadySetMatchesReferenceScanUnderRandomDrive(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		c1 := &counter{name: "c1", bound: rng.Intn(3)}
		c2 := &counter{name: "c2", bound: rng.Intn(3)}
		em := &emitter{}
		for k := 0; k < 15; k++ {
			em.script = append(em.script, EnvInput("poke", 0, ""))
		}
		sys := MustNewSystem(c1, c2, em)
		for step := 0; ; step++ {
			want := readyReference(sys)
			got := readyObserved(sys)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("trial %d step %d: ready-set drift:\ngot  %v\nwant %v",
					trial, step, got, want)
			}
			if len(want) == 0 {
				break
			}
			// Fire a uniformly random ready task, chosen by rank over the
			// (deterministic) NextReady order so trials replay per rng.
			pick, n := -1, rng.Intn(len(want))
			for idx, ok := sys.NextReady(-1); ok; idx, ok = sys.NextReady(idx) {
				if n == 0 {
					pick = idx
					break
				}
				n--
			}
			if _, ok := sys.Step(sys.TaskAt(pick)); !ok {
				t.Fatalf("trial %d step %d: picked task %d not enabled", trial, step, pick)
			}
		}
	}
}
