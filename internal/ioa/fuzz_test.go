package ioa_test

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
)

// fuzzSeedActions harvests a seed corpus from a real execution: the trace of
// the E1-style detector composition, so the fuzzer starts from every action
// shape (crash, send, receive, FD output) the engines actually produce
// rather than from synthetic strings.
func fuzzSeedActions(f *testing.F) []ioa.Action {
	f.Helper()
	det, err := afd.Lookup(afd.FamilyP, 3)
	if err != nil {
		f.Fatal(err)
	}
	sys := ioa.MustNewSystem(
		append([]ioa.Automaton{det.Automaton(3), system.NewCrash(system.CrashOf(1))},
			system.Channels(3)...)...)
	sched.RoundRobin(sys, sched.Options{MaxSteps: 120})
	return sys.Trace()
}

// FuzzActionAppendEncode checks the allocation-free rendering and encoding
// fast paths against their reference implementations on arbitrary action
// values:
//
//   - Action.AppendTo must append exactly String()'s bytes, including on the
//     ⊥ action, unknown kinds, and payloads containing the rendering's own
//     delimiter characters;
//   - System.AppendEncode must append exactly Encode()'s bytes, and
//     EncodeHash must equal the FNV-1a hash of those bytes, for channel
//     states carrying the fuzzed payload (channels implement AppendEncoder,
//     so this drives the in-place encoding path the execution-tree explorer
//     fingerprints states with).
func FuzzActionAppendEncode(f *testing.F) {
	for _, a := range fuzzSeedActions(f) {
		f.Add(uint8(a.Kind), a.Name, int(a.Loc), int(a.Peer), a.Payload)
	}
	f.Add(uint8(0), "", int(ioa.NoLoc), int(ioa.NoLoc), "")      // ⊥ action
	f.Add(uint8(200), "x", 0, 0, "p")                            // unknown kind
	f.Add(uint8(ioa.KindSend), "send", 0, 1, "m,2)_0")           // delimiter injection
	f.Add(uint8(ioa.KindFD), "FD-Ω", 2, int(ioa.NoLoc), "{0,1}") // set payload
	f.Fuzz(func(t *testing.T, kind uint8, name string, loc, peer int, payload string) {
		act := ioa.Action{
			Kind: ioa.Kind(kind), Name: name,
			Loc: ioa.Loc(loc), Peer: ioa.Loc(peer), Payload: payload,
		}
		want := act.String()
		if got := string(act.AppendTo(nil)); got != want {
			t.Fatalf("AppendTo(nil) = %q, String() = %q", got, want)
		}
		prefix := "pre\x00fix|"
		if got := string(act.AppendTo([]byte(prefix))); got != prefix+want {
			t.Fatalf("AppendTo(prefix) = %q, want %q", got, prefix+want)
		}

		ch := system.NewChannel(0, 1)
		ch.Input(ioa.Send(0, 1, payload))
		ch.Input(ioa.Send(0, 1, name))
		sys := ioa.MustNewSystem(ch, system.NewChannel(1, 0))
		wantEnc := sys.Encode()
		if got := string(sys.AppendEncode(nil)); got != wantEnc {
			t.Fatalf("AppendEncode = %q, Encode = %q", got, wantEnc)
		}
		if got, want := sys.EncodeHash(), ioa.HashBytes(ioa.HashSeed, []byte(wantEnc)); got != want {
			t.Fatalf("EncodeHash = %#x, FNV-1a(Encode) = %#x", got, want)
		}
	})
}
