package ioa

import (
	"strings"
	"testing"
)

func TestCheckDeterminismPasses(t *testing.T) {
	sys := MustNewSystem(&counter{name: "c"}, &poker{})
	sched := RoundRobinSchedule(sys, 3)
	if err := CheckDeterminism(sys, sched); err != nil {
		t.Fatalf("deterministic system failed the check: %v", err)
	}
}

// flaky is an automaton whose Enabled flips between queries — a
// task-determinism violation CheckDeterminism must catch.
type flaky struct {
	calls int
}

func (f *flaky) Name() string         { return "flaky" }
func (f *flaky) Accepts(Action) bool  { return false }
func (f *flaky) Input(Action)         {}
func (f *flaky) NumTasks() int        { return 1 }
func (f *flaky) TaskLabel(int) string { return "flip" }
func (f *flaky) Enabled(int) (Action, bool) {
	f.calls++
	if f.calls%2 == 1 {
		return Internal("odd", 0, ""), true
	}
	return Internal("even", 0, ""), true
}
func (f *flaky) Fire(Action) {}
func (f *flaky) Clone() Automaton {
	c := *f
	return &c
}
func (f *flaky) Encode() string { return "flaky" }

func TestCheckDeterminismCatchesUnstableEnabled(t *testing.T) {
	sys := MustNewSystem(&flaky{})
	err := CheckDeterminism(sys, RoundRobinSchedule(sys, 1))
	if err == nil {
		t.Fatal("unstable Enabled not detected")
	}
	if !strings.Contains(err.Error(), "unstable") {
		t.Fatalf("unexpected error: %v", err)
	}
}

// shallow is an automaton whose Clone shares state — transitions diverge
// after the clone mutates.
type shallow struct {
	hits *int
}

func (s *shallow) Name() string         { return "shallow" }
func (s *shallow) Accepts(Action) bool  { return false }
func (s *shallow) Input(Action)         {}
func (s *shallow) NumTasks() int        { return 1 }
func (s *shallow) TaskLabel(int) string { return "hit" }
func (s *shallow) Enabled(int) (Action, bool) {
	if *s.hits >= 3 {
		return Action{}, false
	}
	return Internal("hit", 0, ""), true
}
func (s *shallow) Fire(Action) { *s.hits++ }
func (s *shallow) Clone() Automaton {
	return &shallow{hits: s.hits} // WRONG: shares the counter
}
func (s *shallow) Encode() string {
	return strings.Repeat("x", *s.hits)
}

func TestCheckDeterminismCatchesSharedClone(t *testing.T) {
	h := 0
	sys := MustNewSystem(&shallow{hits: &h})
	err := CheckDeterminism(sys, RoundRobinSchedule(sys, 4))
	if err == nil {
		t.Fatal("shared-state clone not detected")
	}
}

func TestCheckDeterminismRejectsBadSchedule(t *testing.T) {
	sys := MustNewSystem(&counter{name: "c"})
	if err := CheckDeterminism(sys, []TaskRef{{Auto: 9, Task: 0}}); err == nil {
		t.Fatal("out-of-range schedule accepted")
	}
}

func TestRoundRobinScheduleLength(t *testing.T) {
	sys := MustNewSystem(&counter{name: "c"}, &poker{})
	if got := len(RoundRobinSchedule(sys, 5)); got != 10 {
		t.Fatalf("schedule length = %d, want 10", got)
	}
}
