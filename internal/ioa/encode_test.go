package ioa

import (
	"testing"
)

// appendEncAuto implements AppendEncoder; plainAuto does not.  Both wrap the
// same state so a mixed composition exercises both AppendEncode paths.
type plainAuto struct {
	name  string
	state string
}

func (a *plainAuto) Name() string               { return a.name }
func (a *plainAuto) Accepts(Action) bool        { return false }
func (a *plainAuto) Input(Action)               {}
func (a *plainAuto) NumTasks() int              { return 0 }
func (a *plainAuto) TaskLabel(int) string       { return "" }
func (a *plainAuto) Enabled(int) (Action, bool) { return Action{}, false }
func (a *plainAuto) Fire(Action)                {}
func (a *plainAuto) Clone() Automaton           { c := *a; return &c }
func (a *plainAuto) Encode() string             { return a.state }

type appendEncAuto struct{ plainAuto }

func (a *appendEncAuto) AppendEncode(dst []byte) []byte { return append(dst, a.state...) }
func (a *appendEncAuto) Clone() Automaton               { c := *a; return &c }

func TestAppendEncodeMatchesEncode(t *testing.T) {
	sys := MustNewSystem(
		&plainAuto{name: "a", state: "s1|x"},
		&appendEncAuto{plainAuto{name: "b", state: "s2[y\x1fz]"}},
		&plainAuto{name: "c", state: ""},
	)
	want := sys.Encode()
	got := string(sys.AppendEncode(nil))
	if got != want {
		t.Fatalf("AppendEncode = %q, want Encode = %q", got, want)
	}
	// Appending to a non-empty prefix keeps the prefix.
	pre := []byte("pre:")
	if got := string(sys.AppendEncode(pre)); got != "pre:"+want {
		t.Fatalf("AppendEncode(prefix) = %q", got)
	}
}

func TestEncodeHashMatchesEncodeBytes(t *testing.T) {
	sys := MustNewSystem(
		&plainAuto{name: "a", state: "s1"},
		&appendEncAuto{plainAuto{name: "b", state: "s2"}},
	)
	want := HashBytes(HashSeed, []byte(sys.Encode()))
	if got := sys.EncodeHash(); got != want {
		t.Fatalf("EncodeHash = %#x, want hash of Encode bytes %#x", got, want)
	}
	// Different state, different hash (FNV on short distinct strings).
	sys2 := MustNewSystem(
		&plainAuto{name: "a", state: "s1"},
		&appendEncAuto{plainAuto{name: "b", state: "s3"}},
	)
	if sys2.EncodeHash() == want {
		t.Fatal("distinct states produced equal hashes on trivially distinct input")
	}
}

func TestActionAppendTo(t *testing.T) {
	acts := []Action{
		{},
		Crash(1),
		Crash(NoLoc),
		Send(0, 2, "m|x"),
		Receive(2, 0, "m"),
		FDOutput("FD-Ω", 2, "{0,1}"),
		EnvInput("propose", 0, "1"),
		EnvOutput("decide", 1, ""),
		Internal("tick", 3, ""),
	}
	for _, a := range acts {
		if got := string(a.AppendTo(nil)); got != a.String() {
			t.Errorf("AppendTo(%#v) = %q, want %q", a, got, a.String())
		}
	}
}
