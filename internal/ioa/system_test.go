package ioa

import (
	"fmt"
	"strings"
	"testing"
)

// counter is a toy automaton: task 0 emits "tick" internal actions up to a
// bound; it accepts "poke" env inputs which raise the bound.
type counter struct {
	name  string
	fired int
	bound int
	poked int
}

func (c *counter) Name() string { return c.name }
func (c *counter) Accepts(a Action) bool {
	return a.Kind == KindEnvIn && a.Name == "poke"
}
func (c *counter) Input(Action)         { c.poked++; c.bound++ }
func (c *counter) NumTasks() int        { return 1 }
func (c *counter) TaskLabel(int) string { return "tick" }
func (c *counter) Enabled(int) (Action, bool) {
	if c.fired >= c.bound {
		return Action{}, false
	}
	return Internal("tick", 0, fmt.Sprintf("%d", c.fired)), true
}
func (c *counter) Fire(Action) { c.fired++ }
func (c *counter) Clone() Automaton {
	cc := *c
	return &cc
}
func (c *counter) Encode() string {
	return fmt.Sprintf("%s:%d/%d/%d", c.name, c.fired, c.bound, c.poked)
}

// poker emits one "poke" env input.
type poker struct{ done bool }

func (p *poker) Name() string         { return "poker" }
func (p *poker) Accepts(Action) bool  { return false }
func (p *poker) Input(Action)         {}
func (p *poker) NumTasks() int        { return 1 }
func (p *poker) TaskLabel(int) string { return "poke" }
func (p *poker) Enabled(int) (Action, bool) {
	if p.done {
		return Action{}, false
	}
	return EnvInput("poke", 0, ""), true
}
func (p *poker) Fire(Action) { p.done = true }
func (p *poker) Clone() Automaton {
	pp := *p
	return &pp
}
func (p *poker) Encode() string { return fmt.Sprintf("poker:%t", p.done) }

func TestNewSystemDuplicateNames(t *testing.T) {
	if _, err := NewSystem(&counter{name: "a"}, &counter{name: "a"}); err == nil {
		t.Fatal("composition with duplicate names must fail")
	}
	if _, err := NewSystem(&counter{name: "a"}, &counter{name: "b"}); err != nil {
		t.Fatalf("distinct names should compose: %v", err)
	}
}

func TestMustNewSystemPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNewSystem must panic on duplicate names")
		}
	}()
	MustNewSystem(&counter{name: "a"}, &counter{name: "a"})
}

func TestSystemStepAndDelivery(t *testing.T) {
	c := &counter{name: "c"}
	p := &poker{}
	sys := MustNewSystem(c, p)

	if len(sys.Tasks()) != 2 {
		t.Fatalf("expected 2 tasks, got %d", len(sys.Tasks()))
	}

	// counter is not enabled yet (bound 0).
	if _, ok := sys.Step(TaskRef{Auto: 0, Task: 0}); ok {
		t.Fatal("counter should be disabled before poke")
	}
	// poke fires, delivered to counter, raising its bound.
	act, ok := sys.Step(TaskRef{Auto: 1, Task: 0})
	if !ok || act.Name != "poke" {
		t.Fatalf("poke step = %v, %t", act, ok)
	}
	if c.bound != 1 || c.poked != 1 {
		t.Fatalf("poke not delivered: bound=%d poked=%d", c.bound, c.poked)
	}
	// Now the counter ticks once and becomes quiescent.
	if _, ok := sys.Step(TaskRef{Auto: 0, Task: 0}); !ok {
		t.Fatal("counter should tick after poke")
	}
	if !sys.Quiescent() {
		t.Fatal("system should be quiescent")
	}
	// Internal actions do not appear in the trace; the poke does.
	tr := sys.Trace()
	if len(tr) != 1 || tr[0].Name != "poke" {
		t.Fatalf("trace = %v, want just the poke event", tr)
	}
	if sys.Steps() != 2 {
		t.Fatalf("steps = %d, want 2 (poke + internal tick)", sys.Steps())
	}
}

func TestSystemAutomatonLookup(t *testing.T) {
	c := &counter{name: "c"}
	sys := MustNewSystem(c, &poker{})
	if sys.Automaton("c") != c {
		t.Error("lookup by name failed")
	}
	if sys.Automaton("zzz") != nil {
		t.Error("lookup of unknown name should be nil")
	}
}

func TestSystemCloneIndependence(t *testing.T) {
	c := &counter{name: "c"}
	p := &poker{}
	sys := MustNewSystem(c, p)
	sys.Step(TaskRef{Auto: 1, Task: 0})

	clone := sys.Clone()
	if clone.Encode() != sys.Encode() {
		t.Fatal("clone must start in the same state")
	}
	// Advance the original; the clone must not move.
	sys.Step(TaskRef{Auto: 0, Task: 0})
	if clone.Encode() == sys.Encode() {
		t.Fatal("advancing the original changed the clone")
	}
	// The clone can take the same step and reconverge.
	clone.Step(TaskRef{Auto: 0, Task: 0})
	if clone.Encode() != sys.Encode() {
		t.Fatal("same steps from same state must reconverge")
	}
}

func TestSystemCloneBareDropsTrace(t *testing.T) {
	sys := MustNewSystem(&counter{name: "c"}, &poker{})
	sys.Step(TaskRef{Auto: 1, Task: 0})
	bare := sys.CloneBare()
	if len(bare.Trace()) != 0 {
		t.Error("CloneBare must not copy the trace")
	}
	if bare.Encode() != sys.Encode() {
		t.Error("CloneBare must preserve state")
	}
}

func TestSystemApplyExternalSource(t *testing.T) {
	// Apply with owner -1 models events fed from outside the composition
	// (the execution tree's FD edges).
	c := &counter{name: "c"}
	sys := MustNewSystem(c)
	sys.Apply(-1, EnvInput("poke", 0, ""))
	if c.poked != 1 {
		t.Fatal("externally sourced event not delivered")
	}
	if len(sys.Trace()) != 1 {
		t.Fatal("externally sourced event not traced")
	}
}

func TestTaskLabelFormat(t *testing.T) {
	sys := MustNewSystem(&counter{name: "c"})
	if got := sys.TaskLabel(TaskRef{0, 0}); got != "c/tick" {
		t.Errorf("TaskLabel = %q", got)
	}
	if got := (TaskRef{1, 2}).String(); !strings.Contains(got, "1.2") {
		t.Errorf("TaskRef.String() = %q", got)
	}
}

func TestEncodeSeparatesAutomata(t *testing.T) {
	a := MustNewSystem(&counter{name: "a", bound: 1}, &counter{name: "b"})
	b := MustNewSystem(&counter{name: "a"}, &counter{name: "b", bound: 1})
	if a.Encode() == b.Encode() {
		t.Error("different composite states must encode differently")
	}
}

func TestHideReclassifiesActions(t *testing.T) {
	c := &counter{name: "c"}
	p := &poker{}
	sys := MustNewSystem(c, p)
	sys.Hide(func(a Action) bool { return a.Name == "poke" })

	// The hidden action still synchronizes: the counter gets poked.
	sys.Step(TaskRef{Auto: 1, Task: 0})
	if c.poked != 1 {
		t.Fatal("hidden action no longer synchronizes")
	}
	// But it no longer appears in the trace.
	if len(sys.Trace()) != 0 {
		t.Fatalf("hidden action traced: %v", sys.Trace())
	}
	// Clones inherit the hiding.
	clone := sys.Clone()
	clone.Apply(-1, EnvInput("poke", 0, ""))
	if len(clone.Trace()) != 0 {
		t.Fatal("clone lost the hiding predicate")
	}
}

func TestHideComposes(t *testing.T) {
	sys := MustNewSystem(&counter{name: "c"})
	sys.Hide(func(a Action) bool { return a.Name == "x" })
	sys.Hide(func(a Action) bool { return a.Name == "y" })
	sys.Apply(-1, EnvInput("x", 0, ""))
	sys.Apply(-1, EnvInput("y", 0, ""))
	sys.Apply(-1, EnvInput("z", 0, ""))
	if len(sys.Trace()) != 1 || sys.Trace()[0].Name != "z" {
		t.Fatalf("composed hiding wrong: %v", sys.Trace())
	}
}
