package ioa

import "fmt"

// Automaton is a task-deterministic I/O automaton (paper Section 2.5): in
// every state, each task enables at most one action, and performing an action
// in a state yields a unique successor state.
//
// The interface models a *mutable* automaton instance: Input and Fire change
// the receiver's state in place.  Clone produces an independent deep copy so
// that alternative futures can be explored (the tagged execution tree of
// Section 8), and Encode produces a canonical string determined exactly by
// the automaton's current state.
//
// Contract:
//
//   - Accepts must be a pure function of the action (not of the state); it
//     delimits the automaton's input signature.
//   - Input must handle every accepted action in every state (input actions
//     are enabled in all states, Section 2.1).
//   - Enabled(t) reports the unique action currently enabled in task t, if
//     any; it must not mutate state, and it must be a function of the
//     receiver's own state only (never of shared or global state).  The
//     System's incremental ready-set relies on this: after an event it
//     re-polls only the automata whose Fire or Input ran.
//   - Automata MAY additionally implement Signatured to declare their input
//     signature as routing keys; see the Signatured contract.
//   - Fire(a) applies the effect of locally controlled action a; callers only
//     pass actions previously returned by Enabled in the current state.
//   - Clone must return a deep copy sharing no mutable state.
//   - Encode must return equal strings exactly for automata in equal states.
type Automaton interface {
	// Name identifies the automaton within a composition (unique per System).
	Name() string
	// Accepts reports whether a is an input action of this automaton.
	Accepts(a Action) bool
	// Input applies the effect of input action a.
	Input(a Action)
	// NumTasks returns the number of tasks (partition classes of the
	// locally controlled actions).
	NumTasks() int
	// TaskLabel returns a human-readable label for task t.
	TaskLabel(t int) string
	// Enabled returns the unique action enabled in task t, if any.
	Enabled(t int) (Action, bool)
	// Fire applies the effect of locally controlled action a.
	Fire(a Action)
	// Clone returns an independent deep copy.
	Clone() Automaton
	// Encode returns a canonical encoding of the current state.
	Encode() string
}

// TaskRef names one task of one automaton inside a System.
type TaskRef struct {
	Auto int // index into the System's automaton list
	Task int // task index within that automaton
}

// String implements fmt.Stringer.
func (t TaskRef) String() string { return fmt.Sprintf("task(%d.%d)", t.Auto, t.Task) }
