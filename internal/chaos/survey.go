package chaos

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"unicode/utf8"

	"repro/internal/oracle"
	"repro/internal/system"
)

// Scenario names one degraded-network configuration of the survey grid: a
// topology, per-link loss rates, and an optional partition window.  The zero
// value is the reliable full mesh the paper assumes.
type Scenario struct {
	Name string
	// Topo is a system.ParseTopology description ("", "full", "ring",
	// "star:0", "grid:1x4", "cut:0", "links:0>1,...").
	Topo string
	// Drop, Dup, Reorder are per-link permille rates (system.NetSpec).
	Drop, Dup, Reorder int
	// PartitionMask, when non-zero, splits locations into mask-side and
	// complement from step PartitionAt; HealAt > PartitionAt heals the
	// partition, HealAt ≤ PartitionAt never does (the run is then checked
	// against safety clauses only — see GateSpec.EventuallyFair).
	PartitionMask       uint64
	PartitionAt, HealAt int
}

// net resolves the scenario's network spec for an n-location run.
func (s Scenario) net(n int, seed int64) (system.NetSpec, error) {
	topo, err := system.ParseTopology(n, s.Topo)
	if err != nil {
		return system.NetSpec{}, fmt.Errorf("chaos: scenario %s: %w", s.Name, err)
	}
	return system.NetSpec{
		Topo:    topo,
		Seed:    seed,
		Drop:    s.Drop,
		Dup:     s.Dup,
		Reorder: s.Reorder,
	}, nil
}

// gates merges the scenario's partition window into a gate spec.
func (s Scenario) gates() GateSpec {
	g := NoGates()
	g.PartitionMask = s.PartitionMask
	g.PartitionAt = s.PartitionAt
	g.HealAt = s.HealAt
	return g
}

// SurveyScenarios is the full scenario grid for an n-location survey with
// the given step bound: the reliable baseline, lossy meshes (drop, dup,
// reorder, and a mix), sparse topologies (ring, line, star, an isolated
// min-live location), a partition that heals, one that never does, and a
// lossy partitioned mesh.
func SurveyScenarios(n, steps int) []Scenario {
	half := uint64(1)<<(uint(n)/2) - 1 // lower half of the locations
	return []Scenario{
		{Name: "baseline"},
		{Name: "drop-light", Drop: 60},
		{Name: "drop-heavy", Drop: 500},
		{Name: "dup", Dup: 150},
		{Name: "reorder", Reorder: 250},
		{Name: "drop+dup", Drop: 120, Dup: 120},
		{Name: "ring", Topo: "ring"},
		{Name: "line", Topo: fmt.Sprintf("grid:1x%d", n)},
		{Name: "star", Topo: fmt.Sprintf("star:%d", n-1)},
		{Name: "cut-minlive", Topo: "cut:0"},
		{Name: "heal", PartitionMask: half, PartitionAt: steps / 8, HealAt: steps / 4},
		{Name: "split", PartitionMask: 1, PartitionAt: steps / 8},
		{Name: "drop+heal", Drop: 120, PartitionMask: half, PartitionAt: steps / 8, HealAt: steps / 4},
	}
}

// SurveyShortScenarios is the CI-sized grid: one representative per
// adversary class.
func SurveyShortScenarios(n, steps int) []Scenario {
	all := SurveyScenarios(n, steps)
	keep := map[string]bool{"baseline": true, "drop-heavy": true, "ring": true, "heal": true, "split": true}
	out := all[:0:0]
	for _, s := range all {
		if keep[s.Name] {
			out = append(out, s)
		}
	}
	return out
}

// SurveyTargets is the full target panel: gossip boosting for the
// perpetual (Q→P) and eventual (◇Q→◇P) classes, chained reductions into Ω
// and Σ, the relay variant, uniform reliable broadcast, and consensus via
// the participant detector.  Canonical detector automata exchange no
// messages, so the panel measures the message-passing reductions the
// hierarchy actually runs on.
func SurveyTargets() []Target {
	return []Target{
		GossipTarget{Source: "FD-Q", Out: "FD-P"},
		GossipTarget{Source: "FD-◇Q", Out: "FD-◇P"},
		GossipTarget{Source: "FD-◇Q", Out: "FD-◇P", Reduce: "FD-Ω"},
		GossipTarget{Source: "FD-Q", Out: "FD-P", Reduce: "FD-Σ"},
		GossipTarget{Source: "FD-Q", Out: "FD-P", Forward: true},
		URBTarget{},
		ParticipantTarget{},
	}
}

// SurveyShortTargets is the CI-sized panel.
func SurveyShortTargets() []Target {
	return []Target{
		GossipTarget{Source: "FD-Q", Out: "FD-P"},
		GossipTarget{Source: "FD-◇Q", Out: "FD-◇P", Reduce: "FD-Ω"},
		GossipTarget{Source: "FD-Q", Out: "FD-P", Reduce: "FD-Σ"},
		GossipTarget{Source: "FD-Q", Out: "FD-P", Forward: true},
	}
}

// SurveyConfig parameterizes a survey sweep.
type SurveyConfig struct {
	N         int        // locations (0 = 4)
	Steps     int        // step bound per run (0 = DefaultSteps(N))
	Seeds     int        // random-scheduler seeds per cell (0 = 1)
	NetSeed   int64      // base seed for link decisions (0 = 1)
	Workers   int        // parallel cells (0 = 4)
	Targets   []Target   // nil = SurveyTargets()
	Scenarios []Scenario // nil = SurveyScenarios(N, Steps)
}

func (c SurveyConfig) withDefaults() SurveyConfig {
	if c.N <= 0 {
		c.N = 4
	}
	if c.Steps <= 0 {
		c.Steps = DefaultSteps(c.N)
	}
	if c.Seeds <= 0 {
		c.Seeds = 1
	}
	if c.NetSeed == 0 {
		c.NetSeed = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.Targets == nil {
		c.Targets = SurveyTargets()
	}
	if c.Scenarios == nil {
		c.Scenarios = SurveyScenarios(c.N, c.Steps)
	}
	return c
}

// Cell is one (scenario, target) entry of the survival table, aggregated
// over the cell's fault plans and schedulers.
type Cell struct {
	Scenario string
	Target   string
	Runs     int
	Failures int
	// Clauses are the distinct specification clauses lost in this cell,
	// sorted — the property-survival signal.
	Clauses []string
	// Infra are infrastructure failures: oracle divergences, replay
	// mismatches, build errors.  A clean survey has none anywhere.
	Infra []string
}

// Survives reports whether every run of the cell satisfied its
// specification.
func (c Cell) Survives() bool { return c.Failures == 0 && len(c.Infra) == 0 }

// SurveyReport is the outcome of a survey sweep.
type SurveyReport struct {
	N, Steps int
	// Cells is scenario-major, matching the config's scenario and target
	// order.
	Cells []Cell
}

// Survey sweeps the scenario × target grid.  Every run is executed with a
// full differential oracle (stride 1, channel shadows — the shadows
// independently re-derive each link's drop/dup/reorder decisions), and
// every verdict's artifact is replayed through both engines; any
// disagreement lands in the cell's Infra list.  The returned error reports
// infrastructure problems constructing the grid itself; measured property
// losses are data, not errors.
func Survey(cfg SurveyConfig) (*SurveyReport, error) {
	cfg = cfg.withDefaults()
	rep := &SurveyReport{N: cfg.N, Steps: cfg.Steps}
	rep.Cells = make([]Cell, 0, len(cfg.Scenarios)*len(cfg.Targets))
	for _, sc := range cfg.Scenarios {
		if _, err := sc.net(cfg.N, cfg.NetSeed); err != nil {
			return nil, err
		}
		for _, tg := range cfg.Targets {
			rep.Cells = append(rep.Cells, Cell{Scenario: sc.Name, Target: tg.ID()})
		}
	}

	type job struct {
		cell int
		sc   Scenario
		tg   Target
	}
	jobs := make(chan job)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range jobs {
				runSurveyCell(cfg, j.sc, j.tg, &rep.Cells[j.cell])
			}
		}()
	}
	i := 0
	for _, sc := range cfg.Scenarios {
		for _, tg := range cfg.Targets {
			jobs <- job{cell: i, sc: sc, tg: tg}
			i++
		}
	}
	close(jobs)
	wg.Wait()
	return rep, nil
}

// surveyPlans returns the cell's fault plans: the crash-free run plus
// crash sets that leave non-generator locations alive, so completeness is
// message-dependent (the min-live source keeps location 0, and at least one
// other live location must learn the crash set over the channels).
func surveyPlans(tg Target, n int) []system.FaultPlan {
	plans := []system.FaultPlan{system.NoFaults()}
	maxT := tg.MaxT(n)
	if maxT >= 1 && n >= 3 {
		plans = append(plans, system.CrashOf(1))
	}
	if maxT >= 2 && n >= 4 {
		plans = append(plans, system.CrashOf(1, 2))
	}
	return plans
}

// runSurveyCell executes one cell: plans × schedulers, each run oracle-
// instrumented and artifact-replayed.
func runSurveyCell(cfg SurveyConfig, sc Scenario, tg Target, cell *Cell) {
	net, err := sc.net(cfg.N, cfg.NetSeed)
	if err != nil {
		cell.Infra = append(cell.Infra, err.Error())
		return
	}
	clauses := map[string]bool{}
	for _, plan := range surveyPlans(tg, cfg.N) {
		runs := []Run{{
			Target: tg, N: cfg.N, Plan: plan, Gates: sc.gates(),
			Net: net, Sched: SchedRoundRobin, Steps: cfg.Steps,
		}}
		for s := 0; s < cfg.Seeds; s++ {
			runs = append(runs, Run{
				Target: tg, N: cfg.N, Plan: plan, Gates: sc.gates(),
				Net: net, Sched: SchedRandom, Seed: int64(s + 1), Steps: cfg.Steps,
			})
		}
		for _, r := range runs {
			cell.Runs++
			var orc *oracle.Oracle
			v, err := ExecuteInstrumented(r, func(b *Built) func() error {
				orc = oracle.Attach(b.Sys, oracle.Options{Stride: 1, Shadow: true})
				return orc.Check
			})
			if err != nil {
				cell.Infra = append(cell.Infra, err.Error())
				continue
			}
			if v.Failed() {
				clause := errClause(v.Err)
				if strings.HasPrefix(clause, "(oracle-") {
					cell.Infra = append(cell.Infra, v.Err.Error())
					continue
				}
				cell.Failures++
				clauses[clause] = true
			}
			// Close the loop: the artifact must replay bit-for-bit through
			// the scheduler re-execution and the cross-engine pass — for
			// lossy runs this re-derives every link decision from the spec.
			if _, rerr := Replay(v.Artifact()); rerr != nil {
				cell.Infra = append(cell.Infra, "replay: "+rerr.Error())
			}
		}
	}
	for c := range clauses {
		cell.Clauses = append(cell.Clauses, c)
	}
	sort.Strings(cell.Clauses)
}

// Clean reports whether the survey saw no infrastructure failures: every
// oracle-instrumented run agreed with its shadows and every artifact
// replayed bit-for-bit.
func (r *SurveyReport) Clean() bool {
	for _, c := range r.Cells {
		if len(c.Infra) > 0 {
			return false
		}
	}
	return true
}

// cell finds a cell by scenario and target ID ("" matches any target).
func (r *SurveyReport) cell(scenario, target string) *Cell {
	for i := range r.Cells {
		c := &r.Cells[i]
		if c.Scenario == scenario && (target == "" || c.Target == target) {
			return c
		}
	}
	return nil
}

// Control validates the survey's positive and negative controls: the
// reliable baseline must survive everywhere (the grid is not generating
// false losses), and heavy message loss must cost plain gossip boosting its
// strong completeness (the grid actually detects the known-expected loss —
// a dropped final-state broadcast is never resent, so some live location
// keeps an incomplete suspicion set).
func (r *SurveyReport) Control() error {
	sawBaseline := false
	for _, c := range r.Cells {
		if c.Scenario != "baseline" {
			continue
		}
		sawBaseline = true
		if !c.Survives() {
			return fmt.Errorf("chaos: negative control failed: baseline × %s lost %v (infra %v)",
				c.Target, c.Clauses, c.Infra)
		}
	}
	if !sawBaseline {
		return fmt.Errorf("chaos: no baseline scenario in the grid")
	}
	ctl := r.cell("drop-heavy", "gossip:FD-Q>FD-P")
	if ctl == nil {
		return nil // reduced grid without the control cell
	}
	for _, cl := range ctl.Clauses {
		if strings.Contains(cl, "completeness") {
			return nil
		}
	}
	return fmt.Errorf("chaos: positive control failed: drop-heavy × gossip:FD-Q>FD-P should lose completeness, got %v",
		ctl.Clauses)
}

// Table renders the property-survival table: one row per (scenario,
// target) cell with the lost clauses, grouped by scenario.
func (r *SurveyReport) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "property survival, n=%d steps=%d (%d cells)\n", r.N, r.Steps, len(r.Cells))
	w1, w2 := utf8.RuneCountInString("scenario"), utf8.RuneCountInString("target")
	for _, c := range r.Cells {
		if n := utf8.RuneCountInString(c.Scenario); n > w1 {
			w1 = n
		}
		if n := utf8.RuneCountInString(c.Target); n > w2 {
			w2 = n
		}
	}
	pad := func(s string, w int) string {
		return s + strings.Repeat(" ", w-utf8.RuneCountInString(s))
	}
	fmt.Fprintf(&b, "%s  %s  runs  result\n", pad("scenario", w1), pad("target", w2))
	for _, c := range r.Cells {
		result := "ok"
		switch {
		case len(c.Infra) > 0:
			result = fmt.Sprintf("INFRA %s", c.Infra[0])
		case c.Failures > 0:
			result = fmt.Sprintf("LOST %s [%d/%d]", strings.Join(c.Clauses, " "), c.Failures, c.Runs)
		}
		fmt.Fprintf(&b, "%s  %s  %4d  %s\n", pad(c.Scenario, w1), pad(c.Target, w2), c.Runs, result)
	}
	return b.String()
}
