// Package chaos is the fault-injection and adversarial-execution harness:
// it turns the scheduler's timing freedom (§2.4 fairness) and the crash
// automaton's total freedom over Iˆ (§4.4) into a systematic adversary.
//
// The pipeline is
//
//	generator → gates → runner → shrinker → artifact
//
// A fault-plan generator enumerates or samples crash patterns up to a
// target's tolerance (system.PlanSubsets, SamplePlan).  Adversarial gates
// (GateSpec) perturb timing — delayed crash release, per-message delivery
// delay, starving one channel for a bounded prefix — without ever
// suppressing a non-crash action forever, so every gated run is still a
// prefix of a fair execution; crash actions may be delayed arbitrarily per
// §4.4.  The runner sweeps (target, scheduler, seed, fault plan, gates)
// tuples in parallel and funnels every trace through the repository's
// uniform specification checkers (afd.Checker, consensus.Spec.Checker,
// problems adapters).  A failing run is shrunk to a minimal reproducer —
// fewer crashes, zeroed gates, the simplest scheduler, the shortest step
// bound that still fails — and emitted as a replayable trace.Artifact.
//
// Replay determinism: every source of nondeterminism in a run is a named
// field of Run — the scheduler kind, its integer seed (driving the
// SplitMix64 sched.PRNG stream for every random scheduler since PR 2 ported
// sched.Random off math/rand), the fault plan, and the gate parameters.
// Gates are pure functions of (step, task, action) and are freshly
// constructed per run, so Execute(run) is a pure function: same Run, same
// trace, same verdict.  The only deliberately unfair scheduler (SchedLIFO) is paired
// with safety-only checking, mirroring the paper's split between clauses
// refutable on arbitrary prefixes and liveness clauses that need fairness.
package chaos

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Scheduler kinds a Run may name.
const (
	// SchedRoundRobin is the fair deterministic round-robin schedule.
	SchedRoundRobin = "rr"
	// SchedRandom is the seeded uniform-random schedule (fair w.p. 1).
	SchedRandom = "random"
	// SchedLIFO is the adversarial deliver-last-sent-first schedule: among
	// enabled actions it prioritizes the delivery of the most recently sent
	// message (via send stamps when the target provides them), breaking
	// ties with the deterministic PRNG.  It is not fair, so runs under it
	// are checked against safety clauses only.
	SchedLIFO = "lifo"
)

// Schedulers lists every scheduler kind in sweep order.
func Schedulers() []string { return []string{SchedRoundRobin, SchedRandom, SchedLIFO} }

// Fair reports whether the named scheduler produces prefixes of fair
// executions, i.e. whether liveness clauses may be enforced on its runs.
func Fair(schedKind string) bool { return schedKind != SchedLIFO }

// Built is a target system ready to run.
type Built struct {
	// Sys is the freshly composed system.
	Sys *ioa.System
	// Stop, when non-nil, ends the run early (e.g. consensus: everyone
	// live has decided).
	Stop func(sys *ioa.System, last ioa.Action) bool
	// Prio, when non-nil, ranks actions for SchedLIFO (newest-send-first).
	Prio sched.Priority
	// Tel, when non-nil, is threaded into the scheduler as
	// sched.Options.Telemetry.  Instrumentation hooks (TelemetryHook) set it
	// alongside the system- and channel-level sinks.
	Tel telemetry.Sink
}

// Target is a system-under-test the chaos runner knows how to build and
// judge.  Implementations must be stateless values: Build is called once
// per run, concurrently from runner goroutines.
type Target interface {
	// ID is the stable identifier recorded in artifacts, e.g.
	// "detector:FD-Ω" or "consensus:FD-◇P".
	ID() string
	// MaxT is the largest crash count the specification tolerates for n
	// locations (the plan generator never exceeds it).
	MaxT(n int) int
	// Build composes a fresh system realizing the fault plan over the
	// adversarial network nt (nil: the reliable full mesh; targets without
	// channels ignore it).  lifo asks for send-stamp tracking so SchedLIFO
	// can prioritize by recency.
	Build(n int, plan system.FaultPlan, nt *system.Net, lifo bool) (*Built, error)
	// Checker returns the uniform verdict function for a completed run;
	// fair selects whether liveness clauses are enforced.
	Checker(n int, plan system.FaultPlan, fair bool) func(trace.T) error
}

// Run is one fully determined chaos execution: every source of
// nondeterminism is a field, so Execute is a pure function of Run.
type Run struct {
	Target Target
	N      int
	Plan   system.FaultPlan
	Gates  GateSpec
	// Net is the adversarial network the run executes over; the zero value
	// is the reliable full mesh the paper assumes.  Link decisions are a
	// pure function of (Net.Seed, link, send index), so the spec alone —
	// not a decision log — makes lossy runs replayable.
	Net   system.NetSpec
	Sched string // SchedRoundRobin (default), SchedRandom, SchedLIFO
	Seed  int64
	Steps int // 0 = DefaultSteps(N)
}

// DefaultSteps is the default step bound for n locations: generous enough
// for every target to satisfy its liveness clauses under fair schedules.
func DefaultSteps(n int) int { return 1200 * n }

func (r Run) steps() int {
	if r.Steps <= 0 {
		return DefaultSteps(r.N)
	}
	return r.Steps
}

// Verdict is the outcome of one executed run.
type Verdict struct {
	Run     Run
	Steps   int
	Reason  sched.StopReason
	Err     error // non-nil: the trace violates the target's specification
	Trace   trace.T
	GateLog []trace.GateVeto
	// NetLog is the bounded log of non-deliver link decisions the run's
	// adversarial network made (empty for reliable runs).
	NetLog []trace.LinkEvent
}

// Failed reports whether the run violated its specification.
func (v Verdict) Failed() bool { return v.Err != nil }

// Execute performs one chaos run.  The returned error is an infrastructure
// error (unknown scheduler, unbuildable target); specification violations
// land in Verdict.Err.
func Execute(r Run) (Verdict, error) { return ExecuteInstrumented(r, nil) }

// ExecuteInstrumented performs one chaos run with an instrumentation hook:
// after the target is built — before any step — instrument may attach
// observers to the built system (e.g. oracle.Attach) and returns a check
// function evaluated once the schedule completes.  A non-nil check error
// takes precedence over the specification verdict in Verdict.Err: a
// divergence between engines undermines the trace the checker judged.
// instrument must be safe to call once per execution; ShrinkWith passes one
// to re-instrument every shrink candidate.
// TelemetryHook returns an ExecuteInstrumented hook wiring tel through every
// plane of a built run — the scheduler (Built.Tel), the system
// (ioa.System.SetTelemetry), and the channel mesh
// (system.InstrumentChannels) — with a nil final check.  Compose it with an
// oracle hook by calling both from one instrument function.
func TelemetryHook(tel telemetry.Sink) func(*Built) func() error {
	return func(b *Built) func() error {
		b.Tel = tel
		b.Sys.SetTelemetry(tel)
		system.InstrumentChannels(b.Sys, tel)
		return nil
	}
}

func ExecuteInstrumented(r Run, instrument func(*Built) func() error) (Verdict, error) {
	lifo := r.Sched == SchedLIFO
	var nt *system.Net
	if !r.Net.IsZero() {
		nt = system.NewNet(r.Net)
	}
	b, err := r.Target.Build(r.N, r.Plan, nt, lifo)
	if err != nil {
		return Verdict{}, fmt.Errorf("chaos: building %s: %w", r.Target.ID(), err)
	}
	var check func() error
	if instrument != nil {
		check = instrument(b)
	}
	var log []trace.GateVeto
	opts := sched.Options{
		MaxSteps:  r.steps(),
		Stop:      b.Stop,
		Gate:      r.Gates.Compile(&log, b.Tel),
		Telemetry: b.Tel,
	}
	var res sched.Result
	switch r.Sched {
	case "", SchedRoundRobin:
		res = sched.RoundRobin(b.Sys, opts)
	case SchedRandom:
		res = sched.Random(b.Sys, r.Seed, opts)
	case SchedLIFO:
		prio := b.Prio
		if prio == nil {
			prio = func(ioa.TaskRef, ioa.Action) int { return 0 }
		}
		res = sched.RandomPriority(b.Sys, sched.NewPRNG(r.Seed), prio, opts)
	default:
		return Verdict{}, fmt.Errorf("chaos: unknown scheduler %q", r.Sched)
	}
	t := b.Sys.Trace()
	// A never-healing partition starves cross-side deliveries forever, so
	// even a fair scheduler's run is not a fair-execution prefix; downgrade
	// to safety-only checking, mirroring the SchedLIFO split.
	fair := Fair(r.Sched) && r.Gates.EventuallyFair()
	verdictErr := r.Target.Checker(r.N, r.Plan, fair)(t)
	if check != nil {
		if ierr := check(); ierr != nil {
			verdictErr = ierr
		}
	}
	v := Verdict{
		Run:     r,
		Steps:   res.Steps,
		Reason:  res.Reason,
		Err:     verdictErr,
		Trace:   t,
		GateLog: log,
	}
	if nt != nil {
		v.NetLog = nt.Events()
	}
	return v, nil
}
