package chaos

import (
	"strings"

	"repro/internal/system"
)

// errClause extracts the stable identity of a checker error: the trailing
// parenthesized clause name every specification checker in this repository
// emits (e.g. "(validity 2)", "(agreement)", "(strong accuracy)"), falling
// back to the full message.  The shrinker preserves the clause so a
// reduction can never swap the original violation for an unrelated one —
// without this, bisecting the step bound happily "reproduces" any liveness
// clause by truncating the run below its non-vacuity window.
func errClause(err error) string {
	s := err.Error()
	if i := strings.LastIndexByte(s, '('); i >= 0 && strings.HasSuffix(s, ")") {
		return s[i:]
	}
	return s
}

// Shrink minimizes a failing run to a smaller reproducer while preserving
// the failure clause, by greedy reduction to fixpoint over a deterministic
// candidate order:
//
//  1. simplify the scheduler (lifo/random → round-robin),
//  2. drop planned crash events one at a time,
//  3. zero the gate spec wholesale, then individual perturbations,
//  4. simplify the adversarial network (reliable mesh, loss-free, full
//     topology) while keeping whatever the failure genuinely needs,
//  5. bisect the step bound down to the smallest failing budget.
//
// Every candidate is re-executed with Execute and adopted only when it
// still violates the same specification clause, so the result is a genuine
// reproducer of the original failure; executions are deterministic, so
// Shrink is too.  tries reports how many candidate executions were spent.
func Shrink(v Verdict) (min Verdict, tries int) { return ShrinkWith(v, Execute) }

// ShrinkWith is Shrink with a custom executor for the shrink candidates.
// A differential runner passes an oracle-instrumented executor (see
// ExecuteInstrumented) so a candidate only counts as reproducing when the
// same divergence clause — "(oracle-ready-set)", "(oracle-channel-shadow)",
// ... — fires again; exec must be deterministic for the result to be.
func ShrinkWith(v Verdict, exec func(Run) (Verdict, error)) (min Verdict, tries int) {
	if !v.Failed() {
		return v, 0
	}
	cur := v
	clause := errClause(v.Err)

	// attempt re-runs a candidate and adopts it if it still fails the same
	// clause.
	attempt := func(r Run) bool {
		tries++
		w, err := exec(r)
		if err == nil && w.Failed() && errClause(w.Err) == clause {
			cur = w
			return true
		}
		return false
	}

	// 1. Simplest scheduler first: a reproducer on fair round-robin is
	// stronger (and replays fastest).  Note the checker tightens from
	// safety-only to full membership, which can only preserve failure.
	if cur.Run.Sched != "" && cur.Run.Sched != SchedRoundRobin {
		r := cur.Run
		r.Sched = SchedRoundRobin
		attempt(r)
	}

	for changed := true; changed; {
		changed = false

		// 2. Drop crash events.
		for k := 0; k < len(cur.Run.Plan.Crash); k++ {
			r := cur.Run
			r.Plan = r.Plan.WithoutCrash(k)
			if attempt(r) {
				changed = true
				break
			}
		}
		if changed {
			continue
		}

		// 3. Zero gates: all at once, then per perturbation.
		if !cur.Run.Gates.IsZero() {
			r := cur.Run
			r.Gates = NoGates()
			if attempt(r) {
				continue
			}
			g := cur.Run.Gates
			candidates := []GateSpec{g, g, g, g}
			candidates[0].CrashAfter, candidates[0].CrashGap = 0, 0
			candidates[1].DelayNth, candidates[1].DelayFor = 0, 0
			candidates[2].StarveFrom, candidates[2].StarveTo, candidates[2].StarveUntil = -1, -1, 0
			candidates[3].PartitionAt, candidates[3].HealAt, candidates[3].PartitionMask = 0, 0, 0
			for _, cand := range candidates {
				if cand == cur.Run.Gates {
					continue
				}
				r := cur.Run
				r.Gates = cand
				if attempt(r) {
					changed = true
					break
				}
			}
			if changed {
				continue
			}
		}

		// 4. Simplify the network: reliable full mesh first, then loss-free
		// on the same topology, then full topology with the same loss.
		// Candidate identity uses NetSpec.Equal — the spec holds a
		// topology slice, so == does not apply.  A failure that needs the
		// partition gate or the lossy links keeps them: a candidate is
		// adopted only when the same clause still fires.
		if !cur.Run.Net.IsZero() {
			cands := []system.NetSpec{
				{},
				{Topo: cur.Run.Net.Topo},
				{Seed: cur.Run.Net.Seed, Drop: cur.Run.Net.Drop,
					Dup: cur.Run.Net.Dup, Reorder: cur.Run.Net.Reorder},
			}
			for _, cand := range cands {
				if cand.Equal(cur.Run.Net) {
					continue
				}
				r := cur.Run
				r.Net = cand
				if attempt(r) {
					changed = true
					break
				}
			}
			if changed {
				continue
			}
		}
	}

	// 5. Bisect the step bound: find the smallest budget that still fails.
	// Failure need not be monotone in steps (a longer run can stabilize),
	// so bisect against the last known-failing bound and keep cur pinned to
	// an actually failing execution.
	lo, hi := 0, cur.Run.steps() // invariant: hi fails, lo does not
	for lo+1 < hi {
		mid := lo + (hi-lo)/2
		r := cur.Run
		r.Steps = mid
		if attempt(r) {
			hi = cur.Run.steps()
		} else {
			lo = mid
		}
	}
	return cur, tries
}
