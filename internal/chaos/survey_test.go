package chaos

import (
	"strings"
	"testing"
)

// TestSurveyShortGrid runs the CI-sized survey grid end to end: every cell
// executes under a stride-1 differential oracle with channel shadows, every
// artifact replays bit-for-bit, the reliable baseline survives everywhere
// (negative control), and heavy loss costs plain gossip its completeness
// (positive control).
func TestSurveyShortGrid(t *testing.T) {
	steps := 1200
	rep, err := Survey(SurveyConfig{
		Steps:     steps,
		Targets:   SurveyShortTargets(),
		Scenarios: SurveyShortScenarios(4, steps),
	})
	if err != nil {
		t.Fatalf("Survey: %v", err)
	}
	if !rep.Clean() {
		t.Errorf("survey not clean:\n%s", rep.Table())
	}
	if err := rep.Control(); err != nil {
		t.Errorf("control: %v\n%s", err, rep.Table())
	}
	if got := len(rep.Cells); got != len(SurveyShortTargets())*len(SurveyShortScenarios(4, steps)) {
		t.Errorf("cell count = %d", got)
	}
	tbl := rep.Table()
	if !strings.Contains(tbl, "baseline") || !strings.Contains(tbl, "gossip:FD-Q>FD-P") {
		t.Errorf("table missing expected rows:\n%s", tbl)
	}
	t.Logf("\n%s", tbl)
}
