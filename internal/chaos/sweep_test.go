package chaos

import (
	"testing"
	"time"
)

// TestSweepHealthyTargets is the tier-2 bounded chaos sweep: the Ω and ◇P
// detectors and consensus-over-Ω swept across every scheduler, enumerated
// fault plans, and sampled adversarial gates must produce zero violations.
// It is the package's acceptance gate (≥100 runs) and is skipped under
// -short; the fixed seed set keeps it deterministic and inside a small time
// budget.
func TestSweepHealthyTargets(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short mode")
	}
	start := time.Now()
	rep := Sweep(SweepConfig{N: 3, MaxT: -1, Seeds: 8, Shrink: true})
	if rep.Runs < 100 {
		t.Fatalf("sweep covered only %d runs, want ≥ 100", rep.Runs)
	}
	for _, e := range rep.Errors {
		t.Errorf("infrastructure error: %v", e)
	}
	for _, f := range rep.Failures {
		t.Errorf("violation: %s sched=%s seed=%d plan=%v: %v",
			f.Run.Target.ID(), f.Run.Sched, f.Run.Seed, f.Run.Plan, f.Err)
	}
	t.Logf("%s in %v", rep.Summary(), time.Since(start).Round(time.Millisecond))
}

// TestSweepFlagsBrokenDetector checks the sweep's statistical power: the
// slanderer positive control must be flagged, and every shrunk reproducer
// must preserve the strong-accuracy clause and replay deterministically.
func TestSweepFlagsBrokenDetector(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos sweep skipped in -short mode")
	}
	rep := Sweep(SweepConfig{
		Targets: []Target{DetectorTarget{Family: "slanderer"}},
		N:       3,
		MaxT:    -1,
		Seeds:   2,
		Shrink:  true,
	})
	if len(rep.Failures) == 0 {
		t.Fatal("sweep missed the deliberately broken detector")
	}
	for _, e := range rep.Errors {
		t.Errorf("infrastructure error: %v", e)
	}
	for i, f := range rep.Failures {
		if clause := errClause(f.Err); clause != "(strong accuracy)" {
			t.Errorf("failure %d shrunk to clause %q, want strong accuracy", i, clause)
		}
	}
	// The first reproducer must replay to the identical verdict.
	if _, err := Replay(rep.Failures[0].Artifact()); err != nil {
		t.Errorf("shrunk reproducer does not replay: %v", err)
	}
}
