package chaos

import (
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// MaxGateLog bounds the veto log recorded per run so artifacts stay small;
// a shrunk reproducer rarely needs more than a handful of vetoes to read.
const MaxGateLog = 256

// GateSpec names the adversarial timing perturbations of a run as plain
// integers, so a (plan, gates, seed, scheduler) tuple fully determines the
// execution and round-trips through a trace.Artifact.
//
// Every perturbation except a never-healing partition is delay-only and
// bounded for non-crash actions, so a gated run is still a prefix of a fair
// execution: delivery delays release after DelayFor steps, the starved
// channel resumes at StarveUntil, a healing partition releases at HealAt,
// and only crash actions — which §4.4 lets a scheduler delay arbitrarily —
// may be held past the end of the run.  A never-healing partition is the
// deliberate exception; EventuallyFair flags it so runs under it are
// checked against safety clauses only.
type GateSpec struct {
	// CrashAfter blocks every crash until the step counter reaches it;
	// CrashGap spaces subsequent releases (sched.CrashesAfter semantics;
	// the compiled gate is freshly constructed per run, per its contract).
	CrashAfter int
	CrashGap   int
	// DelayNth delays every DelayNth-th distinct message delivery by
	// DelayFor steps (both must be positive to take effect).
	DelayNth int
	DelayFor int
	// StarveFrom/StarveTo starve the channel StarveFrom→StarveTo — its
	// deliveries are vetoed — until the step counter reaches StarveUntil.
	// Negative locations disable starvation.
	StarveFrom  int
	StarveTo    int
	StarveUntil int
	// PartitionMask splits the locations into two sides (bit l set =
	// location l on side 1); cross-side deliveries are vetoed from step
	// PartitionAt until step HealAt (sched.Partition semantics: HealAt ≤
	// PartitionAt never heals).  A zero mask disables partitioning.  A
	// never-healing partition makes the run unfair — EventuallyFair
	// reports it, and the runner downgrades to safety-only checking.
	PartitionAt   int
	HealAt        int
	PartitionMask uint64
}

// NoGates is the identity GateSpec.
func NoGates() GateSpec { return GateSpec{StarveFrom: -1, StarveTo: -1} }

// IsZero reports whether the spec perturbs nothing.
func (g GateSpec) IsZero() bool {
	return g.CrashAfter == 0 && g.CrashGap == 0 &&
		(g.DelayNth <= 0 || g.DelayFor <= 0) && !g.starves() && !g.partitions()
}

func (g GateSpec) starves() bool {
	return g.StarveUntil > 0 && g.StarveFrom >= 0 && g.StarveTo >= 0 && g.StarveFrom != g.StarveTo
}

func (g GateSpec) partitions() bool { return g.PartitionMask != 0 }

// EventuallyFair reports whether every perturbation of the spec releases,
// so a gated run under a fair scheduler is still a prefix of a fair
// execution.  Only a never-healing partition (HealAt ≤ PartitionAt with a
// non-zero mask) breaks this: it vetoes cross-side deliveries forever, so
// liveness clauses must not be enforced on the run.
func (g GateSpec) EventuallyFair() bool {
	return !g.partitions() || g.HealAt > g.PartitionAt
}

// Artifact gate-parameter keys.
const (
	keyCrashAfter    = "crashAfter"
	keyCrashGap      = "crashGap"
	keyDelayNth      = "delayNth"
	keyDelayFor      = "delayFor"
	keyStarveFrom    = "starveFrom"
	keyStarveTo      = "starveTo"
	keyStarveUntil   = "starveUntil"
	keyPartitionAt   = "partitionAt"
	keyHealAt        = "healAt"
	keyPartitionMask = "partitionMask"
)

// Params encodes the spec for the artifact schema; zero/disabled fields are
// omitted.
func (g GateSpec) Params() map[string]int {
	m := make(map[string]int)
	if g.CrashAfter > 0 {
		m[keyCrashAfter] = g.CrashAfter
	}
	if g.CrashGap > 0 {
		m[keyCrashGap] = g.CrashGap
	}
	if g.DelayNth > 0 && g.DelayFor > 0 {
		m[keyDelayNth] = g.DelayNth
		m[keyDelayFor] = g.DelayFor
	}
	if g.starves() {
		m[keyStarveFrom] = g.StarveFrom
		m[keyStarveTo] = g.StarveTo
		m[keyStarveUntil] = g.StarveUntil
	}
	if g.partitions() {
		m[keyPartitionAt] = g.PartitionAt
		m[keyHealAt] = g.HealAt
		m[keyPartitionMask] = int(g.PartitionMask)
	}
	if len(m) == 0 {
		return nil
	}
	return m
}

// GatesFromParams decodes Params output.
func GatesFromParams(m map[string]int) GateSpec {
	g := NoGates()
	if m == nil {
		return g
	}
	g.CrashAfter = m[keyCrashAfter]
	g.CrashGap = m[keyCrashGap]
	g.DelayNth = m[keyDelayNth]
	g.DelayFor = m[keyDelayFor]
	if _, ok := m[keyStarveUntil]; ok {
		g.StarveFrom = m[keyStarveFrom]
		g.StarveTo = m[keyStarveTo]
		g.StarveUntil = m[keyStarveUntil]
	}
	if _, ok := m[keyPartitionMask]; ok {
		g.PartitionAt = m[keyPartitionAt]
		g.HealAt = m[keyHealAt]
		g.PartitionMask = uint64(m[keyPartitionMask])
	}
	return g
}

// Compile returns a fresh stateful gate realizing the spec, appending each
// veto (up to MaxGateLog) to *log when log is non-nil.  A nil return means
// no gating at all.  Gates must be compiled once per run: the crash-release
// counter and delivery-delay table are per-execution state.
//
// Concurrency (audited for the live backend): compiled gates and their
// veto log are intentionally sim-only — unsynchronized state consulted
// from a single scheduler loop.  The live backend never compiles gates:
// its timing adversary is the transport (delay, partition) and its loss
// adversary is the channels' own NetSpec, both of which are safe under the
// runtime's step lock.
//
// tel, when non-nil, receives the partition life cycle — GPartitionActive
// flips to 1 when the partition engages and back to 0 at heal, when the
// healed duration is also sampled into HPartitionSteps — and the detector-QoS
// stream (SuspicionGate), which is appended even to an otherwise-zero spec.
// Observer gates always admit, so telemetry never changes the schedule.
func (g GateSpec) Compile(log *[]trace.GateVeto, tel telemetry.Sink) sched.Gate {
	var gates []sched.Gate
	if g.CrashAfter > 0 || g.CrashGap > 0 {
		gates = append(gates, sched.CrashesAfter(g.CrashAfter, g.CrashGap))
	}
	if g.DelayNth > 0 && g.DelayFor > 0 {
		seen := 0
		release := make(map[ioa.Action]int)
		gates = append(gates, func(now int, _ ioa.TaskRef, act ioa.Action) bool {
			if act.Kind != ioa.KindReceive {
				return true
			}
			r, ok := release[act]
			if !ok {
				seen++
				r = now
				if seen%g.DelayNth == 0 {
					r = now + g.DelayFor
				}
				release[act] = r
			}
			return now >= r
		})
	}
	if g.starves() {
		from, to := ioa.Loc(g.StarveFrom), ioa.Loc(g.StarveTo)
		gates = append(gates, func(now int, _ ioa.TaskRef, act ioa.Action) bool {
			if act.Kind == ioa.KindReceive && act.Loc == to && act.Peer == from {
				return now >= g.StarveUntil
			}
			return true
		})
	}
	if g.partitions() {
		gates = append(gates, sched.Partition(g.PartitionMask, g.PartitionAt, g.HealAt))
		if tel != nil {
			active := false
			gates = append(gates, func(now int, _ ioa.TaskRef, _ ioa.Action) bool {
				switch {
				case !active && now >= g.PartitionAt && (g.HealAt <= g.PartitionAt || now < g.HealAt):
					active = true
					tel.SetGauge(telemetry.GPartitionActive, 1)
				case active && g.HealAt > g.PartitionAt && now >= g.HealAt:
					active = false
					tel.SetGauge(telemetry.GPartitionActive, 0)
					tel.Observe(telemetry.HPartitionSteps, int64(g.HealAt-g.PartitionAt))
				}
				return true
			})
		}
	}
	if tel != nil {
		gates = append(gates, SuspicionGate(tel))
	}
	if len(gates) == 0 {
		return nil
	}
	inner := sched.Gates(gates...)
	if log == nil {
		return inner
	}
	return func(now int, tr ioa.TaskRef, act ioa.Action) bool {
		ok := inner(now, tr, act)
		if !ok && len(*log) < MaxGateLog {
			*log = append(*log, trace.GateVeto{Step: now, Action: act.String()})
		}
		return ok
	}
}

// obsPair keys per-(observer, subject) suspicion state.
type obsPair struct{ obs, sub ioa.Loc }

// SuspicionGate returns an admission-neutral gate (it always returns true,
// so schedules — and golden traces — are unchanged) that watches the
// FD-output and crash actions offered to the scheduler and feeds the
// detector-QoS metrics:
//
//   - CSuspicionAdded / CSuspicionRemoved count suspect-set transitions per
//     observer (a location entering or leaving some FD copy's output set);
//   - HDetectionLatency samples, once per (observer, crashed) pair, the steps
//     from the crash's admission to the observer's first suspicion of it;
//   - HMistakeDuration samples each wrong-suspicion interval: a live
//     location entering and later leaving an observer's suspect set.
//
// Like every compiled gate, the state is per-run and sim-only.  The gate
// sees actions when they are *offered* (consulted), not when they fire;
// under the random scheduler an offered FD transition may fire a step or
// two later, so step-indexed samples carry that scheduler-dependent slack —
// acceptable for distribution-level QoS, and exact under round-robin, which
// fires each admitted action immediately.  Repeated offers of the same
// enabled output are deduplicated by payload, so counters track distinct
// transitions.  Suspect sets are tracked per FD copy (a gossip location runs
// two detector automata with distinct names); detection and mistake samples
// merge the copies at each observer.  Malformed FD payloads are ignored (the
// AFD layer separately treats them as "suspect everyone"; see afd.Window).
func SuspicionGate(tel telemetry.Sink) sched.Gate {
	type fdKey struct {
		name string
		loc  ioa.Loc
	}
	lastPayload := make(map[fdKey]string)       // dedup of re-offered outputs
	lastSet := make(map[fdKey]map[ioa.Loc]bool) // FD copy → decoded suspect set
	crashStep := make(map[ioa.Loc]int)
	detected := make(map[obsPair]bool) // (observer, crashed): latency sampled
	wrongSince := make(map[obsPair]int)
	return func(now int, _ ioa.TaskRef, act ioa.Action) bool {
		switch act.Kind {
		case ioa.KindCrash:
			// Consulted last in the conjunction, so the crash was admitted by
			// every timing gate; it fires now (RR) or within the scheduler's
			// next few draws (random).
			if _, ok := crashStep[act.Loc]; !ok {
				crashStep[act.Loc] = now
			}
		case ioa.KindFD:
			i := act.Loc
			key := fdKey{act.Name, i}
			if lastPayload[key] == act.Payload {
				return true // same enabled output re-offered; not a transition
			}
			set, err := ioa.DecodeLocSet(act.Payload)
			if err != nil {
				return true
			}
			lastPayload[key] = act.Payload
			prev := lastSet[key]
			for j := range set {
				if set[j] && !prev[j] {
					tel.Count(telemetry.CSuspicionAdded, 1)
					crashed, isCrashed := crashStep[j]
					if isCrashed && !detected[obsPair{i, j}] {
						detected[obsPair{i, j}] = true
						tel.Observe(telemetry.HDetectionLatency, int64(now-crashed))
					}
					if !isCrashed {
						if _, open := wrongSince[obsPair{i, j}]; !open {
							wrongSince[obsPair{i, j}] = now
						}
					}
				}
			}
			for j := range prev {
				if prev[j] && !set[j] {
					tel.Count(telemetry.CSuspicionRemoved, 1)
					if start, open := wrongSince[obsPair{i, j}]; open {
						tel.Observe(telemetry.HMistakeDuration, int64(now-start))
						delete(wrongSince, obsPair{i, j})
					}
				}
			}
			lastSet[key] = set
		}
		return true
	}
}
