package chaos

import (
	"fmt"
	"strings"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

// SlandererID is the target ID of the intentionally broken detector used as
// the harness's positive control.
const SlandererID = "detector:slanderer"

// DetectorTarget runs a failure detector's canonical automaton against the
// crash automaton and judges the trace with the detector's own checker.
type DetectorTarget struct {
	// Family names a Section-3.3 zoo detector, or "slanderer" for the
	// deliberately broken afd.Slanderer positive control.
	Family string
}

var _ Target = DetectorTarget{}

// ID implements Target.
func (d DetectorTarget) ID() string { return "detector:" + d.Family }

// MaxT implements Target: an AFD tolerates any fault pattern; keeping one
// location live keeps liveness clauses non-vacuous.
func (d DetectorTarget) MaxT(n int) int { return n - 1 }

func (d DetectorTarget) detector(n int) (afd.Detector, error) {
	if d.Family == "slanderer" {
		return afd.Slanderer{}, nil
	}
	return afd.Lookup(d.Family, n)
}

// Build implements Target.
func (d DetectorTarget) Build(n int, plan system.FaultPlan, _ bool) (*Built, error) {
	det, err := d.detector(n)
	if err != nil {
		return nil, err
	}
	sys, err := ioa.NewSystem(det.Automaton(n), system.NewCrash(plan))
	if err != nil {
		return nil, err
	}
	return &Built{Sys: sys}, nil
}

// Checker implements Target: full membership under fair schedules, safety
// clauses only (prefix mode) otherwise.
func (d DetectorTarget) Checker(n int, _ system.FaultPlan, fair bool) func(trace.T) error {
	det, err := d.detector(n)
	if err != nil {
		return func(trace.T) error { return err }
	}
	w := afd.DefaultWindow()
	if !fair {
		w = afd.PrefixWindow()
	}
	return afd.Checker(det, n, w)
}

// ConsensusTarget runs the Section-9.3 consensus system S — CT processes, a
// channel mesh, fixed-proposal environments, a zoo detector, the crash
// automaton — and judges the trace against the Section-9.1 specification
// with f = ⌊(n-1)/2⌋.
type ConsensusTarget struct {
	// Family is the detector family consensus runs with (e.g. afd.FamilyOmega).
	Family string
}

var _ Target = ConsensusTarget{}

// ID implements Target.
func (c ConsensusTarget) ID() string { return "consensus:" + c.Family }

// MaxT implements Target: the CT algorithm needs a correct majority.
func (c ConsensusTarget) MaxT(n int) int { return (n - 1) / 2 }

// values fixes deterministic mixed proposals (0,1,0,1,...), so validity and
// agreement are non-trivial.
func (c ConsensusTarget) values(n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i % 2
	}
	return vs
}

// Build implements Target.
func (c ConsensusTarget) Build(n int, plan system.FaultPlan, lifo bool) (*Built, error) {
	det, err := afd.Lookup(c.Family, n)
	if err != nil {
		return nil, err
	}
	spec := consensus.BuildSpec{
		N:      n,
		Family: c.Family,
		Det:    det.Automaton(n),
		Crash:  append([]ioa.Loc(nil), plan.Crash...),
		Values: c.values(n),
	}
	var clock *system.SendClock
	if lifo {
		clock = system.NewSendClock()
		spec.Clock = clock
	}
	sys, err := consensus.Build(spec)
	if err != nil {
		return nil, err
	}
	b := &Built{Sys: sys, Stop: consensusStop(n)}
	if clock != nil {
		b.Prio = newestFirst(sys)
	}
	return b, nil
}

// consensusStop ends a run once every not-yet-crashed location has decided
// (same bookkeeping as consensus.Run: a gated crash that never fires leaves
// its location live and its decision required).
func consensusStop(n int) func(*ioa.System, ioa.Action) bool {
	faulty := make(map[ioa.Loc]bool)
	decided := make(map[ioa.Loc]bool)
	all := func() bool {
		for i := 0; i < n; i++ {
			if !faulty[ioa.Loc(i)] && !decided[ioa.Loc(i)] {
				return false
			}
		}
		return true
	}
	return func(_ *ioa.System, last ioa.Action) bool {
		switch {
		case last.Kind == ioa.KindCrash:
			faulty[last.Loc] = true
			return all()
		case last.Kind == ioa.KindEnvOut && last.Name == system.ActNameDecide:
			decided[last.Loc] = true
			return all()
		}
		return false
	}
}

// newestFirst ranks channel deliveries by the send stamp of the message at
// the head of the delivering channel: the most recently sent deliverable
// message wins, realizing deliver-last-sent-first.  Non-delivery actions
// rank at zero, below any delivery.
func newestFirst(sys *ioa.System) sched.Priority {
	// TaskRef.Auto indexes sys.Automata(); cache the tracked channels.
	autos := sys.Automata()
	return func(tr ioa.TaskRef, act ioa.Action) int {
		if act.Kind != ioa.KindReceive {
			return 0
		}
		tc, ok := autos[tr.Auto].(*system.TrackedChannel)
		if !ok {
			return 0
		}
		if stamp, ok := tc.HeadStamp(); ok {
			return int(stamp)
		}
		return 0
	}
}

// Checker implements Target.  Under fair schedules the run is treated as
// complete (the step bound is generous and the stop condition fires once
// everyone live decided), enforcing termination; under unfair schedules
// only the safety clauses are enforced.
func (c ConsensusTarget) Checker(n int, _ system.FaultPlan, fair bool) func(trace.T) error {
	return consensus.Spec{N: n, F: c.MaxT(n)}.Checker(fair)
}

// ParseTarget resolves an artifact target ID back to a Target.
func ParseTarget(id string) (Target, error) {
	switch {
	case strings.HasPrefix(id, "detector:"):
		return DetectorTarget{Family: strings.TrimPrefix(id, "detector:")}, nil
	case strings.HasPrefix(id, "consensus:"):
		return ConsensusTarget{Family: strings.TrimPrefix(id, "consensus:")}, nil
	default:
		return nil, fmt.Errorf("chaos: unknown target %q", id)
	}
}
