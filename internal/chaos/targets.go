package chaos

import (
	"fmt"
	"strings"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/problems"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
	"repro/internal/transform"
)

// SlandererID is the target ID of the intentionally broken detector used as
// the harness's positive control.
const SlandererID = "detector:slanderer"

// DetectorTarget runs a failure detector's canonical automaton against the
// crash automaton and judges the trace with the detector's own checker.
type DetectorTarget struct {
	// Family names a Section-3.3 zoo detector, or "slanderer" for the
	// deliberately broken afd.Slanderer positive control.
	Family string
}

var _ Target = DetectorTarget{}

// ID implements Target.
func (d DetectorTarget) ID() string { return "detector:" + d.Family }

// MaxT implements Target: an AFD tolerates any fault pattern; keeping one
// location live keeps liveness clauses non-vacuous.
func (d DetectorTarget) MaxT(n int) int { return n - 1 }

func (d DetectorTarget) detector(n int) (afd.Detector, error) {
	if d.Family == "slanderer" {
		return afd.Slanderer{}, nil
	}
	return afd.Lookup(d.Family, n)
}

// Build implements Target.  Detector targets have no channels, so the
// adversarial network is irrelevant and ignored.
func (d DetectorTarget) Build(n int, plan system.FaultPlan, _ *system.Net, _ bool) (*Built, error) {
	det, err := d.detector(n)
	if err != nil {
		return nil, err
	}
	sys, err := ioa.NewSystem(det.Automaton(n), system.NewCrash(plan))
	if err != nil {
		return nil, err
	}
	return &Built{Sys: sys}, nil
}

// Checker implements Target: full membership under fair schedules, safety
// clauses only (prefix mode) otherwise.
func (d DetectorTarget) Checker(n int, _ system.FaultPlan, fair bool) func(trace.T) error {
	det, err := d.detector(n)
	if err != nil {
		return func(trace.T) error { return err }
	}
	w := afd.DefaultWindow()
	if !fair {
		w = afd.PrefixWindow()
	}
	return afd.Checker(det, n, w)
}

// ConsensusTarget runs the Section-9.3 consensus system S — CT processes, a
// channel mesh, fixed-proposal environments, a zoo detector, the crash
// automaton — and judges the trace against the Section-9.1 specification
// with f = ⌊(n-1)/2⌋.
type ConsensusTarget struct {
	// Family is the detector family consensus runs with (e.g. afd.FamilyOmega).
	Family string
}

var _ Target = ConsensusTarget{}

// ID implements Target.
func (c ConsensusTarget) ID() string { return "consensus:" + c.Family }

// MaxT implements Target: the CT algorithm needs a correct majority.
func (c ConsensusTarget) MaxT(n int) int { return (n - 1) / 2 }

// values fixes deterministic mixed proposals (0,1,0,1,...), so validity and
// agreement are non-trivial.
func (c ConsensusTarget) values(n int) []int {
	vs := make([]int, n)
	for i := range vs {
		vs[i] = i % 2
	}
	return vs
}

// Build implements Target.
func (c ConsensusTarget) Build(n int, plan system.FaultPlan, nt *system.Net, lifo bool) (*Built, error) {
	det, err := afd.Lookup(c.Family, n)
	if err != nil {
		return nil, err
	}
	spec := consensus.BuildSpec{
		N:      n,
		Family: c.Family,
		Det:    det.Automaton(n),
		Crash:  append([]ioa.Loc(nil), plan.Crash...),
		Values: c.values(n),
		Net:    nt,
	}
	var clock *system.SendClock
	if lifo {
		clock = system.NewSendClock()
		spec.Clock = clock
	}
	sys, err := consensus.Build(spec)
	if err != nil {
		return nil, err
	}
	b := &Built{Sys: sys, Stop: consensusStop(n)}
	if clock != nil {
		b.Prio = newestFirst(sys)
	}
	return b, nil
}

// consensusStop ends a run once every not-yet-crashed location has decided
// (same bookkeeping as consensus.Run: a gated crash that never fires leaves
// its location live and its decision required).
func consensusStop(n int) func(*ioa.System, ioa.Action) bool {
	faulty := make(map[ioa.Loc]bool)
	decided := make(map[ioa.Loc]bool)
	all := func() bool {
		for i := 0; i < n; i++ {
			if !faulty[ioa.Loc(i)] && !decided[ioa.Loc(i)] {
				return false
			}
		}
		return true
	}
	return func(_ *ioa.System, last ioa.Action) bool {
		switch {
		case last.Kind == ioa.KindCrash:
			faulty[last.Loc] = true
			return all()
		case last.Kind == ioa.KindEnvOut && last.Name == system.ActNameDecide:
			decided[last.Loc] = true
			return all()
		}
		return false
	}
}

// newestFirst ranks channel deliveries by the send stamp of the message at
// the head of the delivering channel: the most recently sent deliverable
// message wins, realizing deliver-last-sent-first.  Non-delivery actions
// rank at zero, below any delivery.
func newestFirst(sys *ioa.System) sched.Priority {
	// TaskRef.Auto indexes sys.Automata(); cache the tracked channels.
	autos := sys.Automata()
	return func(tr ioa.TaskRef, act ioa.Action) int {
		if act.Kind != ioa.KindReceive {
			return 0
		}
		tc, ok := autos[tr.Auto].(*system.TrackedChannel)
		if !ok {
			return 0
		}
		if stamp, ok := tc.HeadStamp(); ok {
			return int(stamp)
		}
		return 0
	}
}

// Checker implements Target.  Under fair schedules the run is treated as
// complete (the step bound is generous and the stop condition fires once
// everyone live decided), enforcing termination; under unfair schedules
// only the safety clauses are enforced.
func (c ConsensusTarget) Checker(n int, _ system.FaultPlan, fair bool) func(trace.T) error {
	return consensus.Spec{N: n, F: c.MaxT(n)}.Checker(fair)
}

// GossipTarget runs the message-passing completeness-boosting reduction
// (transform.Gossip) from a weakly complete source detector to its strongly
// complete target, optionally chained into a final local reduction, and
// judges the final family's outputs with that detector's checker.  Because
// the boosted property genuinely depends on message delivery — the source
// emits its crash set at the minimum live location only — gossip targets
// are the survey's instrument for measuring which detector classes survive
// a degraded network.
type GossipTarget struct {
	// Source is the weakly complete source family (e.g. afd.FamilyQ).
	Source string
	// Out is the boosted family gossip produces (e.g. afd.FamilyP).
	Out string
	// Reduce, when non-empty, chains a transform.Catalog local reduction
	// Out→Reduce and judges Reduce instead (e.g. afd.FamilyOmega).
	Reduce string
	// Forward selects relay gossip (origin-tagged flooding with monotone
	// merges), which survives sparse-but-connected topologies and
	// reordering that defeat plain latest-set gossip.
	Forward bool
}

var _ Target = GossipTarget{}

// ID implements Target.
func (g GossipTarget) ID() string {
	prefix := "gossip:"
	if g.Forward {
		prefix = "relay:"
	}
	id := prefix + g.Source + ">" + g.Out
	if g.Reduce != "" {
		id += ">" + g.Reduce
	}
	return id
}

// MaxT implements Target.
func (g GossipTarget) MaxT(n int) int { return n - 1 }

// reduction finds the catalog reduction Out→Reduce.
func (g GossipTarget) reduction() (transform.Local, error) {
	for _, l := range transform.Catalog() {
		if l.From == g.Out && l.To == g.Reduce {
			return l, nil
		}
	}
	return transform.Local{}, fmt.Errorf("chaos: no catalog reduction %s→%s", g.Out, g.Reduce)
}

// family is the family the checker judges.
func (g GossipTarget) family() string {
	if g.Reduce != "" {
		return g.Reduce
	}
	return g.Out
}

// Build implements Target.  The intermediate families stay visible in the
// trace — the checker projects onto the final family, and hiding would make
// the recorded trace incomplete for cross-engine replay.
func (g GossipTarget) Build(n int, plan system.FaultPlan, nt *system.Net, lifo bool) (*Built, error) {
	src, err := afd.Lookup(g.Source, n)
	if err != nil {
		return nil, err
	}
	autos := []ioa.Automaton{src.Automaton(n)}
	autos = append(autos, transform.Gossip{From: g.Source, To: g.Out, Forward: g.Forward}.Procs(n)...)
	if g.Reduce != "" {
		red, err := g.reduction()
		if err != nil {
			return nil, err
		}
		autos = append(autos, red.Procs(n)...)
	}
	var clock *system.SendClock
	if lifo {
		clock = system.NewSendClock()
		autos = append(autos, system.NetTrackedChannels(n, clock, nt)...)
	} else {
		autos = append(autos, system.NetChannels(n, nt)...)
	}
	autos = append(autos, system.NewCrash(plan))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return nil, err
	}
	b := &Built{Sys: sys}
	if clock != nil {
		b.Prio = newestFirst(sys)
	}
	return b, nil
}

// Checker implements Target: the final family's detector checker over its
// projected outputs (afd.Checker projects internally, so the multi-family
// trace is judged correctly).
func (g GossipTarget) Checker(n int, _ system.FaultPlan, fair bool) func(trace.T) error {
	det, err := afd.Lookup(g.family(), n)
	if err != nil {
		return func(trace.T) error { return err }
	}
	w := afd.DefaultWindow()
	if !fair {
		w = afd.PrefixWindow()
	}
	return afd.Checker(det, n, w)
}

// URBTarget runs the uniform reliable broadcast diffusion algorithm
// (problems.URBMajorityProcs) with one single-shot broadcaster environment
// per location and judges the trace against problems.URBSpec.  Detector-free
// and channel-heavy, it measures how a quorum-based problem degrades under
// topology restrictions and message loss.
type URBTarget struct{}

var _ Target = URBTarget{}

// ID implements Target.
func (URBTarget) ID() string { return "urb:majority" }

// MaxT implements Target: the diffusion algorithm needs a correct majority.
func (URBTarget) MaxT(n int) int { return (n - 1) / 2 }

// Build implements Target.
func (URBTarget) Build(n int, plan system.FaultPlan, nt *system.Net, lifo bool) (*Built, error) {
	autos := problems.URBMajorityProcs(n)
	var clock *system.SendClock
	if lifo {
		clock = system.NewSendClock()
		autos = append(autos, system.NetTrackedChannels(n, clock, nt)...)
	} else {
		autos = append(autos, system.NetChannels(n, nt)...)
	}
	for i := 0; i < n; i++ {
		autos = append(autos, problems.NewBroadcasterEnv(ioa.Loc(i), string(rune('a'+i))))
	}
	autos = append(autos, system.NewCrash(plan))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return nil, err
	}
	b := &Built{Sys: sys}
	if clock != nil {
		b.Prio = newestFirst(sys)
	}
	return b, nil
}

// Checker implements Target.
func (URBTarget) Checker(n int, _ system.FaultPlan, fair bool) func(trace.T) error {
	return func(t trace.T) error { return problems.URBSpec{N: n}.Check(t, fair) }
}

// ParticipantTarget runs consensus via the participant detector
// (problems.ConsensusViaParticipantProcs + ParticipantOracle) and judges
// both the consensus specification and the participant-detector contract.
// The oracle answers queries with the first querier, which every live
// location must learn of over the channels — so the reduction's termination
// is message-dependent, making it a churn-flavored survey row.
type ParticipantTarget struct{}

var _ Target = ParticipantTarget{}

// ID implements Target.
func (ParticipantTarget) ID() string { return "participant:consensus" }

// MaxT implements Target: the reduction as specified tolerates no crashes
// (a crashed first-querier blocks every waiter).
func (ParticipantTarget) MaxT(int) int { return 0 }

// Build implements Target.
func (ParticipantTarget) Build(n int, plan system.FaultPlan, nt *system.Net, lifo bool) (*Built, error) {
	autos := problems.ConsensusViaParticipantProcs(n)
	var clock *system.SendClock
	if lifo {
		clock = system.NewSendClock()
		autos = append(autos, system.NetTrackedChannels(n, clock, nt)...)
	} else {
		autos = append(autos, system.NetChannels(n, nt)...)
	}
	autos = append(autos, problems.NewParticipantOracle(n))
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i % 2
	}
	autos = append(autos, system.ConsensusEnvsFixed(vals)...)
	autos = append(autos, system.NewCrash(plan))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return nil, err
	}
	b := &Built{Sys: sys}
	if clock != nil {
		b.Prio = newestFirst(sys)
	}
	return b, nil
}

// Checker implements Target: the consensus specification (f = 0) plus the
// participant-detector contract.
func (p ParticipantTarget) Checker(n int, _ system.FaultPlan, fair bool) func(trace.T) error {
	cons := consensus.Spec{N: n, F: 0}.Checker(fair)
	return func(t trace.T) error {
		if err := cons(t); err != nil {
			return err
		}
		return problems.CheckParticipant(t)
	}
}

// ParseTarget resolves an artifact target ID back to a Target.
func ParseTarget(id string) (Target, error) {
	switch {
	case strings.HasPrefix(id, "detector:"):
		return DetectorTarget{Family: strings.TrimPrefix(id, "detector:")}, nil
	case strings.HasPrefix(id, "consensus:"):
		return ConsensusTarget{Family: strings.TrimPrefix(id, "consensus:")}, nil
	case strings.HasPrefix(id, "gossip:"), strings.HasPrefix(id, "relay:"):
		forward := strings.HasPrefix(id, "relay:")
		body := strings.TrimPrefix(strings.TrimPrefix(id, "gossip:"), "relay:")
		parts := strings.Split(body, ">")
		if len(parts) < 2 || len(parts) > 3 {
			return nil, fmt.Errorf("chaos: malformed gossip target %q", id)
		}
		g := GossipTarget{Source: parts[0], Out: parts[1], Forward: forward}
		if len(parts) == 3 {
			g.Reduce = parts[2]
		}
		return g, nil
	case id == "urb:majority":
		return URBTarget{}, nil
	case id == "participant:consensus":
		return ParticipantTarget{}, nil
	default:
		return nil, fmt.Errorf("chaos: unknown target %q", id)
	}
}
