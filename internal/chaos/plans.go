package chaos

import (
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
)

// SamplePlan draws a fault plan crashing up to maxT distinct locations of
// 0..n-1 uniformly: the crash count is uniform over 0..maxT and the crashed
// set is a uniform partial permutation, so crash *order* varies too (the
// crash automaton sequences events in plan order).
func SamplePlan(rng sched.PRNG, n, maxT int) system.FaultPlan {
	if maxT > n {
		maxT = n
	}
	if maxT <= 0 {
		return system.NoFaults()
	}
	k := rng.Intn(maxT + 1)
	perm := make([]ioa.Loc, n)
	for i := range perm {
		perm[i] = ioa.Loc(i)
	}
	// Partial Fisher-Yates: the first k entries are a uniform ordered
	// k-subset.
	for i := 0; i < k; i++ {
		j := i + rng.Intn(n-i)
		perm[i], perm[j] = perm[j], perm[i]
	}
	return system.CrashOf(perm[:k]...)
}

// SampleGates draws a gate spec for an n-location run with the given step
// bound.  Each perturbation appears with moderate probability and bounded
// magnitude (delays ≤ steps/8, starvation ≤ steps/4, crash release within
// the first half) so fair-schedule runs keep enough post-perturbation
// budget to satisfy liveness clauses.
func SampleGates(rng sched.PRNG, n, steps int) GateSpec {
	g := NoGates()
	if rng.Intn(2) == 0 {
		g.CrashAfter = rng.Intn(steps/2 + 1)
		g.CrashGap = rng.Intn(steps/8 + 1)
	}
	if rng.Intn(2) == 0 {
		g.DelayNth = 1 + rng.Intn(5)
		g.DelayFor = 1 + rng.Intn(max(1, steps/8))
	}
	if n >= 2 && rng.Intn(4) == 0 {
		g.StarveFrom = rng.Intn(n)
		g.StarveTo = (g.StarveFrom + 1 + rng.Intn(n-1)) % n
		g.StarveUntil = 1 + rng.Intn(max(1, steps/4))
	}
	if n >= 2 && n <= 63 && rng.Intn(4) == 0 {
		// A healing partition: the mask is a uniform proper non-empty
		// subset of the locations, and the heal lands by steps/2 so fair
		// runs keep a full post-heal budget for liveness clauses (a
		// never-healing partition is survey territory, not sweep noise —
		// it downgrades the checker to safety-only).
		g.PartitionMask = uint64(1 + rng.Intn((1<<uint(n))-2))
		g.PartitionAt = rng.Intn(max(1, steps/4))
		g.HealAt = g.PartitionAt + 1 + rng.Intn(max(1, steps/4))
	}
	return g
}
