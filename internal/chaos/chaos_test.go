package chaos

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/trace"
)

// TestExecuteDeterministic pins the replay-determinism contract: Execute is
// a pure function of Run, even under the seeded random scheduler with every
// gate family active.
func TestExecuteDeterministic(t *testing.T) {
	for _, kind := range Schedulers() {
		r := Run{
			Target: DetectorTarget{Family: "FD-Ω"},
			N:      3,
			Plan:   SamplePlan(sched.NewPRNG(5), 3, 2),
			Gates: GateSpec{
				CrashAfter: 40, CrashGap: 10,
				DelayNth: 2, DelayFor: 7,
				StarveFrom: 0, StarveTo: 1, StarveUntil: 25,
			},
			Sched: kind,
			Seed:  11,
			Steps: 400,
		}
		a, err := Execute(r)
		if err != nil {
			t.Fatalf("%s: Execute: %v", kind, err)
		}
		b, err := Execute(r)
		if err != nil {
			t.Fatalf("%s: re-Execute: %v", kind, err)
		}
		if !trace.Equal(a.Trace, b.Trace) {
			t.Errorf("%s: traces differ across identical runs (%d vs %d events)",
				kind, len(a.Trace), len(b.Trace))
		}
		if (a.Err == nil) != (b.Err == nil) {
			t.Errorf("%s: verdicts differ: %v vs %v", kind, a.Err, b.Err)
		}
		if len(a.GateLog) != len(b.GateLog) {
			t.Errorf("%s: gate logs differ: %d vs %d vetoes", kind, len(a.GateLog), len(b.GateLog))
		}
	}
}

// TestSamplePlanBounds checks sampled plans stay within the crash budget and
// never repeat a location.
func TestSamplePlanBounds(t *testing.T) {
	rng := sched.NewPRNG(1)
	const n, maxT = 5, 3
	sawNonEmpty := false
	for i := 0; i < 500; i++ {
		p := SamplePlan(rng, n, maxT)
		if len(p.Crash) > maxT {
			t.Fatalf("plan %v exceeds maxT=%d", p, maxT)
		}
		seen := map[ioa.Loc]bool{}
		for _, l := range p.Crash {
			if l < 0 || int(l) >= n {
				t.Fatalf("plan %v crashes out-of-range location %d", p, l)
			}
			if seen[l] {
				t.Fatalf("plan %v crashes %d twice", p, l)
			}
			seen[l] = true
		}
		sawNonEmpty = sawNonEmpty || len(p.Crash) > 0
	}
	if !sawNonEmpty {
		t.Error("500 samples and every plan was empty")
	}
	if got := SamplePlan(rng, 3, 0); len(got.Crash) != 0 {
		t.Errorf("maxT=0 sampled %v, want no faults", got)
	}
}

// TestSampleGatesBounds checks sampled gate magnitudes respect the
// fairness-preserving budget documented on SampleGates.
func TestSampleGatesBounds(t *testing.T) {
	rng := sched.NewPRNG(2)
	const n, steps = 4, 800
	for i := 0; i < 500; i++ {
		g := SampleGates(rng, n, steps)
		if g.CrashAfter > steps/2 || g.CrashGap > steps/8 {
			t.Fatalf("crash release out of bounds: %+v", g)
		}
		if g.DelayFor > steps/8 {
			t.Fatalf("delivery delay out of bounds: %+v", g)
		}
		if g.StarveUntil > steps/4 {
			t.Fatalf("starvation out of bounds: %+v", g)
		}
		if g.starves() && (g.StarveFrom == g.StarveTo || g.StarveFrom >= n || g.StarveTo >= n) {
			t.Fatalf("malformed starvation channel: %+v", g)
		}
	}
}

// TestGateSpecParamsRoundTrip checks the artifact encoding of gate
// parameters is lossless for effective specs and normalizing for disabled
// ones.
func TestGateSpecParamsRoundTrip(t *testing.T) {
	specs := []GateSpec{
		NoGates(),
		{CrashAfter: 10, StarveFrom: -1, StarveTo: -1},
		{CrashAfter: 10, CrashGap: 3, StarveFrom: -1, StarveTo: -1},
		{DelayNth: 2, DelayFor: 5, StarveFrom: -1, StarveTo: -1},
		{StarveFrom: 0, StarveTo: 2, StarveUntil: 40},
		{CrashAfter: 1, CrashGap: 1, DelayNth: 1, DelayFor: 1,
			StarveFrom: 1, StarveTo: 0, StarveUntil: 9},
	}
	for _, g := range specs {
		if got := GatesFromParams(g.Params()); got != g {
			t.Errorf("round trip %+v → %v → %+v", g, g.Params(), got)
		}
	}
	// A half-specified delay is a no-op and must encode as absent.
	half := NoGates()
	half.DelayNth = 3
	if p := half.Params(); p != nil {
		t.Errorf("no-op delay encoded as %v, want nil", p)
	}
	if !half.IsZero() {
		t.Error("half-specified delay should be zero-effect")
	}
}

// TestCompiledDelayGate exercises the delivery-delay gate against synthetic
// actions: the DelayNth-th distinct delivery is vetoed for exactly DelayFor
// steps, and the veto log records each refusal.
func TestCompiledDelayGate(t *testing.T) {
	g := NoGates()
	g.DelayNth, g.DelayFor = 2, 5
	var log []trace.GateVeto
	gate := g.Compile(&log)

	recv := func(i int) ioa.Action {
		return ioa.Action{Kind: ioa.KindReceive, Name: "receive", Loc: ioa.Loc(i), Peer: 0}
	}
	if !gate(10, ioa.TaskRef{}, recv(1)) {
		t.Fatal("1st distinct delivery should pass (only every 2nd is delayed)")
	}
	if gate(10, ioa.TaskRef{}, recv(2)) {
		t.Fatal("2nd distinct delivery should be delayed at its first step")
	}
	if gate(14, ioa.TaskRef{}, recv(2)) {
		t.Fatal("delayed delivery released too early")
	}
	if !gate(15, ioa.TaskRef{}, recv(2)) {
		t.Fatal("delayed delivery should release after DelayFor steps")
	}
	if !gate(10, ioa.TaskRef{}, ioa.Action{Kind: ioa.KindCrash}) {
		t.Fatal("non-delivery actions must pass a delay-only spec")
	}
	if len(log) != 2 {
		t.Fatalf("veto log recorded %d refusals, want 2", len(log))
	}
}

// TestCompiledStarvationGate exercises the channel-starvation gate: only the
// named channel is starved, and only until StarveUntil.
func TestCompiledStarvationGate(t *testing.T) {
	g := NoGates()
	g.StarveFrom, g.StarveTo, g.StarveUntil = 0, 1, 50
	gate := g.Compile(nil)

	starved := ioa.Action{Kind: ioa.KindReceive, Name: "receive", Loc: 1, Peer: 0}
	other := ioa.Action{Kind: ioa.KindReceive, Name: "receive", Loc: 0, Peer: 1}
	if gate(49, ioa.TaskRef{}, starved) {
		t.Fatal("starved channel delivered before StarveUntil")
	}
	if !gate(50, ioa.TaskRef{}, starved) {
		t.Fatal("starved channel must resume at StarveUntil")
	}
	if !gate(0, ioa.TaskRef{}, other) {
		t.Fatal("reverse channel must not be starved")
	}
}

// TestParseTargetRoundTrip checks every sweepable target ID resolves back to
// a target with the same ID.
func TestParseTargetRoundTrip(t *testing.T) {
	ids := []string{SlandererID}
	for _, target := range DefaultTargets() {
		ids = append(ids, target.ID())
	}
	for _, id := range ids {
		target, err := ParseTarget(id)
		if err != nil {
			t.Errorf("ParseTarget(%q): %v", id, err)
			continue
		}
		if target.ID() != id {
			t.Errorf("ParseTarget(%q).ID() = %q", id, target.ID())
		}
	}
	if _, err := ParseTarget("nonsense"); err == nil {
		t.Error("ParseTarget accepted an unknown ID")
	}
}

// TestSlandererFlaggedShrunkReplayed is the harness's positive control, end
// to end: the deliberately broken detector is flagged, the failure shrinks
// without swapping its clause, and the shrunk artifact replays byte-for-byte
// deterministically to the same verdict.
func TestSlandererFlaggedShrunkReplayed(t *testing.T) {
	v, err := Execute(Run{Target: DetectorTarget{Family: "slanderer"}, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Failed() {
		t.Fatal("broken detector passed its checker")
	}
	clause := errClause(v.Err)
	if clause != "(strong accuracy)" {
		t.Fatalf("slanderer failed clause %q, want strong accuracy", clause)
	}

	min, tries := Shrink(v)
	if !min.Failed() || errClause(min.Err) != clause {
		t.Fatalf("shrink swapped the failure: %v (after %d tries)", min.Err, tries)
	}
	if min.Run.steps() > v.Run.steps() {
		t.Errorf("shrink grew the step bound: %d → %d", v.Run.steps(), min.Run.steps())
	}

	// Artifact round trip.
	var buf bytes.Buffer
	if err := trace.WriteArtifact(&buf, min.Artifact()); err != nil {
		t.Fatal(err)
	}
	a, err := trace.ReadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Replay must reproduce the recorded verdict and trace exactly.
	w, err := Replay(a)
	if err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if !w.Failed() || w.Err.Error() != min.Err.Error() {
		t.Fatalf("replay verdict %v, recorded %v", w.Err, min.Err)
	}
}

// TestReplayDetectsTamperedVerdict checks Replay refuses an artifact whose
// recorded verdict contradicts the fresh execution.
func TestReplayDetectsTamperedVerdict(t *testing.T) {
	v, err := Execute(Run{Target: DetectorTarget{Family: "slanderer"}, N: 3, Steps: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Failed() {
		t.Fatal("expected a failing run to tamper with")
	}
	a := v.Artifact()
	a.Verdict = "" // claim the run passed
	if _, err := Replay(a); err == nil {
		t.Error("replay accepted an artifact with a falsified verdict")
	} else if !strings.Contains(err.Error(), "does not match recorded") {
		t.Errorf("unexpected replay error: %v", err)
	}
}

// TestShrinkIdentityOnPass checks Shrink is the identity on passing runs.
func TestShrinkIdentityOnPass(t *testing.T) {
	v, err := Execute(Run{Target: DetectorTarget{Family: "FD-Ω"}, N: 2, Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if v.Failed() {
		t.Fatalf("healthy run failed: %v", v.Err)
	}
	if min, tries := Shrink(v); tries != 0 || min.Failed() {
		t.Errorf("Shrink spent %d tries on a passing run", tries)
	}
}
