package chaos

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// TestExecuteDeterministic pins the replay-determinism contract: Execute is
// a pure function of Run, even under the seeded random scheduler with every
// gate family active.
func TestExecuteDeterministic(t *testing.T) {
	for _, kind := range Schedulers() {
		r := Run{
			Target: DetectorTarget{Family: "FD-Ω"},
			N:      3,
			Plan:   SamplePlan(sched.NewPRNG(5), 3, 2),
			Gates: GateSpec{
				CrashAfter: 40, CrashGap: 10,
				DelayNth: 2, DelayFor: 7,
				StarveFrom: 0, StarveTo: 1, StarveUntil: 25,
			},
			Sched: kind,
			Seed:  11,
			Steps: 400,
		}
		a, err := Execute(r)
		if err != nil {
			t.Fatalf("%s: Execute: %v", kind, err)
		}
		b, err := Execute(r)
		if err != nil {
			t.Fatalf("%s: re-Execute: %v", kind, err)
		}
		if !trace.Equal(a.Trace, b.Trace) {
			t.Errorf("%s: traces differ across identical runs (%d vs %d events)",
				kind, len(a.Trace), len(b.Trace))
		}
		if (a.Err == nil) != (b.Err == nil) {
			t.Errorf("%s: verdicts differ: %v vs %v", kind, a.Err, b.Err)
		}
		if len(a.GateLog) != len(b.GateLog) {
			t.Errorf("%s: gate logs differ: %d vs %d vetoes", kind, len(a.GateLog), len(b.GateLog))
		}
	}
}

// TestSamplePlanBounds checks sampled plans stay within the crash budget and
// never repeat a location.
func TestSamplePlanBounds(t *testing.T) {
	rng := sched.NewPRNG(1)
	const n, maxT = 5, 3
	sawNonEmpty := false
	for i := 0; i < 500; i++ {
		p := SamplePlan(rng, n, maxT)
		if len(p.Crash) > maxT {
			t.Fatalf("plan %v exceeds maxT=%d", p, maxT)
		}
		seen := map[ioa.Loc]bool{}
		for _, l := range p.Crash {
			if l < 0 || int(l) >= n {
				t.Fatalf("plan %v crashes out-of-range location %d", p, l)
			}
			if seen[l] {
				t.Fatalf("plan %v crashes %d twice", p, l)
			}
			seen[l] = true
		}
		sawNonEmpty = sawNonEmpty || len(p.Crash) > 0
	}
	if !sawNonEmpty {
		t.Error("500 samples and every plan was empty")
	}
	if got := SamplePlan(rng, 3, 0); len(got.Crash) != 0 {
		t.Errorf("maxT=0 sampled %v, want no faults", got)
	}
}

// TestSampleGatesBounds checks sampled gate magnitudes respect the
// fairness-preserving budget documented on SampleGates.
func TestSampleGatesBounds(t *testing.T) {
	rng := sched.NewPRNG(2)
	const n, steps = 4, 800
	for i := 0; i < 500; i++ {
		g := SampleGates(rng, n, steps)
		if g.CrashAfter > steps/2 || g.CrashGap > steps/8 {
			t.Fatalf("crash release out of bounds: %+v", g)
		}
		if g.DelayFor > steps/8 {
			t.Fatalf("delivery delay out of bounds: %+v", g)
		}
		if g.StarveUntil > steps/4 {
			t.Fatalf("starvation out of bounds: %+v", g)
		}
		if g.starves() && (g.StarveFrom == g.StarveTo || g.StarveFrom >= n || g.StarveTo >= n) {
			t.Fatalf("malformed starvation channel: %+v", g)
		}
		if g.partitions() {
			if g.PartitionMask >= 1<<uint(n)-1 {
				t.Fatalf("partition mask not a proper subset: %+v", g)
			}
			if !g.EventuallyFair() {
				t.Fatalf("sweep sampled a never-healing partition: %+v", g)
			}
			if g.PartitionAt > steps/4 || g.HealAt > g.PartitionAt+steps/4+1 {
				t.Fatalf("partition window out of bounds: %+v", g)
			}
		}
	}
}

// TestGateSpecParamsRoundTrip checks the artifact encoding of gate
// parameters is lossless for effective specs and normalizing for disabled
// ones.
func TestGateSpecParamsRoundTrip(t *testing.T) {
	specs := []GateSpec{
		NoGates(),
		{CrashAfter: 10, StarveFrom: -1, StarveTo: -1},
		{CrashAfter: 10, CrashGap: 3, StarveFrom: -1, StarveTo: -1},
		{DelayNth: 2, DelayFor: 5, StarveFrom: -1, StarveTo: -1},
		{StarveFrom: 0, StarveTo: 2, StarveUntil: 40},
		{CrashAfter: 1, CrashGap: 1, DelayNth: 1, DelayFor: 1,
			StarveFrom: 1, StarveTo: 0, StarveUntil: 9},
		{StarveFrom: -1, StarveTo: -1, PartitionMask: 0b0110, PartitionAt: 10, HealAt: 40},
		// Never-healing partition: HealAt ≤ PartitionAt must survive the trip.
		{StarveFrom: -1, StarveTo: -1, PartitionMask: 1, PartitionAt: 25},
		{CrashAfter: 5, DelayNth: 2, DelayFor: 3, StarveFrom: 0, StarveTo: 2, StarveUntil: 11,
			PartitionMask: 0b1010, PartitionAt: 1, HealAt: 2},
	}
	for _, g := range specs {
		if got := GatesFromParams(g.Params()); got != g {
			t.Errorf("round trip %+v → %v → %+v", g, g.Params(), got)
		}
	}
	// A half-specified delay is a no-op and must encode as absent.
	half := NoGates()
	half.DelayNth = 3
	if p := half.Params(); p != nil {
		t.Errorf("no-op delay encoded as %v, want nil", p)
	}
	if !half.IsZero() {
		t.Error("half-specified delay should be zero-effect")
	}
}

// TestCompiledDelayGate exercises the delivery-delay gate against synthetic
// actions: the DelayNth-th distinct delivery is vetoed for exactly DelayFor
// steps, and the veto log records each refusal.
func TestCompiledDelayGate(t *testing.T) {
	g := NoGates()
	g.DelayNth, g.DelayFor = 2, 5
	var log []trace.GateVeto
	gate := g.Compile(&log, nil)

	recv := func(i int) ioa.Action {
		return ioa.Action{Kind: ioa.KindReceive, Name: "receive", Loc: ioa.Loc(i), Peer: 0}
	}
	if !gate(10, ioa.TaskRef{}, recv(1)) {
		t.Fatal("1st distinct delivery should pass (only every 2nd is delayed)")
	}
	if gate(10, ioa.TaskRef{}, recv(2)) {
		t.Fatal("2nd distinct delivery should be delayed at its first step")
	}
	if gate(14, ioa.TaskRef{}, recv(2)) {
		t.Fatal("delayed delivery released too early")
	}
	if !gate(15, ioa.TaskRef{}, recv(2)) {
		t.Fatal("delayed delivery should release after DelayFor steps")
	}
	if !gate(10, ioa.TaskRef{}, ioa.Action{Kind: ioa.KindCrash}) {
		t.Fatal("non-delivery actions must pass a delay-only spec")
	}
	if len(log) != 2 {
		t.Fatalf("veto log recorded %d refusals, want 2", len(log))
	}
}

// TestCompiledStarvationGate exercises the channel-starvation gate: only the
// named channel is starved, and only until StarveUntil.
func TestCompiledStarvationGate(t *testing.T) {
	g := NoGates()
	g.StarveFrom, g.StarveTo, g.StarveUntil = 0, 1, 50
	gate := g.Compile(nil, nil)

	starved := ioa.Action{Kind: ioa.KindReceive, Name: "receive", Loc: 1, Peer: 0}
	other := ioa.Action{Kind: ioa.KindReceive, Name: "receive", Loc: 0, Peer: 1}
	if gate(49, ioa.TaskRef{}, starved) {
		t.Fatal("starved channel delivered before StarveUntil")
	}
	if !gate(50, ioa.TaskRef{}, starved) {
		t.Fatal("starved channel must resume at StarveUntil")
	}
	if !gate(0, ioa.TaskRef{}, other) {
		t.Fatal("reverse channel must not be starved")
	}
}

// TestParseTargetRoundTrip checks every sweepable target ID resolves back to
// a target with the same ID.
func TestParseTargetRoundTrip(t *testing.T) {
	ids := []string{SlandererID}
	for _, target := range DefaultTargets() {
		ids = append(ids, target.ID())
	}
	for _, id := range ids {
		target, err := ParseTarget(id)
		if err != nil {
			t.Errorf("ParseTarget(%q): %v", id, err)
			continue
		}
		if target.ID() != id {
			t.Errorf("ParseTarget(%q).ID() = %q", id, target.ID())
		}
	}
	if _, err := ParseTarget("nonsense"); err == nil {
		t.Error("ParseTarget accepted an unknown ID")
	}
}

// TestSlandererFlaggedShrunkReplayed is the harness's positive control, end
// to end: the deliberately broken detector is flagged, the failure shrinks
// without swapping its clause, and the shrunk artifact replays byte-for-byte
// deterministically to the same verdict.
func TestSlandererFlaggedShrunkReplayed(t *testing.T) {
	v, err := Execute(Run{Target: DetectorTarget{Family: "slanderer"}, N: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Failed() {
		t.Fatal("broken detector passed its checker")
	}
	clause := errClause(v.Err)
	if clause != "(strong accuracy)" {
		t.Fatalf("slanderer failed clause %q, want strong accuracy", clause)
	}

	min, tries := Shrink(v)
	if !min.Failed() || errClause(min.Err) != clause {
		t.Fatalf("shrink swapped the failure: %v (after %d tries)", min.Err, tries)
	}
	if min.Run.steps() > v.Run.steps() {
		t.Errorf("shrink grew the step bound: %d → %d", v.Run.steps(), min.Run.steps())
	}

	// Artifact round trip.
	var buf bytes.Buffer
	if err := trace.WriteArtifact(&buf, min.Artifact()); err != nil {
		t.Fatal(err)
	}
	a, err := trace.ReadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}

	// Replay must reproduce the recorded verdict and trace exactly.
	w, err := Replay(a)
	if err != nil {
		t.Fatalf("replay diverged: %v", err)
	}
	if !w.Failed() || w.Err.Error() != min.Err.Error() {
		t.Fatalf("replay verdict %v, recorded %v", w.Err, min.Err)
	}
}

// TestReplayDetectsTamperedVerdict checks Replay refuses an artifact whose
// recorded verdict contradicts the fresh execution.
func TestReplayDetectsTamperedVerdict(t *testing.T) {
	v, err := Execute(Run{Target: DetectorTarget{Family: "slanderer"}, N: 3, Steps: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Failed() {
		t.Fatal("expected a failing run to tamper with")
	}
	a := v.Artifact()
	a.Verdict = "" // claim the run passed
	if _, err := Replay(a); err == nil {
		t.Error("replay accepted an artifact with a falsified verdict")
	} else if !strings.Contains(err.Error(), "does not match recorded") {
		t.Errorf("unexpected replay error: %v", err)
	}
}

// TestShrinkIdentityOnPass checks Shrink is the identity on passing runs.
func TestShrinkIdentityOnPass(t *testing.T) {
	v, err := Execute(Run{Target: DetectorTarget{Family: "FD-Ω"}, N: 2, Steps: 200})
	if err != nil {
		t.Fatal(err)
	}
	if v.Failed() {
		t.Fatalf("healthy run failed: %v", v.Err)
	}
	if min, tries := Shrink(v); tries != 0 || min.Failed() {
		t.Errorf("Shrink spent %d tries on a passing run", tries)
	}
}

// TestCompiledPartitionGate exercises the compiled partition gate: cross-side
// deliveries are vetoed (and logged) exactly inside the window, and the
// telemetry observer flips GPartitionActive and samples the healed duration
// into HPartitionSteps without ever vetoing anything itself.
func TestCompiledPartitionGate(t *testing.T) {
	g := NoGates()
	g.PartitionMask, g.PartitionAt, g.HealAt = 0b01, 5, 12
	reg := telemetry.NewRegistry()
	var log []trace.GateVeto
	gate := g.Compile(&log, reg)

	cross := ioa.Action{Kind: ioa.KindReceive, Name: ioa.NameReceive, Loc: 1, Peer: 0}
	crash := ioa.Action{Kind: ioa.KindCrash, Name: ioa.NameCrash, Loc: 0}
	if !gate(4, ioa.TaskRef{}, cross) {
		t.Fatal("cross-side delivery vetoed before PartitionAt")
	}
	if gate(5, ioa.TaskRef{}, cross) {
		t.Fatal("cross-side delivery admitted inside the partition window")
	}
	// A non-delivery consult inside the window reaches the observer (the
	// conjunction short-circuits on the vetoed delivery above).
	if !gate(6, ioa.TaskRef{}, crash) {
		t.Fatal("partition gate vetoed a crash")
	}
	if got := reg.Value(telemetry.GPartitionActive); got != 1 {
		t.Errorf("partition_active = %d inside the window, want 1", got)
	}
	if gate(11, ioa.TaskRef{}, cross) {
		t.Fatal("cross-side delivery admitted at the last partitioned step")
	}
	if !gate(12, ioa.TaskRef{}, cross) {
		t.Fatal("cross-side delivery vetoed after HealAt")
	}
	if got := reg.Value(telemetry.GPartitionActive); got != 0 {
		t.Errorf("partition_active = %d after heal, want 0", got)
	}
	h := reg.Hist(telemetry.HPartitionSteps)
	if h.Count() != 1 || h.Sum() != int64(g.HealAt-g.PartitionAt) {
		t.Errorf("partition_steps histogram: count %d sum %d, want 1 observation of %d",
			h.Count(), h.Sum(), g.HealAt-g.PartitionAt)
	}
	if len(log) != 2 {
		t.Errorf("veto log recorded %d refusals, want 2", len(log))
	}
}

// TestShrinkKeepsPartitionClause: a failure that genuinely needs the
// partition — the heal lands so late that the isolated location cannot learn
// the crash set in the remaining budget — must keep its partition clause
// through shrinking.  Without the preservation guard, zeroing the gate spec
// would "simplify" the reproducer into a passing run.
func TestShrinkKeepsPartitionClause(t *testing.T) {
	r := Run{
		Target: GossipTarget{Source: "FD-Q", Out: "FD-P"}, N: 3,
		Plan: system.CrashOf(1),
		Gates: GateSpec{StarveFrom: -1, StarveTo: -1,
			PartitionMask: 0b100, PartitionAt: 1, HealAt: 598},
		Sched: SchedRoundRobin, Steps: 600,
	}
	v, err := Execute(r)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Failed() {
		t.Fatal("late-healing partition should defeat strong completeness")
	}
	clause := errClause(v.Err)
	if !strings.Contains(clause, "completeness") {
		t.Fatalf("unexpected clause %q", clause)
	}
	min, _ := Shrink(v)
	if !min.Failed() || errClause(min.Err) != clause {
		t.Fatalf("shrink swapped the clause: %v", min.Err)
	}
	if min.Run.Gates.PartitionMask == 0 {
		t.Error("shrink silently dropped the partition clause the failure needs")
	}
	// The control: without the partition the same run passes, so the
	// shrinker's candidates genuinely tried and rejected dropping it.
	ctl := r
	ctl.Gates = NoGates()
	w, err := Execute(ctl)
	if err != nil {
		t.Fatal(err)
	}
	if w.Failed() {
		t.Fatalf("un-partitioned control failed: %v", w.Err)
	}
}

// TestGateCompositionDeterministic composes every adversary plane at once —
// lossy links (drop, dup, reorder), delivery delay, crash release, and a
// healing partition — under each scheduler, and requires bit-identical
// re-execution plus a clean artifact replay through both engines.
func TestGateCompositionDeterministic(t *testing.T) {
	for _, kind := range Schedulers() {
		r := Run{
			Target: GossipTarget{Source: "FD-Q", Out: "FD-P", Forward: true}, N: 4,
			Plan: system.CrashOf(2),
			Gates: GateSpec{CrashAfter: 30, CrashGap: 10,
				DelayNth: 3, DelayFor: 9, StarveFrom: -1, StarveTo: -1,
				PartitionMask: 0b0011, PartitionAt: 50, HealAt: 160},
			Net:   system.NetSpec{Seed: 7, Drop: 100, Dup: 100, Reorder: 100},
			Sched: kind, Seed: 13, Steps: 700,
		}
		a, err := Execute(r)
		if err != nil {
			t.Fatalf("%s: Execute: %v", kind, err)
		}
		b, err := Execute(r)
		if err != nil {
			t.Fatalf("%s: re-Execute: %v", kind, err)
		}
		if !trace.Equal(a.Trace, b.Trace) {
			t.Errorf("%s: composed-adversary traces differ (%d vs %d events)",
				kind, len(a.Trace), len(b.Trace))
		}
		if _, err := Replay(a.Artifact()); err != nil {
			t.Errorf("%s: artifact replay: %v", kind, err)
		}
	}
}

// TestStopGatedVsStopQuiescent distinguishes the two ways a fully
// partitioned network ends a quiescing run: a permanent partition *gate*
// leaves cross-side deliveries enabled-but-vetoed (StopGated), while a cut
// *topology* makes the same sends vanish so nothing is ever enabled
// (StopQuiescent).  Same reachability, opposite stall diagnosis.
func TestStopGatedVsStopQuiescent(t *testing.T) {
	gated := Run{
		Target: URBTarget{}, N: 3,
		Gates: GateSpec{StarveFrom: -1, StarveTo: -1, PartitionMask: 0b001},
		Sched: SchedRoundRobin, Steps: 50_000,
	}
	v, err := Execute(gated)
	if err != nil {
		t.Fatal(err)
	}
	if v.Reason != sched.StopGated {
		t.Errorf("permanent partition gate: stop reason %q, want %q", v.Reason, sched.StopGated)
	}
	quiet := Run{
		Target: URBTarget{}, N: 3,
		Net:   system.NetSpec{Topo: system.CutTopology(3, 0)},
		Sched: SchedRoundRobin, Steps: 50_000,
	}
	w, err := Execute(quiet)
	if err != nil {
		t.Fatal(err)
	}
	if w.Reason != sched.StopQuiescent {
		t.Errorf("cut topology: stop reason %q, want %q", w.Reason, sched.StopQuiescent)
	}
}
