package chaos

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/telemetry"
)

// SweepConfig configures a chaos sweep: the cartesian product of targets ×
// schedulers × seeds × enumerated fault plans, each run with independently
// sampled gate parameters.
type SweepConfig struct {
	// Targets under test; empty defaults to DefaultTargets().
	Targets []Target
	// N is the number of locations (default 3).
	N int
	// MaxT caps crashes per plan; it is additionally clamped to each
	// target's MaxT.  Negative means "target's maximum".
	MaxT int
	// Seeds runs seeds 0..Seeds-1 per (target, scheduler, plan) (default 8).
	Seeds int
	// Steps is the per-run step bound (0 = DefaultSteps(N)).
	Steps int
	// Scheds lists scheduler kinds to sweep (default Schedulers()).
	Scheds []string
	// Workers bounds runner goroutines (default GOMAXPROCS).
	Workers int
	// Shrink shrinks every failing run to a minimal reproducer.
	Shrink bool
	// Telemetry, when non-nil, counts executed runs (CChaosRuns) and
	// specification failures (CChaosFailures) and records one chaos-category
	// span per run (named by target ID, tid = worker).  Sweep progress then
	// shows up live on the expvar endpoint instead of only in the final
	// Report.  Per-run system internals are NOT wired — a sweep's runs
	// execute concurrently and would interleave meaninglessly; use
	// ExecuteInstrumented with TelemetryHook to deep-instrument one run.
	Telemetry telemetry.Sink
}

// DefaultTargets is the standard sweep: the Ω and ◇P detectors and
// consensus over Ω.
func DefaultTargets() []Target {
	return []Target{
		DetectorTarget{Family: "FD-Ω"},
		DetectorTarget{Family: "FD-◇P"},
		ConsensusTarget{Family: "FD-Ω"},
	}
}

func (c SweepConfig) withDefaults() SweepConfig {
	if len(c.Targets) == 0 {
		c.Targets = DefaultTargets()
	}
	if c.N <= 0 {
		c.N = 3
	}
	if c.Seeds <= 0 {
		c.Seeds = 8
	}
	if len(c.Scheds) == 0 {
		c.Scheds = Schedulers()
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Report summarizes a sweep.
type Report struct {
	// Runs is the number of executions performed.
	Runs int
	// Failures holds one verdict per failing run (shrunk when requested),
	// sorted by (target, scheduler, seed) for stable output.
	Failures []Verdict
	// Errors holds infrastructure errors (unbuildable targets, unknown
	// schedulers) — always empty for well-formed configs.
	Errors []error
	// ShrinkTries counts candidate executions spent shrinking.
	ShrinkTries int
}

// Sweep executes the configured cartesian product in parallel and collects
// every specification violation.  Runs are independent — each worker builds
// a fresh system with freshly compiled gates — so the sweep is
// embarrassingly parallel and race-free; verdict collection is the only
// synchronized step.
func Sweep(cfg SweepConfig) *Report {
	cfg = cfg.withDefaults()

	var runs []Run
	for _, target := range cfg.Targets {
		maxT := target.MaxT(cfg.N)
		if cfg.MaxT >= 0 && cfg.MaxT < maxT {
			maxT = cfg.MaxT
		}
		plans := system.PlanSubsets(cfg.N, maxT)
		for _, schedKind := range cfg.Scheds {
			for seed := 0; seed < cfg.Seeds; seed++ {
				for pi, plan := range plans {
					// Gate parameters are sampled from a PRNG keyed by
					// (seed, plan index) so every run in the product sees a
					// different — but reproducible — adversary.  The sampled
					// values land in the Run (and any artifact); the
					// sampling stream itself is never needed again.
					grng := sched.NewPRNG(int64(seed)<<20 | int64(pi)<<1 | boolBit(schedKind == SchedLIFO))
					steps := cfg.Steps
					if steps <= 0 {
						steps = DefaultSteps(cfg.N)
					}
					runs = append(runs, Run{
						Target: target,
						N:      cfg.N,
						Plan:   plan,
						Gates:  SampleGates(grng, cfg.N, steps),
						Sched:  schedKind,
						Seed:   int64(seed),
						Steps:  cfg.Steps,
					})
				}
			}
		}
	}

	report := &Report{Runs: len(runs)}
	jobs := make(chan Run)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for r := range jobs {
				var t0 int64
				if cfg.Telemetry != nil {
					t0 = cfg.Telemetry.Now()
				}
				v, err := Execute(r)
				if cfg.Telemetry != nil {
					cfg.Telemetry.Count(telemetry.CChaosRuns, 1)
					cfg.Telemetry.Span(telemetry.CatChaos, r.Target.ID(), t0, int32(worker), int64(v.Steps))
					if err == nil && v.Failed() {
						cfg.Telemetry.Count(telemetry.CChaosFailures, 1)
					}
				}
				if err != nil {
					mu.Lock()
					report.Errors = append(report.Errors, err)
					mu.Unlock()
					continue
				}
				if !v.Failed() {
					continue
				}
				tries := 0
				if cfg.Shrink {
					v, tries = Shrink(v)
				}
				mu.Lock()
				report.Failures = append(report.Failures, v)
				report.ShrinkTries += tries
				mu.Unlock()
			}
		}(w)
	}
	for _, r := range runs {
		jobs <- r
	}
	close(jobs)
	wg.Wait()

	sort.Slice(report.Failures, func(i, j int) bool {
		a, b := report.Failures[i].Run, report.Failures[j].Run
		if a.Target.ID() != b.Target.ID() {
			return a.Target.ID() < b.Target.ID()
		}
		if a.Sched != b.Sched {
			return a.Sched < b.Sched
		}
		return a.Seed < b.Seed
	})
	return report
}

func boolBit(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// Summary renders a one-line human-readable sweep outcome.
func (r *Report) Summary() string {
	if len(r.Errors) > 0 {
		return fmt.Sprintf("%d runs, %d failures, %d infrastructure errors",
			r.Runs, len(r.Failures), len(r.Errors))
	}
	return fmt.Sprintf("%d runs, %d failures", r.Runs, len(r.Failures))
}
