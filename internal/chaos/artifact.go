package chaos

import (
	"fmt"

	"repro/internal/system"
	"repro/internal/trace"
)

// Artifact converts a verdict into its replayable wire form.  The artifact
// records the run inputs (target, n, steps, scheduler, seed, plan, gate
// parameters), the observed veto log and trace, and the verdict string;
// only the inputs drive a replay.
func (v Verdict) Artifact() *trace.Artifact {
	s := v.Run.Sched
	if s == "" {
		s = SchedRoundRobin
	}
	verdict := ""
	if v.Err != nil {
		verdict = v.Err.Error()
	}
	return &trace.Artifact{
		Target:  v.Run.Target.ID(),
		N:       v.Run.N,
		Steps:   v.Run.steps(),
		Sched:   s,
		Seed:    v.Run.Seed,
		Crash:   v.Run.Plan.Crash,
		Gate:    v.Run.Gates.Params(),
		GateLog: v.GateLog,
		Verdict: verdict,
		Trace:   v.Trace,
	}
}

// RunFromArtifact reconstructs the run an artifact records.
func RunFromArtifact(a *trace.Artifact) (Run, error) {
	target, err := ParseTarget(a.Target)
	if err != nil {
		return Run{}, err
	}
	return Run{
		Target: target,
		N:      a.N,
		Plan:   system.CrashOf(a.Crash...),
		Gates:  GatesFromParams(a.Gate),
		Sched:  a.Sched,
		Seed:   a.Seed,
		Steps:  a.Steps,
	}, nil
}

// Replay re-executes the run an artifact records and reports whether the
// fresh verdict matches the recorded one.  A nil error with Verdict.Failed()
// false means the artifact no longer reproduces (e.g. the bug was fixed);
// a non-nil error means the replay itself diverged from the record, which
// indicates broken determinism.
func Replay(a *trace.Artifact) (Verdict, error) {
	r, err := RunFromArtifact(a)
	if err != nil {
		return Verdict{}, err
	}
	v, err := Execute(r)
	if err != nil {
		return Verdict{}, err
	}
	recordedFail := a.Verdict != ""
	if v.Failed() != recordedFail {
		return v, fmt.Errorf("chaos: replay verdict %v does not match recorded %q", v.Err, a.Verdict)
	}
	if len(a.Trace) > 0 && !trace.Equal(v.Trace, a.Trace) {
		return v, fmt.Errorf("chaos: replay trace diverges from recorded trace (%d vs %d events)",
			len(v.Trace), len(a.Trace))
	}
	return v, nil
}
