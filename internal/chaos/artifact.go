package chaos

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/trace"
)

// Artifact converts a verdict into its replayable wire form.  The artifact
// records the run inputs (target, n, steps, scheduler, seed, plan, gate
// parameters), the observed veto log and trace, and the verdict string;
// only the inputs drive a replay.
func (v Verdict) Artifact() *trace.Artifact {
	s := v.Run.Sched
	if s == "" {
		s = SchedRoundRobin
	}
	verdict := ""
	if v.Err != nil {
		verdict = v.Err.Error()
	}
	a := &trace.Artifact{
		Target:  v.Run.Target.ID(),
		N:       v.Run.N,
		Steps:   v.Run.steps(),
		Sched:   s,
		Seed:    v.Run.Seed,
		Crash:   v.Run.Plan.Crash,
		Gate:    v.Run.Gates.Params(),
		GateLog: v.GateLog,
		Verdict: verdict,
		Trace:   v.Trace,
	}
	if !v.Run.Net.IsZero() {
		a.Net = &trace.NetWire{
			Topo:    v.Run.Net.Topo.Desc(),
			Seed:    v.Run.Net.Seed,
			Drop:    v.Run.Net.Drop,
			Dup:     v.Run.Net.Dup,
			Reorder: v.Run.Net.Reorder,
		}
		a.NetLog = v.NetLog
	}
	return a
}

// RunFromArtifact reconstructs the run an artifact records.
func RunFromArtifact(a *trace.Artifact) (Run, error) {
	target, err := ParseTarget(a.Target)
	if err != nil {
		return Run{}, err
	}
	r := Run{
		Target: target,
		N:      a.N,
		Plan:   system.CrashOf(a.Crash...),
		Gates:  GatesFromParams(a.Gate),
		Sched:  a.Sched,
		Seed:   a.Seed,
		Steps:  a.Steps,
	}
	if a.Net != nil {
		topo, err := system.ParseTopology(a.N, a.Net.Topo)
		if err != nil {
			return Run{}, err
		}
		r.Net = system.NetSpec{
			Topo:    topo,
			Seed:    a.Net.Seed,
			Drop:    a.Net.Drop,
			Dup:     a.Net.Dup,
			Reorder: a.Net.Reorder,
		}
	}
	return r, nil
}

// Replay re-executes the run an artifact records and reports whether the
// fresh verdict matches the recorded one.  A nil error with Verdict.Failed()
// false means the artifact no longer reproduces (e.g. the bug was fixed);
// a non-nil error means the replay itself diverged from the record, which
// indicates broken determinism.
//
// Replay validates the recorded trace through two independent engines: the
// scheduler re-execution above (same scheduler, seed, gates), and a
// cross-engine pass that feeds the recorded events one at a time through a
// freshly built fast-path system via ioa.ReplayTrace — each event must be
// the currently enabled action of some task of the incremental ready-set,
// and the events the fresh system traces must be byte-identical to the
// record.  The second pass certifies the artifact against the enabled-set
// machinery itself rather than against the scheduler that happened to
// produce it, so a stale-ready-set bug cannot hide behind deterministic
// re-execution of itself.  It used to stop at the verdict comparison, which
// accepted artifacts whose traces no current system can actually perform.
func Replay(a *trace.Artifact) (Verdict, error) { return ReplayInstrumented(a, nil) }

// ReplayInstrumented is Replay with an ExecuteInstrumented hook, so a
// recorded failure can be re-executed with telemetry attached
// (TelemetryHook) or under a fresh oracle — the artifact names the run, the
// hook chooses what to watch.  This is the trace.Artifact.TraceRef
// round-trip: a chaos binary records an artifact plus a Chrome trace, and a
// later session re-traces exactly that run from the artifact alone.
func ReplayInstrumented(a *trace.Artifact, instrument func(*Built) func() error) (Verdict, error) {
	r, err := RunFromArtifact(a)
	if err != nil {
		return Verdict{}, err
	}
	v, err := ExecuteInstrumented(r, instrument)
	if err != nil {
		return Verdict{}, err
	}
	recordedFail := a.Verdict != ""
	if v.Failed() != recordedFail {
		return v, fmt.Errorf("chaos: replay verdict %v does not match recorded %q", v.Err, a.Verdict)
	}
	if len(a.Trace) > 0 && !trace.Equal(v.Trace, a.Trace) {
		return v, fmt.Errorf("chaos: replay trace diverges from recorded trace (%d vs %d events)",
			len(v.Trace), len(a.Trace))
	}
	if err := ReplayThroughSystem(a); err != nil {
		return v, err
	}
	return v, nil
}

// ReplayThroughSystem performs the cross-engine half of Replay: it rebuilds
// the artifact's target and replays the recorded trace event-by-event
// through the fast-path ioa.System, then asserts the fresh system's trace is
// byte-identical to the record.  Sound for chaos targets because they emit
// no internal or hidden actions — the recorded trace is the complete event
// sequence of the run.
func ReplayThroughSystem(a *trace.Artifact) error {
	if len(a.Trace) == 0 {
		return nil
	}
	r, err := RunFromArtifact(a)
	if err != nil {
		return err
	}
	// A fresh per-run Net re-derives the recorded link decisions from the
	// spec — the cross-engine pass replays lossy runs without the log.
	var nt *system.Net
	if !r.Net.IsZero() {
		nt = system.NewNet(r.Net)
	}
	b, err := r.Target.Build(a.N, r.Plan, nt, a.Sched == SchedLIFO)
	if err != nil {
		return err
	}
	if idx, err := ioa.ReplayTrace(b.Sys, a.Trace, nil); err != nil {
		return fmt.Errorf("chaos: recorded trace rejected by fresh system at event %d: %w", idx, err)
	}
	if got := b.Sys.Trace(); !trace.Equal(got, a.Trace) {
		return fmt.Errorf("chaos: cross-engine replay traced %d events, recorded %d — not byte-identical",
			len(got), len(a.Trace))
	}
	return nil
}
