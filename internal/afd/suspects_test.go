package afd

import (
	"testing"

	"repro/internal/ioa"
)

// suspects is the checkers' single reading of an FD-output payload; its
// malformed-payload convention — suspect everyone — is what makes a
// corrupted output a completeness pass but an accuracy violation, so a
// detector cannot escape judgment by emitting garbage.
func TestSuspectsWellFormed(t *testing.T) {
	out := ioa.FDOutput("FD-P", 0, ioa.EncodeLocSet(map[ioa.Loc]bool{1: true, 3: true}))
	for loc, want := range map[ioa.Loc]bool{0: false, 1: true, 2: false, 3: true} {
		if got := suspects(out, loc); got != want {
			t.Errorf("suspects(%q, %d) = %t, want %t", out.Payload, loc, got, want)
		}
	}
}

func TestSuspectsEmptySet(t *testing.T) {
	out := ioa.FDOutput("FD-P", 0, ioa.EncodeLocSet(nil))
	for loc := ioa.Loc(0); loc < 4; loc++ {
		if suspects(out, loc) {
			t.Errorf("empty set suspects %d", loc)
		}
	}
}

func TestSuspectsMalformedPayloadSuspectsEveryone(t *testing.T) {
	for _, payload := range []string{
		"",            // no payload at all
		"0,1",         // missing braces
		"{0,1",        // unterminated
		"0,1}",        // unopened
		"{a,b}",       // non-numeric members
		"{0,,1}",      // empty member
		"heartbeat:3", // a non-suspicion payload shape entirely
	} {
		out := ioa.FDOutput("FD-P", 0, payload)
		for loc := ioa.Loc(0); loc < 4; loc++ {
			if !suspects(out, loc) {
				t.Errorf("malformed payload %q does not suspect %d", payload, loc)
			}
		}
	}
}
