package afd

import (
	"math/rand"
	"testing"

	"repro/internal/ioa"
	"repro/internal/trace"
)

func TestPPlusGeneratorSatisfiesSpec(t *testing.T) {
	const n = 3
	tr, err := RunAutomaton(PPlus{}.Automaton(n), FamilyPPlus, []ioa.Loc{1}, 120, 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckPPlus(tr, n, DefaultWindow()); err != nil {
		t.Fatalf("canonical P+ trace rejected: %v", err)
	}
}

func TestPPlusRejectsLaggingOutput(t *testing.T) {
	tr := trace.T{
		ioa.Crash(1),
		ioa.FDOutput(FamilyPPlus, 0, "{}"), // lags behind the crash
	}
	if err := CheckPPlus(tr, 2, DefaultWindow()); err == nil {
		t.Fatal("lagging output accepted; P+ must be instantaneous")
	}
}

// TestPPlusClosedUnderSampling: samplings drop faulty-location suffixes and
// crash duplicates only, which preserves instantaneity.
func TestPPlusClosedUnderSampling(t *testing.T) {
	const n = 3
	tr, err := RunAutomaton(PPlus{}.Automaton(n), FamilyPPlus, []ioa.Loc{1}, 120, 30)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(5))
	isOut := IsOutput(FamilyPPlus)
	for i := 0; i < 20; i++ {
		s := trace.GenSampling(tr, n, isOut, rng)
		if err := trace.IsSampling(s, tr, n, isOut); err != nil {
			t.Fatal(err)
		}
		if err := CheckPPlus(s, n, DefaultWindow()); err != nil {
			t.Fatalf("sampling of P+ trace rejected (round %d): %v", i, err)
		}
	}
}

// TestPPlusNotClosedUnderReordering is the paper's footnote-1 point made
// executable: P+ is not an AFD because a constrained reordering of an
// admissible trace can violate instantaneity.  The reordering moves crash_1
// before an earlier {}-output at location 0 — permitted, because the
// constraints only preserve (a) per-location order and (b) the order of
// events *after* a crash they followed — and the moved output then lies
// about the instantaneous crash set.
func TestPPlusNotClosedUnderReordering(t *testing.T) {
	const n = 2
	admissible := trace.T{
		ioa.FDOutput(FamilyPPlus, 0, "{}"),
		ioa.Crash(1),
		ioa.FDOutput(FamilyPPlus, 0, "{1}"),
	}
	if err := CheckPPlus(admissible, n, DefaultWindow()); err != nil {
		t.Fatalf("base trace must be admissible: %v", err)
	}
	reordered := trace.T{
		ioa.Crash(1),
		ioa.FDOutput(FamilyPPlus, 0, "{}"), // now instantaneously wrong
		ioa.FDOutput(FamilyPPlus, 0, "{1}"),
	}
	if err := trace.IsConstrainedReordering(reordered, admissible); err != nil {
		t.Fatalf("the exhibit must be a constrained reordering: %v", err)
	}
	if err := CheckPPlus(reordered, n, DefaultWindow()); err == nil {
		t.Fatal("reordered trace accepted — P+ would be an AFD, contradicting [6]")
	}
}

// TestPVersusPPlusCollapse: the *same* reordered trace, read as a P trace,
// is admissible — under the AFD properties P+ collapses into P, which is
// exactly why the paper restricts attention to AFDs.
func TestPVersusPPlusCollapse(t *testing.T) {
	reordered := trace.T{
		ioa.Crash(1),
		ioa.FDOutput(FamilyP, 0, "{}"),
		ioa.FDOutput(FamilyP, 0, "{1}"),
		ioa.FDOutput(FamilyP, 0, "{1}"),
	}
	if err := (Perfect{}).Check(reordered, 2, DefaultWindow()); err != nil {
		t.Fatalf("P must accept the delayed reading: %v", err)
	}
}
