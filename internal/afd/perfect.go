package afd

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// Output families of the perfect and eventually perfect detectors.
const (
	FamilyP   = "FD-P"
	FamilyEvP = "FD-◇P"
)

// Perfect is the perfect failure detector P of Section 3.3 (Algorithm 2):
// suspicion-set outputs satisfying
//
//	(1) strong accuracy, perpetual: for every prefix tpre, no event in tpre
//	    suspects a location live in tpre (no location is suspected before
//	    its crash event);
//	(2) strong completeness: there is a suffix in which every output
//	    suspects every faulty location.
type Perfect struct{}

var _ Detector = Perfect{}

// Family implements Detector.
func (Perfect) Family() string { return FamilyP }

// Automaton implements Detector (Algorithm 2): output exactly crashset.
func (Perfect) Automaton(n int) ioa.Automaton {
	return NewGenerator(FamilyP, n, func(st *GenState, _ ioa.Loc) string {
		return ioa.EncodeLocSet(st.CrashSet())
	}).StablePayload(0)
}

// Check implements Detector.
func (Perfect) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyP, w); err != nil {
		return err
	}
	return checkSuspicions(t, n, FamilyP, w, accuracyPerpetual|completenessStrong)
}

// EvPerfect is the eventually perfect failure detector ◇P of Section 3.3:
//
//	(1) eventual strong accuracy: a suffix exists in which no output
//	    suspects any live location;
//	(2) strong completeness as for P.
//
// The canonical automaton outputs a deliberately wrong suspicion set —
// everything except the location itself — for the first Perverse outputs at
// each location, then exactly crashset; its fair traces are in T◇P but (for
// Perverse > 0) not in TP, witnessing that ◇P is strictly weaker.
type EvPerfect struct {
	// Perverse is the number of initial inaccurate outputs per location.
	Perverse int
}

var _ Detector = EvPerfect{}

// Family implements Detector.
func (EvPerfect) Family() string { return FamilyEvP }

// Automaton implements Detector.
func (d EvPerfect) Automaton(n int) ioa.Automaton {
	k := d.Perverse
	return NewGenerator(FamilyEvP, n, func(st *GenState, i ioa.Loc) string {
		if st.Emitted[i] < k {
			wrong := make(map[ioa.Loc]bool)
			for j := 0; j < st.N; j++ {
				if ioa.Loc(j) != i {
					wrong[ioa.Loc(j)] = true
				}
			}
			return ioa.EncodeLocSet(wrong)
		}
		return ioa.EncodeLocSet(st.CrashSet())
	}).StablePayload(k)
}

// Check implements Detector.
func (EvPerfect) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyEvP, w); err != nil {
		return err
	}
	return checkSuspicions(t, n, FamilyEvP, w, accuracyEventualStrong|completenessStrong)
}

// Suspicion-property flags shared by the Chandra-Toueg-style checkers.
type suspicionProps uint8

const (
	// accuracyPerpetual: no location suspected before its crash.
	accuracyPerpetual suspicionProps = 1 << iota
	// accuracyEventualStrong: eventually no live location suspected.
	accuracyEventualStrong
	// accuracyWeak: some live location is never suspected.
	accuracyWeak
	// accuracyEventualWeak: eventually some live location is not suspected.
	accuracyEventualWeak
	// completenessStrong: eventually every output suspects every faulty.
	completenessStrong
	// completenessWeak: eventually, for every faulty f, some live location's
	// outputs permanently suspect f.
	completenessWeak
)

// checkSuspicions verifies the selected accuracy/completeness combination on
// a suspicion-set trace of the given family.  t must already be validity-
// checked.  When there are no live locations every clause below is vacuous
// (nothing is output after the final crash), so the trace is admissible.
func checkSuspicions(t trace.T, n int, family string, w Window, props suspicionProps) error {
	isOut := IsOutput(family)
	live := trace.Live(t, n)
	faulty := trace.Faulty(t)
	if len(live) == 0 {
		return nil
	}

	if props&accuracyPerpetual != 0 {
		crashed := make(map[ioa.Loc]bool)
		for _, a := range t {
			if a.Kind == ioa.KindCrash {
				crashed[a.Loc] = true
				continue
			}
			if !isOut(a) {
				continue
			}
			for i := 0; i < n; i++ {
				if suspects(a, ioa.Loc(i)) && !crashed[ioa.Loc(i)] {
					return fmt.Errorf("afd: %s suspects %d before crash (strong accuracy)", a, i)
				}
			}
		}
	}

	if props&accuracyWeak != 0 {
		ok := false
		for l := range live {
			suspected := false
			for _, a := range t {
				if isOut(a) && suspects(a, l) {
					suspected = true
					break
				}
			}
			if !suspected {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("afd: %s: every live location suspected at some point (weak accuracy)", family)
		}
	}

	if w.Prefix {
		// The remaining clauses are all "eventually (permanently) X":
		// unrefutable on a finite prefix.
		return nil
	}

	if props&accuracyEventualStrong != 0 {
		if _, ok := stableFrom(t, n, family, w.minStable(), func(a ioa.Action) bool {
			for l := range live {
				if suspects(a, l) {
					return false
				}
			}
			return true
		}); !ok {
			return fmt.Errorf("afd: %s never stops suspecting live locations (eventual strong accuracy)", family)
		}
	}

	if props&accuracyEventualWeak != 0 {
		ok := false
		for l := range live {
			if _, good := stableFrom(t, n, family, w.minStable(), func(a ioa.Action) bool {
				return !suspects(a, l)
			}); good {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("afd: %s: no live location eventually unsuspected (eventual weak accuracy)", family)
		}
	}

	if props&completenessStrong != 0 {
		if _, ok := stableFrom(t, n, family, w.minStable(), func(a ioa.Action) bool {
			for f := range faulty {
				if !suspects(a, f) {
					return false
				}
			}
			return true
		}); !ok {
			return fmt.Errorf("afd: %s: faulty locations not eventually permanently suspected (strong completeness)", family)
		}
	}

	if props&completenessWeak != 0 {
		for f := range faulty {
			ok := false
			for l := range live {
				// Outputs at l must suspect f from some point on,
				// with at least one output at l in that suffix.
				s := len(t)
				for i := len(t) - 1; i >= 0; i-- {
					a := t[i]
					if isOut(a) && a.Loc == l && !suspects(a, f) {
						break
					}
					s = i
				}
				cnt := 0
				for _, a := range t[s:] {
					if isOut(a) && a.Loc == l {
						cnt++
					}
				}
				if cnt >= w.minStable() {
					ok = true
					break
				}
			}
			if !ok {
				return fmt.Errorf("afd: %s: faulty %v not permanently suspected by any live location (weak completeness)", family, f)
			}
		}
	}

	return nil
}
