package afd

import "repro/internal/trace"

// Checker adapts a detector specification to the uniform run-verdict
// signature func(trace.T) error that the chaos harness and other sweep
// drivers consume: given a *full* system trace, project it onto Iˆ ∪ OD and
// decide prefix-membership in TD under the given window.  A nil error means
// the run is consistent with the specification.
func Checker(d Detector, n int, w Window) func(trace.T) error {
	return func(t trace.T) error {
		return d.Check(trace.FD(t, d.Family()), n, w)
	}
}
