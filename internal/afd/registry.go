package afd

import (
	"fmt"
	"sort"
)

// Standard returns the detector zoo of Section 3.3 instantiated with
// conventional parameters for an n-location system: the eight Chandra-Toueg
// detectors, Ω, Σ, anti-Ω, Ωk and Ψk (k = ⌈n/2⌉), keyed by family name.
func Standard(n int) map[string]Detector {
	k := (n + 1) / 2
	ds := []Detector{
		Perfect{},
		EvPerfect{Perverse: 2},
		Strong{},
		EvStrong{Perverse: 2},
		Weak{},
		EvWeak{},
		QDetector{},
		EvQ{},
		Omega{},
		Sigma{},
		AntiOmega{},
		OmegaK{K: k},
		PsiK{K: k},
	}
	m := make(map[string]Detector, len(ds))
	for _, d := range ds {
		m[d.Family()] = d
	}
	return m
}

// Lookup returns the standard detector with the given family name.
func Lookup(family string, n int) (Detector, error) {
	d, ok := Standard(n)[family]
	if !ok {
		return nil, fmt.Errorf("afd: unknown detector family %q (known: %v)", family, Families(n))
	}
	return d, nil
}

// Families returns the sorted family names of the standard zoo.
func Families(n int) []string {
	m := Standard(n)
	out := make([]string, 0, len(m))
	for f := range m {
		out = append(out, f)
	}
	sort.Strings(out)
	return out
}
