package afd

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// This file covers Section 3.4: failure detectors that are *not* AFDs.
//
// The Marabout detector [14] always outputs exactly the set of locations
// that are faulty in the whole trace — including before any of them has
// crashed.  No automaton whose only inputs are the crash events can generate
// such traces, because in the I/O-automata framework it would have to
// predict the future fault pattern.  We provide the specification checker
// and a deliberately *non-causal* oracle that is constructed from the fault
// plan ahead of time; the oracle exists only to exercise the checker and to
// make the paper's point executable — see TestMaraboutRequiresClairvoyance.
//
// The detector Dk [3], which is accurate only about crashes occurring after
// real time k, cannot even be *specified* here: the framework has no real
// time, which is exactly the paper's argument.  It appears only in
// documentation.

// FamilyMarabout is the output family of the Marabout detector.
const FamilyMarabout = "FD-Marabout"

// CheckMarabout verifies the Marabout specification on a finite trace: every
// output event's payload equals faulty(t) — the final fault set — even for
// outputs occurring before the crashes.
func CheckMarabout(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyMarabout, w); err != nil {
		return err
	}
	want := ioa.EncodeLocSet(trace.Faulty(t))
	for _, a := range t {
		if a.Kind == ioa.KindFD && a.Name == FamilyMarabout && a.Payload != want {
			return fmt.Errorf("afd: Marabout output %v differs from final fault set %s", a, want)
		}
	}
	return nil
}

// MaraboutOracle is the non-causal generator: it is told the complete fault
// pattern at construction time and outputs it from the start.  It is not a
// failure-detector automaton in the paper's sense — its output function
// reads the future — and it exists to demonstrate Section 3.4: removing the
// clairvoyance (using crashset instead, as any honest automaton must) makes
// the Marabout checker reject as soon as a crash occurs after the first
// output.
func MaraboutOracle(n int, willCrash []ioa.Loc) ioa.Automaton {
	future := make(map[ioa.Loc]bool, len(willCrash))
	for _, l := range willCrash {
		future[l] = true
	}
	payload := ioa.EncodeLocSet(future)
	return NewGenerator(FamilyMarabout, n, func(*GenState, ioa.Loc) string {
		return payload
	}).StablePayload(0)
}

// MaraboutHonest is the best causal attempt at Marabout: output crashset.
// Its traces violate CheckMarabout whenever a crash follows an output,
// demonstrating non-implementability.
func MaraboutHonest(n int) ioa.Automaton {
	return NewGenerator(FamilyMarabout, n, func(st *GenState, _ ioa.Loc) string {
		return ioa.EncodeLocSet(st.CrashSet())
	}).StablePayload(0)
}

// Slanderer is a deliberately broken perfect detector: its automaton
// outputs crashset ∪ {Scapegoat}, accusing the scapegoat location before
// (and regardless of whether) it crashes.  While the scapegoat is live this
// violates P's perpetual strong accuracy — a safety clause, refutable on
// any finite prefix — so a sound checker must flag every run in which an
// output fires before the scapegoat's crash.  It exists as the chaos
// harness's positive control: a sweep that does not flag the Slanderer is
// not checking anything.
type Slanderer struct {
	// Scapegoat is the wrongly suspected location (default 0).
	Scapegoat ioa.Loc
}

var _ Detector = Slanderer{}

// Family implements Detector: the Slanderer masquerades as P.
func (Slanderer) Family() string { return FamilyP }

// Automaton implements Detector: output crashset ∪ {Scapegoat}.
func (d Slanderer) Automaton(n int) ioa.Automaton {
	return NewGenerator(FamilyP, n, func(st *GenState, _ ioa.Loc) string {
		set := st.CrashSet()
		set[d.Scapegoat] = true
		return ioa.EncodeLocSet(set)
	}).StablePayload(0)
}

// Check implements Detector by deferring to the honest P specification —
// the broken part is the automaton, not the checker.
func (d Slanderer) Check(t trace.T, n int, w Window) error {
	return Perfect{}.Check(t, n, w)
}
