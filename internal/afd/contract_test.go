package afd

import (
	"testing"

	"repro/internal/ioa"
)

// TestAutomatonContracts applies the shared structural contract to every
// detector's canonical automaton, fresh and after a crash input.
func TestAutomatonContracts(t *testing.T) {
	const n = 3
	for fam, d := range Standard(n) {
		fresh := d.Automaton(n)
		if err := ioa.CheckAutomatonContract(fresh); err != nil {
			t.Errorf("%s fresh: %v", fam, err)
		}
		advanced := d.Automaton(n)
		advanced.Input(ioa.Crash(1))
		advanced.Fire(ioa.FDOutput(fam, 0, ""))
		if err := ioa.CheckAutomatonContract(advanced); err != nil {
			t.Errorf("%s advanced: %v", fam, err)
		}
	}
	for _, a := range []ioa.Automaton{
		MaraboutOracle(n, []ioa.Loc{1}),
		MaraboutHonest(n),
		PPlus{}.Automaton(n),
	} {
		if err := ioa.CheckAutomatonContract(a); err != nil {
			t.Error(err)
		}
	}
}
