package afd

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// Edge-case and error-path coverage for the detector checkers.

func TestSigmaRejectsMalformedPayload(t *testing.T) {
	tr := trace.T{ioa.FDOutput(FamilySigma, 0, "junk")}
	if err := (Sigma{}).Check(tr, 1, DefaultWindow()); err == nil {
		t.Fatal("malformed Σ payload accepted")
	}
}

func TestSigmaAllCrashedVacuous(t *testing.T) {
	tr := trace.T{ioa.FDOutput(FamilySigma, 0, "{0}"), ioa.Crash(0)}
	if err := (Sigma{}).Check(tr, 1, DefaultWindow()); err != nil {
		t.Fatalf("all-crashed Σ trace should be vacuous: %v", err)
	}
}

func TestAntiOmegaAllCrashedVacuous(t *testing.T) {
	tr := trace.T{ioa.FDOutput(FamilyAntiOmega, 0, "1"), ioa.Crash(0), ioa.Crash(1)}
	if err := (AntiOmega{}).Check(tr, 2, DefaultWindow()); err != nil {
		t.Fatalf("all-crashed anti-Ω trace should be vacuous: %v", err)
	}
}

func TestOmegaKRejectsNoOutputs(t *testing.T) {
	tr := trace.T{ioa.Crash(0), ioa.FDOutput(FamilyOmegaK, 1, "{1}")}
	// Delete the single output: validity already fails, so craft a
	// zero-output live trace directly against the stabilization logic via
	// prefix of crash-only events plus one output at the other location.
	bad := trace.T{ioa.Crash(0)}
	if err := (OmegaK{K: 1}).Check(bad, 2, DefaultWindow()); err == nil {
		t.Fatal("live location without outputs accepted")
	}
	if err := (OmegaK{K: 1}).Check(tr, 2, DefaultWindow()); err != nil {
		t.Fatalf("valid Ωk trace rejected: %v", err)
	}
}

func TestOmegaKMalformedPayload(t *testing.T) {
	tr := trace.T{ioa.FDOutput(FamilyOmegaK, 0, "oops")}
	if err := (OmegaK{K: 1}).Check(tr, 1, DefaultWindow()); err == nil {
		t.Fatal("malformed Ωk payload accepted")
	}
}

func TestPsiKMalformedQuorum(t *testing.T) {
	tr := trace.T{ioa.FDOutput(FamilyPsiK, 0, "bad;{0}")}
	if err := (PsiK{K: 1}).Check(tr, 1, DefaultWindow()); err == nil {
		t.Fatal("malformed Ψk quorum accepted")
	}
}

func TestPsiKRejectsWrongKSetSize(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput(FamilyPsiK, 0, "{0,1};{0,1}"),
		ioa.FDOutput(FamilyPsiK, 1, "{0,1};{0,1}"),
	}
	if err := (PsiK{K: 1}).Check(tr, 2, DefaultWindow()); err == nil {
		t.Fatal("k-set of wrong size accepted")
	}
}

func TestPrefixWindowAcceptsUnstabilized(t *testing.T) {
	// An Ω prefix with a flapping leader is prefix-admissible (the leader
	// may stabilize later) but not window-admissible.
	tr := trace.T{
		ioa.FDOutput(FamilyOmega, 0, "0"),
		ioa.FDOutput(FamilyOmega, 1, "1"),
		ioa.FDOutput(FamilyOmega, 0, "1"),
		ioa.FDOutput(FamilyOmega, 1, "0"),
	}
	if err := (Omega{}).Check(tr, 2, DefaultWindow()); err == nil {
		t.Fatal("flapping Ω accepted as complete")
	}
	if err := (Omega{}).Check(tr, 2, PrefixWindow()); err != nil {
		t.Fatalf("flapping Ω prefix rejected in prefix mode: %v", err)
	}
}

func TestPrefixWindowStillRejectsSafetyViolations(t *testing.T) {
	// Prefix mode is not a free pass: outputs after a crash (validity) and
	// early suspicion (P's strong accuracy) remain rejected.
	afterCrash := trace.T{ioa.Crash(0), ioa.FDOutput(FamilyP, 0, "{}")}
	if err := (Perfect{}).Check(afterCrash, 1, PrefixWindow()); err == nil {
		t.Fatal("output after crash accepted in prefix mode")
	}
	early := trace.T{ioa.FDOutput(FamilyP, 0, "{1}")}
	if err := (Perfect{}).Check(early, 2, PrefixWindow()); err == nil {
		t.Fatal("pre-crash suspicion accepted in prefix mode")
	}
	disjoint := trace.T{
		ioa.FDOutput(FamilySigma, 0, "{0}"),
		ioa.FDOutput(FamilySigma, 1, "{1}"),
	}
	if err := (Sigma{}).Check(disjoint, 2, PrefixWindow()); err == nil {
		t.Fatal("disjoint quorums accepted in prefix mode")
	}
	weakAcc := trace.T{
		ioa.FDOutput(FamilyS, 0, "{1}"),
		ioa.FDOutput(FamilyS, 1, "{0}"),
	}
	if err := (Strong{}).Check(weakAcc, 2, PrefixWindow()); err == nil {
		t.Fatal("weak-accuracy violation accepted in prefix mode (every live suspected)")
	}
}

func TestRunCanonicalErrorPath(t *testing.T) {
	// A duplicate automaton name cannot happen through RunCanonical's own
	// construction, but the RunAutomaton variant surfaces composition
	// errors; force one by reusing the crash automaton name via a detector
	// automaton named identically.  Simpler: verify the happy-path Spec
	// defaults (Steps<=0 → 64·N).
	tr, err := RunCanonical(Omega{}, RunSpec{N: 2, Seed: -1})
	if err != nil {
		t.Fatal(err)
	}
	if len(tr) == 0 {
		t.Fatal("default step budget produced no events")
	}
}
