package afd

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// TestQuickCanonicalTracesAdmissible (testing/quick): for random fault
// patterns, crash timings, and schedule seeds, every detector's canonical
// trace is admissible and stays admissible under a random sampling and a
// random constrained reordering.
func TestQuickCanonicalTracesAdmissible(t *testing.T) {
	const n = 4
	w := DefaultWindow()
	dets := Standard(n)
	famList := Families(n)
	prop := func(famIdx uint8, crashBits uint8, seed int64, gate uint8) bool {
		fam := famList[int(famIdx)%len(famList)]
		d := dets[fam]
		var plan []ioa.Loc
		for i := 0; i < n-1; i++ { // keep at least location n-1 live
			if crashBits&(1<<i) != 0 {
				plan = append(plan, ioa.Loc(i))
			}
		}
		if seed < 0 {
			seed = -seed
		}
		// Steps must leave a generous suffix after the last admissible
		// crash (threshold up to 3·99 steps with the gap below) for the
		// liveness clauses to stabilize in.  300 was enough only while the
		// CrashesAfter release-ratchet bug (fixed in PR 2) silently kept
		// most later crashes from ever firing.
		tr, err := RunCanonical(d, RunSpec{
			N: n, Crash: plan, Steps: 700, Seed: seed % 1000,
			CrashGate: 20 + int(gate)%80,
		})
		if err != nil {
			return false
		}
		if err := d.Check(tr, n, w); err != nil {
			t.Logf("%s plan=%v seed=%d: %v", fam, plan, seed%1000, err)
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		s := trace.GenSampling(tr, n, IsOutput(fam), rng)
		if err := d.Check(s, n, w); err != nil {
			t.Logf("%s sampling: %v", fam, err)
			return false
		}
		// Reorderings are judged in prefix mode: they may defer the
		// stabilized suffix beyond the observed window.
		r := trace.GenConstrainedReordering(tr, rng)
		if err := d.Check(r, n, PrefixWindow()); err != nil {
			t.Logf("%s reordering: %v", fam, err)
			return false
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestQuickValidityRejectsCorruption (testing/quick): inserting an output
// event after its location's crash always violates validity.
func TestQuickValidityRejectsCorruption(t *testing.T) {
	const n = 3
	prop := func(seed int64, loc uint8) bool {
		if seed < 0 {
			seed = -seed
		}
		l := ioa.Loc(loc % n)
		tr, err := RunCanonical(Perfect{}, RunSpec{
			N: n, Crash: []ioa.Loc{l}, Steps: 150, Seed: seed % 500, CrashGate: 30,
		})
		if err != nil {
			return false
		}
		// Only corrupt traces where the crash actually fired.
		if trace.FirstCrashIndex(tr, l) < 0 {
			return true
		}
		corrupted := append(append(trace.T{}, tr...), ioa.FDOutput(FamilyP, l, "{}"))
		return CheckValidity(corrupted, n, FamilyP, DefaultWindow()) != nil
	}
	cfg := &quick.Config{MaxCount: 40, Rand: rand.New(rand.NewSource(12))}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// TestWindowSemantics documents the finite-prefix reading: a run long past
// stabilization passes a demanding window; a run cut off mid-stabilization
// fails it while passing the minimal window.
func TestWindowSemantics(t *testing.T) {
	const n = 3
	d := EvPerfect{Perverse: 4}
	long, err := RunCanonical(d, RunSpec{N: n, Crash: []ioa.Loc{2}, Steps: 400, Seed: -1, CrashGate: 60})
	if err != nil {
		t.Fatal(err)
	}
	demanding := Window{MinOutputsPerLive: 5, MinStableOutputs: 5}
	if err := d.Check(long, n, demanding); err != nil {
		t.Fatalf("long run must satisfy a demanding window: %v", err)
	}
	// A prefix cut just after the crash has only 2–3 post-crash outputs per
	// live location: enough to witness eventual completeness minimally,
	// too few for the demanding window.
	ci := trace.FirstCrashIndex(long, 2)
	if ci < 0 {
		t.Fatal("crash missing from the long run")
	}
	short := long[:ci+6]
	if err := d.Check(short, n, DefaultWindow()); err != nil {
		t.Fatalf("prefix must satisfy the minimal window: %v", err)
	}
	if err := d.Check(short, n, demanding); err == nil {
		t.Fatal("short prefix satisfied the demanding window; window has no effect")
	}
}

// TestCheckCrashExclusive covers the crash-exclusivity precondition.
func TestCheckCrashExclusive(t *testing.T) {
	ok := trace.T{ioa.Crash(0), ioa.FDOutput(FamilyP, 1, "{0}")}
	if err := CheckCrashExclusive(ok, FamilyP); err != nil {
		t.Fatalf("pure FD trace rejected: %v", err)
	}
	for _, bad := range []trace.T{
		{ioa.Send(0, 1, "m")},
		{ioa.FDOutput(FamilyOmega, 0, "0")}, // wrong family
		{ioa.EnvInput("propose", 0, "1")},
	} {
		if err := CheckCrashExclusive(bad, FamilyP); err == nil {
			t.Errorf("foreign event accepted: %v", bad)
		}
	}
}
