// Package afd implements the asynchronous failure detector (AFD) formalism
// of Section 3 of "Asynchronous Failure Detectors" (Cornejo, Lynch, Sastry):
// the defining properties (validity, closure under sampling, closure under
// constrained reordering), executable membership checkers for the detectors
// the paper names, and canonical implementation automata for each of them
// (Algorithms 1 and 2 and their straightforward generalizations).
//
// An AFD D ≡ (Iˆ, OD, TD) is a crash problem whose only inputs are the crash
// events and whose admissible output sequences TD satisfy the three AFD
// properties.  In this package a Detector bundles:
//
//   - the action family of OD (a distinct ioa.Action name per detector, so
//     that renamings and distinct detectors never collide under composition);
//   - a canonical automaton whose fair traces lie in TD (the paper's device
//     for establishing that a specification is non-trivial, Section 3.1);
//   - a checker deciding whether a finite trace over Iˆ ∪ OD is a prefix of
//     some member of TD, under the documented finite-prefix semantics.
//
// # Finite-prefix semantics
//
// Simulations produce finite prefixes of fair executions.  A property of the
// form "eventually permanently X" is checked as: there is a suffix of the
// prefix on which X holds, and that suffix is non-vacuous — it contains at
// least Window.MinStableOutputs output events at every live location.  The
// validity clause "infinitely many outputs at each live location" is checked
// as at least Window.MinOutputsPerLive outputs at each live location.  Both
// bounds default to 1; experiments use larger windows for confidence.
package afd

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// Window parameterizes the finite-prefix reading of liveness clauses.
type Window struct {
	// MinOutputsPerLive is the finite stand-in for "infinitely many
	// outputs occur at each live location" (validity, Section 3.2).
	MinOutputsPerLive int
	// MinStableOutputs is the per-live-location number of output events a
	// stable suffix must contain to witness an "eventually permanently"
	// clause non-vacuously.
	MinStableOutputs int
	// Prefix selects prefix-admissibility: the trace is judged as a finite
	// prefix of a member of TD, so only clauses refutable on a prefix are
	// enforced (perpetual accuracy, quorum intersection, validity's
	// no-output-after-crash) and "eventually"-clauses are skipped — a
	// finite prefix can never refute them.
	//
	// Prefix mode is what closure under constrained reordering needs: a
	// reordering may move pre-crash outputs past the end of the observed
	// window (they are "delayed", Section 3.2), leaving a sequence that is
	// a prefix of an admissible trace without containing its stabilized
	// suffix.
	Prefix bool
}

// DefaultWindow is the minimal non-vacuous window.
func DefaultWindow() Window { return Window{MinOutputsPerLive: 1, MinStableOutputs: 1} }

// PrefixWindow is the prefix-admissibility window (safety clauses only).
func PrefixWindow() Window { return Window{Prefix: true} }

func (w Window) minOutputs() int {
	if w.MinOutputsPerLive <= 0 {
		return 1
	}
	return w.MinOutputsPerLive
}

func (w Window) minStable() int {
	if w.MinStableOutputs <= 0 {
		return 1
	}
	return w.MinStableOutputs
}

// Detector is an asynchronous failure detector specification with a
// canonical implementation automaton.
type Detector interface {
	// Family is the ioa.Action name of the detector's output events.
	Family() string
	// Automaton returns a fresh canonical implementation for n locations:
	// an automaton whose inputs are exactly the crash actions and whose
	// fair traces are a subset of TD (cf. Algorithms 1 and 2).
	Automaton(n int) ioa.Automaton
	// Check decides whether t — a finite trace over Iˆ ∪ OD, i.e. crash
	// events and this family's output events only — is admissible as a
	// prefix of a member of TD under the finite-prefix semantics of w.
	Check(t trace.T, n int, w Window) error
}

// IsOutput returns the classifier for a detector family's output events,
// used with the trace-calculus sampling helpers.
func IsOutput(family string) func(ioa.Action) bool {
	return func(a ioa.Action) bool { return a.Kind == ioa.KindFD && a.Name == family }
}

// CheckCrashExclusive verifies that t ranges over Iˆ ∪ OD for the given
// family: only crash events and output events of that family occur.  This is
// the crash-exclusivity side condition of Section 3.2 on the sequences a
// detector checker consumes.
func CheckCrashExclusive(t trace.T, family string) error {
	for _, a := range t {
		if a.Kind == ioa.KindCrash {
			continue
		}
		if a.Kind == ioa.KindFD && a.Name == family {
			continue
		}
		return fmt.Errorf("afd: event %v is neither a crash nor an output of %s", a, family)
	}
	return nil
}

// CheckValidity verifies the validity property of Section 3.2 on a finite
// trace: (1) no output occurs at a location after that location's first
// crash event; (2) every live location has at least w.MinOutputsPerLive
// outputs (the finite reading of "infinitely many").
func CheckValidity(t trace.T, n int, family string, w Window) error {
	if err := CheckCrashExclusive(t, family); err != nil {
		return err
	}
	isOut := IsOutput(family)
	crashed := make([]bool, n)
	counts := make([]int, n)
	for _, a := range t {
		if a.Loc < 0 || int(a.Loc) >= n {
			return fmt.Errorf("afd: event %v at out-of-range location (n=%d)", a, n)
		}
		switch {
		case a.Kind == ioa.KindCrash:
			crashed[a.Loc] = true
		case isOut(a):
			if crashed[a.Loc] {
				return fmt.Errorf("afd: output %v after crash_%v (validity 1)", a, a.Loc)
			}
			counts[a.Loc]++
		}
	}
	if w.Prefix {
		return nil // validity clause 2 is a liveness clause
	}
	for i := 0; i < n; i++ {
		if !crashed[i] && counts[i] < w.minOutputs() {
			return fmt.Errorf("afd: live location %d has %d outputs, need ≥ %d (validity 2)",
				i, counts[i], w.minOutputs())
		}
	}
	return nil
}

// stableFrom returns the least index s such that every output event of the
// family in t[s:] satisfies pred, and reports whether the suffix t[s:]
// contains at least minPer outputs at every live location (non-vacuity).
// The returned bool is false if no such non-vacuous suffix exists.
func stableFrom(t trace.T, n int, family string, minPer int, pred func(a ioa.Action) bool) (int, bool) {
	isOut := IsOutput(family)
	s := len(t)
	for i := len(t) - 1; i >= 0; i-- {
		if isOut(t[i]) && !pred(t[i]) {
			break
		}
		s = i
	}
	live := trace.Live(t, n)
	counts := make(map[ioa.Loc]int)
	for _, a := range t[s:] {
		if isOut(a) {
			counts[a.Loc]++
		}
	}
	for l := range live {
		if counts[l] < minPer {
			return s, false
		}
	}
	return s, true
}

// suspects reports whether the location-set payload of a suspicion-style
// output event contains i.  Malformed payloads count as suspecting everyone,
// which makes checkers fail loudly on encoding bugs.
func suspects(a ioa.Action, i ioa.Loc) bool {
	set, err := ioa.DecodeLocSet(a.Payload)
	if err != nil {
		return true
	}
	return set[i]
}
