package afd_test

import (
	"fmt"

	"repro/internal/afd"
	"repro/internal/ioa"
)

// Running Algorithm 1 (the Ω automaton) under a fault pattern and checking
// the trace against TΩ.
func ExampleOmega() {
	tr, err := afd.RunCanonical(afd.Omega{}, afd.RunSpec{
		N:         3,
		Crash:     []ioa.Loc{0}, // the initial leader crashes
		Steps:     120,
		Seed:      -1, // fair round-robin
		CrashGate: 30,
	})
	if err != nil {
		fmt.Println("run:", err)
		return
	}
	err = afd.Omega{}.Check(tr, 3, afd.DefaultWindow())
	fmt.Println("events:", len(tr), "admissible:", err == nil)
	// The last output names the post-crash leader.
	last := tr[len(tr)-1]
	fmt.Println("final output:", last.String())
	// Output:
	// events: 120 admissible: true
	// final output: FD-Ω(1)_1
}

// The prefix-admissibility mode accepts unstabilized prefixes while still
// enforcing safety clauses.
func ExamplePrefixWindow() {
	flapping := []ioa.Action{
		ioa.FDOutput(afd.FamilyOmega, 0, "0"),
		ioa.FDOutput(afd.FamilyOmega, 1, "1"),
	}
	full := afd.Omega{}.Check(flapping, 2, afd.DefaultWindow())
	prefix := afd.Omega{}.Check(flapping, 2, afd.PrefixWindow())
	fmt.Println("complete-trace check passes:", full == nil)
	fmt.Println("prefix check passes:", prefix == nil)
	// Output:
	// complete-trace check passes: false
	// prefix check passes: true
}
