package afd

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// FamilyPPlus is the output family of the instantaneously perfect detector.
const FamilyPPlus = "FD-P+"

// PPlus is the instantaneously perfect failure detector P+ of
// Charron-Bost/Hutle/Widder [6], discussed in the paper's footnote 1: every
// output is exactly the set of locations crashed *so far*.  Unlike P, which
// may lag, P+ is synchronized with the fault pattern instant by instant.
//
// P+ is a well-defined crash problem with crash exclusivity and a causal
// generator (Algorithm 2 emits exactly crashset), and its trace set is
// closed under sampling — but it is NOT an AFD: it violates closure under
// constrained reordering.  A constrained reordering may move a crashj
// event *earlier* relative to an output at a different location (the
// reordering constraints only forbid moving events *before* a crash that
// preceded them), after which that output no longer equals the crash set of
// its prefix.  CheckPPlus therefore rejects some constrained reorderings of
// admissible traces; TestPPlusNotClosedUnderReordering exhibits one.
//
// This makes the paper's footnote-1 point executable: under the AFD
// definition (and under the query-based "implementation" definition of
// [20]) P+ and P collapse, because the asynchronous system cannot use the
// instantaneity that separates them.
type PPlus struct{}

// Automaton returns the causal generator (identical to P's: output
// crashset).  Its fair traces all satisfy CheckPPlus.
func (PPlus) Automaton(n int) ioa.Automaton {
	return NewGenerator(FamilyPPlus, n, func(st *GenState, _ ioa.Loc) string {
		return ioa.EncodeLocSet(st.CrashSet())
	}).StablePayload(0)
}

// CheckPPlus decides membership of a finite trace in TP+: validity plus
// the instantaneity property — every output's payload equals the set of
// locations crashed in the strict prefix before it.
func CheckPPlus(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyPPlus, w); err != nil {
		return err
	}
	crashed := make(map[ioa.Loc]bool)
	for _, a := range t {
		switch {
		case a.Kind == ioa.KindCrash:
			crashed[a.Loc] = true
		case a.Kind == ioa.KindFD && a.Name == FamilyPPlus:
			if want := ioa.EncodeLocSet(crashed); a.Payload != want {
				return fmt.Errorf("afd: P+ output %v differs from instantaneous crash set %s", a, want)
			}
		}
	}
	return nil
}
