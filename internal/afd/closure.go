package afd

import (
	"fmt"
	"math/rand"

	"repro/internal/trace"
)

// This file makes the two closure properties of the AFD definition
// (Section 3.2) executable: given a detector and an admissible trace, every
// sampling and every constrained reordering of the trace must again be
// admissible.  The harness draws random samplings/reorderings, verifies them
// against the Section-3.2 definitions with the trace-calculus verifiers, and
// re-runs the detector's membership checker on each.

// CheckClosureUnderSampling draws rounds random samplings of t (which must
// be admissible for d) and verifies each is (a) a sampling per Section 3.2
// and (b) still accepted by d's checker.
//
// The liveness window is relaxed for the derived traces: sampling may remove
// output events at faulty locations only, so live-location windows are
// preserved and the same window is used.
func CheckClosureUnderSampling(d Detector, t trace.T, n int, w Window, rounds int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	isOut := IsOutput(d.Family())
	for r := 0; r < rounds; r++ {
		s := trace.GenSampling(t, n, isOut, rng)
		if err := trace.IsSampling(s, t, n, isOut); err != nil {
			return fmt.Errorf("afd: generated sampling invalid (round %d): %v", r, err)
		}
		if err := d.Check(s, n, w); err != nil {
			return fmt.Errorf("afd: sampling of admissible trace rejected (round %d): %v", r, err)
		}
	}
	return nil
}

// CheckClosureUnderReordering draws rounds random constrained reorderings of
// t (which must be admissible for d) and verifies each is (a) a constrained
// reordering per Section 3.2 and (b) still accepted by d's checker in
// *prefix* mode.
//
// Prefix mode is the correct finite reading here: closure under constrained
// reordering is a statement about complete (infinite) traces, and on a
// finite window a reordering may legally move pre-crash outputs past the
// end of the observation — the result is a prefix of an admissible trace
// whose stabilized suffix lies beyond the window, so only the refutable
// (safety) clauses can be demanded of it.  The caller's window supplies
// MinOutputsPerLive context but its eventual clauses are not enforced.
func CheckClosureUnderReordering(d Detector, t trace.T, n int, w Window, rounds int, seed int64) error {
	rng := rand.New(rand.NewSource(seed))
	pw := w
	pw.Prefix = true
	for r := 0; r < rounds; r++ {
		p := trace.GenConstrainedReordering(t, rng)
		if err := trace.IsConstrainedReordering(p, t); err != nil {
			return fmt.Errorf("afd: generated reordering invalid (round %d): %v", r, err)
		}
		if err := d.Check(p, n, pw); err != nil {
			return fmt.Errorf("afd: constrained reordering of admissible trace rejected (round %d): %v", r, err)
		}
	}
	return nil
}
