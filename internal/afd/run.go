package afd

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

// RunSpec configures a canonical detector run.
type RunSpec struct {
	N         int       // number of locations
	Crash     []ioa.Loc // fault pattern, in crash order
	Steps     int       // step bound (default 64·N)
	Seed      int64     // <0: fair round-robin; ≥0: seeded random schedule
	CrashGate int       // release the k-th crash after CrashGate·(k+1) events
}

func (s RunSpec) steps() int {
	if s.Steps <= 0 {
		return 64 * s.N
	}
	return s.Steps
}

// RunAutomaton composes an arbitrary failure-detector automaton with a crash
// automaton for the given fault pattern, runs a fair round-robin schedule to
// the step bound, and returns the trace projected onto Iˆ plus the family's
// outputs.
func RunAutomaton(auto ioa.Automaton, family string, crash []ioa.Loc, steps, crashGate int) (trace.T, error) {
	sys, err := ioa.NewSystem(auto, system.NewCrash(system.CrashOf(crash...)))
	if err != nil {
		return nil, fmt.Errorf("afd: composing run: %w", err)
	}
	opts := sched.Options{MaxSteps: steps}
	if crashGate > 0 {
		opts.Gate = sched.CrashesAfter(crashGate, crashGate)
	}
	sched.RoundRobin(sys, opts)
	return trace.FD(sys.Trace(), family), nil
}

// RunCanonical composes d's canonical automaton with a crash automaton for
// the given fault pattern, runs it to the step bound, and returns the trace
// projected onto Iˆ ∪ OD.  The result is a finite prefix of a fair trace of
// the composition, hence (by the paper's solvability requirement on
// specifications, Section 3.1) admissible for d's checker.
func RunCanonical(d Detector, spec RunSpec) (trace.T, error) {
	sys, err := ioa.NewSystem(
		d.Automaton(spec.N),
		system.NewCrash(system.CrashOf(spec.Crash...)),
	)
	if err != nil {
		return nil, fmt.Errorf("afd: composing canonical run: %w", err)
	}
	opts := sched.Options{MaxSteps: spec.steps()}
	if spec.CrashGate > 0 {
		opts.Gate = sched.CrashesAfter(spec.CrashGate, spec.CrashGate)
	}
	if spec.Seed >= 0 {
		sched.Random(sys, spec.Seed, opts)
	} else {
		sched.RoundRobin(sys, opts)
	}
	return trace.FD(sys.Trace(), d.Family()), nil
}
