package afd

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// FamilyOmega is the output action family of the Ω AFD.
const FamilyOmega = "FD-Ω"

// Omega is the leader election oracle Ω of Section 3.3: it continually
// outputs a location ID at each location; eventually and permanently it
// outputs the ID of a single live location at every live location.  TΩ is
// the set of valid sequences t over Iˆ ∪ OΩ such that if live(t) ≠ ∅ there
// is an l ∈ live(t) and a suffix of t whose Ω-outputs are all FD-Ω(l)i with
// i ∈ live(t).
//
// The canonical automaton is Algorithm 1: output min(Π \ crashset) at every
// un-crashed location.
type Omega struct{}

var _ Detector = Omega{}

// Family implements Detector.
func (Omega) Family() string { return FamilyOmega }

// Automaton implements Detector (Algorithm 1).
func (Omega) Automaton(n int) ioa.Automaton {
	return NewGenerator(FamilyOmega, n, func(st *GenState, _ ioa.Loc) string {
		return ioa.EncodeLoc(st.MinLive())
	}).StablePayload(0)
}

// Check implements Detector.
func (Omega) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyOmega, w); err != nil {
		return err
	}
	if w.Prefix {
		// Ω's only clause beyond validity is the eventual leader
		// stabilization, which no finite prefix refutes.
		return nil
	}
	live := trace.Live(t, n)
	if len(live) == 0 {
		return nil // TΩ constrains only traces with live locations
	}
	// There must exist a live leader l and a non-vacuous suffix on which
	// every Ω output (necessarily at a live location, by validity and the
	// suffix position) reports l.
	for l := range live {
		want := ioa.EncodeLoc(l)
		if _, ok := stableFrom(t, n, FamilyOmega, w.minStable(), func(a ioa.Action) bool {
			return a.Payload == want && live[a.Loc]
		}); ok {
			return nil
		}
	}
	return fmt.Errorf("afd: no live leader stabilizes in Ω trace (live=%v)", ioa.EncodeLocSet(live))
}
