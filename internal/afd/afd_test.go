package afd

import (
	"strings"
	"testing"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// faultPatterns are the fault patterns every detector is exercised under.
func faultPatterns(n int) [][]ioa.Loc {
	return [][]ioa.Loc{
		nil,                      // failure-free
		{ioa.Loc(n - 1)},         // one crash, max location
		{0},                      // one crash, min location (Ω leader moves)
		{0, ioa.Loc(n - 1)},      // two crashes
		{ioa.Loc(1), ioa.Loc(0)}, // two crashes, reverse order
	}
}

// TestCanonicalAutomataSatisfySpecs is E2/E3/E4's core assertion: for every
// detector in the zoo, under every fault pattern, both fair (round-robin)
// and random schedules produce traces the detector's own checker accepts.
func TestCanonicalAutomataSatisfySpecs(t *testing.T) {
	const n = 4
	w := DefaultWindow()
	for family, d := range Standard(n) {
		for pi, plan := range faultPatterns(n) {
			for _, seed := range []int64{-1, 1, 2} {
				tr, err := RunCanonical(d, RunSpec{
					N: n, Crash: plan, Seed: seed, Steps: 400, CrashGate: 40,
				})
				if err != nil {
					t.Fatalf("%s plan %d seed %d: run: %v", family, pi, seed, err)
				}
				if err := d.Check(tr, n, w); err != nil {
					t.Errorf("%s plan %d seed %d: checker rejects canonical trace: %v",
						family, pi, seed, err)
				}
			}
		}
	}
}

// TestClosureProperties is E14: samplings and constrained reorderings of
// admissible traces remain admissible for every detector.
func TestClosureProperties(t *testing.T) {
	const n = 3
	w := DefaultWindow()
	for family, d := range Standard(n) {
		tr, err := RunCanonical(d, RunSpec{
			N: n, Crash: []ioa.Loc{2}, Seed: -1, Steps: 120, CrashGate: 30,
		})
		if err != nil {
			t.Fatalf("%s: run: %v", family, err)
		}
		if err := d.Check(tr, n, w); err != nil {
			t.Fatalf("%s: base trace rejected: %v", family, err)
		}
		if err := CheckClosureUnderSampling(d, tr, n, w, 20, 7); err != nil {
			t.Errorf("%s: %v", family, err)
		}
		if err := CheckClosureUnderReordering(d, tr, n, w, 20, 7); err != nil {
			t.Errorf("%s: %v", family, err)
		}
	}
}

func TestCheckValidityRejectsOutputAfterCrash(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput(FamilyP, 0, "{}"),
		ioa.Crash(1),
		ioa.FDOutput(FamilyP, 1, "{}"), // violation
		ioa.FDOutput(FamilyP, 2, "{1}"),
	}
	if err := CheckValidity(tr, 3, FamilyP, DefaultWindow()); err == nil {
		t.Fatal("output after crash must be rejected")
	}
}

func TestCheckValidityRequiresLiveOutputs(t *testing.T) {
	tr := trace.T{ioa.FDOutput(FamilyP, 0, "{}")}
	// Location 1 is live but silent.
	if err := CheckValidity(tr, 2, FamilyP, DefaultWindow()); err == nil {
		t.Fatal("silent live location must be rejected")
	}
}

func TestCheckValidityRejectsForeignEvents(t *testing.T) {
	tr := trace.T{ioa.FDOutput(FamilyP, 0, "{}"), ioa.Send(0, 1, "m")}
	if err := CheckValidity(tr, 1, FamilyP, DefaultWindow()); err == nil {
		t.Fatal("non-FD, non-crash event must be rejected (crash exclusivity)")
	}
}

func TestCheckValidityRejectsOutOfRange(t *testing.T) {
	tr := trace.T{ioa.FDOutput(FamilyP, 7, "{}")}
	if err := CheckValidity(tr, 2, FamilyP, DefaultWindow()); err == nil {
		t.Fatal("out-of-range location must be rejected")
	}
}

func TestOmegaCheckerRejectsFlappingLeader(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput(FamilyOmega, 0, "0"),
		ioa.FDOutput(FamilyOmega, 1, "1"),
		ioa.FDOutput(FamilyOmega, 0, "1"),
		ioa.FDOutput(FamilyOmega, 1, "0"),
	}
	if err := (Omega{}).Check(tr, 2, DefaultWindow()); err == nil {
		t.Fatal("Ω trace with no stable live leader must be rejected")
	}
}

func TestOmegaCheckerRejectsFaultyLeader(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput(FamilyOmega, 1, "0"),
		ioa.Crash(0),
		ioa.FDOutput(FamilyOmega, 1, "0"), // leader 0 is faulty
		ioa.FDOutput(FamilyOmega, 1, "0"),
	}
	if err := (Omega{}).Check(tr, 2, DefaultWindow()); err == nil {
		t.Fatal("Ω trace stabilizing to a faulty leader must be rejected")
	}
}

func TestOmegaCheckerAllCrashedVacuous(t *testing.T) {
	tr := trace.T{ioa.FDOutput(FamilyOmega, 0, "0"), ioa.Crash(0), ioa.Crash(1)}
	if err := (Omega{}).Check(tr, 2, DefaultWindow()); err != nil {
		t.Fatalf("TΩ only constrains traces with live locations: %v", err)
	}
}

func TestPerfectCheckerRejectsEarlySuspicion(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput(FamilyP, 0, "{1}"), // suspects 1 before its crash
		ioa.Crash(1),
		ioa.FDOutput(FamilyP, 0, "{1}"),
	}
	if err := (Perfect{}).Check(tr, 2, DefaultWindow()); err == nil {
		t.Fatal("P must reject suspicion before crash")
	}
}

func TestPerfectCheckerRejectsMissingSuspicion(t *testing.T) {
	tr := trace.T{
		ioa.Crash(1),
		ioa.FDOutput(FamilyP, 0, "{}"), // never suspects the crashed 1
	}
	if err := (Perfect{}).Check(tr, 2, DefaultWindow()); err == nil {
		t.Fatal("P must reject missing eventual suspicion")
	}
}

func TestEvPerfectAcceptsWhatPRejects(t *testing.T) {
	// An inaccurate prefix followed by exact suspicion: in T◇P, not in TP.
	mk := func(family string) trace.T {
		return trace.T{
			ioa.FDOutput(family, 0, "{1}"), // early false suspicion
			ioa.Crash(1),
			ioa.FDOutput(family, 0, "{1}"),
			ioa.FDOutput(family, 0, "{1}"),
		}
	}
	if err := (EvPerfect{}).Check(mk(FamilyEvP), 2, DefaultWindow()); err != nil {
		t.Fatalf("◇P must accept eventually accurate trace: %v", err)
	}
	if err := (Perfect{}).Check(mk(FamilyP), 2, DefaultWindow()); err == nil {
		t.Fatal("P must reject the same shape")
	}
}

func TestStrongAcceptsWhatPerfectRejects(t *testing.T) {
	// Suspecting live location 2 early violates strong accuracy but not
	// weak accuracy as long as some live location (here 1) is never
	// suspected.
	mk := func(family string) trace.T {
		return trace.T{
			ioa.FDOutput(family, 0, "{2}"), // false suspicion of live 2
			ioa.Crash(3),
			ioa.FDOutput(family, 0, "{3}"),
			ioa.FDOutput(family, 1, "{3}"),
			ioa.FDOutput(family, 2, "{3}"),
		}
	}
	if err := (Strong{}).Check(mk(FamilyS), 4, DefaultWindow()); err != nil {
		t.Fatalf("S must accept weak-accuracy trace: %v", err)
	}
	if err := (Perfect{}).Check(mk(FamilyP), 4, DefaultWindow()); err == nil {
		t.Fatal("P must reject false suspicion of a live location")
	}
}

func TestWeakCompletenessDistinguishesQFromP(t *testing.T) {
	// Only location 0 ever suspects the crashed 2: weakly but not strongly
	// complete.
	mk := func(family string) trace.T {
		return trace.T{
			ioa.Crash(2),
			ioa.FDOutput(family, 0, "{2}"),
			ioa.FDOutput(family, 1, "{}"),
			ioa.FDOutput(family, 0, "{2}"),
			ioa.FDOutput(family, 1, "{}"),
		}
	}
	if err := (QDetector{}).Check(mk(FamilyQ), 3, DefaultWindow()); err != nil {
		t.Fatalf("Q must accept weakly complete trace: %v", err)
	}
	if err := (Perfect{}).Check(mk(FamilyP), 3, DefaultWindow()); err == nil {
		t.Fatal("P must reject weakly-but-not-strongly complete trace")
	}
}

func TestSigmaCheckerRejectsDisjointQuorums(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput(FamilySigma, 0, "{0}"),
		ioa.FDOutput(FamilySigma, 1, "{1}"), // disjoint from {0}
	}
	if err := (Sigma{}).Check(tr, 2, DefaultWindow()); err == nil {
		t.Fatal("Σ must reject disjoint quorums")
	}
}

func TestSigmaCheckerRejectsDeadQuorums(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput(FamilySigma, 0, "{0,1}"),
		ioa.Crash(1),
		ioa.FDOutput(FamilySigma, 0, "{0,1}"), // still includes faulty 1
	}
	if err := (Sigma{}).Check(tr, 2, DefaultWindow()); err == nil {
		t.Fatal("Σ must reject quorums that never shed faulty locations")
	}
}

func TestAntiOmegaRejectsCoveringAllLive(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput(FamilyAntiOmega, 0, "0"),
		ioa.FDOutput(FamilyAntiOmega, 1, "1"),
		ioa.FDOutput(FamilyAntiOmega, 0, "1"),
		ioa.FDOutput(FamilyAntiOmega, 1, "0"),
	}
	if err := (AntiOmega{}).Check(tr, 2, DefaultWindow()); err == nil {
		t.Fatal("anti-Ω must reject traces whose suffix outputs every live location")
	}
}

func TestOmegaKRejectsWrongSize(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput(FamilyOmegaK, 0, "{0}"),
		ioa.FDOutput(FamilyOmegaK, 1, "{0}"),
	}
	if err := (OmegaK{K: 2}).Check(tr, 2, DefaultWindow()); err == nil {
		t.Fatal("Ωk must reject sets of the wrong size")
	}
}

func TestOmegaKRejectsNoLiveMember(t *testing.T) {
	tr := trace.T{
		ioa.Crash(0),
		ioa.FDOutput(FamilyOmegaK, 1, "{0}"),
		ioa.FDOutput(FamilyOmegaK, 1, "{0}"),
	}
	if err := (OmegaK{K: 1}).Check(tr, 2, DefaultWindow()); err == nil {
		t.Fatal("Ωk must reject a stabilized set with no live member")
	}
}

func TestPsiKRejectsTooManyDisjointQuorums(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput(FamilyPsiK, 0, "{0};{0}"),
		ioa.FDOutput(FamilyPsiK, 1, "{1};{0}"),
		ioa.FDOutput(FamilyPsiK, 2, "{2};{0}"),
		ioa.FDOutput(FamilyPsiK, 0, "{0};{0}"),
		ioa.FDOutput(FamilyPsiK, 1, "{1};{0}"),
		ioa.FDOutput(FamilyPsiK, 2, "{2};{0}"),
	}
	// Three pairwise-disjoint quorums with K=1 exceeds the K-intersection
	// bound (at most K disjoint).
	if err := (PsiK{K: 1}).Check(tr, 3, DefaultWindow()); err == nil {
		t.Fatal("Ψk must reject k+1 pairwise-disjoint quorums")
	}
}

func TestPsiKRejectsMalformedPayload(t *testing.T) {
	tr := trace.T{ioa.FDOutput(FamilyPsiK, 0, "{0}")}
	if err := (PsiK{K: 1}).Check(tr, 1, DefaultWindow()); err == nil {
		t.Fatal("Ψk must reject payloads without two components")
	}
}

// TestMaraboutRequiresClairvoyance is Section 3.4 made executable: the
// non-causal oracle satisfies the Marabout spec, while the best causal
// attempt (output crashset) violates it as soon as a crash follows an
// output.
func TestMaraboutRequiresClairvoyance(t *testing.T) {
	const n = 3
	run := func(auto ioa.Automaton, plan []ioa.Loc) trace.T {
		t.Helper()
		tr, err := RunAutomaton(auto, FamilyMarabout, plan, 100, 30)
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	plan := []ioa.Loc{2}
	oracle := run(MaraboutOracle(n, plan), plan)
	if err := CheckMarabout(oracle, n, DefaultWindow()); err != nil {
		t.Fatalf("clairvoyant oracle must satisfy Marabout: %v", err)
	}
	honest := run(MaraboutHonest(n), plan)
	if err := CheckMarabout(honest, n, DefaultWindow()); err == nil {
		t.Fatal("causal automaton satisfied Marabout; it must not (it cannot predict crashes)")
	} else if !strings.Contains(err.Error(), "final fault set") {
		t.Fatalf("unexpected rejection reason: %v", err)
	}
}

func TestRegistry(t *testing.T) {
	if _, err := Lookup(FamilyOmega, 3); err != nil {
		t.Fatalf("Lookup(Ω): %v", err)
	}
	if _, err := Lookup("FD-nope", 3); err == nil {
		t.Fatal("Lookup of unknown family must fail")
	}
	fams := Families(3)
	if len(fams) != 13 {
		t.Fatalf("Families = %d entries, want 13", len(fams))
	}
	for i := 1; i < len(fams); i++ {
		if fams[i-1] >= fams[i] {
			t.Fatal("Families must be sorted")
		}
	}
}

func TestGeneratorCrashDisablesTask(t *testing.T) {
	g := NewGenerator("FD-T", 2, func(*GenState, ioa.Loc) string { return "x" })
	if _, ok := g.Enabled(0); !ok {
		t.Fatal("task should be enabled initially")
	}
	g.Input(ioa.Crash(0))
	if _, ok := g.Enabled(0); ok {
		t.Fatal("crash must disable the location's output task")
	}
	if _, ok := g.Enabled(1); !ok {
		t.Fatal("other locations unaffected")
	}
}

func TestGeneratorCloneAndEncode(t *testing.T) {
	g := NewGenerator("FD-T", 2, func(*GenState, ioa.Loc) string { return "x" })
	c := g.Clone()
	if c.Encode() != g.Encode() {
		t.Fatal("clone must encode equal")
	}
	g.Input(ioa.Crash(0))
	if c.Encode() == g.Encode() {
		t.Fatal("clone shares state")
	}
}

func TestGenStateHelpers(t *testing.T) {
	st := &GenState{N: 3, Crashed: []bool{true, false, false}, Emitted: make([]int, 3)}
	if st.MinLive() != 1 {
		t.Errorf("MinLive = %v", st.MinLive())
	}
	if len(st.CrashSet()) != 1 || !st.CrashSet()[0] {
		t.Errorf("CrashSet = %v", st.CrashSet())
	}
	if len(st.LiveSet()) != 2 {
		t.Errorf("LiveSet = %v", st.LiveSet())
	}
	all := &GenState{N: 1, Crashed: []bool{true}, Emitted: []int{0}}
	if all.MinLive() != ioa.NoLoc {
		t.Errorf("MinLive with all crashed = %v", all.MinLive())
	}
}
