package afd

import (
	"repro/internal/ioa"
	"repro/internal/trace"
)

// Output families of the remaining Chandra-Toueg detectors (Section 3.3
// notes all eight detectors of [5] are expressible as AFDs; P and ◇P are
// spelled out in the paper, and S, W, Q and their eventual variants follow
// the same suspicion-set pattern).
const (
	FamilyS   = "FD-S"
	FamilyW   = "FD-W"
	FamilyQ   = "FD-Q"
	FamilyEvS = "FD-◇S"
	FamilyEvW = "FD-◇W"
	FamilyEvQ = "FD-◇Q"
)

// Strong is the strong failure detector S: strong completeness (eventually
// every output suspects every faulty location) plus perpetual weak accuracy
// (some live location is never suspected).
//
// The canonical automaton outputs exactly crashset: any automaton without
// knowledge of the future fault pattern can only guarantee *perpetual* weak
// accuracy by never suspecting a location that might stay live, so sound
// suspicions are the canonical realization; TS ⊋ TP is witnessed at the
// specification level by checker tests on handcrafted traces.
type Strong struct{}

var _ Detector = Strong{}

// Family implements Detector.
func (Strong) Family() string { return FamilyS }

// Automaton implements Detector.
func (Strong) Automaton(n int) ioa.Automaton { return crashsetGenerator(FamilyS, n) }

// Check implements Detector.
func (Strong) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyS, w); err != nil {
		return err
	}
	return checkSuspicions(t, n, FamilyS, w, completenessStrong|accuracyWeak)
}

// Weak is the weak failure detector W: weak completeness (every faulty
// location is eventually permanently suspected by some live location) plus
// perpetual weak accuracy.
type Weak struct{}

var _ Detector = Weak{}

// Family implements Detector.
func (Weak) Family() string { return FamilyW }

// Automaton implements Detector: the min-live location reports crashset,
// everyone else reports the empty set — weakly but not strongly complete.
func (Weak) Automaton(n int) ioa.Automaton { return minLiveGenerator(FamilyW, n) }

// Check implements Detector.
func (Weak) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyW, w); err != nil {
		return err
	}
	return checkSuspicions(t, n, FamilyW, w, completenessWeak|accuracyWeak)
}

// QDetector is the detector Q: weak completeness plus perpetual strong
// accuracy (no location is suspected before its crash event).
type QDetector struct{}

var _ Detector = QDetector{}

// Family implements Detector.
func (QDetector) Family() string { return FamilyQ }

// Automaton implements Detector.
func (QDetector) Automaton(n int) ioa.Automaton { return minLiveGenerator(FamilyQ, n) }

// Check implements Detector.
func (QDetector) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyQ, w); err != nil {
		return err
	}
	return checkSuspicions(t, n, FamilyQ, w, completenessWeak|accuracyPerpetual)
}

// EvStrong is ◇S: strong completeness plus eventual weak accuracy.  The
// canonical automaton suspects everything but itself for the first Perverse
// outputs per location, then exactly crashset; for Perverse > 0 its traces
// witness T◇S ⊋ TS.
type EvStrong struct{ Perverse int }

var _ Detector = EvStrong{}

// Family implements Detector.
func (EvStrong) Family() string { return FamilyEvS }

// Automaton implements Detector.
func (d EvStrong) Automaton(n int) ioa.Automaton {
	return perverseGenerator(FamilyEvS, n, d.Perverse)
}

// Check implements Detector.
func (EvStrong) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyEvS, w); err != nil {
		return err
	}
	return checkSuspicions(t, n, FamilyEvS, w, completenessStrong|accuracyEventualWeak)
}

// EvWeak is ◇W: weak completeness plus eventual weak accuracy.
type EvWeak struct{}

var _ Detector = EvWeak{}

// Family implements Detector.
func (EvWeak) Family() string { return FamilyEvW }

// Automaton implements Detector.
func (EvWeak) Automaton(n int) ioa.Automaton { return minLiveGenerator(FamilyEvW, n) }

// Check implements Detector.
func (EvWeak) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyEvW, w); err != nil {
		return err
	}
	return checkSuspicions(t, n, FamilyEvW, w, completenessWeak|accuracyEventualWeak)
}

// EvQ is ◇Q: weak completeness plus eventual strong accuracy.
type EvQ struct{}

var _ Detector = EvQ{}

// Family implements Detector.
func (EvQ) Family() string { return FamilyEvQ }

// Automaton implements Detector.
func (EvQ) Automaton(n int) ioa.Automaton { return minLiveGenerator(FamilyEvQ, n) }

// Check implements Detector.
func (EvQ) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyEvQ, w); err != nil {
		return err
	}
	return checkSuspicions(t, n, FamilyEvQ, w, completenessWeak|accuracyEventualStrong)
}

// crashsetGenerator outputs exactly crashset everywhere (Algorithm 2 shape).
func crashsetGenerator(family string, n int) ioa.Automaton {
	return NewGenerator(family, n, func(st *GenState, _ ioa.Loc) string {
		return ioa.EncodeLocSet(st.CrashSet())
	}).StablePayload(0)
}

// minLiveGenerator outputs crashset at min(Π \ crashset) and ∅ elsewhere —
// weakly but (with ≥ 2 live locations and ≥ 1 fault) not strongly complete.
func minLiveGenerator(family string, n int) ioa.Automaton {
	return NewGenerator(family, n, func(st *GenState, i ioa.Loc) string {
		if i == st.MinLive() {
			return ioa.EncodeLocSet(st.CrashSet())
		}
		return ioa.EncodeLocSet(nil)
	}).StablePayload(0)
}

// perverseGenerator suspects Π \ {i} for the first k outputs at each
// location i, then exactly crashset.
func perverseGenerator(family string, n, k int) ioa.Automaton {
	return NewGenerator(family, n, func(st *GenState, i ioa.Loc) string {
		if st.Emitted[i] < k {
			wrong := make(map[ioa.Loc]bool)
			for j := 0; j < st.N; j++ {
				if ioa.Loc(j) != i {
					wrong[ioa.Loc(j)] = true
				}
			}
			return ioa.EncodeLocSet(wrong)
		}
		return ioa.EncodeLocSet(st.CrashSet())
	}).StablePayload(k)
}
