package afd

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ioa"
)

// OutputFunc computes the payload of the next output event at location i
// from the generator's state.  It must be a pure function of the state so
// the automaton stays deterministic (Section 2.5).
type OutputFunc func(st *GenState, i ioa.Loc) string

// GenState is the observable state of a generator automaton: which locations
// have crashed (the crashset variable of Algorithms 1 and 2) and how many
// outputs have been emitted at each location (used by detectors that exhibit
// a deliberately inaccurate prefix before stabilizing, e.g. ◇P).
type GenState struct {
	N       int
	Crashed []bool
	Emitted []int
}

// CrashSet returns the crashed locations as a set.
func (s *GenState) CrashSet() map[ioa.Loc]bool {
	set := make(map[ioa.Loc]bool)
	for i, c := range s.Crashed {
		if c {
			set[ioa.Loc(i)] = true
		}
	}
	return set
}

// LiveSet returns the complement of the crash set.
func (s *GenState) LiveSet() map[ioa.Loc]bool {
	set := make(map[ioa.Loc]bool)
	for i, c := range s.Crashed {
		if !c {
			set[ioa.Loc(i)] = true
		}
	}
	return set
}

// MinLive returns min(Π \ crashset), or NoLoc if every location crashed.
func (s *GenState) MinLive() ioa.Loc {
	for i, c := range s.Crashed {
		if !c {
			return ioa.Loc(i)
		}
	}
	return ioa.NoLoc
}

// Generator is the generic failure-detector automaton underlying Algorithms
// 1 and 2: inputs are exactly the crash actions; there is one task per
// location whose single enabled action (while the location is un-crashed) is
// the family's output at that location with a payload computed by an
// OutputFunc from the crash set and emission counters.
type Generator struct {
	family string
	out    OutputFunc
	st     GenState

	// stableAfter declares when a location's payload stops depending on its
	// emission counter: once Emitted[i] >= stableAfter, out(st, i) is a
	// function of the crash set alone.  -1 (the default) promises nothing.
	// With the promise, Enabled memoizes the payload per location — the
	// every-event repoll of the fired task returns the cached string instead
	// of re-deriving (and re-allocating) an identical one — invalidating on
	// crash inputs always and on fires only inside the volatile prefix.
	stableAfter int
	payload     []string // cached payload per location; "" = not cached
}

var _ ioa.Automaton = (*Generator)(nil)
var _ ioa.Signatured = (*Generator)(nil)
var _ ioa.FireLocalized = (*Generator)(nil)

// NewGenerator builds a generator automaton for the given output family.
func NewGenerator(family string, n int, out OutputFunc) *Generator {
	return &Generator{
		family:      family,
		out:         out,
		stableAfter: -1,
		st: GenState{
			N:       n,
			Crashed: make([]bool, n),
			Emitted: make([]int, n),
		},
	}
}

// StablePayload promises that out(st, i) no longer depends on Emitted[i]
// once Emitted[i] >= after (after = 0: the payload is a pure function of the
// crash set, true of every non-perverse family in the zoo), enabling the
// per-location payload cache.  The payload must never be the empty string
// (every family encodes at least "{}" or a location number).  Returns g for
// chaining at construction sites.
func (g *Generator) StablePayload(after int) *Generator {
	g.stableAfter = after
	g.payload = make([]string, g.st.N)
	return g
}

// Name implements ioa.Automaton.
func (g *Generator) Name() string { return "gen:" + g.family }

// Accepts implements ioa.Automaton: crash actions only (crash exclusivity).
// The location-range check keeps Accepts aligned with SignatureKeys; an
// out-of-range crash was already a no-op in Input.
func (g *Generator) Accepts(a ioa.Action) bool {
	return a.Kind == ioa.KindCrash && a.Name == ioa.NameCrash &&
		a.Loc >= 0 && int(a.Loc) < g.st.N
}

// SignatureKeys implements ioa.Signatured: crashi for every location.
func (g *Generator) SignatureKeys() []ioa.SigKey {
	keys := make([]ioa.SigKey, g.st.N)
	for i := 0; i < g.st.N; i++ {
		keys[i] = ioa.KeyOf(ioa.Crash(ioa.Loc(i)))
	}
	return keys
}

// Input implements ioa.Automaton: crashi adds i to the crash set.  Every
// location's payload may depend on the crash set, so the whole payload cache
// is invalidated (crashes are rare; fires are the hot path).
func (g *Generator) Input(a ioa.Action) {
	if int(a.Loc) < len(g.st.Crashed) {
		g.st.Crashed[a.Loc] = true
		for i := range g.payload {
			g.payload[i] = ""
		}
	}
}

// NumTasks implements ioa.Automaton: one task per location (Algorithm 1).
func (g *Generator) NumTasks() int { return g.st.N }

// TaskLabel implements ioa.Automaton.
func (g *Generator) TaskLabel(t int) string { return fmt.Sprintf("%s@%d", g.family, t) }

// Enabled implements ioa.Automaton: while i has not crashed, the output at i
// with the payload the OutputFunc computes (precondition i ∉ crashset).
// Memoization via the StablePayload cache never changes the returned action,
// only whether the OutputFunc runs.
func (g *Generator) Enabled(t int) (ioa.Action, bool) {
	if g.st.Crashed[t] {
		return ioa.Action{}, false
	}
	if g.payload != nil {
		if p := g.payload[t]; p != "" {
			return ioa.FDOutput(g.family, ioa.Loc(t), p), true
		}
		p := g.out(&g.st, ioa.Loc(t))
		g.payload[t] = p
		return ioa.FDOutput(g.family, ioa.Loc(t), p), true
	}
	return ioa.FDOutput(g.family, ioa.Loc(t), g.out(&g.st, ioa.Loc(t))), true
}

// Fire implements ioa.Automaton.
func (g *Generator) Fire(a ioa.Action) {
	g.st.Emitted[a.Loc]++
	if g.payload != nil && g.st.Emitted[a.Loc] <= g.stableAfter {
		// Still inside the volatile prefix (or just crossed out of it):
		// the payload at this location may have changed.
		g.payload[a.Loc] = ""
	}
}

// FireTouches implements ioa.FireLocalized: firing the output at location i
// only bumps Emitted[i], and every OutputFunc in the zoo reads only its own
// location's emission counter (the crash set, which all locations' payloads
// depend on, changes on Input, never on Fire).  So the only task whose
// enabled action can differ after Fire is the one that fired.
func (g *Generator) FireTouches(a ioa.Action) int { return int(a.Loc) }

// Clone implements ioa.Automaton.
func (g *Generator) Clone() ioa.Automaton {
	c := &Generator{family: g.family, out: g.out, stableAfter: g.stableAfter, st: GenState{N: g.st.N}}
	c.st.Crashed = append([]bool(nil), g.st.Crashed...)
	c.st.Emitted = append([]int(nil), g.st.Emitted...)
	if g.payload != nil {
		c.payload = append([]string(nil), g.payload...)
	}
	return c
}

// Encode implements ioa.Automaton.
func (g *Generator) Encode() string {
	var b strings.Builder
	b.WriteString("G:")
	b.WriteString(g.family)
	b.WriteByte('|')
	for i := 0; i < g.st.N; i++ {
		if g.st.Crashed[i] {
			b.WriteByte('x')
		} else {
			b.WriteByte('.')
		}
	}
	b.WriteByte('|')
	for i, e := range g.st.Emitted {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Itoa(e))
	}
	return b.String()
}
