package afd

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// Output families of the quorum-style detectors.
const (
	FamilySigma     = "FD-Σ"
	FamilyAntiOmega = "FD-antiΩ"
	FamilyOmegaK    = "FD-Ωk"
	FamilyPsiK      = "FD-Ψk"
)

// Sigma is the quorum failure detector Σ (Section 1, [8]): every output is a
// set of locations (a quorum) such that
//
//	(1) intersection: every two quorums output anywhere, at any two times,
//	    intersect;
//	(2) eventual liveness: there is a suffix in which every quorum contains
//	    only live locations.
//
// The canonical automaton outputs Π \ crashset; successive outputs are
// nested downward, so any two intersect while some location is live, and
// after the last crash all quorums equal the live set.
type Sigma struct{}

var _ Detector = Sigma{}

// Family implements Detector.
func (Sigma) Family() string { return FamilySigma }

// Automaton implements Detector.
func (Sigma) Automaton(n int) ioa.Automaton {
	return NewGenerator(FamilySigma, n, func(st *GenState, _ ioa.Loc) string {
		return ioa.EncodeLocSet(st.LiveSet())
	}).StablePayload(0)
}

// Check implements Detector.
func (Sigma) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilySigma, w); err != nil {
		return err
	}
	live := trace.Live(t, n)
	if len(live) == 0 {
		return nil
	}
	isOut := IsOutput(FamilySigma)
	// Intersection over the distinct quorums seen (payloads are canonical).
	distinct := make(map[string]map[ioa.Loc]bool)
	for _, a := range t {
		if !isOut(a) {
			continue
		}
		if _, ok := distinct[a.Payload]; !ok {
			set, err := ioa.DecodeLocSet(a.Payload)
			if err != nil {
				return fmt.Errorf("afd: Σ payload %q: %v", a.Payload, err)
			}
			distinct[a.Payload] = set
		}
	}
	keys := make([]string, 0, len(distinct))
	for k := range distinct {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for x := 0; x < len(keys); x++ {
		for y := x; y < len(keys); y++ {
			if !intersects(distinct[keys[x]], distinct[keys[y]]) {
				return fmt.Errorf("afd: Σ quorums %s and %s do not intersect", keys[x], keys[y])
			}
		}
	}
	// Eventual liveness (unrefutable on a prefix).
	if w.Prefix {
		return nil
	}
	if _, ok := stableFrom(t, n, FamilySigma, w.minStable(), func(a ioa.Action) bool {
		set, err := ioa.DecodeLocSet(a.Payload)
		if err != nil {
			return false
		}
		for l := range set {
			if !live[l] {
				return false
			}
		}
		return true
	}); !ok {
		return fmt.Errorf("afd: Σ quorums never stabilize to live locations")
	}
	return nil
}

func intersects(a, b map[ioa.Loc]bool) bool {
	for l := range a {
		if b[l] {
			return true
		}
	}
	return false
}

// AntiOmega is the anti-Ω detector ([31]; named in Section 1): every output
// is a single location ID, and some live location is output only finitely
// often (eventually never output anywhere).  anti-Ω is the weakest detector
// for (n−1)-set agreement.
//
// The canonical automaton outputs the successor of min(Π \ crashset) in the
// ring 0..n−1; for n ≥ 2 the minimum live location is eventually never
// output.  The detector is defined for n ≥ 2.
type AntiOmega struct{}

var _ Detector = AntiOmega{}

// Family implements Detector.
func (AntiOmega) Family() string { return FamilyAntiOmega }

// Automaton implements Detector.
func (AntiOmega) Automaton(n int) ioa.Automaton {
	return NewGenerator(FamilyAntiOmega, n, func(st *GenState, _ ioa.Loc) string {
		m := st.MinLive()
		if m == ioa.NoLoc {
			return ioa.EncodeLoc(0)
		}
		return ioa.EncodeLoc(ioa.Loc((int(m) + 1) % st.N))
	}).StablePayload(0)
}

// Check implements Detector.
func (AntiOmega) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyAntiOmega, w); err != nil {
		return err
	}
	if w.Prefix {
		return nil // anti-Ω's only clause beyond validity is eventual
	}
	live := trace.Live(t, n)
	if len(live) == 0 {
		return nil
	}
	for l := range live {
		skip := ioa.EncodeLoc(l)
		if _, ok := stableFrom(t, n, FamilyAntiOmega, w.minStable(), func(a ioa.Action) bool {
			return a.Payload != skip
		}); ok {
			return nil
		}
	}
	return fmt.Errorf("afd: anti-Ω: every live location is output into the suffix")
}

// OmegaK is Ωk ([23]; named in Section 3.3 as ◇Ωk): outputs are sets of
// exactly K locations; eventually all outputs everywhere equal one fixed set
// that contains at least one live location.
type OmegaK struct{ K int }

var _ Detector = OmegaK{}

// Family implements Detector.
func (OmegaK) Family() string { return FamilyOmegaK }

// Automaton implements Detector: output the first K locations of the order
// "live ascending, then faulty ascending" — a deterministic set containing
// min(Π \ crashset).
func (d OmegaK) Automaton(n int) ioa.Automaton {
	k := d.K
	return NewGenerator(FamilyOmegaK, n, func(st *GenState, _ ioa.Loc) string {
		return ioa.EncodeLocSet(firstKLiveFirst(st, k))
	}).StablePayload(0)
}

// Check implements Detector.
func (d OmegaK) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyOmegaK, w); err != nil {
		return err
	}
	isOut := IsOutput(FamilyOmegaK)
	// Safety: every output is a set of exactly K locations.
	for _, a := range t {
		if !isOut(a) {
			continue
		}
		set, err := ioa.DecodeLocSet(a.Payload)
		if err != nil {
			return fmt.Errorf("afd: Ωk payload %q: %v", a.Payload, err)
		}
		if len(set) != d.K {
			return fmt.Errorf("afd: Ωk output %s has size %d, want %d", a.Payload, len(set), d.K)
		}
	}
	if w.Prefix {
		return nil // stabilization is eventual
	}
	live := trace.Live(t, n)
	if len(live) == 0 {
		return nil
	}
	// Candidate stabilized set: payload of the last output event.
	var last string
	for i := len(t) - 1; i >= 0; i-- {
		if isOut(t[i]) {
			last = t[i].Payload
			break
		}
	}
	if last == "" {
		return fmt.Errorf("afd: Ωk: no outputs")
	}
	set, err := ioa.DecodeLocSet(last)
	if err != nil {
		return fmt.Errorf("afd: Ωk payload %q: %v", last, err)
	}
	if len(set) != d.K {
		return fmt.Errorf("afd: Ωk output %s has size %d, want %d", last, len(set), d.K)
	}
	if !intersects(set, live) {
		return fmt.Errorf("afd: Ωk stabilized set %s contains no live location", last)
	}
	if _, ok := stableFrom(t, n, FamilyOmegaK, w.minStable(), func(a ioa.Action) bool {
		return a.Payload == last
	}); !ok {
		return fmt.Errorf("afd: Ωk outputs do not stabilize to a single set")
	}
	return nil
}

// PsiK is Ψk ([22]; named in Section 3.3 as ◇Ψk): the pairing of a k-quorum
// component with an Ωk component.  Each output payload is "Q;K" where Q is a
// quorum and K a k-set.  Admissibility requires
//
//	(1) k-intersection: among any K+1 quorums output anywhere, some two
//	    intersect;
//	(2) eventual quorum liveness: a suffix exists where quorums contain
//	    only live locations;
//	(3) the K components satisfy Ωk.
type PsiK struct{ K int }

var _ Detector = PsiK{}

// Family implements Detector.
func (PsiK) Family() string { return FamilyPsiK }

// Automaton implements Detector.
func (d PsiK) Automaton(n int) ioa.Automaton {
	k := d.K
	return NewGenerator(FamilyPsiK, n, func(st *GenState, _ ioa.Loc) string {
		return ioa.EncodeLocSet(st.LiveSet()) + ";" + ioa.EncodeLocSet(firstKLiveFirst(st, k))
	}).StablePayload(0)
}

// Check implements Detector.
func (d PsiK) Check(t trace.T, n int, w Window) error {
	if err := CheckValidity(t, n, FamilyPsiK, w); err != nil {
		return err
	}
	live := trace.Live(t, n)
	if len(live) == 0 {
		return nil
	}
	isOut := IsOutput(FamilyPsiK)
	split := func(p string) (string, string, error) {
		parts := strings.SplitN(p, ";", 2)
		if len(parts) != 2 {
			return "", "", fmt.Errorf("afd: Ψk payload %q lacks two components", p)
		}
		return parts[0], parts[1], nil
	}
	// (1) k-intersection over distinct quorums: among any K+1 there are two
	// that intersect ⇔ there is no pairwise-disjoint family of size K+1.
	distinct := make(map[string]map[ioa.Loc]bool)
	for _, a := range t {
		if !isOut(a) {
			continue
		}
		q, _, err := split(a.Payload)
		if err != nil {
			return err
		}
		if _, ok := distinct[q]; !ok {
			set, err := ioa.DecodeLocSet(q)
			if err != nil {
				return fmt.Errorf("afd: Ψk quorum %q: %v", q, err)
			}
			distinct[q] = set
		}
	}
	if fam := maxDisjointFamily(distinct); fam > d.K {
		return fmt.Errorf("afd: Ψk has %d pairwise-disjoint quorums, want ≤ %d", fam, d.K)
	}
	if w.Prefix {
		return nil // the remaining clauses are eventual
	}
	// (2) eventual quorum liveness and (3) Ωk stabilization, jointly on the
	// stable suffix.
	var lastK string
	for i := len(t) - 1; i >= 0; i-- {
		if isOut(t[i]) {
			_, k, err := split(t[i].Payload)
			if err != nil {
				return err
			}
			lastK = k
			break
		}
	}
	if lastK == "" {
		return fmt.Errorf("afd: Ψk: no outputs")
	}
	kset, err := ioa.DecodeLocSet(lastK)
	if err != nil {
		return fmt.Errorf("afd: Ψk k-set %q: %v", lastK, err)
	}
	if len(kset) != d.K {
		return fmt.Errorf("afd: Ψk k-set %s has size %d, want %d", lastK, len(kset), d.K)
	}
	if !intersects(kset, live) {
		return fmt.Errorf("afd: Ψk stabilized k-set %s contains no live location", lastK)
	}
	if _, ok := stableFrom(t, n, FamilyPsiK, w.minStable(), func(a ioa.Action) bool {
		q, k, err := split(a.Payload)
		if err != nil {
			return false
		}
		if k != lastK {
			return false
		}
		qs, err := ioa.DecodeLocSet(q)
		if err != nil {
			return false
		}
		for l := range qs {
			if !live[l] {
				return false
			}
		}
		return true
	}); !ok {
		return fmt.Errorf("afd: Ψk outputs do not stabilize")
	}
	return nil
}

// firstKLiveFirst returns the first k locations in the order "live
// ascending, then faulty ascending".
func firstKLiveFirst(st *GenState, k int) map[ioa.Loc]bool {
	out := make(map[ioa.Loc]bool, k)
	for i := 0; i < st.N && len(out) < k; i++ {
		if !st.Crashed[i] {
			out[ioa.Loc(i)] = true
		}
	}
	for i := 0; i < st.N && len(out) < k; i++ {
		if st.Crashed[i] {
			out[ioa.Loc(i)] = true
		}
	}
	return out
}

// maxDisjointFamily returns the size of the largest pairwise-disjoint
// subfamily of the given quorums (greedy over ascending size; exact for the
// nested families our generators produce and a sound lower bound generally,
// which is what the checker needs to reject).
func maxDisjointFamily(quorums map[string]map[ioa.Loc]bool) int {
	sets := make([]map[ioa.Loc]bool, 0, len(quorums))
	keys := make([]string, 0, len(quorums))
	for k := range quorums {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		sets = append(sets, quorums[k])
	}
	sort.Slice(sets, func(i, j int) bool { return len(sets[i]) < len(sets[j]) })
	used := make(map[ioa.Loc]bool)
	count := 0
	for _, s := range sets {
		disjoint := true
		for l := range s {
			if used[l] {
				disjoint = false
				break
			}
		}
		if disjoint {
			count++
			for l := range s {
				used[l] = true
			}
		}
	}
	return count
}
