package live

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"repro/internal/ioa"
	"repro/internal/system"
)

// conformanceCase is one row of the live-vs-simulated conformance table.
type conformanceCase struct {
	target string
	n      int
	crash  []int // locations crashed mid-execution
	net    system.NetSpec
}

// runConformance executes one live run with retries on infrastructure
// failures only — a port collision is environment noise, a checker or
// replay verdict never is.
func runConformance(t *testing.T, spec RunSpec) *Report {
	t.Helper()
	const attempts = 3
	var lastErr error
	for i := 0; i < attempts; i++ {
		rep, err := RunTarget(spec)
		if err == nil {
			return rep
		}
		if !errors.Is(err, ErrInfra) {
			t.Fatalf("RunTarget: %v", err)
		}
		lastErr = err
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("RunTarget: infra failure persisted across %d attempts: %v", attempts, lastErr)
	return nil
}

// TestConformanceTable runs every target stack live with fixed transport
// seeds, replays each artifact through the simulated engine, and asserts
// the checker verdicts — the live backend and the simulated backend must
// agree that every live execution is a valid execution of the composition
// satisfying the target's specification.
func TestConformanceTable(t *testing.T) {
	cases := []conformanceCase{
		{target: "gossip:FD-Q>FD-P", n: 3},
		{target: "gossip:FD-◇Q>FD-◇P", n: 3},
		{target: "gossip:FD-◇Q>FD-◇P>FD-Ω", n: 3},
		{target: "urb:majority", n: 3},
		// Crash-mid-execution rows: the crash service releases the planned
		// crash partway through the run.
		{target: "gossip:FD-Q>FD-P", n: 3, crash: []int{2}},
		{target: "gossip:FD-◇Q>FD-◇P>FD-Ω", n: 4, crash: []int{1}},
		{target: "urb:majority", n: 3, crash: []int{0}},
	}
	seeds := []int64{1, 7, 42}
	if testing.Short() {
		seeds = seeds[:1]
	}
	for _, tc := range cases {
		for _, seed := range seeds {
			tc, seed := tc, seed
			name := fmt.Sprintf("%s/n=%d/crash=%v/seed=%d", tc.target, tc.n, tc.crash, seed)
			t.Run(name, func(t *testing.T) {
				t.Parallel()
				plan := system.FaultPlan{}
				for _, l := range tc.crash {
					plan.Crash = append(plan.Crash, ioa.Loc(l))
				}
				rep := runConformance(t, RunSpec{
					Target: mustTarget(t, tc.target),
					N:      tc.n,
					Plan:   plan,
					Net:    tc.net,
					Opts: Options{
						Seed:       seed,
						Duration:   20 * time.Second,
						CrashAfter: 2 * time.Millisecond,
					},
				})
				if rep.VerdictErr != nil {
					t.Errorf("checker verdict on live trace: %v", rep.VerdictErr)
				}
				if rep.ReplayErr != nil {
					t.Errorf("cross-engine replay: %v", rep.ReplayErr)
				}
				if len(rep.Artifact.Trace) == 0 {
					t.Errorf("empty live trace")
				}
			})
		}
	}
}

// TestConformanceTCP pins one representative row per stack kind onto the
// TCP transport: the same executions must validate when delivery signals
// cross real loopback sockets.
func TestConformanceTCP(t *testing.T) {
	targets := []string{"gossip:FD-◇Q>FD-◇P>FD-Ω", "urb:majority"}
	for _, id := range targets {
		id := id
		t.Run(id, func(t *testing.T) {
			const attempts = 3
			for i := 0; i < attempts; i++ {
				tcp, err := NewTCPTransport()
				if err != nil {
					if errors.Is(err, ErrInfra) && i < attempts-1 {
						time.Sleep(10 * time.Millisecond)
						continue
					}
					t.Fatalf("NewTCPTransport: %v", err)
				}
				rep := runConformance(t, RunSpec{
					Target: mustTarget(t, id),
					N:      3,
					Opts:   Options{Seed: 11, Duration: 20 * time.Second, Transport: tcp},
				})
				if rep.VerdictErr != nil {
					t.Errorf("checker verdict on live TCP trace: %v", rep.VerdictErr)
				}
				if rep.ReplayErr != nil {
					t.Errorf("cross-engine replay: %v", rep.ReplayErr)
				}
				return
			}
		})
	}
}

// TestConformanceLossyNet runs a live execution whose channels drop and
// duplicate messages via the same pure NetSpec decisions as simulated runs;
// the artifact must still replay byte-identical (the replay re-derives the
// identical link outcomes from the recorded spec).  The forwarding relay
// target tolerates loss, so the checker verdict must hold too.
func TestConformanceLossyNet(t *testing.T) {
	rep := runConformance(t, RunSpec{
		Target: mustTarget(t, "relay:FD-◇Q>FD-◇P"),
		N:      3,
		Net:    system.NetSpec{Seed: 9, Drop: 100, Dup: 50},
		Opts:   Options{Seed: 13, Duration: 20 * time.Second},
	})
	if rep.ReplayErr != nil {
		t.Errorf("cross-engine replay of lossy live run: %v", rep.ReplayErr)
	}
	if rep.VerdictErr != nil {
		t.Errorf("relay under 10%% drop: %v", rep.VerdictErr)
	}
	if rep.Artifact.Net == nil {
		t.Fatalf("lossy artifact lost its NetWire")
	}
}

// TestConformancePermanentPartition: a partition that never heals downgrades
// the run to safety-only checking (Fair=false), and the prefix still
// replays through the simulated engine.
func TestConformancePermanentPartition(t *testing.T) {
	rep := runConformance(t, RunSpec{
		Target: mustTarget(t, "gossip:FD-◇Q>FD-◇P"),
		N:      3,
		Opts: Options{
			Seed:           17,
			Duration:       50 * time.Millisecond,
			PartitionMask:  0b001, // location 0 isolated
			PartitionAfter: 5 * time.Millisecond,
		},
	})
	if rep.Fair {
		t.Errorf("permanently partitioned run reported fair")
	}
	if rep.VerdictErr != nil {
		t.Errorf("safety clauses under partition: %v", rep.VerdictErr)
	}
	if rep.ReplayErr != nil {
		t.Errorf("cross-engine replay of partitioned prefix: %v", rep.ReplayErr)
	}
}

// TestConformanceHealedPartition: a healed partition restores fairness, so
// the full spec (liveness included) must hold.
func TestConformanceHealedPartition(t *testing.T) {
	rep := runConformance(t, RunSpec{
		Target: mustTarget(t, "gossip:FD-◇Q>FD-◇P>FD-Ω"),
		N:      3,
		Opts: Options{
			Seed:           19,
			Duration:       20 * time.Second,
			PartitionMask:  0b100,
			PartitionAfter: 2 * time.Millisecond,
			HealAfter:      10 * time.Millisecond,
		},
	})
	if !rep.Fair {
		t.Errorf("healed run reported unfair")
	}
	if rep.VerdictErr != nil {
		t.Errorf("full spec after heal: %v", rep.VerdictErr)
	}
	if rep.ReplayErr != nil {
		t.Errorf("cross-engine replay: %v", rep.ReplayErr)
	}
}
