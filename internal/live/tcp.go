package live

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"repro/internal/ioa"
)

// TCPTransport carries delivery signals over real loopback TCP sockets: one
// listener, one connection per source location (dialed lazily on first
// send), length-prefixed frames.  The authoritative message queue remains
// the channel automaton inside the shared composition — the socket carries
// a copy of the payload so the bytes genuinely cross the kernel's stack and
// arrival timing is real network timing — which is what keeps the one-
// implementation-two-backends contract intact while exercising a real
// wire.  Partitions are enforced on the receive side: frames for cross-side
// links are parked until the partition heals, exactly like ChanTransport.
type TCPTransport struct {
	ln net.Listener

	mu      sync.Mutex
	deliver func(Link)
	conns   map[ioa.Loc]*bufio.Writer // per-source dialed connection
	raw     []net.Conn
	mask    uint64
	held    map[Link]int
	stopped bool
	wg      sync.WaitGroup
}

var _ Transport = (*TCPTransport)(nil)

// NewTCPTransport binds a loopback listener.  Bind failures are ErrInfra.
func NewTCPTransport() (*TCPTransport, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, Infra(err)
	}
	return &TCPTransport{ln: ln, conns: make(map[ioa.Loc]*bufio.Writer), held: make(map[Link]int)}, nil
}

// Addr returns the listener address frames travel through.
func (t *TCPTransport) Addr() string { return t.ln.Addr().String() }

// Start implements Transport: install the callback and accept reader
// connections for the life of the transport.
func (t *TCPTransport) Start(deliver func(Link)) error {
	t.mu.Lock()
	t.deliver = deliver
	t.mu.Unlock()
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		for {
			conn, err := t.ln.Accept()
			if err != nil {
				return // listener closed by Stop
			}
			t.mu.Lock()
			if t.stopped {
				t.mu.Unlock()
				conn.Close()
				return
			}
			t.raw = append(t.raw, conn)
			t.mu.Unlock()
			t.wg.Add(1)
			go t.read(conn)
		}
	}()
	return nil
}

// frame is [from int32][to int32][len uint32][payload].
func writeFrame(w *bufio.Writer, l Link, payload string) error {
	var hdr [12]byte
	binary.BigEndian.PutUint32(hdr[0:], uint32(int32(l.From)))
	binary.BigEndian.PutUint32(hdr[4:], uint32(int32(l.To)))
	binary.BigEndian.PutUint32(hdr[8:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.WriteString(payload); err != nil {
		return err
	}
	return w.Flush()
}

func readFrame(r *bufio.Reader) (Link, string, error) {
	var hdr [12]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Link{}, "", err
	}
	l := Link{
		From: ioa.Loc(int32(binary.BigEndian.Uint32(hdr[0:]))),
		To:   ioa.Loc(int32(binary.BigEndian.Uint32(hdr[4:]))),
	}
	n := binary.BigEndian.Uint32(hdr[8:])
	if n > 1<<20 {
		return Link{}, "", fmt.Errorf("live: tcp frame payload %d bytes exceeds bound", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return Link{}, "", err
	}
	return l, string(buf), nil
}

// read drains one sender connection, handing each frame to the runtime.
func (t *TCPTransport) read(conn net.Conn) {
	defer t.wg.Done()
	br := bufio.NewReader(conn)
	for {
		l, _, err := readFrame(br)
		if err != nil {
			return // EOF or closed by Stop
		}
		t.fire(l)
	}
}

// fire mirrors ChanTransport.fire: park cross-side signals, hand the rest
// to the runtime outside the transport lock.
func (t *TCPTransport) fire(l Link) {
	t.mu.Lock()
	if t.stopped || t.deliver == nil {
		t.mu.Unlock()
		return
	}
	if crossSide(t.mask, l) {
		t.held[l]++
		t.mu.Unlock()
		return
	}
	deliver := t.deliver
	t.mu.Unlock()
	deliver(l)
}

// Send implements Transport: frame the message onto the source location's
// connection, dialing it on first use.  Dial and write failures are dropped
// silently — during teardown they are expected noise, and outside teardown
// a lost signal surfaces as an undelivered channel head, which the
// conformance checkers flag.
func (t *TCPTransport) Send(l Link, payload string) {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	w, ok := t.conns[l.From]
	if !ok {
		conn, err := net.Dial("tcp", t.ln.Addr().String())
		if err != nil {
			t.mu.Unlock()
			return
		}
		t.raw = append(t.raw, conn)
		w = bufio.NewWriter(conn)
		t.conns[l.From] = w
	}
	_ = writeFrame(w, l, payload)
	t.mu.Unlock()
}

// Partition implements Transport.
func (t *TCPTransport) Partition(mask uint64) {
	t.mu.Lock()
	t.mask = mask
	var release []Link
	for l, n := range t.held {
		if !crossSide(mask, l) {
			for i := 0; i < n; i++ {
				release = append(release, l)
			}
			delete(t.held, l)
		}
	}
	deliver := t.deliver
	stopped := t.stopped
	t.mu.Unlock()
	if stopped || deliver == nil {
		return
	}
	for _, l := range release {
		deliver(l)
	}
}

// Stop implements Transport: close the listener and every connection, then
// wait for the accept and reader goroutines so no deliver callback outlives
// the call.
func (t *TCPTransport) Stop() {
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	t.stopped = true
	conns := t.raw
	t.raw = nil
	t.held = map[Link]int{}
	t.mu.Unlock()
	t.ln.Close()
	for _, c := range conns {
		c.Close()
	}
	t.wg.Wait()
}
