package live

import (
	"fmt"

	"repro/internal/chaos"
	"repro/internal/system"
	"repro/internal/trace"
)

// SchedLive is the scheduler name recorded in artifacts produced by live
// runs.  Live artifacts are never re-executed by the chaos scheduler loop
// (wall-clock timing is not a replayable input); they are validated by the
// cross-engine pass, chaos.ReplayThroughSystem, which only needs the target
// and the recorded trace.
const SchedLive = "live"

// RunSpec is one fully specified live execution of a chaos target.
type RunSpec struct {
	// Target is the system-under-test (chaos.ParseTarget IDs).
	Target chaos.Target
	// N is the location count.
	N int
	// Plan is the fault plan the crash service realizes.
	Plan system.FaultPlan
	// Net is the adversarial network the channels apply (zero: reliable
	// full mesh).  Loss and topology live in the channel automata — the
	// same pure NetSpec decisions as simulated runs, so lossy live runs
	// stay replayable; the transport only adds delay and partitions.
	Net system.NetSpec
	// Opts configures the runtime.  Opts.Stop defaults to the target's
	// stop predicate; Opts.MaxSteps defaults to chaos.DefaultSteps(N) so
	// live traces are commensurate with simulated ones.
	Opts Options
}

// Report is the outcome of one live run: the runtime result, the replayable
// artifact, and the two validation verdicts.
type Report struct {
	Result Result
	// Artifact records the run with Sched == SchedLive; its Trace is the
	// live event log and its Verdict the checker's.
	Artifact *trace.Artifact
	// Fair echoes Result.Fair: whether liveness clauses were enforced.
	Fair bool
	// VerdictErr is the target checker's judgment of the live trace
	// (nil: specification satisfied).
	VerdictErr error
	// ReplayErr is the cross-engine validation: the live trace re-driven
	// event-by-event through a freshly built simulated system, byte-checked
	// (nil: the live execution is an execution of the composition).
	ReplayErr error
}

// Ok reports whether the run satisfied its specification and replayed
// cleanly through the simulated engine.
func (rep *Report) Ok() bool { return rep.VerdictErr == nil && rep.ReplayErr == nil }

// RunTarget builds the target exactly as the chaos runner would (same
// Build, same network, lifo=false), drives it live, judges the trace with
// the target's own checker, and validates the artifact through the
// simulated engine.  The returned error is infrastructural (unbuildable
// target, transport failure — check errors.Is ErrInfra); specification and
// replay verdicts land in the Report.
func RunTarget(spec RunSpec) (*Report, error) {
	var nt *system.Net
	if !spec.Net.IsZero() {
		nt = system.NewNet(spec.Net)
	}
	b, err := spec.Target.Build(spec.N, spec.Plan, nt, false)
	if err != nil {
		return nil, fmt.Errorf("live: building %s: %w", spec.Target.ID(), err)
	}
	opts := spec.Opts
	if opts.Stop == nil {
		opts.Stop = b.Stop
	}
	if opts.MaxSteps == 0 {
		opts.MaxSteps = chaos.DefaultSteps(spec.N)
	}
	if opts.Telemetry != nil {
		b.Sys.SetTelemetry(opts.Telemetry)
		system.InstrumentChannels(b.Sys, opts.Telemetry)
	}
	rt, err := New(b.Sys, opts)
	if err != nil {
		return nil, err
	}
	res, err := rt.Run()
	if err != nil {
		return nil, err
	}
	verdict := spec.Target.Checker(spec.N, spec.Plan, res.Fair)(res.Trace)
	a := &trace.Artifact{
		Target: spec.Target.ID(),
		N:      spec.N,
		Steps:  res.Steps,
		Sched:  SchedLive,
		Seed:   opts.Seed,
		Crash:  spec.Plan.Crash,
		// Persisting the per-event stamps and the wall-clock epoch makes the
		// artifact self-sufficient for offline wall-clock QoS (detection
		// time, mistake duration) — replay itself never consumes timing.
		Stamps: res.Stamps,
		Epoch:  res.Epoch,
		Trace:  res.Trace,
	}
	if verdict != nil {
		a.Verdict = verdict.Error()
	}
	if !spec.Net.IsZero() {
		a.Net = &trace.NetWire{
			Topo:    spec.Net.Topo.Desc(),
			Seed:    spec.Net.Seed,
			Drop:    spec.Net.Drop,
			Dup:     spec.Net.Dup,
			Reorder: spec.Net.Reorder,
		}
		a.NetLog = nt.Events()
	}
	return &Report{
		Result:     res,
		Artifact:   a,
		Fair:       res.Fair,
		VerdictErr: verdict,
		ReplayErr:  chaos.ReplayThroughSystem(a),
	}, nil
}
