package live

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

// Stop reasons a live run can end with.
const (
	// ReasonMaxSteps: the composition performed Options.MaxSteps events.
	ReasonMaxSteps = "max-steps"
	// ReasonDuration: the wall-clock budget elapsed.
	ReasonDuration = "duration"
	// ReasonStop: the target's stop predicate fired (e.g. consensus: every
	// live location decided).
	ReasonStop = "stop"
	// ReasonQuiescent: no task of the composition stayed enabled (quiescing
	// targets such as URB broadcast).
	ReasonQuiescent = "quiescent"
	// ReasonStopped: Runtime.Stop was called.
	ReasonStopped = "stopped"
)

// Options configures a live run.
type Options struct {
	// Transport carries delivery signals; nil selects the in-process
	// ChanTransport seeded with Seed.
	Transport Transport
	// Seed drives the default transport's delay jitter and is recorded in
	// artifacts.
	Seed int64
	// Interval is the heartbeat pacing of every automaton service: each
	// service fires its ready tasks once per interval (plus nudges when it
	// is a delivery candidate of a fired action).  Default 100µs.
	Interval time.Duration
	// MaxSteps ends the run after that many events (0: no step bound).
	MaxSteps int
	// Duration ends the run after that much wall time.  When both MaxSteps
	// and Duration are zero, Duration defaults to one second so Wait always
	// returns.
	Duration time.Duration
	// Stop, when non-nil, ends the run early (chaos.Built.Stop semantics).
	Stop func(sys *ioa.System, last ioa.Action) bool
	// CrashAfter is the wall-clock delay before the first planned crash is
	// released; CrashGap spaces the rest.  Defaults: 30× / 10× Interval.
	CrashAfter, CrashGap time.Duration
	// PartitionMask, when non-zero with PartitionAfter > 0, splits the
	// transport into the two sides of the mask after PartitionAfter; a
	// HealAfter > 0 heals it that much later.  A partition that never heals
	// before the run ends downgrades the run to safety-only checking
	// (Result.Fair=false), mirroring chaos.GateSpec.EventuallyFair.
	PartitionMask             uint64
	PartitionAfter, HealAfter time.Duration
	// Telemetry, when non-nil, receives the live plane's metrics (service
	// count, signal/nudge counters, per-task fires).  The caller wires the
	// system and channel planes (see RunTarget).
	Telemetry telemetry.Sink
}

func (o Options) interval() time.Duration {
	if o.Interval > 0 {
		return o.Interval
	}
	return 100 * time.Microsecond
}

func (o Options) crashDelays() (time.Duration, time.Duration) {
	after, gap := o.CrashAfter, o.CrashGap
	if after <= 0 {
		after = 30 * o.interval()
	}
	if gap <= 0 {
		gap = 10 * o.interval()
	}
	return after, gap
}

// Result is the outcome of a completed live run.
type Result struct {
	// Steps is the total number of events the composition performed.
	Steps int
	// Reason is the Reason* constant the run ended with.
	Reason string
	// Trace is the totally-ordered external event log — an execution trace
	// of the composition, judged by the same checkers as simulated runs.
	Trace trace.T
	// Stamps holds one timing sample per Trace event: the nanoseconds
	// elapsed from Start to the event on the monotonic clock — relative
	// offsets into the run, not absolute wall-clock times.  Epoch anchors
	// them to the wall: the run's Start instant in Unix nanoseconds.  Both
	// are persisted in the run's trace.Artifact so wall-clock QoS can be
	// recomputed offline from a replayed artifact.
	Stamps []int64
	// Epoch is the run's Start instant in Unix nanoseconds (the wall-clock
	// anchor of the relative Stamps).
	Epoch int64
	// Elapsed is the wall time from Start to the end of the run.
	Elapsed time.Duration
	// Fair reports whether the run is a prefix of a fair execution: true
	// unless a transport partition was still in force when the run ended.
	Fair bool
}

// chanState locates one channel automaton inside the composition.
type chanState struct {
	task int // flattened task index of the channel's single deliver task
	q    interface{ Len() int }
}

type outSend struct {
	l       Link
	payload string
}

// Runtime drives one *ioa.System as real concurrent services.
//
// Concurrency model: every automaton step goes through the step lock (mu),
// so steps are serialized and the trace is totally ordered — by
// construction an execution of the composition, which is what makes live
// runs checkable and replayable.  Goroutines, timers, and the transport
// decide only WHEN steps happen:
//
//   - each non-channel, non-crash automaton gets a service goroutine that
//     fires the automaton's ready tasks once per heartbeat interval, plus
//     immediately when a fired action names it as a delivery candidate
//     (the nudge channels);
//   - each channel automaton fires only when the transport delivers one of
//     its signals: applyLocked counts the messages a send actually
//     enqueued (post NetSpec loss outcome) and emits exactly that many
//     transport signals, so in-flight signals always equal queue length;
//   - the crash automaton gets a dedicated service that releases planned
//     crashes on a wall-clock schedule.
//
// Transport sends are buffered in sendQ under the lock and flushed after
// unlocking, and transports call deliver without holding their own locks,
// so the step lock and transport locks are never held together.
type Runtime struct {
	sys  *ioa.System
	opts Options
	tr   Transport
	tel  telemetry.Sink

	base       []int // automaton index -> first flattened task index
	ntasks     []int // automaton index -> task count
	nudges     []chan struct{}
	chanByLink map[Link]chanState
	linkByAuto map[int]Link
	crashAuto  int // -1 when the composition has no crash automaton
	crashN     int

	mu      sync.Mutex
	pending map[Link]int // in-flight delivery signals per link
	sendQ   []outSend
	candBuf []int
	traced  int
	stamps  []int64
	stopped bool
	reason  string
	partOn  bool // a transport partition is currently in force

	start   time.Time
	done    chan struct{}
	wg      sync.WaitGroup
	started bool
}

// New prepares a runtime for sys.  The system must be freshly built (the
// runtime assumes it is the only driver) and use TraceAll, the default.
func New(sys *ioa.System, opts Options) (*Runtime, error) {
	if opts.MaxSteps == 0 && opts.Duration == 0 {
		opts.Duration = time.Second
	}
	r := &Runtime{
		sys:        sys,
		opts:       opts,
		tr:         opts.Transport,
		tel:        opts.Telemetry,
		chanByLink: make(map[Link]chanState),
		linkByAuto: make(map[int]Link),
		crashAuto:  -1,
		pending:    make(map[Link]int),
		traced:     len(sys.Trace()),
		done:       make(chan struct{}),
	}
	if r.tr == nil {
		r.tr = NewChanTransport(ChanOptions{Seed: opts.Seed})
	}
	autos := sys.Automata()
	r.base = make([]int, len(autos))
	r.ntasks = make([]int, len(autos))
	r.nudges = make([]chan struct{}, len(autos))
	for i, tref := range sys.Tasks() {
		if r.ntasks[tref.Auto] == 0 {
			r.base[tref.Auto] = i
		}
		r.ntasks[tref.Auto]++
	}
	for ai, a := range autos {
		switch c := a.(type) {
		case *system.Channel:
			r.indexChannel(ai, Link{From: c.From, To: c.To}, c)
		case *system.TrackedChannel:
			r.indexChannel(ai, Link{From: c.From, To: c.To}, c)
		case *system.CrashAutomaton:
			if r.crashAuto >= 0 {
				return nil, fmt.Errorf("live: composition has two crash automata")
			}
			r.crashAuto, r.crashN = ai, a.NumTasks()
		default:
			if r.ntasks[ai] > 0 {
				r.nudges[ai] = make(chan struct{}, 1)
			}
		}
	}
	return r, nil
}

func (r *Runtime) indexChannel(ai int, l Link, q interface{ Len() int }) {
	r.chanByLink[l] = chanState{task: r.base[ai], q: q}
	r.linkByAuto[ai] = l
}

// Start launches the transport, the automaton services, the crash service,
// and the watchdog.  Infrastructure failures are ErrInfra-wrapped by the
// transport.
func (r *Runtime) Start() error {
	if r.started {
		return fmt.Errorf("live: runtime started twice")
	}
	r.started = true
	r.start = time.Now()
	if err := r.tr.Start(r.deliverLink); err != nil {
		return err
	}
	services := 0
	for ai := range r.nudges {
		if r.nudges[ai] == nil {
			continue
		}
		services++
		r.wg.Add(1)
		// Stagger first wakeups across the interval so services don't run
		// in lockstep.
		jitter := r.opts.interval() * time.Duration(services) / time.Duration(len(r.nudges)+1)
		go r.service(ai, jitter)
	}
	if r.crashAuto >= 0 && r.crashN > 0 {
		services++
		r.wg.Add(1)
		go r.crashService()
	}
	r.wg.Add(1)
	go r.watchdog()
	if r.opts.PartitionMask != 0 && r.opts.PartitionAfter > 0 {
		r.wg.Add(1)
		go r.partitionService()
	}
	if r.tel != nil {
		r.tel.SetGauge(telemetry.GLiveServices, int64(services))
	}
	return nil
}

// service paces one automaton: fire its ready tasks each interval, or
// sooner when a delivery nudge arrives.
func (r *Runtime) service(ai int, jitter time.Duration) {
	defer r.wg.Done()
	timer := time.NewTimer(jitter)
	defer timer.Stop()
	for {
		select {
		case <-r.done:
			return
		case <-timer.C:
		case <-r.nudges[ai]:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		}
		r.serviceOnce(ai)
		timer.Reset(r.opts.interval())
	}
}

// serviceOnce fires each currently ready task of automaton ai once.  One
// firing per task per wakeup is the heartbeat discipline: an always-enabled
// generator task emits once per interval instead of spinning.
func (r *Runtime) serviceOnce(ai int) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	for idx := r.base[ai]; idx < r.base[ai]+r.ntasks[ai]; idx++ {
		if r.sys.TaskReady(idx) {
			r.applyLocked(idx)
			if r.stopped {
				break
			}
		}
	}
	q := r.takeSendsLocked()
	r.mu.Unlock()
	r.flush(q)
}

// deliverLink is the transport callback: one signal means one channel
// delivery step.  The signal's link names the channel; the channel's own
// FIFO head decides the message, so signal order within a link is
// irrelevant.
func (r *Runtime) deliverLink(l Link) {
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	cs, ok := r.chanByLink[l]
	if !ok {
		r.mu.Unlock()
		return
	}
	if r.sys.TaskReady(cs.task) {
		r.applyLocked(cs.task)
	}
	q := r.takeSendsLocked()
	r.mu.Unlock()
	r.flush(q)
}

// crashService releases the planned crash events on a wall-clock schedule.
// The crash automaton's tasks are sequenced (task k enables after k-1
// fires), so releasing them in order realizes the plan exactly.
func (r *Runtime) crashService() {
	defer r.wg.Done()
	after, gap := r.opts.crashDelays()
	for k := 0; k < r.crashN; k++ {
		d := gap
		if k == 0 {
			d = after
		}
		timer := time.NewTimer(d)
		select {
		case <-r.done:
			timer.Stop()
			return
		case <-timer.C:
		}
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			return
		}
		idx := r.base[r.crashAuto] + k
		if r.sys.TaskReady(idx) {
			r.applyLocked(idx)
		}
		q := r.takeSendsLocked()
		r.mu.Unlock()
		r.flush(q)
	}
}

// watchdog ends the run once the composition stays quiescent (quiescing
// targets like URB have nothing left to do; non-quiescing targets never
// trigger it).  Three consecutive observations guard against sampling the
// gap between a send and its transport signal.
func (r *Runtime) watchdog() {
	defer r.wg.Done()
	tick := time.NewTicker(4 * r.opts.interval())
	defer tick.Stop()
	quiet := 0
	for {
		select {
		case <-r.done:
			return
		case <-tick.C:
		}
		r.mu.Lock()
		if r.stopped {
			r.mu.Unlock()
			return
		}
		if r.sys.Steps() > 0 && r.sys.Quiescent() && r.inFlightLocked() == 0 {
			quiet++
		} else {
			quiet = 0
		}
		if quiet >= 3 {
			r.finishLocked(ReasonQuiescent)
		}
		r.mu.Unlock()
	}
}

func (r *Runtime) inFlightLocked() int {
	n := 0
	for _, p := range r.pending {
		n += p
	}
	return n
}

// partitionService applies and optionally heals the configured transport
// partition.
func (r *Runtime) partitionService() {
	defer r.wg.Done()
	timer := time.NewTimer(r.opts.PartitionAfter)
	defer timer.Stop()
	select {
	case <-r.done:
		return
	case <-timer.C:
	}
	r.mu.Lock()
	if r.stopped {
		r.mu.Unlock()
		return
	}
	r.partOn = true
	r.mu.Unlock()
	if r.tel != nil {
		r.tel.SetGauge(telemetry.GPartitionActive, 1)
	}
	r.tr.Partition(r.opts.PartitionMask)
	if r.opts.HealAfter <= 0 {
		return
	}
	timer.Reset(r.opts.HealAfter)
	select {
	case <-r.done:
		return
	case <-timer.C:
	}
	r.tr.Partition(0)
	r.mu.Lock()
	r.partOn = false
	r.mu.Unlock()
	if r.tel != nil {
		r.tel.SetGauge(telemetry.GPartitionActive, 0)
	}
}

// applyLocked performs one step: fire the ready action of flattened task
// idx through the shared system, stamp the trace, account transport
// signals, nudge delivery candidates, and evaluate stop conditions.
// Callers hold mu and have checked TaskReady(idx).
func (r *Runtime) applyLocked(idx int) {
	owner := r.sys.TaskAt(idx).Auto
	act := r.sys.ApplyReady(idx)
	if t := r.sys.Trace(); len(t) > r.traced {
		r.traced = len(t)
		r.stamps = append(r.stamps, int64(time.Since(r.start)))
	}
	if r.tel != nil {
		r.tel.Count(telemetry.CSchedSteps, 1)
		r.tel.IncTask(idx)
	}
	if act.Kind == ioa.KindSend {
		// The channel automaton just accepted this send (same composition
		// step).  Whatever the link outcome enqueued — 0 for a drop, 2 for
		// a duplicate — is the queue growth over the signals already in
		// flight; emit exactly that many signals so in-flight signals stay
		// equal to queue length.
		l := Link{From: act.Loc, To: act.Peer}
		if cs, ok := r.chanByLink[l]; ok {
			if enq := cs.q.Len() - r.pending[l]; enq > 0 {
				r.pending[l] += enq
				for i := 0; i < enq; i++ {
					r.sendQ = append(r.sendQ, outSend{l: l, payload: act.Payload})
				}
			}
		}
	} else if l, ok := r.linkByAuto[owner]; ok {
		// A channel's own deliver task fired: one signal consumed.
		r.pending[l]--
	}
	// Wake the services this action was offered to, so reactions (gossip
	// forwarding, acks, decisions) don't wait out a full heartbeat.
	r.candBuf = r.sys.DeliveryCandidates(act, r.candBuf)
	for _, ai := range r.candBuf {
		if ai == owner || r.nudges[ai] == nil {
			continue
		}
		select {
		case r.nudges[ai] <- struct{}{}:
			if r.tel != nil {
				r.tel.Count(telemetry.CLiveNudges, 1)
			}
		default:
		}
	}
	if r.opts.Stop != nil && r.opts.Stop(r.sys, act) {
		r.finishLocked(ReasonStop)
		return
	}
	if r.opts.MaxSteps > 0 && r.sys.Steps() >= r.opts.MaxSteps {
		r.finishLocked(ReasonMaxSteps)
	}
}

// takeSendsLocked hands the accumulated transport sends to the caller for
// flushing outside the lock.
func (r *Runtime) takeSendsLocked() []outSend {
	q := r.sendQ
	r.sendQ = nil
	return q
}

// flush pushes buffered sends into the transport.  Called without mu held:
// transports may take their own locks in Send, and deliver callbacks take
// mu, so holding both would invert lock order.
func (r *Runtime) flush(q []outSend) {
	if len(q) == 0 {
		return
	}
	for _, s := range q {
		r.tr.Send(s.l, s.payload)
	}
	if r.tel != nil {
		r.tel.Count(telemetry.CLiveSignals, int64(len(q)))
	}
}

// finishLocked ends the run once; later calls keep the first reason.
func (r *Runtime) finishLocked(reason string) {
	if r.stopped {
		return
	}
	r.stopped = true
	r.reason = reason
	close(r.done)
}

// Stop ends the run early (reason ReasonStopped).  Wait still performs the
// teardown and returns the result.
func (r *Runtime) Stop() {
	r.mu.Lock()
	r.finishLocked(ReasonStopped)
	r.mu.Unlock()
}

// Wait blocks until the run ends (stop condition, duration, or Stop), tears
// the transport and services down, and returns the result.
func (r *Runtime) Wait() Result {
	var durC <-chan time.Time
	if r.opts.Duration > 0 {
		t := time.NewTimer(r.opts.Duration)
		defer t.Stop()
		durC = t.C
	}
	select {
	case <-r.done:
	case <-durC:
		r.mu.Lock()
		r.finishLocked(ReasonDuration)
		r.mu.Unlock()
	}
	// Stop the transport first: it waits out in-flight deliver callbacks
	// (they see stopped and return), so after this no goroutine can step
	// the system but us.
	r.tr.Stop()
	r.wg.Wait()
	if r.tel != nil {
		r.tel.SetGauge(telemetry.GLiveServices, 0)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	res := Result{
		Steps:   r.sys.Steps(),
		Reason:  r.reason,
		Trace:   append(trace.T(nil), r.sys.Trace()...),
		Stamps:  append([]int64(nil), r.stamps...),
		Epoch:   r.start.UnixNano(),
		Elapsed: time.Since(r.start),
		Fair:    !r.partOn,
	}
	return res
}

// Run is the one-shot convenience: Start, Wait.
func (r *Runtime) Run() (Result, error) {
	if err := r.Start(); err != nil {
		return Result{}, err
	}
	return r.Wait(), nil
}
