package live

import (
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/system"
	"repro/internal/telemetry"
)

func mustTarget(t *testing.T, id string) chaos.Target {
	t.Helper()
	target, err := chaos.ParseTarget(id)
	if err != nil {
		t.Fatalf("ParseTarget(%q): %v", id, err)
	}
	return target
}

// TestLiveOmegaStackValidates is the acceptance-criteria run: a live n=3
// EvQ>EvP>Ω execution on the in-process transport must produce an artifact
// that passes all checkers and replays byte-validated through the simulated
// engine.
func TestLiveOmegaStackValidates(t *testing.T) {
	rep, err := RunTarget(RunSpec{
		Target: mustTarget(t, "gossip:FD-◇Q>FD-◇P>FD-Ω"),
		N:      3,
		Opts:   Options{Seed: 1, Duration: 10 * time.Second},
	})
	if err != nil {
		t.Fatalf("RunTarget: %v", err)
	}
	if rep.VerdictErr != nil {
		t.Errorf("live trace violates spec: %v", rep.VerdictErr)
	}
	if rep.ReplayErr != nil {
		t.Errorf("cross-engine replay: %v", rep.ReplayErr)
	}
	if !rep.Fair {
		t.Errorf("run without partitions reported unfair")
	}
	if rep.Result.Steps == 0 || len(rep.Artifact.Trace) == 0 {
		t.Fatalf("empty run: steps=%d trace=%d", rep.Result.Steps, len(rep.Artifact.Trace))
	}
	if got, want := rep.Artifact.Sched, SchedLive; got != want {
		t.Errorf("artifact sched = %q, want %q", got, want)
	}
	if len(rep.Result.Stamps) != len(rep.Result.Trace) {
		t.Errorf("stamps not parallel to trace: %d vs %d", len(rep.Result.Stamps), len(rep.Result.Trace))
	}
	for i := 1; i < len(rep.Result.Stamps); i++ {
		if rep.Result.Stamps[i] < rep.Result.Stamps[i-1] {
			t.Fatalf("stamp %d goes backwards: %d < %d", i, rep.Result.Stamps[i], rep.Result.Stamps[i-1])
		}
	}
}

// TestLiveCrashRealized: a planned crash is released mid-run by the crash
// service and survives validation.
func TestLiveCrashRealized(t *testing.T) {
	rep, err := RunTarget(RunSpec{
		Target: mustTarget(t, "gossip:FD-◇Q>FD-◇P"),
		N:      3,
		Plan:   system.CrashOf(1),
		Opts:   Options{Seed: 2, Duration: 10 * time.Second, CrashAfter: 2 * time.Millisecond},
	})
	if err != nil {
		t.Fatalf("RunTarget: %v", err)
	}
	if rep.VerdictErr != nil {
		t.Errorf("live crash trace violates spec: %v", rep.VerdictErr)
	}
	if rep.ReplayErr != nil {
		t.Errorf("cross-engine replay: %v", rep.ReplayErr)
	}
	crashes := 0
	for _, a := range rep.Artifact.Trace {
		if a.Name == "crash" {
			crashes++
		}
	}
	if crashes != 1 {
		t.Errorf("trace has %d crash events, want 1", crashes)
	}
}

// TestLiveURBQuiesces: the quiescing URB target ends via the quiescence
// watchdog, not the step bound.
func TestLiveURBQuiesces(t *testing.T) {
	rep, err := RunTarget(RunSpec{
		Target: mustTarget(t, "urb:majority"),
		N:      3,
		Opts:   Options{Seed: 3, Duration: 10 * time.Second},
	})
	if err != nil {
		t.Fatalf("RunTarget: %v", err)
	}
	if rep.VerdictErr != nil {
		t.Errorf("live URB trace violates spec: %v", rep.VerdictErr)
	}
	if rep.ReplayErr != nil {
		t.Errorf("cross-engine replay: %v", rep.ReplayErr)
	}
	if rep.Result.Reason != ReasonQuiescent && rep.Result.Reason != ReasonStop {
		t.Errorf("URB run ended with %q, want quiescent or stop", rep.Result.Reason)
	}
}

// TestLiveTelemetryPlane: the live loop reports its metrics through the
// standard registry.
func TestLiveTelemetryPlane(t *testing.T) {
	reg := telemetry.NewRegistry()
	rep, err := RunTarget(RunSpec{
		Target: mustTarget(t, "gossip:FD-Q>FD-P"),
		N:      3,
		Opts:   Options{Seed: 4, Duration: 10 * time.Second, Telemetry: reg},
	})
	if err != nil {
		t.Fatalf("RunTarget: %v", err)
	}
	if rep.VerdictErr != nil || rep.ReplayErr != nil {
		t.Fatalf("verdict=%v replay=%v", rep.VerdictErr, rep.ReplayErr)
	}
	if v := reg.Value(telemetry.CLiveSignals); v == 0 {
		t.Errorf("live_signals counter stayed zero")
	}
	if v := reg.Value(telemetry.CSchedSteps); v == 0 {
		t.Errorf("sched_steps counter stayed zero")
	}
	if v := reg.Value(telemetry.CEventsApplied); int(v) != rep.Result.Steps {
		t.Errorf("events_applied = %d, want %d", v, rep.Result.Steps)
	}
	if v := reg.Value(telemetry.GLiveServices); v != 0 {
		t.Errorf("live_services gauge = %d after teardown, want 0", v)
	}
}

// TestLiveStopEarly: an external Stop ends the run promptly with the
// stopped reason and an internally consistent result.
func TestLiveStopEarly(t *testing.T) {
	target := mustTarget(t, "gossip:FD-◇Q>FD-◇P")
	b, err := target.Build(3, system.NoFaults(), nil, false)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	rt, err := New(b.Sys, Options{Seed: 5, Duration: 30 * time.Second})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if err := rt.Start(); err != nil {
		t.Fatalf("Start: %v", err)
	}
	time.Sleep(5 * time.Millisecond)
	go rt.Stop()
	res := rt.Wait()
	if res.Reason != ReasonStopped {
		t.Errorf("reason = %q, want %q", res.Reason, ReasonStopped)
	}
	if len(res.Stamps) != len(res.Trace) {
		t.Errorf("stamps not parallel to trace: %d vs %d", len(res.Stamps), len(res.Trace))
	}
}

// TestLiveSoak hammers start/run/stop cycles across transports and targets
// so the race detector sees repeated concurrent lifecycles (leaked
// listeners, double-stops, deliver-after-stop would all surface here).
func TestLiveSoak(t *testing.T) {
	cycles := 8
	if testing.Short() {
		cycles = 3
	}
	ids := []string{"gossip:FD-◇Q>FD-◇P>FD-Ω", "urb:majority"}
	for i := 0; i < cycles; i++ {
		id := ids[i%len(ids)]
		spec := RunSpec{
			Target: mustTarget(t, id),
			N:      3,
			Opts: Options{
				Seed:     int64(100 + i),
				Duration: 10 * time.Second,
				MaxSteps: 600, // short cycles: lifecycle pressure, not liveness
			},
		}
		if i%2 == 1 {
			tcp, err := NewTCPTransport()
			if err != nil {
				t.Fatalf("cycle %d: %v", i, err)
			}
			spec.Opts.Transport = tcp
		}
		rep, err := RunTarget(spec)
		if err != nil {
			t.Fatalf("cycle %d (%s): %v", i, id, err)
		}
		if rep.ReplayErr != nil {
			t.Fatalf("cycle %d (%s): replay: %v", i, id, rep.ReplayErr)
		}
		// Short runs need not satisfy liveness clauses; safety violations
		// would still land in VerdictErr for the quiescing URB target,
		// whose runs complete.
		if id == "urb:majority" && rep.VerdictErr != nil {
			t.Fatalf("cycle %d: URB verdict: %v", i, rep.VerdictErr)
		}
	}
}
