package live

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/ioa"
)

func link(from, to int) Link { return Link{From: ioa.Loc(from), To: ioa.Loc(to)} }

// collectDelivers starts tr with a callback counting delivers per link.
func collectDelivers(t *testing.T, tr Transport) (*sync.Mutex, map[Link]int) {
	t.Helper()
	var mu sync.Mutex
	got := map[Link]int{}
	if err := tr.Start(func(l Link) {
		mu.Lock()
		got[l]++
		mu.Unlock()
	}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	return &mu, got
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("condition not reached within deadline")
		}
		time.Sleep(time.Millisecond)
	}
}

func testTransportOnePerSend(t *testing.T, tr Transport) {
	mu, got := collectDelivers(t, tr)
	const n = 50
	for i := 0; i < n; i++ {
		tr.Send(link(0, 1), "m")
		tr.Send(link(1, 2), "m")
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got[link(0, 1)] == n && got[link(1, 2)] == n
	})
	tr.Stop()
	mu.Lock()
	defer mu.Unlock()
	if got[link(0, 1)] != n || got[link(1, 2)] != n {
		t.Fatalf("delivers = %v, want %d per link", got, n)
	}
}

func testTransportPartition(t *testing.T, tr Transport) {
	mu, got := collectDelivers(t, tr)
	// Isolate location 0: the 0>1 signal must be held, 1>2 must pass.
	tr.Partition(0b001)
	tr.Send(link(0, 1), "held")
	tr.Send(link(1, 2), "pass")
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got[link(1, 2)] == 1
	})
	// Generous settle window: the held signal must NOT arrive.
	time.Sleep(20 * time.Millisecond)
	mu.Lock()
	held := got[link(0, 1)]
	mu.Unlock()
	if held != 0 {
		t.Fatalf("cross-partition signal delivered %d times while partitioned", held)
	}
	tr.Partition(0) // heal: held signal released
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		return got[link(0, 1)] == 1
	})
	tr.Stop()
}

func testTransportNoDeliverAfterStop(t *testing.T, tr Transport) {
	var after atomic.Bool
	var stopped atomic.Bool
	if err := tr.Start(func(Link) {
		if stopped.Load() {
			after.Store(true)
		}
	}); err != nil {
		t.Fatalf("Start: %v", err)
	}
	for i := 0; i < 100; i++ {
		tr.Send(link(0, 1), "m")
	}
	tr.Stop()
	stopped.Store(true)
	time.Sleep(10 * time.Millisecond)
	if after.Load() {
		t.Fatalf("deliver callback invoked after Stop returned")
	}
	tr.Stop() // idempotent
}

func TestChanTransport(t *testing.T) {
	t.Run("one-deliver-per-send", func(t *testing.T) {
		testTransportOnePerSend(t, NewChanTransport(ChanOptions{Seed: 1}))
	})
	t.Run("partition-hold-release", func(t *testing.T) {
		testTransportPartition(t, NewChanTransport(ChanOptions{Seed: 2}))
	})
	t.Run("no-deliver-after-stop", func(t *testing.T) {
		testTransportNoDeliverAfterStop(t, NewChanTransport(ChanOptions{Seed: 3}))
	})
}

func newTCP(t *testing.T) *TCPTransport {
	t.Helper()
	tr, err := NewTCPTransport()
	if err != nil {
		t.Skipf("cannot bind loopback listener: %v", err)
	}
	return tr
}

func TestTCPTransport(t *testing.T) {
	t.Run("one-deliver-per-send", func(t *testing.T) {
		testTransportOnePerSend(t, newTCP(t))
	})
	t.Run("partition-hold-release", func(t *testing.T) {
		testTransportPartition(t, newTCP(t))
	})
	t.Run("no-deliver-after-stop", func(t *testing.T) {
		testTransportNoDeliverAfterStop(t, newTCP(t))
	})
}

// TestTCPFrameRoundTrip exercises the wire framing directly.
func TestTCPFrameRoundTrip(t *testing.T) {
	tr := newTCP(t)
	mu, got := collectDelivers(t, tr)
	payloads := []string{"", "x", "hello world", string(make([]byte, 4096))}
	for i, p := range payloads {
		tr.Send(link(i, i+1), p)
	}
	waitFor(t, func() bool {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, c := range got {
			n += c
		}
		return n == len(payloads)
	})
	tr.Stop()
	mu.Lock()
	defer mu.Unlock()
	for i := range payloads {
		if got[link(i, i+1)] != 1 {
			t.Errorf("link %d>%d delivered %d times, want 1", i, i+1, got[link(i, i+1)])
		}
	}
}
