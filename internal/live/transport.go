// Package live runs the repository's I/O automata as real concurrent
// services: one goroutine per automaton, wall-clock heartbeat pacing, and a
// pluggable transport carrying message-delivery signals between locations.
//
// The design constraint (ROADMAP item 1) is ONE automaton implementation for
// both execution backends.  The live runtime therefore never re-implements a
// process, channel, or detector: it hosts the exact composition the
// simulated scheduler would drive (the same *ioa.System) and serializes
// every automaton step through a single step lock.  Real concurrency lives
// in WHEN steps happen — goroutine scheduling, wall-clock timers, transport
// delays — while each step itself is the atomic owner-fire-plus-deliveries
// event of §2.3 composition.  The payoff: the totally-ordered event log of a
// live run is, by construction, an execution of the composition, so the
// existing spec checkers judge it directly and ioa.ReplayTrace re-drives it
// byte-for-byte through the simulated engine after the fact (see Validate).
//
// Chaos composes in two layers, mirroring the simulated backend:
//
//   - message LOSS (drop/dup/reorder) and TOPOLOGY are properties of the
//     channel automata themselves, via system.NetSpec — decided at send
//     time by the same pure function in both backends, which is what keeps
//     lossy live runs replayable;
//   - message DELAY and PARTITION are properties of the transport: a
//     delivery signal may be held arbitrarily long, which only delays an
//     enabled channel task — always a legal scheduling choice.
package live

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/ioa"
	"repro/internal/sched"
)

// ErrInfra marks infrastructure failures (socket bind, dial, accept) as
// opposed to specification verdicts.  CI retries infra failures only: a
// port collision is environment noise, a checker rejection never is.
var ErrInfra = errors.New("live: infrastructure failure")

// Infra wraps err so errors.Is(err, ErrInfra) holds.
func Infra(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", ErrInfra, err)
}

// Link identifies a directed channel automaton Ci,j of the composition.
type Link struct{ From, To ioa.Loc }

// String renders the link in topology-descriptor form.
func (l Link) String() string { return fmt.Sprintf("%v>%v", l.From, l.To) }

// Transport carries message-delivery signals between locations.  The
// runtime calls Send once per message an accepted send actually enqueued on
// a channel automaton (post NetSpec outcome: zero for a drop, two for a
// duplicate); the transport must eventually invoke the deliver callback
// once per signal — unless stopped, or the link is partitioned and never
// heals.  Signal order within a link is irrelevant: the channel automaton
// is the authoritative FIFO queue and always delivers its head, so the
// transport controls timing only, never content.
//
// deliver is invoked from transport-owned goroutines; the runtime
// serializes the resulting channel step internally.  Implementations must
// not hold internal locks while calling deliver (the runtime's step lock is
// taken inside), and Send must be safe for concurrent use.
type Transport interface {
	// Start installs the runtime's deliver callback.  Called exactly once,
	// before any Send.
	Start(deliver func(Link)) error
	// Send registers one enqueued message on l; payload is the message
	// content (informational for in-process transports, the wire bytes for
	// socket transports).
	Send(l Link, payload string)
	// Partition splits the locations into the two sides of mask (bit l set
	// = location l on side 1): cross-side signals are held until the
	// partition heals.  Partition(0) heals, releasing every held signal.
	Partition(mask uint64)
	// Stop tears the transport down.  No deliver callback is invoked after
	// Stop returns; held and in-flight signals are discarded.
	Stop()
}

// crossSide reports whether l crosses the two sides of mask.
func crossSide(mask uint64, l Link) bool {
	return mask != 0 && (mask>>uint(l.From)&1) != (mask>>uint(l.To)&1)
}

// ChanOptions configures the in-process transport.
type ChanOptions struct {
	// Seed drives the per-signal delay jitter (deterministic choices; the
	// realized interleaving still depends on goroutine scheduling).
	Seed int64
	// MinDelay/MaxDelay bound the per-signal delivery delay.  Defaults:
	// 20µs / 200µs.
	MinDelay, MaxDelay time.Duration
}

func (o ChanOptions) delays() (time.Duration, time.Duration) {
	lo, hi := o.MinDelay, o.MaxDelay
	if lo <= 0 {
		lo = 20 * time.Microsecond
	}
	if hi < lo {
		hi = 10 * lo
	}
	return lo, hi
}

// ChanTransport is the in-process transport: every delivery signal becomes
// a timer whose duration is drawn from a seeded PRNG, modeling asynchronous
// link latency without leaving the process.  It is the default transport
// and the one the conformance table pins.
type ChanTransport struct {
	opts ChanOptions

	mu      sync.Mutex
	rng     sched.PRNG
	deliver func(Link)
	mask    uint64
	held    map[Link]int // signals parked by an active partition
	stopped bool
	timers  sync.WaitGroup
}

var _ Transport = (*ChanTransport)(nil)

// NewChanTransport returns an in-process transport with the given options.
func NewChanTransport(opts ChanOptions) *ChanTransport {
	return &ChanTransport{opts: opts, rng: sched.NewPRNG(opts.Seed), held: make(map[Link]int)}
}

// Start implements Transport.
func (t *ChanTransport) Start(deliver func(Link)) error {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.deliver = deliver
	return nil
}

// Send implements Transport: schedule one delivery signal after a jittered
// delay.
func (t *ChanTransport) Send(l Link, _ string) {
	lo, hi := t.opts.delays()
	t.mu.Lock()
	if t.stopped {
		t.mu.Unlock()
		return
	}
	d := lo
	if span := int64(hi - lo); span > 0 {
		d += time.Duration(t.rng.Intn(int(span)))
	}
	t.timers.Add(1)
	t.mu.Unlock()
	time.AfterFunc(d, func() {
		defer t.timers.Done()
		t.fire(l)
	})
}

// fire hands one signal to the runtime, or parks it while the link is
// partitioned.  The deliver callback runs outside the transport lock.
func (t *ChanTransport) fire(l Link) {
	t.mu.Lock()
	if t.stopped || t.deliver == nil {
		t.mu.Unlock()
		return
	}
	if crossSide(t.mask, l) {
		t.held[l]++
		t.mu.Unlock()
		return
	}
	deliver := t.deliver
	t.mu.Unlock()
	deliver(l)
}

// Partition implements Transport.
func (t *ChanTransport) Partition(mask uint64) {
	t.mu.Lock()
	t.mask = mask
	var release []Link
	for l, n := range t.held {
		if !crossSide(mask, l) {
			for i := 0; i < n; i++ {
				release = append(release, l)
			}
			delete(t.held, l)
		}
	}
	deliver := t.deliver
	stopped := t.stopped
	t.mu.Unlock()
	if stopped || deliver == nil {
		return
	}
	for _, l := range release {
		deliver(l)
	}
}

// Stop implements Transport.
func (t *ChanTransport) Stop() {
	t.mu.Lock()
	t.stopped = true
	t.held = map[Link]int{}
	t.mu.Unlock()
	// Timers fire into the stopped check above; waiting for them keeps
	// "no deliver after Stop" exact rather than approximate.
	t.timers.Wait()
}
