package transform

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

// sourceFor returns the standard detector for a family.
func sourceFor(t *testing.T, family string, n int) afd.Detector {
	t.Helper()
	d, err := afd.Lookup(family, n)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// TestCatalogReductionsProduceAdmissibleTargets is E6's core assertion:
// every catalog reduction, fed its source detector's canonical outputs,
// produces a trace the *target* detector's checker accepts, under several
// fault patterns and schedules.
func TestCatalogReductionsProduceAdmissibleTargets(t *testing.T) {
	const n = 4
	w := afd.DefaultWindow()
	plans := [][]ioa.Loc{nil, {0}, {3}, {0, 3}}
	for _, l := range Catalog() {
		src := sourceFor(t, l.From, n)
		tgt := sourceFor(t, l.To, n)
		for pi, plan := range plans {
			for _, seed := range []int64{-1, 5} {
				tr, err := Run(src, l.Procs(n), l.To, RunSpec{
					N: n, Crash: plan, Seed: seed, Steps: 1200, CrashGate: 100,
				})
				if err != nil {
					t.Fatalf("%s plan %d: %v", l.Name, pi, err)
				}
				if err := tgt.Check(tr, n, w); err != nil {
					t.Errorf("%s plan %d seed %d: target checker rejects: %v",
						l.Name, pi, seed, err)
				}
			}
		}
	}
}

func TestOmegaToOmegaKAndPsiK(t *testing.T) {
	const n, k = 4, 2
	w := afd.DefaultWindow()
	cases := []struct {
		l   Local
		tgt afd.Detector
	}{
		{OmegaToOmegaK(k), afd.OmegaK{K: k}},
		{PToPsiK(k), afd.PsiK{K: k}},
	}
	for _, tc := range cases {
		src := sourceFor(t, tc.l.From, n)
		for _, plan := range [][]ioa.Loc{nil, {3}} {
			tr, err := Run(src, tc.l.Procs(n), tc.l.To, RunSpec{
				N: n, Crash: plan, Seed: -1, Steps: 1200, CrashGate: 100,
			})
			if err != nil {
				t.Fatalf("%s: %v", tc.l.Name, err)
			}
			if err := tc.tgt.Check(tr, n, w); err != nil {
				t.Errorf("%s (plan %v): %v", tc.l.Name, plan, err)
			}
		}
	}
}

// TestGossipBoostsWeakToStrongCompleteness feeds the weakly complete W
// automaton (only min-live reports suspicions) through the gossip reduction
// and checks the result against the *strong* detector S — the W→S boost.
func TestGossipBoostsWeakToStrongCompleteness(t *testing.T) {
	const n = 4
	w := afd.DefaultWindow()
	g := Gossip{From: afd.FamilyW, To: afd.FamilyS}
	src := sourceFor(t, afd.FamilyW, n)
	for _, plan := range [][]ioa.Loc{{3}, {1, 3}} {
		tr, err := Run(src, g.Procs(n), afd.FamilyS, RunSpec{
			N: n, Crash: plan, Seed: -1, Steps: 4000, CrashGate: 200, WithChannels: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := (afd.Strong{}).Check(tr, n, w); err != nil {
			t.Errorf("gossip W→S (plan %v): %v", plan, err)
		}
	}
}

// TestGossipEventualVariant boosts ◇W to ◇S.
func TestGossipEventualVariant(t *testing.T) {
	const n = 3
	g := Gossip{From: afd.FamilyEvW, To: afd.FamilyEvS}
	src := sourceFor(t, afd.FamilyEvW, n)
	tr, err := Run(src, g.Procs(n), afd.FamilyEvS, RunSpec{
		N: n, Crash: []ioa.Loc{2}, Seed: -1, Steps: 4000, CrashGate: 200, WithChannels: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := (afd.EvStrong{}).Check(tr, n, afd.DefaultWindow()); err != nil {
		t.Errorf("gossip ◇W→◇S: %v", err)
	}
}

// TestChainTransitivity is Theorem 15 executable: P→◇P→Ω chained equals a
// valid Ω implementation.
func TestChainTransitivity(t *testing.T) {
	const n = 3
	var pToEvP, evPToOmega Local
	for _, l := range Catalog() {
		switch l.Name {
		case "P→◇P":
			pToEvP = l
		case "◇P→Ω":
			evPToOmega = l
		}
	}
	chain := Chain{pToEvP, evPToOmega}
	if err := chain.Validate(); err != nil {
		t.Fatal(err)
	}
	procs, err := chain.Procs(n)
	if err != nil {
		t.Fatal(err)
	}
	src := sourceFor(t, afd.FamilyP, n)
	tr, err := Run(src, procs, afd.FamilyOmega, RunSpec{
		N: n, Crash: []ioa.Loc{0}, Seed: -1, Steps: 2000, CrashGate: 100,
		Hide: []string{afd.FamilyEvP}, // the intermediate family (Section 2.3 hiding)
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := (afd.Omega{}).Check(tr, n, afd.DefaultWindow()); err != nil {
		t.Errorf("chained P→◇P→Ω: %v", err)
	}
	if got := chain.Names(); got != "P→◇P ∘ ◇P→Ω" {
		t.Errorf("Names = %q", got)
	}
}

// TestChainHidesIntermediateFamily: hiding removes the intermediate
// detector's outputs from the externally visible trace while the chain
// still works (the hidden actions keep synchronizing internally).
func TestChainHidesIntermediateFamily(t *testing.T) {
	const n = 3
	var pToEvP, evPToOmega Local
	for _, l := range Catalog() {
		switch l.Name {
		case "P→◇P":
			pToEvP = l
		case "◇P→Ω":
			evPToOmega = l
		}
	}
	procs, err := (Chain{pToEvP, evPToOmega}).Procs(n)
	if err != nil {
		t.Fatal(err)
	}
	src := sourceFor(t, afd.FamilyP, n)

	autos := []ioa.Automaton{src.Automaton(n)}
	autos = append(autos, procs...)
	autos = append(autos, system.NewCrash(system.NoFaults()))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		t.Fatal(err)
	}
	sys.Hide(func(a ioa.Action) bool { return a.Kind == ioa.KindFD && a.Name == afd.FamilyEvP })
	sched.RoundRobin(sys, sched.Options{MaxSteps: 900})

	for _, a := range sys.Trace() {
		if a.Kind == ioa.KindFD && a.Name == afd.FamilyEvP {
			t.Fatalf("hidden intermediate event visible: %v", a)
		}
	}
	omega := trace.FD(sys.Trace(), afd.FamilyOmega)
	if err := (afd.Omega{}).Check(omega, n, afd.DefaultWindow()); err != nil {
		t.Fatalf("chain broken by hiding: %v", err)
	}
}

func TestChainValidateRejectsMismatch(t *testing.T) {
	c := Chain{
		{Name: "a", From: afd.FamilyP, To: afd.FamilyEvP, F: identity},
		{Name: "b", From: afd.FamilyOmega, To: afd.FamilyAntiOmega, F: identity},
	}
	if err := c.Validate(); err == nil {
		t.Fatal("mismatched chain must fail validation")
	}
	if _, err := c.Procs(3); err == nil {
		t.Fatal("Procs must propagate validation failure")
	}
}

func TestLocalMachineDropsMalformedPayload(t *testing.T) {
	l := Local{Name: "bad", From: afd.FamilyP, To: afd.FamilyOmega, F: suspicionToLeader}
	m := &localMachine{cfg: l, n: 3}
	e := system.NewEffects(0)
	m.OnFD(ioa.FDOutput(afd.FamilyP, 0, "not-a-set"), e)
	if m.errs != 1 {
		t.Fatalf("errs = %d, want 1", m.errs)
	}
	if len(e.Pending()) != 0 {
		t.Fatal("malformed payload must not produce an output")
	}
	if m.Encode() == (&localMachine{cfg: l, n: 3}).Encode() {
		t.Error("error count must be part of the encoding")
	}
}
