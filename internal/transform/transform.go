// Package transform implements distributed algorithms that solve one AFD
// using another, realizing the ⪰ relation of Sections 5.4–7 of
// "Asynchronous Failure Detectors" as executable reductions:
//
//   - Local transforms map each input-detector output event at a location to
//     one output event of the target detector at the same location (a
//     one-automaton-per-location distributed algorithm with no messages);
//   - Gossip boosts weak completeness to strong completeness by exchanging
//     suspicion sets over the reliable FIFO channels (the message-passing
//     construction of Chandra-Toueg, recast as process automata);
//   - Chains compose reductions, making Theorem 15 (transitivity of ⪰)
//     executable.
package transform

import (
	"fmt"
	"strings"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/system"
)

// Local is a stateless per-location reduction: every output d of the From
// family at location i triggers one output F(d) of the To family at i.
// Validity of the target is inherited: live locations receive infinitely
// many From outputs, hence emit infinitely many To outputs, and crashes
// disable the hosting process automaton.
type Local struct {
	// Name identifies the reduction (for diagnostics and benchmarks).
	Name string
	// From and To are the input and output detector families.
	From, To string
	// F maps an input payload to the output payload; n is the number of
	// locations.
	F func(n int, payload string) (string, error)
}

// Procs returns the distributed algorithm: one process automaton per
// location hosting the reduction machine.
func (l Local) Procs(n int) []ioa.Automaton {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		m := &localMachine{cfg: l, n: n}
		out[i] = system.NewProc("xform:"+l.Name, ioa.Loc(i), n, m, []string{l.From}, nil)
	}
	return out
}

type localMachine struct {
	system.NopMachine
	cfg  Local
	n    int
	errs int
}

func (m *localMachine) OnFD(a ioa.Action, e *system.Effects) {
	p, err := m.cfg.F(m.n, a.Payload)
	if err != nil {
		// A malformed input payload means the input trace was not
		// admissible for the From detector; the reduction's obligation
		// is vacuous (Section 5.2), so drop the event but remember it.
		m.errs++
		return
	}
	e.OutputFD(m.cfg.To, p)
}

func (m *localMachine) Clone() system.Machine {
	c := *m
	return &c
}

func (m *localMachine) Encode() string { return fmt.Sprintf("L:%s:%d", m.cfg.Name, m.errs) }

// suspicionToLeader maps a suspicion-set payload to the minimum unsuspected
// location — the extraction of Ω from (eventually) accurate+complete
// suspicion lists.
func suspicionToLeader(n int, payload string) (string, error) {
	set, err := ioa.DecodeLocSet(payload)
	if err != nil {
		return "", err
	}
	for i := 0; i < n; i++ {
		if !set[ioa.Loc(i)] {
			return ioa.EncodeLoc(ioa.Loc(i)), nil
		}
	}
	// Everyone suspected: emit location 0; this can only happen in the
	// unstabilized prefix, which Ω admissibility does not constrain.
	return ioa.EncodeLoc(0), nil
}

// identity forwards the payload unchanged (weakening reductions: a detector
// is trivially sufficient for any detector with a weaker specification over
// the same outputs, modulo renaming).
func identity(_ int, payload string) (string, error) { return payload, nil }

// Catalog returns the named local reductions used by the hierarchy
// experiments (E6).  Each is a genuine ⪰ witness: target-checker tests
// verify the produced traces.
func Catalog() []Local {
	return []Local{
		{Name: "P→◇P", From: afd.FamilyP, To: afd.FamilyEvP, F: identity},
		{Name: "P→S", From: afd.FamilyP, To: afd.FamilyS, F: identity},
		{Name: "P→Q", From: afd.FamilyP, To: afd.FamilyQ, F: identity},
		{Name: "S→◇S", From: afd.FamilyS, To: afd.FamilyEvS, F: identity},
		{Name: "◇P→◇S", From: afd.FamilyEvP, To: afd.FamilyEvS, F: identity},
		{Name: "◇P→◇Q", From: afd.FamilyEvP, To: afd.FamilyEvQ, F: identity},
		{Name: "◇S→◇W", From: afd.FamilyEvS, To: afd.FamilyEvW, F: identity},
		{Name: "S→W", From: afd.FamilyS, To: afd.FamilyW, F: identity},
		{Name: "P→Ω", From: afd.FamilyP, To: afd.FamilyOmega, F: suspicionToLeader},
		{Name: "◇P→Ω", From: afd.FamilyEvP, To: afd.FamilyOmega, F: suspicionToLeader},
		{Name: "P→Σ", From: afd.FamilyP, To: afd.FamilySigma, F: func(n int, payload string) (string, error) {
			set, err := ioa.DecodeLocSet(payload)
			if err != nil {
				return "", err
			}
			quorum := make(map[ioa.Loc]bool)
			for i := 0; i < n; i++ {
				if !set[ioa.Loc(i)] {
					quorum[ioa.Loc(i)] = true
				}
			}
			return ioa.EncodeLocSet(quorum), nil
		}},
		{Name: "Ω→antiΩ", From: afd.FamilyOmega, To: afd.FamilyAntiOmega, F: func(n int, payload string) (string, error) {
			l, err := ioa.DecodeLoc(payload)
			if err != nil {
				return "", err
			}
			return ioa.EncodeLoc(ioa.Loc((int(l) + 1) % n)), nil
		}},
		{Name: "Q→W", From: afd.FamilyQ, To: afd.FamilyW, F: identity},
		{Name: "◇Q→◇W", From: afd.FamilyEvQ, To: afd.FamilyEvW, F: identity},
		// Ωk's stabilized set contains a live location; avoiding the set
		// therefore eventually never outputs that live location — anti-Ω.
		{Name: "Ωk→antiΩ", From: afd.FamilyOmegaK, To: afd.FamilyAntiOmega, F: func(n int, payload string) (string, error) {
			set, err := ioa.DecodeLocSet(payload)
			if err != nil {
				return "", err
			}
			for i := 0; i < n; i++ {
				if !set[ioa.Loc(i)] {
					return ioa.EncodeLoc(ioa.Loc(i)), nil
				}
			}
			// The set covers Π (only possible when k = n); emit 0 — the
			// anti-Ω obligation is then unsatisfiable for any algorithm,
			// so this reduction is declared for k < n.
			return ioa.EncodeLoc(0), nil
		}},
	}
}

// OmegaToOmegaK returns the Ω→Ωk reduction: the output set is the leader
// plus the k−1 smallest other locations, a deterministic, eventually
// constant k-set containing a live location.
func OmegaToOmegaK(k int) Local {
	return Local{
		Name: fmt.Sprintf("Ω→Ω%d", k),
		From: afd.FamilyOmega,
		To:   afd.FamilyOmegaK,
		F: func(n int, payload string) (string, error) {
			l, err := ioa.DecodeLoc(payload)
			if err != nil {
				return "", err
			}
			set := map[ioa.Loc]bool{l: true}
			for i := 0; i < n && len(set) < k; i++ {
				set[ioa.Loc(i)] = true
			}
			return ioa.EncodeLocSet(set), nil
		},
	}
}

// PToPsiK returns the P→Ψk reduction: quorum = complement of the suspicion
// set, k-set = leader extraction padded to k locations.
func PToPsiK(k int) Local {
	return Local{
		Name: fmt.Sprintf("P→Ψ%d", k),
		From: afd.FamilyP,
		To:   afd.FamilyPsiK,
		F: func(n int, payload string) (string, error) {
			set, err := ioa.DecodeLocSet(payload)
			if err != nil {
				return "", err
			}
			quorum := make(map[ioa.Loc]bool)
			kset := make(map[ioa.Loc]bool)
			for i := 0; i < n; i++ {
				if !set[ioa.Loc(i)] {
					quorum[ioa.Loc(i)] = true
					if len(kset) < k {
						kset[ioa.Loc(i)] = true
					}
				}
			}
			for i := 0; i < n && len(kset) < k; i++ {
				kset[ioa.Loc(i)] = true
			}
			return ioa.EncodeLocSet(quorum) + ";" + ioa.EncodeLocSet(kset), nil
		},
	}
}

// Gossip is the message-passing completeness-boosting reduction: each
// location rebroadcasts its latest From-family suspicion set; a location's
// To-family output is the union of the *latest* set from every location
// (including itself).  Keeping only the latest set per sender preserves
// eventual accuracy (stale suspicions are superseded), while the union
// upgrades weak completeness to strong completeness — so W→S-shaped and
// ◇W→◇S-shaped reductions become executable with real channel traffic.
type Gossip struct {
	From, To string
	// Forward selects relay mode for degraded networks: messages carry
	// their origin ("origin|set") and a location that learns new members
	// for an origin's set rebroadcasts the improved set, flooding state
	// across multi-hop topologies.  Merges are monotone unions — a copy
	// can only add members to the stored set — so duplicated, reordered,
	// or multi-path-raced copies cannot regress state (a last-write-wins
	// relay would let a stale set overwrite a fresher one).  Sound because
	// the source families gossip boosts emit monotone crash sets.  Each
	// origin's stored set grows at most n times, so relay traffic is
	// bounded and the flood quiesces.
	Forward bool
}

// Procs returns the gossip distributed algorithm for n locations.
func (g Gossip) Procs(n int) []ioa.Automaton {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		m := &gossipMachine{cfg: g, n: n, self: ioa.Loc(i), latest: make([]string, n)}
		out[i] = system.NewProc("gossip:"+g.From+"→"+g.To, ioa.Loc(i), n, m, []string{g.From}, nil)
	}
	return out
}

type gossipMachine struct {
	system.NopMachine
	cfg    Gossip
	n      int
	self   ioa.Loc
	latest []string // latest suspicion payload per sender; "" = none yet
}

func (m *gossipMachine) OnFD(a ioa.Action, e *system.Effects) {
	// Rebroadcast only on change: a location receives one FD input per
	// fair-schedule cycle but its single task fires only one queued action
	// per cycle, so an unconditional broadcast would grow the outbox
	// without bound and the emitted unions would lag arbitrarily far
	// behind the received state.  Suspicion payloads change finitely often
	// (they are driven by the finitely many crash events), so conditional
	// rebroadcast keeps the queue bounded while still propagating every
	// change to every live location.
	if m.latest[m.self] != a.Payload {
		m.latest[m.self] = a.Payload
		if m.cfg.Forward {
			e.Broadcast(m.n, tagOrigin(m.self, a.Payload))
		} else {
			e.Broadcast(m.n, a.Payload)
		}
	}
	m.emit(e)
}

func (m *gossipMachine) OnReceive(from ioa.Loc, msg string, e *system.Effects) {
	if !m.cfg.Forward {
		// Update only; the next FD input emits the refreshed union.  Live
		// locations receive FD inputs forever, so outputs remain infinite.
		m.latest[from] = msg
		return
	}
	origin, payload, err := splitOrigin(msg)
	if err != nil || origin == m.self {
		// Malformed relays are dropped (vacuous obligation, as for
		// malformed FD inputs); copies of our own set are already
		// subsumed by the authoritative local state.
		return
	}
	merged, grew := unionGrow(m.latest[origin], payload)
	if grew {
		m.latest[origin] = merged
		e.Broadcast(m.n, tagOrigin(origin, merged))
	}
}

// tagOrigin wraps a relay payload with the location whose set it carries.
func tagOrigin(origin ioa.Loc, payload string) string {
	return ioa.EncodeLoc(origin) + "|" + payload
}

// splitOrigin undoes tagOrigin.
func splitOrigin(msg string) (ioa.Loc, string, error) {
	i := strings.IndexByte(msg, '|')
	if i < 0 {
		return 0, "", fmt.Errorf("transform: untagged relay message %q", msg)
	}
	origin, err := ioa.DecodeLoc(msg[:i])
	return origin, msg[i+1:], err
}

// unionGrow merges a received location set into the stored one, reporting
// whether it added members.  A stored "" counts as the empty set, so
// member-free messages are never adopted (nothing to propagate).
func unionGrow(stored, received string) (string, bool) {
	recv, err := ioa.DecodeLocSet(received)
	if err != nil || len(recv) == 0 {
		return stored, false
	}
	have := map[ioa.Loc]bool{}
	if stored != "" {
		if have, err = ioa.DecodeLocSet(stored); err != nil {
			have = map[ioa.Loc]bool{}
		}
	}
	grew := false
	for l := range recv {
		if !have[l] {
			have[l] = true
			grew = true
		}
	}
	if !grew {
		return stored, false
	}
	return ioa.EncodeLocSet(have), true
}

func (m *gossipMachine) emit(e *system.Effects) {
	union := make(map[ioa.Loc]bool)
	for _, p := range m.latest {
		if p == "" {
			continue
		}
		set, err := ioa.DecodeLocSet(p)
		if err != nil {
			continue
		}
		for l := range set {
			union[l] = true
		}
	}
	e.OutputFD(m.cfg.To, ioa.EncodeLocSet(union))
}

func (m *gossipMachine) Clone() system.Machine {
	c := &gossipMachine{cfg: m.cfg, n: m.n, self: m.self}
	c.latest = append([]string(nil), m.latest...)
	return c
}

func (m *gossipMachine) Encode() string {
	return fmt.Sprintf("GS%v|%s", m.self, strings.Join(m.latest, "\x1f"))
}

// Chain composes local reductions end to end (Theorem 15): the output family
// of each stage is the input family of the next.  Procs returns all stages'
// automata; the intermediate families remain visible in the trace, which is
// harmless (hiding is a relabeling the projection-based checkers never see).
type Chain []Local

// Validate checks that the stages compose.
func (c Chain) Validate() error {
	for i := 1; i < len(c); i++ {
		if c[i].From != c[i-1].To {
			return fmt.Errorf("transform: stage %d consumes %s but stage %d produces %s",
				i, c[i].From, i-1, c[i-1].To)
		}
	}
	return nil
}

// Procs returns the composed distributed algorithm.
func (c Chain) Procs(n int) ([]ioa.Automaton, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	var out []ioa.Automaton
	for si, stage := range c {
		// Stage labels must be unique per composition even if the same
		// reduction appears twice.
		stage.Name = fmt.Sprintf("%d:%s", si, stage.Name)
		out = append(out, stage.Procs(n)...)
	}
	return out, nil
}

// Names returns the stage names joined for reporting.
func (c Chain) Names() string {
	names := make([]string, len(c))
	for i, s := range c {
		names[i] = s.Name
	}
	return strings.Join(names, " ∘ ")
}
