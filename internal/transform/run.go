package transform

import (
	"fmt"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

// RunSpec configures a reduction run.
type RunSpec struct {
	N         int
	Crash     []ioa.Loc
	Steps     int
	Seed      int64 // <0: round-robin
	CrashGate int
	// WithChannels adds the full channel mesh; required for Gossip.
	WithChannels bool
	// Hide lists detector families to hide in the composition (Section
	// 2.3): chained reductions hide the intermediate families so only the
	// final detector's outputs remain externally visible.
	Hide []string
}

func (s RunSpec) steps() int {
	if s.Steps <= 0 {
		return 256 * s.N
	}
	return s.Steps
}

// Run composes the source detector's canonical automaton, the reduction's
// process automata, (optionally) the channel mesh, and a crash automaton;
// runs it; and returns the trace projected onto Iˆ plus the target family's
// outputs — the sequence the target detector's checker judges.
func Run(source afd.Detector, procs []ioa.Automaton, targetFamily string, spec RunSpec) (trace.T, error) {
	autos := []ioa.Automaton{source.Automaton(spec.N)}
	autos = append(autos, procs...)
	if spec.WithChannels {
		autos = append(autos, system.Channels(spec.N)...)
	}
	autos = append(autos, system.NewCrash(system.CrashOf(spec.Crash...)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return nil, fmt.Errorf("transform: composing: %w", err)
	}
	if len(spec.Hide) > 0 {
		hidden := make(map[string]bool, len(spec.Hide))
		for _, f := range spec.Hide {
			hidden[f] = true
		}
		sys.Hide(func(a ioa.Action) bool {
			return a.Kind == ioa.KindFD && hidden[a.Name]
		})
	}
	opts := sched.Options{MaxSteps: spec.steps()}
	if spec.CrashGate > 0 {
		opts.Gate = sched.CrashesAfter(spec.CrashGate, spec.CrashGate)
	}
	if spec.Seed >= 0 {
		sched.Random(sys, spec.Seed, opts)
	} else {
		sched.RoundRobin(sys, opts)
	}
	return trace.FD(sys.Trace(), targetFamily), nil
}
