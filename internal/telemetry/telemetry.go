// Package telemetry is the observability substrate of the simulation stack:
// process-wide metrics (atomic counters, gauges, fixed-bucket histograms),
// a bounded-memory execution-trace recorder exporting Chrome trace_event
// JSON, and an opt-in HTTP endpoint serving expvar, net/http/pprof, and a
// JSON metric snapshot.
//
// The package is zero-dependency (stdlib only) so every layer of the stack —
// ioa, sched, system, oracle, valence, chaos — can import it without cycles.
// Instrumentation sites hold a Sink interface value that is nil when
// telemetry is off, so the disabled path costs one predictable branch:
//
//	if s.tel != nil {
//	        s.tel.Count(telemetry.CEventsApplied, 1)
//	}
//
// This mirrors how the oracle layer composes with ioa.System's post-Apply
// observer (a nil observer costs one branch per Apply), and the same
// guarantee holds here: attaching telemetry never perturbs scheduling — the
// golden-trace suite pins byte-identical executions with telemetry off and
// on (TestGoldenTracesTelemetryOn).
//
// Metrics are identified by small integer constants (Metric) rather than
// strings so the hot path is an array index plus an atomic add — no map
// lookups, no allocation.  The Registry names them only at snapshot time.
package telemetry

import "time"

// Metric identifies one registered metric.  The constant's prefix states the
// kind: C* counters (monotonic), G* gauges (last/max value), H* histograms.
type Metric uint8

// Registered metrics.  What each one means in paper terms is documented in
// DESIGN.md §10 ("Observability planes").
const (
	// CEventsApplied counts events performed by ioa.System.Apply (owner
	// Fire + deliveries + trace recording), including internal events.
	CEventsApplied Metric = iota
	// CDeliveries counts action deliveries to accepting automata (the
	// same-named input synchronizations of composition, §2.3).
	CDeliveries
	// CCrashes counts crash events applied (§4.4 crash automaton outputs).
	CCrashes
	// CSchedSteps counts actions fired by a scheduler's main loop.
	CSchedSteps
	// CGateVetoes counts enabled actions held back by an Options.Gate
	// (environment-controlled timing freedom, §2.4).
	CGateVetoes
	// COracleSweeps counts full enabled-set/delivery-set oracle sweeps.
	COracleSweeps
	// CValenceNodes counts distinct execution-tree nodes created (§8).
	CValenceNodes
	// CValenceEdges counts execution-tree edges recorded.
	CValenceEdges
	// CValenceExpansions counts node expansions (frontier pops).
	CValenceExpansions
	// CWorkerBusyNs accumulates nanoseconds valence workers spent expanding
	// nodes; utilization = busy / (workers × wall).
	CWorkerBusyNs
	// CFixpointRounds counts parallel valence-fixpoint sweep rounds.
	CFixpointRounds
	// CChaosRuns counts chaos executions completed by a sweep.
	CChaosRuns
	// CChaosFailures counts chaos executions that violated their spec.
	CChaosFailures
	// CMsgDropped counts messages dropped by lossy links (adversarial
	// network layer; the paper's §4.3 channels never drop).
	CMsgDropped
	// CMsgDuplicated counts messages duplicated by lossy links.
	CMsgDuplicated
	// CMsgReordered counts messages swapped past their predecessor by
	// lossy links (bounded FIFO violation).
	CMsgReordered
	// CValencePruned counts enabled execution-tree steps not expanded under
	// partial-order reduction (valence.Config.Reduce).
	CValencePruned
	// CValenceSleepHits counts pruned steps inherited from the parent's
	// sleep set (child kept the parent's ample cluster).
	CValenceSleepHits
	// CValenceReduceRounds counts reduction proviso analysis rounds (cycle
	// and bivalent-completeness re-expansion fixpoint).
	CValenceReduceRounds
	// CLiveSignals counts message-delivery signals the live runtime handed
	// to its transport (one per message enqueued on a channel automaton).
	CLiveSignals
	// CLiveNudges counts live service wakeups triggered by a fired action's
	// delivery candidates (as opposed to heartbeat-interval wakeups).
	CLiveNudges
	// CSuspicionAdded counts suspicion-set additions offered by FD-output
	// events (a location entering some observer's suspect set), observed by
	// the admission-neutral suspicion gate (chaos.SuspicionGate).
	CSuspicionAdded
	// CSuspicionRemoved counts suspicion-set removals (a location leaving
	// some observer's suspect set).
	CSuspicionRemoved
	// GValenceFrontier is the current exploration frontier width.
	GValenceFrontier
	// GValenceFrontierPeak is the high-water frontier width of the run.
	GValenceFrontierPeak
	// GValenceWorkers is the configured exploration worker count.
	GValenceWorkers
	// GPartitionActive is 1 while a partition gate is splitting the
	// system, 0 otherwise.
	GPartitionActive
	// GLiveServices is the number of automaton service goroutines a live
	// runtime is currently running.
	GLiveServices
	// HChannelDepth is the distribution of channel queue depths observed at
	// each enqueue (in-flight messages per §4.3 FIFO channel).
	HChannelDepth
	// HOracleSweepNs is the distribution of oracle sweep latencies.
	HOracleSweepNs
	// HPartitionSteps is the distribution of healed-partition durations in
	// scheduler steps (observed at heal time; permanent partitions never
	// sample it).
	HPartitionSteps
	// HAmpleSize is the distribution of ample-set sizes (steps expanded) at
	// reduced execution-tree nodes.
	HAmpleSize
	// HDetectionLatency is the distribution of detection latencies in
	// scheduler steps: crash event → first suspicion of the crashed location
	// at each observer (the step-indexed QoS figure; live runs report the
	// wall-clock equivalent through the causal QoS layer, not this
	// histogram).
	HDetectionLatency
	// HMistakeDuration is the distribution of wrong-suspicion interval
	// lengths in scheduler steps: a live location entering and later leaving
	// an observer's suspect set.
	HMistakeDuration

	numMetrics
)

// metricNames are the snake_case snapshot keys, indexed by Metric.
var metricNames = [numMetrics]string{
	CEventsApplied:       "events_applied",
	CDeliveries:          "deliveries",
	CCrashes:             "crashes",
	CSchedSteps:          "sched_steps",
	CGateVetoes:          "gate_vetoes",
	COracleSweeps:        "oracle_sweeps",
	CValenceNodes:        "valence_nodes",
	CValenceEdges:        "valence_edges",
	CValenceExpansions:   "valence_expansions",
	CWorkerBusyNs:        "worker_busy_ns",
	CFixpointRounds:      "fixpoint_rounds",
	CChaosRuns:           "chaos_runs",
	CChaosFailures:       "chaos_failures",
	CMsgDropped:          "msgs_dropped",
	CMsgDuplicated:       "msgs_duplicated",
	CMsgReordered:        "msgs_reordered",
	CValencePruned:       "valence_pruned",
	CValenceSleepHits:    "valence_sleep_hits",
	CValenceReduceRounds: "valence_reduce_rounds",
	CLiveSignals:         "live_signals",
	CLiveNudges:          "live_nudges",
	CSuspicionAdded:      "suspicion_added",
	CSuspicionRemoved:    "suspicion_removed",
	GValenceFrontier:     "valence_frontier",
	GValenceFrontierPeak: "valence_frontier_peak",
	GValenceWorkers:      "valence_workers",
	GPartitionActive:     "partition_active",
	GLiveServices:        "live_services",
	HChannelDepth:        "channel_depth",
	HOracleSweepNs:       "oracle_sweep_ns",
	HPartitionSteps:      "partition_steps",
	HAmpleSize:           "ample_size",
	HDetectionLatency:    "detection_latency_steps",
	HMistakeDuration:     "mistake_duration_steps",
}

// Name returns the metric's snapshot key.
func (m Metric) Name() string { return metricNames[m] }

// isGauge marks the metrics reported under "gauges" rather than "counters".
var isGauge = [numMetrics]bool{
	GValenceFrontier:     true,
	GValenceFrontierPeak: true,
	GValenceWorkers:      true,
	GPartitionActive:     true,
	GLiveServices:        true,
}

// Category classifies trace events for the Chrome trace "cat" field.
type Category uint8

// Trace-event categories, one per instrumented plane of the stack.
const (
	CatSched   Category = iota // scheduler: one event per fired step
	CatIOA                     // ioa.System.Apply: action fires and deliveries
	CatCrash                   // crash events
	CatOracle                  // differential-oracle sweeps
	CatValence                 // execution-tree engine: expansions, rounds, phases
	CatChaos                   // chaos runner: one span per executed run
	CatLive                    // live runtime: service wakeups, transport signals
	CatCausal                  // causal provenance: suspicion chains, flow arrows
	numCategories
)

var categoryNames = [numCategories]string{
	CatSched:   "sched",
	CatIOA:     "ioa",
	CatCrash:   "crash",
	CatOracle:  "oracle",
	CatValence: "valence",
	CatChaos:   "chaos",
	CatLive:    "live",
	CatCausal:  "causal",
}

// Name returns the category's Chrome-trace "cat" value.
func (c Category) Name() string { return categoryNames[c] }

// Sink receives instrumentation from hot paths.  Implementations must be
// safe for concurrent use from any number of goroutines.  Instrumentation
// sites hold a Sink that is nil when telemetry is disabled and guard every
// call with a nil check; Sink values must therefore never be typed-nil
// pointers wrapped in the interface (use an untyped nil).
type Sink interface {
	// Count adds delta to counter m.
	Count(m Metric, delta int64)
	// SetGauge stores v as gauge m's current value.
	SetGauge(m Metric, v int64)
	// GaugeMax raises gauge m to v if v exceeds its current value.
	GaugeMax(m Metric, v int64)
	// Observe records sample v in histogram m (no-op for non-histograms).
	Observe(m Metric, v int64)
	// IncTask counts one action fired in the flattened task with index idx
	// (the "actions fired per task" vector; see Registry.SetTaskLabels).
	IncTask(idx int)
	// Span records a completed trace span that started at startNs (a value
	// previously obtained from Now) and ends now, on virtual thread tid,
	// with one free integer argument.
	Span(cat Category, name string, startNs int64, tid int32, arg int64)
	// Instant records an instantaneous trace event.
	Instant(cat Category, name string, tid int32, arg int64)
	// Now returns the sink's monotonic clock in nanoseconds, for Span start
	// times and latency measurements.
	Now() int64
}

// TraceSensing is an optional Sink extension reporting whether the tracing
// plane is actually attached — i.e. someone intends to export the trace
// ring.  Instrumentation sites that must *format* a label (rather than pass
// a pre-existing string) consult it once at attach time and skip the
// formatting when no exporter is wired, so a metrics-only sink never makes
// the hot path allocate.  Sinks that don't implement it are treated as
// not tracing.
type TraceSensing interface {
	TracingActive() bool
}

// FlowPhase distinguishes the two ends of a Chrome trace flow arrow.
type FlowPhase uint8

// Flow-event phases, mapping to Chrome trace_event ph "s" (start) and
// "f" (finish).  Perfetto draws an arrow from each start to the finish
// sharing its id.
const (
	FlowStart FlowPhase = iota
	FlowFinish
)

// FlowSink is an optional Sink extension for causality arrows: paired flow
// events (Chrome trace ph "s"/"f") that renderers such as Perfetto draw as
// arrows between threads.  The causal provenance engine uses it to overlay
// suspicion-propagation chains — send event on the sender's track, matching
// deliver on the receiver's — onto a recorded execution trace.  Both
// methods take explicit timestamps (values from Now, or reconstructed
// offsets) because provenance is computed post-hoc, after the events being
// annotated.  Sinks that don't implement FlowSink simply don't render
// arrows; instrumentation sites must type-assert and tolerate absence.
type FlowSink interface {
	// FlowAt records one end of a flow arrow with identity id at time tsNs
	// on virtual thread tid.
	FlowAt(ph FlowPhase, cat Category, name string, id uint64, tsNs int64, tid int32)
	// InstantAt records an instantaneous trace event at an explicit time.
	InstantAt(cat Category, name string, tsNs int64, tid int32, arg int64)
}

// epoch anchors the package's monotonic clock; all Recorder timestamps and
// Sink.Now values are nanoseconds since process start.
var epoch = time.Now()

func now() int64 { return time.Since(epoch).Nanoseconds() }
