// End-to-end telemetry tests: a fully wired simulation (system + channels +
// scheduler + oracle) metered through a live Registry, plus the
// disabled-path benchmarks CI uses to watch the nil-guard overhead budget.
//
// This file is an external test package so it can import the instrumented
// layers without a cycle (they all import telemetry).
package telemetry_test

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/oracle"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/telemetry"
)

// buildDetector composes the E1 system: P detector, full channel mesh, crash
// automaton.
func buildDetector(tb testing.TB, n int, plan system.FaultPlan) *ioa.System {
	tb.Helper()
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		tb.Fatal(err)
	}
	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, system.NewCrash(plan))
	return ioa.MustNewSystem(autos...)
}

// wire threads a registry through every plane of a built system and returns
// scheduler options carrying the same sink.
func wire(sys *ioa.System, reg *telemetry.Registry, opts sched.Options) sched.Options {
	sys.SetTelemetry(reg)
	system.InstrumentChannels(sys, reg)
	reg.SetTaskLabels(system.TaskLabels(sys))
	opts.Telemetry = reg
	return opts
}

// buildConsensus composes the Section-9.3 system S under Ω — the smallest
// composition in the repo with real channel traffic (the detector-only E1
// composition has a mesh, but its detector emits outputs without sending).
func buildConsensus(tb testing.TB, n int, plan system.FaultPlan) *ioa.System {
	tb.Helper()
	d, err := afd.Lookup(afd.FamilyOmega, n)
	if err != nil {
		tb.Fatal(err)
	}
	vals := make([]int, n)
	for i := range vals {
		vals[i] = i % 2
	}
	sys, err := consensus.Build(consensus.BuildSpec{
		N: n, Family: afd.FamilyOmega, Det: d.Automaton(n),
		Crash: plan.Crash, Values: vals,
	})
	if err != nil {
		tb.Fatal(err)
	}
	return sys
}

// TestWiredRunMetrics cross-checks the metric planes against ground truth
// the simulation itself reports: events applied == System.Steps, scheduler
// steps match, crash counts match the fault plan, channel enqueues were
// sampled, gate vetoes were counted, and the trace ring holds events.
func TestWiredRunMetrics(t *testing.T) {
	const n, steps = 3, 2000
	reg := telemetry.NewRegistry()
	sys := buildConsensus(t, n, system.CrashOf(1))
	opts := wire(sys, reg, sched.Options{MaxSteps: steps, Gate: sched.CrashesAfter(40, 20)})
	o := oracle.Attach(sys, oracle.Options{Telemetry: reg})
	sched.RoundRobin(sys, opts)
	if err := o.Check(); err != nil {
		t.Fatalf("oracle: %v", err)
	}

	if got, want := reg.Value(telemetry.CEventsApplied), int64(sys.Steps()); got != want {
		t.Errorf("events_applied = %d, want System.Steps() = %d", got, want)
	}
	if got := reg.Value(telemetry.CSchedSteps); got != int64(sys.Steps()) {
		t.Errorf("sched_steps = %d, want %d", got, sys.Steps())
	}
	if got := reg.Value(telemetry.CCrashes); got != 1 {
		t.Errorf("crashes = %d, want 1 (plan crashes location 1)", got)
	}
	if reg.Value(telemetry.CGateVetoes) == 0 {
		t.Error("gate_vetoes = 0, but CrashesAfter(40, 20) must veto early crash candidates")
	}
	if reg.Value(telemetry.CDeliveries) == 0 {
		t.Error("deliveries = 0 in a full channel mesh")
	}
	if reg.Value(telemetry.COracleSweeps) == 0 {
		t.Error("oracle_sweeps = 0 with an attached oracle")
	}
	if reg.Hist(telemetry.HChannelDepth).Count() == 0 {
		t.Error("channel_depth histogram empty despite channel traffic")
	}
	if reg.Hist(telemetry.HOracleSweepNs).Count() != reg.Value(telemetry.COracleSweeps) {
		t.Errorf("sweep latency samples (%d) != sweep count (%d)",
			reg.Hist(telemetry.HOracleSweepNs).Count(), reg.Value(telemetry.COracleSweeps))
	}
	rec, _ := reg.Trace().Stats()
	if rec == 0 {
		t.Error("trace recorder saw no events")
	}

	snap := reg.Snapshot()
	var taskTotal int64
	for _, v := range snap.TaskFires {
		taskTotal += v
	}
	if taskTotal != int64(sys.Steps()) {
		t.Errorf("per-task fires sum to %d, want %d", taskTotal, sys.Steps())
	}
}

// TestWiredRunIdenticalTrace is the local half of the golden-trace telemetry
// guarantee: the same seed and gates produce byte-identical traces with
// telemetry off and on (the root suite pins the absolute hashes).
func TestWiredRunIdenticalTrace(t *testing.T) {
	run := func(reg *telemetry.Registry) []ioa.Action {
		sys := buildDetector(t, 4, system.CrashOf(2))
		opts := sched.Options{MaxSteps: 500, Gate: sched.CrashesAfter(30, 15)}
		if reg != nil {
			opts = wire(sys, reg, opts)
		}
		sched.Random(sys, 42, opts)
		return sys.Trace()
	}
	off := run(nil)
	on := run(telemetry.NewRegistry())
	if len(off) != len(on) {
		t.Fatalf("trace length diverged: off=%d on=%d", len(off), len(on))
	}
	for i := range off {
		if off[i] != on[i] {
			t.Fatalf("trace diverged at event %d: off=%v on=%v", i, off[i], on[i])
		}
	}
}

// benchRun drives one E1-style execution; tel == nil exercises the disabled
// path (the production default), non-nil the fully metered path.
func benchRun(b *testing.B, tel telemetry.Sink, steps int) {
	sys := buildDetector(b, 8, system.NoFaults())
	opts := sched.Options{MaxSteps: steps}
	if reg, ok := tel.(*telemetry.Registry); ok && reg != nil {
		opts = wire(sys, reg, opts)
	}
	sched.RoundRobin(sys, opts)
	if sys.Steps() == 0 {
		b.Fatal("no steps executed")
	}
}

// BenchmarkE1TelemetryOff measures the disabled path: every instrumentation
// site reduces to one nil-check branch.  CI compares this against
// BenchmarkE1TelemetryOn; the Off/On pair bounds what the instrumentation
// sites can cost (the ≤2% disabled-vs-seed budget was measured at PR time
// against the pre-telemetry tree — see DESIGN.md §10).
func BenchmarkE1TelemetryOff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		benchRun(b, nil, 20_000)
	}
}

// BenchmarkE1TelemetryOn measures the fully metered path: counters, task
// vector, channel-depth histogram, and the trace ring all live.
func BenchmarkE1TelemetryOn(b *testing.B) {
	reg := telemetry.NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchRun(b, reg, 20_000)
	}
}
