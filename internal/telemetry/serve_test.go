package telemetry

import (
	"net"
	"net/http"
	"testing"
)

// TestServeStartStopRestart is the listener-leak regression test: Serve
// used to spawn `go http.Serve(ln, mux)` with no shutdown handle, so a
// driver cycling telemetry (the live runtime's soak loops) leaked one
// listener — and one port — per start.  Close must release the port for
// immediate rebinding, be idempotent, and report no error on a clean
// shutdown.
func TestServeStartStopRestart(t *testing.T) {
	reg := NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	addr := srv.Addr()
	resp, err := http.Get("http://" + addr + "/telemetry")
	if err != nil {
		t.Fatalf("GET while serving: %v", err)
	}
	resp.Body.Close()
	if err := srv.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := srv.Err(); err != nil {
		t.Fatalf("Err after clean Close: %v", err)
	}
	// The port must be free again: rebind the exact address.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("port not released after Close: %v", err)
	}
	ln.Close()
	// Restart on the same address and serve again.
	srv2, err := Serve(addr, reg)
	if err != nil {
		t.Fatalf("restart on %s: %v", addr, err)
	}
	resp, err = http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatalf("GET after restart: %v", err)
	}
	resp.Body.Close()
	if err := srv2.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	// Idempotent close.
	if err := srv2.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}
	// Requests after Close must fail — the endpoint is really down.
	if _, err := http.Get("http://" + addr + "/telemetry"); err == nil {
		t.Fatalf("GET succeeded after Close")
	}
}

// TestServeManyCycles cycles start/stop rapidly; with the leak, this would
// accumulate listeners (and under -race, any lifecycle races would
// surface).
func TestServeManyCycles(t *testing.T) {
	reg := NewRegistry()
	for i := 0; i < 20; i++ {
		srv, err := Serve("127.0.0.1:0", reg)
		if err != nil {
			t.Fatalf("cycle %d: %v", i, err)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("cycle %d close: %v", i, err)
		}
	}
}
