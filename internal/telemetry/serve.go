package telemetry

import (
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
)

// Server is a running telemetry HTTP endpoint: a handle over the listener
// and the background serve goroutine.  It exists so drivers that start and
// stop diagnostics repeatedly — the live runtime's soak cycles, tests on
// ephemeral ports — can release the port instead of leaking a listener per
// start, and can observe serve errors instead of losing them.
type Server struct {
	ln   net.Listener
	done chan struct{} // closed when the serve loop exits

	mu     sync.Mutex
	err    error // first serve failure, nil after a clean Close
	closed bool
	srv    *http.Server
}

// Addr returns the bound address (useful with a ":0" request address).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Err returns the first error the serve loop hit, or nil.  After Close it
// stays nil for a clean shutdown; while serving it surfaces failures that
// the old fire-and-forget goroutine used to discard.
func (s *Server) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.err
}

// Close shuts the endpoint down and releases the listener.  It is
// idempotent and returns the first serve error, if any.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return s.Err()
	}
	s.closed = true
	srv := s.srv
	s.mu.Unlock()
	srv.Close()
	<-s.done
	return s.Err()
}

// Serve starts the telemetry HTTP endpoint on addr in a background
// goroutine and returns a handle exposing the bound address, serve errors,
// and shutdown.  The endpoint serves:
//
//	/debug/vars         expvar JSON (includes the "telemetry" snapshot)
//	/debug/pprof/...    net/http/pprof profiles
//	/telemetry          the registry Snapshot alone, pretty-printed
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	s := &Server{ln: ln, done: make(chan struct{}), srv: &http.Server{Handler: mux}}
	go func() {
		defer close(s.done)
		err := s.srv.Serve(ln)
		s.mu.Lock()
		defer s.mu.Unlock()
		// http.Server.Close makes Serve return ErrServerClosed; that is the
		// clean-shutdown path, not a failure.
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
		}
	}()
	return s, nil
}

// Init is the shared flag-wiring helper for cmd/* binaries: given the
// -telemetry.addr and -trace.out flag values, it returns the Sink to thread
// through the run and a cleanup function to defer (it flushes the trace, if
// requested, and shuts the HTTP endpoint down).
//
// When both flags are empty, telemetry is disabled: Init returns an untyped
// nil Sink (so instrumentation sites' `tel != nil` checks stay false — never
// a typed-nil *Registry wrapped in the interface) and a no-op cleanup.
//
// Otherwise the process Default registry is used: addr != "" starts the HTTP
// endpoint (logging the bound address to stderr), and traceOut != "" makes
// cleanup write the Chrome trace_event JSON there.
func Init(addr, traceOut string) (Sink, func(), error) {
	if addr == "" && traceOut == "" {
		return nil, func() {}, nil
	}
	reg := Default()
	var srv *Server
	if addr != "" {
		var err error
		srv, err = Serve(addr, reg)
		if err != nil {
			return nil, func() {}, err
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving expvar/pprof on http://%s/debug/vars\n", srv.Addr())
	}
	flush := func() {}
	if traceOut != "" {
		reg.EnableTracing()
		flush = func() {
			f, err := os.Create(traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
				return
			}
			defer f.Close()
			if err := reg.Trace().WriteChromeTrace(f); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			}
		}
	}
	cleanup := func() {
		flush()
		if srv != nil {
			if err := srv.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			}
		}
	}
	return reg, cleanup, nil
}
