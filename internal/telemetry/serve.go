package telemetry

import (
	"encoding/json"
	"expvar"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
)

// Serve starts the telemetry HTTP endpoint on addr in a background goroutine
// and returns the bound address (useful with a ":0" addr).  The endpoint
// serves:
//
//	/debug/vars         expvar JSON (includes the "telemetry" snapshot)
//	/debug/pprof/...    net/http/pprof profiles
//	/telemetry          the registry Snapshot alone, pretty-printed
//
// The listener runs for the life of the process; there is no shutdown hook
// because the endpoint is strictly read-only diagnostics.
func Serve(addr string, reg *Registry) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	mux := http.NewServeMux()
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/telemetry", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(reg.Snapshot())
	})
	go http.Serve(ln, mux)
	return ln.Addr().String(), nil
}

// Init is the shared flag-wiring helper for cmd/* binaries: given the
// -telemetry.addr and -trace.out flag values, it returns the Sink to thread
// through the run and a flush function to defer.
//
// When both flags are empty, telemetry is disabled: Init returns an untyped
// nil Sink (so instrumentation sites' `tel != nil` checks stay false — never
// a typed-nil *Registry wrapped in the interface) and a no-op flush.
//
// Otherwise the process Default registry is used: addr != "" starts the HTTP
// endpoint (logging the bound address to stderr), and traceOut != "" makes
// flush write the Chrome trace_event JSON there.
func Init(addr, traceOut string) (Sink, func(), error) {
	if addr == "" && traceOut == "" {
		return nil, func() {}, nil
	}
	reg := Default()
	if addr != "" {
		bound, err := Serve(addr, reg)
		if err != nil {
			return nil, func() {}, err
		}
		fmt.Fprintf(os.Stderr, "telemetry: serving expvar/pprof on http://%s/debug/vars\n", bound)
	}
	flush := func() {}
	if traceOut != "" {
		reg.EnableTracing()
		flush = func() {
			f, err := os.Create(traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
				return
			}
			defer f.Close()
			if err := reg.Trace().WriteChromeTrace(f); err != nil {
				fmt.Fprintf(os.Stderr, "telemetry: %v\n", err)
			}
		}
	}
	return reg, flush, nil
}
