package telemetry

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
)

// TestHistogramBucketEdges pins the "le" semantics at every boundary: a
// sample lands in the first bucket whose upper bound is >= the sample, and
// samples above the last bound go to overflow.
func TestHistogramBucketEdges(t *testing.T) {
	h := NewHistogram(0, 1, 2, 4)
	for _, v := range []int64{-1, 0, 1, 2, 3, 4, 5, 100} {
		h.Observe(v)
	}
	s := h.snapshot()
	want := []HistBucket{
		{LE: 0, Count: 2}, // -1, 0
		{LE: 1, Count: 1}, // 1
		{LE: 2, Count: 1}, // 2
		{LE: 4, Count: 2}, // 3, 4
	}
	for i, b := range want {
		if s.Buckets[i] != b {
			t.Errorf("bucket %d = %+v, want %+v", i, s.Buckets[i], b)
		}
	}
	if s.Overflow != 2 { // 5, 100
		t.Errorf("overflow = %d, want 2", s.Overflow)
	}
	if s.Count != 8 {
		t.Errorf("count = %d, want 8", s.Count)
	}
	if s.Sum != -1+0+1+2+3+4+5+100 {
		t.Errorf("sum = %d, want %d", s.Sum, -1+0+1+2+3+4+5+100)
	}
}

// TestCountersConcurrent hammers one counter, the task vector, and a
// histogram from many goroutines; totals must be exact (run under -race).
func TestCountersConcurrent(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.Count(CEventsApplied, 1)
				r.IncTask(w)
				r.Observe(HChannelDepth, int64(i%300))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Value(CEventsApplied); got != workers*per {
		t.Errorf("counter = %d, want %d", got, workers*per)
	}
	if got := r.Hist(HChannelDepth).Count(); got != workers*per {
		t.Errorf("histogram count = %d, want %d", got, workers*per)
	}
	r.SetTaskLabels([]string{"t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7"})
	snap := r.Snapshot()
	for w := 0; w < workers; w++ {
		if got := snap.TaskFires[fmt.Sprintf("t%d", w)]; got != per {
			t.Errorf("task %d fires = %d, want %d", w, got, per)
		}
	}
}

// TestGaugeMaxConcurrent: after racing raises, the gauge holds the maximum.
func TestGaugeMaxConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.GaugeMax(GValenceFrontierPeak, int64(w*1000+i))
			}
		}(w)
	}
	wg.Wait()
	if got := r.Value(GValenceFrontierPeak); got != 7999 {
		t.Errorf("gauge max = %d, want 7999", got)
	}
}

// TestIncTaskBounds: negative indices are dropped, out-of-range indices fold
// into the last slot instead of allocating or panicking.
func TestIncTaskBounds(t *testing.T) {
	r := NewRegistry()
	r.IncTask(-1)
	r.IncTask(maxTasks + 5)
	r.IncTask(maxTasks * 2)
	if got := r.tasks[maxTasks-1].Load(); got != 2 {
		t.Errorf("overflow slot = %d, want 2", got)
	}
}

// TestRecorderWraparound pins the ring bound: with capacity c and n > c
// events recorded, the snapshot holds exactly the last c events in record
// order, and Stats reports n recorded / n-c dropped.
func TestRecorderWraparound(t *testing.T) {
	const cap, total = 8, 20
	r := NewRecorder(cap)
	for i := 0; i < total; i++ {
		r.Instant(CatSched, "e"+strconv.Itoa(i), 0, int64(i))
	}
	rec, drop := r.Stats()
	if rec != total || drop != total-cap {
		t.Fatalf("Stats() = (%d, %d), want (%d, %d)", rec, drop, total, total-cap)
	}
	events := r.Snapshot()
	if len(events) != cap {
		t.Fatalf("snapshot holds %d events, want %d", len(events), cap)
	}
	for i, e := range events {
		want := total - cap + i
		if e.Name != "e"+strconv.Itoa(want) || e.Arg != int64(want) {
			t.Errorf("event %d = %q/%d, want e%d (oldest-first order broken)", i, e.Name, e.Arg, want)
		}
	}
}

// TestRecorderNeverTorn: concurrent writers stamp Name and Arg with the same
// value; any snapshot (taken while writes are in flight and after) must see
// only consistent pairs — an event is fully written or absent, never mixed.
func TestRecorderNeverTorn(t *testing.T) {
	r := NewRecorder(64)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := "w" + strconv.Itoa(w)
			for i := 0; i < 5_000; i++ {
				r.Instant(CatIOA, name, int32(w), int64(w))
			}
		}(w)
	}
	check := func(events []Event) {
		for _, e := range events {
			if e.Name != "w"+strconv.Itoa(int(e.Arg)) || int64(e.Tid) != e.Arg {
				t.Errorf("torn event: name=%q tid=%d arg=%d", e.Name, e.Tid, e.Arg)
			}
		}
	}
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				check(r.Snapshot())
			}
		}
	}()
	wg.Wait()
	close(stop)
	check(r.Snapshot())
}

// TestSpanClampsDuration: a span whose start and end collapse to the same
// nanosecond still gets Dur >= 1, because Chrome silently drops
// zero-duration "X" events.
func TestSpanClampsDuration(t *testing.T) {
	r := NewRecorder(4)
	r.Span(CatOracle, "sweep", now(), 0, 0)
	events := r.Snapshot()
	if len(events) != 1 || events[0].Dur < 1 {
		t.Fatalf("span events = %+v, want one event with Dur >= 1", events)
	}
}

// TestChromeTraceJSON validates the exported trace against the trace_event
// schema Perfetto and about:tracing load: a traceEvents array whose entries
// carry name/cat/ph/ts/pid/tid, "X" spans with dur, "i" instants with scope,
// plus otherData metadata.
func TestChromeTraceJSON(t *testing.T) {
	r := NewRecorder(16)
	t0 := now()
	r.Span(CatValence, "expand", t0, 3, 42)
	r.Instant(CatCrash, "crash(1)", 1, 7)
	r.SetMeta("artifact", "fail-0.json")

	var buf bytes.Buffer
	if err := r.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			TS   *float64       `json:"ts"`
			Dur  float64        `json:"dur"`
			Pid  *int           `json:"pid"`
			Tid  *int           `json:"tid"`
			S    string         `json:"s"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		OtherData       map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(out.TraceEvents) != 2 {
		t.Fatalf("traceEvents has %d entries, want 2", len(out.TraceEvents))
	}
	span, inst := out.TraceEvents[0], out.TraceEvents[1]
	if span.Ph != "X" || span.Dur <= 0 || span.Cat != "valence" || span.Name != "expand" ||
		*span.Tid != 3 || span.Args["arg"].(float64) != 42 {
		t.Errorf("bad span event: %+v", span)
	}
	if inst.Ph != "i" || inst.S != "t" || inst.Cat != "crash" {
		t.Errorf("bad instant event: %+v", inst)
	}
	for i, e := range out.TraceEvents {
		if e.TS == nil || e.Pid == nil || e.Tid == nil {
			t.Errorf("event %d missing required ts/pid/tid fields", i)
		}
	}
	if out.DisplayTimeUnit != "ms" || out.OtherData["artifact"] != "fail-0.json" {
		t.Errorf("metadata: displayTimeUnit=%q otherData=%v", out.DisplayTimeUnit, out.OtherData)
	}
}

// TestSnapshotGrouping: counters, gauges, and histograms land in their own
// snapshot sections, zero-valued metrics are omitted, and the snapshot
// marshals to JSON.
func TestSnapshotGrouping(t *testing.T) {
	r := NewRegistry()
	r.Count(CSchedSteps, 5)
	r.SetGauge(GValenceFrontier, 3)
	r.Observe(HOracleSweepNs, 2_000)
	s := r.Snapshot()
	if s.Counters["sched_steps"] != 5 {
		t.Errorf("counters = %v", s.Counters)
	}
	if _, ok := s.Counters["events_applied"]; ok {
		t.Error("zero-valued counter not omitted")
	}
	if s.Gauges["valence_frontier"] != 3 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	if h, ok := s.Histograms["oracle_sweep_ns"]; !ok || h.Count != 1 {
		t.Errorf("histograms = %v", s.Histograms)
	}
	if _, ok := s.Histograms["channel_depth"]; ok {
		t.Error("empty histogram not omitted")
	}
	if _, err := json.Marshal(s); err != nil {
		t.Errorf("snapshot does not marshal: %v", err)
	}
}

// TestInitDisabled: with neither flag set, Init must return an untyped nil
// Sink — a typed-nil *Registry wrapped in the interface would defeat every
// `if tel != nil` guard in the hot paths.
func TestInitDisabled(t *testing.T) {
	tel, flush, err := Init("", "")
	if err != nil {
		t.Fatal(err)
	}
	defer flush()
	if tel != nil {
		t.Fatalf("Init(\"\", \"\") = %T, want untyped nil Sink", tel)
	}
}

// TestInitTraceOut: with a trace path, Init returns the live registry and a
// flush that writes a loadable Chrome trace.
func TestInitTraceOut(t *testing.T) {
	path := filepath.Join(t.TempDir(), "trace.json")
	tel, flush, err := Init("", path)
	if err != nil {
		t.Fatal(err)
	}
	if tel == nil {
		t.Fatal("Init with trace.out returned nil sink")
	}
	tel.Instant(CatSched, "step", 0, 1)
	flush()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]any
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("flushed trace is not valid JSON: %v", err)
	}
	if _, ok := out["traceEvents"]; !ok {
		t.Error("flushed trace has no traceEvents array")
	}
}

// TestServeEndpoints boots the opt-in HTTP endpoint on an ephemeral port and
// checks all three surfaces: expvar, the JSON metric snapshot, and pprof.
func TestServeEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Count(CEventsApplied, 9)
	srv, err := Serve("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	addr := srv.Addr()
	get := func(path string) []byte {
		t.Helper()
		resp, err := http.Get("http://" + addr + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s: status %d", path, resp.StatusCode)
		}
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	var snap Snapshot
	if err := json.Unmarshal(get("/telemetry"), &snap); err != nil {
		t.Fatalf("/telemetry is not a Snapshot: %v", err)
	}
	if snap.Counters["events_applied"] != 9 {
		t.Errorf("/telemetry counters = %v", snap.Counters)
	}
	var vars map[string]json.RawMessage
	if err := json.Unmarshal(get("/debug/vars"), &vars); err != nil {
		t.Fatalf("/debug/vars is not JSON: %v", err)
	}
	if len(get("/debug/pprof/cmdline")) == 0 {
		t.Error("/debug/pprof/cmdline returned no data")
	}
}
