package telemetry

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// DefaultTraceCap is the default trace-ring capacity in events.  At ~64
// bytes per event the bounded-memory guarantee is ~4 MiB regardless of run
// length: once the ring is full, each new event evicts the oldest.
const DefaultTraceCap = 1 << 16

// Event is one recorded trace event.  When Ph is zero, Dur == 0 marks an
// instantaneous event (Chrome phase "i") and Dur > 0 a completed span
// (phase "X"); Ph 's' or 'f' marks a flow-arrow end (ID pairs the two
// ends).  Timestamps are nanoseconds on the package's monotonic clock.
type Event struct {
	TS   int64
	Dur  int64
	Arg  int64
	ID   uint64 // flow-arrow identity, meaningful when Ph is 's' or 'f'
	Tid  int32
	Cat  Category
	Ph   byte // 0: derived from Dur; 's'/'f': flow start/finish
	Name string
}

// Recorder is a bounded ring buffer of trace events.  Writers append under a
// mutex, so exported events are never torn: a Snapshot sees each event
// either fully written or not at all, in record order, and the ring holds
// the most recent cap events (oldest evicted first).
type Recorder struct {
	mu   sync.Mutex
	buf  []Event
	next uint64 // total events ever recorded
	meta map[string]string
}

// NewRecorder returns a recorder holding at most cap events (cap < 1 is
// clamped to DefaultTraceCap).
func NewRecorder(cap int) *Recorder {
	if cap < 1 {
		cap = DefaultTraceCap
	}
	return &Recorder{buf: make([]Event, cap)}
}

// Span records a completed span from startNs (obtained from Now) to now.
func (r *Recorder) Span(cat Category, name string, startNs int64, tid int32, arg int64) {
	d := now() - startNs
	if d < 1 {
		d = 1 // Chrome drops zero-duration "X" events; clamp to 1ns
	}
	r.record(Event{TS: startNs, Dur: d, Arg: arg, Tid: tid, Cat: cat, Name: name})
}

// Instant records an instantaneous event stamped now.
func (r *Recorder) Instant(cat Category, name string, tid int32, arg int64) {
	r.record(Event{TS: now(), Arg: arg, Tid: tid, Cat: cat, Name: name})
}

// FlowAt records one end of a flow arrow (Chrome ph "s"/"f") with identity
// id at an explicit timestamp.  Explicit timestamps let post-hoc analyses —
// the causal provenance engine annotating an already-recorded execution —
// place arrows at the instants of the events they connect.
func (r *Recorder) FlowAt(ph FlowPhase, cat Category, name string, id uint64, tsNs int64, tid int32) {
	p := byte('s')
	if ph == FlowFinish {
		p = 'f'
	}
	r.record(Event{TS: tsNs, ID: id, Tid: tid, Cat: cat, Ph: p, Name: name})
}

// InstantAt records an instantaneous event at an explicit timestamp.
func (r *Recorder) InstantAt(cat Category, name string, tsNs int64, tid int32, arg int64) {
	r.record(Event{TS: tsNs, Arg: arg, Tid: tid, Cat: cat, Name: name})
}

func (r *Recorder) record(e Event) {
	r.mu.Lock()
	r.buf[r.next%uint64(len(r.buf))] = e
	r.next++
	r.mu.Unlock()
}

// SetMeta attaches a key/value pair exported as trace metadata (the
// "otherData" object of the Chrome trace).  Chaos uses it to cross-link a
// trace to the artifact it was recorded from.
func (r *Recorder) SetMeta(key, value string) {
	r.mu.Lock()
	if r.meta == nil {
		r.meta = map[string]string{}
	}
	r.meta[key] = value
	r.mu.Unlock()
}

// Stats returns the total number of events recorded and the number evicted
// by the ring bound.
func (r *Recorder) Stats() (recorded, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	recorded = r.next
	if c := uint64(len(r.buf)); recorded > c {
		dropped = recorded - c
	}
	return recorded, dropped
}

// Snapshot copies the retained events in record order, oldest first.
func (r *Recorder) Snapshot() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := uint64(len(r.buf))
	if r.next <= c {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	head := r.next % c
	out := make([]Event, 0, c)
	out = append(out, r.buf[head:]...)
	return append(out, r.buf[:head]...)
}

// chromeEvent is the trace_event wire form, loadable by about:tracing and
// Perfetto (JSON legacy format).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`  // instant scope
	ID   uint64         `json:"id,omitempty"` // flow-arrow identity
	BP   string         `json:"bp,omitempty"` // flow binding point ("e" on "f")
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the top-level JSON object format.
type chromeTrace struct {
	TraceEvents     []chromeEvent     `json:"traceEvents"`
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
}

// WriteChromeTrace writes the retained events as Chrome trace_event JSON
// (the "JSON object format": a traceEvents array plus metadata), suitable
// for chrome://tracing and https://ui.perfetto.dev.
func (r *Recorder) WriteChromeTrace(w io.Writer) error {
	events := r.Snapshot()
	r.mu.Lock()
	meta := make(map[string]string, len(r.meta))
	for k, v := range r.meta {
		meta[k] = v
	}
	r.mu.Unlock()

	out := chromeTrace{
		TraceEvents:     make([]chromeEvent, 0, len(events)),
		DisplayTimeUnit: "ms",
		OtherData:       meta,
	}
	for _, e := range events {
		ce := chromeEvent{
			Name: e.Name,
			Cat:  e.Cat.Name(),
			TS:   float64(e.TS) / 1e3,
			Pid:  0,
			Tid:  int(e.Tid),
			Args: map[string]any{"arg": e.Arg},
		}
		switch {
		case e.Ph == 's' || e.Ph == 'f':
			ce.Ph = string(e.Ph)
			ce.ID = e.ID
			ce.Args = nil
			if e.Ph == 'f' {
				// Bind the arrowhead to the enclosing slice's start so
				// Perfetto draws it even when no span follows the finish.
				ce.BP = "e"
			}
		case e.Dur > 0:
			ce.Ph = "X"
			ce.Dur = float64(e.Dur) / 1e3
		default:
			ce.Ph = "i"
			ce.S = "t"
		}
		out.TraceEvents = append(out.TraceEvents, ce)
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if err := enc.Encode(out); err != nil {
		return fmt.Errorf("telemetry: encoding chrome trace: %w", err)
	}
	return bw.Flush()
}
