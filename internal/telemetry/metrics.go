package telemetry

import (
	"expvar"
	"sync"
	"sync/atomic"
)

// maxTasks bounds the per-task fire vector.  Compositions in this repository
// top out around a thousand flattened tasks (the n=32 mesh); indices past the
// bound fold into the last slot rather than allocating.
const maxTasks = 4096

// Histogram is a fixed-bucket histogram with atomic counts.  A sample v
// lands in the first bucket whose upper bound satisfies v <= bound
// (Prometheus "le" semantics); samples above every bound land in the
// overflow bucket.  Bounds are fixed at construction, so Observe is a
// binary search plus one atomic add — no locks, no allocation.
type Histogram struct {
	bounds []int64 // ascending upper bounds
	counts []atomic.Int64
	over   atomic.Int64
	sum    atomic.Int64
	n      atomic.Int64
}

// NewHistogram returns a histogram over the given ascending upper bounds.
func NewHistogram(bounds ...int64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds))}
}

// Observe records one sample.
func (h *Histogram) Observe(v int64) {
	h.sum.Add(v)
	h.n.Add(1)
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	if lo == len(h.bounds) {
		h.over.Add(1)
		return
	}
	h.counts[lo].Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of all samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistBucket is one bucket of a histogram snapshot: the count of samples
// with value <= LE (not cumulative across buckets).
type HistBucket struct {
	LE    int64 `json:"le"`
	Count int64 `json:"count"`
}

// HistSnapshot is the JSON form of a histogram.
type HistSnapshot struct {
	Buckets  []HistBucket `json:"buckets"`
	Overflow int64        `json:"overflow"`
	Count    int64        `json:"count"`
	Sum      int64        `json:"sum"`
}

// snapshot copies the histogram's current state.
func (h *Histogram) snapshot() HistSnapshot {
	s := HistSnapshot{
		Buckets:  make([]HistBucket, len(h.bounds)),
		Overflow: h.over.Load(),
		Count:    h.n.Load(),
		Sum:      h.sum.Load(),
	}
	for i, b := range h.bounds {
		s.Buckets[i] = HistBucket{LE: b, Count: h.counts[i].Load()}
	}
	return s
}

// Registry is the process-wide metric store and the standard Sink
// implementation: a fixed array of atomic counters/gauges indexed by Metric,
// fixed-bucket histograms for the H* metrics, a bounded per-task fire
// vector, and a ring-buffered trace Recorder.  The zero value is not usable;
// call NewRegistry (or use the process Default).
type Registry struct {
	vals  [numMetrics]atomic.Int64
	hists [numMetrics]*Histogram
	tasks []atomic.Int64

	mu     sync.Mutex
	labels []string // task labels, set by SetTaskLabels

	rec     *Recorder
	tracing atomic.Bool // tracing plane requested (EnableTracing)
}

// NewRegistry returns a fresh registry with the standard histograms (channel
// depth: powers of two to 256; oracle sweep latency: 1µs..256ms; healed
// partition duration: powers of four to 16384 steps) and a trace recorder of
// DefaultTraceCap events.
func NewRegistry() *Registry {
	r := &Registry{
		tasks: make([]atomic.Int64, maxTasks),
		rec:   NewRecorder(DefaultTraceCap),
	}
	r.hists[HChannelDepth] = NewHistogram(0, 1, 2, 4, 8, 16, 32, 64, 128, 256)
	r.hists[HOracleSweepNs] = NewHistogram(
		1_000, 4_000, 16_000, 64_000, 256_000, // 1µs .. 256µs
		1_000_000, 4_000_000, 16_000_000, 64_000_000, 256_000_000, // 1ms .. 256ms
	)
	r.hists[HPartitionSteps] = NewHistogram(16, 64, 256, 1024, 4096, 16384)
	r.hists[HAmpleSize] = NewHistogram(1, 2, 4, 8, 16, 32)
	r.hists[HDetectionLatency] = NewHistogram(1, 4, 16, 64, 256, 1024, 4096, 16384)
	r.hists[HMistakeDuration] = NewHistogram(1, 4, 16, 64, 256, 1024, 4096, 16384)
	return r
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the process-wide registry, creating it — and publishing it
// as the expvar "telemetry" variable — on first use.
func Default() *Registry {
	defaultOnce.Do(func() {
		defaultReg = NewRegistry()
		expvar.Publish("telemetry", expvar.Func(func() any { return defaultReg.Snapshot() }))
	})
	return defaultReg
}

var _ Sink = (*Registry)(nil)

// Count implements Sink.
func (r *Registry) Count(m Metric, delta int64) { r.vals[m].Add(delta) }

// SetGauge implements Sink.
func (r *Registry) SetGauge(m Metric, v int64) { r.vals[m].Store(v) }

// GaugeMax implements Sink.
func (r *Registry) GaugeMax(m Metric, v int64) {
	for {
		cur := r.vals[m].Load()
		if v <= cur || r.vals[m].CompareAndSwap(cur, v) {
			return
		}
	}
}

// Observe implements Sink.
func (r *Registry) Observe(m Metric, v int64) {
	if h := r.hists[m]; h != nil {
		h.Observe(v)
	}
}

// IncTask implements Sink.
func (r *Registry) IncTask(idx int) {
	if idx < 0 {
		return
	}
	if idx >= len(r.tasks) {
		idx = len(r.tasks) - 1
	}
	r.tasks[idx].Add(1)
}

// Span implements Sink.
func (r *Registry) Span(cat Category, name string, startNs int64, tid int32, arg int64) {
	r.rec.Span(cat, name, startNs, tid, arg)
}

// Instant implements Sink.
func (r *Registry) Instant(cat Category, name string, tid int32, arg int64) {
	r.rec.Instant(cat, name, tid, arg)
}

var _ FlowSink = (*Registry)(nil)

// FlowAt implements FlowSink.
func (r *Registry) FlowAt(ph FlowPhase, cat Category, name string, id uint64, tsNs int64, tid int32) {
	r.rec.FlowAt(ph, cat, name, id, tsNs, tid)
}

// InstantAt implements FlowSink.
func (r *Registry) InstantAt(cat Category, name string, tsNs int64, tid int32, arg int64) {
	r.rec.InstantAt(cat, name, tsNs, tid, arg)
}

// Now implements Sink.
func (r *Registry) Now() int64 { return now() }

// Value returns the current value of counter or gauge m.
func (r *Registry) Value(m Metric) int64 { return r.vals[m].Load() }

// Hist returns histogram m, or nil if m is not a histogram metric.
func (r *Registry) Hist(m Metric) *Histogram { return r.hists[m] }

// Trace returns the registry's trace recorder.
func (r *Registry) Trace() *Recorder { return r.rec }

// EnableTracing marks the tracing plane as attached: an exporter (the
// -trace.out flush, a test snapshotting the ring) will read the recorder, so
// instrumentation sites should pay for rich trace labels.  Init calls this
// when a trace output is requested; it is idempotent and never unset.
func (r *Registry) EnableTracing() { r.tracing.Store(true) }

// TracingActive implements TraceSensing.
func (r *Registry) TracingActive() bool { return r.tracing.Load() }

// SetTaskLabels names the slots of the per-task fire vector (typically the
// System.TaskLabel of each flattened task, in task order) so Snapshot can
// report fires per task by name instead of by index.
func (r *Registry) SetTaskLabels(labels []string) {
	r.mu.Lock()
	r.labels = append([]string(nil), labels...)
	r.mu.Unlock()
}

// Snapshot is the JSON form of a registry: every non-zero metric, grouped by
// kind, plus trace-recorder occupancy.  It is the schema served at
// /telemetry, published via expvar, and embedded in BENCH_pr.json.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters"`
	Gauges     map[string]int64        `json:"gauges"`
	Histograms map[string]HistSnapshot `json:"histograms"`
	TaskFires  map[string]int64        `json:"task_fires,omitempty"`
	// TraceRecorded / TraceDropped count trace events ever recorded and
	// evicted by the bounded ring.
	TraceRecorded uint64 `json:"trace_recorded"`
	TraceDropped  uint64 `json:"trace_dropped"`
}

// Snapshot captures the registry's current state.  Zero-valued counters and
// gauges are omitted; histograms appear whenever they have samples.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistSnapshot{},
	}
	for m := Metric(0); m < numMetrics; m++ {
		if r.hists[m] != nil {
			if h := r.hists[m]; h.Count() > 0 {
				s.Histograms[m.Name()] = h.snapshot()
			}
			continue
		}
		if v := r.vals[m].Load(); v != 0 {
			if isGauge[m] {
				s.Gauges[m.Name()] = v
			} else {
				s.Counters[m.Name()] = v
			}
		}
	}
	r.mu.Lock()
	labels := r.labels
	r.mu.Unlock()
	if len(labels) > 0 {
		fires := map[string]int64{}
		for i, l := range labels {
			if i >= len(r.tasks) {
				break
			}
			if v := r.tasks[i].Load(); v != 0 {
				fires[l] = v
			}
		}
		if len(fires) > 0 {
			s.TaskFires = fires
		}
	}
	s.TraceRecorded, s.TraceDropped = r.rec.Stats()
	return s
}
