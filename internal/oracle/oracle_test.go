package oracle_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/oracle"
	"repro/internal/sched"
	"repro/internal/system"
)

// ---- positive controls: mutant automata the oracle must convict ----

// leader fires an internal tick; its fire count is spied on by follower.
type leader struct{ fired int }

func (l *leader) Name() string            { return "leader" }
func (l *leader) Accepts(ioa.Action) bool { return false }
func (l *leader) Input(ioa.Action)        {}
func (l *leader) NumTasks() int           { return 1 }
func (l *leader) TaskLabel(int) string    { return "tick" }
func (l *leader) Enabled(int) (ioa.Action, bool) {
	return ioa.Internal("tick", 0, ""), true
}
func (l *leader) Fire(ioa.Action)      { l.fired++ }
func (l *leader) Clone() ioa.Automaton { c := *l; return &c }
func (l *leader) Encode() string       { return fmt.Sprintf("L%d", l.fired) }

// follower violates the Automaton contract: its Enabled reads the *leader's*
// state, so the incremental ready-set (which only re-polls automata touched
// by an event) goes stale the moment the leader fires.  The exact bug class
// the enabled-set oracle exists to catch.
type follower struct{ l *leader }

func (f *follower) Name() string            { return "follower" }
func (f *follower) Accepts(ioa.Action) bool { return false }
func (f *follower) Input(ioa.Action)        {}
func (f *follower) NumTasks() int           { return 1 }
func (f *follower) TaskLabel(int) string    { return "obs" }
func (f *follower) Enabled(int) (ioa.Action, bool) {
	if f.l.fired%2 == 1 {
		return ioa.Internal("obs", 1, ""), true
	}
	return ioa.Action{}, false
}
func (f *follower) Fire(ioa.Action)      {}
func (f *follower) Clone() ioa.Automaton { c := *f; return &c }
func (f *follower) Encode() string       { return "F" }

func TestOracleCatchesStaleReadySet(t *testing.T) {
	l := &leader{}
	sys := ioa.MustNewSystem(l, &follower{l: l})
	o := oracle.Attach(sys, oracle.Options{Stride: 1})
	sys.Apply(0, ioa.Internal("tick", 0, ""))
	if err := o.Err(); err == nil {
		t.Fatal("oracle missed the stale ready-set bit")
	} else if !strings.Contains(err.Error(), "(oracle-ready-set)") {
		t.Fatalf("wrong clause: %v", err)
	}
}

// poker fires an environment input other automata may accept.
type poker struct{ n int }

func (p *poker) Name() string            { return "poker" }
func (p *poker) Accepts(ioa.Action) bool { return false }
func (p *poker) Input(ioa.Action)        {}
func (p *poker) NumTasks() int           { return 1 }
func (p *poker) TaskLabel(int) string    { return "poke" }
func (p *poker) Enabled(int) (ioa.Action, bool) {
	return ioa.EnvInput("poke", 0, ""), true
}
func (p *poker) Fire(ioa.Action)      { p.n++ }
func (p *poker) Clone() ioa.Automaton { c := *p; return &c }
func (p *poker) Encode() string       { return fmt.Sprintf("P%d", p.n) }

// misdeclared violates the Signatured contract: it accepts "poke" but
// declares only a key for "other", so the routing index never offers it the
// pokes a full Accepts scan would deliver.
type misdeclared struct{ got int }

func (m *misdeclared) Name() string { return "misdeclared" }
func (m *misdeclared) Accepts(a ioa.Action) bool {
	return a.Kind == ioa.KindEnvIn && a.Name == "poke"
}
func (m *misdeclared) SignatureKeys() []ioa.SigKey {
	return ioa.KeysOf(ioa.EnvInput("other", 0, ""))
}
func (m *misdeclared) Input(ioa.Action)     { m.got++ }
func (m *misdeclared) NumTasks() int        { return 0 }
func (m *misdeclared) TaskLabel(int) string { return "" }
func (m *misdeclared) Enabled(int) (ioa.Action, bool) {
	return ioa.Action{}, false
}
func (m *misdeclared) Fire(ioa.Action)      {}
func (m *misdeclared) Clone() ioa.Automaton { c := *m; return &c }
func (m *misdeclared) Encode() string       { return fmt.Sprintf("M%d", m.got) }

func TestOracleCatchesUndeclaredAcceptor(t *testing.T) {
	sys := ioa.MustNewSystem(&poker{}, &misdeclared{})
	o := oracle.Attach(sys, oracle.Options{Stride: 1})
	sys.Apply(0, ioa.EnvInput("poke", 0, ""))
	if err := o.Err(); err == nil {
		t.Fatal("oracle missed the undeclared acceptor")
	} else if !strings.Contains(err.Error(), "(oracle-delivery-set)") {
		t.Fatalf("wrong clause: %v", err)
	}
}

func TestOracleCatchesChannelDesync(t *testing.T) {
	ch := system.NewChannel(0, 1)
	sys := ioa.MustNewSystem(&sender{to: 1, k: 3}, ch)
	o := oracle.Attach(sys, oracle.Options{Stride: 1, Shadow: true})
	// Two sends through the system keep shadow and channel in sync.
	sys.Step(ioa.TaskRef{Auto: 0, Task: 0})
	sys.Step(ioa.TaskRef{Auto: 0, Task: 0})
	if err := o.Err(); err != nil {
		t.Fatalf("shadow diverged on honest traffic: %v", err)
	}
	// Simulate a queue bug: the channel drops its head behind the system's
	// back (as a retention/compaction bug would).
	ch.Fire(ioa.Action{})
	// The next delivery observed through the system must convict it.
	sys.Step(ioa.TaskRef{Auto: 1, Task: 0})
	if err := o.Err(); err == nil {
		t.Fatal("oracle missed the desynchronized channel")
	} else if !strings.Contains(err.Error(), "(oracle-channel-shadow)") {
		t.Fatalf("wrong clause: %v", err)
	}
}

// sender emits k distinct messages to location `to`.
type sender struct {
	to   ioa.Loc
	k    int
	sent int
}

func (s *sender) Name() string            { return "sender" }
func (s *sender) Accepts(ioa.Action) bool { return false }
func (s *sender) Input(ioa.Action)        {}
func (s *sender) NumTasks() int           { return 1 }
func (s *sender) TaskLabel(int) string    { return "send" }
func (s *sender) Enabled(int) (ioa.Action, bool) {
	if s.sent >= s.k {
		return ioa.Action{}, false
	}
	return ioa.Send(0, s.to, fmt.Sprintf("m%d", s.sent)), true
}
func (s *sender) Fire(ioa.Action)      { s.sent++ }
func (s *sender) Clone() ioa.Automaton { c := *s; return &c }
func (s *sender) Encode() string       { return fmt.Sprintf("S%d", s.sent) }

// ---- negative controls: real systems must pass with zero divergences ----

func TestOracleCleanOnDetectorSystem(t *testing.T) {
	det, err := afd.Lookup("FD-◇P", 3)
	if err != nil {
		t.Fatal(err)
	}
	sys := ioa.MustNewSystem(
		append([]ioa.Automaton{det.Automaton(3), system.NewCrash(system.CrashOf(1))},
			system.Channels(3)...)...)
	o := oracle.Attach(sys, oracle.Options{Stride: 1, Shadow: true})
	res := sched.Random(sys, 42, sched.Options{MaxSteps: 600})
	if err := o.Check(); err != nil {
		t.Fatalf("divergence on honest detector system (after %d steps, %d sweeps): %v",
			res.Steps, o.Sweeps(), err)
	}
	if o.Events() == 0 {
		t.Fatal("oracle observed nothing")
	}
}

func TestOracleCleanOnTrackedMesh(t *testing.T) {
	clock := system.NewSendClock()
	det, err := afd.Lookup("FD-P", 3)
	if err != nil {
		t.Fatal(err)
	}
	sys := ioa.MustNewSystem(
		append([]ioa.Automaton{det.Automaton(3), system.NewCrash(system.NoFaults())},
			system.TrackedChannels(3, clock)...)...)
	o := oracle.Attach(sys, oracle.Options{Stride: 1, Shadow: true})
	sched.RoundRobin(sys, sched.Options{MaxSteps: 500})
	if err := o.Check(); err != nil {
		t.Fatalf("divergence on tracked mesh: %v", err)
	}
}

func TestOracleStrideAmortizes(t *testing.T) {
	det, err := afd.Lookup("FD-Ω", 2)
	if err != nil {
		t.Fatal(err)
	}
	sys := ioa.MustNewSystem(det.Automaton(2), system.NewCrash(system.NoFaults()))
	o := oracle.Attach(sys, oracle.Options{Stride: 8})
	sched.RoundRobin(sys, sched.Options{MaxSteps: 64})
	if err := o.Check(); err != nil {
		t.Fatal(err)
	}
	// 64 events at stride 8 = 8 strided sweeps, plus the explicit Check.
	if got := o.Sweeps(); got != 9 {
		t.Fatalf("got %d sweeps, want 9", got)
	}
}

func TestObserverNotInheritedByClones(t *testing.T) {
	sys := ioa.MustNewSystem(&poker{})
	o := oracle.Attach(sys, oracle.Options{Stride: 1})
	clone := sys.Clone()
	clone.Apply(0, ioa.EnvInput("poke", 0, ""))
	if o.Events() != 0 {
		t.Fatal("clone's events reached the parent's oracle")
	}
	sys.Apply(0, ioa.EnvInput("poke", 0, ""))
	if o.Events() != 1 {
		t.Fatalf("oracle observed %d events, want 1", o.Events())
	}
	o.Detach()
	sys.Apply(0, ioa.EnvInput("poke", 0, ""))
	if o.Events() != 1 {
		t.Fatal("detached oracle still observing")
	}
}
