package oracle

import (
	"bytes"
	"fmt"
	"runtime"

	"repro/internal/valence"
)

// DiffOptions configures DiffExplorers.
type DiffOptions struct {
	// Workers is the worker count of the parallel side (0 = GOMAXPROCS,
	// forced to at least 2 so single-CPU machines still exercise the
	// parallel engine).
	Workers int
	// MaxHooks bounds the hook reports compared (0 = 64).  Hook scans are
	// prefix-exact, so comparing a bounded prefix compares the same scan.
	MaxHooks int
}

func (o DiffOptions) workers() int {
	if o.Workers > 1 {
		return o.Workers
	}
	if w := runtime.GOMAXPROCS(0); w > 1 {
		return w
	}
	return 2
}

func (o DiffOptions) maxHooks() int {
	if o.MaxHooks <= 0 {
		return 64
	}
	return o.MaxHooks
}

// DiffExplorers runs the serial reference explorer (Workers=1) and the
// parallel explorer on the same valence.Config and diffs the results
// node-by-node: stats, then per-NodeID the FD index, valence, state
// encoding, and out-edge list, then the hook reports and their Theorem-59
// verification.  The parallel explorer's renumbering pass promises tables
// byte-identical to the serial BFS at any worker count; a mismatch here
// names the first divergent NodeID instead of an aggregate hash.
func DiffExplorers(cfg valence.Config, opts DiffOptions) error {
	scfg := cfg
	scfg.Workers = 1
	scfg.Progress = nil
	ser, err := explore(scfg)
	if err != nil {
		return fmt.Errorf("oracle: serial exploration: %w", err)
	}
	pcfg := cfg
	pcfg.Workers = opts.workers()
	pcfg.Progress = nil
	par, err := explore(pcfg)
	if err != nil {
		return fmt.Errorf("oracle: parallel exploration (%d workers): %w", pcfg.Workers, err)
	}

	if ss, ps := ser.Stats(), par.Stats(); ss != ps {
		return fmt.Errorf("oracle: serial stats %+v, parallel stats %+v (oracle-valence-stats)", ss, ps)
	}
	for id := 0; id < ser.NumNodes(); id++ {
		nid := valence.NodeID(id)
		if s, p := ser.NodeFD(nid), par.NodeFD(nid); s != p {
			return fmt.Errorf("oracle: node %d: serial FD index %d, parallel %d (oracle-valence-node)", id, s, p)
		}
		if s, p := ser.Valence(nid), par.Valence(nid); s != p {
			return fmt.Errorf("oracle: node %d: serial valence %v, parallel %v (oracle-valence-node)", id, s, p)
		}
		if s, p := ser.NodeEncoding(nid), par.NodeEncoding(nid); !bytes.Equal(s, p) {
			return fmt.Errorf("oracle: node %d: serial encoding %q, parallel %q (oracle-valence-node)", id, s, p)
		}
		se, pe := ser.Edges(nid), par.Edges(nid)
		if len(se) != len(pe) {
			return fmt.Errorf("oracle: node %d: serial has %d edges, parallel %d (oracle-valence-node)", id, len(se), len(pe))
		}
		for k := range se {
			if se[k] != pe[k] {
				return fmt.Errorf("oracle: node %d edge %d: serial %+v, parallel %+v (oracle-valence-node)", id, k, se[k], pe[k])
			}
		}
	}

	sh, ph := ser.FindHooks(opts.maxHooks()), par.FindHooks(opts.maxHooks())
	if len(sh) != len(ph) {
		return fmt.Errorf("oracle: serial finds %d hooks, parallel %d (oracle-valence-hooks)", len(sh), len(ph))
	}
	for i := range sh {
		if sh[i] != ph[i] {
			return fmt.Errorf("oracle: hook %d: serial %v, parallel %v (oracle-valence-hooks)", i, sh[i], ph[i])
		}
		// Diff the Theorem-59 verdicts rather than requiring them to pass:
		// Lemma 58 only holds when tD crashes at most as many locations as
		// the hosted algorithm tolerates, and the differ accepts
		// hypothesis-violating configs on purpose (they exercise the engines
		// on graphs the lemma-bound tests never reach).  Whether a hook
		// verifies is a property of the tables, so the engines must agree.
		serr, perr := ser.VerifyHook(sh[i]), par.VerifyHook(ph[i])
		if (serr == nil) != (perr == nil) || (serr != nil && serr.Error() != perr.Error()) {
			return fmt.Errorf("oracle: hook %d: serial verification %v, parallel %v (oracle-valence-hooks)",
				i, serr, perr)
		}
	}
	return nil
}

func explore(cfg valence.Config) (*valence.Explorer, error) {
	e, err := valence.New(cfg)
	if err != nil {
		return nil, err
	}
	if err := e.Explore(); err != nil {
		return nil, err
	}
	return e, nil
}
