package oracle_test

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/oracle"
	"repro/internal/valence"
)

// TestDiffReductionClean runs the reduction differ on every E10–E11 golden
// configuration: identical valence classifications and hook reports between
// the reduced and unreduced explorers, plus the per-node proof that every
// pruned action is independent of the chosen ample set.
func TestDiffReductionClean(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  valence.Config
	}{
		{"omega-n2-free", valence.Config{
			N: 2, Family: "FD-Ω", TD: valence.OmegaTD(2, 6, nil)}},
		{"omega-n2-short", valence.Config{
			N: 2, Family: "FD-Ω", TD: valence.OmegaTD(2, 3, nil)}},
		{"perfect-n2-s-crash", valence.Config{
			N: 2, Family: "FD-P", Algo: "s",
			TD: valence.PerfectTD(2, 4, map[ioa.Loc]int{1: 1})}},
		{"perfect-n3-s-crash", valence.Config{
			N: 3, Family: "FD-P", Algo: "s",
			TD:     valence.PerfectTD(3, 2, map[ioa.Loc]int{2: 1}),
			Values: []int{-1, 1, 1}, MaxNodes: 1_500_000, Workers: 4}},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.cfg.N >= 3 && testing.Short() {
				t.Skip("n=3 differ exceeds -short budget")
			}
			if err := oracle.DiffReduction(tc.cfg, oracle.DiffOptions{Workers: tc.cfg.Workers}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
