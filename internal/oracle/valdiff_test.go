package oracle_test

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/oracle"
	"repro/internal/valence"
)

func TestDiffExplorersClean(t *testing.T) {
	for _, tc := range []struct {
		name    string
		cfg     valence.Config
		workers int
	}{
		{
			name: "omega-n2",
			cfg: valence.Config{
				N: 2, Family: "FD-Ω", Algo: "ct",
				TD: valence.OmegaTD(2, 2, nil),
			},
		},
		{
			name: "omega-n2-crash",
			cfg: valence.Config{
				N: 2, Family: "FD-Ω", Algo: "ct",
				TD: valence.OmegaTD(2, 3, map[ioa.Loc]int{1: 1}),
			},
			workers: 3,
		},
		{
			name: "perfect-n2-s",
			cfg: valence.Config{
				N: 2, Family: "FD-P", Algo: "s",
				TD: valence.PerfectTD(2, 2, nil),
			},
		},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if err := oracle.DiffExplorers(tc.cfg, oracle.DiffOptions{Workers: tc.workers}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
