// Package oracle is the differential-checking layer over the repository's
// fast paths.  The last three PRs each added an optimized engine next to a
// slower reference — the action-routing index and incremental ready-set next
// to full scans, ring-buffer channels next to naive queues, the parallel
// valence explorer next to the serial BFS — exactly the setup where silent
// divergence bugs hide.  The oracle re-derives each fast path's answer from
// first principles while a system runs and fails loudly at the first
// observable divergence, naming the event (or NodeID) where the engines
// split instead of the downstream symptom.
//
// Three checkers:
//
//   - Oracle (Attach): hooks a live ioa.System's post-Apply observer and,
//     every Options.Stride events, re-derives the enabled-set by polling
//     every task's Enabled directly (diffed against the ready-set bitset and
//     its cached actions) and the delivery-set by scanning every automaton's
//     Accepts (diffed against the routing index's candidates).
//   - channel shadow (Options.Shadow): mirrors every system.Channel and
//     system.TrackedChannel with a naive slice queue, updated and compared
//     on every send and delivery — so the next ring-buffer retention or
//     compaction bug is caught at the step it happens.
//   - DiffExplorers: runs the serial and parallel valence explorers on one
//     config and diffs stats, valence tables, encodings, edges, and hook
//     reports node-by-node, so a mismatch names the first divergent NodeID
//     rather than an aggregate hash.
//
// Every divergence error ends in a parenthesized clause — "(oracle-ready-set)",
// "(oracle-channel-shadow)", ... — so the chaos shrinker's clause matching
// (chaos.errClause) reduces an oracle failure without swapping it for an
// unrelated one.
//
// Checks are read-only: the oracle calls Enabled and Accepts (pure per the
// Automaton contract) and never mutates the observed system.  A detached or
// never-attached system pays nothing; an attached system pays one nil check
// per Apply plus the strided sweeps.
package oracle

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/telemetry"
)

// DefaultStride is the minimum default event interval between full
// enabled-set and delivery-set sweeps.  A sweep costs O(tasks + automata)
// against an O(1) fast-path step, so the default stride scales with the
// composition — max(DefaultStride, tasks/4), fixed at Attach — keeping the
// per-event overhead a small constant factor at any n (the E1 benchmark
// bound is < 3× with the shadow on; a fixed stride fails that on the n=32
// mesh, whose ~n² channel tasks make each sweep ~1000 polls).  Differential
// hunts that want the divergence pinned to its exact event set Stride to 1.
const DefaultStride = 16

// Options configures an attached Oracle.
type Options struct {
	// Stride runs the enabled-set and delivery-set sweeps every Stride-th
	// event (1 = every event; 0 = the scaled default, see DefaultStride).
	// The channel shadow is per-event regardless: its cost is O(affected
	// queue), not O(system).
	Stride int
	// Shadow mirrors every system.Channel/TrackedChannel with a naive slice
	// queue, compared on each send and each delivery.
	Shadow bool
	// MaxErrs bounds recorded divergences (0 = 8).  Checking continues past
	// the bound; recording stops.
	MaxErrs int
	// Telemetry, when non-nil, counts sweeps (COracleSweeps), samples their
	// latency (HOracleSweepNs), and records one oracle-category trace span
	// per sweep — the window the ISSUE's "oracle slows a grid" diagnosis
	// needs.  Checking behavior is unchanged.
	Telemetry telemetry.Sink
}

// resolveStride fixes the sweep interval for a system with the given task
// count: the explicit Stride, or the scaled default.
func (o Options) resolveStride(tasks int) int {
	if o.Stride > 0 {
		return o.Stride
	}
	if s := tasks / 4; s > DefaultStride {
		return s
	}
	return DefaultStride
}

func (o Options) maxErrs() int {
	if o.MaxErrs <= 0 {
		return 8
	}
	return o.MaxErrs
}

// Oracle cross-checks one live ioa.System.  Attach installs it as the
// system's post-Apply observer; it must not outlive the system.
type Oracle struct {
	sys     *ioa.System
	opts    Options
	stride  int // resolved at Attach (see Options.resolveStride)
	shadows *shadowSet
	events  int
	sweeps  int
	errs    []error

	// Sweep scratch, reused across sweeps so the strided re-derivations
	// don't allocate per event (the PR 4 <3x overhead budget is mostly
	// sweep CPU; keeping the sweeps off the allocator keeps GC out of it).
	candBuf []int // caller-provided buffer for DeliveryCandidates
	refBuf  []int // first-principles delivery set
	fastBuf []int // Accepts-filtered routing candidates
}

// Attach installs an oracle on sys via its observer hook and returns it.
// The system must not already carry an observer.  Call Check after the run
// for a final sweep regardless of stride phase, and Err for the verdict.
func Attach(sys *ioa.System, opts Options) *Oracle {
	o := &Oracle{sys: sys, opts: opts, stride: opts.resolveStride(len(sys.Tasks()))}
	if opts.Shadow {
		o.shadows = newShadowSet(sys)
	}
	sys.SetObserver(o.observe)
	return o
}

// Detach removes the oracle's observer from the system.
func (o *Oracle) Detach() { o.sys.SetObserver(nil) }

// Events returns the number of events observed.
func (o *Oracle) Events() int { return o.events }

// Sweeps returns the number of full enabled-set/delivery-set sweeps run.
func (o *Oracle) Sweeps() int { return o.sweeps }

// Err returns the first recorded divergence, or nil.
func (o *Oracle) Err() error {
	if len(o.errs) == 0 {
		return nil
	}
	return o.errs[0]
}

// Errs returns every recorded divergence, in observation order.
func (o *Oracle) Errs() []error { return o.errs }

// ShadowSeq returns the channel shadow's independently advanced send counter
// for the directed link from→to, and whether a shadowed channel exists for
// that pair (requires Options.Shadow).  The causal provenance engine uses it
// to cross-check its own per-link FIFO pairing against the oracle's: after a
// replay, both must have counted the same number of sends per link, or the
// happens-before edges were derived from a different message sequence than
// the one the shadow verified.
func (o *Oracle) ShadowSeq(from, to ioa.Loc) (uint64, bool) {
	if o.shadows == nil {
		return 0, false
	}
	sh := o.shadows.byPair[locPair{from, to}]
	if sh == nil {
		return 0, false
	}
	return sh.seq, true
}

// Check runs a full sweep immediately — the end-of-run check that fires
// regardless of where the event count sits in the stride — and returns Err.
func (o *Oracle) Check() error {
	t0 := o.sweepStart()
	o.sweeps++
	o.checkReadySet()
	if o.shadows != nil {
		o.shadows.compareAll(o)
	}
	o.sweepDone(t0, "final-sweep")
	return o.Err()
}

// sweepStart stamps the start of a sweep on the telemetry clock (0 when no
// sink is attached).
func (o *Oracle) sweepStart() int64 {
	if o.opts.Telemetry == nil {
		return 0
	}
	return o.opts.Telemetry.Now()
}

// sweepDone records a completed sweep: the counter, the latency sample, and
// an oracle-category trace span carrying the event count.
func (o *Oracle) sweepDone(t0 int64, name string) {
	tel := o.opts.Telemetry
	if tel == nil {
		return
	}
	tel.Count(telemetry.COracleSweeps, 1)
	tel.Observe(telemetry.HOracleSweepNs, tel.Now()-t0)
	tel.Span(telemetry.CatOracle, name, t0, 0, int64(o.events))
}

func (o *Oracle) record(err error) {
	if len(o.errs) < o.opts.maxErrs() {
		o.errs = append(o.errs, err)
	}
}

// observe is the installed ioa.Observer: it runs after each Apply completed
// its Fire, deliveries, trace append, and ready-set repolls.
func (o *Oracle) observe(owner int, act ioa.Action) {
	o.events++
	if o.shadows != nil {
		o.shadows.step(o, owner, act)
	}
	if o.events%o.stride == 0 {
		t0 := o.sweepStart()
		o.sweeps++
		o.checkReadySet()
		o.checkDeliverySet(owner, act)
		o.sweepDone(t0, "sweep")
	}
}

// checkReadySet re-derives the enabled-set from first principles — polling
// every task's Enabled, as the pre-fast-path schedulers did every step — and
// diffs it against the incremental bitset and its cached actions.
func (o *Oracle) checkReadySet() {
	tasks := o.sys.Tasks()
	for idx := range tasks {
		tr := tasks[idx]
		refAct, refOK := o.sys.Enabled(tr)
		fastOK := o.sys.TaskReady(idx)
		if refOK != fastOK {
			o.record(fmt.Errorf(
				"oracle: after event %d, task %d (%s): Enabled reports %v but the ready-set bit is %v (oracle-ready-set)",
				o.events, idx, o.sys.TaskLabel(tr), refOK, fastOK))
			continue
		}
		if refOK && o.sys.ReadyAction(idx) != refAct {
			o.record(fmt.Errorf(
				"oracle: after event %d, task %d (%s): cached ready action %v but Enabled reports %v (oracle-ready-act)",
				o.events, idx, o.sys.TaskLabel(tr), o.sys.ReadyAction(idx), refAct))
		}
	}
}

// checkDeliverySet re-derives the delivery-set of the event just performed —
// every non-owner automaton whose Accepts admits it, found by scanning the
// whole composition — and diffs it against the routing index's
// Accepts-filtered candidates.  Accepts is a static signature predicate
// (identity-only in every automaton of this repository), so checking after
// the state change is sound.
func (o *Oracle) checkDeliverySet(owner int, act ioa.Action) {
	autos := o.sys.Automata()
	ref := o.refBuf[:0]
	for ai, a := range autos {
		if ai != owner && a.Accepts(act) {
			ref = append(ref, ai)
		}
	}
	fast := o.fastBuf[:0]
	o.candBuf = o.sys.DeliveryCandidates(act, o.candBuf)
	for _, ai := range o.candBuf {
		if ai != owner && autos[ai].Accepts(act) {
			fast = append(fast, ai)
		}
	}
	o.refBuf, o.fastBuf = ref, fast
	if !equalInts(ref, fast) {
		o.record(fmt.Errorf(
			"oracle: event %d (%v): routing index delivers to automata %v but a full Accepts scan finds %v (oracle-delivery-set)",
			o.events, act, fast, ref))
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
