package oracle

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/system"
)

// chanShadow mirrors one channel automaton with the naive representation the
// ring buffer replaced: a plain slice popped with q = q[1:].  The shadow is
// deliberately the simplest correct FIFO, so any disagreement indicts the
// optimized queue (retention, compaction, stamp bookkeeping), and the
// comparison runs at the event that desynchronized them, not at the symptom.
type chanShadow struct {
	ai     int    // automaton index in the composition
	name   string // automaton name, for error messages
	ch     *system.Channel
	tc     *system.TrackedChannel // nil for plain channels
	queue  []string
	stamps []uint64 // tracked channels only, parallel to queue
	// hasNet/spec/seq re-derive adversarial link decisions independently:
	// the spec is copied at attach and seq advances on each observed send,
	// deliberately never reading the channel's own counter again — a
	// channel that miscounts sends (and therefore draws wrong decisions)
	// diverges from the shadow instead of dragging it along.
	hasNet bool
	spec   system.NetSpec
	seq    uint64
}

type locPair struct{ from, to ioa.Loc }

// shadowSet indexes the shadows of a composition by the two ways an event
// touches a channel: a send routes by its (from, to) pair, a delivery by the
// firing automaton's index.
type shadowSet struct {
	all    []*chanShadow // ascending automaton index, for deterministic sweeps
	byPair map[locPair]*chanShadow
	byAuto map[int]*chanShadow
	// clocks independently re-derives send stamps: one counter per
	// SendClock, advanced by the shadow on each observed tracked send.  It
	// deliberately does not read the clock after attach, so a channel that
	// forgets (or double-counts) a tick diverges from the shadow.
	clocks map[*system.SendClock]*uint64
}

// newShadowSet builds shadows for every channel automaton of sys, seeded
// from the channels' current contents.  Returns nil when the composition has
// no channels.
func newShadowSet(sys *ioa.System) *shadowSet {
	s := &shadowSet{
		byPair: make(map[locPair]*chanShadow),
		byAuto: make(map[int]*chanShadow),
		clocks: make(map[*system.SendClock]*uint64),
	}
	for ai, a := range sys.Automata() {
		var sh *chanShadow
		switch c := a.(type) {
		case *system.TrackedChannel:
			sh = &chanShadow{ai: ai, name: c.Name(), ch: &c.Channel, tc: c,
				queue: c.Queue(), stamps: c.Stamps()}
			if _, ok := s.clocks[c.Clock()]; !ok {
				now := c.Clock().Now()
				s.clocks[c.Clock()] = &now
			}
		case *system.Channel:
			sh = &chanShadow{ai: ai, name: c.Name(), ch: c, queue: c.Queue()}
		default:
			continue
		}
		// seq mirrors the channel's send counter for every link (the causal
		// engine cross-checks it via Oracle.ShadowSeq); only lossy links also
		// consume it for decision drawing.
		sh.seq = sh.ch.Sent()
		if nt := sh.ch.Network(); nt != nil {
			sh.hasNet = true
			sh.spec = nt.Spec
		}
		s.all = append(s.all, sh)
		s.byPair[locPair{sh.ch.From, sh.ch.To}] = sh
		s.byAuto[ai] = sh
	}
	if len(s.byAuto) == 0 {
		return nil
	}
	return s
}

// step advances the shadows for one observed event and compares the touched
// channel.  Only sends and deliveries touch channels (channels are
// unaffected by crashes, §4.3).
func (s *shadowSet) step(o *Oracle, owner int, act ioa.Action) {
	switch act.Kind {
	case ioa.KindSend:
		if act.Name != ioa.NameSend {
			return
		}
		sh := s.byPair[locPair{act.Loc, act.Peer}]
		if sh == nil {
			return
		}
		out := system.OutDeliver
		if sh.hasNet {
			out = sh.spec.Outcome(sh.ch.From, sh.ch.To, sh.seq)
		}
		sh.seq++
		var stamp uint64
		if sh.tc != nil {
			// The clock ticks on every send, even a dropped one (the
			// channel's convention: a dropped message consumes its stamp).
			ctr := s.clocks[sh.tc.Clock()]
			*ctr++
			stamp = *ctr
		}
		switch out {
		case system.OutDrop:
		case system.OutDup:
			sh.queue = append(sh.queue, act.Payload, act.Payload)
			if sh.tc != nil {
				sh.stamps = append(sh.stamps, stamp, stamp)
			}
		case system.OutReorder:
			sh.queue = append(sh.queue, act.Payload)
			swapTail(sh.queue)
			if sh.tc != nil {
				sh.stamps = append(sh.stamps, stamp)
				swapTail(sh.stamps)
			}
		default:
			sh.queue = append(sh.queue, act.Payload)
			if sh.tc != nil {
				sh.stamps = append(sh.stamps, stamp)
			}
		}
		sh.compare(o)
	case ioa.KindReceive:
		sh := s.byAuto[owner]
		if sh == nil {
			return
		}
		if len(sh.queue) == 0 {
			o.record(fmt.Errorf(
				"oracle: event %d: %s delivered %v but the shadow queue is empty (oracle-channel-shadow)",
				o.events, sh.name, act))
			return
		}
		if sh.queue[0] != act.Payload {
			o.record(fmt.Errorf(
				"oracle: event %d: %s delivered %q but the shadow head is %q (oracle-channel-shadow)",
				o.events, sh.name, act.Payload, sh.queue[0]))
		}
		sh.queue = sh.queue[1:]
		if sh.tc != nil && len(sh.stamps) > 0 {
			sh.stamps = sh.stamps[1:]
		}
		sh.compare(o)
	}
}

// compare diffs the channel's full queue (and stamps) against the shadow,
// resynchronizing on divergence so one bug does not cascade into a report
// per subsequent event.
func (sh *chanShadow) compare(o *Oracle) {
	if got := sh.ch.Queue(); !equalStrings(got, sh.queue) {
		o.record(fmt.Errorf(
			"oracle: event %d: %s queue %q diverges from shadow %q (oracle-channel-shadow)",
			o.events, sh.name, got, sh.queue))
		sh.queue = got
	}
	if sh.tc != nil {
		if got := sh.tc.Stamps(); !equalUint64s(got, sh.stamps) {
			o.record(fmt.Errorf(
				"oracle: event %d: %s stamps %v diverge from shadow %v (oracle-channel-shadow)",
				o.events, sh.name, got, sh.stamps))
			sh.stamps = got
		}
	}
}

// compareAll diffs every shadow, for the end-of-run Check.
func (s *shadowSet) compareAll(o *Oracle) {
	for _, sh := range s.all {
		sh.compare(o)
	}
}

// swapTail mirrors the lossy link's reorder on a shadow queue: the last two
// elements swap (no-op below length 2).
func swapTail[T any](q []T) {
	if len(q) >= 2 {
		q[len(q)-1], q[len(q)-2] = q[len(q)-2], q[len(q)-1]
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalUint64s(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
