package oracle

import (
	"bytes"
	"fmt"
	"sort"

	"repro/internal/ioa"
	"repro/internal/valence"
)

// DiffReduction explores a configuration twice — unreduced and with dynamic
// partial-order reduction — and checks that reduction preserved the verdict
// quotient the valence analysis is about:
//
//   - every node of the reduced graph appears in the full graph (keyed by
//     (fd index, state encoding)) with the identical valence classification;
//   - the bivalent node count, the root valence, and the hook reports
//     (FindHooks, compared under graph-independent keys) are identical;
//   - no node poisoned its site claim (the static routing metadata held);
//   - independence justification: at every reduced (not fully expanded)
//     node, each pruned enabled action is provably independent of every
//     member of the chosen ample set — disjoint ActionFootprints, or the
//     FIFO send/deliver pair on one channel with the delivery enabled.
//
// The justification pass replays each reduced node's concrete state along
// the reduced graph itself and re-derives the enabled step set, so it checks
// the engine's ample choices against the composition's actual routing index,
// not against the reduction's own bookkeeping.
func DiffReduction(cfg valence.Config, opts DiffOptions) error {
	fcfg := cfg
	fcfg.Reduce = false
	fcfg.Workers = opts.workers()
	fcfg.Progress = nil
	full, err := explore(fcfg)
	if err != nil {
		return fmt.Errorf("oracle: full exploration: %w", err)
	}
	rcfg := cfg
	rcfg.Reduce = true
	rcfg.Workers = opts.workers()
	rcfg.Progress = nil
	red, err := explore(rcfg)
	if err != nil {
		return fmt.Errorf("oracle: reduced exploration: %w", err)
	}

	fs, rs := full.Stats(), red.Stats()
	if rs.Nodes > fs.Nodes {
		return fmt.Errorf("oracle: reduced graph has %d nodes, full only %d (oracle-reduce-stats)", rs.Nodes, fs.Nodes)
	}
	if rs.Poisoned != 0 {
		return fmt.Errorf("oracle: %d poisoned site claims; composition metadata is wrong (oracle-reduce-poison)", rs.Poisoned)
	}
	if rs.Bivalent != fs.Bivalent {
		return fmt.Errorf("oracle: bivalent count %d reduced, %d full (oracle-reduce-stats)", rs.Bivalent, fs.Bivalent)
	}
	if fv, rv := full.Valence(full.Root()), red.Valence(red.Root()); fv != rv {
		return fmt.Errorf("oracle: root valence %v full, %v reduced (oracle-reduce-verdict)", fv, rv)
	}

	valences := make(map[string]valence.Valence, fs.Nodes)
	for id := 0; id < fs.Nodes; id++ {
		valences[quotKey(full, valence.NodeID(id))] = full.Valence(valence.NodeID(id))
	}
	for id := 0; id < rs.Nodes; id++ {
		k := quotKey(red, valence.NodeID(id))
		want, ok := valences[k]
		if !ok {
			return fmt.Errorf("oracle: reduced node %d (%s) absent from full graph (oracle-reduce-verdict)", id, k)
		}
		if got := red.Valence(valence.NodeID(id)); got != want {
			return fmt.Errorf("oracle: node %d (%s): valence %v reduced, %v full (oracle-reduce-verdict)", id, k, got, want)
		}
	}

	fh := hookSet(full, full.FindHooks(opts.maxHooks()))
	rh := hookSet(red, red.FindHooks(opts.maxHooks()))
	if len(fh) != len(rh) {
		return fmt.Errorf("oracle: %d hooks full, %d reduced (oracle-reduce-hooks)", len(fh), len(rh))
	}
	for i := range fh {
		if fh[i] != rh[i] {
			return fmt.Errorf("oracle: hook %d differs:\n  full:    %s\n  reduced: %s (oracle-reduce-hooks)", i, fh[i], rh[i])
		}
	}

	return verifyIndependence(cfg, red)
}

// quotKey identifies a node across differently explored graphs of the same
// configuration.
func quotKey(e *valence.Explorer, id valence.NodeID) string {
	return fmt.Sprintf("%d|%s", e.NodeFD(id), e.NodeEncoding(id))
}

// hookSet renders hooks in a graph-independent, sorted form.
func hookSet(e *valence.Explorer, hooks []valence.Hook) []string {
	out := make([]string, 0, len(hooks))
	for _, h := range hooks {
		out = append(out, fmt.Sprintf("%s L=%s(%s) R=%s(%s) v=%d",
			quotKey(e, h.Node), e.LabelName(h.L), h.LAct, e.LabelName(h.R), h.RAct, h.V))
	}
	sort.Strings(out)
	return out
}

// step is one enabled transition at a node: the owning automaton (-1 for the
// FD edge) and its action.
type step struct {
	owner int
	act   ioa.Action
}

// verifyIndependence walks the reduced graph depth-first, replaying concrete
// states, and checks at every reduced node that each pruned enabled action
// is independent of every ample action.  It also re-encodes each replayed
// state and compares it against the node table, so replay drift cannot
// silently justify the wrong state.
func verifyIndependence(cfg valence.Config, red *valence.Explorer) error {
	type frame struct {
		id  valence.NodeID
		sys *ioa.System
		ei  int
	}
	visited := make([]bool, red.NumNodes())
	var buf []byte
	var fa, fb []int
	stack := []frame{{id: red.Root(), sys: red.NewRootSystem()}}
	visited[red.Root()] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		if f.ei == 0 {
			var err error
			buf, fa, fb, err = checkNode(cfg, red, f.id, f.sys, buf, fa, fb)
			if err != nil {
				return err
			}
		}
		edges := red.Edges(f.id)
		if f.ei >= len(edges) {
			stack = stack[:len(stack)-1]
			continue
		}
		ed := edges[f.ei]
		f.ei++
		if visited[ed.To] {
			continue
		}
		visited[ed.To] = true
		child := f.sys.CloneBare()
		child.Apply(red.TaskOwner(ed.Label), ed.Act)
		stack = append(stack, frame{id: ed.To, sys: child})
	}
	return nil
}

// checkNode verifies one replayed node: encoding fidelity, then — for
// reduced nodes — that the pruned set is nonempty and every pruned action is
// independent of every ample action.
func checkNode(cfg valence.Config, red *valence.Explorer, id valence.NodeID,
	sys *ioa.System, buf []byte, fa, fb []int) ([]byte, []int, []int, error) {
	buf = sys.AppendEncode(buf[:0])
	if !bytes.Equal(buf, red.NodeEncoding(id)) {
		return buf, fa, fb, fmt.Errorf("oracle: node %d: replayed encoding %q, table %q (oracle-reduce-replay)",
			id, buf, red.NodeEncoding(id))
	}
	if red.FullyExpanded(id) {
		return buf, fa, fb, nil
	}

	edges := red.Edges(id)
	ample := make([]step, 0, len(edges))
	hasFDEdge := false
	taken := make(map[valence.Label]bool, len(edges))
	for _, ed := range edges {
		if ed.Label == valence.LabelFD {
			hasFDEdge = true
		}
		ample = append(ample, step{owner: red.TaskOwner(ed.Label), act: ed.Act})
		taken[ed.Label] = true
	}
	var pruned []step
	tasks := sys.Tasks()
	for ti := range tasks {
		if sys.TaskReady(ti) && !taken[valence.Label(ti)] {
			pruned = append(pruned, step{owner: tasks[ti].Auto, act: sys.ReadyAction(ti)})
		}
	}
	if fd := red.NodeFD(id); fd < len(cfg.TD) && !hasFDEdge {
		pruned = append(pruned, step{owner: -1, act: cfg.TD[fd]})
	}
	if len(pruned) == 0 {
		return buf, fa, fb, fmt.Errorf("oracle: node %d marked reduced but nothing was pruned (oracle-reduce-prune)", id)
	}
	for _, p := range pruned {
		for _, a := range ample {
			ok := false
			ok, fa, fb = independentSteps(sys, p, a, fa, fb)
			if !ok {
				return buf, fa, fb, fmt.Errorf(
					"oracle: node %d: pruned %v (owner %d) not provably independent of ample %v (owner %d) (oracle-reduce-independence)",
					id, p.act, p.owner, a.act, a.owner)
			}
		}
	}
	return buf, fa, fb, nil
}

// independentSteps reports whether the two steps provably commute from any
// state where both are enabled: disjoint write footprints, or the one
// FIFO-channel exception — a send appending to exactly the channel whose
// enabled delivery is the other step (the append cannot change the head of a
// nonempty ring, and the pop cannot touch the sender).
func independentSteps(sys *ioa.System, p, a step, fa, fb []int) (bool, []int, []int) {
	fa = sys.ActionFootprint(p.owner, p.act, fa)
	fb = sys.ActionFootprint(a.owner, a.act, fb)
	common := -1
	overlap := 0
	for i, j := 0, 0; i < len(fa) && j < len(fb); {
		switch {
		case fa[i] < fb[j]:
			i++
		case fa[i] > fb[j]:
			j++
		default:
			overlap++
			common = fa[i]
			i++
			j++
		}
	}
	if overlap == 0 {
		return true, fa, fb
	}
	if overlap > 1 {
		return false, fa, fb
	}
	// Single shared automaton: allow exactly the send/deliver pair on one
	// channel, in either pruned/ample orientation.
	send, recv := p, a
	if send.act.Kind != ioa.KindSend {
		send, recv = a, p
	}
	if send.act.Kind != ioa.KindSend || recv.act.Kind != ioa.KindReceive {
		return false, fa, fb
	}
	if send.act.Peer != recv.act.Loc || send.act.Loc != recv.act.Peer {
		return false, fa, fb
	}
	// The shared automaton must be the FIFO channel itself — the one that
	// fires the delivery.
	return common == recv.owner, fa, fb
}
