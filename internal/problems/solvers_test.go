package problems

import (
	"fmt"
	"testing"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

// runKSet runs the detector-free k-set algorithm and returns the IO trace.
func runKSet(t *testing.T, n, f int, vals []string, crash []ioa.Loc, seed int64, gate int) trace.T {
	t.Helper()
	autos := KSetProcs(n, f)
	autos = append(autos, system.Channels(n)...)
	for i, v := range vals {
		// Reuse the consensus environment shape via a voter-style fixed
		// proposer: EnvInput propose with an arbitrary string payload.
		autos = append(autos, newProposerEnv(ioa.Loc(i), v))
	}
	autos = append(autos, system.NewCrash(system.CrashOf(crash...)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		t.Fatal(err)
	}
	opts := sched.Options{MaxSteps: 50_000}
	if gate > 0 {
		opts.Gate = sched.CrashesAfter(gate, gate)
	}
	if seed >= 0 {
		sched.Random(sys, seed, opts)
	} else {
		sched.RoundRobin(sys, opts)
	}
	return sys.Trace()
}

// proposerEnv proposes a fixed arbitrary string once (the binary
// ConsensusEnv cannot carry arbitrary values).
type proposerEnv struct {
	id      ioa.Loc
	val     string
	stopped bool
}

func newProposerEnv(id ioa.Loc, val string) *proposerEnv { return &proposerEnv{id: id, val: val} }

func (p *proposerEnv) Name() string { return fmt.Sprintf("proposer[%v]", p.id) }
func (p *proposerEnv) Accepts(a ioa.Action) bool {
	if a.Loc != p.id {
		return false
	}
	return a.Kind == ioa.KindCrash || (a.Kind == ioa.KindEnvOut && a.Name == system.ActNameDecide)
}
func (p *proposerEnv) Input(a ioa.Action) {
	if a.Kind == ioa.KindCrash {
		p.stopped = true
	}
}
func (p *proposerEnv) NumTasks() int        { return 1 }
func (p *proposerEnv) TaskLabel(int) string { return "propose" }
func (p *proposerEnv) Enabled(int) (ioa.Action, bool) {
	if p.stopped {
		return ioa.Action{}, false
	}
	return ioa.EnvInput(system.ActNamePropose, p.id, p.val), true
}
func (p *proposerEnv) Fire(ioa.Action) { p.stopped = true }
func (p *proposerEnv) Clone() ioa.Automaton {
	c := *p
	return &c
}
func (p *proposerEnv) Encode() string { return fmt.Sprintf("PR%v|%s|%t", p.id, p.val, p.stopped) }

// TestKSetAgreementSolvedWithoutDetector: f < k set agreement is solvable
// asynchronously; the checker validates every run.
func TestKSetAgreementSolvedWithoutDetector(t *testing.T) {
	cases := []struct {
		n, f  int
		vals  []string
		crash []ioa.Loc
	}{
		{3, 1, []string{"a", "b", "c"}, nil},
		{3, 1, []string{"a", "b", "c"}, []ioa.Loc{2}},
		{5, 2, []string{"e", "d", "c", "b", "a"}, []ioa.Loc{0, 4}},
	}
	for _, tc := range cases {
		for _, seed := range []int64{-1, 1, 7} {
			tr := runKSet(t, tc.n, tc.f, tc.vals, tc.crash, seed, 20)
			spec := KSetAgreement{N: tc.n, K: tc.f + 1}
			// A crash may leave a planned-crash location undecided; count
			// live decisions only when the run is complete.
			crashed := trace.Faulty(tr)
			complete := true
			decided := make(map[ioa.Loc]bool)
			for _, a := range Decisions(tr) {
				decided[a.Loc] = true
			}
			for i := 0; i < tc.n; i++ {
				if !crashed[ioa.Loc(i)] && !decided[ioa.Loc(i)] {
					complete = false
				}
			}
			if !complete {
				t.Fatalf("n=%d f=%d crash=%v seed=%d: live location undecided", tc.n, tc.f, tc.crash, seed)
			}
			if err := spec.Check(tr, true); err != nil {
				t.Fatalf("n=%d f=%d crash=%v seed=%d: %v", tc.n, tc.f, tc.crash, seed, err)
			}
		}
	}
}

// TestKSetDistinctValuesBound: the decision spread never exceeds f+1 even
// under adversarially diverse proposals and schedules.
func TestKSetDistinctValuesBound(t *testing.T) {
	const n, f = 5, 2
	for seed := int64(0); seed < 20; seed++ {
		tr := runKSet(t, n, f, []string{"v0", "v1", "v2", "v3", "v4"}, []ioa.Loc{1, 3}, seed, 5)
		vals := make(map[string]bool)
		for _, a := range Decisions(tr) {
			vals[a.Payload] = true
		}
		if len(vals) > f+1 {
			t.Fatalf("seed %d: %d distinct decisions > f+1 = %d", seed, len(vals), f+1)
		}
	}
}

// Decisions re-exported for tests (consensus.Decisions works on any trace).
func Decisions(t trace.T) []ioa.Action { return consensus.Decisions(t) }

// runNBAC runs the P-based NBAC algorithm.
func runNBAC(t *testing.T, n int, votes []string, crash []ioa.Loc, seed int64, gate int) trace.T {
	t.Helper()
	procs, err := NBACProcs(n, afd.FamilyP)
	if err != nil {
		t.Fatal(err)
	}
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		t.Fatal(err)
	}
	autos := procs
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, VoterEnvs(votes)...)
	autos = append(autos, d.Automaton(n))
	autos = append(autos, system.NewCrash(system.CrashOf(crash...)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		t.Fatal(err)
	}
	opts := sched.Options{MaxSteps: 100_000}
	if gate > 0 {
		opts.Gate = sched.CrashesAfter(gate, gate)
	}
	if seed >= 0 {
		sched.Random(sys, seed, opts)
	} else {
		sched.RoundRobin(sys, opts)
	}
	return sys.Trace()
}

func nbacProject(t trace.T) trace.T {
	return trace.Project(t, func(a ioa.Action) bool {
		switch {
		case a.Kind == ioa.KindCrash:
			return true
		case a.Kind == ioa.KindEnvIn && a.Name == ActNameVote:
			return true
		case a.Kind == ioa.KindEnvOut && a.Name == ActNameOutcome:
			return true
		}
		return false
	})
}

func outcomes(t trace.T) []string {
	var out []string
	for _, a := range t {
		if a.Kind == ioa.KindEnvOut && a.Name == ActNameOutcome {
			out = append(out, a.Payload)
		}
	}
	return out
}

// TestNBACCommitsOnAllYes: all-yes, crash-free runs commit at every location.
func TestNBACCommitsOnAllYes(t *testing.T) {
	for _, seed := range []int64{-1, 1, 2} {
		tr := runNBAC(t, 3, []string{VoteYes, VoteYes, VoteYes}, nil, seed, 0)
		got := outcomes(tr)
		if len(got) != 3 {
			t.Fatalf("seed %d: %d outcomes, want 3", seed, len(got))
		}
		for _, o := range got {
			if o != OutcomeCommit {
				t.Fatalf("seed %d: outcome %s, want commit", seed, o)
			}
		}
		if err := (NBAC{N: 3}).Check(nbacProject(tr), true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestNBACAbortsOnNoVote: a single no vote forces abort everywhere.
func TestNBACAbortsOnNoVote(t *testing.T) {
	tr := runNBAC(t, 3, []string{VoteYes, VoteNo, VoteYes}, nil, -1, 0)
	got := outcomes(tr)
	if len(got) != 3 {
		t.Fatalf("%d outcomes, want 3", len(got))
	}
	for _, o := range got {
		if o != OutcomeAbort {
			t.Fatalf("outcome %s, want abort", o)
		}
	}
	if err := (NBAC{N: 3}).Check(nbacProject(tr), true); err != nil {
		t.Fatal(err)
	}
}

// TestNBACAbortsOnCrash: a crash before/while voting forces abort, and the
// live locations still terminate (non-blocking).
func TestNBACAbortsOnCrash(t *testing.T) {
	for _, seed := range []int64{-1, 3} {
		tr := runNBAC(t, 3, []string{VoteYes, VoteYes, VoteYes}, []ioa.Loc{2}, seed, 5)
		got := outcomes(tr)
		if len(got) < 2 {
			t.Fatalf("seed %d: %d outcomes, want ≥ 2 (live locations must decide)", seed, len(got))
		}
		if err := (NBAC{N: 3}).Check(nbacProject(tr), true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

// TestNBACManySeeds fuzzes vote patterns, crash timing, and schedules.
func TestNBACManySeeds(t *testing.T) {
	votePatterns := [][]string{
		{VoteYes, VoteYes, VoteYes},
		{VoteNo, VoteYes, VoteYes},
		{VoteYes, VoteNo, VoteNo},
	}
	for seed := int64(0); seed < 12; seed++ {
		votes := votePatterns[seed%3]
		var crash []ioa.Loc
		if seed%2 == 0 {
			crash = []ioa.Loc{ioa.Loc(seed % 3)}
		}
		tr := runNBAC(t, 3, votes, crash, seed, int(seed%5)*10)
		if err := (NBAC{N: 3}).Check(nbacProject(tr), true); err != nil {
			t.Fatalf("seed %d votes=%v crash=%v: %v", seed, votes, crash, err)
		}
	}
}

func TestNBACProcsRejectsLeaderDetector(t *testing.T) {
	if _, err := NBACProcs(3, afd.FamilyOmega); err == nil {
		t.Fatal("NBAC needs suspicion sets; Ω must be refused")
	}
}
