package problems

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

func runMutex(t *testing.T, n int, family string, crash []ioa.Loc, seed int64, steps, gate int) trace.T {
	t.Helper()
	procs, err := MutexProcs(n, family)
	if err != nil {
		t.Fatal(err)
	}
	d, err := afd.Lookup(family, n)
	if err != nil {
		t.Fatal(err)
	}
	autos := procs
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, d.Automaton(n))
	autos = append(autos, system.NewCrash(system.CrashOf(crash...)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		t.Fatal(err)
	}
	opts := sched.Options{MaxSteps: steps}
	if gate > 0 {
		opts.Gate = sched.CrashesAfter(gate, gate)
	}
	if seed >= 0 {
		sched.Random(sys, seed, opts)
	} else {
		sched.RoundRobin(sys, opts)
	}
	return sys.Trace()
}

func mutexProject(t trace.T) trace.T {
	return trace.Project(t, func(a ioa.Action) bool {
		switch {
		case a.Kind == ioa.KindCrash:
			return true
		case a.Kind == ioa.KindEnvOut && (a.Name == ActNameEnter || a.Name == ActNameExit):
			return true
		}
		return false
	})
}

// TestMutexFailureFree: the token circulates; every location enters many
// times; exclusion holds throughout (P never mis-suspects and ◇P's canonical
// automaton here is accurate once stabilized).
func TestMutexFailureFree(t *testing.T) {
	for _, fam := range []string{afd.FamilyP, afd.FamilyEvP} {
		for _, seed := range []int64{-1, 1} {
			tr := mutexProject(runMutex(t, 3, fam, nil, seed, 4000, 0))
			spec := MutexSpec{N: 3, Window: 3}
			if err := spec.Check(tr); err != nil {
				t.Fatalf("fd=%s seed=%d: %v", fam, seed, err)
			}
			rounds := MutexRounds(tr)
			for i := 0; i < 3; i++ {
				if rounds[ioa.Loc(i)] < 5 {
					t.Fatalf("fd=%s seed=%d: location %d entered only %d times", fam, seed, i, rounds[ioa.Loc(i)])
				}
			}
		}
	}
}

// TestMutexSurvivesHolderCrash: crash a location while the token moves
// through it; the successor regenerates and progress resumes — the
// eventual-exclusion suffix exists.
func TestMutexSurvivesHolderCrash(t *testing.T) {
	for _, crashLoc := range []ioa.Loc{0, 1, 2} {
		for _, seed := range []int64{-1, 2} {
			tr := mutexProject(runMutex(t, 3, afd.FamilyP, []ioa.Loc{crashLoc}, seed, 6000, 60))
			spec := MutexSpec{N: 3, Window: 3}
			if err := spec.Check(tr); err != nil {
				t.Fatalf("crash=%v seed=%d: %v", crashLoc, seed, err)
			}
		}
	}
}

// TestMutexManySeeds fuzzes schedules with a crash; the ◇-exclusion checker
// must accept every run and report how many transient violations occurred.
func TestMutexManySeeds(t *testing.T) {
	violations := 0
	for seed := int64(0); seed < 15; seed++ {
		tr := mutexProject(runMutex(t, 3, afd.FamilyEvP, []ioa.Loc{2}, seed, 8000, 40))
		if err := (MutexSpec{N: 3, Window: 2}).Check(tr); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		violations += MutexExclusionViolations(tr)
	}
	t.Logf("transient exclusion violations across 15 runs: %d", violations)
}

// TestMutexIsNotBounded: the Section-7.3 bounded-length classifier refutes
// any finite output bound on ◇-mutex traces — the problem is long-lived,
// hence outside Theorem 21's no-representative class.
func TestMutexIsNotBounded(t *testing.T) {
	tr := mutexProject(runMutex(t, 3, afd.FamilyP, nil, -1, 4000, 0))
	w := Witness{
		Traces:  []trace.T{tr},
		IsTrace: func(trace.T) error { return nil },
		IsOutput: func(a ioa.Action) bool {
			return a.Kind == ioa.KindEnvOut && a.Name == ActNameEnter
		},
	}
	if _, err := w.CheckBoundedLength(10); err == nil {
		t.Fatal("a 4000-step mutex run stayed within 10 outputs; not long-lived?")
	}
}

func TestMutexSpecRejectsMalformed(t *testing.T) {
	enter := func(i ioa.Loc) ioa.Action { return ioa.EnvOutput(ActNameEnter, i, "1") }
	exit := func(i ioa.Loc) ioa.Action { return ioa.EnvOutput(ActNameExit, i, "1") }
	spec := MutexSpec{N: 2}

	if err := spec.Check(trace.T{enter(0), enter(0)}); err == nil {
		t.Error("double enter accepted")
	}
	if err := spec.Check(trace.T{exit(0)}); err == nil {
		t.Error("exit without enter accepted")
	}
	if err := spec.Check(trace.T{ioa.Crash(0), enter(0)}); err == nil {
		t.Error("enter after crash accepted")
	}
	// Permanent overlap: both inside at the very end.
	overlap := trace.T{enter(0), enter(1)}
	if err := spec.Check(overlap); err == nil {
		t.Error("trailing mutual occupancy accepted")
	}
	// Transient overlap followed by a clean exclusive suffix passes.
	ok := trace.T{
		enter(0), enter(1), exit(0), exit(1), // messy prefix
		enter(0), exit(0), enter(1), exit(1), // clean suffix
	}
	if err := spec.Check(ok); err != nil {
		t.Errorf("eventually exclusive trace rejected: %v", err)
	}
}

func TestMutexProcsRejectsLeaderDetector(t *testing.T) {
	if _, err := MutexProcs(3, afd.FamilyOmega); err == nil {
		t.Fatal("mutex needs suspicion sets; Ω must be refused")
	}
}

func TestMutexExclusionViolationsCounter(t *testing.T) {
	enter := func(i ioa.Loc) ioa.Action { return ioa.EnvOutput(ActNameEnter, i, "1") }
	exit := func(i ioa.Loc) ioa.Action { return ioa.EnvOutput(ActNameExit, i, "1") }
	tr := trace.T{enter(0), enter(1), exit(1), exit(0), enter(0), exit(0)}
	if got := MutexExclusionViolations(tr); got != 1 {
		t.Fatalf("violations = %d, want 1 (the enter(1) instant)", got)
	}
}
