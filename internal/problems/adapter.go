package problems

import "repro/internal/trace"

// The Checker methods below adapt each problem specification to the uniform
// run-verdict signature func(trace.T) error shared with afd.Checker and
// consensus.Spec.Checker, so sweep drivers (the chaos harness, cmd/chaos)
// can treat "run the system, then judge the trace" identically for every
// specification in the repository.  Each checker already filters the full
// trace by action kind internally, so no projection is needed here.

// Checker returns the uniform-verdict adapter for leader election.
func (p LeaderElection) Checker(complete bool) func(trace.T) error {
	return func(t trace.T) error { return p.Check(t, complete) }
}

// Checker returns the uniform-verdict adapter for k-set agreement.
func (p KSetAgreement) Checker(complete bool) func(trace.T) error {
	return func(t trace.T) error { return p.Check(t, complete) }
}

// Checker returns the uniform-verdict adapter for non-blocking atomic commit.
func (p NBAC) Checker(complete bool) func(trace.T) error {
	return func(t trace.T) error { return p.Check(t, complete) }
}

// Checker returns the uniform-verdict adapter for uniform reliable broadcast.
func (u URBSpec) Checker(complete bool) func(trace.T) error {
	return func(t trace.T) error { return u.Check(t, complete) }
}
