package problems

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

// TestConsensusViaParticipant is the first Section-10.1 reduction: the
// participant oracle suffices to solve (multi-valued) consensus, including
// with crashes of non-answered locations.
func TestConsensusViaParticipant(t *testing.T) {
	const n = 3
	for _, seed := range []int64{-1, 1, 2, 3} {
		autos := ConsensusViaParticipantProcs(n)
		autos = append(autos, system.Channels(n)...)
		autos = append(autos, NewParticipantOracle(n))
		autos = append(autos, system.ConsensusEnvsFixed([]int{1, 0, 1})...)
		autos = append(autos, system.NewCrash(system.NoFaults()))
		sys, err := ioa.NewSystem(autos...)
		if err != nil {
			t.Fatal(err)
		}
		opts := sched.Options{MaxSteps: 10_000}
		if seed >= 0 {
			sched.Random(sys, seed, opts)
		} else {
			sched.RoundRobin(sys, opts)
		}
		full := sys.Trace()
		if err := CheckParticipant(full); err != nil {
			t.Fatalf("seed %d: oracle misbehaved: %v", seed, err)
		}
		decs := consensus.Decisions(full)
		if len(decs) != n {
			t.Fatalf("seed %d: %d decisions, want %d", seed, len(decs), n)
		}
		for _, d := range decs {
			if d.Payload != decs[0].Payload {
				t.Fatalf("seed %d: agreement violated: %v", seed, decs)
			}
		}
		// Validity: the decision is one of the proposals.
		if decs[0].Payload != "0" && decs[0].Payload != "1" {
			t.Fatalf("seed %d: decision %q not a proposal", seed, decs[0].Payload)
		}
	}
}

// TestParticipantViaConsensus is the converse reduction: a consensus
// solution (the CT algorithm with Ω) answers participant queries.
func TestParticipantViaConsensus(t *testing.T) {
	const n = 3
	procs, err := ParticipantViaConsensusProcs(n, afd.FamilyOmega)
	if err != nil {
		t.Fatal(err)
	}
	d, err := afd.Lookup(afd.FamilyOmega, n)
	if err != nil {
		t.Fatal(err)
	}
	autos := procs
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, QuerierEnvs(n, 2)...)
	autos = append(autos, d.Automaton(n))
	autos = append(autos, system.NewCrash(system.NoFaults()))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		t.Fatal(err)
	}
	sched.RoundRobin(sys, sched.Options{MaxSteps: 20_000})
	full := sys.Trace()

	answers := trace.Project(full, func(a ioa.Action) bool {
		return a.Kind == ioa.KindFD && a.Name == FamilyParticipant
	})
	if len(answers) != 2*n {
		t.Fatalf("%d answers, want %d (2 per location)", len(answers), 2*n)
	}
	if err := CheckParticipant(full); err != nil {
		t.Fatalf("participant property violated: %v", err)
	}
	// No consensus decide outputs leak: the hosted decision is hidden.
	if leaks := consensus.Decisions(full); len(leaks) != 0 {
		t.Fatalf("hosted consensus decisions leaked: %v", leaks)
	}
}

func TestQuerierEnv(t *testing.T) {
	q := NewQuerierEnv(1, 2)
	a, ok := q.Enabled(0)
	if !ok || a != Query(1) {
		t.Fatalf("Enabled = %v", a)
	}
	q.Fire(a)
	q.Fire(a)
	if _, ok := q.Enabled(0); ok {
		t.Fatal("query budget exceeded")
	}
	q2 := NewQuerierEnv(0, 5)
	q2.Input(ioa.Crash(0))
	if _, ok := q2.Enabled(0); ok {
		t.Fatal("crashed querier still querying")
	}
	if !q2.Accepts(ioa.FDOutput(FamilyParticipant, 0, "1")) {
		t.Fatal("querier must absorb answers at its location")
	}
	if q2.Accepts(ioa.FDOutput(FamilyParticipant, 1, "1")) {
		t.Fatal("querier must ignore other locations' answers")
	}
}
