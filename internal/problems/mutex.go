package problems

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/trace"
)

// This file implements a *long-lived* crash problem — mutual exclusion under
// eventual weak exclusion (◇-mutex) — and a ◇P-based solution.  It is the
// foil to Section 7.3: bounded problems have no representative AFD
// (Theorem 21), while long-lived problems like this one are exactly where
// representative detectors live (the paper's Lemma 20 examples: eventually
// fair schedulers, dining under eventual weak exclusion [29, 27, 16]).
//
// Problem (◇-mutex over n locations).  Outputs are enter(k)i and exit(k)i
// events (k a round counter).  Admissible traces satisfy:
//
//	well-formedness – at each location, enters and exits strictly
//	                  alternate, starting with enter;
//	eventual exclusion – there is a suffix in which no two locations are
//	                  simultaneously inside the critical section;
//	progress        – every live location enters infinitely often (finite
//	                  reading: at least `window` enters in the suffix).
//
// ◇-mutex is unbounded: its solving automata emit unboundedly many outputs,
// so the Section-7.3 bounded-length classifier refutes any finite bound —
// see TestMutexIsNotBounded.
//
// Algorithm (token circulation over ◇P).  The token carries the round
// number.  The holder enters, exits, and forwards the token to the next
// location it does not currently suspect.  A non-holder that suspects every
// location it believes could hold the token regenerates it.  While ◇P is
// inaccurate, two tokens may coexist and exclusion can be violated; once
// suspicions stabilize, exactly one token survives (higher round wins) —
// eventual exclusion, which is precisely the guarantee class that makes ◇P
// representative for such problems.

// Mutex action names.
const (
	ActNameEnter = "enter"
	ActNameExit  = "exit"
)

// MutexSpec is the ◇-mutex checker.
type MutexSpec struct {
	N int
	// Window is the per-live-location number of enters the stable suffix
	// must contain (default 1).
	Window int
}

func (m MutexSpec) window() int {
	if m.Window <= 0 {
		return 1
	}
	return m.Window
}

// Check verifies a finite ◇-mutex trace (enter/exit/crash events).
func (m MutexSpec) Check(t trace.T) error {
	// Well-formedness: strict alternation per location.
	inside := make(map[ioa.Loc]bool)
	crashed := make(map[ioa.Loc]bool)
	// For eventual exclusion: find the last index at which two locations
	// were simultaneously inside.
	lastViolation := -1
	entersAfter := make(map[ioa.Loc]int)
	for idx, a := range t {
		switch {
		case a.Kind == ioa.KindCrash:
			crashed[a.Loc] = true
			inside[a.Loc] = false // a crashed location no longer occupies the CS
		case a.Kind == ioa.KindEnvOut && a.Name == ActNameEnter:
			if crashed[a.Loc] {
				return fmt.Errorf("problems: enter at %v after crash", a.Loc)
			}
			if inside[a.Loc] {
				return fmt.Errorf("problems: double enter at %v (event %d)", a.Loc, idx)
			}
			inside[a.Loc] = true
		case a.Kind == ioa.KindEnvOut && a.Name == ActNameExit:
			if crashed[a.Loc] {
				return fmt.Errorf("problems: exit at %v after crash", a.Loc)
			}
			if !inside[a.Loc] {
				return fmt.Errorf("problems: exit without enter at %v (event %d)", a.Loc, idx)
			}
			inside[a.Loc] = false
		}
		// Track simultaneous occupancy.
		occupied := 0
		for _, in := range inside {
			if in {
				occupied++
			}
		}
		if occupied > 1 {
			lastViolation = idx
		}
	}
	// Progress + eventual exclusion: after the last violation, every live
	// location enters at least window times.
	for idx, a := range t {
		if idx > lastViolation && a.Kind == ioa.KindEnvOut && a.Name == ActNameEnter {
			entersAfter[a.Loc]++
		}
	}
	live := trace.Live(t, m.N)
	for l := range live {
		if entersAfter[l] < m.window() {
			return fmt.Errorf("problems: live location %v has %d enters in the exclusive suffix, want ≥ %d",
				l, entersAfter[l], m.window())
		}
	}
	return nil
}

// mutexMachine is the token-circulation algorithm at one location.
type mutexMachine struct {
	system.NopMachine
	n    int
	self ioa.Loc
	susp *consensus.SetSuspector

	hasToken bool
	round    int     // round of the strongest token claim seen (or held)
	origin   ioa.Loc // tie-break of the claim: the location that last used it
	// lastHolder is our best knowledge of who holds the token, and
	// lastSender the location that forwarded it there: if the sender
	// crashed, the forwarded token may never have entered the channel, so
	// the addressee regenerates on suspicion of the sender.
	lastHolder ioa.Loc
	lastSender ioa.Loc
}

// MutexProcs returns the ◇P-based ◇-mutex algorithm: location 0 starts with
// the token.
func MutexProcs(n int, family string) ([]ioa.Automaton, error) {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		susp, err := consensus.SuspectorFor(family)
		if err != nil {
			return nil, err
		}
		set, ok := susp.(*consensus.SetSuspector)
		if !ok {
			return nil, fmt.Errorf("problems: mutex needs a suspicion-set detector, got %q", family)
		}
		m := &mutexMachine{n: n, self: ioa.Loc(i), susp: set, lastHolder: 0, lastSender: 0}
		if i == 0 {
			m.hasToken = true
		}
		out[i] = system.NewProc("mutex", ioa.Loc(i), n, m, []string{family}, nil)
	}
	return out, nil
}

// OnStart: the initial holder performs its first critical section.
func (m *mutexMachine) OnStart(e *system.Effects) {
	if m.hasToken {
		m.useToken(e)
	}
}

// claimLess orders token claims: (r1,o1) < (r2,o2) lexicographically.
// Duplicate tokens (a ◇P-inaccuracy artifact) therefore always carry
// strictly ordered claims once their rounds tie, and the weaker one dies —
// on arrival at any location that knows the stronger claim, or in the hands
// of its own holder when the stronger claim's announcement lands.
func claimLess(r1 int, o1 ioa.Loc, r2 int, o2 ioa.Loc) bool {
	return r1 < r2 || (r1 == r2 && o1 < o2)
}

// useToken performs enter/exit and forwards the token to the next
// unsuspected location (possibly itself, in which case it goes again on the
// next detector input).
func (m *mutexMachine) useToken(e *system.Effects) {
	m.round++
	m.origin = m.self
	e.Output(ActNameEnter, strconv.Itoa(m.round))
	e.Output(ActNameExit, strconv.Itoa(m.round))
	// Forward to the next location we do not suspect, announcing the new
	// holder to everyone so that token loss is detectable (the announce is
	// what lets the first live successor of a dead holder regenerate).
	for d := 1; d <= m.n; d++ {
		next := ioa.Loc((int(m.self) + d) % m.n)
		if next == m.self {
			// Everyone else suspected: keep the token; we will go again
			// on the next detector input.
			m.lastHolder = m.self
			return
		}
		if !m.susp.Suspects(next) {
			m.hasToken = false
			m.lastHolder = next
			e.Broadcast(m.n, fmt.Sprintf("H|%d|%d|%d|%d", m.round, int(m.origin), int(m.self), int(next)))
			e.Send(next, fmt.Sprintf("T|%d|%d", m.round, int(m.origin)))
			return
		}
	}
}

// OnReceive: accept a token whose round is at least as new as anything we
// have seen (stale duplicate tokens die here once suspicions stabilize);
// track holder announcements.
func (m *mutexMachine) OnReceive(_ ioa.Loc, msg string, e *system.Effects) {
	switch {
	case strings.HasPrefix(msg, "T|"):
		parts := strings.SplitN(msg[2:], "|", 2)
		if len(parts) != 2 {
			return
		}
		r, err1 := strconv.Atoi(parts[0])
		o, err2 := strconv.Atoi(parts[1])
		if err1 != nil || err2 != nil {
			return
		}
		if claimLess(r, ioa.Loc(o), m.round, m.origin) {
			return // weaker claim: the duplicate token dies here
		}
		m.round, m.origin = r, ioa.Loc(o)
		m.hasToken = true
		m.lastHolder = m.self
		m.useToken(e)
	case strings.HasPrefix(msg, "H|"):
		parts := strings.SplitN(msg[2:], "|", 4)
		if len(parts) != 4 {
			return
		}
		r, err1 := strconv.Atoi(parts[0])
		o, err2 := strconv.Atoi(parts[1])
		from, err3 := strconv.Atoi(parts[2])
		to, err4 := strconv.Atoi(parts[3])
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return
		}
		if claimLess(r, ioa.Loc(o), m.round, m.origin) {
			return // news about a weaker claim: ignore
		}
		if m.hasToken && claimLess(m.round, m.origin, r, ioa.Loc(o)) {
			m.hasToken = false // our token is the weaker duplicate: drop it
		}
		m.round, m.origin = r, ioa.Loc(o)
		if !m.hasToken {
			m.lastHolder = ioa.Loc(to)
			m.lastSender = ioa.Loc(from)
		}
	}
}

// OnFD: refresh suspicions; if we hold the token (because everyone was
// suspected), try again; if the believed holder is now suspected, regenerate
// the token — the ◇P-inaccuracy window where duplicates can arise.
func (m *mutexMachine) OnFD(a ioa.Action, e *system.Effects) {
	m.susp.Update(a)
	if m.hasToken {
		m.useToken(e)
		return
	}
	switch {
	case m.susp.Suspects(m.lastHolder) && m.nextAliveFrom(m.lastHolder) == m.self:
		// We are the first live successor of the (believed-dead) holder:
		// regenerate.
		m.regenerate(e)
	case m.lastHolder == m.self && m.susp.Suspects(m.lastSender):
		// A token addressed to us whose forwarder crashed: it may never
		// have entered the channel.  Regenerate; if it was in flight after
		// all, the duplicate is transient (◇-exclusion) and the stale copy
		// dies on arrival (lower round).
		m.regenerate(e)
	}
}

func (m *mutexMachine) regenerate(e *system.Effects) {
	m.hasToken = true
	m.round++ // the regenerated token outranks the one it replaces
	m.lastHolder = m.self
	m.lastSender = m.self
	m.useToken(e)
}

// nextAliveFrom returns the first location after `from` (cyclically) that we
// do not suspect.
func (m *mutexMachine) nextAliveFrom(from ioa.Loc) ioa.Loc {
	for d := 1; d <= m.n; d++ {
		next := ioa.Loc((int(from) + d) % m.n)
		if !m.susp.Suspects(next) {
			return next
		}
	}
	return m.self
}

// Clone implements system.Machine.
func (m *mutexMachine) Clone() system.Machine {
	c := *m
	c.susp = m.susp.Clone().(*consensus.SetSuspector)
	return &c
}

// Encode implements system.Machine.
func (m *mutexMachine) Encode() string {
	return fmt.Sprintf("MX%v|t%t|r%d.%v|h%v|s%v|%s",
		m.self, m.hasToken, m.round, m.origin, m.lastHolder, m.lastSender, m.susp.Encode())
}

// MutexRounds summarizes enters per location, for experiment tables.
func MutexRounds(t trace.T) map[ioa.Loc]int {
	out := make(map[ioa.Loc]int)
	for _, a := range t {
		if a.Kind == ioa.KindEnvOut && a.Name == ActNameEnter {
			out[a.Loc]++
		}
	}
	return out
}

// MutexExclusionViolations counts events at which two or more locations were
// simultaneously inside the critical section — nonzero only during the
// detector's inaccuracy window.
func MutexExclusionViolations(t trace.T) int {
	inside := make(map[ioa.Loc]bool)
	violations := 0
	for _, a := range t {
		switch {
		case a.Kind == ioa.KindCrash:
			inside[a.Loc] = false
		case a.Kind == ioa.KindEnvOut && a.Name == ActNameEnter:
			inside[a.Loc] = true
		case a.Kind == ioa.KindEnvOut && a.Name == ActNameExit:
			inside[a.Loc] = false
		}
		occupied := 0
		for _, in := range inside {
			if in {
				occupied++
			}
		}
		if occupied > 1 {
			violations++
		}
	}
	return violations
}
