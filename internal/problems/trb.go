package problems

import (
	"fmt"
	"strings"

	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/trace"
)

// Terminating Reliable Broadcast (TRB), one of Section 7.3's examples of a
// bounded problem.  A designated sender s may broadcast one value; every
// live location must deliver either that value or the distinguished "sender
// faulty" verdict SF, all agreeing:
//
//	termination – every live location delivers exactly once;
//	agreement   – all deliveries carry the same payload;
//	validity    – if the sender is live, the delivered payload is its value;
//	integrity   – SF may be delivered only if the sender is faulty.
//
// TRB is solvable with P (strong accuracy makes "suspect the sender" proof
// of crash): each location waits for the sender's value or the sender's
// suspicion, then runs a consensus (the CT96 S-algorithm, hosted like
// NBAC's) on "value or SF" and delivers the decision.
//
// TRB is bounded (one output per location): its traces feed the Section-7.3
// classifiers, in contrast to the long-lived ◇-mutex.

// TRB action names and the sender-faulty verdict.
const (
	ActNameTRBBcast   = "trb-bcast"
	ActNameTRBDeliver = "trb-deliver"
	TRBSenderFaulty   = "SF"
)

// TRBSpec checks TRB traces for a designated sender.
type TRBSpec struct {
	N      int
	Sender ioa.Loc
}

// Check verifies a finite TRB trace over bcast/deliver/crash events.
func (s TRBSpec) Check(t trace.T, complete bool) error {
	crashed := make(map[ioa.Loc]bool)
	var sent string
	hasSent := false
	delivered := make(map[ioa.Loc]string)
	for _, a := range t {
		switch {
		case a.Kind == ioa.KindCrash:
			crashed[a.Loc] = true
		case a.Kind == ioa.KindEnvIn && a.Name == ActNameTRBBcast:
			if a.Loc != s.Sender {
				return fmt.Errorf("problems: broadcast at %v, but the sender is %v", a.Loc, s.Sender)
			}
			if hasSent {
				return fmt.Errorf("problems: sender broadcast twice")
			}
			sent, hasSent = a.Payload, true
		case a.Kind == ioa.KindEnvOut && a.Name == ActNameTRBDeliver:
			if crashed[a.Loc] {
				return fmt.Errorf("problems: deliver at %v after crash", a.Loc)
			}
			if _, dup := delivered[a.Loc]; dup {
				return fmt.Errorf("problems: %v delivered twice (termination)", a.Loc)
			}
			delivered[a.Loc] = a.Payload
		}
	}
	// Agreement.
	var verdict string
	first := true
	for l, v := range delivered {
		if first {
			verdict, first = v, false
			continue
		}
		if v != verdict {
			return fmt.Errorf("problems: deliveries disagree (%q at %v vs %q)", v, l, verdict)
		}
	}
	if !first {
		// Integrity and validity.
		if verdict == TRBSenderFaulty {
			if !crashed[s.Sender] && complete {
				return fmt.Errorf("problems: SF delivered but the sender is live (integrity)")
			}
		} else if !hasSent || verdict != sent {
			return fmt.Errorf("problems: delivered %q, sender broadcast %q (validity)", verdict, sent)
		}
	}
	if complete {
		live := trace.Live(t, s.N)
		for l := range live {
			if _, ok := delivered[l]; !ok {
				return fmt.Errorf("problems: live location %v never delivered (termination)", l)
			}
		}
	}
	return nil
}

// trbMachine hosts the wait-then-consensus construction.
type trbMachine struct {
	n      int
	self   ioa.Loc
	sender ioa.Loc
	susp   *consensus.SetSuspector
	ct     *consensus.SMachine

	// got is the sender's value once known ("" before); senderBcast marks
	// that our own location is the sender and has broadcast.
	got      string
	hasGot   bool
	proposed bool
	done     bool
}

var _ system.Machine = (*trbMachine)(nil)

// TRBProcs returns the P-based TRB algorithm with the given sender.
func TRBProcs(n int, sender ioa.Loc, family string) ([]ioa.Automaton, error) {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		susp, err := consensus.SuspectorFor(family)
		if err != nil {
			return nil, err
		}
		set, ok := susp.(*consensus.SetSuspector)
		if !ok {
			return nil, fmt.Errorf("problems: TRB needs a suspicion-set detector, got %q", family)
		}
		ctSusp, _ := consensus.SuspectorFor(family)
		m := &trbMachine{
			n: n, self: ioa.Loc(i), sender: sender, susp: set,
			ct: consensus.NewSMachine(n, ioa.Loc(i), ctSusp),
		}
		out[i] = system.NewProc("trb", ioa.Loc(i), n, m, []string{family}, []string{ActNameTRBBcast})
	}
	return out, nil
}

// OnStart implements system.Machine.
func (m *trbMachine) OnStart(*system.Effects) {}

// OnEnvInput implements system.Machine: the sender's broadcast.
func (m *trbMachine) OnEnvInput(name, payload string, e *system.Effects) {
	if name != ActNameTRBBcast || m.self != m.sender || m.hasGot {
		return
	}
	m.got, m.hasGot = payload, true
	e.Broadcast(m.n, "V|"+payload)
	m.maybePropose(e)
}

// OnReceive implements system.Machine.
func (m *trbMachine) OnReceive(from ioa.Loc, msg string, e *system.Effects) {
	if strings.HasPrefix(msg, "V|") {
		if !m.hasGot {
			m.got, m.hasGot = msg[2:], true
		}
		m.maybePropose(e)
		return
	}
	m.host(e, func(inner *system.Effects) { m.ct.OnReceive(from, msg, inner) })
}

// OnFD implements system.Machine.
func (m *trbMachine) OnFD(a ioa.Action, e *system.Effects) {
	m.susp.Update(a)
	m.host(e, func(inner *system.Effects) { m.ct.OnFD(a, inner) })
	m.maybePropose(e)
}

// maybePropose completes the phase-1 wait: the sender's value has arrived,
// or the sender is suspected (with P: has crashed).
func (m *trbMachine) maybePropose(e *system.Effects) {
	if m.proposed {
		return
	}
	proposal := ""
	switch {
	case m.hasGot:
		proposal = m.got
	case m.susp.Suspects(m.sender):
		proposal = TRBSenderFaulty
	default:
		return
	}
	m.proposed = true
	m.host(e, func(inner *system.Effects) {
		m.ct.OnEnvInput(system.ActNamePropose, proposal, inner)
	})
}

// host forwards the embedded consensus's sends; its decide output becomes
// the TRB delivery.
func (m *trbMachine) host(e *system.Effects, f func(*system.Effects)) {
	inner := system.NewEffects(m.self)
	f(inner)
	for _, a := range inner.Pending() {
		if a.Kind == ioa.KindEnvOut && a.Name == system.ActNameDecide {
			continue
		}
		e.Emit(a)
	}
	if m.done {
		return
	}
	if v, ok := m.ct.Decided(); ok {
		m.done = true
		e.Output(ActNameTRBDeliver, v)
	}
}

// Clone implements system.Machine.
func (m *trbMachine) Clone() system.Machine {
	return &trbMachine{
		n: m.n, self: m.self, sender: m.sender,
		susp: m.susp.Clone().(*consensus.SetSuspector),
		ct:   m.ct.Clone().(*consensus.SMachine),
		got:  m.got, hasGot: m.hasGot, proposed: m.proposed, done: m.done,
	}
}

// Encode implements system.Machine.
func (m *trbMachine) Encode() string {
	return fmt.Sprintf("TR%v|g%t:%s|p%t|d%t|%s|%s",
		m.self, m.hasGot, m.got, m.proposed, m.done, m.susp.Encode(), m.ct.Encode())
}

// TRBSenderEnv issues the sender's single broadcast.
type TRBSenderEnv struct {
	id      ioa.Loc
	value   string
	stopped bool
}

var _ ioa.Automaton = (*TRBSenderEnv)(nil)

// NewTRBSenderEnv returns the sender environment.
func NewTRBSenderEnv(id ioa.Loc, value string) *TRBSenderEnv {
	return &TRBSenderEnv{id: id, value: value}
}

// Name implements ioa.Automaton.
func (b *TRBSenderEnv) Name() string { return fmt.Sprintf("trbsender[%v]", b.id) }

// Accepts implements ioa.Automaton.
func (b *TRBSenderEnv) Accepts(a ioa.Action) bool {
	if a.Loc != b.id {
		return false
	}
	return a.Kind == ioa.KindCrash || (a.Kind == ioa.KindEnvOut && a.Name == ActNameTRBDeliver)
}

// Input implements ioa.Automaton.
func (b *TRBSenderEnv) Input(a ioa.Action) {
	if a.Kind == ioa.KindCrash {
		b.stopped = true
	}
}

// NumTasks implements ioa.Automaton.
func (b *TRBSenderEnv) NumTasks() int { return 1 }

// TaskLabel implements ioa.Automaton.
func (b *TRBSenderEnv) TaskLabel(int) string { return "trb-bcast" }

// Enabled implements ioa.Automaton.
func (b *TRBSenderEnv) Enabled(int) (ioa.Action, bool) {
	if b.stopped {
		return ioa.Action{}, false
	}
	return ioa.EnvInput(ActNameTRBBcast, b.id, b.value), true
}

// Fire implements ioa.Automaton.
func (b *TRBSenderEnv) Fire(ioa.Action) { b.stopped = true }

// Clone implements ioa.Automaton.
func (b *TRBSenderEnv) Clone() ioa.Automaton {
	c := *b
	return &c
}

// Encode implements ioa.Automaton.
func (b *TRBSenderEnv) Encode() string {
	return fmt.Sprintf("TS%v|%s|%t", b.id, b.value, b.stopped)
}
