package problems

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/trace"
)

func prop(i ioa.Loc, v string) ioa.Action { return ioa.EnvInput(system.ActNamePropose, i, v) }
func dec(i ioa.Loc, v string) ioa.Action  { return ioa.EnvOutput(system.ActNameDecide, i, v) }
func elect(i ioa.Loc, l string) ioa.Action {
	return ioa.EnvOutput(ActNameElect, i, l)
}

func TestLeaderElectionChecker(t *testing.T) {
	p := LeaderElection{N: 2}
	good := trace.T{elect(0, "1"), elect(1, "1")}
	if err := p.Check(good, true); err != nil {
		t.Errorf("good trace rejected: %v", err)
	}
	bad := []struct {
		name string
		t    trace.T
	}{
		{"disagree", trace.T{elect(0, "0"), elect(1, "1")}},
		{"twice", trace.T{elect(0, "1"), elect(0, "1"), elect(1, "1")}},
		{"faulty winner", trace.T{ioa.Crash(1), elect(0, "1")}},
		{"after crash", trace.T{ioa.Crash(0), elect(0, "0"), elect(1, "0")}},
		{"missing", trace.T{elect(0, "0")}},
	}
	for _, tc := range bad {
		if err := p.Check(tc.t, true); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// Incomplete prefixes allow missing decisions.
	if err := p.Check(trace.T{elect(0, "0")}, false); err != nil {
		t.Errorf("prefix rejected: %v", err)
	}
}

func TestKSetAgreementChecker(t *testing.T) {
	p := KSetAgreement{N: 3, K: 2}
	good := trace.T{
		prop(0, "a"), prop(1, "b"), prop(2, "c"),
		dec(0, "a"), dec(1, "b"), dec(2, "a"),
	}
	if err := p.Check(good, true); err != nil {
		t.Errorf("2 values within k=2 rejected: %v", err)
	}
	threeVals := trace.T{
		prop(0, "a"), prop(1, "b"), prop(2, "c"),
		dec(0, "a"), dec(1, "b"), dec(2, "c"),
	}
	if err := p.Check(threeVals, true); err == nil {
		t.Error("3 values with k=2 accepted")
	}
	if err := (KSetAgreement{N: 3, K: 3}).Check(threeVals, true); err != nil {
		t.Errorf("3 values with k=3 rejected: %v", err)
	}
	unproposed := trace.T{prop(0, "a"), prop(1, "a"), prop(2, "a"), dec(0, "z"), dec(1, "a"), dec(2, "a")}
	if err := p.Check(unproposed, true); err == nil {
		t.Error("unproposed decision accepted")
	}
}

func TestNBACChecker(t *testing.T) {
	p := NBAC{N: 2}
	vote := func(i ioa.Loc, v string) ioa.Action { return ioa.EnvInput(ActNameVote, i, v) }
	out := func(i ioa.Loc, v string) ioa.Action { return ioa.EnvOutput(ActNameOutcome, i, v) }

	commit := trace.T{vote(0, VoteYes), vote(1, VoteYes), out(0, OutcomeCommit), out(1, OutcomeCommit)}
	if err := p.Check(commit, true); err != nil {
		t.Errorf("all-yes commit rejected: %v", err)
	}
	badCommit := trace.T{vote(0, VoteYes), vote(1, VoteNo), out(0, OutcomeCommit), out(1, OutcomeCommit)}
	if err := p.Check(badCommit, true); err == nil {
		t.Error("commit with a no vote accepted")
	}
	abortOK := trace.T{vote(0, VoteYes), vote(1, VoteNo), out(0, OutcomeAbort), out(1, OutcomeAbort)}
	if err := p.Check(abortOK, true); err != nil {
		t.Errorf("abort with a no vote rejected: %v", err)
	}
	badAbort := trace.T{vote(0, VoteYes), vote(1, VoteYes), out(0, OutcomeAbort), out(1, OutcomeAbort)}
	if err := p.Check(badAbort, true); err == nil {
		t.Error("gratuitous abort accepted")
	}
	abortAfterCrash := trace.T{vote(0, VoteYes), ioa.Crash(1), out(0, OutcomeAbort)}
	if err := p.Check(abortAfterCrash, true); err != nil {
		t.Errorf("abort after crash rejected: %v", err)
	}
	disagree := trace.T{vote(0, VoteYes), vote(1, VoteNo), out(0, OutcomeAbort), out(1, OutcomeCommit)}
	if err := p.Check(disagree, true); err == nil {
		t.Error("disagreeing outcomes accepted")
	}
}

func TestBoundedWitness(t *testing.T) {
	le := LeaderElection{N: 2}
	isOut := func(a ioa.Action) bool { return a.Kind == ioa.KindEnvOut && a.Name == ActNameElect }
	w := Witness{
		Traces: []trace.T{
			{elect(0, "0"), elect(1, "0")},
			{elect(0, "1"), ioa.Crash(1)},
		},
		IsTrace:  func(t trace.T) error { return le.Check(t, false) },
		IsOutput: isOut,
	}
	if err := w.CheckCrashIndependence(); err != nil {
		t.Errorf("leader election should be crash independent: %v", err)
	}
	maxSeen, err := w.CheckBoundedLength(2)
	if err != nil {
		t.Errorf("bounded length: %v", err)
	}
	if maxSeen != 2 {
		t.Errorf("maxlen = %d, want 2", maxSeen)
	}
	if _, err := w.CheckBoundedLength(1); err == nil {
		t.Error("bound 1 should fail with 2 outputs")
	}
}

func TestBoundedWitnessRefutesLongLived(t *testing.T) {
	// A "mutex-like" long-lived stream of grant outputs refutes any fixed
	// bound: the classifier correctly rejects the boundedness claim.
	grants := make(trace.T, 0, 100)
	for i := 0; i < 100; i++ {
		grants = append(grants, ioa.EnvOutput("grant", 0, "x"))
	}
	w := Witness{
		Traces:   []trace.T{grants},
		IsTrace:  func(trace.T) error { return nil },
		IsOutput: func(a ioa.Action) bool { return a.Name == "grant" },
	}
	if _, err := w.CheckBoundedLength(10); err == nil {
		t.Error("long-lived trace accepted as bounded")
	}
}

func TestQuiescentCut(t *testing.T) {
	tr := trace.T{
		ioa.Send(0, 1, "a"),
		ioa.Send(1, 0, "b"),
		ioa.Receive(1, 0, "a"),
		ioa.Send(0, 1, "c"),
	}
	pending := PendingMessages(tr)
	if len(pending) != 2 {
		t.Fatalf("pending channels = %d, want 2", len(pending))
	}
	cut := QuiescentCut(tr, pending)
	if len(cut) != len(tr)+2 {
		t.Fatalf("cut has %d events, want %d", len(cut), len(tr)+2)
	}
	// All pending messages delivered: recomputing pending must be empty.
	if rem := PendingMessages(cut); len(rem) != 0 {
		t.Fatalf("quiescent cut leaves %d channels pending", len(rem))
	}
	// Lexicographic channel order: (0,1) before (1,0).
	if cut[len(cut)-2] != (ioa.Receive(1, 0, "c")) {
		t.Errorf("expected receive of c first, got %v", cut[len(cut)-2])
	}
	if cut[len(cut)-1] != (ioa.Receive(0, 1, "b")) {
		t.Errorf("expected receive of b last, got %v", cut[len(cut)-1])
	}
}

func TestParticipantOracleSemantics(t *testing.T) {
	o := NewParticipantOracle(3)
	if _, ok := o.Enabled(0); ok {
		t.Fatal("no queries, no answers")
	}
	o.Input(Query(2))
	o.Input(Query(0))
	act, ok := o.Enabled(0)
	if !ok || act.Loc != 2 || act.Payload != "2" {
		t.Fatalf("first answer = %v, want chosen=2 at loc 2", act)
	}
	o.Fire(act)
	act, _ = o.Enabled(0)
	if act.Loc != 0 || act.Payload != "2" {
		t.Fatalf("second answer = %v, want chosen=2 at loc 0", act)
	}
	// Crashed queriers are skipped.
	o.Input(Query(1))
	o.Input(ioa.Crash(0))
	act, ok = o.Enabled(0)
	if !ok || act.Loc != 1 {
		t.Fatalf("answer after crash = %v, want loc 1", act)
	}
}

func TestCheckParticipant(t *testing.T) {
	good := trace.T{
		Query(1), Query(0),
		ioa.FDOutput(FamilyParticipant, 1, "1"),
		ioa.FDOutput(FamilyParticipant, 0, "1"),
	}
	if err := CheckParticipant(good); err != nil {
		t.Errorf("good participant trace rejected: %v", err)
	}
	disagree := trace.T{
		Query(0), Query(1),
		ioa.FDOutput(FamilyParticipant, 0, "0"),
		ioa.FDOutput(FamilyParticipant, 1, "1"),
	}
	if err := CheckParticipant(disagree); err == nil {
		t.Error("disagreeing answers accepted")
	}
	nonParticipant := trace.T{
		Query(0),
		ioa.FDOutput(FamilyParticipant, 0, "2"),
	}
	if err := CheckParticipant(nonParticipant); err == nil {
		t.Error("answer naming a non-querier accepted")
	}
}
