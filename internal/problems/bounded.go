package problems

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// This file makes the Section-7.3 bounded-problem formalism executable.  A
// crash problem P is bounded iff some automaton U solving it is (a) crash
// independent — deleting the crash events from any finite trace of U leaves
// a trace of U — and (b) of bounded length — at most b output events occur
// in any trace.  Theorem 21 shows bounded problems that are unsolvable
// asynchronously have no representative AFD.
//
// Witness carries a trace sample of a solving automaton; the classifiers
// test the two defining properties on the sample.  They are necessarily
// one-sided: a classifier can *refute* boundedness/crash-independence on
// evidence, and can confirm it up to the sample, which is what an
// executable rendition of a ∀-property over infinite trace sets can do.

// Witness is a finite set of finite traces of a candidate solving
// automaton, together with a membership oracle for the automaton's trace
// set (typically a problem checker in prefix mode).
type Witness struct {
	// Traces are sample traces of the automaton.
	Traces []trace.T
	// IsTrace decides whether a sequence is a trace of the automaton.
	IsTrace func(trace.T) error
	// IsOutput classifies the problem's output events.
	IsOutput func(ioa.Action) bool
}

// CheckCrashIndependence verifies, for every sample trace, that deleting
// exactly the crash events yields a trace the oracle accepts (the Section
// 7.3 definition of crash independence, on the sample).
func (w Witness) CheckCrashIndependence() error {
	for i, t := range w.Traces {
		stripped := trace.Project(t, func(a ioa.Action) bool { return a.Kind != ioa.KindCrash })
		if err := w.IsTrace(stripped); err != nil {
			return fmt.Errorf("problems: trace %d not crash independent: %w", i, err)
		}
	}
	return nil
}

// CheckBoundedLength verifies every sample trace has at most bound output
// events and returns the maximum observed (the maxlen of Proposition 22).
func (w Witness) CheckBoundedLength(bound int) (int, error) {
	maxSeen := 0
	for i, t := range w.Traces {
		n := trace.Count(t, w.IsOutput)
		if n > maxSeen {
			maxSeen = n
		}
		if n > bound {
			return maxSeen, fmt.Errorf("problems: trace %d has %d outputs > bound %d", i, n, bound)
		}
	}
	return maxSeen, nil
}

// QuiescentCut implements the αq extraction of Lemma 23 on a finite trace
// with explicit channel bookkeeping: given the trace and the set of send
// events not yet matched by receives, it returns the trace extended by the
// pending deliveries in lexicographic (from, to) channel order, exactly as
// the proof constructs the quiescent execution.  pending maps (from,to) to
// the FIFO backlog of message payloads.
func QuiescentCut(t trace.T, pending map[[2]ioa.Loc][]string) trace.T {
	out := append(trace.T(nil), t...)
	// Lexicographic order over location pairs.
	var pairs [][2]ioa.Loc
	for p := range pending {
		pairs = append(pairs, p)
	}
	for i := 0; i < len(pairs); i++ {
		for j := i + 1; j < len(pairs); j++ {
			if pairs[j][0] < pairs[i][0] || (pairs[j][0] == pairs[i][0] && pairs[j][1] < pairs[i][1]) {
				pairs[i], pairs[j] = pairs[j], pairs[i]
			}
		}
	}
	for _, p := range pairs {
		for _, m := range pending[p] {
			out = append(out, ioa.Receive(p[1], p[0], m))
		}
	}
	return out
}

// PendingMessages reconstructs the channel backlog of a trace: sends not yet
// matched by receives, per ordered channel, in FIFO order.
func PendingMessages(t trace.T) map[[2]ioa.Loc][]string {
	pending := make(map[[2]ioa.Loc][]string)
	for _, a := range t {
		switch a.Kind {
		case ioa.KindSend:
			key := [2]ioa.Loc{a.Loc, a.Peer}
			pending[key] = append(pending[key], a.Payload)
		case ioa.KindReceive:
			key := [2]ioa.Loc{a.Peer, a.Loc}
			q := pending[key]
			if len(q) > 0 && q[0] == a.Payload {
				pending[key] = q[1:]
				if len(pending[key]) == 0 {
					delete(pending, key)
				}
			}
		}
	}
	return pending
}
