package problems

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
)

// QueryAdapter wraps a unilateral AFD stream in the query-based interface
// of Jayanti-Toueg [20] discussed in Sections 1.1 and 10.1: processes query;
// the adapter answers each query with the detector's latest output at the
// querying location.  The answer is a valid detector output for a time
// inside the query-response interval, which is exactly [20]'s correctness
// condition for failure-detector implementations.
//
// Two paper points become executable with it:
//
//   - a unilateral AFD implements the query-based interface trivially (this
//     adapter), whereas the reverse direction is what collapses detector
//     classes — P+ queried looks like P queried (footnote 1);
//   - the adapter is "lazy" [10]: it produces one answer per query, however
//     fast the underlying detector emits — see the response/output counts in
//     the tests.
//
// Answers are emitted as KindFD events of family Family+"?" so they never
// collide with the detector's own outputs under composition.
type QueryAdapter struct {
	family  string
	n       int
	latest  []string // latest payload per location; "" before the first
	pending []ioa.Loc
	crashed []bool
}

var _ ioa.Automaton = (*QueryAdapter)(nil)

// QueryFamily returns the answer family for a detector family.
func QueryFamily(family string) string { return family + "?" }

// QueryFor returns the query action for the given detector family at i.
func QueryFor(family string, i ioa.Loc) ioa.Action {
	return ioa.EnvInput(ActNameQuery, i, family)
}

// NewQueryAdapter returns the adapter for the given detector family.
func NewQueryAdapter(family string, n int) *QueryAdapter {
	return &QueryAdapter{
		family:  family,
		n:       n,
		latest:  make([]string, n),
		crashed: make([]bool, n),
	}
}

// Name implements ioa.Automaton.
func (q *QueryAdapter) Name() string { return "query:" + q.family }

// Accepts implements ioa.Automaton: detector outputs, matching queries, and
// crashes.
func (q *QueryAdapter) Accepts(a ioa.Action) bool {
	switch {
	case a.Kind == ioa.KindCrash:
		return true
	case a.Kind == ioa.KindFD && a.Name == q.family:
		return true
	case a.Kind == ioa.KindEnvIn && a.Name == ActNameQuery && a.Payload == q.family:
		return true
	default:
		return false
	}
}

// Input implements ioa.Automaton.
func (q *QueryAdapter) Input(a ioa.Action) {
	switch {
	case a.Kind == ioa.KindCrash:
		if int(a.Loc) < q.n {
			q.crashed[a.Loc] = true
		}
	case a.Kind == ioa.KindFD:
		q.latest[a.Loc] = a.Payload
	case a.Kind == ioa.KindEnvIn:
		q.pending = append(q.pending, a.Loc)
	}
}

// NumTasks implements ioa.Automaton.
func (q *QueryAdapter) NumTasks() int { return 1 }

// TaskLabel implements ioa.Automaton.
func (q *QueryAdapter) TaskLabel(int) string { return "answer" }

// Enabled implements ioa.Automaton: answer the oldest pending query whose
// querier is alive and has received at least one detector output (before
// that there is no valid value to report, so the adapter keeps it pending —
// the detector's validity property guarantees outputs keep coming).
func (q *QueryAdapter) Enabled(int) (ioa.Action, bool) {
	for len(q.pending) > 0 && q.crashed[q.pending[0]] {
		q.pending = q.pending[1:]
	}
	if len(q.pending) == 0 {
		return ioa.Action{}, false
	}
	l := q.pending[0]
	if q.latest[l] == "" {
		return ioa.Action{}, false
	}
	return ioa.FDOutput(QueryFamily(q.family), l, q.latest[l]), true
}

// Fire implements ioa.Automaton.
func (q *QueryAdapter) Fire(ioa.Action) { q.pending = q.pending[1:] }

// Clone implements ioa.Automaton.
func (q *QueryAdapter) Clone() ioa.Automaton {
	c := &QueryAdapter{family: q.family, n: q.n}
	c.latest = append([]string(nil), q.latest...)
	c.pending = append([]ioa.Loc(nil), q.pending...)
	c.crashed = append([]bool(nil), q.crashed...)
	return c
}

// Encode implements ioa.Automaton.
func (q *QueryAdapter) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "QA:%s|", q.family)
	b.WriteString(strings.Join(q.latest, "\x1f"))
	b.WriteByte('|')
	for _, l := range q.pending {
		b.WriteString(l.String())
		b.WriteByte(',')
	}
	b.WriteByte('|')
	for _, c := range q.crashed {
		if c {
			b.WriteByte('x')
		} else {
			b.WriteByte('.')
		}
	}
	return b.String()
}

// CheckQueryAnswers verifies the [20]-style correctness of an adapter trace:
// every answer at a location equals some detector output at that location
// that occurred before the answer and at or after the preceding query.
// (The adapter answers with the latest value, which satisfies the stronger
// "between query and response" condition whenever a fresh output arrived;
// this checker enforces the weaker, order-theoretic half that is decidable
// from the trace alone: answered payloads are genuine past outputs.)
func CheckQueryAnswers(t []ioa.Action, family string) error {
	answerFam := QueryFamily(family)
	seen := make(map[ioa.Loc]map[string]bool)
	for _, a := range t {
		switch {
		case a.Kind == ioa.KindFD && a.Name == family:
			if seen[a.Loc] == nil {
				seen[a.Loc] = make(map[string]bool)
			}
			seen[a.Loc][a.Payload] = true
		case a.Kind == ioa.KindFD && a.Name == answerFam:
			if !seen[a.Loc][a.Payload] {
				return fmt.Errorf("problems: answer %v is not a past detector output", a)
			}
		}
	}
	return nil
}
