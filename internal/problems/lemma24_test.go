package problems

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

// buildKSetSystem composes the detector-free k-set solver (crash events
// arrive as external inputs, so crash independence can be tested by
// deleting them).
func buildKSetSystem(n, f int, vals []string) *ioa.System {
	autos := KSetProcs(n, f)
	autos = append(autos, system.Channels(n)...)
	for i, v := range vals {
		autos = append(autos, newProposerEnv(ioa.Loc(i), v))
	}
	return ioa.MustNewSystem(autos...)
}

func isCrash(a ioa.Action) bool { return a.Kind == ioa.KindCrash }

// TestLemma24CrashIndependence replays the Lemma 23/24 construction of the
// Theorem-21 proof on the (crash-independent, bounded) k-set solver:
//
//	(1) run the system with a crash injected, producing a finite trace tq
//	    whose pending messages are then delivered in lexicographic channel
//	    order (the quiescent execution αq of Lemma 23);
//	(2) delete exactly the crash events, yielding t0;
//	(3) t0 is again a trace of the system (Lemma 24): the replayer accepts
//	    every event, with the channels' FIFO discipline intact.
func TestLemma24CrashIndependence(t *testing.T) {
	const n, f = 3, 1
	vals := []string{"b", "a", "c"}

	// (1) the crashed run, stopped at quiescence.
	sys := buildKSetSystem(n, f, vals)
	crashAt := 6
	steps := 0
	sched.RoundRobin(sys, sched.Options{
		MaxSteps: 10_000,
		Stop: func(s *ioa.System, _ ioa.Action) bool {
			steps++
			if steps == crashAt {
				s.Apply(-1, ioa.Crash(2)) // crash injected externally
			}
			return false
		},
	})
	tq := append(trace.T{}, sys.Trace()...)
	if trace.FirstCrashIndex(tq, 2) < 0 {
		t.Fatal("setup: crash missing from tq")
	}
	// Lemma 23: deliver the backlog (here the scheduler already drained to
	// quiescence, so the cut is a no-op — assert that).
	if pend := PendingMessages(tq); len(pend) != 0 {
		tq = QuiescentCut(tq, pend)
	}

	// (2) delete exactly the crash events.
	t0 := trace.Project(tq, func(a ioa.Action) bool { return !isCrash(a) })

	// (3) replay t0 on a fresh copy of the system.
	fresh := buildKSetSystem(n, f, vals)
	if idx, err := ioa.ReplayTrace(fresh, t0, isCrash); err != nil {
		t.Fatalf("t0 is not a trace of the system (crash independence fails) at %d: %v", idx, err)
	}
}

// TestReplayTraceRejectsImpossibleEvents: the replayer is sound — inserting
// an event the system cannot produce is caught.
func TestReplayTraceRejectsImpossibleEvents(t *testing.T) {
	sys := buildKSetSystem(2, 0, []string{"x", "y"})
	bogus := trace.T{ioa.Send(0, 1, "forged")}
	if _, err := ioa.ReplayTrace(sys, bogus, isCrash); err == nil {
		t.Fatal("forged send accepted")
	}
	sys2 := buildKSetSystem(2, 0, []string{"x", "y"})
	unknown := trace.T{ioa.EnvInput("weird", 0, "")}
	if _, err := ioa.ReplayTrace(sys2, unknown, func(ioa.Action) bool { return true }); err == nil {
		t.Fatal("externally declared event with no acceptor accepted")
	}
}

// TestReplayRoundTrip: any scheduler-produced trace replays cleanly, with
// crashes declared external exactly when the crash automaton is excluded
// from the replay composition.
func TestReplayRoundTrip(t *testing.T) {
	const n, f = 3, 1
	vals := []string{"q", "p", "r"}
	orig := buildKSetSystem(n, f, vals)
	// Include a crash automaton in the producing run only.
	withCrash := append(orig.Automata(), system.NewCrash(system.CrashOf(1)))
	prod := ioa.MustNewSystem(withCrash...)
	sched.Random(prod, 3, sched.Options{MaxSteps: 5_000, Gate: sched.CrashesAfter(10, 0)})

	fresh := buildKSetSystem(n, f, vals)
	if idx, err := ioa.ReplayTrace(fresh, prod.Trace(), isCrash); err != nil {
		t.Fatalf("produced trace does not replay at %d: %v", idx, err)
	}
}
