package problems

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
	"repro/internal/system"
)

// KSetMachine solves (f+1)-set agreement with NO failure detector in a
// purely asynchronous system with at most f crashes: broadcast the
// proposal, wait for n−f proposals (own included), decide the minimum
// received.  At most f+1 distinct minima arise, so the algorithm solves
// k-set agreement for every k > f — the classical positive counterpart of
// the consensus impossibility, and the reason k-set agreement appears in
// the paper's §7.3 list of bounded problems with interesting weakest
// detectors (anti-Ω et al.).
type KSetMachine struct {
	system.NopMachine
	n, f    int
	self    ioa.Loc
	vals    map[ioa.Loc]string
	decided bool
	val     string
}

var _ system.Machine = (*KSetMachine)(nil)

// NewKSetMachine returns the machine for location self of n tolerating f
// crashes.
func NewKSetMachine(n, f int, self ioa.Loc) *KSetMachine {
	return &KSetMachine{n: n, f: f, self: self, vals: make(map[ioa.Loc]string)}
}

// KSetProcs returns the distributed algorithm.
func KSetProcs(n, f int) []ioa.Automaton {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		m := NewKSetMachine(n, f, ioa.Loc(i))
		out[i] = system.NewProc("kset", ioa.Loc(i), n, m, nil, []string{system.ActNamePropose})
	}
	return out
}

// OnEnvInput implements system.Machine.
func (m *KSetMachine) OnEnvInput(name, payload string, e *system.Effects) {
	if name != system.ActNamePropose || m.decided {
		return
	}
	if _, ok := m.vals[m.self]; ok {
		return
	}
	m.vals[m.self] = payload
	e.Broadcast(m.n, "K|"+payload)
	m.maybeDecide(e)
}

// OnReceive implements system.Machine.
func (m *KSetMachine) OnReceive(from ioa.Loc, msg string, e *system.Effects) {
	if m.decided || !strings.HasPrefix(msg, "K|") {
		return
	}
	m.vals[from] = msg[2:]
	m.maybeDecide(e)
}

func (m *KSetMachine) maybeDecide(e *system.Effects) {
	if m.decided || len(m.vals) < m.n-m.f {
		return
	}
	if _, proposed := m.vals[m.self]; !proposed {
		return // decide only after contributing our own value
	}
	min := ""
	for _, v := range m.vals {
		if min == "" || v < min {
			min = v
		}
	}
	m.decided = true
	m.val = min
	e.Output(system.ActNameDecide, min)
}

// Decided reports the decision, if any.
func (m *KSetMachine) Decided() (string, bool) { return m.val, m.decided }

// Clone implements system.Machine.
func (m *KSetMachine) Clone() system.Machine {
	c := &KSetMachine{n: m.n, f: m.f, self: m.self, decided: m.decided, val: m.val}
	c.vals = make(map[ioa.Loc]string, len(m.vals))
	for l, v := range m.vals {
		c.vals[l] = v
	}
	return c
}

// Encode implements system.Machine.
func (m *KSetMachine) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "KS%v|d%t:%s|", m.self, m.decided, m.val)
	for i := 0; i < m.n; i++ {
		if v, ok := m.vals[ioa.Loc(i)]; ok {
			fmt.Fprintf(&b, "%d=%s;", i, v)
		}
	}
	return b.String()
}
