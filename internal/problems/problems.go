// Package problems implements the crash problems of Section 7 of
// "Asynchronous Failure Detectors" beyond consensus — leader election,
// k-set agreement, non-blocking atomic commit — as checkable specifications,
// the bounded-problem formalism of Section 7.3 (crash independence and
// bounded length), and the query-based participant failure detector of
// Section 10.1 together with the two reductions that make consensus and the
// participant detector interchangeable.
package problems

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/trace"
)

// LeaderElection is the one-shot leader-election problem over n locations:
// each live location outputs elect(l)i at most once; all elected values
// agree; the elected location is live in t; every live location eventually
// elects.  It is a bounded problem (at most n outputs).
type LeaderElection struct{ N int }

// ActNameElect is the output action family of leader election.
const ActNameElect = "elect"

// Check verifies a finite trace over {elect} ∪ Iˆ; complete enforces the
// everyone-elects half of termination.
func (p LeaderElection) Check(t trace.T, complete bool) error {
	elected := make(map[ioa.Loc]int)
	crashed := make(map[ioa.Loc]bool)
	var winner string
	have := false
	for _, a := range t {
		switch {
		case a.Kind == ioa.KindCrash:
			crashed[a.Loc] = true
		case a.Kind == ioa.KindEnvOut && a.Name == ActNameElect:
			if crashed[a.Loc] {
				return fmt.Errorf("problems: elect at %v after crash", a.Loc)
			}
			elected[a.Loc]++
			if elected[a.Loc] > 1 {
				return fmt.Errorf("problems: location %v elected twice", a.Loc)
			}
			if have && a.Payload != winner {
				return fmt.Errorf("problems: elected %s and %s disagree", winner, a.Payload)
			}
			winner = a.Payload
			have = true
		}
	}
	if have {
		l, err := ioa.DecodeLoc(winner)
		if err != nil {
			return fmt.Errorf("problems: malformed winner %q: %v", winner, err)
		}
		if crashed[l] && complete {
			// The winner must be live in the completed trace; electing a
			// location that later crashes mid-run is admissible only for
			// incomplete prefixes.
			return fmt.Errorf("problems: elected location %v is faulty", l)
		}
	}
	if complete {
		for i := 0; i < p.N; i++ {
			l := ioa.Loc(i)
			if !crashed[l] && elected[l] != 1 {
				return fmt.Errorf("problems: live location %v elected %d times, want 1", l, elected[l])
			}
		}
	}
	return nil
}

// KSetAgreement is k-set agreement over n locations with proposal/decision
// actions shared with consensus: at most k distinct decision values, each
// decision a proposal, one decision per live location.
type KSetAgreement struct {
	N, K int
}

// Check verifies a finite trace over IP ∪ OP (propose/decide/crash).
func (p KSetAgreement) Check(t trace.T, complete bool) error {
	crashed := make(map[ioa.Loc]bool)
	proposed := make(map[string]bool)
	decided := make(map[ioa.Loc]int)
	values := make(map[string]bool)
	for _, a := range t {
		switch {
		case a.Kind == ioa.KindCrash:
			crashed[a.Loc] = true
		case a.Kind == ioa.KindEnvIn && a.Name == system.ActNamePropose:
			proposed[a.Payload] = true
		case a.Kind == ioa.KindEnvOut && a.Name == system.ActNameDecide:
			if crashed[a.Loc] {
				return fmt.Errorf("problems: decide at %v after crash", a.Loc)
			}
			decided[a.Loc]++
			if decided[a.Loc] > 1 {
				return fmt.Errorf("problems: location %v decided twice", a.Loc)
			}
			if !proposed[a.Payload] {
				return fmt.Errorf("problems: decision %q never proposed", a.Payload)
			}
			values[a.Payload] = true
		}
	}
	if len(values) > p.K {
		return fmt.Errorf("problems: %d distinct decisions exceed k = %d", len(values), p.K)
	}
	if complete {
		for i := 0; i < p.N; i++ {
			l := ioa.Loc(i)
			if !crashed[l] && decided[l] != 1 {
				return fmt.Errorf("problems: live location %v decided %d times", l, decided[l])
			}
		}
	}
	return nil
}

// NBAC is non-blocking atomic commit: each location votes yes/no once;
// decisions are commit/abort; all decisions agree; commit requires all-yes
// votes; abort requires a no vote or a crash; live locations decide.
type NBAC struct{ N int }

// NBAC action names.
const (
	ActNameVote    = "vote"
	ActNameOutcome = "outcome"
	VoteYes        = "yes"
	VoteNo         = "no"
	OutcomeCommit  = "commit"
	OutcomeAbort   = "abort"
)

// Check verifies a finite NBAC trace.
func (p NBAC) Check(t trace.T, complete bool) error {
	crashed := make(map[ioa.Loc]bool)
	votes := make(map[ioa.Loc]string)
	outcomes := make(map[ioa.Loc]int)
	anyNo := false
	var outcome string
	have := false
	for _, a := range t {
		switch {
		case a.Kind == ioa.KindCrash:
			crashed[a.Loc] = true
		case a.Kind == ioa.KindEnvIn && a.Name == ActNameVote:
			if _, dup := votes[a.Loc]; dup {
				return fmt.Errorf("problems: location %v voted twice", a.Loc)
			}
			votes[a.Loc] = a.Payload
			if a.Payload == VoteNo {
				anyNo = true
			}
		case a.Kind == ioa.KindEnvOut && a.Name == ActNameOutcome:
			if crashed[a.Loc] {
				return fmt.Errorf("problems: outcome at %v after crash", a.Loc)
			}
			outcomes[a.Loc]++
			if outcomes[a.Loc] > 1 {
				return fmt.Errorf("problems: location %v has two outcomes", a.Loc)
			}
			if have && a.Payload != outcome {
				return fmt.Errorf("problems: outcomes %s and %s disagree", outcome, a.Payload)
			}
			outcome = a.Payload
			have = true
		}
	}
	if have {
		switch outcome {
		case OutcomeCommit:
			for i := 0; i < p.N; i++ {
				if votes[ioa.Loc(i)] != VoteYes {
					return fmt.Errorf("problems: commit without unanimous yes (location %d)", i)
				}
			}
		case OutcomeAbort:
			if !anyNo && len(crashed) == 0 && complete {
				return fmt.Errorf("problems: abort with all-yes votes and no crash")
			}
		default:
			return fmt.Errorf("problems: unknown outcome %q", outcome)
		}
	}
	if complete {
		for i := 0; i < p.N; i++ {
			l := ioa.Loc(i)
			if !crashed[l] && outcomes[l] != 1 {
				return fmt.Errorf("problems: live location %v has %d outcomes", l, outcomes[l])
			}
		}
	}
	return nil
}
