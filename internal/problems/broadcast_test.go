package problems

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

func urbProject(t trace.T) trace.T {
	return trace.Project(t, func(a ioa.Action) bool {
		switch {
		case a.Kind == ioa.KindCrash:
			return true
		case a.Kind == ioa.KindEnvIn && a.Name == ActNameBroadcast:
			return true
		case a.Kind == ioa.KindEnvOut && a.Name == ActNameDeliver:
			return true
		}
		return false
	})
}

func runURB(t *testing.T, n int, perfect bool, crash []ioa.Loc, seed int64, gate int) trace.T {
	t.Helper()
	var procs []ioa.Automaton
	var err error
	if perfect {
		procs, err = URBPerfectProcs(n, afd.FamilyP)
		if err != nil {
			t.Fatal(err)
		}
	} else {
		procs = URBMajorityProcs(n)
	}
	autos := procs
	autos = append(autos, system.Channels(n)...)
	for i := 0; i < n; i++ {
		autos = append(autos, NewBroadcasterEnv(ioa.Loc(i), string(rune('a'+i))))
	}
	if perfect {
		d, err := afd.Lookup(afd.FamilyP, n)
		if err != nil {
			t.Fatal(err)
		}
		autos = append(autos, d.Automaton(n))
	}
	autos = append(autos, system.NewCrash(system.CrashOf(crash...)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		t.Fatal(err)
	}
	opts := sched.Options{MaxSteps: 30_000}
	if gate > 0 {
		opts.Gate = sched.CrashesAfter(gate, gate)
	}
	if seed >= 0 {
		sched.Random(sys, seed, opts)
	} else {
		sched.RoundRobin(sys, opts)
	}
	return sys.Trace()
}

// TestURBMajority: the detector-free diffusion algorithm satisfies URB with
// f < n/2 crashes, including crashes of broadcasters mid-diffusion.
func TestURBMajority(t *testing.T) {
	cases := []struct {
		n     int
		crash []ioa.Loc
	}{
		{3, nil},
		{3, []ioa.Loc{2}},
		{5, []ioa.Loc{0, 4}},
	}
	for _, tc := range cases {
		for _, seed := range []int64{-1, 1, 4} {
			tr := urbProject(runURB(t, tc.n, false, tc.crash, seed, 15))
			if err := (URBSpec{N: tc.n}).Check(tr, true); err != nil {
				t.Fatalf("n=%d crash=%v seed=%d: %v", tc.n, tc.crash, seed, err)
			}
		}
	}
}

// TestURBPerfect: the P-based variant survives n−1 crashes.
func TestURBPerfect(t *testing.T) {
	cases := []struct {
		n     int
		crash []ioa.Loc
	}{
		{3, []ioa.Loc{0, 1}},
		{4, []ioa.Loc{1, 2, 3}},
	}
	for _, tc := range cases {
		for _, seed := range []int64{-1, 2} {
			tr := urbProject(runURB(t, tc.n, true, tc.crash, seed, 25))
			if err := (URBSpec{N: tc.n}).Check(tr, true); err != nil {
				t.Fatalf("n=%d crash=%v seed=%d: %v", tc.n, tc.crash, seed, err)
			}
		}
	}
}

func TestURBSpecRejectsViolations(t *testing.T) {
	spec := URBSpec{N: 2}
	bcast := func(i ioa.Loc, v string) ioa.Action { return ioa.EnvInput(ActNameBroadcast, i, v) }
	del := func(i ioa.Loc, p string) ioa.Action { return ioa.EnvOutput(ActNameDeliver, i, p) }

	if err := spec.Check(trace.T{del(0, "1:1:x")}, true); err == nil {
		t.Error("delivery of never-broadcast message accepted")
	}
	if err := spec.Check(trace.T{bcast(1, "x"), del(0, "1:1:y")}, true); err == nil {
		t.Error("corrupted payload accepted")
	}
	if err := spec.Check(trace.T{bcast(1, "x"), del(0, "1:1:x"), del(0, "1:1:x"), del(1, "1:1:x")}, true); err == nil {
		t.Error("duplicate delivery accepted")
	}
	if err := spec.Check(trace.T{bcast(0, "x"), del(0, "0:1:x")}, true); err == nil {
		t.Error("live location missing delivery accepted (validity)")
	}
	// Uniform agreement: location 1 delivered then crashed; live 0 did not.
	if err := spec.Check(trace.T{bcast(1, "x"), del(1, "1:1:x"), ioa.Crash(1)}, true); err == nil {
		t.Error("uniform agreement violation accepted")
	}
	ok := trace.T{bcast(1, "x"), del(1, "1:1:x"), del(0, "1:1:x"), ioa.Crash(1)}
	if err := spec.Check(ok, true); err != nil {
		t.Errorf("valid URB trace rejected: %v", err)
	}
}

func runTRB(t *testing.T, n int, sender ioa.Loc, crash []ioa.Loc, seed int64, gate int) trace.T {
	t.Helper()
	procs, err := TRBProcs(n, sender, afd.FamilyP)
	if err != nil {
		t.Fatal(err)
	}
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		t.Fatal(err)
	}
	autos := procs
	autos = append(autos, system.Channels(n)...)
	autos = append(autos, NewTRBSenderEnv(sender, "payload"))
	autos = append(autos, d.Automaton(n))
	autos = append(autos, system.NewCrash(system.CrashOf(crash...)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		t.Fatal(err)
	}
	opts := sched.Options{MaxSteps: 60_000}
	if gate >= 0 {
		opts.Gate = sched.CrashesAfter(gate, gate)
	}
	if seed >= 0 {
		sched.Random(sys, seed, opts)
	} else {
		sched.RoundRobin(sys, opts)
	}
	return sys.Trace()
}

func trbProject(t trace.T) trace.T {
	return trace.Project(t, func(a ioa.Action) bool {
		switch {
		case a.Kind == ioa.KindCrash:
			return true
		case a.Kind == ioa.KindEnvIn && a.Name == ActNameTRBBcast:
			return true
		case a.Kind == ioa.KindEnvOut && a.Name == ActNameTRBDeliver:
			return true
		}
		return false
	})
}

// TestTRBSenderLive: with a live sender everyone delivers the value.
func TestTRBSenderLive(t *testing.T) {
	for _, seed := range []int64{-1, 1, 3} {
		tr := trbProject(runTRB(t, 3, 0, nil, seed, 0))
		if err := (TRBSpec{N: 3, Sender: 0}).Check(tr, true); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, a := range tr {
			if a.Kind == ioa.KindEnvOut && a.Payload == TRBSenderFaulty {
				t.Fatalf("seed %d: SF delivered with a live sender", seed)
			}
		}
	}
}

// TestTRBSenderCrashesEarly: a sender crashing before broadcasting yields SF
// everywhere; crashing mid-broadcast yields either verdict, agreed.
func TestTRBSenderCrashesEarly(t *testing.T) {
	for _, gate := range []int{0, 10, 40} {
		for _, seed := range []int64{-1, 2} {
			tr := trbProject(runTRB(t, 3, 0, []ioa.Loc{0}, seed, gate))
			if err := (TRBSpec{N: 3, Sender: 0}).Check(tr, true); err != nil {
				t.Fatalf("gate %d seed %d: %v", gate, seed, err)
			}
		}
	}
}

func TestTRBSpecRejectsViolations(t *testing.T) {
	spec := TRBSpec{N: 2, Sender: 0}
	bcast := func(v string) ioa.Action { return ioa.EnvInput(ActNameTRBBcast, 0, v) }
	del := func(i ioa.Loc, v string) ioa.Action { return ioa.EnvOutput(ActNameTRBDeliver, i, v) }

	if err := spec.Check(trace.T{bcast("x"), del(0, "x"), del(1, "y")}, true); err == nil {
		t.Error("disagreement accepted")
	}
	if err := spec.Check(trace.T{bcast("x"), del(0, TRBSenderFaulty), del(1, TRBSenderFaulty)}, true); err == nil {
		t.Error("SF with live sender accepted (integrity)")
	}
	if err := spec.Check(trace.T{del(0, "x"), del(1, "x")}, true); err == nil {
		t.Error("delivery without broadcast accepted (validity)")
	}
	if err := spec.Check(trace.T{bcast("x"), del(0, "x")}, true); err == nil {
		t.Error("missing delivery accepted (termination)")
	}
	ok := trace.T{bcast("x"), del(0, "x"), del(1, "x")}
	if err := spec.Check(ok, true); err != nil {
		t.Errorf("valid TRB trace rejected: %v", err)
	}
}

// TestTRBIsBounded: TRB traces satisfy the Section-7.3 bounded-length
// classifier with bound n — the contrast to ◇-mutex.
func TestTRBIsBounded(t *testing.T) {
	var traces []trace.T
	for _, seed := range []int64{-1, 1} {
		traces = append(traces, trbProject(runTRB(t, 3, 0, nil, seed, 0)))
	}
	w := Witness{
		Traces:  traces,
		IsTrace: func(tt trace.T) error { return (TRBSpec{N: 3, Sender: 0}).Check(tt, false) },
		IsOutput: func(a ioa.Action) bool {
			return a.Kind == ioa.KindEnvOut && a.Name == ActNameTRBDeliver
		},
	}
	maxSeen, err := w.CheckBoundedLength(3)
	if err != nil {
		t.Fatal(err)
	}
	if maxSeen != 3 {
		t.Fatalf("maxlen = %d, want 3", maxSeen)
	}
	if err := w.CheckCrashIndependence(); err != nil {
		t.Fatalf("TRB traces should be crash independent: %v", err)
	}
}

func TestURBTRBRejectLeaderDetectors(t *testing.T) {
	if _, err := URBPerfectProcs(3, afd.FamilyOmega); err == nil {
		t.Error("URB-P must refuse Ω")
	}
	if _, err := TRBProcs(3, 0, afd.FamilyOmega); err == nil {
		t.Error("TRB must refuse Ω")
	}
}

func TestURBMachineContract(t *testing.T) {
	m := newURBMachine(2, 0, true, consensus.NewSetSuspector())
	e := system.NewEffects(0)
	m.OnEnvInput(ActNameBroadcast, "v", e)
	c := m.Clone()
	if c.Encode() != m.Encode() {
		t.Fatal("URB machine clone differs")
	}
	e2 := system.NewEffects(0)
	m.OnReceive(1, "E|1:1:w", e2)
	if c.Encode() == m.Encode() {
		t.Fatal("URB machine clone entangled")
	}
}
