package problems

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
)

// TestAutomatonContracts applies the shared structural contract to every
// automaton this package defines, fresh and advanced.
func TestAutomatonContracts(t *testing.T) {
	oracle := NewParticipantOracle(3)
	oracle.Input(Query(1))
	oracle.Input(ioa.Crash(2))

	querier := NewQuerierEnv(0, 2)
	querier.Fire(Query(0))

	voter := NewVoterEnv(1, VoteYes)

	kset := KSetProcs(3, 1)
	cvp := ConsensusViaParticipantProcs(3)
	pvc, err := ParticipantViaConsensusProcs(3, afd.FamilyOmega)
	if err != nil {
		t.Fatal(err)
	}
	nbac, err := NBACProcs(3, afd.FamilyP)
	if err != nil {
		t.Fatal(err)
	}

	autos := []ioa.Automaton{oracle, querier, voter}
	autos = append(autos, kset...)
	autos = append(autos, cvp...)
	autos = append(autos, pvc...)
	autos = append(autos, nbac...)

	// Advance a few of them through representative inputs first.
	kset[0].Input(ioa.EnvInput("propose", 0, "a"))
	cvp[1].Input(ioa.EnvInput("propose", 1, "1"))
	pvc[2].Input(Query(2))
	nbac[0].Input(ioa.EnvInput(ActNameVote, 0, VoteYes))

	for _, a := range autos {
		if err := ioa.CheckAutomatonContract(a); err != nil {
			t.Error(err)
		}
	}
}

func TestKSetMachineAccessors(t *testing.T) {
	m := NewKSetMachine(2, 1, 0)
	if _, ok := m.Decided(); ok {
		t.Fatal("fresh machine decided")
	}
	c := m.Clone()
	if c.Encode() != m.Encode() {
		t.Fatal("clone encoding differs")
	}
}
