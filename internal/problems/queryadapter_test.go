package problems

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

// querierFor issues k queries for a specific detector family at a location.
type familyQuerier struct {
	id      ioa.Loc
	family  string
	queries int
	sent    int
	stopped bool
}

func (q *familyQuerier) Name() string { return "fq[" + q.id.String() + "]" }
func (q *familyQuerier) Accepts(a ioa.Action) bool {
	return a.Kind == ioa.KindCrash && a.Loc == q.id
}
func (q *familyQuerier) Input(ioa.Action)     { q.stopped = true }
func (q *familyQuerier) NumTasks() int        { return 1 }
func (q *familyQuerier) TaskLabel(int) string { return "query" }
func (q *familyQuerier) Enabled(int) (ioa.Action, bool) {
	if q.stopped || q.sent >= q.queries {
		return ioa.Action{}, false
	}
	return QueryFor(q.family, q.id), true
}
func (q *familyQuerier) Fire(ioa.Action) { q.sent++ }
func (q *familyQuerier) Clone() ioa.Automaton {
	c := *q
	return &c
}
func (q *familyQuerier) Encode() string {
	return "FQ" + q.id.String()
}

// TestQueryAdapterLaziness: the adapter answers exactly one event per query
// while the underlying detector emits hundreds — the [10] "lazy" property.
func TestQueryAdapterLaziness(t *testing.T) {
	const n, queries = 3, 2
	d, err := afd.Lookup(afd.FamilyP, n)
	if err != nil {
		t.Fatal(err)
	}
	autos := []ioa.Automaton{d.Automaton(n), NewQueryAdapter(afd.FamilyP, n)}
	for i := 0; i < n; i++ {
		autos = append(autos, &familyQuerier{id: ioa.Loc(i), family: afd.FamilyP, queries: queries})
	}
	autos = append(autos, system.NewCrash(system.CrashOf(2)))
	sys := ioa.MustNewSystem(autos...)
	sched.RoundRobin(sys, sched.Options{MaxSteps: 600, Gate: sched.CrashesAfter(100, 0)})

	tr := sys.Trace()
	outputs := trace.Count(tr, func(a ioa.Action) bool {
		return a.Kind == ioa.KindFD && a.Name == afd.FamilyP
	})
	answers := trace.Count(tr, func(a ioa.Action) bool {
		return a.Kind == ioa.KindFD && a.Name == QueryFamily(afd.FamilyP)
	})
	// Location 2 crashes after its queries are answered or dropped; live
	// locations get exactly `queries` answers each.
	if answers > n*queries {
		t.Fatalf("answers = %d, want ≤ %d (one per query)", answers, n*queries)
	}
	if answers < 2*queries {
		t.Fatalf("answers = %d, want ≥ %d (live locations answered)", answers, 2*queries)
	}
	if outputs < 10*answers {
		t.Fatalf("outputs = %d vs answers = %d: laziness not demonstrated", outputs, answers)
	}
	if err := CheckQueryAnswers(tr, afd.FamilyP); err != nil {
		t.Fatal(err)
	}
}

func TestQueryAdapterWaitsForFirstOutput(t *testing.T) {
	q := NewQueryAdapter(afd.FamilyP, 2)
	q.Input(QueryFor(afd.FamilyP, 0))
	if _, ok := q.Enabled(0); ok {
		t.Fatal("adapter answered before any detector output")
	}
	q.Input(ioa.FDOutput(afd.FamilyP, 0, "{}"))
	act, ok := q.Enabled(0)
	if !ok || act != ioa.FDOutput(QueryFamily(afd.FamilyP), 0, "{}") {
		t.Fatalf("Enabled = %v, %t", act, ok)
	}
}

func TestQueryAdapterSkipsCrashedQueriers(t *testing.T) {
	q := NewQueryAdapter(afd.FamilyP, 2)
	q.Input(ioa.FDOutput(afd.FamilyP, 0, "{}"))
	q.Input(ioa.FDOutput(afd.FamilyP, 1, "{}"))
	q.Input(QueryFor(afd.FamilyP, 1))
	q.Input(QueryFor(afd.FamilyP, 0))
	q.Input(ioa.Crash(1))
	act, ok := q.Enabled(0)
	if !ok || act.Loc != 0 {
		t.Fatalf("crashed querier not skipped: %v %t", act, ok)
	}
}

func TestCheckQueryAnswersRejectsInvention(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput(afd.FamilyP, 0, "{}"),
		ioa.FDOutput(QueryFamily(afd.FamilyP), 0, "{1}"), // never output
	}
	if err := CheckQueryAnswers(tr, afd.FamilyP); err == nil {
		t.Fatal("invented answer accepted")
	}
}

func TestQueryAdapterContract(t *testing.T) {
	q := NewQueryAdapter(afd.FamilyP, 2)
	q.Input(ioa.FDOutput(afd.FamilyP, 1, "{0}"))
	q.Input(QueryFor(afd.FamilyP, 1))
	if err := ioa.CheckAutomatonContract(q); err != nil {
		t.Fatal(err)
	}
}
