package problems

import (
	"fmt"
	"strings"

	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/trace"
)

// This file implements Section 10.1: the query-based *participant failure
// detector*, which is representative for consensus in the query-based
// universe — demonstrating that query-based detectors can leak information
// about events other than crashes (here: participation), which is exactly
// why the paper argues for unilateral AFDs.
//
// The participant detector answers every query with one fixed location ID
// and guarantees the answered location has queried at least once.  Queries
// are modeled as environment inputs (they originate outside the detector);
// answers are FD outputs of the FamilyParticipant family.

// Action families of the participant detector.
const (
	FamilyParticipant = "FD-participant"
	ActNameQuery      = "fd-query"
)

// Query returns the query action at location i.
func Query(i ioa.Loc) ioa.Action { return ioa.EnvInput(ActNameQuery, i, "") }

// ParticipantOracle is the detector itself as a single automaton: the first
// querier becomes the fixed answer; every query enqueues one response at the
// querying location.
type ParticipantOracle struct {
	n       int
	chosen  ioa.Loc
	pending []ioa.Loc // locations owed a response, FIFO
	crashed []bool
}

var _ ioa.Automaton = (*ParticipantOracle)(nil)

// NewParticipantOracle returns the oracle for n locations.
func NewParticipantOracle(n int) *ParticipantOracle {
	return &ParticipantOracle{n: n, chosen: ioa.NoLoc, crashed: make([]bool, n)}
}

// Name implements ioa.Automaton.
func (o *ParticipantOracle) Name() string { return "participant-oracle" }

// Accepts implements ioa.Automaton: queries and crashes.
func (o *ParticipantOracle) Accepts(a ioa.Action) bool {
	return a.Kind == ioa.KindCrash || (a.Kind == ioa.KindEnvIn && a.Name == ActNameQuery)
}

// Input implements ioa.Automaton.
func (o *ParticipantOracle) Input(a ioa.Action) {
	if a.Kind == ioa.KindCrash {
		o.crashed[a.Loc] = true
		return
	}
	if o.chosen == ioa.NoLoc {
		o.chosen = a.Loc // the first querier has certainly participated
	}
	o.pending = append(o.pending, a.Loc)
}

// NumTasks implements ioa.Automaton.
func (o *ParticipantOracle) NumTasks() int { return 1 }

// TaskLabel implements ioa.Automaton.
func (o *ParticipantOracle) TaskLabel(int) string { return "respond" }

// Enabled implements ioa.Automaton: answer the oldest pending query whose
// querier has not crashed.
func (o *ParticipantOracle) Enabled(int) (ioa.Action, bool) {
	for len(o.pending) > 0 && o.crashed[o.pending[0]] {
		o.pending = o.pending[1:]
	}
	if len(o.pending) == 0 {
		return ioa.Action{}, false
	}
	return ioa.FDOutput(FamilyParticipant, o.pending[0], ioa.EncodeLoc(o.chosen)), true
}

// Fire implements ioa.Automaton.
func (o *ParticipantOracle) Fire(ioa.Action) { o.pending = o.pending[1:] }

// Clone implements ioa.Automaton.
func (o *ParticipantOracle) Clone() ioa.Automaton {
	c := &ParticipantOracle{n: o.n, chosen: o.chosen}
	c.pending = append([]ioa.Loc(nil), o.pending...)
	c.crashed = append([]bool(nil), o.crashed...)
	return c
}

// Encode implements ioa.Automaton.
func (o *ParticipantOracle) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "PO%v|", o.chosen)
	for _, l := range o.pending {
		b.WriteString(l.String())
		b.WriteByte(',')
	}
	for _, c := range o.crashed {
		if c {
			b.WriteByte('x')
		} else {
			b.WriteByte('.')
		}
	}
	return b.String()
}

// CheckParticipant verifies the participant-detector guarantee on a trace:
// every response carries the same location ID, and that location issued a
// query somewhere in the trace.
func CheckParticipant(t trace.T) error {
	var answer string
	queried := make(map[ioa.Loc]bool)
	for _, a := range t {
		switch {
		case a.Kind == ioa.KindEnvIn && a.Name == ActNameQuery:
			queried[a.Loc] = true
		case a.Kind == ioa.KindFD && a.Name == FamilyParticipant:
			if answer == "" {
				answer = a.Payload
			} else if a.Payload != answer {
				return fmt.Errorf("problems: participant answers %s and %s differ", answer, a.Payload)
			}
		}
	}
	if answer == "" {
		return nil
	}
	l, err := ioa.DecodeLoc(answer)
	if err != nil {
		return fmt.Errorf("problems: malformed participant answer %q: %v", answer, err)
	}
	if !queried[l] {
		return fmt.Errorf("problems: answered location %v never queried (participation leak broken)", l)
	}
	return nil
}

// consensusViaParticipant is the Section-10.1 reduction "solve consensus
// using the participant detector": broadcast the proposal, query, and decide
// on the proposal of the answered location once it arrives.
type consensusViaParticipant struct {
	system.NopMachine
	n       int
	self    ioa.Loc
	props   map[ioa.Loc]string
	waiting ioa.Loc // answered location we are waiting on; NoLoc before
	decided bool
}

// ConsensusViaParticipantProcs returns the reduction's process automata.
func ConsensusViaParticipantProcs(n int) []ioa.Automaton {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		m := &consensusViaParticipant{
			n: n, self: ioa.Loc(i),
			props: make(map[ioa.Loc]string), waiting: ioa.NoLoc,
		}
		out[i] = system.NewProc("cvp", ioa.Loc(i), n, m,
			[]string{FamilyParticipant}, []string{system.ActNamePropose})
	}
	return out
}

func (m *consensusViaParticipant) OnEnvInput(name, payload string, e *system.Effects) {
	if name != system.ActNamePropose {
		return
	}
	m.props[m.self] = payload
	e.Broadcast(m.n, payload)
	// Query only after the proposal is out: the detector's answer is then
	// guaranteed to name a location whose proposal is in flight to all.
	e.Emit(Query(m.self))
}

func (m *consensusViaParticipant) OnReceive(from ioa.Loc, msg string, e *system.Effects) {
	m.props[from] = msg
	m.maybeDecide(e)
}

func (m *consensusViaParticipant) OnFD(a ioa.Action, e *system.Effects) {
	l, err := ioa.DecodeLoc(a.Payload)
	if err != nil {
		return
	}
	m.waiting = l
	m.maybeDecide(e)
}

func (m *consensusViaParticipant) maybeDecide(e *system.Effects) {
	if m.decided || m.waiting == ioa.NoLoc {
		return
	}
	if v, ok := m.props[m.waiting]; ok {
		m.decided = true
		e.Output(system.ActNameDecide, v)
	}
}

func (m *consensusViaParticipant) Clone() system.Machine {
	c := &consensusViaParticipant{n: m.n, self: m.self, waiting: m.waiting, decided: m.decided}
	c.props = make(map[ioa.Loc]string, len(m.props))
	for l, v := range m.props {
		c.props[l] = v
	}
	return c
}

func (m *consensusViaParticipant) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "CVP%v|w%v|d%t|", m.self, m.waiting, m.decided)
	for i := 0; i < m.n; i++ {
		if v, ok := m.props[ioa.Loc(i)]; ok {
			fmt.Fprintf(&b, "%d=%s;", i, v)
		}
	}
	return b.String()
}

// participantViaConsensus is the converse reduction: answer queries with the
// decision of a consensus instance in which each queried location proposes
// its own ID.  The hosted consensus machine is the CT algorithm with an Ω
// suspector, so the composition needs the Ω detector and channels.
type participantViaConsensus struct {
	ct      *consensus.CTMachine
	self    ioa.Loc
	pending int
	answer  string
}

// ParticipantViaConsensusProcs returns the reduction's process automata,
// each hosting a CT consensus machine proposing its own location ID.
func ParticipantViaConsensusProcs(n int, fdFamily string) ([]ioa.Automaton, error) {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		susp, err := consensus.SuspectorFor(fdFamily)
		if err != nil {
			return nil, err
		}
		m := &participantViaConsensus{
			ct:   consensus.NewCTMachine(n, ioa.Loc(i), susp),
			self: ioa.Loc(i),
		}
		out[i] = system.NewProc("pvc", ioa.Loc(i), n, m,
			[]string{fdFamily}, []string{ActNameQuery})
	}
	return out, nil
}

func (m *participantViaConsensus) OnStart(*system.Effects) {}

func (m *participantViaConsensus) OnEnvInput(name, payload string, e *system.Effects) {
	if name != ActNameQuery {
		return
	}
	m.pending++
	// First query: enter the consensus with our own ID as proposal.
	m.host(e, func(inner *system.Effects) {
		m.ct.OnEnvInput(system.ActNamePropose, ioa.EncodeLoc(m.self), inner)
	})
}

func (m *participantViaConsensus) OnReceive(from ioa.Loc, msg string, e *system.Effects) {
	m.host(e, func(inner *system.Effects) { m.ct.OnReceive(from, msg, inner) })
}

func (m *participantViaConsensus) OnFD(a ioa.Action, e *system.Effects) {
	m.host(e, func(inner *system.Effects) { m.ct.OnFD(a, inner) })
}

// host runs a hosted-machine handler against an inner effects buffer,
// forwards its sends, and hides its decide output (the decision surfaces as
// detector answers instead — the hiding operation of Section 2.3).
func (m *participantViaConsensus) host(e *system.Effects, f func(*system.Effects)) {
	inner := system.NewEffects(m.self)
	f(inner)
	for _, a := range inner.Pending() {
		if a.Kind == ioa.KindEnvOut && a.Name == system.ActNameDecide {
			continue
		}
		e.Emit(a)
	}
	m.flush(e)
}

// flush converts a freshly available decision into pending query answers.
func (m *participantViaConsensus) flush(e *system.Effects) {
	if m.answer == "" {
		if v, ok := m.ct.Decided(); ok {
			m.answer = v
		}
	}
	if m.answer == "" {
		return
	}
	for ; m.pending > 0; m.pending-- {
		e.OutputFD(FamilyParticipant, m.answer)
	}
}

func (m *participantViaConsensus) Clone() system.Machine {
	return &participantViaConsensus{
		ct:      m.ct.Clone().(*consensus.CTMachine),
		self:    m.self,
		pending: m.pending,
		answer:  m.answer,
	}
}

func (m *participantViaConsensus) Encode() string {
	return fmt.Sprintf("PVC%v|p%d|a%s|%s", m.self, m.pending, m.answer, m.ct.Encode())
}
