package problems

import (
	"fmt"
	"strings"

	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/system"
)

// NBACMachine solves non-blocking atomic commit using the perfect detector
// P, the construction behind the §1.1 discussion of NBAC's weakest
// detectors [17,18]: broadcast the vote; wait, for every location, for its
// vote or its suspicion (P's strong accuracy makes suspicion proof of
// crash); propose commit to an embedded consensus iff all n yes-votes
// arrived, abort otherwise; adopt the consensus decision as the outcome.
//
// With P: commit ⇒ some location saw n yes votes (consensus validity);
// all-yes and crash-free ⇒ every location proposes commit ⇒ the decision is
// commit (no gratuitous abort); agreement and termination come from the
// embedded consensus (the CT96 S-algorithm, which P drives for f ≤ n−1).
type NBACMachine struct {
	n    int
	self ioa.Loc
	susp *consensus.SetSuspector
	ct   *consensus.SMachine

	voted    bool
	votes    map[ioa.Loc]string
	proposed bool
	done     bool
}

var _ system.Machine = (*NBACMachine)(nil)

// NewNBACMachine returns the NBAC machine for location self of n.
func NewNBACMachine(n int, self ioa.Loc, family string) (*NBACMachine, error) {
	susp, err := consensus.SuspectorFor(family)
	if err != nil {
		return nil, err
	}
	set, ok := susp.(*consensus.SetSuspector)
	if !ok {
		return nil, fmt.Errorf("problems: NBAC needs a suspicion-set detector, got %q", family)
	}
	// The embedded consensus shares the detector stream through its own
	// suspector clone.
	ctSusp, _ := consensus.SuspectorFor(family)
	return &NBACMachine{
		n: n, self: self, susp: set,
		ct:    consensus.NewSMachine(n, self, ctSusp),
		votes: make(map[ioa.Loc]string),
	}, nil
}

// NBACProcs returns the distributed NBAC algorithm over the given
// suspicion-set family (use the perfect detector).
func NBACProcs(n int, family string) ([]ioa.Automaton, error) {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		m, err := NewNBACMachine(n, ioa.Loc(i), family)
		if err != nil {
			return nil, err
		}
		out[i] = system.NewProc("nbac", ioa.Loc(i), n, m, []string{family}, []string{ActNameVote})
	}
	return out, nil
}

// OnStart implements system.Machine.
func (m *NBACMachine) OnStart(*system.Effects) {}

// OnEnvInput implements system.Machine: the vote arrives.
func (m *NBACMachine) OnEnvInput(name, payload string, e *system.Effects) {
	if name != ActNameVote || m.voted {
		return
	}
	m.voted = true
	m.votes[m.self] = payload
	e.Broadcast(m.n, "NV|"+payload)
	m.maybePropose(e)
}

// OnFD implements system.Machine: refresh both layers' suspicions.
func (m *NBACMachine) OnFD(a ioa.Action, e *system.Effects) {
	m.susp.Update(a)
	m.host(e, func(inner *system.Effects) { m.ct.OnFD(a, inner) })
	m.maybePropose(e)
}

// OnReceive implements system.Machine: route vote messages to the vote
// layer and everything else to the embedded consensus.
func (m *NBACMachine) OnReceive(from ioa.Loc, msg string, e *system.Effects) {
	if strings.HasPrefix(msg, "NV|") {
		m.votes[from] = msg[3:]
		m.maybePropose(e)
		return
	}
	m.host(e, func(inner *system.Effects) { m.ct.OnReceive(from, msg, inner) })
}

// maybePropose checks the vote-collection wait condition: every location
// has voted or is suspected.
func (m *NBACMachine) maybePropose(e *system.Effects) {
	if m.proposed || !m.voted {
		return
	}
	allYes := true
	for q := 0; q < m.n; q++ {
		l := ioa.Loc(q)
		v, ok := m.votes[l]
		if !ok {
			if !m.susp.Suspects(l) {
				return // still waiting on l
			}
			allYes = false // a crashed location forces abort
			continue
		}
		if v != VoteYes {
			allYes = false
		}
	}
	m.proposed = true
	proposal := "a"
	if allYes {
		proposal = "c"
	}
	m.host(e, func(inner *system.Effects) {
		m.ct.OnEnvInput(system.ActNamePropose, proposal, inner)
	})
}

// host forwards the embedded machine's sends and converts its decide output
// into the NBAC outcome.
func (m *NBACMachine) host(e *system.Effects, f func(*system.Effects)) {
	inner := system.NewEffects(m.self)
	f(inner)
	for _, a := range inner.Pending() {
		if a.Kind == ioa.KindEnvOut && a.Name == system.ActNameDecide {
			continue // hidden; surfaced as the outcome below
		}
		e.Emit(a)
	}
	if m.done {
		return
	}
	if v, ok := m.ct.Decided(); ok {
		m.done = true
		outcome := OutcomeAbort
		if v == "c" {
			outcome = OutcomeCommit
		}
		e.Output(ActNameOutcome, outcome)
	}
}

// Clone implements system.Machine.
func (m *NBACMachine) Clone() system.Machine {
	c := &NBACMachine{
		n: m.n, self: m.self,
		susp:  m.susp.Clone().(*consensus.SetSuspector),
		ct:    m.ct.Clone().(*consensus.SMachine),
		voted: m.voted, proposed: m.proposed, done: m.done,
	}
	c.votes = make(map[ioa.Loc]string, len(m.votes))
	for l, v := range m.votes {
		c.votes[l] = v
	}
	return c
}

// Encode implements system.Machine.
func (m *NBACMachine) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "NB%v|v%t|p%t|d%t|", m.self, m.voted, m.proposed, m.done)
	for i := 0; i < m.n; i++ {
		if v, ok := m.votes[ioa.Loc(i)]; ok {
			fmt.Fprintf(&b, "%d=%s;", i, v)
		}
	}
	b.WriteByte('|')
	b.WriteString(m.susp.Encode())
	b.WriteByte('|')
	b.WriteString(m.ct.Encode())
	return b.String()
}

// VoterEnv is the NBAC environment at one location: it casts a fixed vote
// once and absorbs the outcome; a crash disables the vote.
type VoterEnv struct {
	id      ioa.Loc
	vote    string
	stopped bool
}

var _ ioa.Automaton = (*VoterEnv)(nil)

// NewVoterEnv returns the environment automaton voting v at id.
func NewVoterEnv(id ioa.Loc, v string) *VoterEnv { return &VoterEnv{id: id, vote: v} }

// VoterEnvs returns one voter per location with the given votes.
func VoterEnvs(votes []string) []ioa.Automaton {
	out := make([]ioa.Automaton, len(votes))
	for i, v := range votes {
		out[i] = NewVoterEnv(ioa.Loc(i), v)
	}
	return out
}

// Name implements ioa.Automaton.
func (v *VoterEnv) Name() string { return fmt.Sprintf("voter[%v]", v.id) }

// Accepts implements ioa.Automaton.
func (v *VoterEnv) Accepts(a ioa.Action) bool {
	if a.Loc != v.id {
		return false
	}
	return a.Kind == ioa.KindCrash || (a.Kind == ioa.KindEnvOut && a.Name == ActNameOutcome)
}

// Input implements ioa.Automaton.
func (v *VoterEnv) Input(a ioa.Action) {
	if a.Kind == ioa.KindCrash {
		v.stopped = true
	}
}

// NumTasks implements ioa.Automaton.
func (v *VoterEnv) NumTasks() int { return 1 }

// TaskLabel implements ioa.Automaton.
func (v *VoterEnv) TaskLabel(int) string { return "vote" }

// Enabled implements ioa.Automaton.
func (v *VoterEnv) Enabled(int) (ioa.Action, bool) {
	if v.stopped {
		return ioa.Action{}, false
	}
	return ioa.EnvInput(ActNameVote, v.id, v.vote), true
}

// Fire implements ioa.Automaton.
func (v *VoterEnv) Fire(ioa.Action) { v.stopped = true }

// Clone implements ioa.Automaton.
func (v *VoterEnv) Clone() ioa.Automaton {
	c := *v
	return &c
}

// Encode implements ioa.Automaton.
func (v *VoterEnv) Encode() string {
	return fmt.Sprintf("V%v|%s|%t", v.id, v.vote, v.stopped)
}
