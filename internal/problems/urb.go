package problems

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/trace"
)

// Uniform Reliable Broadcast (URB), named in Section 1.1 as the problem
// whose weakest failure detector hinges on whether detectors may carry
// information beyond crashes [1, 19].  Specification, for broadcast(m)i
// inputs and deliver(m, src)j outputs:
//
//	integrity         – each location delivers a given (src, seq) at most
//	                    once, and only if src broadcast it;
//	validity          – if a live location broadcasts, every live location
//	                    delivers it;
//	uniform agreement – if ANY location (even one that later crashes)
//	                    delivers a message, every live location delivers it.
//
// Two solvers:
//
//   - URBMajorityProcs: the classic detector-free diffusion algorithm;
//     deliver after receiving echoes from a majority.  Requires f < n/2.
//   - URBPerfectProcs: the P-based variant — deliver after hearing an echo
//     from every unsuspected location.  Tolerates f ≤ n−1; strong accuracy
//     makes skipping a suspected location safe, strong completeness makes
//     the wait terminate.

// URB action names.
const (
	ActNameBroadcast = "urb-bcast"
	ActNameDeliver   = "urb-deliver"
)

// URBSpec checks URB traces.  complete enforces the delivery liveness
// halves (validity, uniform agreement).
type URBSpec struct{ N int }

// Check verifies a finite URB trace over broadcast/deliver/crash events.
// Deliver payloads are "src:seq:value"; broadcast payloads are the value.
func (u URBSpec) Check(t trace.T, complete bool) error {
	type msg struct {
		src ioa.Loc
		seq int
	}
	crashed := make(map[ioa.Loc]bool)
	bcastSeq := make(map[ioa.Loc]int)
	sent := make(map[msg]string)
	delivered := make(map[msg]map[ioa.Loc]bool)
	for _, a := range t {
		switch {
		case a.Kind == ioa.KindCrash:
			crashed[a.Loc] = true
		case a.Kind == ioa.KindEnvIn && a.Name == ActNameBroadcast:
			bcastSeq[a.Loc]++
			sent[msg{a.Loc, bcastSeq[a.Loc]}] = a.Payload
		case a.Kind == ioa.KindEnvOut && a.Name == ActNameDeliver:
			if crashed[a.Loc] {
				return fmt.Errorf("problems: deliver at %v after crash", a.Loc)
			}
			src, seq, val, err := splitURB(a.Payload)
			if err != nil {
				return err
			}
			m := msg{src, seq}
			want, ok := sent[m]
			if !ok {
				return fmt.Errorf("problems: delivered never-broadcast message %v (integrity)", a)
			}
			if val != want {
				return fmt.Errorf("problems: delivered %q for %v, broadcast was %q", val, m, want)
			}
			if delivered[m] == nil {
				delivered[m] = make(map[ioa.Loc]bool)
			}
			if delivered[m][a.Loc] {
				return fmt.Errorf("problems: %v delivered twice at %v (integrity)", m, a.Loc)
			}
			delivered[m][a.Loc] = true
		}
	}
	if !complete {
		return nil
	}
	live := trace.Live(t, u.N)
	// Validity: a live broadcaster's messages reach all live locations.
	for m := range sent {
		if crashed[m.src] {
			continue
		}
		for l := range live {
			if !delivered[m][l] {
				return fmt.Errorf("problems: live broadcast %v not delivered at live %v (validity)", m, l)
			}
		}
	}
	// Uniform agreement: any delivery anywhere forces delivery at all live.
	for m, who := range delivered {
		if len(who) == 0 {
			continue
		}
		for l := range live {
			if !who[l] {
				return fmt.Errorf("problems: %v delivered somewhere but not at live %v (uniform agreement)", m, l)
			}
		}
	}
	return nil
}

func splitURB(p string) (ioa.Loc, int, string, error) {
	parts := strings.SplitN(p, ":", 3)
	if len(parts) != 3 {
		return 0, 0, "", fmt.Errorf("problems: malformed URB payload %q", p)
	}
	src, err := ioa.DecodeLoc(parts[0])
	if err != nil {
		return 0, 0, "", err
	}
	var seq int
	if _, err := fmt.Sscanf(parts[1], "%d", &seq); err != nil {
		return 0, 0, "", fmt.Errorf("problems: malformed URB seq %q", parts[1])
	}
	return src, seq, parts[2], nil
}

// urbMachine implements both URB variants: usePerfect selects the P-based
// wait; otherwise the majority rule applies.
type urbMachine struct {
	system.NopMachine
	n          int
	self       ioa.Loc
	usePerfect bool
	susp       *consensus.SetSuspector

	seq       int
	echoes    map[string]map[ioa.Loc]bool // message id → echoers (incl. self)
	vals      map[string]string           // message id → value
	relayed   map[string]bool
	delivered map[string]bool
}

func newURBMachine(n int, self ioa.Loc, usePerfect bool, susp *consensus.SetSuspector) *urbMachine {
	return &urbMachine{
		n: n, self: self, usePerfect: usePerfect, susp: susp,
		echoes:    make(map[string]map[ioa.Loc]bool),
		vals:      make(map[string]string),
		relayed:   make(map[string]bool),
		delivered: make(map[string]bool),
	}
}

// URBMajorityProcs returns the detector-free diffusion algorithm (f < n/2).
func URBMajorityProcs(n int) []ioa.Automaton {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		m := newURBMachine(n, ioa.Loc(i), false, consensus.NewSetSuspector())
		out[i] = system.NewProc("urb", ioa.Loc(i), n, m, nil, []string{ActNameBroadcast})
	}
	return out
}

// URBPerfectProcs returns the P-based algorithm (f ≤ n−1).
func URBPerfectProcs(n int, family string) ([]ioa.Automaton, error) {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		susp, err := consensus.SuspectorFor(family)
		if err != nil {
			return nil, err
		}
		set, ok := susp.(*consensus.SetSuspector)
		if !ok {
			return nil, fmt.Errorf("problems: URB needs a suspicion-set detector, got %q", family)
		}
		m := newURBMachine(n, ioa.Loc(i), true, set)
		out[i] = system.NewProc("urb", ioa.Loc(i), n, m, []string{family}, []string{ActNameBroadcast})
	}
	return out, nil
}

func (m *urbMachine) OnEnvInput(name, payload string, e *system.Effects) {
	if name != ActNameBroadcast {
		return
	}
	m.seq++
	id := fmt.Sprintf("%v:%d:%s", m.self, m.seq, payload)
	m.learn(id, e)
}

// learn records the message, echoes it once, and re-evaluates delivery.
func (m *urbMachine) learn(id string, e *system.Effects) {
	if m.echoes[id] == nil {
		m.echoes[id] = make(map[ioa.Loc]bool)
	}
	m.echoes[id][m.self] = true
	if !m.relayed[id] {
		m.relayed[id] = true
		e.Broadcast(m.n, "E|"+id)
	}
	m.maybeDeliver(id, e)
}

func (m *urbMachine) OnReceive(from ioa.Loc, msg string, e *system.Effects) {
	if !strings.HasPrefix(msg, "E|") {
		return
	}
	id := msg[2:]
	if m.echoes[id] == nil {
		m.echoes[id] = make(map[ioa.Loc]bool)
	}
	m.echoes[id][from] = true
	m.learn(id, e)
}

func (m *urbMachine) OnFD(a ioa.Action, e *system.Effects) {
	m.susp.Update(a)
	for id := range m.echoes {
		m.maybeDeliver(id, e)
	}
}

func (m *urbMachine) maybeDeliver(id string, e *system.Effects) {
	if m.delivered[id] {
		return
	}
	if m.usePerfect {
		for q := 0; q < m.n; q++ {
			l := ioa.Loc(q)
			if !m.echoes[id][l] && !m.susp.Suspects(l) {
				return
			}
		}
	} else if len(m.echoes[id]) < m.n/2+1 {
		return
	}
	m.delivered[id] = true
	e.Output(ActNameDeliver, id)
}

// Clone implements system.Machine.
func (m *urbMachine) Clone() system.Machine {
	c := newURBMachine(m.n, m.self, m.usePerfect, m.susp.Clone().(*consensus.SetSuspector))
	c.seq = m.seq
	for id, who := range m.echoes {
		inner := make(map[ioa.Loc]bool, len(who))
		for l, b := range who {
			inner[l] = b
		}
		c.echoes[id] = inner
	}
	for id, v := range m.vals {
		c.vals[id] = v
	}
	for id, b := range m.relayed {
		c.relayed[id] = b
	}
	for id, b := range m.delivered {
		c.delivered[id] = b
	}
	return c
}

// Encode implements system.Machine.
func (m *urbMachine) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "UR%v|%d|", m.self, m.seq)
	ids := make([]string, 0, len(m.echoes))
	for id := range m.echoes {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "[%s:%s:r%t:d%t]", id, ioa.EncodeLocSet(m.echoes[id]), m.relayed[id], m.delivered[id])
	}
	b.WriteString(m.susp.Encode())
	return b.String()
}

// BroadcasterEnv issues one broadcast at a location and absorbs deliveries.
type BroadcasterEnv struct {
	id      ioa.Loc
	value   string
	stopped bool
}

var _ ioa.Automaton = (*BroadcasterEnv)(nil)

// NewBroadcasterEnv returns an environment broadcasting value at id.
func NewBroadcasterEnv(id ioa.Loc, value string) *BroadcasterEnv {
	return &BroadcasterEnv{id: id, value: value}
}

// Name implements ioa.Automaton.
func (b *BroadcasterEnv) Name() string { return fmt.Sprintf("bcaster[%v]", b.id) }

// Accepts implements ioa.Automaton.
func (b *BroadcasterEnv) Accepts(a ioa.Action) bool {
	if a.Loc != b.id {
		return false
	}
	return a.Kind == ioa.KindCrash || (a.Kind == ioa.KindEnvOut && a.Name == ActNameDeliver)
}

// Input implements ioa.Automaton.
func (b *BroadcasterEnv) Input(a ioa.Action) {
	if a.Kind == ioa.KindCrash {
		b.stopped = true
	}
}

// NumTasks implements ioa.Automaton.
func (b *BroadcasterEnv) NumTasks() int { return 1 }

// TaskLabel implements ioa.Automaton.
func (b *BroadcasterEnv) TaskLabel(int) string { return "broadcast" }

// Enabled implements ioa.Automaton.
func (b *BroadcasterEnv) Enabled(int) (ioa.Action, bool) {
	if b.stopped {
		return ioa.Action{}, false
	}
	return ioa.EnvInput(ActNameBroadcast, b.id, b.value), true
}

// Fire implements ioa.Automaton.
func (b *BroadcasterEnv) Fire(ioa.Action) { b.stopped = true }

// Clone implements ioa.Automaton.
func (b *BroadcasterEnv) Clone() ioa.Automaton {
	c := *b
	return &c
}

// Encode implements ioa.Automaton.
func (b *BroadcasterEnv) Encode() string {
	return fmt.Sprintf("B%v|%s|%t", b.id, b.value, b.stopped)
}
