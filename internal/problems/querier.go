package problems

import (
	"fmt"

	"repro/internal/ioa"
)

// QuerierEnv is a per-location environment automaton that issues a fixed
// number of detector queries and absorbs the answers.  It is the "external
// world" of the query-based interaction mode of Section 10.1.
type QuerierEnv struct {
	id      ioa.Loc
	queries int
	sent    int
	stopped bool
}

var _ ioa.Automaton = (*QuerierEnv)(nil)

// NewQuerierEnv returns an environment issuing `queries` queries at id.
func NewQuerierEnv(id ioa.Loc, queries int) *QuerierEnv {
	return &QuerierEnv{id: id, queries: queries}
}

// QuerierEnvs returns one querier per location.
func QuerierEnvs(n, queries int) []ioa.Automaton {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		out[i] = NewQuerierEnv(ioa.Loc(i), queries)
	}
	return out
}

// Name implements ioa.Automaton.
func (q *QuerierEnv) Name() string { return fmt.Sprintf("querier[%v]", q.id) }

// Accepts implements ioa.Automaton: detector answers and the crash.
func (q *QuerierEnv) Accepts(a ioa.Action) bool {
	if a.Loc != q.id {
		return false
	}
	return a.Kind == ioa.KindCrash || (a.Kind == ioa.KindFD && a.Name == FamilyParticipant)
}

// Input implements ioa.Automaton.
func (q *QuerierEnv) Input(a ioa.Action) {
	if a.Kind == ioa.KindCrash {
		q.stopped = true
	}
}

// NumTasks implements ioa.Automaton.
func (q *QuerierEnv) NumTasks() int { return 1 }

// TaskLabel implements ioa.Automaton.
func (q *QuerierEnv) TaskLabel(int) string { return "query" }

// Enabled implements ioa.Automaton.
func (q *QuerierEnv) Enabled(int) (ioa.Action, bool) {
	if q.stopped || q.sent >= q.queries {
		return ioa.Action{}, false
	}
	return Query(q.id), true
}

// Fire implements ioa.Automaton.
func (q *QuerierEnv) Fire(ioa.Action) { q.sent++ }

// Clone implements ioa.Automaton.
func (q *QuerierEnv) Clone() ioa.Automaton {
	c := *q
	return &c
}

// Encode implements ioa.Automaton.
func (q *QuerierEnv) Encode() string {
	return fmt.Sprintf("Q%v|%d/%d|%t", q.id, q.sent, q.queries, q.stopped)
}
