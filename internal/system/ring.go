package system

// ringCompactMin is the dead-prefix length below which a ring skips
// compaction: tiny queues just reset when they drain, and the copy cost is
// only paid once the prefix dominates the buffer.
const ringCompactMin = 32

// ring is a FIFO over a slice with a head index.  Popping advances the head
// instead of reslicing (`q = q[1:]` keeps the entire backing array — and
// every value ever enqueued — reachable for the lifetime of the queue);
// popped slots are zeroed immediately so their referents can be collected,
// and the dead prefix is compacted away once it is both ≥ ringCompactMin
// and at least as long as the live suffix, which bounds the buffer at twice
// the live high-water mark regardless of total throughput.
type ring[T any] struct {
	buf  []T
	head int
}

// push enqueues v.
func (r *ring[T]) push(v T) { r.buf = append(r.buf, v) }

// len returns the number of live elements.
func (r *ring[T]) len() int { return len(r.buf) - r.head }

// at returns the i-th live element (0 = head).
func (r *ring[T]) at(i int) T { return r.buf[r.head+i] }

// live returns the live elements as a view into the buffer; callers must not
// retain it across a push or pop.
func (r *ring[T]) live() []T { return r.buf[r.head:] }

// pop dequeues the head element, releasing its slot.
func (r *ring[T]) pop() {
	var zero T
	r.buf[r.head] = zero
	r.head++
	if r.head == len(r.buf) {
		r.buf = r.buf[:0]
		r.head = 0
		return
	}
	if r.head >= ringCompactMin && r.head >= len(r.buf)-r.head {
		n := copy(r.buf, r.buf[r.head:])
		tail := r.buf[n:]
		for i := range tail {
			tail[i] = zero
		}
		r.buf = r.buf[:n]
		r.head = 0
	}
}

// swapTail exchanges the two most recently pushed live elements; it is a
// no-op with fewer than two.  Lossy links use it to realize a bounded
// reorder: the new message overtakes exactly its predecessor.
func (r *ring[T]) swapTail() {
	if r.len() < 2 {
		return
	}
	last := len(r.buf) - 1
	r.buf[last], r.buf[last-1] = r.buf[last-1], r.buf[last]
}

// snapshot returns an independent copy of the live elements, head first.
func (r *ring[T]) snapshot() []T { return append([]T(nil), r.buf[r.head:]...) }

// cloneRing returns an independent compacted copy of r.
func cloneRing[T any](r ring[T]) ring[T] {
	return ring[T]{buf: r.snapshot()}
}
