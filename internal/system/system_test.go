package system

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/ioa"
)

func TestChannelFIFO(t *testing.T) {
	c := NewChannel(0, 1)
	if _, ok := c.Enabled(0); ok {
		t.Fatal("empty channel must not deliver")
	}
	c.Input(ioa.Send(0, 1, "a"))
	c.Input(ioa.Send(0, 1, "b"))
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	act, ok := c.Enabled(0)
	if !ok || act != ioa.Receive(1, 0, "a") {
		t.Fatalf("Enabled = %v, want receive(a,0)_1", act)
	}
	c.Fire(act)
	act, _ = c.Enabled(0)
	if act.Payload != "b" {
		t.Fatalf("FIFO order violated: got %v", act)
	}
}

func TestChannelAccepts(t *testing.T) {
	c := NewChannel(0, 1)
	if !c.Accepts(ioa.Send(0, 1, "m")) {
		t.Error("must accept sends from 0 to 1")
	}
	if c.Accepts(ioa.Send(1, 0, "m")) {
		t.Error("must not accept reverse sends")
	}
	if c.Accepts(ioa.Send(0, 2, "m")) {
		t.Error("must not accept sends to another destination")
	}
	if c.Accepts(ioa.Receive(1, 0, "m")) {
		t.Error("must not accept receives")
	}
}

func TestChannelCloneIndependent(t *testing.T) {
	c := NewChannel(0, 1)
	c.Input(ioa.Send(0, 1, "a"))
	cc := c.Clone().(*Channel)
	c.Input(ioa.Send(0, 1, "b"))
	if cc.Len() != 1 {
		t.Error("clone shares queue with original")
	}
	if c.Encode() == cc.Encode() {
		t.Error("different queues must encode differently")
	}
}

func TestChannelsMesh(t *testing.T) {
	chs := Channels(3)
	if len(chs) != 6 {
		t.Fatalf("full mesh for n=3 has %d channels, want 6", len(chs))
	}
	names := make(map[string]bool)
	for _, c := range chs {
		names[c.Name()] = true
	}
	if len(names) != 6 {
		t.Fatal("channel names must be unique")
	}
}

func TestCrashAutomatonSequencing(t *testing.T) {
	c := NewCrash(CrashOf(1, 0))
	if c.NumTasks() != 2 {
		t.Fatalf("NumTasks = %d", c.NumTasks())
	}
	// Task 1 (second crash) must not be enabled before task 0 fires.
	if _, ok := c.Enabled(1); ok {
		t.Fatal("second crash enabled before first")
	}
	act, ok := c.Enabled(0)
	if !ok || act != ioa.Crash(1) {
		t.Fatalf("first crash = %v", act)
	}
	c.Fire(act)
	if c.Remaining() != 1 {
		t.Fatalf("Remaining = %d", c.Remaining())
	}
	act, ok = c.Enabled(1)
	if !ok || act != ioa.Crash(0) {
		t.Fatalf("second crash = %v", act)
	}
	c.Fire(act)
	if _, ok := c.Enabled(0); ok {
		t.Fatal("fired crash re-enabled")
	}
}

func TestCrashAutomatonNoFaults(t *testing.T) {
	c := NewCrash(NoFaults())
	if c.NumTasks() != 0 {
		t.Fatal("no-fault plan must have no tasks")
	}
}

func TestFaultPlanMaxFaulty(t *testing.T) {
	if got := CrashOf(0, 1, 0).MaxFaulty(); got != 2 {
		t.Errorf("MaxFaulty = %d, want 2 (duplicates collapse)", got)
	}
	if got := NoFaults().MaxFaulty(); got != 0 {
		t.Errorf("MaxFaulty = %d, want 0", got)
	}
}

// echoMachine queues one message to its successor on start and echoes
// everything it receives back to the sender, then decides on first FD input.
type echoMachine struct {
	NopMachine
	n        int
	self     ioa.Loc
	received []string
}

func (m *echoMachine) OnStart(e *Effects) {
	e.Send(ioa.Loc((int(m.self)+1)%m.n), "hello")
}

func (m *echoMachine) OnReceive(from ioa.Loc, msg string, e *Effects) {
	m.received = append(m.received, msg)
	if msg == "hello" {
		e.Send(from, "ack")
	}
}

func (m *echoMachine) OnFD(a ioa.Action, e *Effects) {
	e.Output("decide", a.Payload)
}

func (m *echoMachine) Clone() Machine {
	c := &echoMachine{n: m.n, self: m.self}
	c.received = append([]string(nil), m.received...)
	return c
}

func (m *echoMachine) Encode() string {
	return fmt.Sprintf("echo:%v:%s", m.self, strings.Join(m.received, ","))
}

func TestProcStartAndSend(t *testing.T) {
	p := NewProc("echo", 0, 2, &echoMachine{n: 2, self: 0}, []string{"FD-Ω"}, nil)
	act, ok := p.Enabled(0)
	if !ok || act != ioa.Send(0, 1, "hello") {
		t.Fatalf("initial action = %v, want send(hello,1)_0", act)
	}
	p.Fire(act)
	if _, ok := p.Enabled(0); ok {
		t.Fatal("outbox should be empty after firing the start message")
	}
}

func TestProcReceiveEchoAndFD(t *testing.T) {
	m := &echoMachine{n: 2, self: 1}
	p := NewProc("echo", 1, 2, m, []string{"FD-Ω"}, nil)
	p.Fire(mustEnabled(t, p)) // drain start message

	p.Input(ioa.Receive(1, 0, "hello"))
	act := mustEnabled(t, p)
	if act != ioa.Send(1, 0, "ack") {
		t.Fatalf("echo action = %v", act)
	}
	p.Fire(act)

	p.Input(ioa.FDOutput("FD-Ω", 1, "0"))
	act = mustEnabled(t, p)
	if act != ioa.EnvOutput("decide", 1, "0") {
		t.Fatalf("decide action = %v", act)
	}
}

func TestProcCrashDisablesOutputsAndInputs(t *testing.T) {
	m := &echoMachine{n: 2, self: 0}
	p := NewProc("echo", 0, 2, m, []string{"FD-Ω"}, nil)
	if !p.Accepts(ioa.Crash(0)) {
		t.Fatal("process must accept its own crash")
	}
	if p.Accepts(ioa.Crash(1)) {
		t.Fatal("process must not accept another location's crash")
	}
	p.Input(ioa.Crash(0))
	if !p.Failed() {
		t.Fatal("crash not registered")
	}
	if _, ok := p.Enabled(0); ok {
		t.Fatal("crash must permanently disable locally controlled actions")
	}
	// Inputs after crash are absorbed without reaching the machine.
	p.Input(ioa.Receive(0, 1, "hello"))
	if len(m.received) != 0 {
		t.Fatal("machine saw input after crash")
	}
}

func TestProcAcceptsFiltering(t *testing.T) {
	p := NewProc("echo", 0, 2, &echoMachine{n: 2, self: 0}, []string{"FD-Ω"}, []string{"propose"})
	if !p.Accepts(ioa.Receive(0, 1, "m")) {
		t.Error("must accept receives addressed to it")
	}
	if p.Accepts(ioa.Receive(1, 0, "m")) {
		t.Error("must not accept receives at other locations")
	}
	if !p.Accepts(ioa.FDOutput("FD-Ω", 0, "1")) {
		t.Error("must accept subscribed FD family")
	}
	if p.Accepts(ioa.FDOutput("FD-P", 0, "{}")) {
		t.Error("must not accept unsubscribed FD family")
	}
	if !p.Accepts(ioa.EnvInput("propose", 0, "1")) {
		t.Error("must accept declared env input")
	}
	if p.Accepts(ioa.EnvInput("other", 0, "1")) {
		t.Error("must not accept undeclared env input")
	}
}

func TestProcCloneDeep(t *testing.T) {
	m := &echoMachine{n: 2, self: 0}
	p := NewProc("echo", 0, 2, m, nil, nil)
	c := p.Clone().(*Proc)
	p.Input(ioa.Receive(0, 1, "hello"))
	if c.Encode() == p.Encode() {
		t.Fatal("clone shares state with original")
	}
	if c.PendingOutputs() != 1 { // only the start message
		t.Fatalf("clone outbox = %d, want 1", c.PendingOutputs())
	}
}

func TestConsensusEnvWellFormed(t *testing.T) {
	e := NewConsensusEnv(0)
	// Both propose tasks enabled initially.
	a0, ok0 := e.Enabled(0)
	a1, ok1 := e.Enabled(1)
	if !ok0 || !ok1 {
		t.Fatal("both propose values should be enabled initially")
	}
	if a0.Payload != "0" || a1.Payload != "1" {
		t.Fatalf("payloads = %q, %q", a0.Payload, a1.Payload)
	}
	// Firing one disables both (Proposition 43).
	e.Fire(a0)
	if _, ok := e.Enabled(0); ok {
		t.Error("propose(0) still enabled after propose")
	}
	if _, ok := e.Enabled(1); ok {
		t.Error("propose(1) still enabled after propose")
	}
}

func TestConsensusEnvCrashDisables(t *testing.T) {
	e := NewConsensusEnv(1)
	e.Input(ioa.Crash(1))
	if _, ok := e.Enabled(0); ok {
		t.Error("crash must disable propose")
	}
}

func TestConsensusEnvFixed(t *testing.T) {
	e := NewConsensusEnvFixed(0, 1)
	if _, ok := e.Enabled(0); ok {
		t.Error("fixed env must not enable the other value")
	}
	a, ok := e.Enabled(1)
	if !ok || a.Payload != "1" {
		t.Errorf("fixed env propose = %v, %t", a, ok)
	}
}

func TestConsensusEnvAcceptsDecide(t *testing.T) {
	e := NewConsensusEnv(0)
	if !e.Accepts(ioa.EnvOutput("decide", 0, "1")) {
		t.Error("env must accept its location's decide")
	}
	if e.Accepts(ioa.EnvOutput("decide", 1, "1")) {
		t.Error("env must not accept another location's decide")
	}
	// decide has no effect on stop.
	e.Input(ioa.EnvOutput("decide", 0, "1"))
	if _, ok := e.Enabled(0); !ok {
		t.Error("decide input must not disable propose")
	}
}

func TestConsensusEnvsConstruction(t *testing.T) {
	if got := len(ConsensusEnvs(4)); got != 4 {
		t.Errorf("ConsensusEnvs(4) = %d automata", got)
	}
	envs := ConsensusEnvsFixed([]int{0, 1, 0})
	if len(envs) != 3 {
		t.Fatalf("ConsensusEnvsFixed = %d automata", len(envs))
	}
	a, ok := envs[1].Enabled(1)
	if !ok || a.Payload != "1" {
		t.Errorf("fixed env 1 should propose 1, got %v %t", a, ok)
	}
}

func mustEnabled(t *testing.T, a ioa.Automaton) ioa.Action {
	t.Helper()
	act, ok := a.Enabled(0)
	if !ok {
		t.Fatal("expected an enabled action")
	}
	return act
}
