// Package system implements the system model of Section 4 (Figure 1) of
// "Asynchronous Failure Detectors": process automata, reliable FIFO channel
// automata, the crash automaton, and environment automata (including the
// consensus environment EC of Algorithm 4).
package system

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
	"repro/internal/telemetry"
)

// Channel is the channel automaton Ci,j of Section 4.3: a reliable FIFO
// queue transporting messages from the process automaton at From to the
// process automaton at To.  Its input actions are send(m, To)From, its
// output actions receive(m, From)To, and it has a single task (§4.3: the
// automaton is deterministic).
//
// Channels are unaffected by crashes: messages already sent are delivered
// even if the sender subsequently crashes.
//
// The queue is a head-indexed ring: delivery never re-slices the buffer, so
// delivered message strings are released immediately and the buffer is
// bounded by the in-flight high-water mark, not by the total number of
// messages ever sent (see TestChannelReleasesDeliveredMessages).
type Channel struct {
	From, To ioa.Loc
	queue    ring[string]
	tel      telemetry.Sink // queue-depth sink, nil when telemetry is off
}

var _ ioa.Automaton = (*Channel)(nil)
var _ ioa.Signatured = (*Channel)(nil)

// NewChannel returns the empty channel automaton Cfrom,to.
func NewChannel(from, to ioa.Loc) *Channel {
	return &Channel{From: from, To: to}
}

// Name implements ioa.Automaton.
func (c *Channel) Name() string { return fmt.Sprintf("chan[%v>%v]", c.From, c.To) }

// Accepts implements ioa.Automaton: inputs are send(m, To)From.
func (c *Channel) Accepts(a ioa.Action) bool {
	return a.Kind == ioa.KindSend && a.Name == ioa.NameSend && a.Loc == c.From && a.Peer == c.To
}

// SignatureKeys implements ioa.Signatured: the single send(·, To)From key.
// This is the declaration that collapses System.Apply from offering each
// fired action to all n(n-1) channels of a mesh down to the one channel that
// carries it.
func (c *Channel) SignatureKeys() []ioa.SigKey {
	return ioa.KeysOf(ioa.Send(c.From, c.To, ""))
}

// Input implements ioa.Automaton: enqueue the message.
func (c *Channel) Input(a ioa.Action) {
	c.queue.push(a.Payload)
	if c.tel != nil {
		c.tel.Observe(telemetry.HChannelDepth, int64(c.queue.len()))
	}
}

// SetTelemetry installs (or, with nil, removes) a sink sampling the queue
// depth after every enqueue (the in-flight message count of the §4.3 FIFO
// channel).  Clones never inherit it — Clone constructs a bare Channel —
// matching ioa.System's observer/telemetry semantics.  Typically installed
// across a whole composition via InstrumentChannels.
func (c *Channel) SetTelemetry(tel telemetry.Sink) { c.tel = tel }

// NumTasks implements ioa.Automaton.
func (c *Channel) NumTasks() int { return 1 }

// TaskLabel implements ioa.Automaton.
func (c *Channel) TaskLabel(int) string { return "deliver" }

// Enabled implements ioa.Automaton: receive(head, From)To when non-empty.
func (c *Channel) Enabled(int) (ioa.Action, bool) {
	if c.queue.len() == 0 {
		return ioa.Action{}, false
	}
	return ioa.Receive(c.To, c.From, c.queue.at(0)), true
}

// Fire implements ioa.Automaton: dequeue the delivered message.
func (c *Channel) Fire(ioa.Action) { c.queue.pop() }

// Len returns the number of messages in transit.
func (c *Channel) Len() int { return c.queue.len() }

// Queue returns a copy of the messages in transit, head first.
func (c *Channel) Queue() []string { return c.queue.snapshot() }

// Clone implements ioa.Automaton.
func (c *Channel) Clone() ioa.Automaton {
	return &Channel{From: c.From, To: c.To, queue: cloneRing(c.queue)}
}

// Encode implements ioa.Automaton.
func (c *Channel) Encode() string {
	return fmt.Sprintf("C%v>%v[%s]", c.From, c.To, strings.Join(c.queue.live(), "\x1f"))
}

// Channels returns the full mesh of n(n-1) channel automata for locations
// 0..n-1, in lexicographic (from, to) order.
func Channels(n int) []ioa.Automaton {
	var out []ioa.Automaton
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				out = append(out, NewChannel(ioa.Loc(i), ioa.Loc(j)))
			}
		}
	}
	return out
}
