// Package system implements the system model of Section 4 (Figure 1) of
// "Asynchronous Failure Detectors": process automata, reliable FIFO channel
// automata, the crash automaton, and environment automata (including the
// consensus environment EC of Algorithm 4).
package system

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
	"repro/internal/telemetry"
)

// Channel is the channel automaton Ci,j of Section 4.3: a reliable FIFO
// queue transporting messages from the process automaton at From to the
// process automaton at To.  Its input actions are send(m, To)From, its
// output actions receive(m, From)To, and it has a single task (§4.3: the
// automaton is deterministic).
//
// Channels are unaffected by crashes: messages already sent are delivered
// even if the sender subsequently crashes.
//
// The queue is a head-indexed ring: delivery never re-slices the buffer, so
// delivered message strings are released immediately and the buffer is
// bounded by the in-flight high-water mark, not by the total number of
// messages ever sent (see TestChannelReleasesDeliveredMessages).
//
// Concurrency (audited for the live backend): the ring, the send counter,
// and the shared Net log are unsynchronized by design — like every
// automaton, a Channel is stepped by exactly one serialized driver (the
// simulated scheduler, or the live runtime's step lock).  The telemetry
// sink is the one member that must be concurrency-safe, and the Sink
// contract already requires that.
type Channel struct {
	From, To ioa.Loc
	queue    ring[string]
	tel      telemetry.Sink // queue-depth sink, nil when telemetry is off
	net      *Net           // adversarial network, nil for the reliable default
	sent     uint64         // sends accepted so far; indexes Net link decisions
}

var _ ioa.Automaton = (*Channel)(nil)
var _ ioa.Signatured = (*Channel)(nil)

// NewChannel returns the empty channel automaton Cfrom,to.
func NewChannel(from, to ioa.Loc) *Channel {
	return &Channel{From: from, To: to}
}

// NewNetChannel returns the empty channel automaton Cfrom,to applying nt's
// per-link loss decisions (nil nt: reliable).  The caller is responsible
// for only constructing channels whose link nt's topology contains;
// NetChannels does both.
func NewNetChannel(from, to ioa.Loc, nt *Net) *Channel {
	return &Channel{From: from, To: to, net: nt}
}

// Name implements ioa.Automaton.
func (c *Channel) Name() string { return fmt.Sprintf("chan[%v>%v]", c.From, c.To) }

// Accepts implements ioa.Automaton: inputs are send(m, To)From.
func (c *Channel) Accepts(a ioa.Action) bool {
	return a.Kind == ioa.KindSend && a.Name == ioa.NameSend && a.Loc == c.From && a.Peer == c.To
}

// SignatureKeys implements ioa.Signatured: the single send(·, To)From key.
// This is the declaration that collapses System.Apply from offering each
// fired action to all n(n-1) channels of a mesh down to the one channel that
// carries it.
func (c *Channel) SignatureKeys() []ioa.SigKey {
	return ioa.KeysOf(ioa.Send(c.From, c.To, ""))
}

// Input implements ioa.Automaton: enqueue the message, subject to the
// link's loss decision when an adversarial network is attached.
func (c *Channel) Input(a ioa.Action) { c.deliverIn(a.Payload) }

// deliverIn applies the link outcome for one accepted send and returns it,
// so TrackedChannel can mirror the outcome onto its stamp queue.  The
// reliable path (no net) is exactly the pre-network behavior.
func (c *Channel) deliverIn(payload string) LinkOutcome {
	out := OutDeliver
	if c.net != nil {
		out = c.net.Spec.Outcome(c.From, c.To, c.sent)
		c.net.record(c.From, c.To, c.sent, out)
		c.sent++
	}
	switch out {
	case OutDrop:
		if c.tel != nil {
			c.tel.Count(telemetry.CMsgDropped, 1)
		}
		return out
	case OutDup:
		c.queue.push(payload)
		c.queue.push(payload)
		if c.tel != nil {
			c.tel.Count(telemetry.CMsgDuplicated, 1)
		}
	case OutReorder:
		c.queue.push(payload)
		c.queue.swapTail()
		if c.tel != nil {
			c.tel.Count(telemetry.CMsgReordered, 1)
		}
	default:
		c.queue.push(payload)
	}
	if c.tel != nil {
		c.tel.Observe(telemetry.HChannelDepth, int64(c.queue.len()))
	}
	return out
}

// SetTelemetry installs (or, with nil, removes) a sink sampling the queue
// depth after every enqueue (the in-flight message count of the §4.3 FIFO
// channel).  Clones never inherit it — Clone constructs a bare Channel —
// matching ioa.System's observer/telemetry semantics.  Typically installed
// across a whole composition via InstrumentChannels.
func (c *Channel) SetTelemetry(tel telemetry.Sink) { c.tel = tel }

// NumTasks implements ioa.Automaton.
func (c *Channel) NumTasks() int { return 1 }

// TaskLabel implements ioa.Automaton.
func (c *Channel) TaskLabel(int) string { return "deliver" }

// Enabled implements ioa.Automaton: receive(head, From)To when non-empty.
func (c *Channel) Enabled(int) (ioa.Action, bool) {
	if c.queue.len() == 0 {
		return ioa.Action{}, false
	}
	return ioa.Receive(c.To, c.From, c.queue.at(0)), true
}

// Fire implements ioa.Automaton: dequeue the delivered message.
func (c *Channel) Fire(ioa.Action) { c.queue.pop() }

// Len returns the number of messages in transit.
func (c *Channel) Len() int { return c.queue.len() }

// Queue returns a copy of the messages in transit, head first.
func (c *Channel) Queue() []string { return c.queue.snapshot() }

// Network returns the attached adversarial network, nil for reliable
// channels.  The differential oracle reads the spec from it to re-derive
// link decisions independently.
func (c *Channel) Network() *Net { return c.net }

// Sent returns the number of sends this channel has accepted — the index
// the next link decision will be drawn at.
func (c *Channel) Sent() uint64 { return c.sent }

// Clone implements ioa.Automaton.  Clones share the per-run Net (like
// TrackedChannel's SendClock) and carry the send counter: future link
// decisions are a function of it, so it is part of the state.
func (c *Channel) Clone() ioa.Automaton {
	return &Channel{From: c.From, To: c.To, queue: cloneRing(c.queue), net: c.net, sent: c.sent}
}

// Encode implements ioa.Automaton.  Lossy channels append the send counter:
// two states differing only in it behave differently on the next send, so
// the counter is part of state identity; reliable channels (including
// topology-restricted ones) keep the exact pre-network encoding, so pinned
// golden hashes are untouched.
func (c *Channel) Encode() string {
	if c.net != nil && c.net.Spec.Lossy() {
		return fmt.Sprintf("C%v>%v[%s]@%d", c.From, c.To, strings.Join(c.queue.live(), "\x1f"), c.sent)
	}
	return fmt.Sprintf("C%v>%v[%s]", c.From, c.To, strings.Join(c.queue.live(), "\x1f"))
}

// Channels returns the full mesh of n(n-1) channel automata for locations
// 0..n-1, in lexicographic (from, to) order.
func Channels(n int) []ioa.Automaton { return NetChannels(n, nil) }

// NetChannels returns the channel automata of nt's topology for locations
// 0..n-1, in lexicographic (from, to) order, each applying nt's loss
// decisions.  A nil nt yields the reliable full mesh; a send over a link
// the topology omits synchronizes with no channel and vanishes at the
// sender.
func NetChannels(n int, nt *Net) []ioa.Automaton {
	var out []ioa.Automaton
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || (nt != nil && !nt.Spec.Topo.Has(ioa.Loc(i), ioa.Loc(j))) {
				continue
			}
			out = append(out, NewNetChannel(ioa.Loc(i), ioa.Loc(j), nt))
		}
	}
	return out
}
