package system

import (
	"fmt"
	"strconv"
	"testing"

	"repro/internal/ioa"
	"repro/internal/sched"
)

// burstSender is a minimal process automaton that emits k send(m, to)self
// actions and then goes quiet; it halts permanently on its own crash, like
// the Figure-1 process automata.
type burstSender struct {
	self, to ioa.Loc
	k        int
	sent     int
	crashed  bool
}

func (s *burstSender) Name() string { return fmt.Sprintf("burst[%v]", s.self) }
func (s *burstSender) Accepts(a ioa.Action) bool {
	return a.Kind == ioa.KindCrash && a.Loc == s.self
}
func (s *burstSender) Input(ioa.Action)     { s.crashed = true }
func (s *burstSender) NumTasks() int        { return 1 }
func (s *burstSender) TaskLabel(int) string { return "send" }
func (s *burstSender) Enabled(int) (ioa.Action, bool) {
	if s.crashed || s.sent >= s.k {
		return ioa.Action{}, false
	}
	return ioa.Send(s.self, s.to, "m"+strconv.Itoa(s.sent)), true
}
func (s *burstSender) Fire(ioa.Action) { s.sent++ }
func (s *burstSender) Clone() ioa.Automaton {
	c := *s
	return &c
}
func (s *burstSender) Encode() string {
	return fmt.Sprintf("B%v>%v:%d/%d:%v", s.self, s.to, s.sent, s.k, s.crashed)
}

// runSenderCrash composes sender → channel → crash(sender) and runs it with
// a gate that holds back the crash until all k sends are out and every
// delivery until the crash has fired.  The resulting trace exhibits the
// §4.3 guarantee directly: all messages in transit at crash time are still
// delivered, after the crash event.
func runSenderCrash(t *testing.T, k int, run func(*ioa.System, sched.Options) sched.Result) []ioa.Action {
	t.Helper()
	sender := &burstSender{self: 0, to: 1, k: k}
	sys, err := ioa.NewSystem(sender, NewChannel(0, 1), NewCrash(CrashOf(0)))
	if err != nil {
		t.Fatal(err)
	}
	crashed := false
	gate := func(_ int, _ ioa.TaskRef, act ioa.Action) bool {
		switch act.Kind {
		case ioa.KindCrash:
			if sender.sent < k {
				return false // crash only after the full burst is in transit
			}
			crashed = true
			return true
		case ioa.KindReceive:
			return crashed // deliveries strictly after the crash
		}
		return true
	}
	res := run(sys, sched.Options{MaxSteps: 200, Gate: gate})
	if res.Reason != sched.StopQuiescent {
		t.Fatalf("reason = %s, want quiescent", res.Reason)
	}
	return sys.Trace()
}

// checkPreCrashDelivery asserts the §4.3 crash semantics on the trace: the
// sender's crash occurs, and every one of the k messages sent before it is
// delivered afterwards, in FIFO order.
func checkPreCrashDelivery(t *testing.T, tr []ioa.Action, k int) {
	t.Helper()
	crashAt := -1
	var delivered []string
	for i, a := range tr {
		switch a.Kind {
		case ioa.KindCrash:
			crashAt = i
		case ioa.KindReceive:
			if crashAt < 0 {
				t.Fatalf("delivery %v before the crash; gate broken", a)
			}
			delivered = append(delivered, a.Payload)
		}
	}
	if crashAt < 0 {
		t.Fatal("crash never fired")
	}
	if len(delivered) != k {
		t.Fatalf("delivered %d of %d messages sent before the crash", len(delivered), k)
	}
	for i, m := range delivered {
		if want := "m" + strconv.Itoa(i); m != want {
			t.Fatalf("delivery %d = %q, want %q (FIFO)", i, m, want)
		}
	}
}

func TestChannelDeliversPreCrashMessagesRoundRobin(t *testing.T) {
	tr := runSenderCrash(t, 3, sched.RoundRobin)
	checkPreCrashDelivery(t, tr, 3)
}

func TestChannelDeliversPreCrashMessagesRandom(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		tr := runSenderCrash(t, 3, func(sys *ioa.System, opts sched.Options) sched.Result {
			return sched.Random(sys, seed, opts)
		})
		checkPreCrashDelivery(t, tr, 3)
	}
}

func TestTrackedChannelStampsFollowSendOrder(t *testing.T) {
	clock := NewSendClock()
	ab := NewTrackedChannel(0, 1, clock)
	ba := NewTrackedChannel(1, 0, clock)
	ab.Input(ioa.Send(0, 1, "x"))
	ba.Input(ioa.Send(1, 0, "y"))
	ab.Input(ioa.Send(0, 1, "z"))
	if s, ok := ab.HeadStamp(); !ok || s != 1 {
		t.Fatalf("ab head stamp = %d,%v want 1", s, ok)
	}
	if s, ok := ba.HeadStamp(); !ok || s != 2 {
		t.Fatalf("ba head stamp = %d,%v want 2", s, ok)
	}
	act, ok := ab.Enabled(0)
	if !ok {
		t.Fatal("ab should deliver")
	}
	ab.Fire(act)
	if s, _ := ab.HeadStamp(); s != 3 {
		t.Fatalf("ab head stamp after fire = %d, want 3", s)
	}
	if _, ok := NewTrackedChannel(2, 3, clock).HeadStamp(); ok {
		t.Fatal("empty tracked channel reported a head stamp")
	}
}

func TestPlanSubsets(t *testing.T) {
	plans := PlanSubsets(3, 1)
	if len(plans) != 4 { // ∅, {0}, {1}, {2}
		t.Fatalf("PlanSubsets(3,1) = %d plans, want 4", len(plans))
	}
	plans = PlanSubsets(3, 2)
	if len(plans) != 7 { // + {0,1}, {0,2}, {1,2}
		t.Fatalf("PlanSubsets(3,2) = %d plans, want 7", len(plans))
	}
	// maxT clamped to n; every location distinct within a plan.
	plans = PlanSubsets(2, 5)
	if len(plans) != 4 {
		t.Fatalf("PlanSubsets(2,5) = %d plans, want 4", len(plans))
	}
	for _, p := range plans {
		if p.MaxFaulty() != len(p.Crash) {
			t.Fatalf("plan %v repeats a location", p)
		}
	}
}

func TestFaultPlanWithoutCrash(t *testing.T) {
	p := CrashOf(0, 1, 2)
	q := p.WithoutCrash(1)
	if len(q.Crash) != 2 || q.Crash[0] != 0 || q.Crash[1] != 2 {
		t.Fatalf("WithoutCrash(1) = %v", q)
	}
	if got := p.WithoutCrash(7); len(got.Crash) != 3 {
		t.Fatalf("out-of-range removal changed the plan: %v", got)
	}
	if p.String() != "crash{0,1,2}" {
		t.Fatalf("String = %q", p.String())
	}
}
