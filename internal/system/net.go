package system

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// LinkOutcome is the fate a lossy link assigns one send.
type LinkOutcome uint8

// Link outcomes, in decision order (drop is tested first, then duplicate,
// then reorder).
const (
	// OutDeliver: the message is enqueued normally (reliable behavior).
	OutDeliver LinkOutcome = iota
	// OutDrop: the message vanishes at the link.
	OutDrop
	// OutDup: the message is enqueued twice back to back.
	OutDup
	// OutReorder: the message is enqueued, then swapped with its in-flight
	// predecessor — a bounded FIFO violation of window 2.
	OutReorder
)

// String returns the artifact wire name of the outcome.
func (o LinkOutcome) String() string {
	switch o {
	case OutDrop:
		return "drop"
	case OutDup:
		return "dup"
	case OutReorder:
		return "reorder"
	default:
		return "deliver"
	}
}

// NetSpec names an adversarial network as plain data: the topology plus
// per-link loss behavior.  Drop, Dup, and Reorder are permille rates; the
// per-send decision is a pure function of (Seed, link, per-link send index),
// so a run over a NetSpec is exactly as replayable as one over reliable
// channels — the spec rides in the trace.Artifact and replays re-derive
// every decision instead of playing a log back.
//
// The zero value is the reliable full mesh: IsZero reports it and every
// construction path treats it as "no network layer at all".
type NetSpec struct {
	Topo    Topology
	Seed    int64
	Drop    int // permille of sends dropped
	Dup     int // permille of sends duplicated
	Reorder int // permille of sends swapped with their predecessor
}

// Lossy reports whether any loss behavior is enabled.
func (s NetSpec) Lossy() bool { return s.Drop > 0 || s.Dup > 0 || s.Reorder > 0 }

// IsZero reports whether the spec is the reliable full mesh — no topology
// restriction, no loss.
func (s NetSpec) IsZero() bool { return s.Topo.IsFull() && !s.Lossy() }

// Equal reports spec equality (NetSpec holds a Topology, so == does not
// apply).
func (s NetSpec) Equal(o NetSpec) bool {
	return s.Topo.Equal(o.Topo) && s.Seed == o.Seed &&
		s.Drop == o.Drop && s.Dup == o.Dup && s.Reorder == o.Reorder
}

// mix64 is the SplitMix64 output finalizer — the same mixing function
// behind sched.PRNG — so link decisions inherit its statistical quality and
// its cross-release stability.  Inlined here rather than imported: the k-th
// decision of a link is a stateless function of (seed, link, k), which no
// sequential PRNG interface exposes.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Outcome decides the fate of the seq-th send (0-based) over the link
// from→to.  Pure: the channel consults it while executing and the oracle's
// shadow re-derives it independently with its own counter, so a channel
// that miscounts sends diverges from the shadow instead of dragging it
// along.  Drop, Dup, and Reorder are tested against disjoint bit ranges of
// one mixed word, so a single rate change does not reshuffle the other
// decisions.
func (s NetSpec) Outcome(from, to ioa.Loc, seq uint64) LinkOutcome {
	if !s.Lossy() {
		return OutDeliver
	}
	link := uint64(from)<<32 | uint64(to)<<16
	w := mix64(uint64(s.Seed) ^ (link + (seq+1)*0x9e3779b97f4a7c15))
	if s.Drop > 0 && int(w%1000) < s.Drop {
		return OutDrop
	}
	if s.Dup > 0 && int((w>>10)%1000) < s.Dup {
		return OutDup
	}
	if s.Reorder > 0 && int((w>>20)%1000) < s.Reorder {
		return OutReorder
	}
	return OutDeliver
}

// MaxNetLog bounds the per-run link-event log, mirroring MaxGateLog for
// gate vetoes: the log is informational (replay re-derives decisions from
// the spec), so it is capped rather than complete.
const MaxNetLog = 256

// Net is one run's instance of a NetSpec: the channels of a mesh share it
// to record the non-deliver link decisions for the run's artifact.  Clones
// share the instance too — the chaos machinery runs one line of execution
// per net, like TrackedChannel's SendClock.
//
// Concurrency (audited for the live backend): the event log is appended by
// Channel.Input with no synchronization of its own, on the assumption of a
// single serialized stepper — the simulated scheduler loop, or the live
// runtime's step lock, under which every channel Input runs.  Outcome
// decisions themselves are pure (stateless), so only the informational log
// depends on this.
type Net struct {
	Spec   NetSpec
	events []trace.LinkEvent
}

// NewNet returns a fresh per-run instance of spec.
func NewNet(spec NetSpec) *Net { return &Net{Spec: spec} }

// record logs one non-deliver decision, up to MaxNetLog.
func (n *Net) record(from, to ioa.Loc, seq uint64, out LinkOutcome) {
	if out == OutDeliver || len(n.events) >= MaxNetLog {
		return
	}
	n.events = append(n.events, trace.LinkEvent{
		Link:    fmt.Sprintf("%v>%v", from, to),
		Seq:     seq,
		Outcome: out.String(),
	})
}

// Events returns the recorded non-deliver decisions, in decision order.
func (n *Net) Events() []trace.LinkEvent { return n.events }
