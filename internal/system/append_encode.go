package system

import (
	"strconv"

	"repro/internal/ioa"
)

// Append-style encoders (ioa.AppendEncoder) for the automata that dominate
// composed-state fingerprinting in the execution-tree explorer.  Each must
// append exactly the bytes its Encode() returns; contract_test.go checks the
// equality on driven systems.

var (
	_ ioa.AppendEncoder = (*Channel)(nil)
	_ ioa.AppendEncoder = (*Proc)(nil)
	_ ioa.AppendEncoder = (*ConsensusEnv)(nil)
	_ ioa.AppendEncoder = (*CrashAutomaton)(nil)
)

// AppendEncode implements ioa.AppendEncoder.
func (c *Channel) AppendEncode(dst []byte) []byte {
	dst = append(dst, 'C')
	dst = appendLoc(dst, c.From)
	dst = append(dst, '>')
	dst = appendLoc(dst, c.To)
	dst = append(dst, '[')
	for i, m := range c.queue.live() {
		if i > 0 {
			dst = append(dst, '\x1f')
		}
		dst = append(dst, m...)
	}
	return append(dst, ']')
}

// AppendEncode implements ioa.AppendEncoder.
func (p *Proc) AppendEncode(dst []byte) []byte {
	dst = append(dst, 'P')
	dst = appendLoc(dst, p.id)
	dst = append(dst, "|f="...)
	dst = strconv.AppendBool(dst, p.failed)
	dst = append(dst, '|')
	for _, a := range p.outbox.live() {
		dst = a.AppendTo(dst)
		dst = append(dst, ';')
	}
	dst = append(dst, '|')
	if ae, ok := p.m.(ioa.AppendEncoder); ok {
		return ae.AppendEncode(dst)
	}
	return append(dst, p.m.Encode()...)
}

// AppendEncode implements ioa.AppendEncoder.
func (e *ConsensusEnv) AppendEncode(dst []byte) []byte {
	dst = append(dst, 'E')
	dst = appendLoc(dst, e.id)
	dst = append(dst, '|')
	dst = strconv.AppendBool(dst, e.stop)
	dst = append(dst, '|')
	dst = strconv.AppendBool(dst, e.allow[0])
	return strconv.AppendBool(dst, e.allow[1])
}

// AppendEncode implements ioa.AppendEncoder.
func (c *CrashAutomaton) AppendEncode(dst []byte) []byte {
	dst = append(dst, 'C', 'R')
	dst = strconv.AppendInt(dst, int64(c.fired), 10)
	dst = append(dst, '/')
	for i, l := range c.plan.Crash {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendLoc(dst, l)
	}
	return dst
}

// appendLoc appends l.String() ("⊥" for NoLoc, decimal otherwise).
func appendLoc(dst []byte, l ioa.Loc) []byte {
	if l == ioa.NoLoc {
		return append(dst, "⊥"...)
	}
	return strconv.AppendInt(dst, int64(l), 10)
}
