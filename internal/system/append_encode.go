package system

import (
	"strconv"

	"repro/internal/ioa"
)

// Append-style encoders (ioa.AppendEncoder) for the automata that dominate
// composed-state fingerprinting in the execution-tree explorer.  Each must
// append exactly the bytes its Encode() returns; contract_test.go checks the
// equality on driven systems.

var (
	_ ioa.AppendEncoder = (*Channel)(nil)
	_ ioa.AppendEncoder = (*Proc)(nil)
	_ ioa.AppendEncoder = (*ConsensusEnv)(nil)
	_ ioa.AppendEncoder = (*CrashAutomaton)(nil)
)

// AppendEncode implements ioa.AppendEncoder.
func (c *Channel) AppendEncode(dst []byte) []byte {
	return c.appendEncodeQueue(dst, c.queue.live(), c.sent)
}

// AppendEncode implements ioa.AppendEncoder.
func (p *Proc) AppendEncode(dst []byte) []byte {
	dst = append(dst, 'P')
	dst = appendLoc(dst, p.id)
	dst = append(dst, "|f="...)
	dst = strconv.AppendBool(dst, p.failed)
	dst = append(dst, '|')
	for _, a := range p.outbox.live() {
		dst = a.AppendTo(dst)
		dst = append(dst, ';')
	}
	dst = append(dst, '|')
	if ae, ok := p.m.(ioa.AppendEncoder); ok {
		return ae.AppendEncode(dst)
	}
	return append(dst, p.m.Encode()...)
}

// AppendEncode implements ioa.AppendEncoder.
func (e *ConsensusEnv) AppendEncode(dst []byte) []byte {
	dst = append(dst, 'E')
	dst = appendLoc(dst, e.id)
	dst = append(dst, '|')
	dst = strconv.AppendBool(dst, e.stop)
	dst = append(dst, '|')
	dst = strconv.AppendBool(dst, e.allow[0])
	return strconv.AppendBool(dst, e.allow[1])
}

// AppendEncode implements ioa.AppendEncoder.
func (c *CrashAutomaton) AppendEncode(dst []byte) []byte {
	dst = append(dst, 'C', 'R')
	dst = strconv.AppendInt(dst, int64(c.fired), 10)
	dst = append(dst, '/')
	for i, l := range c.plan.Crash {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendLoc(dst, l)
	}
	return dst
}

// appendLoc appends l.String() ("⊥" for NoLoc, decimal otherwise).
func appendLoc(dst []byte, l ioa.Loc) []byte {
	if l == ioa.NoLoc {
		return append(dst, "⊥"...)
	}
	return strconv.AppendInt(dst, int64(l), 10)
}

// Post-event encoders (ioa.PostFireEncoder / ioa.PostInputEncoder): render
// the successor encoding of an event without cloning.  Proc.Fire and
// Channel.Fire only dequeue — the hosted machine never moves — so the
// delta-encoding explorer can emit the post-fire segment directly instead
// of deep-cloning a process (machine and all) just to pop one queue head.

var (
	_ ioa.PostFireEncoder  = (*Channel)(nil)
	_ ioa.PostFireEncoder  = (*Proc)(nil)
	_ ioa.PostInputEncoder = (*Channel)(nil)
	_ ioa.PostInputEncoder = (*Proc)(nil)
)

// AppendEncodePostFire implements ioa.PostFireEncoder: Fire dequeues the
// head message, so the successor encoding is the live queue minus its head.
// The send counter is unchanged (it advances on Input, not Fire).
func (c *Channel) AppendEncodePostFire(_ ioa.Action, dst []byte) ([]byte, bool) {
	if c.queue.len() == 0 {
		return dst, false
	}
	return c.appendEncodeQueue(dst, c.queue.live()[1:], c.sent), true
}

// AppendEncodePostInput implements ioa.PostInputEncoder: on a reliable link
// Input enqueues the payload, so the successor encoding is the live queue
// plus the payload at the tail.  Links with an adversarial network attached
// report false — their delivery outcome depends on (and records into)
// shared Net state, which a pure encoding preview must not touch.
func (c *Channel) AppendEncodePostInput(a ioa.Action, dst []byte) ([]byte, bool) {
	if c.net != nil {
		return dst, false
	}
	live := c.queue.live()
	dst = append(dst, 'C')
	dst = appendLoc(dst, c.From)
	dst = append(dst, '>')
	dst = appendLoc(dst, c.To)
	dst = append(dst, '[')
	for _, m := range live {
		dst = append(dst, m...)
		dst = append(dst, '\x1f')
	}
	dst = append(dst, a.Payload...)
	return append(dst, ']'), true
}

// appendEncodeQueue renders the channel encoding for an explicit live queue.
func (c *Channel) appendEncodeQueue(dst []byte, live []string, sent uint64) []byte {
	dst = append(dst, 'C')
	dst = appendLoc(dst, c.From)
	dst = append(dst, '>')
	dst = appendLoc(dst, c.To)
	dst = append(dst, '[')
	for i, m := range live {
		if i > 0 {
			dst = append(dst, '\x1f')
		}
		dst = append(dst, m...)
	}
	dst = append(dst, ']')
	if c.net != nil && c.net.Spec.Lossy() {
		dst = append(dst, '@')
		dst = strconv.AppendUint(dst, sent, 10)
	}
	return dst
}

// AppendEncodePostFire implements ioa.PostFireEncoder: Fire pops the outbox
// head; the hosted machine is untouched.
func (p *Proc) AppendEncodePostFire(_ ioa.Action, dst []byte) ([]byte, bool) {
	if p.outbox.len() == 0 {
		return dst, false
	}
	dst = append(dst, 'P')
	dst = appendLoc(dst, p.id)
	dst = append(dst, "|f="...)
	dst = strconv.AppendBool(dst, p.failed)
	dst = append(dst, '|')
	for _, a := range p.outbox.live()[1:] {
		dst = a.AppendTo(dst)
		dst = append(dst, ';')
	}
	dst = append(dst, '|')
	if ae, ok := p.m.(ioa.AppendEncoder); ok {
		return ae.AppendEncode(dst), true
	}
	return append(dst, p.m.Encode()...), true
}

// AppendEncodePostInput implements ioa.PostInputEncoder for the two inputs
// that bypass the machine (§4.2): a crash only flips the failed flag, and
// inputs at an already-failed process are absorbed with no effect.  All
// other inputs run the machine and report false.
func (p *Proc) AppendEncodePostInput(a ioa.Action, dst []byte) ([]byte, bool) {
	if a.Kind != ioa.KindCrash && !p.failed {
		return dst, false
	}
	dst = append(dst, 'P')
	dst = appendLoc(dst, p.id)
	dst = append(dst, "|f=true|"...)
	for _, qa := range p.outbox.live() {
		dst = qa.AppendTo(dst)
		dst = append(dst, ';')
	}
	dst = append(dst, '|')
	if ae, ok := p.m.(ioa.AppendEncoder); ok {
		return ae.AppendEncode(dst), true
	}
	return append(dst, p.m.Encode()...), true
}
