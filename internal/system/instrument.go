package system

import (
	"repro/internal/ioa"
	"repro/internal/telemetry"
)

// InstrumentChannels installs tel as the queue-depth sink on every channel
// automaton of the composition (Channel and TrackedChannel both qualify via
// the promoted SetTelemetry) and returns the number instrumented.  Pass nil
// to detach.  Combined with ioa.System.SetTelemetry and a scheduler
// Options.Telemetry this wires a full run end to end; chaos.TelemetryHook
// does all three in one ExecuteInstrumented hook.
func InstrumentChannels(sys *ioa.System, tel telemetry.Sink) int {
	n := 0
	for _, a := range sys.Automata() {
		if c, ok := a.(interface{ SetTelemetry(telemetry.Sink) }); ok {
			c.SetTelemetry(tel)
			n++
		}
	}
	return n
}

// TaskLabels returns the composition's flattened task labels in task order,
// for telemetry.Registry.SetTaskLabels — so metric snapshots report
// actions-fired-per-task by name ("p0/step", "chan[0>1]/deliver") rather
// than by index.
func TaskLabels(sys *ioa.System) []string {
	tasks := sys.Tasks()
	out := make([]string, len(tasks))
	for i, tr := range tasks {
		out[i] = sys.TaskLabel(tr)
	}
	return out
}
