package system

import (
	"testing"

	"repro/internal/ioa"
)

// TestAppendEncodeMatchesEncode drives each AppendEncoder automaton through
// representative states and asserts AppendEncode appends exactly Encode()'s
// bytes — the explorer's interned keys depend on the two agreeing.
func TestAppendEncodeMatchesEncode(t *testing.T) {
	ch := NewChannel(0, 1)
	chFull := NewChannel(2, 0)
	chFull.Input(ioa.Send(2, 0, "a"))
	chFull.Input(ioa.Send(2, 0, "b|c\x1fd"))

	// Lossy channels append "@sent" to their encoding; the send counter is
	// part of state identity and must round-trip through AppendEncode too.
	lossyNet := NewNet(NetSpec{Drop: 100, Seed: 7})
	chLossy := NetChannels(2, lossyNet)[0].(*Channel)
	chLossy.Input(ioa.Send(chLossy.From, chLossy.To, "m1"))
	chLossy.Input(ioa.Send(chLossy.From, chLossy.To, "m2"))

	cr := NewCrash(CrashOf(0, 2))
	crFired := NewCrash(CrashOf(1))
	crFired.Fire(ioa.Crash(1))

	env := NewConsensusEnv(0)
	envFixed := NewConsensusEnvFixed(1, 1)
	envStopped := NewConsensusEnv(2)
	envStopped.Input(ioa.Crash(2))

	proc := NewProc("echo", 0, 2, &echoMachine{n: 2, self: 0}, []string{"FD-Ω"}, []string{"propose"})
	procBusy := NewProc("echo", 1, 2, &echoMachine{n: 2, self: 1}, []string{"FD-Ω"}, []string{"propose"})
	procBusy.Input(ioa.Receive(1, 0, "hello"))

	for _, a := range []ioa.Automaton{
		ch, chFull, chLossy, cr, crFired, NewCrash(NoFaults()),
		env, envFixed, envStopped, proc, procBusy,
	} {
		ae, ok := a.(ioa.AppendEncoder)
		if !ok {
			t.Fatalf("%s: not an AppendEncoder", a.Name())
		}
		if got, want := string(ae.AppendEncode(nil)), a.Encode(); got != want {
			t.Errorf("%s: AppendEncode = %q, want %q", a.Name(), got, want)
		}
	}
}

// TestSystemAppendEncodeOnDrivenComposition checks the composed encoding on
// a real system after events have fired.
func TestSystemAppendEncodeOnDrivenComposition(t *testing.T) {
	autos := []ioa.Automaton{
		NewProc("echo", 0, 2, &echoMachine{n: 2, self: 0}, nil, []string{"propose"}),
	}
	autos = append(autos, Channels(2)...)
	autos = append(autos, NewConsensusEnv(0), NewConsensusEnvFixed(1, 0))
	sys := ioa.MustNewSystem(autos...)
	check := func() {
		t.Helper()
		if got, want := string(sys.AppendEncode(nil)), sys.Encode(); got != want {
			t.Fatalf("system AppendEncode = %q, want %q", got, want)
		}
		if got, want := sys.EncodeHash(), ioa.HashBytes(ioa.HashSeed, []byte(sys.Encode())); got != want {
			t.Fatalf("EncodeHash = %#x, want %#x", got, want)
		}
	}
	check()
	for i := 0; i < 20; i++ {
		idx, ok := sys.NextReady(-1)
		if !ok {
			break
		}
		sys.Step(sys.TaskAt(idx))
		check()
	}
}
