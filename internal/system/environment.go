package system

import (
	"fmt"

	"repro/internal/ioa"
)

// ActNamePropose and ActNameDecide are the action families of the
// f-crash-tolerant binary consensus problem (Section 9.1).
const (
	ActNamePropose = "propose"
	ActNameDecide  = "decide"
)

// ConsensusEnv is the environment automaton EC,i of Algorithm 4 (Section
// 9.2), one per location.  It has output actions propose(0)i and propose(1)i
// (one task each), input actions decide(0)i, decide(1)i and crashi, and a
// single stop flag: any propose or a crash permanently disables both propose
// actions.  The composition of all ConsensusEnv automata is the well-formed
// environment EC (Theorem 44).
//
// Allow restricts which values may be proposed at this location.  Algorithm
// 4 enables both; a run with predetermined inputs enables exactly one, which
// preserves well-formedness (the set of fair traces shrinks).
type ConsensusEnv struct {
	id    ioa.Loc
	allow [2]bool
	stop  bool
}

var _ ioa.Automaton = (*ConsensusEnv)(nil)
var _ ioa.Signatured = (*ConsensusEnv)(nil)

// NewConsensusEnv returns EC,i with both propose values enabled.
func NewConsensusEnv(i ioa.Loc) *ConsensusEnv {
	return &ConsensusEnv{id: i, allow: [2]bool{true, true}}
}

// NewConsensusEnvFixed returns EC,i that proposes exactly v.
func NewConsensusEnvFixed(i ioa.Loc, v int) *ConsensusEnv {
	e := &ConsensusEnv{id: i}
	e.allow[v] = true
	return e
}

// Name implements ioa.Automaton.
func (e *ConsensusEnv) Name() string { return fmt.Sprintf("env[%v]", e.id) }

// Accepts implements ioa.Automaton: decide(b)i and crashi.
func (e *ConsensusEnv) Accepts(a ioa.Action) bool {
	if a.Loc != e.id {
		return false
	}
	return (a.Kind == ioa.KindCrash && a.Name == ioa.NameCrash) ||
		(a.Kind == ioa.KindEnvOut && a.Name == ActNameDecide)
}

// SignatureKeys implements ioa.Signatured: crashi and decide(·)i.
func (e *ConsensusEnv) SignatureKeys() []ioa.SigKey {
	return ioa.KeysOf(ioa.Crash(e.id), ioa.EnvOutput(ActNameDecide, e.id, ""))
}

// Input implements ioa.Automaton.
func (e *ConsensusEnv) Input(a ioa.Action) {
	if a.Kind == ioa.KindCrash {
		e.stop = true
	}
	// decide(b)i has no effect (Algorithm 4).
}

// Quiescent implements ioa.QuiescentReporter: once stopped (proposed or
// crashed) the environment never fires again, and every input it accepts
// leaves its state unchanged (crash is idempotent, decide is a no-op).
func (e *ConsensusEnv) Quiescent() bool { return e.stop }

// CanSend implements ioa.SendProspector: environments never emit send
// actions under any input sequence (their signature has none).
func (e *ConsensusEnv) CanSend() bool { return false }

// PendingProspects implements ioa.PendingProspect: the still-allowed propose
// outputs, none once stopped.
func (e *ConsensusEnv) PendingProspects(yield func(ioa.Action) bool) {
	for t := 0; t < 2; t++ {
		if a, ok := e.Enabled(t); ok && !yield(a) {
			return
		}
	}
}

// NumTasks implements ioa.Automaton: Envi,0 and Envi,1.
func (e *ConsensusEnv) NumTasks() int { return 2 }

// TaskLabel implements ioa.Automaton.
func (e *ConsensusEnv) TaskLabel(t int) string { return fmt.Sprintf("Env_%v,%d", e.id, t) }

// Enabled implements ioa.Automaton.
func (e *ConsensusEnv) Enabled(t int) (ioa.Action, bool) {
	if e.stop || !e.allow[t] {
		return ioa.Action{}, false
	}
	return ioa.EnvInput(ActNamePropose, e.id, fmt.Sprintf("%d", t)), true
}

// Fire implements ioa.Automaton: any propose sets stop (Proposition 43).
func (e *ConsensusEnv) Fire(ioa.Action) { e.stop = true }

// Clone implements ioa.Automaton.
func (e *ConsensusEnv) Clone() ioa.Automaton {
	c := *e
	return &c
}

// Encode implements ioa.Automaton.
func (e *ConsensusEnv) Encode() string {
	return fmt.Sprintf("E%v|%t|%t%t", e.id, e.stop, e.allow[0], e.allow[1])
}

// ConsensusEnvs returns the n per-location environment automata whose
// composition is EC.
func ConsensusEnvs(n int) []ioa.Automaton {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		out[i] = NewConsensusEnv(ioa.Loc(i))
	}
	return out
}

// ConsensusEnvsFixed returns environment automata proposing vals[i] at i.
func ConsensusEnvsFixed(vals []int) []ioa.Automaton {
	out := make([]ioa.Automaton, len(vals))
	for i, v := range vals {
		out[i] = NewConsensusEnvFixed(ioa.Loc(i), v)
	}
	return out
}
