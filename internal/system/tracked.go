package system

import (
	"fmt"

	"repro/internal/ioa"
)

// SendClock is a monotonic counter shared by a mesh of TrackedChannels; it
// stamps every enqueued message with its global send order.  Stamps are a
// deterministic function of the schedule, so runs over tracked channels
// replay exactly.
//
// Concurrency (audited for the live backend): the counter is a plain
// uint64, deliberately unsynchronized — it is driven by exactly one
// serialized stepper, either a simulated scheduler loop or the live
// runtime's step lock (internal/live serializes every automaton step, and
// only builds lifo=false targets, which don't use tracked channels at
// all).  Concurrent steppers over one clock are out of contract.
type SendClock struct{ now uint64 }

// NewSendClock returns a clock starting at zero.
func NewSendClock() *SendClock { return &SendClock{} }

func (c *SendClock) tick() uint64 { c.now++; return c.now }

// Now returns the number of stamps issued so far.
func (c *SendClock) Now() uint64 { return c.now }

// TrackedChannel is a Channel that additionally stamps each in-transit
// message with the global send order from a shared SendClock.  Delivery
// semantics are identical to Channel (reliable FIFO, unaffected by
// crashes); the stamps exist so adversarial schedulers can prioritize
// deliveries by send recency (e.g. deliver-last-sent-first) while staying a
// deterministic function of the schedule.  The stamp queue is the same
// head-indexed ring as the message queue, so long runs release delivered
// stamps too.
type TrackedChannel struct {
	Channel
	clock  *SendClock
	stamps ring[uint64]
}

var _ ioa.Automaton = (*TrackedChannel)(nil)
var _ ioa.Signatured = (*TrackedChannel)(nil)

// NewTrackedChannel returns the empty tracked channel automaton from→to
// stamping with clock.
func NewTrackedChannel(from, to ioa.Loc, clock *SendClock) *TrackedChannel {
	return &TrackedChannel{Channel: Channel{From: from, To: to}, clock: clock}
}

// NewNetTrackedChannel is NewTrackedChannel over an adversarial network
// (nil nt: reliable).
func NewNetTrackedChannel(from, to ioa.Loc, clock *SendClock, nt *Net) *TrackedChannel {
	return &TrackedChannel{Channel: Channel{From: from, To: to, net: nt}, clock: clock}
}

// Input enqueues the message and stamps it, mirroring the link outcome onto
// the stamp queue so stamps stay parallel to messages.  The clock ticks on
// every send regardless of outcome — the send happened; a dropped message
// simply consumes its stamp — which the oracle's shadow clock counter
// replicates.
func (c *TrackedChannel) Input(a ioa.Action) {
	out := c.deliverIn(a.Payload)
	stamp := c.clock.tick()
	switch out {
	case OutDrop:
	case OutDup:
		c.stamps.push(stamp)
		c.stamps.push(stamp)
	case OutReorder:
		c.stamps.push(stamp)
		c.stamps.swapTail()
	default:
		c.stamps.push(stamp)
	}
}

// Fire dequeues the delivered message and its stamp.
func (c *TrackedChannel) Fire(a ioa.Action) {
	c.Channel.Fire(a)
	c.stamps.pop()
}

// HeadStamp returns the send stamp of the message next in line for
// delivery, and false when the channel is empty.
func (c *TrackedChannel) HeadStamp() (uint64, bool) {
	if c.stamps.len() == 0 {
		return 0, false
	}
	return c.stamps.at(0), true
}

// Stamps returns a copy of the send stamps in transit, head first, parallel
// to Queue().
func (c *TrackedChannel) Stamps() []uint64 { return c.stamps.snapshot() }

// Clock returns the shared send clock.
func (c *TrackedChannel) Clock() *SendClock { return c.clock }

// Clone implements ioa.Automaton.  The clone SHARES the send clock: stamp
// uniqueness is global, and the chaos machinery only ever runs one line of
// execution per clock.  Drivers forking executions (the execution tree)
// should use plain Channels.
func (c *TrackedChannel) Clone() ioa.Automaton {
	return &TrackedChannel{
		Channel: Channel{From: c.From, To: c.To, queue: cloneRing(c.queue), net: c.net, sent: c.sent},
		clock:   c.clock,
		stamps:  cloneRing(c.stamps),
	}
}

// Encode implements ioa.Automaton; stamps are part of the state.
func (c *TrackedChannel) Encode() string {
	return fmt.Sprintf("T%s#%v", c.Channel.Encode(), c.stamps.live())
}

// TrackedChannels returns the full mesh of n(n-1) tracked channel automata
// for locations 0..n-1 sharing one clock, in lexicographic (from, to)
// order — a drop-in replacement for Channels when schedulers need send
// stamps.
func TrackedChannels(n int, clock *SendClock) []ioa.Automaton {
	return NetTrackedChannels(n, clock, nil)
}

// NetTrackedChannels is NetChannels with send stamping: the tracked channel
// automata of nt's topology sharing one clock, in lexicographic (from, to)
// order.  A nil nt yields the reliable full mesh.
func NetTrackedChannels(n int, clock *SendClock, nt *Net) []ioa.Automaton {
	var out []ioa.Automaton
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j || (nt != nil && !nt.Spec.Topo.Has(ioa.Loc(i), ioa.Loc(j))) {
				continue
			}
			out = append(out, NewNetTrackedChannel(ioa.Loc(i), ioa.Loc(j), clock, nt))
		}
	}
	return out
}
