package system

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
)

// FaultPlan declares which locations may crash during a run.  The crash
// automaton of Section 4.4 has *every* sequence over Iˆ as a fair trace; a
// FaultPlan selects the particular fault pattern a run realizes, and the
// scheduler controls the timing (including never scheduling an enabled crash
// before the run's step bound, or scheduling it adversarially).
type FaultPlan struct {
	// Crash lists the locations that crash, in the order their crash tasks
	// become enabled.  Duplicates are allowed (the crash automaton may emit
	// crashi repeatedly); only the first occurrence matters to recipients.
	Crash []ioa.Loc
}

// NoFaults is the empty fault plan.
func NoFaults() FaultPlan { return FaultPlan{} }

// CrashOf returns a plan crashing exactly the given locations once each.
func CrashOf(locs ...ioa.Loc) FaultPlan { return FaultPlan{Crash: locs} }

// MaxFaulty returns the number of distinct locations the plan crashes.
func (p FaultPlan) MaxFaulty() int {
	seen := make(map[ioa.Loc]bool)
	for _, l := range p.Crash {
		seen[l] = true
	}
	return len(seen)
}

// String renders the plan compactly, e.g. "crash{0,2}" or "crash{}".
func (p FaultPlan) String() string {
	locs := make([]string, len(p.Crash))
	for i, l := range p.Crash {
		locs[i] = l.String()
	}
	return "crash{" + strings.Join(locs, ",") + "}"
}

// WithoutCrash returns a copy of the plan with the k-th planned crash event
// removed (the shrinker's elementary reduction step).  Out-of-range k
// returns the plan unchanged.
func (p FaultPlan) WithoutCrash(k int) FaultPlan {
	if k < 0 || k >= len(p.Crash) {
		return p
	}
	out := make([]ioa.Loc, 0, len(p.Crash)-1)
	out = append(out, p.Crash[:k]...)
	out = append(out, p.Crash[k+1:]...)
	return FaultPlan{Crash: out}
}

// PlanSubsets enumerates every fault plan crashing a subset of locations
// 0..n-1 with at most maxT distinct crashes, each location at most once, in
// deterministic order (by subset size, then lexicographically).  The empty
// plan comes first.  The count is sum_{k<=maxT} C(n,k); callers keep n and
// maxT small or sample with a PRNG instead.
func PlanSubsets(n, maxT int) []FaultPlan {
	if maxT > n {
		maxT = n
	}
	var out []FaultPlan
	var rec func(start int, cur []ioa.Loc, want int)
	rec = func(start int, cur []ioa.Loc, want int) {
		if len(cur) == want {
			out = append(out, CrashOf(append([]ioa.Loc(nil), cur...)...))
			return
		}
		for i := start; i < n; i++ {
			rec(i+1, append(cur, ioa.Loc(i)), want)
		}
	}
	for k := 0; k <= maxT; k++ {
		rec(0, nil, k)
	}
	return out
}

// CrashAutomaton realizes the crash automaton C of Section 4.4 restricted to
// a fault plan: it has one task per planned crash event; task k is enabled
// once tasks 0..k-1 have fired.  Sequencing the tasks keeps the fault
// pattern deterministic while leaving all timing freedom to the scheduler.
// A plan with no crashes has no enabled tasks, so never crashing is fair.
type CrashAutomaton struct {
	plan  FaultPlan
	fired int // number of planned crash events already emitted
}

var _ ioa.Automaton = (*CrashAutomaton)(nil)
var _ ioa.Signatured = (*CrashAutomaton)(nil)

// NewCrash returns a crash automaton for the given plan.
func NewCrash(plan FaultPlan) *CrashAutomaton {
	return &CrashAutomaton{plan: plan}
}

// Name implements ioa.Automaton.
func (c *CrashAutomaton) Name() string { return "crash-automaton" }

// Accepts implements ioa.Automaton: the crash automaton has no inputs.
func (c *CrashAutomaton) Accepts(ioa.Action) bool { return false }

// SignatureKeys implements ioa.Signatured: the empty signature, so the
// routing index never offers the crash automaton anything.
func (c *CrashAutomaton) SignatureKeys() []ioa.SigKey { return nil }

// Input implements ioa.Automaton.
func (c *CrashAutomaton) Input(ioa.Action) {}

// NumTasks implements ioa.Automaton.
func (c *CrashAutomaton) NumTasks() int { return len(c.plan.Crash) }

// TaskLabel implements ioa.Automaton.
func (c *CrashAutomaton) TaskLabel(t int) string {
	return fmt.Sprintf("crash_%v#%d", c.plan.Crash[t], t)
}

// Enabled implements ioa.Automaton: only the next planned crash is enabled.
func (c *CrashAutomaton) Enabled(t int) (ioa.Action, bool) {
	if t != c.fired || t >= len(c.plan.Crash) {
		return ioa.Action{}, false
	}
	return ioa.Crash(c.plan.Crash[t]), true
}

// Fire implements ioa.Automaton.
func (c *CrashAutomaton) Fire(ioa.Action) { c.fired++ }

// Remaining reports how many planned crash events have not yet fired.
func (c *CrashAutomaton) Remaining() int { return len(c.plan.Crash) - c.fired }

// Clone implements ioa.Automaton.
func (c *CrashAutomaton) Clone() ioa.Automaton {
	return &CrashAutomaton{plan: c.plan, fired: c.fired}
}

// Encode implements ioa.Automaton.
func (c *CrashAutomaton) Encode() string {
	locs := make([]string, len(c.plan.Crash))
	for i, l := range c.plan.Crash {
		locs[i] = l.String()
	}
	return fmt.Sprintf("CR%d/%s", c.fired, strings.Join(locs, ","))
}
