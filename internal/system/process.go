package system

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
)

// Machine is the algorithm logic hosted by a process automaton.  A Machine
// reacts to inputs by queueing locally controlled actions through Effects;
// the hosting Proc serializes them through its single task, which makes the
// composed automaton deterministic in the paper's sense (§2.5: one task,
// deterministic actions, unique start state).
//
// Machines never see events after the location crashes: the Proc base
// implements the §4.2 crash semantics (crashi permanently disables all
// locally controlled actions; subsequent inputs are absorbed silently).
type Machine interface {
	// OnStart is called once, before any event, to queue initial actions.
	OnStart(e *Effects)
	// OnReceive handles receive(m, from) at this location.
	OnReceive(from ioa.Loc, m string, e *Effects)
	// OnFD handles a failure-detector output event delivered at this
	// location (any KindFD action the process subscribes to).
	OnFD(a ioa.Action, e *Effects)
	// OnEnvInput handles an environment input (e.g. propose).
	OnEnvInput(name, payload string, e *Effects)
	// Clone returns a deep copy of the machine state.
	Clone() Machine
	// Encode returns a canonical encoding of the machine state.
	Encode() string
}

// Effects accumulates the locally controlled actions a Machine emits while
// handling one event.  Actions are performed in FIFO order by the process
// task.
type Effects struct {
	self    ioa.Loc
	pending []ioa.Action
}

// NewEffects returns an Effects accumulator for the given location.  The
// Proc base builds these internally; the constructor is exported so Machine
// implementations can be unit-tested in isolation.
func NewEffects(self ioa.Loc) *Effects { return &Effects{self: self} }

// Pending returns the actions queued so far, in emission order.
func (e *Effects) Pending() []ioa.Action { return e.pending }

// Send queues send(m, to)self.
func (e *Effects) Send(to ioa.Loc, m string) {
	e.pending = append(e.pending, ioa.Send(e.self, to, m))
}

// Broadcast queues send(m, j)self for every j ≠ self among 0..n-1.
func (e *Effects) Broadcast(n int, m string) {
	for j := 0; j < n; j++ {
		if ioa.Loc(j) != e.self {
			e.Send(ioa.Loc(j), m)
		}
	}
}

// Output queues an environment output (e.g. decide).
func (e *Effects) Output(name, payload string) {
	e.pending = append(e.pending, ioa.EnvOutput(name, e.self, payload))
}

// OutputFD queues a failure-detector output event at this location; used by
// distributed algorithms that *solve* an AFD (Sections 5.4–7).
func (e *Effects) OutputFD(family, payload string) {
	e.pending = append(e.pending, ioa.FDOutput(family, e.self, payload))
}

// Emit queues an arbitrary locally controlled action.
func (e *Effects) Emit(a ioa.Action) { e.pending = append(e.pending, a) }

// Proc is the process automaton proc(i) of Section 4.2: it hosts a Machine,
// absorbs crashi by permanently disabling its locally controlled actions,
// accepts receive events addressed to it, the failure-detector families it
// subscribes to, and the environment inputs it declares.
type Proc struct {
	id      ioa.Loc
	n       int
	label   string
	fdNames map[string]bool // subscribed KindFD families
	envIn   map[string]bool // accepted KindEnvIn names
	failed  bool
	started bool
	outbox  ring[ioa.Action]
	m       Machine
}

var _ ioa.Automaton = (*Proc)(nil)
var _ ioa.Signatured = (*Proc)(nil)

// NewProc hosts machine m at location id in a system of n locations.
// fdNames lists the failure-detector action families delivered to the
// machine; envInputs lists accepted environment input names.
func NewProc(label string, id ioa.Loc, n int, m Machine, fdNames, envInputs []string) *Proc {
	p := &Proc{
		id:      id,
		n:       n,
		label:   label,
		fdNames: make(map[string]bool, len(fdNames)),
		envIn:   make(map[string]bool, len(envInputs)),
		m:       m,
	}
	for _, f := range fdNames {
		p.fdNames[f] = true
	}
	for _, e := range envInputs {
		p.envIn[e] = true
	}
	// OnStart runs against the unique start state, before any input.
	eff := &Effects{self: id}
	m.OnStart(eff)
	for _, a := range eff.pending {
		p.outbox.push(a)
	}
	p.started = true
	return p
}

// ID returns the hosted location.
func (p *Proc) ID() ioa.Loc { return p.id }

// Failed reports whether crashi has occurred.
func (p *Proc) Failed() bool { return p.failed }

// Quiescent implements ioa.QuiescentReporter: a failed process never fires
// again and absorbs every input without a state change.
func (p *Proc) Quiescent() bool { return p.failed }

// CanSend implements ioa.SendProspector (fresh sends only — the queued
// outbox is what PendingProspects enumerates): a failed process never runs
// its machine again; a live one defers to the hosted machine when it
// declares its own send prospects, and otherwise may send in response to
// any input.
func (p *Proc) CanSend() bool {
	if p.failed {
		return false
	}
	if sp, ok := p.m.(ioa.SendProspector); ok {
		return sp.CanSend()
	}
	return true
}

// PendingProspects implements ioa.PendingProspect: without further inputs
// the machine runs no more handlers, so the queued outbox is exactly what
// the process can still fire.
func (p *Proc) PendingProspects(yield func(ioa.Action) bool) {
	if p.failed {
		return
	}
	for _, a := range p.outbox.live() {
		if !yield(a) {
			return
		}
	}
}

// MachineState exposes the hosted machine for assertions in tests.
func (p *Proc) MachineState() Machine { return p.m }

// Name implements ioa.Automaton.
func (p *Proc) Name() string { return fmt.Sprintf("%s[%v]", p.label, p.id) }

// Accepts implements ioa.Automaton.  Crash and receive actions must carry
// their canonical names and an in-range peer (every constructor guarantees
// this), so that the signature below covers Accepts exactly.
func (p *Proc) Accepts(a ioa.Action) bool {
	switch a.Kind {
	case ioa.KindCrash:
		return a.Loc == p.id && a.Name == ioa.NameCrash
	case ioa.KindReceive:
		return a.Loc == p.id && a.Name == ioa.NameReceive &&
			a.Peer >= 0 && int(a.Peer) < p.n
	case ioa.KindFD:
		return a.Loc == p.id && p.fdNames[a.Name]
	case ioa.KindEnvIn:
		return a.Loc == p.id && p.envIn[a.Name]
	default:
		return false
	}
}

// SignatureKeys implements ioa.Signatured: crashi, receive(·, j)i for every
// location j, the subscribed failure-detector families at i, and the
// declared environment inputs at i.
func (p *Proc) SignatureKeys() []ioa.SigKey {
	keys := ioa.KeysOf(ioa.Crash(p.id))
	for j := 0; j < p.n; j++ {
		keys = append(keys, ioa.KeyOf(ioa.Receive(p.id, ioa.Loc(j), "")))
	}
	for f := range p.fdNames {
		keys = append(keys, ioa.KeyOf(ioa.FDOutput(f, p.id, "")))
	}
	for e := range p.envIn {
		keys = append(keys, ioa.KeyOf(ioa.EnvInput(e, p.id, "")))
	}
	return keys
}

// Input implements ioa.Automaton.  Per §4.2, inputs arriving after crashi
// have no visible effect (all locally controlled actions stay disabled), so
// they are absorbed without consulting the machine.
func (p *Proc) Input(a ioa.Action) {
	if a.Kind == ioa.KindCrash {
		p.failed = true
		return
	}
	if p.failed {
		return
	}
	eff := &Effects{self: p.id}
	switch a.Kind {
	case ioa.KindReceive:
		p.m.OnReceive(a.Peer, a.Payload, eff)
	case ioa.KindFD:
		p.m.OnFD(a, eff)
	case ioa.KindEnvIn:
		p.m.OnEnvInput(a.Name, a.Payload, eff)
	}
	for _, act := range eff.pending {
		p.outbox.push(act)
	}
}

// NumTasks implements ioa.Automaton: a process automaton is deterministic,
// hence has exactly one task (§2.5, §4.2).
func (p *Proc) NumTasks() int { return 1 }

// TaskLabel implements ioa.Automaton.
func (p *Proc) TaskLabel(int) string { return "step" }

// Enabled implements ioa.Automaton: the head of the outbox, unless crashed.
func (p *Proc) Enabled(int) (ioa.Action, bool) {
	if p.failed || p.outbox.len() == 0 {
		return ioa.Action{}, false
	}
	return p.outbox.at(0), true
}

// Fire implements ioa.Automaton.
func (p *Proc) Fire(ioa.Action) { p.outbox.pop() }

// PendingOutputs returns the number of queued locally controlled actions.
func (p *Proc) PendingOutputs() int { return p.outbox.len() }

// Clone implements ioa.Automaton.
func (p *Proc) Clone() ioa.Automaton {
	c := &Proc{
		id:      p.id,
		n:       p.n,
		label:   p.label,
		fdNames: p.fdNames, // immutable after construction
		envIn:   p.envIn,   // immutable after construction
		failed:  p.failed,
		started: p.started,
		m:       p.m.Clone(),
	}
	c.outbox = cloneRing(p.outbox)
	return c
}

// Encode implements ioa.Automaton.
func (p *Proc) Encode() string {
	var b strings.Builder
	fmt.Fprintf(&b, "P%v|f=%t|", p.id, p.failed)
	for _, a := range p.outbox.live() {
		b.WriteString(a.String())
		b.WriteByte(';')
	}
	b.WriteByte('|')
	b.WriteString(p.m.Encode())
	return b.String()
}

// NopMachine is a Machine with no behavior; useful as a base to embed when a
// machine only reacts to a subset of events.
type NopMachine struct{}

// OnStart implements Machine.
func (NopMachine) OnStart(*Effects) {}

// OnReceive implements Machine.
func (NopMachine) OnReceive(ioa.Loc, string, *Effects) {}

// OnFD implements Machine.
func (NopMachine) OnFD(ioa.Action, *Effects) {}

// OnEnvInput implements Machine.
func (NopMachine) OnEnvInput(string, string, *Effects) {}
