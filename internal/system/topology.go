package system

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/ioa"
)

// maxTopologyLocs bounds topology sizes: adjacency is a per-source bitmask,
// and every composition in this repository stays far below 64 locations.
const maxTopologyLocs = 64

// Topology restricts which directed links of the n-location mesh exist.
// The paper's model (§4.3) assumes the complete graph; a Topology is the
// controlled relaxation of that assumption — a channel automaton is only
// composed for links the topology contains, so a send over a missing link
// synchronizes with nothing and the message vanishes at the sender.
//
// The zero value is the full mesh over any number of locations, so code
// that never mentions topologies behaves exactly as before.  Topologies
// round-trip through the compact descriptor strings of ParseTopology so
// they can ride along in a trace.Artifact.
type Topology struct {
	n    int
	desc string
	adj  []uint64 // adj[i] = bitmask of destinations reachable from i; nil = full
}

// FullTopology is the complete graph (the paper's reliable-mesh default).
func FullTopology(n int) Topology { return Topology{n: n} }

// RingTopology connects i ↔ i+1 mod n bidirectionally.
func RingTopology(n int) Topology {
	t := emptyTopology(n, "ring")
	for i := 0; i < n; i++ {
		t.link(i, (i+1)%n)
		t.link((i+1)%n, i)
	}
	return t
}

// StarTopology connects every location bidirectionally to the hub and to
// nothing else.
func StarTopology(n int, hub ioa.Loc) Topology {
	t := emptyTopology(n, fmt.Sprintf("star:%d", hub))
	for i := 0; i < n; i++ {
		if ioa.Loc(i) != hub {
			t.link(i, int(hub))
			t.link(int(hub), i)
		}
	}
	return t
}

// GridTopology lays rows×cols locations out row-major and connects
// 4-neighborhoods bidirectionally (a 1×n grid is the line).
func GridTopology(rows, cols int) Topology {
	t := emptyTopology(rows*cols, fmt.Sprintf("grid:%dx%d", rows, cols))
	idx := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				t.link(idx(r, c), idx(r, c+1))
				t.link(idx(r, c+1), idx(r, c))
			}
			if r+1 < rows {
				t.link(idx(r, c), idx(r+1, c))
				t.link(idx(r+1, c), idx(r, c))
			}
		}
	}
	return t
}

// CutTopology is the full mesh minus every link touching loc: the location
// is isolated structurally (its channels do not exist), as opposed to being
// partitioned by a gate (its deliveries are vetoed) — the difference is
// observable as StopQuiescent versus StopGated.
func CutTopology(n int, loc ioa.Loc) Topology {
	t := emptyTopology(n, fmt.Sprintf("cut:%d", loc))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && ioa.Loc(i) != loc && ioa.Loc(j) != loc {
				t.link(i, j)
			}
		}
	}
	return t
}

// Link is one directed edge of an arbitrary topology.
type Link struct{ From, To ioa.Loc }

// LinksTopology is the arbitrary directed graph over exactly the given
// links.
func LinksTopology(n int, links ...Link) Topology {
	parts := make([]string, len(links))
	for i, l := range links {
		parts[i] = fmt.Sprintf("%d>%d", l.From, l.To)
	}
	t := emptyTopology(n, "links:"+strings.Join(parts, ","))
	for _, l := range links {
		t.link(int(l.From), int(l.To))
	}
	return t
}

func emptyTopology(n int, desc string) Topology {
	if n > maxTopologyLocs {
		panic(fmt.Sprintf("system: topology over %d locations exceeds the %d-location bound", n, maxTopologyLocs))
	}
	return Topology{n: n, desc: desc, adj: make([]uint64, n)}
}

func (t *Topology) link(from, to int) { t.adj[from] |= 1 << uint(to) }

// IsFull reports whether the topology is the unrestricted mesh.
func (t Topology) IsFull() bool { return t.adj == nil }

// Has reports whether the directed link from→to exists.  Self-loops never
// exist (the mesh has no i→i channel).
func (t Topology) Has(from, to ioa.Loc) bool {
	if from == to {
		return false
	}
	if t.adj == nil {
		return true
	}
	if int(from) >= len(t.adj) {
		return false
	}
	return t.adj[from]>>uint(to)&1 == 1
}

// Desc returns the descriptor string ParseTopology round-trips ("full" for
// the zero value).
func (t Topology) Desc() string {
	if t.adj == nil {
		return "full"
	}
	return t.desc
}

// Equal reports whether two topologies connect the same links (Topology
// holds a slice, so == does not apply).
func (t Topology) Equal(o Topology) bool {
	if t.adj == nil || o.adj == nil {
		return t.adj == nil && o.adj == nil
	}
	if len(t.adj) != len(o.adj) {
		return false
	}
	for i := range t.adj {
		if t.adj[i] != o.adj[i] {
			return false
		}
	}
	return true
}

// ParseTopology resolves a descriptor for n locations: "" or "full",
// "ring", "star:H", "grid:RxC" (with R*C = n), "cut:L", or
// "links:a>b,c>d,...".  Every constructor's Desc round-trips through it.
func ParseTopology(n int, desc string) (Topology, error) {
	if n > maxTopologyLocs {
		return Topology{}, fmt.Errorf("system: topology over %d locations exceeds the %d-location bound", n, maxTopologyLocs)
	}
	switch {
	case desc == "" || desc == "full":
		return FullTopology(n), nil
	case desc == "ring":
		return RingTopology(n), nil
	case strings.HasPrefix(desc, "star:"):
		hub, err := strconv.Atoi(strings.TrimPrefix(desc, "star:"))
		if err != nil || hub < 0 || hub >= n {
			return Topology{}, fmt.Errorf("system: bad star topology %q for n=%d", desc, n)
		}
		return StarTopology(n, ioa.Loc(hub)), nil
	case strings.HasPrefix(desc, "grid:"):
		dims := strings.SplitN(strings.TrimPrefix(desc, "grid:"), "x", 2)
		if len(dims) != 2 {
			return Topology{}, fmt.Errorf("system: bad grid topology %q", desc)
		}
		rows, err1 := strconv.Atoi(dims[0])
		cols, err2 := strconv.Atoi(dims[1])
		if err1 != nil || err2 != nil || rows <= 0 || cols <= 0 || rows*cols != n {
			return Topology{}, fmt.Errorf("system: grid topology %q does not cover n=%d", desc, n)
		}
		return GridTopology(rows, cols), nil
	case strings.HasPrefix(desc, "cut:"):
		loc, err := strconv.Atoi(strings.TrimPrefix(desc, "cut:"))
		if err != nil || loc < 0 || loc >= n {
			return Topology{}, fmt.Errorf("system: bad cut topology %q for n=%d", desc, n)
		}
		return CutTopology(n, ioa.Loc(loc)), nil
	case strings.HasPrefix(desc, "links:"):
		var links []Link
		body := strings.TrimPrefix(desc, "links:")
		if body != "" {
			for _, part := range strings.Split(body, ",") {
				ends := strings.SplitN(part, ">", 2)
				if len(ends) != 2 {
					return Topology{}, fmt.Errorf("system: bad link %q in topology %q", part, desc)
				}
				from, err1 := strconv.Atoi(ends[0])
				to, err2 := strconv.Atoi(ends[1])
				if err1 != nil || err2 != nil || from < 0 || to < 0 || from >= n || to >= n || from == to {
					return Topology{}, fmt.Errorf("system: bad link %q in topology %q for n=%d", part, desc, n)
				}
				links = append(links, Link{ioa.Loc(from), ioa.Loc(to)})
			}
		}
		return LinksTopology(n, links...), nil
	default:
		return Topology{}, fmt.Errorf("system: unknown topology descriptor %q", desc)
	}
}
