package system

import (
	"testing"

	"repro/internal/ioa"
)

// TestAutomatonContracts applies the shared structural contract to every
// automaton this package defines, in fresh and in advanced states.
func TestAutomatonContracts(t *testing.T) {
	ch := NewChannel(0, 1)
	ch.Input(ioa.Send(0, 1, "m"))
	cr := NewCrash(CrashOf(0, 1))
	cr.Fire(ioa.Crash(0))
	env := NewConsensusEnv(0)
	envFixed := NewConsensusEnvFixed(1, 1)
	envFixed.Input(ioa.Crash(1))
	proc := NewProc("echo", 0, 2, &echoMachine{n: 2, self: 0}, []string{"FD-Ω"}, []string{"propose"})
	proc.Input(ioa.Receive(0, 1, "hello"))

	for _, a := range []ioa.Automaton{ch, cr, env, envFixed, proc, NewChannel(1, 0), NewCrash(NoFaults())} {
		if err := ioa.CheckAutomatonContract(a); err != nil {
			t.Error(err)
		}
	}
}

func TestChannelQueueCopy(t *testing.T) {
	ch := NewChannel(0, 1)
	ch.Input(ioa.Send(0, 1, "a"))
	q := ch.Queue()
	q[0] = "mutated"
	if got := ch.Queue()[0]; got != "a" {
		t.Fatalf("Queue returned shared storage: %q", got)
	}
}

func TestTaskLabels(t *testing.T) {
	if NewChannel(0, 1).TaskLabel(0) == "" {
		t.Error("channel task label empty")
	}
	if NewCrash(CrashOf(2)).TaskLabel(0) == "" {
		t.Error("crash task label empty")
	}
	if NewConsensusEnv(0).TaskLabel(1) == "" {
		t.Error("env task label empty")
	}
	p := NewProc("x", 0, 1, &echoMachine{n: 1, self: 0}, nil, nil)
	if p.TaskLabel(0) == "" {
		t.Error("proc task label empty")
	}
	if p.NumTasks() != 1 {
		t.Error("proc must have exactly one task")
	}
}
