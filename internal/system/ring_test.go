package system

import (
	"fmt"
	"testing"

	"repro/internal/ioa"
)

// TestRingBufferStaysBounded: the ring's compaction rule bounds the backing
// array at twice the live high-water mark, regardless of total throughput.
func TestRingBufferStaysBounded(t *testing.T) {
	var r ring[int]
	const highWater = 5
	for cycle := 0; cycle < 10_000; cycle++ {
		for i := 0; i < highWater; i++ {
			r.push(cycle*highWater + i)
		}
		for i := 0; i < highWater; i++ {
			if got := r.at(0); got != cycle*highWater+i {
				t.Fatalf("cycle %d: head = %d, want %d (FIFO broken)", cycle, got, cycle*highWater+i)
			}
			r.pop()
		}
		if len(r.buf) > 2*(highWater+ringCompactMin) {
			t.Fatalf("cycle %d: buffer length %d (head %d) grows with throughput", cycle, len(r.buf), r.head)
		}
	}
	if r.len() != 0 {
		t.Fatalf("ring not empty: %d live", r.len())
	}
}

// TestChannelBufferCompaction is the regression test for the PR-2 channel
// memory-retention fix: Channel.Fire used to dequeue with `queue =
// queue[1:]`, keeping the whole backing array — and every message ever sent
// — reachable for the channel's lifetime.  After many send/deliver cycles
// the internal buffer must stay bounded by the live high-water mark, not the
// total message count.
func TestChannelBufferCompaction(t *testing.T) {
	c := NewChannel(0, 1)
	const cycles, batch = 20_000, 3
	for k := 0; k < cycles; k++ {
		for i := 0; i < batch; i++ {
			c.Input(ioa.Send(0, 1, fmt.Sprintf("m%d-%d", k, i)))
		}
		for i := 0; i < batch; i++ {
			act, ok := c.Enabled(0)
			if !ok {
				t.Fatalf("cycle %d: channel with %d queued not enabled", k, c.Len())
			}
			if want := fmt.Sprintf("m%d-%d", k, i); act.Payload != want {
				t.Fatalf("cycle %d: delivering %q, want %q", k, act.Payload, want)
			}
			c.Fire(act)
		}
	}
	if c.Len() != 0 {
		t.Fatalf("channel not drained: %d", c.Len())
	}
	if n := len(c.queue.buf); n > 2*(batch+ringCompactMin) {
		t.Fatalf("queue buffer holds %d slots after %d messages: dequeues retain memory", n, cycles*batch)
	}
}

// TestTrackedChannelBufferCompaction: same regression for TrackedChannel,
// which keeps a parallel stamp queue that used to leak the same way.
func TestTrackedChannelBufferCompaction(t *testing.T) {
	clock := NewSendClock()
	c := NewTrackedChannel(0, 1, clock)
	const cycles = 20_000
	for k := 0; k < cycles; k++ {
		c.Input(ioa.Send(0, 1, fmt.Sprintf("m%d", k)))
		c.Input(ioa.Send(0, 1, fmt.Sprintf("n%d", k)))
		if _, ok := c.HeadStamp(); !ok {
			t.Fatalf("cycle %d: no head stamp with queued messages", k)
		}
		for c.Len() > 0 {
			act, ok := c.Enabled(0)
			if !ok {
				t.Fatalf("cycle %d: non-empty tracked channel not enabled", k)
			}
			c.Fire(act)
		}
	}
	if n := len(c.queue.buf); n > 2*(2+ringCompactMin) {
		t.Fatalf("message buffer holds %d slots: dequeues retain memory", n)
	}
	if n := len(c.stamps.buf); n > 2*(2+ringCompactMin) {
		t.Fatalf("stamp buffer holds %d slots: dequeues retain memory", n)
	}
	if _, ok := c.HeadStamp(); ok {
		t.Fatal("drained channel still reports a head stamp")
	}
}
