// Package selfimpl implements Algorithm 3 of "Asynchronous Failure
// Detectors" — the distributed algorithm Aself that uses an AFD D to solve a
// renaming D′ of D — and makes the Section-6 correctness proof executable:
// given a trace of the composed system, it constructs the event mapping rEV,
// the sampled subsequence tˆ, and verifies the sampling and constrained-
// reordering steps (Lemmas 2–12) that establish Theorem 13 (every AFD is
// self-implementable) on that trace.
package selfimpl

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// Renaming is the bijection rIO of Section 5.3 restricted to what a renaming
// can change here: the output family name.  Payloads and locations are
// preserved (condition 2a: loc(a) = loc(rIO(a))), crash actions map to
// themselves (condition 2b), and distinct families guarantee condition 1
// (disjoint non-crash actions).
type Renaming struct {
	From string // family of OD
	To   string // family of OD′
}

// Apply maps an action under rIO: outputs of From become outputs of To;
// crash actions are fixed points.
func (r Renaming) Apply(a ioa.Action) ioa.Action {
	if a.Kind == ioa.KindFD && a.Name == r.From {
		a.Name = r.To
		return a
	}
	return a
}

// Invert maps an action under rIO⁻¹.
func (r Renaming) Invert(a ioa.Action) ioa.Action {
	if a.Kind == ioa.KindFD && a.Name == r.To {
		a.Name = r.From
		return a
	}
	return a
}

// ApplyTrace maps rIO over a sequence (homomorphic extension, condition 2e).
func (r Renaming) ApplyTrace(t trace.T) trace.T {
	out := make(trace.T, len(t))
	for i, a := range t {
		out[i] = r.Apply(a)
	}
	return out
}

// InvertTrace maps rIO⁻¹ over a sequence.
func (r Renaming) InvertTrace(t trace.T) trace.T {
	out := make(trace.T, len(t))
	for i, a := range t {
		out[i] = r.Invert(a)
	}
	return out
}

// Aself is the per-location automaton of Algorithm 3.  It maintains the
// queue fdq of D-outputs received at its location; the output action d′ is
// enabled when rIO⁻¹(d′) is at the head of fdq; crashi permanently disables
// the outputs.
type Aself struct {
	id     ioa.Loc
	ren    Renaming
	failed bool
	fdq    []string // payload queue; family is fixed, payloads carry identity
}

var _ ioa.Automaton = (*Aself)(nil)

// NewAself returns the Algorithm-3 automaton for location id.
func NewAself(id ioa.Loc, ren Renaming) *Aself {
	return &Aself{id: id, ren: ren}
}

// NewCollection returns the distributed algorithm Aself: one automaton per
// location 0..n-1.
func NewCollection(n int, ren Renaming) []ioa.Automaton {
	out := make([]ioa.Automaton, n)
	for i := 0; i < n; i++ {
		out[i] = NewAself(ioa.Loc(i), ren)
	}
	return out
}

// Name implements ioa.Automaton.
func (a *Aself) Name() string { return fmt.Sprintf("Aself[%v]", a.id) }

// Accepts implements ioa.Automaton: inputs are OD,i and crashi.
func (a *Aself) Accepts(act ioa.Action) bool {
	if act.Kind == ioa.KindCrash {
		return act.Loc == a.id
	}
	return act.Kind == ioa.KindFD && act.Name == a.ren.From && act.Loc == a.id
}

// Input implements ioa.Automaton.
func (a *Aself) Input(act ioa.Action) {
	if act.Kind == ioa.KindCrash {
		a.failed = true
		return
	}
	a.fdq = append(a.fdq, act.Payload)
}

// NumTasks implements ioa.Automaton: one task, {d′ | d′ ∈ OD′,i}.
func (a *Aself) NumTasks() int { return 1 }

// TaskLabel implements ioa.Automaton.
func (a *Aself) TaskLabel(int) string { return "emit" }

// Enabled implements ioa.Automaton: the renaming of the head of fdq.
func (a *Aself) Enabled(int) (ioa.Action, bool) {
	if a.failed || len(a.fdq) == 0 {
		return ioa.Action{}, false
	}
	return ioa.FDOutput(a.ren.To, a.id, a.fdq[0]), true
}

// Fire implements ioa.Automaton: delete the head of fdq.
func (a *Aself) Fire(ioa.Action) { a.fdq = a.fdq[1:] }

// QueueDepth reports len(fdq), the E5 overhead metric.
func (a *Aself) QueueDepth() int { return len(a.fdq) }

// Clone implements ioa.Automaton.
func (a *Aself) Clone() ioa.Automaton {
	c := &Aself{id: a.id, ren: a.ren, failed: a.failed}
	c.fdq = append([]string(nil), a.fdq...)
	return c
}

// Encode implements ioa.Automaton.
func (a *Aself) Encode() string {
	return fmt.Sprintf("AS%v|%t|%s", a.id, a.failed, strings.Join(a.fdq, "\x1f"))
}

// ProofReport carries the artifacts of running the Section-6 proof pipeline
// on a concrete trace.
type ProofReport struct {
	// REV maps each index of an OD′ event in t to the index of the OD
	// event it renames (the event mapping rEV of Section 6.2).
	REV map[int]int
	// SampledLen is the number of OD events retained in tˆ.
	SampledLen int
	// That is tˆ|Iˆ∪OD — the sampled subsequence used in Lemma 6.
	That trace.T
}

// VerifyProof runs the proof pipeline of Section 6.2 on a finite trace t of
// the composition of D's implementation, Aself and the crash automaton,
// restricted to Iˆ ∪ OD ∪ OD′:
//
//	Lemma 2  – every OD′ event at i is preceded by a matching OD event at i
//	           (the x-th primed event renames the x-th unprimed one);
//	Lemma 6  – tˆ (retaining exactly the OD events in the image of rEV) is
//	           a sampling of t|Iˆ∪OD;
//	Lemma 9  – t|Iˆ∪OD′ is a constrained reordering of rIO(tˆ|Iˆ∪OD).
//
// n is the number of locations.  The membership conclusion (Corollary 7,
// Corollary 11, Lemma 12) is the caller's job: re-check the projections with
// D's checker, as the package tests do.
func VerifyProof(t trace.T, n int, ren Renaming) (*ProofReport, error) {
	isD := func(a ioa.Action) bool { return a.Kind == ioa.KindFD && a.Name == ren.From }
	isD2 := func(a ioa.Action) bool { return a.Kind == ioa.KindFD && a.Name == ren.To }

	// Lemma 2: per-location positional matching.
	rev := make(map[int]int, len(t))
	for i := 0; i < n; i++ {
		loc := ioa.Loc(i)
		var dIdx, d2Idx []int
		for x, a := range t {
			switch {
			case isD(a) && a.Loc == loc:
				dIdx = append(dIdx, x)
			case isD2(a) && a.Loc == loc:
				d2Idx = append(d2Idx, x)
			}
		}
		if len(d2Idx) > len(dIdx) {
			return nil, fmt.Errorf("selfimpl: location %d emits %d renamed outputs but received only %d (Lemma 2)",
				i, len(d2Idx), len(dIdx))
		}
		for x, pos2 := range d2Idx {
			pos := dIdx[x]
			if pos >= pos2 {
				return nil, fmt.Errorf("selfimpl: renamed event %v at %d precedes its source at %d (Lemma 2)",
					t[pos2], pos2, pos)
			}
			if ren.Invert(t[pos2]) != t[pos] {
				return nil, fmt.Errorf("selfimpl: event %v is not the renaming of %v (Lemma 2)",
					t[pos2], t[pos])
			}
			rev[pos2] = pos
		}
	}

	// Build tˆ: all Iˆ and OD′ events, and exactly the OD events in the
	// image of rEV.
	inImage := make(map[int]bool, len(rev))
	for _, src := range rev {
		inImage[src] = true
	}
	var that trace.T
	sampled := 0
	for x, a := range t {
		switch {
		case a.Kind == ioa.KindCrash || isD2(a):
			that = append(that, a)
		case isD(a) && inImage[x]:
			that = append(that, a)
			sampled++
		}
	}

	// Lemma 6: tˆ|Iˆ∪OD is a sampling of t|Iˆ∪OD.  Finite-prefix
	// adjustment: on an infinite fair execution, Lemma 4 guarantees every
	// OD event at a live location is eventually matched by an OD′ event;
	// on a finite prefix the per-location FIFO queue may still hold a
	// trailing suffix of unmatched events.  Those events would be matched
	// in any fair extension, so the Lemma-6 check excludes them from the
	// base trace (they form exactly a per-location suffix, by FIFO).
	matched := make(map[ioa.Loc]int, n)
	for i := 0; i < n; i++ {
		loc := ioa.Loc(i)
		for _, a := range t {
			if isD2(a) && a.Loc == loc {
				matched[loc]++
			}
		}
	}
	live := trace.Live(t, n)
	seen := make(map[ioa.Loc]int, n)
	tD := trace.Project(t, func(a ioa.Action) bool {
		if a.Kind == ioa.KindCrash {
			return true
		}
		if !isD(a) {
			return false
		}
		if live[a.Loc] {
			seen[a.Loc]++
			return seen[a.Loc] <= matched[a.Loc]
		}
		return true
	})
	thatD := trace.Project(that, func(a ioa.Action) bool { return a.Kind == ioa.KindCrash || isD(a) })
	if err := trace.IsSampling(thatD, tD, n, isD); err != nil {
		return nil, fmt.Errorf("selfimpl: tˆ is not a sampling of t|Iˆ∪OD (Lemma 6): %w", err)
	}

	// Lemma 9: t|Iˆ∪OD′ is a constrained reordering of rIO(tˆ|Iˆ∪OD).
	tD2 := trace.Project(t, func(a ioa.Action) bool { return a.Kind == ioa.KindCrash || isD2(a) })
	if err := trace.IsConstrainedReordering(tD2, ren.ApplyTrace(thatD)); err != nil {
		return nil, fmt.Errorf("selfimpl: t|Iˆ∪OD′ is not a constrained reordering of rIO(tˆ) (Lemma 9): %w", err)
	}

	return &ProofReport{REV: rev, SampledLen: sampled, That: that}, nil
}
