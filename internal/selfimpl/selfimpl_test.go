package selfimpl

import (
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/system"
	"repro/internal/trace"
)

// runSelf composes D's canonical automaton, Aself, and a crash automaton,
// runs a schedule, and returns the full external trace.
func runSelf(t *testing.T, d afd.Detector, n int, ren Renaming, plan []ioa.Loc, seed int64, steps int) trace.T {
	t.Helper()
	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, NewCollection(n, ren)...)
	autos = append(autos, system.NewCrash(system.CrashOf(plan...)))
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		t.Fatal(err)
	}
	opts := sched.Options{MaxSteps: steps, Gate: sched.CrashesAfter(steps/4, steps/8)}
	if seed >= 0 {
		sched.Random(sys, seed, opts)
	} else {
		sched.RoundRobin(sys, opts)
	}
	return sys.Trace()
}

func TestRenamingApplyInvert(t *testing.T) {
	r := Renaming{From: "FD-A", To: "FD-A'"}
	a := ioa.FDOutput("FD-A", 1, "x")
	ap := r.Apply(a)
	if ap.Name != "FD-A'" || ap.Loc != 1 || ap.Payload != "x" {
		t.Fatalf("Apply = %v", ap)
	}
	if r.Invert(ap) != a {
		t.Fatal("Invert(Apply(a)) != a")
	}
	c := ioa.Crash(0)
	if r.Apply(c) != c || r.Invert(c) != c {
		t.Fatal("crash actions must be fixed points (condition 2b)")
	}
	other := ioa.FDOutput("FD-B", 0, "y")
	if r.Apply(other) != other {
		t.Fatal("foreign families must be untouched")
	}
	tr := trace.T{a, c}
	if got := r.InvertTrace(r.ApplyTrace(tr)); !trace.Equal(got, tr) {
		t.Fatal("trace-level round trip failed")
	}
}

func TestAselfQueueSemantics(t *testing.T) {
	ren := Renaming{From: "FD-A", To: "FD-A'"}
	a := NewAself(0, ren)
	if _, ok := a.Enabled(0); ok {
		t.Fatal("empty queue must disable output")
	}
	a.Input(ioa.FDOutput("FD-A", 0, "p1"))
	a.Input(ioa.FDOutput("FD-A", 0, "p2"))
	if a.QueueDepth() != 2 {
		t.Fatalf("QueueDepth = %d", a.QueueDepth())
	}
	act, ok := a.Enabled(0)
	if !ok || act != ioa.FDOutput("FD-A'", 0, "p1") {
		t.Fatalf("Enabled = %v, want renamed head p1", act)
	}
	a.Fire(act)
	act, _ = a.Enabled(0)
	if act.Payload != "p2" {
		t.Fatal("FIFO order violated")
	}
}

func TestAselfCrashDisablesPermanently(t *testing.T) {
	ren := Renaming{From: "FD-A", To: "FD-A'"}
	a := NewAself(1, ren)
	a.Input(ioa.FDOutput("FD-A", 1, "p"))
	a.Input(ioa.Crash(1))
	if _, ok := a.Enabled(0); ok {
		t.Fatal("crash must disable outputs despite a non-empty queue")
	}
}

func TestAselfAccepts(t *testing.T) {
	ren := Renaming{From: "FD-A", To: "FD-A'"}
	a := NewAself(1, ren)
	if !a.Accepts(ioa.FDOutput("FD-A", 1, "p")) {
		t.Error("must accept own-location inputs of From family")
	}
	if a.Accepts(ioa.FDOutput("FD-A", 0, "p")) {
		t.Error("must not accept other locations' inputs")
	}
	if a.Accepts(ioa.FDOutput("FD-A'", 1, "p")) {
		t.Error("must not accept its own output family")
	}
	if !a.Accepts(ioa.Crash(1)) || a.Accepts(ioa.Crash(0)) {
		t.Error("crash acceptance wrong")
	}
}

func TestAselfCloneIndependence(t *testing.T) {
	ren := Renaming{From: "FD-A", To: "FD-A'"}
	a := NewAself(0, ren)
	a.Input(ioa.FDOutput("FD-A", 0, "p"))
	c := a.Clone()
	a.Fire(ioa.FDOutput("FD-A'", 0, "p"))
	if c.Encode() == a.Encode() {
		t.Fatal("clone shares queue")
	}
}

// TestTheorem13 is E5: for every detector in the zoo, Aself stacked on the
// canonical implementation produces renamed traces that, mapped back through
// rIO⁻¹, the original checker accepts — i.e. Aself uses D to solve a
// renaming of D.  The Section-6 proof pipeline is verified on every trace.
func TestTheorem13(t *testing.T) {
	const n = 3
	w := afd.DefaultWindow()
	for family, d := range afd.Standard(n) {
		ren := Renaming{From: family, To: family + "'"}
		for _, plan := range [][]ioa.Loc{nil, {2}, {0, 2}} {
			for _, seed := range []int64{-1, 3} {
				full := runSelf(t, d, n, ren, plan, seed, 600)

				// The source projection is admissible (sanity).
				src := trace.FD(full, family)
				if err := d.Check(src, n, w); err != nil {
					t.Fatalf("%s: source trace rejected: %v", family, err)
				}

				// Proof pipeline: Lemmas 2, 6, 9 hold on the trace.
				mixed := trace.Project(full, func(a ioa.Action) bool {
					return a.Kind == ioa.KindCrash ||
						(a.Kind == ioa.KindFD && (a.Name == ren.From || a.Name == ren.To))
				})
				rep, err := VerifyProof(mixed, n, ren)
				if err != nil {
					t.Fatalf("%s plan %v seed %d: %v", family, plan, seed, err)
				}
				if len(rep.REV) == 0 {
					t.Fatalf("%s: no renamed outputs produced", family)
				}

				// Conclusion (Lemma 12): the renamed projection, mapped
				// back through rIO⁻¹, is admissible for D.
				renamed := trace.FD(full, ren.To)
				back := ren.InvertTrace(renamed)
				if err := d.Check(back, n, w); err != nil {
					t.Errorf("%s plan %v seed %d: renamed trace not in TD′: %v",
						family, plan, seed, err)
				}
			}
		}
	}
}

func TestVerifyProofRejectsForgedOutput(t *testing.T) {
	ren := Renaming{From: "FD-A", To: "FD-A'"}
	// A primed output with no preceding source event.
	tr := trace.T{ioa.FDOutput("FD-A'", 0, "p")}
	if _, err := VerifyProof(tr, 1, ren); err == nil {
		t.Fatal("forged renamed output must fail Lemma 2")
	}
	// A primed output whose payload does not match its source.
	tr = trace.T{ioa.FDOutput("FD-A", 0, "p"), ioa.FDOutput("FD-A'", 0, "q")}
	if _, err := VerifyProof(tr, 1, ren); err == nil {
		t.Fatal("mismatched renaming must fail Lemma 2")
	}
}

func TestVerifyProofAcceptsInterleavedDelay(t *testing.T) {
	// Renamed outputs may lag arbitrarily (the queue delays them); the
	// proof pipeline accepts any FIFO-consistent interleaving.
	ren := Renaming{From: "FD-A", To: "FD-A'"}
	tr := trace.T{
		ioa.FDOutput("FD-A", 0, "p1"),
		ioa.FDOutput("FD-A", 0, "p2"),
		ioa.FDOutput("FD-A'", 0, "p1"),
		ioa.FDOutput("FD-A", 1, "q1"),
		ioa.FDOutput("FD-A'", 1, "q1"),
		ioa.FDOutput("FD-A'", 0, "p2"),
	}
	rep, err := VerifyProof(tr, 2, ren)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SampledLen != 3 {
		t.Fatalf("SampledLen = %d, want 3", rep.SampledLen)
	}
}

func TestVerifyProofSamplesFaultySuffix(t *testing.T) {
	// Location 0 crashes with one un-relayed queue entry: tˆ must drop the
	// unmatched source output (sampling at a faulty location).
	ren := Renaming{From: "FD-A", To: "FD-A'"}
	tr := trace.T{
		ioa.FDOutput("FD-A", 0, "p1"),
		ioa.FDOutput("FD-A'", 0, "p1"),
		ioa.FDOutput("FD-A", 0, "p2"), // queued but never relayed
		ioa.Crash(0),
		ioa.FDOutput("FD-A", 1, "q1"),
		ioa.FDOutput("FD-A'", 1, "q1"),
	}
	rep, err := VerifyProof(tr, 2, ren)
	if err != nil {
		t.Fatal(err)
	}
	if rep.SampledLen != 2 {
		t.Fatalf("SampledLen = %d, want 2 (p2 dropped)", rep.SampledLen)
	}
}
