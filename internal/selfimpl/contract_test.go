package selfimpl

import (
	"testing"

	"repro/internal/ioa"
)

func TestAutomatonContracts(t *testing.T) {
	ren := Renaming{From: "FD-A", To: "FD-A'"}
	fresh := NewAself(0, ren)
	loaded := NewAself(1, ren)
	loaded.Input(ioa.FDOutput("FD-A", 1, "p"))
	crashed := NewAself(2, ren)
	crashed.Input(ioa.Crash(2))
	for _, a := range []ioa.Automaton{fresh, loaded, crashed} {
		if err := ioa.CheckAutomatonContract(a); err != nil {
			t.Error(err)
		}
	}
	if got := fresh.TaskLabel(0); got == "" {
		t.Error("empty task label")
	}
}
