package selfimpl_test

import (
	"fmt"

	"repro/internal/afd"
	"repro/internal/ioa"
	"repro/internal/sched"
	"repro/internal/selfimpl"
	"repro/internal/system"
	"repro/internal/trace"
)

// Stacking Algorithm 3 on the perfect detector and replaying the Section-6
// proof on the resulting trace (Theorem 13).
func ExampleVerifyProof() {
	const n = 2
	d, _ := afd.Lookup(afd.FamilyP, n)
	ren := selfimpl.Renaming{From: afd.FamilyP, To: afd.FamilyP + "'"}

	autos := []ioa.Automaton{d.Automaton(n)}
	autos = append(autos, selfimpl.NewCollection(n, ren)...)
	autos = append(autos, system.NewCrash(system.CrashOf(1)))
	sys := ioa.MustNewSystem(autos...)
	sched.RoundRobin(sys, sched.Options{MaxSteps: 80, Gate: sched.CrashesAfter(20, 0)})

	mixed := trace.Project(sys.Trace(), func(a ioa.Action) bool {
		return a.Kind == ioa.KindCrash || a.Kind == ioa.KindFD
	})
	rep, err := selfimpl.VerifyProof(mixed, n, ren)
	if err != nil {
		fmt.Println("proof:", err)
		return
	}
	back := ren.InvertTrace(trace.FD(sys.Trace(), ren.To))
	fmt.Println("relayed:", len(rep.REV), "renamed trace admissible:",
		d.Check(back, n, afd.DefaultWindow()) == nil)
	// Output:
	// relayed: 39 renamed trace admissible: true
}
