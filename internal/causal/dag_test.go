package causal

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/afd"
	"repro/internal/chaos"
	"repro/internal/ioa"
	"repro/internal/live"
	"repro/internal/system"
	"repro/internal/telemetry"
	"repro/internal/trace"
)

func gossipTarget(t *testing.T) chaos.Target {
	t.Helper()
	target, err := chaos.ParseTarget("gossip:" + afd.FamilyEvQ + ">" + afd.FamilyEvP)
	if err != nil {
		t.Fatal(err)
	}
	return target
}

func execute(t *testing.T, r chaos.Run) *trace.Artifact {
	t.Helper()
	v, err := chaos.Execute(r)
	if err != nil {
		t.Fatal(err)
	}
	return v.Artifact()
}

// checkChain asserts a chain is contiguous in the DAG: every consecutive
// pair is connected by a recorded edge of the named kind.
func checkChain(t *testing.T, d *DAG, ex *Explanation) {
	t.Helper()
	if len(ex.Chain) == 0 {
		t.Fatal("empty chain")
	}
	if ex.Chain[0].Event != ex.Origin {
		t.Fatalf("chain starts at %d, origin %d", ex.Chain[0].Event, ex.Origin)
	}
	if last := ex.Chain[len(ex.Chain)-1].Event; last != ex.Transition.Event {
		t.Fatalf("chain ends at %d, transition %d", last, ex.Transition.Event)
	}
	for k := 0; k+1 < len(ex.Chain); k++ {
		from, to := ex.Chain[k], ex.Chain[k+1]
		found := false
		for _, e := range d.Preds(to.Event) {
			if e.From == from.Event && e.Kind.String() == from.EdgeToNext {
				found = true
				if !e.Verified {
					t.Fatalf("chain uses unverified edge %+v", e)
				}
			}
		}
		if !found {
			t.Fatalf("chain link %d→%d (%s) not an edge of the DAG",
				from.Event, to.Event, from.EdgeToNext)
		}
	}
}

func TestBuildReliableGossip(t *testing.T) {
	a := execute(t, chaos.Run{
		Target: gossipTarget(t), N: 4,
		Plan:  system.CrashOf(3),
		Sched: chaos.SchedRoundRobin,
	})
	if a.Verdict != "" {
		t.Fatalf("run failed its spec: %s", a.Verdict)
	}
	d, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Verification.Ok() {
		t.Fatalf("verification failed: %+v", d.Verification)
	}
	if d.Verification.MessageEdges == 0 {
		t.Fatal("no message edges derived from a gossiping mesh")
	}
	if d.Verification.OracleEvents != len(a.Trace) {
		t.Fatalf("oracle observed %d events, trace has %d",
			d.Verification.OracleEvents, len(a.Trace))
	}
	for _, e := range d.Edges {
		if e.From >= e.To {
			t.Fatalf("non-forward edge %+v", e)
		}
	}

	trs := d.Transitions()
	if len(trs) == 0 {
		t.Fatal("no suspicion transitions in a crashing run")
	}
	var pick *Transition
	for i := range trs {
		if containsLoc(trs[i].Added, 3) {
			pick = &trs[i]
			break
		}
	}
	if pick == nil {
		t.Fatal("no observer ever suspected the crashed location")
	}
	ex, err := d.Explain(*pick, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !ex.OriginIsCrash {
		t.Fatalf("suspicion of the crashed location not rooted in its crash: origin %v",
			d.Events[ex.Origin])
	}
	if got := d.Events[ex.Origin]; got.Kind != ioa.KindCrash || got.Loc != 3 {
		t.Fatalf("origin = %v", got)
	}
	if !ex.Added || ex.Subject != 3 {
		t.Fatalf("explanation = %+v", ex)
	}
	checkChain(t, d, ex)

	// Explaining an uninvolved subject must refuse.
	if _, err := d.Explain(*pick, ioa.Loc(99)); err == nil {
		t.Fatal("explained a subject the transition does not touch")
	}
}

func TestBuildLossyRing(t *testing.T) {
	topo, err := system.ParseTopology(4, "ring")
	if err != nil {
		t.Fatal(err)
	}
	a := execute(t, chaos.Run{
		Target: gossipTarget(t), N: 4,
		Plan:  system.CrashOf(3),
		Sched: chaos.SchedRandom, Seed: 11,
		Net: system.NetSpec{Topo: topo, Seed: 7, Drop: 100, Dup: 40, Reorder: 40},
	})
	d, err := Build(a)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Verification.Ok() {
		t.Fatalf("verification failed on lossy ring: %+v", d.Verification)
	}
	if len(a.NetLog) == 0 {
		t.Fatal("lossy run recorded no link events; the NetLog cross-check tested nothing")
	}
	if d.Verification.MessageEdges == 0 {
		t.Fatal("no message edges on the lossy ring")
	}
}

func TestBuildRejectsTamperedArtifact(t *testing.T) {
	a := execute(t, chaos.Run{
		Target: gossipTarget(t), N: 3,
		Plan:  system.CrashOf(2),
		Sched: chaos.SchedRoundRobin,
	})
	// Corrupt one delivered payload: the fresh system must reject the trace
	// (the forged event is not enabled), so provenance cannot be built from
	// a record the engines never executed.
	for i, act := range a.Trace {
		if act.Kind == ioa.KindReceive {
			a.Trace[i].Payload = act.Payload + "-forged"
			break
		}
	}
	if _, err := Build(a); err == nil {
		t.Fatal("built a DAG from a tampered trace")
	}
}

func TestEmitFlows(t *testing.T) {
	// A hand-built DAG whose minimal chain must cross a message edge: a
	// gossiped suspicion (send → deliver → FD output).  Real gossip DAGs
	// often explain suspicions through the detector automaton's local
	// program order, which draws no arrows — this pins the arrow path.
	d := &DAG{
		N: 2,
		Events: trace.T{
			ioa.Send(0, 1, "{0}"),
			ioa.Receive(1, 0, "{0}"),
			ioa.FDOutput("FD-P", 1, "{0}"),
		},
		Edges: []Edge{
			{From: 0, To: 1, Kind: EdgeMessage, Verified: true},
			{From: 1, To: 2, Kind: EdgeProgram, Verified: true},
		},
		preds: [][]int32{{}, {0}, {1}},
	}
	trs := d.Transitions()
	if len(trs) != 1 {
		t.Fatalf("transitions = %+v", trs)
	}
	ex, err := d.Explain(trs[0], 0)
	if err != nil {
		t.Fatal(err)
	}
	if ex.OriginIsCrash || ex.Origin != 0 || len(ex.Chain) != 3 {
		t.Fatalf("explanation = %+v", ex)
	}
	reg := telemetry.NewRegistry()
	arrows := EmitFlows(reg, d, ex)
	if arrows != 1 {
		t.Fatalf("arrows = %d, want 1", arrows)
	}
	var buf bytes.Buffer
	if err := reg.Trace().WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{`"ph":"s"`, `"ph":"f"`, `"bp":"e"`, `"cat":"causal"`} {
		if !strings.Contains(out, want) {
			t.Fatalf("chrome trace missing %s:\n%s", want, out[:min(len(out), 400)])
		}
	}
}

// The same engine must work unchanged on a stamped live artifact: the DAG
// builds, verifies, and the QoS layer reports wall-clock figures.
func TestBuildLiveArtifact(t *testing.T) {
	if testing.Short() {
		t.Skip("live run in -short mode")
	}
	rep, err := live.RunTarget(live.RunSpec{
		Target: gossipTarget(t), N: 3,
		Plan: system.CrashOf(2),
		Opts: live.Options{Seed: 1, MaxSteps: chaos.DefaultSteps(3), Duration: 10 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.VerdictErr != nil || rep.ReplayErr != nil {
		t.Fatalf("live run invalid: verdict=%v replay=%v", rep.VerdictErr, rep.ReplayErr)
	}
	d, err := Build(rep.Artifact)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Verification.Ok() {
		t.Fatalf("live verification failed: %+v", d.Verification)
	}
	if d.StampNs(len(d.Events)-1) < 0 {
		t.Fatal("live DAG lost its stamps")
	}
	stats := Compute(d.Events, d.Stamps)
	for _, s := range stats {
		if s.Family != afd.FamilyEvP {
			continue
		}
		if len(s.Detections) == 0 {
			t.Fatalf("no detections in the boosted family: %+v", s)
		}
		for _, det := range s.Detections {
			if det.Ns <= 0 {
				t.Fatalf("stamped detection has no wall-clock figure: %+v", det)
			}
		}
		return
	}
	t.Fatalf("no stats for %s: %+v", afd.FamilyEvP, stats)
}
