package causal

import (
	"testing"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// handTrace is a small execution with one crash, one detection at each of
// two observers, and one wrong suspicion that gets taken back:
//
//	0 send(x,1)_0        filler
//	1 FD-P({2})_0        observer 0 wrongly suspects 2
//	2 crash_1
//	3 FD-P({1,2})_0      observer 0 detects 1 (still wrong about 2)
//	4 FD-P({1})_0        observer 0 takes the mistake back
//	5 FD-P({1})_2        observer 2 detects 1
func handTrace() trace.T {
	return trace.T{
		ioa.Send(0, 1, "x"),
		ioa.FDOutput("FD-P", 0, "{2}"),
		ioa.Crash(1),
		ioa.FDOutput("FD-P", 0, "{1,2}"),
		ioa.FDOutput("FD-P", 0, "{1}"),
		ioa.FDOutput("FD-P", 2, "{1}"),
	}
}

func TestComputeSteps(t *testing.T) {
	stats := Compute(handTrace(), nil)
	if len(stats) != 1 {
		t.Fatalf("families = %d, want 1", len(stats))
	}
	s := stats[0]
	if s.Family != "FD-P" || s.Observers != 2 {
		t.Fatalf("family %q observers %d", s.Family, s.Observers)
	}
	if len(s.Detections) != 2 {
		t.Fatalf("detections = %+v, want 2", s.Detections)
	}
	d0, d2 := s.Detections[0], s.Detections[1]
	if d0.Observer != 0 || d0.Crashed != 1 || d0.CrashStep != 2 || d0.DetectStep != 3 || d0.Steps != 1 {
		t.Fatalf("detection at observer 0: %+v", d0)
	}
	if d2.Observer != 2 || d2.DetectStep != 5 || d2.Steps != 3 {
		t.Fatalf("detection at observer 2: %+v", d2)
	}
	if s.DetectionMaxSteps != 3 || s.DetectionMeanSteps != 2 {
		t.Fatalf("detection max %d mean %f", s.DetectionMaxSteps, s.DetectionMeanSteps)
	}
	if s.PropagationSteps != 2 { // detections at events 3 and 5
		t.Fatalf("propagation = %d, want 2", s.PropagationSteps)
	}
	if s.MistakeCount != 1 {
		t.Fatalf("mistakes = %+v", s.Mistakes)
	}
	m := s.Mistakes[0]
	if m.Observer != 0 || m.Suspect != 2 || m.Start != 1 || m.End != 4 || m.Steps != 3 || !m.Removed {
		t.Fatalf("mistake = %+v", m)
	}
}

func TestComputeStamped(t *testing.T) {
	stamps := []int64{0, 100, 200, 350, 500, 900}
	stats := Compute(handTrace(), stamps)
	s := stats[0]
	if s.Detections[0].Ns != 150 || s.Detections[1].Ns != 700 {
		t.Fatalf("detection ns = %d, %d", s.Detections[0].Ns, s.Detections[1].Ns)
	}
	if s.DetectionMaxNs != 700 {
		t.Fatalf("detection max ns = %d", s.DetectionMaxNs)
	}
	if s.PropagationNs != 550 { // stamps[5]-stamps[3]
		t.Fatalf("propagation ns = %d", s.PropagationNs)
	}
	if s.Mistakes[0].Ns != 400 { // stamps[4]-stamps[1]
		t.Fatalf("mistake ns = %d", s.Mistakes[0].Ns)
	}
}

// A suspicion never taken back, of a location that never crashes, is a
// mistake truncated at the record's end; a suspicion of a location that
// crashes later is truncated at the crash.
func TestComputeOpenMistakes(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput("FD-◇Q", 0, "{1,2}"), // 0: suspects 1 and 2, both live
		ioa.Crash(1),                      // 1: 1 does crash — mistake [0,1]
	}
	stats := Compute(tr, nil)
	s := stats[0]
	if len(s.Mistakes) != 2 {
		t.Fatalf("mistakes = %+v, want 2", s.Mistakes)
	}
	for _, m := range s.Mistakes {
		if m.Removed {
			t.Fatalf("open mistake marked removed: %+v", m)
		}
		switch m.Suspect {
		case 1:
			if m.End != 1 || m.Steps != 1 {
				t.Fatalf("crash-truncated mistake: %+v", m)
			}
		case 2:
			if m.End != 2 || m.Steps != 2 {
				t.Fatalf("end-truncated mistake: %+v", m)
			}
		}
	}
	// The pre-crash suspicion of 1 stands at the end, so it is also the
	// permanent detection — with zero latency (clamped).
	if len(s.Detections) != 1 || s.Detections[0].Steps != 0 {
		t.Fatalf("detections = %+v", s.Detections)
	}
}

func TestComputeSkipsMalformedPayloads(t *testing.T) {
	tr := trace.T{
		ioa.FDOutput("FD-P", 0, "not-a-set"),
		ioa.FDOutput("FD-P", 0, "{}"),
	}
	stats := Compute(tr, nil)
	if len(stats) != 1 || stats[0].MistakeCount != 0 || len(stats[0].Detections) != 0 {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestSummarize(t *testing.T) {
	runs := []Stats{
		{Family: "FD-P", Detections: []Detection{{Steps: 2}, {Steps: 4}},
			DetectionMeanSteps: 3, DetectionMaxSteps: 4, PropagationSteps: 2,
			MistakeCount: 1, MistakeMeanSteps: 5, MistakeMaxSteps: 5},
		{Family: "FD-P", Detections: []Detection{{Steps: 6}},
			DetectionMeanSteps: 6, DetectionMaxSteps: 6, PropagationSteps: 4},
	}
	sums := Summarize(runs)
	if len(sums) != 1 {
		t.Fatalf("summaries = %+v", sums)
	}
	s := sums[0]
	if s.Runs != 2 || s.Detections != 3 {
		t.Fatalf("runs %d detections %d", s.Runs, s.Detections)
	}
	if s.DetectionMeanSteps != 4 { // (2+4+6)/3
		t.Fatalf("detection mean = %f", s.DetectionMeanSteps)
	}
	if s.DetectionMaxSteps != 6 || s.PropagationMaxSteps != 4 || s.PropagationMeanSteps != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Mistakes != 1 || s.MistakesPerRun != 0.5 || s.MistakeMeanSteps != 5 {
		t.Fatalf("mistake aggregate = %+v", s)
	}
}
