package causal

import (
	"fmt"
	"sort"

	"repro/internal/ioa"
)

// Transition is one FD-output event that changed an observer's suspect set:
// the suspicion additions and removals it performed relative to the
// observer's previous output of the same detector family.
type Transition struct {
	// Event indexes the FD-output event in the trace.
	Event int `json:"event"`
	// Observer is the location whose detector copy produced the output;
	// Family names the detector (gossip locations run two copies).
	Observer ioa.Loc   `json:"observer"`
	Family   string    `json:"family"`
	Added    []ioa.Loc `json:"added,omitempty"`
	Removed  []ioa.Loc `json:"removed,omitempty"`
}

// Transitions scans the trace for suspect-set transitions, in event order.
// FD outputs with undecodable payloads are skipped (the AFD layer's
// "suspect everyone" reading of malformed payloads is a checker-side
// convention; provenance only explains well-formed sets).
func (d *DAG) Transitions() []Transition {
	type fdKey struct {
		name string
		loc  ioa.Loc
	}
	last := map[fdKey]map[ioa.Loc]bool{}
	var out []Transition
	for idx, act := range d.Events {
		if act.Kind != ioa.KindFD {
			continue
		}
		set, err := ioa.DecodeLocSet(act.Payload)
		if err != nil {
			continue
		}
		key := fdKey{act.Name, act.Loc}
		prev := last[key]
		tr := Transition{Event: idx, Observer: act.Loc, Family: act.Name}
		for j := range set {
			if set[j] && !prev[j] {
				tr.Added = append(tr.Added, j)
			}
		}
		for j := range prev {
			if prev[j] && !set[j] {
				tr.Removed = append(tr.Removed, j)
			}
		}
		last[key] = set
		if len(tr.Added) == 0 && len(tr.Removed) == 0 {
			continue
		}
		sortLocs(tr.Added)
		sortLocs(tr.Removed)
		out = append(out, tr)
	}
	return out
}

func sortLocs(ls []ioa.Loc) {
	sort.Slice(ls, func(i, j int) bool { return ls[i] < ls[j] })
}

// ChainLink is one event on a minimal explaining chain.
type ChainLink struct {
	// Event is the trace index; Action its paper-notation rendering; Loc the
	// location the event occurred at.
	Event  int     `json:"event"`
	Action string  `json:"action"`
	Loc    ioa.Loc `json:"loc"`
	// EdgeToNext names the happens-before edge kind connecting this link to
	// the next one ("" on the final link).
	EdgeToNext string `json:"edgeToNext,omitempty"`
	// EdgeVerified reports the connecting edge's diff-verification.
	EdgeVerified bool `json:"edgeVerified,omitempty"`
	// StampNs is the event's wall-clock offset (live records), else -1.
	StampNs int64 `json:"stampNs"`
}

// Explanation is the causal provenance of one suspicion change: the
// transition, the origin event the chain is traced back to, and the minimal
// (fewest-edge) happens-before chain from origin to transition.
type Explanation struct {
	Transition Transition `json:"transition"`
	// Subject is the location whose suspicion is being explained; Added
	// whether it entered (true) or left (false) the suspect set.
	Subject ioa.Loc `json:"subject"`
	Added   bool    `json:"added"`
	// Origin is the chain's first event: the subject's crash when it is in
	// the transition's causal cone (OriginIsCrash), else the cone's earliest
	// event — the information the suspicion change is rooted in.
	Origin        int  `json:"origin"`
	OriginIsCrash bool `json:"originIsCrash"`
	// Chain is the minimal happens-before path, origin first.
	Chain []ChainLink `json:"chain"`
	// ConeSize is the transition's full causal-cone cardinality.
	ConeSize int `json:"coneSize"`
}

// Explain computes the provenance of subject's membership change in the
// given transition.  The transition must come from Transitions on the same
// DAG, and subject must appear in its Added or Removed set.
func (d *DAG) Explain(tr Transition, subject ioa.Loc) (*Explanation, error) {
	added := containsLoc(tr.Added, subject)
	if !added && !containsLoc(tr.Removed, subject) {
		return nil, fmt.Errorf("causal: event %d (%v) does not change suspicion of %v",
			tr.Event, d.Events[tr.Event], subject)
	}

	// BFS backward over preds from the transition: parentEdge[v] is the edge
	// index first used to reach v, giving fewest-edge chains.
	parentEdge := map[int]int32{tr.Event: -1}
	queue := []int{tr.Event}
	for qi := 0; qi < len(queue); qi++ {
		v := queue[qi]
		for _, ei := range d.preds[v] {
			u := d.Edges[ei].From
			if _, seen := parentEdge[u]; !seen {
				parentEdge[u] = ei
				queue = append(queue, u)
			}
		}
	}

	ex := &Explanation{
		Transition: tr,
		Subject:    subject,
		Added:      added,
		ConeSize:   len(parentEdge),
	}

	// Origin: the subject's crash if it is in the cone; otherwise the
	// earliest cone event (the suspicion is rooted in timing, not failure —
	// a mistake, or a removal learned through refutation).
	origin := -1
	earliest := tr.Event
	for v := range parentEdge {
		if v < earliest {
			earliest = v
		}
		a := d.Events[v]
		if a.Kind == ioa.KindCrash && a.Loc == subject && (origin < 0 || v < origin) {
			origin = v
		}
	}
	if origin >= 0 {
		ex.OriginIsCrash = true
	} else {
		origin = earliest
	}
	ex.Origin = origin

	// Walk parent pointers origin → transition; the path exists because
	// origin was reached by the BFS.
	var path []int32 // edge indices, transition-side first
	for v := origin; v != tr.Event; {
		ei := parentEdge[v]
		path = append(path, ei)
		v = d.Edges[ei].To
	}
	ex.Chain = make([]ChainLink, 0, len(path)+1)
	link := func(ev int) ChainLink {
		return ChainLink{
			Event:   ev,
			Action:  d.Events[ev].String(),
			Loc:     d.Events[ev].Loc,
			StampNs: d.StampNs(ev),
		}
	}
	cur := link(origin)
	for _, ei := range path {
		e := d.Edges[ei]
		cur.EdgeToNext = e.Kind.String()
		cur.EdgeVerified = e.Verified
		ex.Chain = append(ex.Chain, cur)
		cur = link(e.To)
	}
	ex.Chain = append(ex.Chain, cur)
	return ex, nil
}

func containsLoc(ls []ioa.Loc, l ioa.Loc) bool {
	for _, x := range ls {
		if x == l {
			return true
		}
	}
	return false
}
