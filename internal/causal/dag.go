// Package causal is the happens-before and provenance engine: it
// reconstructs the causal DAG of a recorded execution — any trace.Artifact,
// whether written by the simulated chaos runner or a live stamped run — and
// answers "why does observer i suspect j?" with a minimal explaining chain
// plus detector-QoS analytics (detection time, mistake durations,
// suspicion-propagation spread).
//
// The DAG is not inferred from the event sequence alone.  Build replays the
// artifact through a freshly composed fast-path system (the same
// cross-engine pass chaos.ReplayThroughSystem runs) and derives edges from
// the composition's own structure:
//
//   - program order comes from per-event action footprints
//     (ioa.System.ActionFootprint: the exact automaton set each event
//     mutates), so two events are ordered iff they touched a common
//     automaton — the executable form of the independence relation the
//     valence reduction uses;
//   - message edges come from per-link FIFO pairing that independently
//     re-derives every lossy-link decision (system.NetSpec.Outcome) the way
//     the oracle's channel shadow does;
//   - crash and FD-output events contribute edges classified by their kind,
//     so explanations can say "because of crash_j" rather than "because of
//     event 12".
//
// Every derivation is diff-verified against an attached oracle: the replay
// runs under oracle.Attach (stride 1, channel shadow on), matched sends must
// carry the delivered payload, the derived non-deliver decisions must equal
// the artifact's NetLog, the per-link send counters must equal the oracle
// shadow's (Oracle.ShadowSeq), and the derived in-flight queues must match
// the live channels at end of replay.  A DAG whose Verification is not Ok
// was built from a record the engines disagree about, and cmd/explain
// refuses to present it as an explanation.
package causal

import (
	"fmt"
	"sort"

	"repro/internal/chaos"
	"repro/internal/ioa"
	"repro/internal/oracle"
	"repro/internal/system"
	"repro/internal/trace"
)

// EdgeKind classifies one happens-before edge.
type EdgeKind uint8

// Edge kinds.  Program, crash, and FD edges all arise from footprint
// overlap (successive events mutating a common automaton) and differ only
// in what the source event is; message edges arise from FIFO send→deliver
// pairing across a channel.
const (
	// EdgeProgram orders two events that touched a common automaton.
	EdgeProgram EdgeKind = iota
	// EdgeMessage orders a send before the delivery of that same message.
	EdgeMessage
	// EdgeCrash is a program edge whose source is a crash event.
	EdgeCrash
	// EdgeFD is a program edge whose source is an FD-output event.
	EdgeFD
)

// String returns the edge kind's wire name.
func (k EdgeKind) String() string {
	switch k {
	case EdgeMessage:
		return "message"
	case EdgeCrash:
		return "crash"
	case EdgeFD:
		return "fd"
	default:
		return "program"
	}
}

// Edge is one happens-before edge between trace event indices.
type Edge struct {
	From int      `json:"from"`
	To   int      `json:"to"`
	Kind EdgeKind `json:"-"`
	// Verified reports that the edge's derivation was independently
	// confirmed: for message edges, the matched send carried exactly the
	// delivered payload over the expected link.  Footprint-derived edges are
	// verified by construction (the footprint is sampled from the replaying
	// system, which the oracle checks).
	Verified bool `json:"verified"`
}

// Verification is the diff-verification record of a Build: how the derived
// DAG was checked against the independent engines, and every disagreement
// found.
type Verification struct {
	// MessageEdges counts derived send→deliver edges; VerifiedEdges counts
	// those confirmed by payload/link match.
	MessageEdges  int `json:"messageEdges"`
	VerifiedEdges int `json:"verifiedEdges"`
	// OracleEvents is the number of events the attached oracle observed.
	OracleEvents int `json:"oracleEvents"`
	// Diffs lists every divergence: oracle errors, FIFO pairing mismatches,
	// NetLog disagreements, per-link counter or residual-queue mismatches.
	Diffs []string `json:"diffs,omitempty"`
}

// Ok reports whether every cross-check passed and every message edge was
// confirmed.
func (v Verification) Ok() bool {
	return len(v.Diffs) == 0 && v.MessageEdges == v.VerifiedEdges
}

// DAG is the happens-before graph of one recorded execution.
type DAG struct {
	// N is the location count; Events the artifact's trace.
	N      int
	Events trace.T
	// Stamps/Epoch carry the artifact's wall-clock timing when present
	// (live runs); both zero for simulated artifacts.
	Stamps []int64
	Epoch  int64
	// Edges lists every happens-before edge, ascending by To then From.
	Edges []Edge
	// Verification records how the DAG was cross-checked.
	Verification Verification

	preds [][]int32 // per event, indices into Edges with Edge.To == event
}

// Preds returns the incoming edges of event i, ascending by source.
func (d *DAG) Preds(i int) []Edge {
	out := make([]Edge, len(d.preds[i]))
	for k, ei := range d.preds[i] {
		out[k] = d.Edges[ei]
	}
	return out
}

// Cone returns the causal cone (ancestor set) of event i, ascending,
// including i itself: every event that happens-before i.
func (d *DAG) Cone(i int) []int {
	seen := map[int]bool{i: true}
	stack := []int{i}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, ei := range d.preds[v] {
			if u := d.Edges[ei].From; !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	cone := make([]int, 0, len(seen))
	for v := range seen {
		cone = append(cone, v)
	}
	sort.Ints(cone)
	return cone
}

// StampNs returns event i's wall-clock offset in nanoseconds when the
// record carries stamps, else -1.
func (d *DAG) StampNs(i int) int64 {
	if len(d.Stamps) == len(d.Events) && i < len(d.Stamps) {
		return d.Stamps[i]
	}
	return -1
}

// linkState mirrors one directed channel during derivation: the pending
// send-event indices (FIFO order after loss decisions) and an independent
// per-link send counter, exactly the shadow's discipline.
type linkState struct {
	from, to ioa.Loc
	ch       interface {
		Len() int
	}
	queue []int
	seq   uint64
}

// Build reconstructs the happens-before DAG of the execution an artifact
// records, replaying it through a freshly built system under a stride-1
// oracle with the channel shadow attached.  The returned error is
// infrastructural (unbuildable target, trace rejected by the fresh system);
// engine disagreements land in DAG.Verification.Diffs.
func Build(a *trace.Artifact) (*DAG, error) {
	if len(a.Trace) == 0 {
		return nil, fmt.Errorf("causal: artifact has no trace")
	}
	r, err := chaos.RunFromArtifact(a)
	if err != nil {
		return nil, err
	}
	var nt *system.Net
	if !r.Net.IsZero() {
		nt = system.NewNet(r.Net)
	}
	b, err := r.Target.Build(a.N, r.Plan, nt, a.Sched == chaos.SchedLIFO)
	if err != nil {
		return nil, fmt.Errorf("causal: building %s: %w", a.Target, err)
	}
	orc := oracle.Attach(b.Sys, oracle.Options{Stride: 1, Shadow: true})

	d := &DAG{
		N:      a.N,
		Events: a.Trace,
		Stamps: a.Stamps,
		Epoch:  a.Epoch,
		preds:  make([][]int32, len(a.Trace)),
	}
	diff := func(format string, args ...any) {
		d.Verification.Diffs = append(d.Verification.Diffs, fmt.Sprintf(format, args...))
	}

	// Per-link derivation state, discovered from the fresh composition so
	// topology-restricted meshes get exactly their existing links.
	type pair struct{ from, to ioa.Loc }
	links := map[pair]*linkState{}
	chanOwner := map[int]*linkState{}
	autos := b.Sys.Automata()
	for ai, auto := range autos {
		var ch *system.Channel
		switch c := auto.(type) {
		case *system.TrackedChannel:
			ch = &c.Channel
		case *system.Channel:
			ch = c
		default:
			continue
		}
		ls := &linkState{from: ch.From, to: ch.To, ch: ch}
		links[pair{ch.From, ch.To}] = ls
		chanOwner[ai] = ls
	}

	addEdge := func(kind EdgeKind, from, to int, verified bool) {
		for _, ei := range d.preds[to] {
			if d.Edges[ei].From == from {
				if kind == EdgeMessage && d.Edges[ei].Kind != EdgeMessage {
					// Upgrade: the footprint already ordered the pair, but
					// the message pairing names the mechanism.
					d.Edges[ei].Kind = EdgeMessage
					d.Edges[ei].Verified = verified
					d.Verification.MessageEdges++
					if verified {
						d.Verification.VerifiedEdges++
					}
				}
				return
			}
		}
		d.preds[to] = append(d.preds[to], int32(len(d.Edges)))
		d.Edges = append(d.Edges, Edge{From: from, To: to, Kind: kind, Verified: verified})
		if kind == EdgeMessage {
			d.Verification.MessageEdges++
			if verified {
				d.Verification.VerifiedEdges++
			}
		}
	}

	lastTouch := make([]int, len(autos))
	for i := range lastTouch {
		lastTouch[i] = -1
	}
	var fpBuf []int
	var derived []trace.LinkEvent

	observe := func(idx, owner int, act ioa.Action) {
		fpBuf = b.Sys.ActionFootprint(owner, act, fpBuf)
		msgFrom := -1
		switch act.Kind {
		case ioa.KindSend:
			if act.Name != ioa.NameSend {
				break
			}
			ls := links[pair{act.Loc, act.Peer}]
			if ls == nil {
				// A topology-restricted mesh has no channel for non-neighbor
				// pairs; the send fires and the message vanishes, exactly as
				// in the composition.
				break
			}
			out := system.OutDeliver
			if r.Net.Lossy() {
				out = r.Net.Outcome(ls.from, ls.to, ls.seq)
			}
			if out != system.OutDeliver && len(derived) < system.MaxNetLog {
				derived = append(derived, trace.LinkEvent{
					Link:    fmt.Sprintf("%v>%v", ls.from, ls.to),
					Seq:     ls.seq,
					Outcome: out.String(),
				})
			}
			ls.seq++
			switch out {
			case system.OutDrop:
			case system.OutDup:
				ls.queue = append(ls.queue, idx, idx)
			case system.OutReorder:
				ls.queue = append(ls.queue, idx)
				if n := len(ls.queue); n >= 2 {
					ls.queue[n-1], ls.queue[n-2] = ls.queue[n-2], ls.queue[n-1]
				}
			default:
				ls.queue = append(ls.queue, idx)
			}
		case ioa.KindReceive:
			if act.Name != ioa.NameReceive || owner < 0 {
				break
			}
			ls := chanOwner[owner]
			if ls == nil {
				break
			}
			if len(ls.queue) == 0 {
				diff("event %d: delivery %v but the derived FIFO is empty", idx, act)
				break
			}
			send := ls.queue[0]
			ls.queue = ls.queue[1:]
			sa := d.Events[send]
			ok := sa.Payload == act.Payload && sa.Loc == act.Peer && sa.Peer == act.Loc
			if !ok {
				diff("event %d: delivery %v paired with send event %d (%v) — payload/link mismatch",
					idx, act, send, sa)
			}
			addEdge(EdgeMessage, send, idx, ok)
			msgFrom = send
		}
		for _, ai := range fpBuf {
			if p := lastTouch[ai]; p >= 0 && p != msgFrom {
				kind := EdgeProgram
				switch d.Events[p].Kind {
				case ioa.KindCrash:
					kind = EdgeCrash
				case ioa.KindFD:
					kind = EdgeFD
				}
				addEdge(kind, p, idx, true)
			}
		}
		for _, ai := range fpBuf {
			lastTouch[ai] = idx
		}
	}

	if idx, err := ioa.ReplayTraceObserved(b.Sys, a.Trace, nil, observe); err != nil {
		return nil, fmt.Errorf("causal: trace rejected by fresh system at event %d: %w", idx, err)
	}
	if got := b.Sys.Trace(); !trace.Equal(got, a.Trace) {
		diff("replayed system traced %d events, artifact records %d — not byte-identical",
			len(got), len(a.Trace))
	}
	orc.Check()
	d.Verification.OracleEvents = orc.Events()
	for _, err := range orc.Errs() {
		diff("%v", err)
	}

	// Per-link cross-checks against the oracle shadow and the live channels,
	// in deterministic link order.
	pairs := make([]pair, 0, len(links))
	for p := range links {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		return pairs[i].from < pairs[j].from ||
			(pairs[i].from == pairs[j].from && pairs[i].to < pairs[j].to)
	})
	for _, p := range pairs {
		ls := links[p]
		if seq, ok := orc.ShadowSeq(p.from, p.to); !ok {
			diff("link %v>%v: oracle shadow has no counter for it", p.from, p.to)
		} else if seq != ls.seq {
			diff("link %v>%v: derived %d sends but the oracle shadow counted %d",
				p.from, p.to, ls.seq, seq)
		}
		if got := ls.ch.Len(); got != len(ls.queue) {
			diff("link %v>%v: %d messages remain in flight but the derived FIFO holds %d",
				p.from, p.to, got, len(ls.queue))
		}
	}

	// The artifact's NetLog (when present) must equal the independently
	// derived non-deliver decisions; both honor the MaxNetLog bound.
	if a.Net != nil {
		if len(derived) != len(a.NetLog) {
			diff("derived %d non-deliver link decisions, artifact logs %d",
				len(derived), len(a.NetLog))
		} else {
			for i := range derived {
				if derived[i] != a.NetLog[i] {
					diff("link decision %d: derived %+v, artifact logs %+v",
						i, derived[i], a.NetLog[i])
				}
			}
		}
	} else if len(derived) > 0 {
		diff("derived %d loss decisions for an artifact with no network", len(derived))
	}
	return d, nil
}
