package causal

import (
	"sort"

	"repro/internal/ioa"
	"repro/internal/trace"
)

// Detection is one (observer, crashed location) detection: the steps — and,
// for stamped live records, the wall-clock nanoseconds — from the crash to
// the observer's first permanent suspicion of it (the last transition adding
// the subject with no later removal).
type Detection struct {
	Observer   ioa.Loc `json:"observer"`
	Crashed    ioa.Loc `json:"crashed"`
	CrashStep  int     `json:"crashStep"`
	DetectStep int     `json:"detectStep"`
	// Steps is max(DetectStep-CrashStep, 0): a detector that already
	// suspected the location when it crashed detected it instantly.
	Steps int   `json:"steps"`
	Ns    int64 `json:"ns,omitempty"`
}

// Mistake is one wrong-suspicion interval: an observer suspecting a
// location that had not crashed, measured from the suspicion's start to its
// removal (or to the crash/end of trace if never removed).
type Mistake struct {
	Observer ioa.Loc `json:"observer"`
	Suspect  ioa.Loc `json:"suspect"`
	Start    int     `json:"start"`
	End      int     `json:"end"`
	Steps    int     `json:"steps"`
	Ns       int64   `json:"ns,omitempty"`
	// Removed reports whether the detector itself ended the interval (the
	// accuracy-restoring transition), as opposed to the crash or the end of
	// the record.
	Removed bool `json:"removed"`
}

// Stats is the QoS record of one detector family over one execution.
// Step-indexed figures are always present; Ns figures are filled when the
// record carries wall-clock stamps (live runs).
type Stats struct {
	Family string `json:"family"`
	// Observers counts the locations that emitted at least one output of
	// the family.
	Observers int `json:"observers"`

	Detections []Detection `json:"detections,omitempty"`
	Mistakes   []Mistake   `json:"mistakes,omitempty"`

	DetectionMeanSteps float64 `json:"detectionMeanSteps,omitempty"`
	DetectionMaxSteps  int     `json:"detectionMaxSteps,omitempty"`
	DetectionMeanNs    float64 `json:"detectionMeanNs,omitempty"`
	DetectionMaxNs     int64   `json:"detectionMaxNs,omitempty"`
	// PropagationSteps is the suspicion-propagation spread per crash,
	// maximized over crashes: last observer's permanent detection minus the
	// first's — how long the failure's knowledge took to cover the mesh.
	PropagationSteps int   `json:"propagationSteps,omitempty"`
	PropagationNs    int64 `json:"propagationNs,omitempty"`

	MistakeCount     int     `json:"mistakeCount,omitempty"`
	MistakeMeanSteps float64 `json:"mistakeMeanSteps,omitempty"`
	MistakeMaxSteps  int     `json:"mistakeMaxSteps,omitempty"`
}

// Compute derives per-family QoS from a recorded trace.  stamps, when
// parallel to the trace (live records), adds wall-clock figures; pass nil
// for simulated records.  Steps are trace event indices — the uniform
// "time" both engines share.
func Compute(t trace.T, stamps []int64) []Stats {
	type fdKey struct {
		name string
		loc  ioa.Loc
	}
	type obsPair struct {
		obs, sub ioa.Loc
	}
	stamped := len(stamps) == len(t) && len(t) > 0
	ns := func(i int) int64 {
		if stamped {
			return stamps[i]
		}
		return -1
	}

	crashStep := map[ioa.Loc]int{}
	last := map[fdKey]map[ioa.Loc]bool{}
	observers := map[string]map[ioa.Loc]bool{}
	// Per family: open suspicion intervals and the event of the last
	// still-standing addition (candidate permanent detection).
	type interval struct {
		start int
	}
	open := map[string]map[obsPair]interval{}
	closed := map[string][]Mistake{}
	lastAdd := map[string]map[obsPair]int{}

	for idx, act := range t {
		switch act.Kind {
		case ioa.KindCrash:
			if _, ok := crashStep[act.Loc]; !ok {
				crashStep[act.Loc] = idx
			}
		case ioa.KindFD:
			set, err := ioa.DecodeLocSet(act.Payload)
			if err != nil {
				continue
			}
			fam := act.Name
			if observers[fam] == nil {
				observers[fam] = map[ioa.Loc]bool{}
				open[fam] = map[obsPair]interval{}
				lastAdd[fam] = map[obsPair]int{}
			}
			observers[fam][act.Loc] = true
			key := fdKey{fam, act.Loc}
			prev := last[key]
			for j := range set {
				if set[j] && !prev[j] {
					p := obsPair{act.Loc, j}
					lastAdd[fam][p] = idx
					if _, crashed := crashStep[j]; !crashed {
						if _, o := open[fam][p]; !o {
							open[fam][p] = interval{start: idx}
						}
					}
				}
			}
			for j := range prev {
				if prev[j] && !set[j] {
					p := obsPair{act.Loc, j}
					delete(lastAdd[fam], p)
					if iv, o := open[fam][p]; o {
						delete(open[fam], p)
						closed[fam] = append(closed[fam], Mistake{
							Observer: p.obs, Suspect: p.sub,
							Start: iv.start, End: idx, Steps: idx - iv.start,
							Removed: true,
						})
					}
				}
			}
			last[key] = set
		}
	}

	end := len(t)
	fams := make([]string, 0, len(observers))
	for f := range observers {
		fams = append(fams, f)
	}
	sort.Strings(fams)

	out := make([]Stats, 0, len(fams))
	for _, fam := range fams {
		s := Stats{Family: fam, Observers: len(observers[fam])}

		// Detections: last-standing additions of crashed locations.
		perCrash := map[ioa.Loc][]int{} // crashed → permanent detection steps per observer
		for p, addIdx := range lastAdd[fam] {
			cs, crashed := crashStep[p.sub]
			if !crashed {
				continue
			}
			det := Detection{
				Observer: p.obs, Crashed: p.sub,
				CrashStep: cs, DetectStep: addIdx,
				Steps: max(addIdx-cs, 0),
			}
			if stamped {
				det.Ns = max64(ns(addIdx)-ns(cs), 0)
			}
			s.Detections = append(s.Detections, det)
			perCrash[p.sub] = append(perCrash[p.sub], addIdx)
		}
		sort.Slice(s.Detections, func(i, j int) bool {
			a, b := s.Detections[i], s.Detections[j]
			return a.Crashed < b.Crashed || (a.Crashed == b.Crashed && a.Observer < b.Observer)
		})
		var sumSteps, sumNs float64
		for _, det := range s.Detections {
			sumSteps += float64(det.Steps)
			sumNs += float64(det.Ns)
			if det.Steps > s.DetectionMaxSteps {
				s.DetectionMaxSteps = det.Steps
			}
			if det.Ns > s.DetectionMaxNs {
				s.DetectionMaxNs = det.Ns
			}
		}
		if n := len(s.Detections); n > 0 {
			s.DetectionMeanSteps = sumSteps / float64(n)
			if stamped {
				s.DetectionMeanNs = sumNs / float64(n)
			}
		}
		for _, dets := range perCrash {
			if len(dets) < 2 {
				continue
			}
			lo, hi := dets[0], dets[0]
			for _, v := range dets[1:] {
				lo, hi = min(lo, v), max(hi, v)
			}
			if spread := hi - lo; spread > s.PropagationSteps {
				s.PropagationSteps = spread
			}
			if stamped {
				if spread := ns(hi) - ns(lo); spread > s.PropagationNs {
					s.PropagationNs = spread
				}
			}
		}

		// Mistakes: closed intervals plus still-open wrong suspicions,
		// truncated at the suspect's crash or the record's end.
		s.Mistakes = append(s.Mistakes, closed[fam]...)
		for p, iv := range open[fam] {
			stop := end
			if cs, crashed := crashStep[p.sub]; crashed && cs > iv.start {
				stop = cs
			}
			m := Mistake{
				Observer: p.obs, Suspect: p.sub,
				Start: iv.start, End: stop, Steps: stop - iv.start,
			}
			if stamped && stop < len(stamps) {
				m.Ns = ns(stop) - ns(iv.start)
			}
			s.Mistakes = append(s.Mistakes, m)
		}
		for i, m := range s.Mistakes {
			if stamped && m.Removed {
				s.Mistakes[i].Ns = ns(m.End) - ns(m.Start)
			}
		}
		sort.Slice(s.Mistakes, func(i, j int) bool {
			a, b := s.Mistakes[i], s.Mistakes[j]
			return a.Start < b.Start || (a.Start == b.Start && a.Observer < b.Observer)
		})
		s.MistakeCount = len(s.Mistakes)
		var mSum float64
		for _, m := range s.Mistakes {
			mSum += float64(m.Steps)
			if m.Steps > s.MistakeMaxSteps {
				s.MistakeMaxSteps = m.Steps
			}
		}
		if s.MistakeCount > 0 {
			s.MistakeMeanSteps = mSum / float64(s.MistakeCount)
		}
		out = append(out, s)
	}
	return out
}

// Summary aggregates a family's Stats across many executions (a chaos
// survey cell, a size sweep row).  Ns figures are zero unless every
// aggregated record was stamped.
type Summary struct {
	Family string `json:"family"`
	Runs   int    `json:"runs"`

	Detections         int     `json:"detections"`
	DetectionMeanSteps float64 `json:"detectionMeanSteps"`
	DetectionMaxSteps  int     `json:"detectionMaxSteps"`
	DetectionMeanNs    float64 `json:"detectionMeanNs,omitempty"`
	DetectionMaxNs     int64   `json:"detectionMaxNs,omitempty"`

	PropagationMeanSteps float64 `json:"propagationMeanSteps"`
	PropagationMaxSteps  int     `json:"propagationMaxSteps"`

	Mistakes         int     `json:"mistakes"`
	MistakesPerRun   float64 `json:"mistakesPerRun"`
	MistakeMeanSteps float64 `json:"mistakeMeanSteps"`
	MistakeMaxSteps  int     `json:"mistakeMaxSteps"`
}

// Summarize aggregates per-run Stats by family, sorted by family name.
func Summarize(all []Stats) []Summary {
	byFam := map[string]*Summary{}
	var detSteps, detNs, propSteps, misSteps map[string]float64
	detSteps = map[string]float64{}
	detNs = map[string]float64{}
	propSteps = map[string]float64{}
	misSteps = map[string]float64{}
	stampedAll := map[string]bool{}
	for _, s := range all {
		sum := byFam[s.Family]
		if sum == nil {
			sum = &Summary{Family: s.Family}
			byFam[s.Family] = sum
			stampedAll[s.Family] = true
		}
		sum.Runs++
		sum.Detections += len(s.Detections)
		detSteps[s.Family] += s.DetectionMeanSteps * float64(len(s.Detections))
		detNs[s.Family] += s.DetectionMeanNs * float64(len(s.Detections))
		if s.DetectionMeanNs == 0 {
			stampedAll[s.Family] = false
		}
		if s.DetectionMaxSteps > sum.DetectionMaxSteps {
			sum.DetectionMaxSteps = s.DetectionMaxSteps
		}
		if s.DetectionMaxNs > sum.DetectionMaxNs {
			sum.DetectionMaxNs = s.DetectionMaxNs
		}
		propSteps[s.Family] += float64(s.PropagationSteps)
		if s.PropagationSteps > sum.PropagationMaxSteps {
			sum.PropagationMaxSteps = s.PropagationSteps
		}
		sum.Mistakes += s.MistakeCount
		misSteps[s.Family] += s.MistakeMeanSteps * float64(s.MistakeCount)
		if s.MistakeMaxSteps > sum.MistakeMaxSteps {
			sum.MistakeMaxSteps = s.MistakeMaxSteps
		}
	}
	fams := make([]string, 0, len(byFam))
	for f := range byFam {
		fams = append(fams, f)
	}
	sort.Strings(fams)
	out := make([]Summary, 0, len(fams))
	for _, f := range fams {
		sum := byFam[f]
		if sum.Detections > 0 {
			sum.DetectionMeanSteps = detSteps[f] / float64(sum.Detections)
			if stampedAll[f] {
				sum.DetectionMeanNs = detNs[f] / float64(sum.Detections)
			} else {
				sum.DetectionMaxNs = 0
			}
		}
		if sum.Runs > 0 {
			sum.PropagationMeanSteps = propSteps[f] / float64(sum.Runs)
			sum.MistakesPerRun = float64(sum.Mistakes) / float64(sum.Runs)
		}
		if sum.Mistakes > 0 {
			sum.MistakeMeanSteps = misSteps[f] / float64(sum.Mistakes)
		}
		out = append(out, *sum)
	}
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
