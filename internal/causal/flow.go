package causal

import "repro/internal/telemetry"

// flowStepNs is the synthetic clock used when a record carries no wall-clock
// stamps: one microsecond per trace event, so simulated chains render with
// legible spacing in Perfetto.
const flowStepNs = 1_000

// flowTS maps an event to a trace timestamp: the record's own stamp when
// present, else the synthetic step clock.
func (d *DAG) flowTS(ev int) int64 {
	if ts := d.StampNs(ev); ts >= 0 {
		return ts
	}
	return int64(ev) * flowStepNs
}

// EmitFlows overlays an explanation onto a telemetry sink as Chrome-trace
// flow events: one arrow (ph "s" at the send, ph "f" at the delivery) per
// message edge of the chain, each end on its location's track, plus an
// instant event per chain link so the annotated events are visible even
// where the execution trace recorded nothing.  Requires the sink to
// implement telemetry.FlowSink (the standard Registry does); returns the
// number of arrows emitted, 0 when the sink doesn't support flows.
func EmitFlows(tel telemetry.Sink, d *DAG, ex *Explanation) int {
	fs, ok := tel.(telemetry.FlowSink)
	if !ok || tel == nil {
		return 0
	}
	arrows := 0
	for k := range ex.Chain {
		link := ex.Chain[k]
		fs.InstantAt(telemetry.CatCausal, link.Action, d.flowTS(link.Event),
			int32(link.Loc), int64(link.Event))
		if link.EdgeToNext != EdgeMessage.String() || k+1 >= len(ex.Chain) {
			continue
		}
		next := ex.Chain[k+1]
		// The arrow's identity is the edge itself: send and delivery event
		// indices packed into one id, unique within a trace.
		id := uint64(link.Event)<<32 | uint64(next.Event)
		fs.FlowAt(telemetry.FlowStart, telemetry.CatCausal, "suspicion-chain",
			id, d.flowTS(link.Event), int32(link.Loc))
		fs.FlowAt(telemetry.FlowFinish, telemetry.CatCausal, "suspicion-chain",
			id, d.flowTS(next.Event), int32(next.Loc))
		arrows++
	}
	return arrows
}
