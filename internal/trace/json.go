package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ioa"
)

// jsonEvent is the wire form of one event.
type jsonEvent struct {
	Kind    string   `json:"kind"`
	Name    string   `json:"name,omitempty"`
	Loc     ioa.Loc  `json:"loc"`
	Peer    *ioa.Loc `json:"peer,omitempty"` // only for send/receive
	Payload string   `json:"payload,omitempty"`
}

var kindNames = map[ioa.Kind]string{
	ioa.KindCrash:    "crash",
	ioa.KindSend:     "send",
	ioa.KindReceive:  "receive",
	ioa.KindFD:       "fd",
	ioa.KindEnvIn:    "envin",
	ioa.KindEnvOut:   "envout",
	ioa.KindInternal: "internal",
}

var kindValues = func() map[string]ioa.Kind {
	m := make(map[string]ioa.Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// encodeEvents converts a trace to its wire form.
func encodeEvents(t T) []jsonEvent {
	events := make([]jsonEvent, len(t))
	for i, a := range t {
		events[i] = jsonEvent{
			Kind:    kindNames[a.Kind],
			Name:    a.Name,
			Loc:     a.Loc,
			Payload: a.Payload,
		}
		if a.Kind == ioa.KindSend || a.Kind == ioa.KindReceive {
			peer := a.Peer
			events[i].Peer = &peer
		}
	}
	return events
}

// WriteJSON writes a trace as a JSON array of events.
func WriteJSON(w io.Writer, t T) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(encodeEvents(t))
}

// decodeEvents converts wire events back to a trace.
func decodeEvents(events []jsonEvent) (T, error) {
	out := make(T, len(events))
	for i, e := range events {
		k, ok := kindValues[e.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: event %d has unknown kind %q", i, e.Kind)
		}
		peer := ioa.NoLoc
		if k == ioa.KindSend || k == ioa.KindReceive {
			if e.Peer == nil {
				return nil, fmt.Errorf("trace: event %d (%s) lacks peer", i, e.Kind)
			}
			peer = *e.Peer
		}
		name := e.Name
		if name == "" && k == ioa.KindCrash {
			name = "crash"
		}
		if name == "" && k != ioa.KindCrash {
			return nil, fmt.Errorf("trace: event %d (%s) lacks name", i, e.Kind)
		}
		out[i] = ioa.Action{Kind: k, Name: name, Loc: e.Loc, Peer: peer, Payload: e.Payload}
	}
	return out, nil
}

// ReadJSON reads a trace written by WriteJSON.
func ReadJSON(r io.Reader) (T, error) {
	var events []jsonEvent
	if err := json.NewDecoder(r).Decode(&events); err != nil {
		return nil, fmt.Errorf("trace: decoding JSON: %w", err)
	}
	return decodeEvents(events)
}
