package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ioa"
)

func TestArtifactRoundTrip(t *testing.T) {
	a := &Artifact{
		Target:  "detector:FD-P",
		N:       3,
		Steps:   128,
		Sched:   "random",
		Seed:    42,
		Crash:   []ioa.Loc{2, 0},
		Gate:    map[string]int{"crashAfter": 10, "crashGap": 5},
		GateLog: []GateVeto{{Step: 3, Action: "crash_2"}},
		Verdict: "afd: output after crash",
		Trace: T{
			ioa.Crash(2),
			ioa.FDOutput("FD-P", 0, "{2}"),
			ioa.Send(0, 1, "m"),
			ioa.Receive(1, 0, "m"),
		},
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Target != a.Target || b.N != a.N || b.Steps != a.Steps ||
		b.Sched != a.Sched || b.Seed != a.Seed || b.Verdict != a.Verdict {
		t.Fatalf("scalar fields differ: %+v vs %+v", b, a)
	}
	if len(b.Crash) != 2 || b.Crash[0] != 2 || b.Crash[1] != 0 {
		t.Fatalf("crash plan = %v", b.Crash)
	}
	if b.Gate["crashAfter"] != 10 || b.Gate["crashGap"] != 5 {
		t.Fatalf("gate params = %v", b.Gate)
	}
	if len(b.GateLog) != 1 || b.GateLog[0] != (GateVeto{Step: 3, Action: "crash_2"}) {
		t.Fatalf("gate log = %v", b.GateLog)
	}
	if !Equal(b.Trace, a.Trace) {
		t.Fatalf("trace differs: %v vs %v", b.Trace, a.Trace)
	}
	if b.Version != ArtifactVersion {
		t.Fatalf("version = %d", b.Version)
	}
}

func TestArtifactVersionMismatch(t *testing.T) {
	in := strings.NewReader(`{"version": 99, "target": "x"}`)
	if _, err := ReadArtifact(in); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestArtifactEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, &Artifact{Target: "t", N: 1}); err != nil {
		t.Fatal(err)
	}
	b, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Trace) != 0 {
		t.Fatalf("trace = %v, want empty", b.Trace)
	}
}
