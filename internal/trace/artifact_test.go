package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ioa"
)

func TestArtifactRoundTrip(t *testing.T) {
	a := &Artifact{
		Target:  "detector:FD-P",
		N:       3,
		Steps:   128,
		Sched:   "random",
		Seed:    42,
		Crash:   []ioa.Loc{2, 0},
		Gate:    map[string]int{"crashAfter": 10, "crashGap": 5},
		GateLog: []GateVeto{{Step: 3, Action: "crash_2"}},
		Verdict: "afd: output after crash",
		Trace: T{
			ioa.Crash(2),
			ioa.FDOutput("FD-P", 0, "{2}"),
			ioa.Send(0, 1, "m"),
			ioa.Receive(1, 0, "m"),
		},
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if b.Target != a.Target || b.N != a.N || b.Steps != a.Steps ||
		b.Sched != a.Sched || b.Seed != a.Seed || b.Verdict != a.Verdict {
		t.Fatalf("scalar fields differ: %+v vs %+v", b, a)
	}
	if len(b.Crash) != 2 || b.Crash[0] != 2 || b.Crash[1] != 0 {
		t.Fatalf("crash plan = %v", b.Crash)
	}
	if b.Gate["crashAfter"] != 10 || b.Gate["crashGap"] != 5 {
		t.Fatalf("gate params = %v", b.Gate)
	}
	if len(b.GateLog) != 1 || b.GateLog[0] != (GateVeto{Step: 3, Action: "crash_2"}) {
		t.Fatalf("gate log = %v", b.GateLog)
	}
	if !Equal(b.Trace, a.Trace) {
		t.Fatalf("trace differs: %v vs %v", b.Trace, a.Trace)
	}
	if b.Version != ArtifactVersion {
		t.Fatalf("version = %d", b.Version)
	}
}

// TestArtifactStampsRoundTrip pins the live-run timing fields: one relative
// nanosecond stamp per trace event plus the wall-clock epoch must survive
// the wire, so a replayed live artifact can recompute wall-clock QoS
// offline; a simulated artifact (no stamps) must omit both keys entirely.
func TestArtifactStampsRoundTrip(t *testing.T) {
	a := &Artifact{
		Target: "gossip:FD-◇Q>FD-◇P",
		N:      2,
		Steps:  3,
		Sched:  "live",
		Trace: T{
			ioa.Crash(1),
			ioa.FDOutput("FD-◇P", 0, "{1}"),
		},
		Stamps: []int64{1_500, 2_000_000},
		Epoch:  1_700_000_000_000_000_000,
	}
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, a); err != nil {
		t.Fatal(err)
	}
	b, err := ReadArtifact(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Stamps) != 2 || b.Stamps[0] != 1_500 || b.Stamps[1] != 2_000_000 {
		t.Fatalf("stamps = %v, want [1500 2000000]", b.Stamps)
	}
	if b.Epoch != a.Epoch {
		t.Fatalf("epoch = %d, want %d", b.Epoch, a.Epoch)
	}
	if len(b.Stamps) != len(b.Trace) {
		t.Fatalf("stamps (%d) no longer parallel to trace (%d)", len(b.Stamps), len(b.Trace))
	}

	var sim bytes.Buffer
	if err := WriteArtifact(&sim, &Artifact{Target: "t", N: 1}); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{`"stamps"`, `"epoch"`} {
		if strings.Contains(sim.String(), key) {
			t.Errorf("simulated artifact serializes %s despite having none", key)
		}
	}
}

func TestArtifactVersionMismatch(t *testing.T) {
	in := strings.NewReader(`{"version": 99, "target": "x"}`)
	if _, err := ReadArtifact(in); err == nil {
		t.Fatal("future version accepted")
	}
}

func TestArtifactEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteArtifact(&buf, &Artifact{Target: "t", N: 1}); err != nil {
		t.Fatal(err)
	}
	b, err := ReadArtifact(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Trace) != 0 {
		t.Fatalf("trace = %v, want empty", b.Trace)
	}
}
