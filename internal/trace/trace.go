// Package trace implements the sequence calculus of Section 3.2 of
// "Asynchronous Failure Detectors": projections, samplings, constrained
// reorderings, and the live/faulty bookkeeping used by every specification
// checker in this repository.
//
// A trace is a finite []ioa.Action.  The paper works with finite and infinite
// sequences; simulation produces finite prefixes of fair executions, and the
// helpers here make the finite-prefix reading of "eventually"/"permanently"
// explicit (see StableSuffix).
package trace

import (
	"fmt"

	"repro/internal/ioa"
)

// T is a finite sequence of events.
type T = []ioa.Action

// Project returns the subsequence of t consisting of events satisfying keep
// (the paper's projection t|B for B = {a : keep(a)}).
func Project(t T, keep func(ioa.Action) bool) T {
	var out T
	for _, a := range t {
		if keep(a) {
			out = append(out, a)
		}
	}
	return out
}

// AtLoc returns the subsequence of events occurring at location i.
func AtLoc(t T, i ioa.Loc) T {
	return Project(t, func(a ioa.Action) bool { return a.Loc == i })
}

// Kinds returns the subsequence of events whose kind is one of ks.
func Kinds(t T, ks ...ioa.Kind) T {
	return Project(t, func(a ioa.Action) bool {
		for _, k := range ks {
			if a.Kind == k {
				return true
			}
		}
		return false
	})
}

// FD returns t projected onto Iˆ ∪ OD for the failure-detector family with
// the given action name: all crash events plus all KindFD events named name.
func FD(t T, name string) T {
	return Project(t, func(a ioa.Action) bool {
		return a.Kind == ioa.KindCrash || (a.Kind == ioa.KindFD && a.Name == name)
	})
}

// Faulty returns faulty(t): the set of locations at which a crash event
// occurs in t.
func Faulty(t T) map[ioa.Loc]bool {
	f := make(map[ioa.Loc]bool)
	for _, a := range t {
		if a.Kind == ioa.KindCrash {
			f[a.Loc] = true
		}
	}
	return f
}

// Live returns live(t) for a system with locations 0..n-1: the locations at
// which no crash event occurs in t.
func Live(t T, n int) map[ioa.Loc]bool {
	f := Faulty(t)
	live := make(map[ioa.Loc]bool, n)
	for i := 0; i < n; i++ {
		if !f[ioa.Loc(i)] {
			live[ioa.Loc(i)] = true
		}
	}
	return live
}

// FirstCrashIndex returns the index in t of the first crash event at i, or -1.
func FirstCrashIndex(t T, i ioa.Loc) int {
	for x, a := range t {
		if a.Kind == ioa.KindCrash && a.Loc == i {
			return x
		}
	}
	return -1
}

// IsSubsequence reports whether sub is a subsequence of t.
func IsSubsequence(sub, t T) bool {
	j := 0
	for _, a := range t {
		if j < len(sub) && a == sub[j] {
			j++
		}
	}
	return j == len(sub)
}

// Equal reports element-wise equality of two traces.
func Equal(a, b T) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Count returns the number of events in t satisfying pred.
func Count(t T, pred func(ioa.Action) bool) int {
	n := 0
	for _, a := range t {
		if pred(a) {
			n++
		}
	}
	return n
}

// StableSuffix returns the longest suffix of t on which every event satisfies
// pred, as a start index into t (len(t) if even the empty suffix is the
// longest, i.e. the last event violates pred).  It is the finite-prefix
// reading of "there exists a suffix such that every event satisfies pred":
// on a finite prefix of a fair execution the property holds iff the stable
// suffix is non-trivial and long enough to be convincing, which callers
// decide with a minimum-length parameter.
func StableSuffix(t T, pred func(ioa.Action) bool) int {
	start := len(t)
	for i := len(t) - 1; i >= 0; i-- {
		if !pred(t[i]) {
			break
		}
		start = i
	}
	return start
}

// multiset key for sampling/reordering verification.
func key(a ioa.Action) ioa.Action { return a }

// IsSampling reports whether sample is a sampling of t per Section 3.2:
// (1) sample is a subsequence of t; (2) for every live location i,
// sample|OD,i = t|OD,i; (3) for every faulty i, sample contains the first
// crashi event of t and sample|OD,i is a prefix of t|OD,i.  Both sequences
// must range over Iˆ ∪ OD for a single detector family; isOutput classifies
// the detector's output events, and n is the number of locations.
func IsSampling(sample, t T, n int, isOutput func(ioa.Action) bool) error {
	if !IsSubsequence(sample, t) {
		return fmt.Errorf("trace: sampling is not a subsequence")
	}
	faulty := Faulty(t)
	for i := 0; i < n; i++ {
		loc := ioa.Loc(i)
		outT := Project(t, func(a ioa.Action) bool { return isOutput(a) && a.Loc == loc })
		outS := Project(sample, func(a ioa.Action) bool { return isOutput(a) && a.Loc == loc })
		if faulty[loc] {
			// Must retain the first crash event at loc.
			fc := FirstCrashIndex(t, loc)
			found := false
			for _, a := range sample {
				if a == t[fc] {
					found = true
					break
				}
			}
			if !found {
				return fmt.Errorf("trace: sampling drops first crash_%d event", i)
			}
			// Outputs at loc must form a prefix.
			if len(outS) > len(outT) {
				return fmt.Errorf("trace: sampling has extra outputs at faulty location %d", i)
			}
			for x := range outS {
				if outS[x] != outT[x] {
					return fmt.Errorf("trace: sampling outputs at faulty location %d are not a prefix", i)
				}
			}
		} else {
			if !Equal(outS, outT) {
				return fmt.Errorf("trace: sampling changes outputs at live location %d", i)
			}
		}
	}
	return nil
}

// IsConstrainedReordering reports whether r is a constrained reordering of t
// per Section 3.2: r is a permutation of t, and for every pair of events
// e before e' in t with loc(e)=loc(e') or e ∈ Iˆ, e is before e' in r too.
//
// Events are compared as Action values; equal values are matched by
// occurrence order, which is sound because equal events are mutually
// order-constrained at a single location and unconstrained otherwise only
// when indistinguishable.
func IsConstrainedReordering(r, t T) error {
	if len(r) != len(t) {
		return fmt.Errorf("trace: reordering has different length (%d vs %d)", len(r), len(t))
	}
	// Permutation check via multiset equality.
	counts := make(map[ioa.Action]int, len(t))
	for _, a := range t {
		counts[key(a)]++
	}
	for _, a := range r {
		counts[key(a)]--
		if counts[key(a)] < 0 {
			return fmt.Errorf("trace: reordering is not a permutation (extra %v)", a)
		}
	}
	// Map each occurrence in t to its occurrence index in r (k-th equal
	// value in t ↔ k-th equal value in r).
	occR := make(map[ioa.Action][]int)
	for idx, a := range r {
		occR[key(a)] = append(occR[key(a)], idx)
	}
	seen := make(map[ioa.Action]int)
	posInR := make([]int, len(t))
	for idx, a := range t {
		k := seen[key(a)]
		seen[key(a)]++
		posInR[idx] = occR[key(a)][k]
	}
	// Order constraints.
	for x := 0; x < len(t); x++ {
		for y := x + 1; y < len(t); y++ {
			e, e2 := t[x], t[y]
			if e.Loc == e2.Loc || e.Kind == ioa.KindCrash {
				if posInR[x] > posInR[y] {
					return fmt.Errorf("trace: reordering violates order of %v before %v", e, e2)
				}
			}
		}
	}
	return nil
}

// Rand is the minimal random source the trace generators draw from.  Both
// *math/rand.Rand and sched.PRNG satisfy it; deterministic artifacts (bench
// pins, chaos replays) should pass the latter, whose stream is stable across
// Go releases.
type Rand interface {
	Intn(n int) int
}

// GenSampling produces a random sampling of t (per Section 3.2) using rng:
// for each faulty location it truncates a random suffix of that location's
// outputs and drops a random subset of the non-first crash events.
func GenSampling(t T, n int, isOutput func(ioa.Action) bool, rng Rand) T {
	faulty := Faulty(t)
	// Choose a cut-off for outputs at each faulty location.
	cut := make(map[ioa.Loc]int)
	for loc := range faulty {
		total := Count(t, func(a ioa.Action) bool { return isOutput(a) && a.Loc == loc })
		cut[loc] = rng.Intn(total + 1) // keep this many outputs
	}
	firstCrash := make(map[ioa.Loc]int)
	for loc := range faulty {
		firstCrash[loc] = FirstCrashIndex(t, loc)
	}
	kept := make(T, 0, len(t))
	outSeen := make(map[ioa.Loc]int)
	for idx, a := range t {
		switch {
		case a.Kind == ioa.KindCrash:
			if idx == firstCrash[a.Loc] {
				kept = append(kept, a) // must keep first crash
			} else if rng.Intn(2) == 0 {
				kept = append(kept, a) // may keep later duplicates
			}
		case isOutput(a) && faulty[a.Loc]:
			if outSeen[a.Loc] < cut[a.Loc] {
				kept = append(kept, a)
			}
			outSeen[a.Loc]++
		default:
			kept = append(kept, a)
		}
	}
	return kept
}

// GenConstrainedReordering produces a random constrained reordering of t:
// it repeatedly picks, uniformly among the events all of whose t-predecessors
// under the order constraints have been emitted, the next event to emit.
func GenConstrainedReordering(t T, rng Rand) T {
	n := len(t)
	// preds[y] = indices x < y with a constraint x before y.
	preds := make([][]int, n)
	for y := 0; y < n; y++ {
		for x := 0; x < y; x++ {
			if t[x].Loc == t[y].Loc || t[x].Kind == ioa.KindCrash {
				preds[y] = append(preds[y], x)
			}
		}
	}
	emitted := make([]bool, n)
	out := make(T, 0, n)
	for len(out) < n {
		var ready []int
		for y := 0; y < n; y++ {
			if emitted[y] {
				continue
			}
			ok := true
			for _, x := range preds[y] {
				if !emitted[x] {
					ok = false
					break
				}
			}
			if ok {
				ready = append(ready, y)
			}
		}
		pick := ready[rng.Intn(len(ready))]
		emitted[pick] = true
		out = append(out, t[pick])
	}
	return out
}
