package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/ioa"
)

func TestJSONRoundTrip(t *testing.T) {
	tr := T{
		ioa.Crash(1),
		ioa.Send(0, 1, "m"),
		ioa.Send(1, 0, "x"),
		ioa.Receive(1, 0, "m"),
		ioa.FDOutput("FD-Ω", 2, "0"),
		ioa.EnvInput("propose", 0, "1"),
		ioa.EnvOutput("decide", 0, "1"),
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !Equal(got, tr) {
		t.Fatalf("round trip mismatch:\nwant %v\ngot  %v", tr, got)
	}
}

func TestJSONPeerZeroPreserved(t *testing.T) {
	tr := T{ioa.Send(1, 0, "m")} // peer 0 must survive omitempty handling
	var buf bytes.Buffer
	if err := WriteJSON(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Peer != 0 {
		t.Fatalf("peer = %v, want 0", got[0].Peer)
	}
}

func TestReadJSONErrors(t *testing.T) {
	cases := []string{
		`not json`,
		`[{"kind":"zzz","loc":0}]`,
		`[{"kind":"send","loc":0}]`,             // missing peer
		`[{"kind":"fd","loc":0,"payload":"1"}]`, // missing name
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("ReadJSON(%q) succeeded, want error", c)
		}
	}
	// Crash without explicit name is fine.
	got, err := ReadJSON(strings.NewReader(`[{"kind":"crash","loc":2}]`))
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != ioa.Crash(2) {
		t.Fatalf("got %v", got[0])
	}
}
