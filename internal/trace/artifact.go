package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/ioa"
)

// ArtifactVersion is the current wire-format version of Artifact.
const ArtifactVersion = 1

// GateVeto records one scheduling veto by an adversarial gate: the step
// counter at which an enabled action was held back, and the action.  The
// veto log is informational — replay determinism comes from re-deriving the
// gates from the recorded parameters, not from playing the log back — but
// it makes a shrunk reproducer legible without re-running it.
type GateVeto struct {
	Step   int    `json:"step"`
	Action string `json:"action"`
}

// LinkEvent records one non-deliver decision of a lossy link: the directed
// link ("from>to"), the 0-based per-link send index the decision applied
// to, and the outcome ("drop", "dup", "reorder").  Like the gate-veto log,
// it is informational — replay determinism comes from re-deriving every
// decision from the recorded NetWire parameters — but it makes a lossy
// reproducer legible without re-running it.
type LinkEvent struct {
	Link    string `json:"link"`
	Seq     uint64 `json:"seq"`
	Outcome string `json:"outcome"`
}

// NetWire is the artifact form of an adversarial network: the topology
// descriptor (system.ParseTopology round-trips it), the link-decision seed,
// and the permille loss rates.  A nil NetWire means the reliable full mesh.
type NetWire struct {
	Topo    string `json:"topo,omitempty"`
	Seed    int64  `json:"seed,omitempty"`
	Drop    int    `json:"drop,omitempty"`
	Dup     int    `json:"dup,omitempty"`
	Reorder int    `json:"reorder,omitempty"`
}

// Artifact is a self-contained, replayable record of one chaos run: the
// target system, the full randomness (seed), the fault plan, the gate
// parameters, and the verdict.  Everything the run consumed is a
// deterministic function of these fields, so feeding an artifact back
// through the chaos runner reproduces the identical execution and verdict.
//
// Gate holds named integer parameters whose interpretation belongs to the
// harness that wrote the artifact (package chaos documents its keys); the
// trace package only defines the wire schema.
type Artifact struct {
	Version int            `json:"version"`
	Target  string         `json:"target"`
	N       int            `json:"n"`
	Steps   int            `json:"steps"`
	Sched   string         `json:"sched"`
	Seed    int64          `json:"seed"`
	Crash   []ioa.Loc      `json:"crash"`
	Gate    map[string]int `json:"gate,omitempty"`
	GateLog []GateVeto     `json:"gateLog,omitempty"`
	// Net records the adversarial network the run executed over (nil: the
	// reliable full mesh); NetLog is the bounded log of its non-deliver
	// link decisions.  Replays reconstruct the network from Net alone.
	Net    *NetWire    `json:"net,omitempty"`
	NetLog []LinkEvent `json:"netLog,omitempty"`
	// Stamps, present on artifacts of live runs, holds one wall-clock
	// timestamp per Trace event: nanoseconds elapsed from the run's start to
	// the event (relative offsets, not absolute times).  Epoch anchors them:
	// the run's start instant in Unix nanoseconds.  Together they let a
	// replayed live artifact recompute wall-clock QoS (detection time,
	// mistake duration, propagation latency) offline; simulated artifacts
	// omit both and QoS falls back to step indices.  Informational for
	// replay, which never consumes timing.
	Stamps  []int64 `json:"stamps,omitempty"`
	Epoch   int64   `json:"epoch,omitempty"`
	Verdict string  `json:"verdict,omitempty"`
	// TraceRef, when set, names the Chrome trace_event file recorded
	// alongside this artifact (a relative path or URL).  The cross-link runs
	// both ways: the telemetry trace carries the artifact path in its
	// otherData metadata, and chaos.ReplayInstrumented re-traces the run the
	// artifact records.  Informational; replay ignores it.
	TraceRef string `json:"traceRef,omitempty"`
	Trace    T      `json:"-"`
}

// artifactWire is Artifact with the trace in jsonEvent form.
type artifactWire struct {
	Artifact
	Events []jsonEvent `json:"events,omitempty"`
}

// WriteArtifact writes the artifact as indented JSON.
func WriteArtifact(w io.Writer, a *Artifact) error {
	wire := artifactWire{Artifact: *a, Events: encodeEvents(a.Trace)}
	wire.Version = ArtifactVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(wire)
}

// ReadArtifact reads an artifact written by WriteArtifact.
func ReadArtifact(r io.Reader) (*Artifact, error) {
	var wire artifactWire
	if err := json.NewDecoder(r).Decode(&wire); err != nil {
		return nil, fmt.Errorf("trace: decoding artifact: %w", err)
	}
	if wire.Version != ArtifactVersion {
		return nil, fmt.Errorf("trace: artifact version %d, want %d", wire.Version, ArtifactVersion)
	}
	t, err := decodeEvents(wire.Events)
	if err != nil {
		return nil, err
	}
	a := wire.Artifact
	a.Trace = t
	return &a, nil
}
