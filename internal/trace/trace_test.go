package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ioa"
)

func fd(i ioa.Loc, p string) ioa.Action { return ioa.FDOutput("FD-X", i, p) }
func isOut(a ioa.Action) bool           { return a.Kind == ioa.KindFD && a.Name == "FD-X" }
func crash(i ioa.Loc) ioa.Action        { return ioa.Crash(i) }

// genValid builds a pseudo-random valid FD trace over n locations where the
// locations in faulty crash at random points (outputs stop after crashing).
func genValid(n int, faulty []ioa.Loc, events int, rng *rand.Rand) T {
	crashed := make(map[ioa.Loc]bool)
	pendingCrash := append([]ioa.Loc(nil), faulty...)
	var t T
	for len(t) < events {
		if len(pendingCrash) > 0 && rng.Intn(8) == 0 {
			c := pendingCrash[0]
			pendingCrash = pendingCrash[1:]
			crashed[c] = true
			t = append(t, crash(c))
			continue
		}
		i := ioa.Loc(rng.Intn(n))
		if crashed[i] {
			continue
		}
		t = append(t, fd(i, "p"))
	}
	// Ensure every live location has at least one output and crashes all land.
	for _, c := range pendingCrash {
		crashed[c] = true
		t = append(t, crash(c))
	}
	for i := 0; i < n; i++ {
		if !crashed[ioa.Loc(i)] {
			t = append(t, fd(ioa.Loc(i), "p"))
		}
	}
	return t
}

func TestProjectAndKinds(t *testing.T) {
	tr := T{crash(0), fd(1, "a"), fd(0, "b"), crash(2)}
	if got := len(AtLoc(tr, 0)); got != 2 {
		t.Errorf("AtLoc(0) has %d events, want 2", got)
	}
	if got := len(Kinds(tr, ioa.KindCrash)); got != 2 {
		t.Errorf("Kinds(crash) has %d events, want 2", got)
	}
	if got := len(FD(tr, "FD-X")); got != 4 {
		t.Errorf("FD projection has %d events, want 4", got)
	}
	if got := len(FD(tr, "FD-Y")); got != 2 {
		t.Errorf("FD projection onto other family has %d events, want 2 (crashes)", got)
	}
}

func TestFaultyLive(t *testing.T) {
	tr := T{fd(0, "a"), crash(1), fd(2, "b")}
	f := Faulty(tr)
	if !f[1] || f[0] || f[2] {
		t.Errorf("Faulty = %v", f)
	}
	l := Live(tr, 3)
	if !l[0] || l[1] || !l[2] {
		t.Errorf("Live = %v", l)
	}
}

func TestFirstCrashIndex(t *testing.T) {
	tr := T{fd(0, "a"), crash(1), crash(1), fd(0, "b")}
	if got := FirstCrashIndex(tr, 1); got != 1 {
		t.Errorf("FirstCrashIndex = %d, want 1", got)
	}
	if got := FirstCrashIndex(tr, 0); got != -1 {
		t.Errorf("FirstCrashIndex of live = %d, want -1", got)
	}
}

func TestIsSubsequence(t *testing.T) {
	tr := T{fd(0, "a"), fd(1, "b"), fd(0, "c")}
	if !IsSubsequence(T{fd(0, "a"), fd(0, "c")}, tr) {
		t.Error("valid subsequence rejected")
	}
	if IsSubsequence(T{fd(0, "c"), fd(0, "a")}, tr) {
		t.Error("out-of-order subsequence accepted")
	}
	if !IsSubsequence(nil, tr) {
		t.Error("empty sequence is a subsequence of anything")
	}
}

func TestStableSuffix(t *testing.T) {
	tr := T{fd(0, "x"), fd(0, "y"), fd(0, "y"), fd(0, "y")}
	pred := func(a ioa.Action) bool { return a.Payload == "y" }
	if got := StableSuffix(tr, pred); got != 1 {
		t.Errorf("StableSuffix = %d, want 1", got)
	}
	if got := StableSuffix(tr, func(ioa.Action) bool { return false }); got != len(tr) {
		t.Errorf("StableSuffix with false pred = %d, want len", got)
	}
	if got := StableSuffix(tr, func(ioa.Action) bool { return true }); got != 0 {
		t.Errorf("StableSuffix with true pred = %d, want 0", got)
	}
}

func TestIsSamplingAcceptsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tr := genValid(3, []ioa.Loc{1}, 40, rng)
	if err := IsSampling(tr, tr, 3, isOut); err != nil {
		t.Errorf("identity sampling rejected: %v", err)
	}
}

func TestIsSamplingRejectsLiveDrop(t *testing.T) {
	tr := T{fd(0, "a"), fd(0, "b"), fd(1, "c")}
	bad := T{fd(0, "a"), fd(1, "c")} // drops a live-location output
	if err := IsSampling(bad, tr, 2, isOut); err == nil {
		t.Error("sampling that drops live outputs must be rejected")
	}
}

func TestIsSamplingRejectsDroppedFirstCrash(t *testing.T) {
	tr := T{fd(0, "a"), crash(1), fd(0, "b")}
	bad := T{fd(0, "a"), fd(0, "b")}
	if err := IsSampling(bad, tr, 2, isOut); err == nil {
		t.Error("sampling that drops the first crash must be rejected")
	}
}

func TestIsSamplingAllowsFaultySuffixDrop(t *testing.T) {
	tr := T{fd(1, "a"), fd(1, "b"), crash(1), fd(0, "c")}
	good := T{fd(1, "a"), crash(1), fd(0, "c")} // drops a suffix of 1's outputs
	if err := IsSampling(good, tr, 2, isOut); err != nil {
		t.Errorf("valid sampling rejected: %v", err)
	}
	bad := T{fd(1, "b"), crash(1), fd(0, "c")} // drops a prefix, not a suffix
	if err := IsSampling(bad, tr, 2, isOut); err == nil {
		t.Error("non-prefix retention at faulty location must be rejected")
	}
}

func TestGenSamplingAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		var faulty []ioa.Loc
		for i := 0; i < n-1; i++ {
			if rng.Intn(2) == 0 {
				faulty = append(faulty, ioa.Loc(i))
			}
		}
		tr := genValid(n, faulty, 10+rng.Intn(60), rng)
		s := GenSampling(tr, n, isOut, rng)
		if err := IsSampling(s, tr, n, isOut); err != nil {
			t.Fatalf("trial %d: generated sampling invalid: %v\ntrace: %v\nsample: %v", trial, err, tr, s)
		}
	}
}

func TestIsConstrainedReorderingIdentity(t *testing.T) {
	tr := T{fd(0, "a"), crash(1), fd(0, "b"), fd(2, "c")}
	if err := IsConstrainedReordering(tr, tr); err != nil {
		t.Errorf("identity reordering rejected: %v", err)
	}
}

func TestIsConstrainedReorderingRejectsSameLocSwap(t *testing.T) {
	tr := T{fd(0, "a"), fd(0, "b")}
	bad := T{fd(0, "b"), fd(0, "a")}
	if err := IsConstrainedReordering(bad, tr); err == nil {
		t.Error("same-location swap must be rejected")
	}
}

func TestIsConstrainedReorderingRejectsCrashOvertake(t *testing.T) {
	tr := T{crash(1), fd(0, "a")}
	bad := T{fd(0, "a"), crash(1)}
	if err := IsConstrainedReordering(bad, tr); err == nil {
		t.Error("moving an event before a preceding crash must be rejected")
	}
}

func TestIsConstrainedReorderingAllowsCrossLocSwap(t *testing.T) {
	tr := T{fd(0, "a"), fd(1, "b")}
	ok := T{fd(1, "b"), fd(0, "a")}
	if err := IsConstrainedReordering(ok, tr); err != nil {
		t.Errorf("cross-location swap should be allowed: %v", err)
	}
}

func TestIsConstrainedReorderingRejectsNonPermutation(t *testing.T) {
	tr := T{fd(0, "a"), fd(1, "b")}
	if err := IsConstrainedReordering(T{fd(0, "a")}, tr); err == nil {
		t.Error("length mismatch must be rejected")
	}
	if err := IsConstrainedReordering(T{fd(0, "a"), fd(0, "a")}, tr); err == nil {
		t.Error("multiset mismatch must be rejected")
	}
}

func TestGenConstrainedReorderingAlwaysValid(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(4)
		var faulty []ioa.Loc
		if rng.Intn(2) == 0 {
			faulty = append(faulty, ioa.Loc(rng.Intn(n-1)))
		}
		tr := genValid(n, faulty, 5+rng.Intn(30), rng)
		r := GenConstrainedReordering(tr, rng)
		if err := IsConstrainedReordering(r, tr); err != nil {
			t.Fatalf("trial %d: generated reordering invalid: %v", trial, err)
		}
	}
}

// Property (testing/quick): for random event sequences, a generated
// constrained reordering preserves per-location subsequences exactly.
func TestQuickReorderingPreservesPerLocationOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	f := func(locs []uint8, seed int64) bool {
		if len(locs) == 0 {
			return true
		}
		var tr T
		for k, l := range locs {
			tr = append(tr, fd(ioa.Loc(l%4), string(rune('a'+k%26))))
		}
		r := GenConstrainedReordering(tr, rand.New(rand.NewSource(seed)))
		for i := ioa.Loc(0); i < 4; i++ {
			if !Equal(AtLoc(tr, i), AtLoc(r, i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func TestEqualAndCount(t *testing.T) {
	a := T{fd(0, "a"), fd(1, "b")}
	if !Equal(a, a) {
		t.Error("Equal(a,a) = false")
	}
	if Equal(a, a[:1]) {
		t.Error("Equal with different lengths")
	}
	if Equal(T{fd(0, "a"), fd(1, "c")}, a) {
		t.Error("Equal with different payloads")
	}
	if got := Count(a, func(x ioa.Action) bool { return x.Loc == 0 }); got != 1 {
		t.Errorf("Count = %d", got)
	}
}
