package valence

import (
	"fmt"
	"sort"
	"testing"

	"repro/internal/afd"
	"repro/internal/ioa"
)

// reduceConfigs are the E10–E11 golden configurations the reduction is
// validated against (the same four TestGoldenStats pins).
func reduceConfigs() []struct {
	name string
	cfg  Config
} {
	return []struct {
		name string
		cfg  Config
	}{
		{"omega n=2 free", Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 6, nil)}},
		{"omega n=2 short", Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 3, nil)}},
		{"perfect s n=2 crash", Config{N: 2, Family: afd.FamilyP, Algo: "s",
			TD: PerfectTD(2, 4, map[ioa.Loc]int{1: 1})}},
		{"perfect s n=3 crash", Config{N: 3, Family: afd.FamilyP, Algo: "s",
			TD:     PerfectTD(3, 2, map[ioa.Loc]int{2: 1}),
			Values: []int{-1, 1, 1}, MaxNodes: 1_500_000, Workers: 4}},
	}
}

// nodeKey identifies a node across differently explored graphs.
func nodeKey(e *Explorer, id NodeID) string {
	return fmt.Sprintf("%d|%s", e.NodeFD(id), e.NodeEncoding(id))
}

// hookKeys renders a graph's hooks in a graph-independent, sortable form.
func hookKeys(e *Explorer, hooks []Hook) []string {
	out := make([]string, 0, len(hooks))
	for _, h := range hooks {
		out = append(out, fmt.Sprintf("%s L=%s(%s) R=%s(%s) v=%d",
			nodeKey(e, h.Node), e.LabelName(h.L), h.LAct, e.LabelName(h.R), h.RAct, h.V))
	}
	sort.Strings(out)
	return out
}

// TestReduceVerdictsMatchFull is the core soundness check, in-unit (the
// oracle's DiffReduction re-verifies it with independence justifications):
// on every golden config the reduced graph must classify every surviving
// node exactly as the full graph does, keep the full graph's bivalent count
// (bivalent nodes are never pruned away), and produce the identical hook
// set.
func TestReduceVerdictsMatchFull(t *testing.T) {
	for _, tc := range reduceConfigs() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			if tc.cfg.N >= 3 && testing.Short() {
				tc.cfg.Workers = 4
			}
			full := explore(t, tc.cfg)
			red := tc.cfg
			red.Reduce = true
			rede := explore(t, red)

			fs, rs := full.Stats(), rede.Stats()
			t.Logf("full: %d nodes / %d edges; reduced: %d nodes / %d edges "+
				"(%d reduced, %d pruned, %d sleep hits, %d rounds, %d+%d forced, %d poisoned)",
				fs.Nodes, fs.Edges, rs.Nodes, rs.Edges, rs.ReducedNodes, rs.PrunedSteps,
				rs.SleepHits, rs.ReduceRounds, rs.ForcedCycle, rs.ForcedBivalent, rs.Poisoned)
			if rs.Nodes > fs.Nodes {
				t.Fatalf("reduced graph larger than full: %d > %d", rs.Nodes, fs.Nodes)
			}
			if rs.Poisoned != 0 {
				t.Errorf("site claims poisoned %d times; composition metadata is wrong", rs.Poisoned)
			}

			// Every reduced node survives in the full graph with the same
			// valence; bivalent and decided-value counts are preserved.
			valences := make(map[string]Valence, fs.Nodes)
			for id := 0; id < fs.Nodes; id++ {
				valences[nodeKey(full, NodeID(id))] = full.Valence(NodeID(id))
			}
			for id := 0; id < rs.Nodes; id++ {
				k := nodeKey(rede, NodeID(id))
				want, ok := valences[k]
				if !ok {
					t.Fatalf("reduced node %d (%s) not in full graph", id, k)
				}
				if got := rede.Valence(NodeID(id)); got != want {
					t.Fatalf("node %d (%s): reduced valence %v, full %v", id, k, got, want)
				}
			}
			if rs.Bivalent != fs.Bivalent {
				t.Errorf("bivalent count: reduced %d, full %d", rs.Bivalent, fs.Bivalent)
			}
			if full.Valence(full.Root()) != rede.Valence(rede.Root()) {
				t.Errorf("root valence: full %v, reduced %v",
					full.Valence(full.Root()), rede.Valence(rede.Root()))
			}

			fh, rh := hookKeys(full, full.FindHooks(0)), hookKeys(rede, rede.FindHooks(0))
			if len(fh) != len(rh) {
				t.Fatalf("hook count: full %d, reduced %d", len(fh), len(rh))
			}
			for i := range fh {
				if fh[i] != rh[i] {
					t.Fatalf("hook %d differs:\nfull:    %s\nreduced: %s", i, fh[i], rh[i])
				}
			}
		})
	}
}

// TestReduceDeterministic pins the reduced engine's worker-count contract:
// identical tables at Workers 1, 2, and 8 (reduction routes Workers=1
// through the parallel engine; its analysis rounds must renumber to the
// same byte-identical result regardless of scheduling).
func TestReduceDeterministic(t *testing.T) {
	for _, tc := range reduceConfigs() {
		tc := tc
		if tc.cfg.N >= 3 {
			continue // covered at Workers=4 by TestReduceVerdictsMatchFull
		}
		t.Run(tc.name, func(t *testing.T) {
			tc.cfg.Reduce = true
			ref := tc.cfg
			ref.Workers = 1
			re := explore(t, ref)
			for _, w := range []int{2, 8} {
				par := tc.cfg
				par.Workers = w
				got := explore(t, par)
				tablesEqual(t, re, got)
				if re.Stats() != got.Stats() {
					t.Fatalf("workers=%d: stats ref %+v, got %+v", w, re.Stats(), got.Stats())
				}
			}
		})
	}
}

// TestReduceFullBit checks the FullyExpanded surface: with reduction off it
// is vacuously true; with it on, exactly the non-full nodes report false,
// every bivalent node reports true (the completeness proviso), and a
// reduced node's out-degree is strictly below its enabled-step count.
func TestReduceFullBit(t *testing.T) {
	cfg := Config{N: 2, Family: afd.FamilyP, Algo: "s",
		TD: PerfectTD(2, 4, map[ioa.Loc]int{1: 1}), Reduce: true, Workers: 2}
	e := explore(t, cfg)
	st := e.Stats()
	reduced := 0
	for id := 0; id < st.Nodes; id++ {
		if !e.FullyExpanded(NodeID(id)) {
			reduced++
			if e.Valence(NodeID(id)) == ValBivalent {
				t.Fatalf("bivalent node %d not fully expanded", id)
			}
		}
	}
	if reduced != st.ReducedNodes {
		t.Fatalf("fullbit count %d != ReducedNodes %d", reduced, st.ReducedNodes)
	}
	if reduced == 0 {
		t.Fatal("reduction never fired on the S-algo config")
	}
}
