package valence

import (
	"strings"
	"testing"

	"repro/internal/afd"
	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/system"
)

// TestTheorem41 builds RtD for two admissible Ω sequences sharing a prefix:
// t1 is crash-free; t2 crashes location 1 after round 2.  The common prefix
// is the first 2 rounds = 4 events, so the trees must agree on every walk
// of ≤ 4 edges, and must diverge at some greater depth (the crash edge).
func TestTheorem41(t *testing.T) {
	t1 := OmegaTD(2, 6, nil)
	t2 := OmegaTD(2, 6, map[ioa.Loc]int{1: 2})
	common := 0
	for common < len(t1) && common < len(t2) && t1[common] == t2[common] {
		common++
	}
	if common != 4 {
		t.Fatalf("common prefix = %d events, want 4", common)
	}

	e1 := explore(t, Config{N: 2, Family: afd.FamilyOmega, TD: t1})
	e2 := explore(t, Config{N: 2, Family: afd.FamilyOmega, TD: t2})

	if err := EqualToDepth(e1, e2, common, 0); err != nil {
		t.Fatalf("trees differ within the common prefix depth: %v", err)
	}
	// The trees must differ somewhere deeper: the crash edge changes a
	// reachable state.
	deep := EqualToDepth(e1, e2, 40, 0)
	if deep == nil {
		t.Fatal("trees with different tD are equal to depth 40; Theorem 41's converse lost")
	}
	if !strings.Contains(deep.Error(), "diverge") && !strings.Contains(deep.Error(), "actions") {
		t.Fatalf("unexpected divergence kind: %v", deep)
	}
}

func TestEqualToDepthIdentity(t *testing.T) {
	e1 := explore(t, Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 4, nil)})
	e2 := explore(t, Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 4, nil)})
	if err := EqualToDepth(e1, e2, 1_000, 0); err != nil {
		t.Fatalf("identical configurations differ: %v", err)
	}
}

func TestExePathRealizesNode(t *testing.T) {
	e := explore(t, Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 4, nil)})
	// Find a decided node and replay its path on a fresh system: the final
	// encoding must match the node's key (Proposition 29: exe(N) ends in
	// state cN).
	var target NodeID = -1
	for id := 0; id < e.NumNodes(); id++ {
		if len(e.Edges(NodeID(id))) == 0 { // a terminal node
			target = NodeID(id)
			break
		}
	}
	if target < 0 {
		// No terminal nodes (FD self-loops keep everything open); pick any
		// non-root node instead.
		target = 1
	}
	path := e.ExePath(target)
	if len(path) == 0 {
		t.Fatal("empty path to non-root node")
	}

	// Replay on a rebuilt identical system.
	procs, err := consensus.Procs(2, afd.FamilyOmega)
	if err != nil {
		t.Fatal(err)
	}
	autos := procs
	autos = append(autos, system.Channels(2)...)
	autos = append(autos, system.ConsensusEnvs(2)...)
	sys := ioa.MustNewSystem(autos...)
	for _, act := range path {
		owner := -1
		if act.Kind != ioa.KindFD && act.Kind != ioa.KindCrash {
			// Find the owning automaton by matching the enabled action.
			for _, tr := range sys.Tasks() {
				if a, ok := sys.Enabled(tr); ok && a == act {
					owner = tr.Auto
					break
				}
			}
			if owner < 0 {
				t.Fatalf("replay: action %v not enabled", act)
			}
		}
		sys.Apply(owner, act)
	}
	if sys.Encode() != string(e.nodeEnc(target)) {
		t.Fatal("replayed execution does not end in the node's config tag (Proposition 29)")
	}
}

func TestEqualToDepthRejectsDifferentSystems(t *testing.T) {
	e2 := explore(t, Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 3, nil)})
	e3 := explore(t, Config{N: 3, Family: afd.FamilyP, Algo: "s",
		TD: PerfectTD(3, 1, nil), Values: []int{0, 0, 0}})
	if err := EqualToDepth(e2, e3, 1, 0); err == nil {
		t.Fatal("different compositions compared equal")
	}
}

func TestEqualToDepthPairCap(t *testing.T) {
	e1 := explore(t, Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 4, nil)})
	e2 := explore(t, Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 4, nil)})
	if err := EqualToDepth(e1, e2, 1000, 5); err == nil {
		t.Fatal("tiny pair cap must abort the comparison")
	}
}

func TestExePathRoot(t *testing.T) {
	e := explore(t, Config{N: 2, Family: afd.FamilyOmega, TD: OmegaTD(2, 2, nil)})
	if got := e.ExePath(e.Root()); len(got) != 0 {
		t.Fatalf("root path = %v, want empty", got)
	}
}
