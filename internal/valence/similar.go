package valence

import (
	"fmt"
	"strings"

	"repro/internal/ioa"
	"repro/internal/system"
)

// SimilarModuloI implements the ∼i relation of Section 8.3 on two composed
// system states s1 and s2 (the config tags of two tree nodes): s1 ∼i s2 iff
//
//	(1) location i has crashed in both;
//	(2) every process automaton at j ≠ i is in the same state;
//	(3) every channel between locations ≠ i is in the same state;
//	(4) for every j ≠ i, the queue of Chan[i→j] in s1 is a prefix of the
//	    queue of Chan[i→j] in s2;
//	(5) every environment automaton at j ≠ i is in the same state.
//
// (Condition 6 of the paper — equal FD-sequence tags — is the caller's to
// check: it lives in the tree node, not the system state.)
//
// The systems must be structurally identical compositions built by this
// package (process automata, channels, environments in the same order).
func SimilarModuloI(s1, s2 *ioa.System, i ioa.Loc) error {
	a1, a2 := s1.Automata(), s2.Automata()
	if len(a1) != len(a2) {
		return fmt.Errorf("valence: compositions differ in size (%d vs %d)", len(a1), len(a2))
	}
	for k := range a1 {
		if a1[k].Name() != a2[k].Name() {
			return fmt.Errorf("valence: composition order differs at %d (%s vs %s)", k, a1[k].Name(), a2[k].Name())
		}
		switch x := a1[k].(type) {
		case *system.Proc:
			y := a2[k].(*system.Proc)
			if x.ID() == i {
				if !x.Failed() || !y.Failed() {
					return fmt.Errorf("valence: location %v not crashed in both states (condition 1)", i)
				}
				continue // the crashed process's state is unconstrained
			}
			if x.Encode() != y.Encode() {
				return fmt.Errorf("valence: process %s differs (condition 2)", x.Name())
			}
		case *system.Channel:
			y := a2[k].(*system.Channel)
			switch {
			case x.From == i:
				// Condition 4: s1's queue must be a prefix of s2's.
				q1, q2 := x.Queue(), y.Queue()
				if len(q1) > len(q2) {
					return fmt.Errorf("valence: %s queue longer in first state (condition 4)", x.Name())
				}
				for idx := range q1 {
					if q1[idx] != q2[idx] {
						return fmt.Errorf("valence: %s queue not a prefix (condition 4)", x.Name())
					}
				}
			case x.To == i:
				// Channels *into* the crashed location are unconstrained.
			default:
				if x.Encode() != y.Encode() {
					return fmt.Errorf("valence: %s differs (condition 3)", x.Name())
				}
			}
		default:
			// Environment automata (and any other component) at j ≠ i must
			// agree; components at i are unconstrained.
			if locOfAutomaton(a1[k]) == i {
				continue
			}
			if a1[k].Encode() != a2[k].Encode() {
				return fmt.Errorf("valence: %s differs (condition 5)", a1[k].Name())
			}
		}
	}
	return nil
}

// locOfAutomaton extracts the location from the "name[loc]" convention used
// by the per-location automata in this repository; NoLoc if none.
func locOfAutomaton(a ioa.Automaton) ioa.Loc {
	name := a.Name()
	open := strings.LastIndexByte(name, '[')
	if open < 0 || !strings.HasSuffix(name, "]") {
		return ioa.NoLoc
	}
	l, err := ioa.DecodeLoc(name[open+1 : len(name)-1])
	if err != nil {
		return ioa.NoLoc
	}
	return l
}
