// Package valence implements Sections 8 and 9.4–9.6 of "Asynchronous
// Failure Detectors": the tagged execution tree RtD of a system using an
// AFD, the valence analysis of its nodes (bivalent / univalent,
// Propositions 47–51, Lemma 52), and the hook construction (Lemmas 53–58,
// Theorem 59, Figures 2–3) that pinpoints how AFD information circumvents
// the impossibility of asynchronous consensus.
//
// The paper's RtD is an infinite tree over task labels; here it is explored
// as a finite graph by memoizing nodes on (system state encoding,
// FD-sequence index) — two tree nodes with equal config and FD tags have
// identical subtrees (Lemma 33), so the quotient preserves exactly the
// properties the paper proves.  Edges with ⊥ action tags are self-loops in
// the quotient and are omitted; Lemma 56 shows hooks never involve them.
//
// The system composed into the tree is the paper's S (Section 9.3) *without*
// the crash and failure-detector automata: both crash events and detector
// outputs are injected by the FD edge from the fixed admissible sequence tD
// over Iˆ ∪ OD, exactly as Section 8.2 tags the tree.
package valence

import (
	"fmt"

	"repro/internal/consensus"
	"repro/internal/ioa"
	"repro/internal/system"
	"repro/internal/trace"
)

// Label names one outgoing edge class of every tree node: the FD edge or one
// task of the composition (Proc_i, Chan_{i,j}, Env_{i,x}).
type Label int

// LabelFD is the failure-detector edge; other labels index composition tasks.
const LabelFD Label = -1

// Valence classifies a node per Section 9.5.
type Valence uint8

// Valence values.  A node is v-valent when only decision value v is
// reachable, bivalent when both are, and unknown when no decision is
// reachable in the explored graph (which the paper's Proposition 48 rules
// out for fair branches; it indicates the supplied tD was too weak).
const (
	ValUnknown Valence = iota
	ValZero
	ValOne
	ValBivalent
)

// String implements fmt.Stringer.
func (v Valence) String() string {
	switch v {
	case ValZero:
		return "0-valent"
	case ValOne:
		return "1-valent"
	case ValBivalent:
		return "bivalent"
	default:
		return "unknown"
	}
}

const (
	maskZero = 1 << iota
	maskOne
)

func maskToValence(m uint8) Valence {
	switch m {
	case maskZero:
		return ValZero
	case maskOne:
		return ValOne
	case maskZero | maskOne:
		return ValBivalent
	default:
		return ValUnknown
	}
}

// NodeID indexes a node of the explored graph.
type NodeID int

type edge struct {
	label Label
	act   ioa.Action
	to    NodeID
}

type node struct {
	key   nodeKey
	sys   *ioa.System // retained until expanded, then released
	fdIdx int
	edges []edge
	mask  uint8
	preds []NodeID
}

type nodeKey struct {
	enc string
	fd  int
}

// Config configures an exploration.
type Config struct {
	// N is the number of locations.
	N int
	// Family is the failure-detector family whose outputs appear in TD.
	Family string
	// Algo selects the consensus algorithm hosted in the tree: "ct" (the
	// rotating-coordinator algorithm; default) or "s" (the CT96 S-based
	// flooding algorithm, which has no round churn and therefore a much
	// smaller reachable graph — preferable for n ≥ 3).
	Algo string
	// TD is the fixed admissible FD sequence over Iˆ ∪ OD driving the FD
	// edges.  Its crash events are the run's fault pattern.
	TD trace.T
	// Values fixes environment proposals per location; -1 leaves that
	// location's environment free (both propose tasks enabled, Algorithm
	// 4).  nil frees every location.  Root bivalence needs at least one
	// free location whose proposal can swing the decision.
	Values []int
	// MaxNodes caps the exploration (default 200_000).  Exceeding the cap
	// fails Explore: valence computation needs the full reachable graph.
	MaxNodes int
}

func (c Config) maxNodes() int {
	if c.MaxNodes <= 0 {
		return 200_000
	}
	return c.MaxNodes
}

// Explorer holds the explored quotient of RtD.
type Explorer struct {
	cfg    Config
	nodes  []*node
	index  map[nodeKey]NodeID
	labels []string // label names for reporting; index by task order
	tasks  []ioa.TaskRef
}

// New builds the root system (consensus algorithm + channels + environment,
// per Section 9.3) and prepares an explorer.
func New(cfg Config) (*Explorer, error) {
	var procs []ioa.Automaton
	var err error
	switch cfg.Algo {
	case "", "ct":
		procs, err = consensus.Procs(cfg.N, cfg.Family)
	case "s":
		procs, err = consensus.SProcs(cfg.N, cfg.Family)
	default:
		return nil, fmt.Errorf("valence: unknown algorithm %q", cfg.Algo)
	}
	if err != nil {
		return nil, err
	}
	autos := procs
	autos = append(autos, system.Channels(cfg.N)...)
	for i := 0; i < cfg.N; i++ {
		if cfg.Values == nil || cfg.Values[i] < 0 {
			autos = append(autos, system.NewConsensusEnv(ioa.Loc(i)))
		} else {
			autos = append(autos, system.NewConsensusEnvFixed(ioa.Loc(i), cfg.Values[i]))
		}
	}
	sys, err := ioa.NewSystem(autos...)
	if err != nil {
		return nil, err
	}
	e := &Explorer{
		cfg:   cfg,
		index: make(map[nodeKey]NodeID),
	}
	for _, tr := range sys.Tasks() {
		e.tasks = append(e.tasks, tr)
		e.labels = append(e.labels, sys.TaskLabel(tr))
	}
	root := &node{key: nodeKey{enc: sys.Encode(), fd: 0}, sys: sys.CloneBare()}
	e.nodes = append(e.nodes, root)
	e.index[root.key] = 0
	return e, nil
}

// LabelName renders a label.
func (e *Explorer) LabelName(l Label) string {
	if l == LabelFD {
		return "FD"
	}
	return e.labels[l]
}

// NumNodes returns the number of distinct explored nodes.
func (e *Explorer) NumNodes() int { return len(e.nodes) }

// Root returns the root node's ID.
func (e *Explorer) Root() NodeID { return 0 }

// Valence returns the valence of a node (after Explore).
func (e *Explorer) Valence(id NodeID) Valence { return maskToValence(e.nodes[id].mask) }

// Explore expands the full reachable graph and computes valences.
func (e *Explorer) Explore() error {
	// Phase 1: breadth-first expansion with memoization.
	for next := 0; next < len(e.nodes); next++ {
		if len(e.nodes) > e.cfg.maxNodes() {
			return fmt.Errorf("valence: state space exceeds cap %d", e.cfg.maxNodes())
		}
		if err := e.expand(NodeID(next)); err != nil {
			return err
		}
	}
	// Phase 2: backward fixpoint of reachable decision values.
	e.propagate()
	return nil
}

// expand computes all non-⊥ outgoing edges of node id.
func (e *Explorer) expand(id NodeID) error {
	n := e.nodes[id]
	sys := n.sys
	if sys == nil {
		return fmt.Errorf("valence: node %d already expanded", id)
	}
	// FD edge: the head of the remaining tD, if any (Section 8.2).
	if n.fdIdx < len(e.cfg.TD) {
		act := e.cfg.TD[n.fdIdx]
		child := sys.CloneBare()
		child.Apply(-1, act)
		e.link(id, LabelFD, act, child, n.fdIdx+1)
	}
	// Task edges.
	for li, tr := range e.tasks {
		act, ok := sys.Enabled(tr)
		if !ok {
			continue // ⊥ edge: self-loop in the quotient, omitted
		}
		child := sys.CloneBare()
		child.Apply(tr.Auto, act)
		e.link(id, Label(li), act, child, n.fdIdx)
	}
	n.sys = nil // release the snapshot; edges carry everything we need
	return nil
}

// link records an edge from id to the node for (child state, fd'), creating
// the child if new.
func (e *Explorer) link(id NodeID, l Label, act ioa.Action, child *ioa.System, fd int) {
	k := nodeKey{enc: child.Encode(), fd: fd}
	to, ok := e.index[k]
	if !ok {
		to = NodeID(len(e.nodes))
		e.nodes = append(e.nodes, &node{key: k, sys: child, fdIdx: fd})
		e.index[k] = to
	}
	e.nodes[id].edges = append(e.nodes[id].edges, edge{label: l, act: act, to: to})
	e.nodes[to].preds = append(e.nodes[to].preds, id)
}

// propagate computes each node's valence mask.  A node's valence is defined
// over the decision values occurring in exe(N) *or any descendant's
// execution* (Section 9.5), so the mask is the union of
//
//	past(N)   – decision events on walks from the root to N (all walks
//	            agree: whether location i's decide has fired is a function
//	            of the memoized state, and agreement fixes the value), and
//	future(N) – decision events reachable from N,
//
// each computed by a worklist fixpoint (forward and backward respectively).
func (e *Explorer) propagate() {
	e.propagateFuture()
	e.propagatePast()
}

// propagateFuture computes future-reachable decisions by backward fixpoint:
// R(N) = ⋃ over edges N→M of decideBit(edge) ∪ R(M).
func (e *Explorer) propagateFuture() {
	work := make([]NodeID, 0, len(e.nodes))
	inWork := make([]bool, len(e.nodes))
	// Seed: nodes with outgoing decide edges.
	for i, n := range e.nodes {
		var m uint8
		for _, ed := range n.edges {
			if b, ok := decideBit(ed.act); ok {
				m |= b
			}
		}
		if m != 0 {
			n.mask = m
			work = append(work, NodeID(i))
			inWork[i] = true
		}
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[id] = false
		m := e.nodes[id].mask
		for _, p := range e.nodes[id].preds {
			pn := e.nodes[p]
			if pn.mask|m != pn.mask {
				pn.mask |= m
				if !inWork[p] {
					work = append(work, p)
					inWork[p] = true
				}
			}
		}
	}
}

// propagatePast folds decision events of incoming walks forward:
// past(child) ⊇ past(parent) ∪ decideBit(edge).
func (e *Explorer) propagatePast() {
	past := make([]uint8, len(e.nodes))
	// Every node must be processed at least once: an edge's decide bit
	// contributes to the child even when the parent's own past is empty.
	work := make([]NodeID, len(e.nodes))
	inWork := make([]bool, len(e.nodes))
	for i := range e.nodes {
		work[i] = NodeID(i)
		inWork[i] = true
	}
	for len(work) > 0 {
		id := work[len(work)-1]
		work = work[:len(work)-1]
		inWork[id] = false
		for _, ed := range e.nodes[id].edges {
			m := past[id]
			if b, ok := decideBit(ed.act); ok {
				m |= b
			}
			if past[ed.to]|m != past[ed.to] {
				past[ed.to] |= m
				if !inWork[ed.to] {
					work = append(work, ed.to)
					inWork[ed.to] = true
				}
			}
		}
	}
	for i, n := range e.nodes {
		n.mask |= past[i]
	}
}

func decideBit(a ioa.Action) (uint8, bool) {
	if a.Kind != ioa.KindEnvOut || a.Name != system.ActNameDecide {
		return 0, false
	}
	switch a.Payload {
	case "0":
		return maskZero, true
	case "1":
		return maskOne, true
	default:
		return 0, false
	}
}

// Stats summarizes an explored graph.
type Stats struct {
	Nodes     int
	Edges     int
	Bivalent  int
	ZeroVal   int
	OneVal    int
	Unknown   int
	FDEdges   int
	MaxFDIdx  int
	DecideCut int // edges carrying decide actions
}

// Stats computes summary statistics (after Explore).
func (e *Explorer) Stats() Stats {
	var s Stats
	s.Nodes = len(e.nodes)
	for _, n := range e.nodes {
		s.Edges += len(n.edges)
		if n.fdIdx > s.MaxFDIdx {
			s.MaxFDIdx = n.fdIdx
		}
		switch maskToValence(n.mask) {
		case ValBivalent:
			s.Bivalent++
		case ValZero:
			s.ZeroVal++
		case ValOne:
			s.OneVal++
		default:
			s.Unknown++
		}
		for _, ed := range n.edges {
			if ed.label == LabelFD {
				s.FDEdges++
			}
			if _, ok := decideBit(ed.act); ok {
				s.DecideCut++
			}
		}
	}
	return s
}
